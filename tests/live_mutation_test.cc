// ApplyMutations incremental-vs-reload equivalence: a LiveRun fed mutation
// epochs (with its collection incrementally maintained) must match a
// from-scratch rematerialization + batch execution at every (epoch, view)
// cell — for WCC, PageRank, and BFS, at 1 and 4 workers. Also covers the
// maintenance preconditions and the Graphsurge facade's WAL recovery path.
#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/algorithms.h"
#include "api/graphsurge.h"
#include "common/random.h"
#include "graph/graph.h"
#include "graph/mutation.h"
#include "views/collection.h"
#include "views/executor.h"
#include "views/live.h"

namespace gs {
namespace {

PropertyGraph BuildTestGraph(uint64_t num_nodes, uint64_t num_edges,
                             uint64_t seed) {
  PropertyGraph g;
  g.AddNodes(num_nodes);
  EXPECT_TRUE(g.edge_properties().AddColumn("w", PropertyType::kInt).ok());
  Rng rng(seed);
  for (uint64_t i = 0; i < num_edges; ++i) {
    uint64_t src = rng.Index(num_nodes);
    uint64_t dst = rng.Index(num_nodes);
    EXPECT_TRUE(g.AddEdge(src, dst).ok());
    EXPECT_TRUE(
        g.edge_properties().AppendRow({PropertyValue(rng.Uniform(0, 15))}).ok());
  }
  return g;
}

/// Weight-threshold views (nested) plus the full view. Predicates read the
/// *current* graph state through the reference, so they stay correct as
/// mutations land — exactly what the maintenance path relies on.
std::vector<std::function<bool(EdgeId)>> MakePredicates(
    const PropertyGraph& g, int wcol) {
  std::vector<std::function<bool(EdgeId)>> preds;
  for (int64_t threshold : {4, 8, 12}) {
    preds.push_back([&g, wcol, threshold](EdgeId e) {
      return g.ResolveWeighted(e, wcol).weight <= threshold;
    });
  }
  preds.push_back([](EdgeId) { return true; });
  return preds;
}

/// One epoch's batch against the current graph: weight updates, edge
/// adds/removes, one node removal. Each candidate keeps the whole batch
/// valid or is dropped (same pattern as the fuzz resolver).
MutationBatch MakeBatch(const PropertyGraph& g, Rng* rng) {
  MutationBatch b;
  auto keep_if_valid = [&](Mutation m) {
    b.push_back(std::move(m));
    if (!CheckMutationBatch(g, b).ok()) b.pop_back();
  };
  const uint64_t n = g.num_nodes();
  const uint64_t m = g.num_edges();
  for (int i = 0; i < 4; ++i) {
    keep_if_valid(Mutation::SetEdgeProperty(
        rng->Index(m), "w", PropertyValue(rng->Uniform(0, 15))));
  }
  for (int i = 0; i < 3; ++i) {
    keep_if_valid(Mutation::AddEdge(rng->Index(n), rng->Index(n),
                                    {PropertyValue(rng->Uniform(0, 15))}));
  }
  keep_if_valid(Mutation::RemoveEdge(rng->Index(m)));
  keep_if_valid(Mutation::RemoveNode(rng->Index(n)));
  EXPECT_FALSE(b.empty());
  return b;
}

void ExpectEpochMatchesScratch(
    const analytics::Computation& computation, const PropertyGraph& g,
    const std::vector<std::string>& names,
    const std::vector<std::function<bool(EdgeId)>>& preds,
    const views::LiveRun& live, uint32_t epoch, int wcol) {
  views::MaterializeOptions mopts;
  auto fresh = views::MaterializeCollectionWith(g, "fresh", names, preds, mopts);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  views::ExecutionOptions eo;
  eo.strategy = splitting::Strategy::kDiffOnly;
  eo.weight_column = wcol;
  eo.capture_results = true;
  auto scratch = views::RunOnCollection(computation, g, fresh.value(), eo);
  ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();
  for (size_t t = 0; t < names.size(); ++t) {
    auto cell = live.ResultsAt(epoch, t);
    ASSERT_TRUE(cell.ok()) << cell.status().ToString();
    EXPECT_EQ(cell.value(), scratch.value().results[t])
        << "epoch " << epoch << " view " << t;
  }
}

void RunEquivalence(const analytics::Computation& computation,
                    size_t workers) {
  PropertyGraph g = BuildTestGraph(24, 60, /*seed=*/7);
  const int wcol = g.FindWeightColumn("w");
  ASSERT_GE(wcol, 0);
  const std::vector<std::string> names = {"w4", "w8", "w12", "all"};
  auto preds = MakePredicates(g, wcol);

  views::MaterializeOptions mopts;
  auto col = views::MaterializeCollectionWith(g, "c", names, preds, mopts);
  ASSERT_TRUE(col.ok()) << col.status().ToString();
  views::MaterializedCollection mc = std::move(col).value();
  ASSERT_TRUE(mc.maintainable());

  views::LiveRunOptions lopts;
  lopts.weight_column = wcol;
  lopts.dataflow.num_workers = workers;
  auto live = views::LiveRun::Start(computation, g, &mc, lopts);
  ASSERT_TRUE(live.ok()) << live.status().ToString();

  ExpectEpochMatchesScratch(computation, g, names, preds, *live.value(), 0,
                            wcol);
  Rng rng(123 + workers);
  for (uint32_t epoch = 1; epoch <= 3; ++epoch) {
    MutationBatch batch = MakeBatch(g, &rng);
    MutationEffects effects;
    Status applied = ApplyMutationBatch(&g, batch, &effects);
    ASSERT_TRUE(applied.ok()) << applied.ToString();
    Status maintained =
        views::UpdateCollectionForMutations(&mc, g, effects.touched_edges);
    ASSERT_TRUE(maintained.ok()) << maintained.ToString();
    Status advanced = live.value()->AdvanceEpoch(effects.touched_edges);
    ASSERT_TRUE(advanced.ok()) << advanced.ToString();
    EXPECT_EQ(live.value()->epochs_fed(), epoch + 1);
    // Every historical epoch stays queryable, but checking the newest one
    // against a fresh rebuild is the load-bearing assertion.
    ExpectEpochMatchesScratch(computation, g, names, preds, *live.value(),
                              epoch, wcol);
  }
}

TEST(LiveMutationTest, WccOneWorker) {
  analytics::Wcc wcc;
  RunEquivalence(wcc, 1);
}

TEST(LiveMutationTest, WccFourWorkers) {
  analytics::Wcc wcc;
  RunEquivalence(wcc, 4);
}

TEST(LiveMutationTest, PageRankOneWorker) {
  analytics::PageRank pagerank(4);
  RunEquivalence(pagerank, 1);
}

TEST(LiveMutationTest, PageRankFourWorkers) {
  analytics::PageRank pagerank(4);
  RunEquivalence(pagerank, 4);
}

TEST(LiveMutationTest, BfsOneWorker) {
  analytics::Bfs bfs(0);
  RunEquivalence(bfs, 1);
}

TEST(LiveMutationTest, BfsFourWorkers) {
  analytics::Bfs bfs(0);
  RunEquivalence(bfs, 4);
}

TEST(LiveMutationTest, AdvanceEpochRequiresRefreshedCollection) {
  PropertyGraph g = BuildTestGraph(10, 20, 3);
  const int wcol = g.FindWeightColumn("w");
  auto preds = MakePredicates(g, wcol);
  views::MaterializeOptions mopts;
  auto col = views::MaterializeCollectionWith(g, "c", {"a", "b", "c", "d"},
                                              preds, mopts);
  ASSERT_TRUE(col.ok());
  views::MaterializedCollection mc = std::move(col).value();
  analytics::Wcc wcc;
  views::LiveRunOptions lopts;
  lopts.weight_column = wcol;
  auto live = views::LiveRun::Start(wcc, g, &mc, lopts);
  ASSERT_TRUE(live.ok());

  MutationEffects effects;
  ASSERT_TRUE(
      ApplyMutationBatch(&g, {Mutation::RemoveEdge(0)}, &effects).ok());
  // Collection not refreshed yet: the live run must refuse the epoch.
  Status advanced = live.value()->AdvanceEpoch(effects.touched_edges);
  EXPECT_EQ(advanced.code(), StatusCode::kFailedPrecondition);
  // After maintenance it proceeds.
  ASSERT_TRUE(
      views::UpdateCollectionForMutations(&mc, g, effects.touched_edges).ok());
  EXPECT_TRUE(live.value()->AdvanceEpoch(effects.touched_edges).ok());
}

TEST(LiveMutationTest, DiffBatchCollectionsAreNotMaintainable) {
  PropertyGraph g = BuildTestGraph(6, 8, 5);
  views::MaterializedCollection mc = views::CollectionFromDiffBatches(
      "imported", "g", {{{0, +1}, {1, +1}}, {{1, -1}}});
  EXPECT_FALSE(mc.maintainable());
  EXPECT_EQ(views::UpdateCollectionForMutations(&mc, g, {0}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(LiveMutationTest, GraphsurgeFacadeWalRecovery) {
  const std::string wal_path =
      ::testing::TempDir() + "facade_recovery.wal";
  std::remove(wal_path.c_str());

  analytics::Wcc wcc;
  views::ExecutionOptions eo;
  eo.capture_results = true;
  eo.weight_column = -1;

  // First life: WAL-backed ingest with a live computation.
  std::vector<analytics::ResultMap> final_results;
  uint64_t final_epoch = 0;
  {
    Graphsurge system;
    ASSERT_TRUE(system.AddGraph("g", BuildTestGraph(16, 40, 11)).ok());
    auto* g = system.GetGraph("g").value();
    const int wcol = g->FindWeightColumn("w");
    ASSERT_TRUE(system.EnableWal("g", wal_path).ok());
    ASSERT_TRUE(system
                    .CreateCollection("c", "g", {"a", "b", "c", "d"},
                                      MakePredicates(*g, wcol))
                    .ok());
    Status started = system.StartLiveComputation("live", wcc, "c");
    ASSERT_TRUE(started.ok()) << started.ToString();

    Rng rng(99);
    for (int i = 0; i < 3; ++i) {
      Status applied = system.ApplyMutations("g", MakeBatch(*g, &rng));
      ASSERT_TRUE(applied.ok()) << applied.ToString();
    }
    final_epoch = system.GraphEpoch("g").value();
    EXPECT_EQ(final_epoch, 3u);
    const views::LiveRun* live = system.GetLiveRun("live").value();
    EXPECT_EQ(live->epochs_fed(), 4u);
    for (size_t t = 0; t < live->num_views(); ++t) {
      final_results.push_back(live->ResultsAt(3, t).value());
    }
  }

  // Second life: same base snapshot + WAL replay must reconstruct the same
  // graph epoch and per-view analytics results.
  {
    Graphsurge system;
    ASSERT_TRUE(system.AddGraph("g", BuildTestGraph(16, 40, 11)).ok());
    auto* g = system.GetGraph("g").value();
    const int wcol = g->FindWeightColumn("w");
    ASSERT_TRUE(system.EnableWal("g", wal_path).ok());
    EXPECT_EQ(system.GraphEpoch("g").value(), final_epoch);
    ASSERT_TRUE(system
                    .CreateCollection("c", "g", {"a", "b", "c", "d"},
                                      MakePredicates(*g, wcol))
                    .ok());
    auto run = system.RunComputation(wcc, "c", eo);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    ASSERT_EQ(run.value().results.size(), final_results.size());
    for (size_t t = 0; t < final_results.size(); ++t) {
      EXPECT_EQ(run.value().results[t], final_results[t]) << "view " << t;
    }
  }
  std::remove(wal_path.c_str());
}

}  // namespace
}  // namespace gs
