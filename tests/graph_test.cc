#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace gs {
namespace {

TEST(PropertyGraphTest, AddNodesAndEdges) {
  PropertyGraph g;
  VertexId first = g.AddNodes(3);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(g.num_nodes(), 3u);
  auto e0 = g.AddEdge(0, 1);
  ASSERT_TRUE(e0.ok());
  EXPECT_EQ(*e0, 0u);
  auto e1 = g.AddEdge(2, 0);
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edge(1).src, 2u);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(PropertyGraphTest, RejectsOutOfRangeEndpoints) {
  PropertyGraph g;
  g.AddNodes(2);
  EXPECT_EQ(g.AddEdge(0, 5).status().code(), StatusCode::kOutOfRange);
}

TEST(PropertyGraphTest, WeightResolution) {
  PropertyGraph g;
  g.AddNodes(2);
  ASSERT_TRUE(g.edge_properties().AddColumn("w", PropertyType::kInt).ok());
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.edge_properties().AppendRow({PropertyValue(int64_t{7})}).ok());
  int col = g.FindWeightColumn("w");
  ASSERT_GE(col, 0);
  WeightedEdge we = g.ResolveWeighted(0, col);
  EXPECT_EQ(we.weight, 7);
  // Missing column falls back to -1 / weight 1.
  EXPECT_EQ(g.FindWeightColumn("nope"), -1);
  EXPECT_EQ(g.ResolveWeighted(0, -1).weight, 1);
}

TEST(PropertyGraphTest, CallGraphExampleMatchesFigure1) {
  PropertyGraph g = MakeCallGraphExample();
  EXPECT_EQ(g.num_nodes(), 8u);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_TRUE(g.Validate().ok());
  // Node 5 in the paper (index 4) is a doctor in NY.
  EXPECT_EQ(g.node_properties().GetByName(4, "city")->AsString(), "NY");
  EXPECT_EQ(g.node_properties().GetByName(4, "profession")->AsString(),
            "Doctor");
  // Max duration in the graph is 34 (used by the Listing 3 example).
  int64_t max_duration = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    max_duration = std::max(
        max_duration, g.edge_properties().GetByName(e, "duration")->AsInt());
  }
  EXPECT_EQ(max_duration, 34);
}

}  // namespace
}  // namespace gs
