// Iterative scopes: fixpoints, computation sharing across versions, nested
// iteration, and the iteration cap.
#include <gtest/gtest.h>

#include <map>

#include "differential/differential.h"

namespace gs::differential {
namespace {

using VertexDist = std::pair<uint64_t, int64_t>;
using EdgeRec = std::pair<uint64_t, uint64_t>;  // (src, dst)

template <typename D>
std::map<D, Diff> ToMap(const Batch<D>& batch) {
  std::map<D, Diff> m;
  for (const auto& u : batch) m[u.data] += u.diff;
  for (auto it = m.begin(); it != m.end();) {
    it = it->second == 0 ? m.erase(it) : std::next(it);
  }
  return m;
}

// Builds a BFS-hops dataflow: distances from vertex 0 via min-reduce
// fixpoint. Returns the capture of the final distances.
struct BfsHarness {
  Dataflow df;
  Input<EdgeRec> edges{&df};
  Input<VertexDist> roots{&df};
  CaptureOp<VertexDist>* capture = nullptr;

  explicit BfsHarness(uint32_t max_iterations = 1u << 20) {
    IterateOptions opts;
    opts.max_iterations = max_iterations;
    auto dists = Iterate<VertexDist>(
        roots.stream(),
        [this](LoopScope& scope, Stream<VertexDist> inner) {
          auto edges_in = scope.Enter(edges.stream());
          auto roots_in = scope.Enter(roots.stream());
          auto messages =
              Join(inner, edges_in,
                   [](const uint64_t&, const int64_t& dist,
                      const uint64_t& dst) {
                     return std::make_pair(dst, dist + 1);
                   });
          return ReduceMin(messages.Concat(roots_in));
        },
        opts);
    capture = Capture(dists);
  }
};

TEST(IterateTest, BfsFixpointOnChain) {
  BfsHarness h;
  // 0 -> 1 -> 2 -> 3
  for (uint64_t v = 0; v + 1 < 4; ++v) h.edges.Send({v, v + 1}, 1);
  h.roots.Send({0, 0}, 1);
  ASSERT_TRUE(h.df.Step().ok());
  EXPECT_EQ(ToMap(h.capture->AccumulatedAt(0)),
            (std::map<VertexDist, Diff>{
                {{0, 0}, 1}, {{1, 1}, 1}, {{2, 2}, 1}, {{3, 3}, 1}}));
}

TEST(IterateTest, BfsHandlesCycles) {
  BfsHarness h;
  h.edges.Send({0, 1}, 1);
  h.edges.Send({1, 2}, 1);
  h.edges.Send({2, 0}, 1);  // cycle back to the root
  h.roots.Send({0, 0}, 1);
  ASSERT_TRUE(h.df.Step().ok());
  EXPECT_EQ(ToMap(h.capture->AccumulatedAt(0)),
            (std::map<VertexDist, Diff>{{{0, 0}, 1}, {{1, 1}, 1}, {{2, 2}, 1}}));
}

TEST(IterateTest, EdgeAdditionSharesComputation) {
  BfsHarness h;
  // Long chain 0..49 plus an unrelated star around 100.
  for (uint64_t v = 0; v + 1 < 50; ++v) h.edges.Send({v, v + 1}, 1);
  for (uint64_t v = 101; v < 140; ++v) h.edges.Send({100, v}, 1);
  h.edges.Send({0, 100}, 1);
  h.roots.Send({0, 0}, 1);
  ASSERT_TRUE(h.df.Step().ok());
  uint64_t work_v0 = h.df.stats().updates_published;

  // Version 1: add a shortcut 0 -> 10. Distances of vertices 11.. on the
  // chain shrink; the star around 100 is untouched.
  h.edges.Send({0, 10}, 1);
  ASSERT_TRUE(h.df.Step().ok());
  uint64_t work_v1 = h.df.stats().updates_published - work_v0;

  auto acc = ToMap(h.capture->AccumulatedAt(1));
  EXPECT_EQ(acc.at({10, 1}), 1);
  EXPECT_EQ(acc.at({49, 40}), 1);   // 0->10 shortcut: 49 reached at 1+39
  EXPECT_EQ(acc.at({139, 2}), 1);   // star distance unchanged
  EXPECT_LT(work_v1, work_v0) << "differential step must do less work";

  // The version-1 output diff must not mention star vertices.
  for (const auto& [rec, d] : ToMap(h.capture->VersionDiffs(1))) {
    EXPECT_LT(rec.first, 100u) << "unaffected vertex recomputed";
  }
}

TEST(IterateTest, EdgeDeletionRepairsDistances) {
  BfsHarness h;
  // Diamond: 0->1->3, 0->2->3 plus tail 3->4.
  h.edges.Send({0, 1}, 1);
  h.edges.Send({1, 3}, 1);
  h.edges.Send({0, 2}, 1);
  h.edges.Send({2, 3}, 1);
  h.edges.Send({3, 4}, 1);
  h.roots.Send({0, 0}, 1);
  ASSERT_TRUE(h.df.Step().ok());

  h.edges.Send({1, 3}, -1);  // remove one of the two shortest paths
  ASSERT_TRUE(h.df.Step().ok());
  // Distances unchanged (the other path remains).
  EXPECT_EQ(ToMap(h.capture->VersionDiffs(1)), (std::map<VertexDist, Diff>{}));

  h.edges.Send({2, 3}, -1);  // now 3 and 4 are unreachable
  ASSERT_TRUE(h.df.Step().ok());
  EXPECT_EQ(ToMap(h.capture->AccumulatedAt(2)),
            (std::map<VertexDist, Diff>{{{0, 0}, 1}, {{1, 1}, 1}, {{2, 1}, 1}}));
}

TEST(IterateTest, IterationCapBoundsLoop) {
  BfsHarness h(/*max_iterations=*/3);
  for (uint64_t v = 0; v + 1 < 10; ++v) h.edges.Send({v, v + 1}, 1);
  h.roots.Send({0, 0}, 1);
  ASSERT_TRUE(h.df.Step().ok());
  auto acc = ToMap(h.capture->AccumulatedAt(0));
  // With the loop cut at iteration 3, only vertices within 3 hops have
  // distances.
  EXPECT_TRUE(acc.count({3, 3}));
  EXPECT_FALSE(acc.count({9, 9}));
}

TEST(IterateTest, NestedLoopsComputeTransitiveClosurePerLayer) {
  // Outer loop: repeatedly apply "propagate min label one hop" inner loop
  // (a contrived doubly-nested computation validating depth-2 times).
  Dataflow df;
  Input<EdgeRec> edges(&df);
  Input<VertexDist> labels(&df);

  auto result = Iterate<VertexDist>(
      labels.stream(),
      [&](LoopScope& outer, Stream<VertexDist> outer_var) {
        auto edges_outer = outer.Enter(edges.stream());
        // Inner loop: full label propagation to fixpoint.
        return Iterate<VertexDist>(
            outer_var,
            [&](LoopScope& inner, Stream<VertexDist> inner_var) {
              auto edges_in = inner.Enter(edges_outer);
              auto moved = Join(inner_var, edges_in,
                                [](const uint64_t&, const int64_t& label,
                                   const uint64_t& dst) {
                                  return std::make_pair(dst, label);
                                });
              return ReduceMin(moved.Concat(inner_var));
            });
      });
  auto* cap = Capture(result);

  edges.Send({0, 1}, 1);
  edges.Send({1, 2}, 1);
  labels.Send({0, 5}, 1);
  labels.Send({1, 9}, 1);
  labels.Send({2, 7}, 1);
  ASSERT_TRUE(df.Step().ok());
  // Min label 5 floods the chain.
  EXPECT_EQ(ToMap(cap->AccumulatedAt(0)),
            (std::map<VertexDist, Diff>{{{0, 5}, 1}, {{1, 5}, 1}, {{2, 5}, 1}}));
}

TEST(IterateTest, MultipleVersionsConvergeIndependently) {
  BfsHarness h;
  h.edges.Send({0, 1}, 1);
  h.roots.Send({0, 0}, 1);
  ASSERT_TRUE(h.df.Step().ok());
  for (uint64_t v = 1; v < 6; ++v) {
    h.edges.Send({v, v + 1}, 1);  // extend the chain each version
    ASSERT_TRUE(h.df.Step().ok());
    auto acc = ToMap(h.capture->AccumulatedAt(static_cast<uint32_t>(v)));
    EXPECT_EQ(acc.size(), v + 2);
    EXPECT_EQ(acc.at({v + 1, static_cast<int64_t>(v + 1)}), 1);
  }
}

}  // namespace
}  // namespace gs::differential
