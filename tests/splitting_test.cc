// Cost models and the adaptive splitting optimizer's decision logic.
#include <gtest/gtest.h>

#include <cmath>

#include "splitting/adaptive.h"
#include "splitting/cost_model.h"

namespace gs::splitting {
namespace {

TEST(OnlineLinearModelTest, NoDataPredictsInfinity) {
  OnlineLinearModel m;
  EXPECT_TRUE(std::isinf(m.Predict(100)));
}

TEST(OnlineLinearModelTest, OnePointIsProportional) {
  OnlineLinearModel m;
  m.Observe(1000, 2.0);
  EXPECT_DOUBLE_EQ(m.Predict(500), 1.0);
  EXPECT_DOUBLE_EQ(m.Predict(2000), 4.0);
}

TEST(OnlineLinearModelTest, FitsExactLine) {
  OnlineLinearModel m;
  // y = 0.5 + 0.002 x.
  for (double x : {100.0, 400.0, 900.0, 1600.0}) {
    m.Observe(x, 0.5 + 0.002 * x);
  }
  EXPECT_NEAR(m.intercept(), 0.5, 1e-9);
  EXPECT_NEAR(m.slope(), 0.002, 1e-12);
  EXPECT_NEAR(m.Predict(1000), 2.5, 1e-9);
}

TEST(OnlineLinearModelTest, NeverPredictsNegative) {
  OnlineLinearModel m;
  m.Observe(100, 5.0);
  m.Observe(200, 1.0);  // descending
  EXPECT_GE(m.Predict(10000), 0.0);
}

TEST(AdaptiveSplitterTest, BootstrapSequence) {
  AdaptiveSplitter s;
  EXPECT_TRUE(s.ShouldRunScratch(0, 1000, 1000));
  EXPECT_FALSE(s.ShouldRunScratch(1, 1000, 1000));
}

TEST(AdaptiveSplitterTest, PrefersCheaperStrategy) {
  AdaptiveSplitter s;
  // Scratch: 1 second per 1000 edges. Differential: 1 second per 100 diffs
  // (differential is per-diff more expensive, as when views are very
  // different).
  s.RecordScratch(1000, 1.0);
  s.RecordScratch(2000, 2.0);
  s.RecordDifferential(100, 1.0);
  s.RecordDifferential(200, 2.0);

  // Small diff, big view → differential wins.
  EXPECT_FALSE(s.ShouldRunScratch(5, /*view_size=*/10000, /*diff_size=*/50));
  // Huge diff (disjoint views) → scratch wins.
  EXPECT_TRUE(s.ShouldRunScratch(5, /*view_size=*/1000, /*diff_size=*/2000));
}

TEST(AdaptiveSplitterTest, ChunkDecisionAggregates) {
  AdaptiveSplitter s;
  s.RecordScratch(1000, 1.0);
  s.RecordScratch(3000, 3.0);
  s.RecordDifferential(1000, 0.1);
  s.RecordDifferential(3000, 0.3);
  // Differential is 10x cheaper per unit → chunk runs differentially even
  // when diffs are half the view sizes.
  EXPECT_FALSE(s.ChunkShouldRunScratch({1000, 1000, 1000},
                                       {500, 500, 500}));
  // Diffs far larger than views (pathological ordering) → scratch.
  EXPECT_TRUE(s.ChunkShouldRunScratch({100, 100}, {50000, 50000}));
}

TEST(StrategyNamesAreStable, Names) {
  EXPECT_STREQ(StrategyName(Strategy::kDiffOnly), "diff-only");
  EXPECT_STREQ(StrategyName(Strategy::kScratch), "scratch");
  EXPECT_STREQ(StrategyName(Strategy::kAdaptive), "adaptive");
}

}  // namespace
}  // namespace gs::splitting
