// End-to-end integration through the Graphsurge facade: CSV import, GVDL
// scripts, views over views, collections, analytics, and error handling.
#include "api/graphsurge.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "algorithms/algorithms.h"
#include "algorithms/reference.h"
#include "graph/generators.h"

namespace gs {
namespace {

class GraphsurgeApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(system_.AddGraph("Calls", MakeCallGraphExample()).ok());
  }

  Graphsurge system_;
};

TEST_F(GraphsurgeApiTest, LoadCsvAndQuery) {
  auto dir = std::filesystem::temp_directory_path() / "gs_api_test";
  std::filesystem::create_directories(dir);
  PropertyGraph g = MakeCallGraphExample();
  ASSERT_TRUE(WriteGraphToCsv(g, (dir / "n.csv").string(),
                              (dir / "e.csv").string())
                  .ok());
  Graphsurge sys;
  ASSERT_TRUE(sys.LoadGraphCsv("Calls", (dir / "n.csv").string(),
                               (dir / "e.csv").string())
                  .ok());
  auto graph = sys.GetGraph("Calls");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ((*graph)->num_edges(), 15u);
  std::filesystem::remove_all(dir);
}

TEST_F(GraphsurgeApiTest, FilteredViewAndViewOverView) {
  ASSERT_TRUE(system_
                  .Execute("create view Recent on Calls edges where "
                           "year >= 2018")
                  .ok());
  ASSERT_TRUE(system_
                  .Execute("create view RecentLong on Recent edges where "
                           "duration >= 10")
                  .ok());
  auto recent = system_.GetGraph("Recent");
  ASSERT_TRUE(recent.ok());
  auto recent_long = system_.GetGraph("RecentLong");
  ASSERT_TRUE(recent_long.ok());
  EXPECT_LT((*recent_long)->num_edges(), (*recent)->num_edges());
  for (EdgeId e = 0; e < (*recent_long)->num_edges(); ++e) {
    EXPECT_GE((*recent_long)->edge_properties().GetByName(e, "year")->AsInt(),
              2018);
    EXPECT_GE(
        (*recent_long)->edge_properties().GetByName(e, "duration")->AsInt(),
        10);
  }
}

TEST_F(GraphsurgeApiTest, CollectionLifecycleAndAnalytics) {
  ASSERT_TRUE(system_
                  .Execute("create view collection durations on Calls "
                           "[d5: duration <= 5], [d15: duration <= 15], "
                           "[d34: duration <= 34]")
                  .ok());
  auto collection = system_.GetCollection("durations");
  ASSERT_TRUE(collection.ok());
  EXPECT_EQ((*collection)->num_views(), 3u);

  analytics::Wcc wcc;
  views::ExecutionOptions opts;
  opts.capture_results = true;
  auto result = system_.RunComputation(wcc, "durations", opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->results.size(), 3u);
  // The last view is the full graph.
  std::vector<WeightedEdge> all_edges;
  PropertyGraph g = MakeCallGraphExample();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    all_edges.push_back(g.ResolveWeighted(e, -1));
  }
  EXPECT_EQ(result->results[2], analytics::WccReference(all_edges));
}

TEST_F(GraphsurgeApiTest, ProgrammaticCollection) {
  const PropertyGraph& g = **system_.GetGraph("Calls");
  std::vector<std::function<bool(EdgeId)>> preds;
  for (int year : {2015, 2017, 2019}) {
    preds.push_back([&g, year](EdgeId e) {
      return g.edge_properties().GetByName(e, "year")->AsInt() <= year;
    });
  }
  ASSERT_TRUE(system_
                  .CreateCollection("years", "Calls", {"y15", "y17", "y19"},
                                    preds)
                  .ok());
  auto collection = system_.GetCollection("years");
  ASSERT_TRUE(collection.ok());
  EXPECT_EQ((*collection)->view_sizes[2], g.num_edges());

  analytics::Bfs bfs(0);
  auto result = system_.RunComputation(bfs, "years");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->per_view.size(), 3u);
}

TEST_F(GraphsurgeApiTest, AggregateViewThroughFacade) {
  ASSERT_TRUE(system_
                  .Execute("create view cities on Calls nodes group by city "
                           "aggregate count(*)")
                  .ok());
  auto view = system_.GetAggregateView("cities");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->graph.num_nodes(), 2u);
}

TEST_F(GraphsurgeApiTest, MultiStatementScript) {
  Status s = system_.Execute(
      "create view A on Calls edges where year = 2019\n"
      "create view collection C on A [small: duration <= 6], "
      "[all: duration <= 34]");
  ASSERT_TRUE(s.ok()) << s.ToString();
  auto c = system_.GetCollection("C");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ((*c)->base_graph, "A");
  analytics::Wcc wcc;
  auto result = system_.RunComputation(wcc, "C");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

TEST_F(GraphsurgeApiTest, RunOnViewSingleGraph) {
  analytics::Wcc wcc;
  auto result = system_.RunOnView(wcc, "Calls");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->empty());
}

TEST_F(GraphsurgeApiTest, Errors) {
  EXPECT_EQ(system_.AddGraph("Calls", PropertyGraph()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(system_.Execute("create view X on NoSuch edges where a = 1")
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(system_.Execute("create bogus").code(), StatusCode::kParseError);
  EXPECT_EQ(
      system_.Execute("create view Y on Calls edges where nosuch = 1").code(),
      StatusCode::kNotFound);
  analytics::Wcc wcc;
  EXPECT_EQ(system_.RunComputation(wcc, "nocollection").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(system_.RunOnView(wcc, "nograph").status().code(),
            StatusCode::kNotFound);
  // Duplicate view name across kinds.
  ASSERT_TRUE(
      system_.Execute("create view V on Calls edges where year = 2019").ok());
  EXPECT_EQ(system_
                .Execute("create view collection V on Calls [a: year = 1]")
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(GraphsurgeApiTest, ProfileReportsLastRun) {
  // Before any computation, Profile carries no per-view table (only the
  // metrics exposition, possibly fed by other tests in this process).
  EXPECT_EQ(system_.Profile().find("view  mode"), std::string::npos);

  ASSERT_TRUE(system_
                  .Execute("create view collection durations on Calls "
                           "[d5: duration <= 5], [d15: duration <= 15], "
                           "[d34: duration <= 34]")
                  .ok());
  analytics::Wcc wcc;
  auto result = system_.RunComputation(wcc, "durations");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::string profile = system_.Profile();
  // The per-view table from the last run...
  EXPECT_NE(profile.find("view  mode"), std::string::npos);
  EXPECT_NE(profile.find("TOTAL"), std::string::npos);
  EXPECT_NE(profile.find("end_to_end_ms="), std::string::npos);
  // ...followed by the process-wide Prometheus exposition.
  EXPECT_NE(profile.find("# TYPE gs_engine_versions_sealed counter"),
            std::string::npos);
  EXPECT_NE(profile.find("gs_executor_views_run"), std::string::npos);
}

TEST_F(GraphsurgeApiTest, ExplainBeforeAndAfterRun) {
  ASSERT_TRUE(system_
                  .Execute("create view collection durations on Calls "
                           "[d5: duration <= 5], [d15: duration <= 15], "
                           "[d34: duration <= 34]")
                  .ok());

  // Before any run: the plan (order source, estimated per-view sizes) is
  // there, the actuals are not.
  auto before = system_.Explain("durations");
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_NE(before->find("order source:"), std::string::npos);
  EXPECT_NE(before->find("estimated ds(B,sigma)="), std::string::npos);
  EXPECT_NE(before->find("est |dC|"), std::string::npos);
  EXPECT_NE(before->find("no recorded run"), std::string::npos);
  EXPECT_EQ(before->find("actual in"), std::string::npos);

  analytics::Wcc wcc;
  auto result = system_.RunComputation(wcc, "durations");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // After a run: estimated-vs-actual diff counts plus the splitting
  // decision table. The statement form must resolve too.
  auto after = system_.Explain("explain durations");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_NE(after->find("actual in"), std::string::npos);
  EXPECT_NE(after->find("actual out"), std::string::npos);
  EXPECT_NE(after->find("last run: strategy="), std::string::npos);
  EXPECT_EQ(after->find("no recorded run"), std::string::npos);

  // EXPLAIN is a GVDL statement: Execute() accepts it (the rendering goes
  // to the log) and unknown targets error out.
  EXPECT_TRUE(system_.Execute("explain durations").ok());
  EXPECT_FALSE(system_.Explain("no_such_collection").ok());
  EXPECT_FALSE(system_.Execute("explain no_such_collection").ok());
}

TEST_F(GraphsurgeApiTest, NameListings) {
  ASSERT_TRUE(
      system_.Execute("create view V2 on Calls edges where year = 2019").ok());
  auto graphs = system_.GraphNames();
  EXPECT_NE(std::find(graphs.begin(), graphs.end(), "Calls"), graphs.end());
  EXPECT_NE(std::find(graphs.begin(), graphs.end(), "V2"), graphs.end());
}

}  // namespace
}  // namespace gs
