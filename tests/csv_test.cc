#include "graph/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/generators.h"

namespace gs {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "gs_csv_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  void WriteFile(const std::string& name, const std::string& content) {
    std::ofstream out(Path(name));
    out << content;
  }

  std::filesystem::path dir_;
};

TEST_F(CsvTest, SplitCsvLineHandlesQuotes) {
  using csv_internal::SplitCsvLine;
  auto f = SplitCsvLine("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], "b");
  f = SplitCsvLine(R"(1,"hello, world","say ""hi""")");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], "hello, world");
  EXPECT_EQ(f[2], "say \"hi\"");
  f = SplitCsvLine("x,,z");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[1], "");
}

TEST_F(CsvTest, LoadsCallGraphStyleCsv) {
  WriteFile("nodes.csv",
            "id,city:string,profession:string\n"
            "10,LA,Engineer\n"
            "20,NY,Doctor\n"
            "30,LA,Lawyer\n");
  WriteFile("edges.csv",
            "src,dst,duration:int,year:int\n"
            "10,20,7,2015\n"
            "20,30,19,2019\n"
            "30,10,,2018\n");  // null duration
  auto g = LoadGraphFromCsv(Path("nodes.csv"), Path("edges.csv"));
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_nodes(), 3u);
  EXPECT_EQ(g->num_edges(), 3u);
  // External ids are renumbered densely in file order.
  EXPECT_EQ(g->node_properties().GetByName(1, "city")->AsString(), "NY");
  EXPECT_EQ(g->edge_properties().GetByName(1, "duration")->AsInt(), 19);
  EXPECT_TRUE(g->edge_properties().GetByName(2, "duration")->is_null());
}

TEST_F(CsvTest, ErrorsAreReported) {
  WriteFile("n1.csv", "id,p:int\n1,5\n1,6\n");
  WriteFile("e1.csv", "src,dst\n1,1\n");
  EXPECT_FALSE(LoadGraphFromCsv(Path("n1.csv"), Path("e1.csv")).ok())
      << "duplicate node id must fail";

  WriteFile("n2.csv", "id,p:int\n1,5\n");
  WriteFile("e2.csv", "src,dst\n1,99\n");
  EXPECT_FALSE(LoadGraphFromCsv(Path("n2.csv"), Path("e2.csv")).ok())
      << "unknown endpoint must fail";

  WriteFile("n3.csv", "id,p:blob\n1,5\n");
  EXPECT_FALSE(LoadGraphFromCsv(Path("n3.csv"), Path("e2.csv")).ok())
      << "unknown type must fail";

  EXPECT_FALSE(
      LoadGraphFromCsv(Path("missing.csv"), Path("e2.csv")).ok());
}

TEST_F(CsvTest, EdgeCaseTable) {
  // Formats real-world exports actually produce: CRLF line endings, quoted
  // commas inside string properties, empty (null) property cells, and the
  // one that must be rejected — duplicate node ids.
  struct Case {
    const char* name;
    const char* nodes;
    const char* edges;
    bool expect_ok;
    void (*check)(const PropertyGraph&);
  };
  const Case kCases[] = {
      {"crlf_line_endings",
       "id,city:string\r\n1,LA\r\n2,NY\r\n",
       "src,dst,w:int\r\n1,2,5\r\n",
       true,
       [](const PropertyGraph& g) {
         EXPECT_EQ(g.num_nodes(), 2u);
         EXPECT_EQ(g.num_edges(), 1u);
         // No trailing \r captured into the last field.
         EXPECT_EQ(g.node_properties().GetByName(0, "city")->AsString(),
                   "LA");
         EXPECT_EQ(g.edge_properties().GetByName(0, "w")->AsInt(), 5);
       }},
      {"quoted_commas_and_escaped_quotes",
       "id,note:string\n1,\"hello, world\"\n2,\"say \"\"hi\"\"\"\n",
       "src,dst\n1,2\n",
       true,
       [](const PropertyGraph& g) {
         EXPECT_EQ(g.node_properties().GetByName(0, "note")->AsString(),
                   "hello, world");
         EXPECT_EQ(g.node_properties().GetByName(1, "note")->AsString(),
                   "say \"hi\"");
       }},
      {"empty_property_cells_are_null",
       "id,city:string,pop:int\n1,,\n2,NY,8\n",
       "src,dst,w:int\n1,2,\n2,1,3\n",
       true,
       [](const PropertyGraph& g) {
         EXPECT_TRUE(g.node_properties().GetByName(0, "city")->is_null());
         EXPECT_TRUE(g.node_properties().GetByName(0, "pop")->is_null());
         EXPECT_EQ(g.node_properties().GetByName(1, "pop")->AsInt(), 8);
         EXPECT_TRUE(g.edge_properties().GetByName(0, "w")->is_null());
         EXPECT_EQ(g.edge_properties().GetByName(1, "w")->AsInt(), 3);
       }},
      {"duplicate_node_ids_rejected",
       "id,city:string\n1,LA\n2,NY\n1,SF\n",
       "src,dst\n1,2\n",
       false, nullptr},
  };
  for (const Case& c : kCases) {
    SCOPED_TRACE(c.name);
    WriteFile("tbl_nodes.csv", c.nodes);
    WriteFile("tbl_edges.csv", c.edges);
    auto g = LoadGraphFromCsv(Path("tbl_nodes.csv"), Path("tbl_edges.csv"));
    EXPECT_EQ(g.ok(), c.expect_ok)
        << (g.ok() ? "unexpectedly loaded" : g.status().ToString());
    if (g.ok() && c.check) c.check(*g);
  }
}

TEST_F(CsvTest, RoundTrip) {
  PropertyGraph g = MakeCallGraphExample();
  ASSERT_TRUE(
      WriteGraphToCsv(g, Path("out_nodes.csv"), Path("out_edges.csv")).ok());
  auto g2 = LoadGraphFromCsv(Path("out_nodes.csv"), Path("out_edges.csv"));
  ASSERT_TRUE(g2.ok()) << g2.status().ToString();
  EXPECT_EQ(g2->num_nodes(), g.num_nodes());
  EXPECT_EQ(g2->num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(g2->edge(e).src, g.edge(e).src);
    EXPECT_EQ(g2->edge(e).dst, g.edge(e).dst);
    EXPECT_EQ(g2->edge_properties().GetByName(e, "year")->AsInt(),
              g.edge_properties().GetByName(e, "year")->AsInt());
  }
}

}  // namespace
}  // namespace gs
