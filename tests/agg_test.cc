// Aggregate (Graph OLAP) views: the paper's Listing 4 examples plus
// aggregate-function edge cases.
#include "agg/aggregate_view.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "gvdl/parser.h"

namespace gs::agg {
namespace {

const gvdl::AggregateViewDef& GetDef(const gvdl::Statement& s) {
  return std::get<gvdl::AggregateViewDef>(s);
}

TEST(AggregateViewTest, CityCallsCity) {
  PropertyGraph g = MakeCallGraphExample();
  auto stmt = gvdl::Parse(
      "create view City-Calls-City on Calls\n"
      "nodes group by city aggregate num-phones: count(*)\n"
      "edges aggregate total-duration: sum(duration)");
  ASSERT_TRUE(stmt.ok());
  auto view = ComputeAggregateView(g, GetDef(*stmt), nullptr);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  // Two cities: LA (5 customers) and NY (3 customers).
  ASSERT_EQ(view->graph.num_nodes(), 2u);
  int64_t total_customers = 0;
  int64_t total_duration = 0;
  for (size_t v = 0; v < 2; ++v) {
    total_customers +=
        view->graph.node_properties().GetByName(v, "num-phones")->AsInt();
  }
  EXPECT_EQ(total_customers, 8);
  for (EdgeId e = 0; e < view->graph.num_edges(); ++e) {
    total_duration += view->graph.edge_properties()
                          .GetByName(e, "total-duration")
                          ->AsInt();
  }
  // Sum of all durations in Figure 1.
  int64_t expected = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    expected += g.edge_properties().GetByName(e, "duration")->AsInt();
  }
  EXPECT_EQ(total_duration, expected);
  // Super-edges are at most 2x2 city pairs.
  EXPECT_LE(view->graph.num_edges(), 4u);
}

TEST(AggregateViewTest, PredicateGroups) {
  PropertyGraph g = MakeCallGraphExample();
  auto stmt = gvdl::Parse(
      "create view tri on Calls nodes group by [\n"
      "(profession='Doctor' and city='NY'),\n"
      "(profession='Lawyer' and city='LA'),\n"
      "(profession='Teacher' and city='DC')]\n"
      "aggregate count(*)");
  ASSERT_TRUE(stmt.ok());
  auto view = ComputeAggregateView(g, GetDef(*stmt), nullptr);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  ASSERT_EQ(view->graph.num_nodes(), 3u);
  // Figure 1: one NY doctor (node 5), one LA lawyer (node 8), no teachers.
  EXPECT_EQ(view->graph.node_properties().GetByName(0, "count")->AsInt(), 1);
  EXPECT_EQ(view->graph.node_properties().GetByName(1, "count")->AsInt(), 1);
  EXPECT_EQ(view->graph.node_properties().GetByName(2, "count")->AsInt(), 0);
  // 6 of 8 customers match no group.
  EXPECT_EQ(view->ungrouped_nodes, 6u);
  // Edges between ungrouped nodes are excluded.
  EXPECT_LE(view->graph.num_edges(), 2u);
}

TEST(AggregateViewTest, MinMaxAvgAggregates) {
  PropertyGraph g = MakeCallGraphExample();
  auto stmt = gvdl::Parse(
      "create view stats on Calls nodes group by city\n"
      "edges aggregate min(duration), max(duration), avg(duration), "
      "count(*)");
  ASSERT_TRUE(stmt.ok());
  auto view = ComputeAggregateView(g, GetDef(*stmt), nullptr);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  // Global invariants across super-edges.
  int64_t min_seen = 1000, max_seen = 0, count_total = 0;
  for (EdgeId e = 0; e < view->graph.num_edges(); ++e) {
    const auto& ep = view->graph.edge_properties();
    min_seen = std::min(min_seen, ep.GetByName(e, "min_duration")->AsInt());
    max_seen = std::max(max_seen, ep.GetByName(e, "max_duration")->AsInt());
    count_total += ep.GetByName(e, "count")->AsInt();
    double avg = ep.GetByName(e, "avg_duration")->AsDouble();
    EXPECT_GE(avg, 1.0);
    EXPECT_LE(avg, 34.0);
  }
  EXPECT_EQ(min_seen, 1);
  EXPECT_EQ(max_seen, 34);
  EXPECT_EQ(count_total, static_cast<int64_t>(g.num_edges()));
}

TEST(AggregateViewTest, GroupByMultipleProperties) {
  PropertyGraph g = MakeCallGraphExample();
  auto stmt = gvdl::Parse(
      "create view cp on Calls nodes group by city, profession "
      "aggregate count(*)");
  ASSERT_TRUE(stmt.ok());
  auto view = ComputeAggregateView(g, GetDef(*stmt), nullptr);
  ASSERT_TRUE(view.ok());
  // Figure 1 combinations: LA/Engineer(3), LA/Doctor(1), LA/Lawyer(1),
  // NY/Lawyer(2), NY/Doctor(1) → 5 groups.
  EXPECT_EQ(view->graph.num_nodes(), 5u);
  int64_t total = 0;
  for (size_t v = 0; v < view->graph.num_nodes(); ++v) {
    total += view->graph.node_properties().GetByName(v, "count")->AsInt();
  }
  EXPECT_EQ(total, 8);
  // Group-by key columns are carried on the super-nodes.
  EXPECT_TRUE(view->graph.node_properties().HasColumn("city"));
  EXPECT_TRUE(view->graph.node_properties().HasColumn("profession"));
}

TEST(AggregateViewTest, Errors) {
  PropertyGraph g = MakeCallGraphExample();
  auto bad_prop = gvdl::Parse(
      "create view x on Calls nodes group by nosuch aggregate count(*)");
  ASSERT_TRUE(bad_prop.ok());
  EXPECT_FALSE(ComputeAggregateView(g, GetDef(*bad_prop), nullptr).ok());

  auto bad_sum = gvdl::Parse(
      "create view x on Calls nodes group by city aggregate sum(profession)");
  ASSERT_TRUE(bad_sum.ok());
  EXPECT_FALSE(ComputeAggregateView(g, GetDef(*bad_sum), nullptr).ok());
}

}  // namespace
}  // namespace gs::agg
