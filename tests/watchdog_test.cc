// Watchdog end-to-end: a healthy full run records zero firings, each health
// rule is driven deterministically (fuzz-hook stall injection for the
// engine-level rules, direct metric manipulation for the unit-level ones),
// /healthz flips to 503 naming the violated rule, and the flight-recorder
// dump parses and carries trace events + metrics + time-series history.
#include "common/watchdog.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/algorithms.h"
#include "api/graphsurge.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/timeseries.h"
#include "differential/differential.h"
#include "differential/fuzz_hooks.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/mutation.h"
#include "json_lite.h"
#include "server/status_server.h"
#include "test_util.h"
#include "views/collection.h"
#include "views/executor.h"
#include "views/live.h"

namespace gs {
namespace {

using differential::Arrange;
using differential::Arranged;
using differential::DataflowOptions;
using differential::Input;
using differential::ShardedDataflow;
using testutil::HttpGet;
using testutil::HttpReply;
using IntPair = std::pair<int64_t, int64_t>;

json_lite::Value ParseJsonOrFail(const std::string& text) {
  json_lite::Value value;
  std::string error;
  EXPECT_TRUE(json_lite::Parse(text, &value, &error))
      << error << "\npayload:\n"
      << text.substr(0, 2000);
  return value;
}

std::string ReadFileOrFail(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_NE(f, nullptr) << "cannot open " << path;
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

bool Contains(const std::vector<std::string>& rules, const std::string& rule) {
  for (const std::string& r : rules) {
    if (r == rule) return true;
  }
  return false;
}

/// Asserts the invariants of one flight-recorder document: the reason names
/// the firing rule, the violated-rule list carries it, and the trace /
/// metrics / time-series sections are all present and well-formed.
void ExpectFlightDumpWellFormed(const std::string& path,
                                const std::string& rule) {
  json_lite::Value doc = ParseJsonOrFail(ReadFileOrFail(path));
  const json_lite::Value* reason = doc.Get("reason");
  ASSERT_NE(reason, nullptr);
  EXPECT_EQ(reason->string, "watchdog:" + rule);
  const json_lite::Value* violated = doc.Get("violated_rules");
  ASSERT_NE(violated, nullptr);
  ASSERT_TRUE(violated->is_array());
  bool found = false;
  for (const json_lite::Value& v : violated->array) {
    if (v.string == rule) found = true;
  }
  EXPECT_TRUE(found) << "dump does not name " << rule;
  EXPECT_NE(doc.Get("trace_events"), nullptr);
  const json_lite::Value* metrics_section = doc.Get("metrics");
  ASSERT_NE(metrics_section, nullptr);
  EXPECT_NE(metrics_section->Get("counters"), nullptr);
  const json_lite::Value* ts = doc.Get("timeseries");
  ASSERT_NE(ts, nullptr);
  EXPECT_NE(ts->Get("series"), nullptr);
  const json_lite::Value* build = doc.Get("build");
  ASSERT_NE(build, nullptr);
  EXPECT_NE(build->Get("git_sha"), nullptr);
}

// The issue's healthy-path acceptance criterion: with hooks off, a full
// 10-view run at W=4 under an active sampler + watchdog (default deadlines)
// records zero firings, and /timeseriez serves sampled history throughout.
// Declared first so it runs before any rule-firing test touches the global
// firing counters and gauges.
TEST(WatchdogHealthyTest, FullTenViewRunRecordsZeroFirings) {
  ASSERT_FALSE(differential::fuzz::GlobalHooks().any());
  metrics::Counter* firings =
      metrics::Registry::Global().GetCounter("gs_watchdog_firings");
  const uint64_t firings_before = firings->Value();

  ASSERT_TRUE(timeseries::Sampler::Global().Start(10).ok());
  watchdog::WatchdogOptions options;  // default (production) deadlines
  options.cadence_ms = 20;
  options.flight_dir = ::testing::TempDir();
  ASSERT_TRUE(watchdog::Watchdog::Global().Start(options).ok());

  server::StatusServer server;
  ASSERT_TRUE(server.Start(0).ok());
  const uint16_t port = server.port();

  GraphsurgeOptions gopts;
  gopts.num_workers = 4;
  Graphsurge system(gopts);
  ASSERT_TRUE(
      system.AddGraph("G", GenerateUniformGraph(1200, 4800, 11)).ok());
  std::vector<std::string> names;
  std::vector<std::function<bool(EdgeId)>> predicates;
  for (int v = 0; v < 10; ++v) {
    names.push_back("v" + std::to_string(v));
    predicates.push_back([v](EdgeId e) {
      return static_cast<int>(e % 12) <= v + 2;
    });
  }
  ASSERT_TRUE(system.CreateCollection("C", "G", names, predicates).ok());

  analytics::Wcc wcc;
  views::ExecutionOptions eopts;
  auto result = system.RunComputation(wcc, "C", eopts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Healthy throughout: 200 "ok\n", and not a single firing.
  HttpReply health = HttpGet(port, "/healthz");
  EXPECT_EQ(health.status_code, 200);
  EXPECT_EQ(health.body, "ok\n");
  EXPECT_TRUE(watchdog::Watchdog::Global().Health().healthy);
  EXPECT_EQ(firings->Value(), firings_before);

  // The sampler has been following the run; /timeseriez must parse and
  // carry at least one series with samples.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  HttpReply series_reply = HttpGet(port, "/timeseriez");
  EXPECT_EQ(series_reply.status_code, 200);
  json_lite::Value doc = ParseJsonOrFail(series_reply.body);
  const json_lite::Value* sampler_state = doc.Get("sampler");
  ASSERT_NE(sampler_state, nullptr);
  EXPECT_TRUE(sampler_state->Get("running")->boolean);
  const json_lite::Value* series = doc.Get("series");
  ASSERT_NE(series, nullptr);
  EXPECT_FALSE(series->object.empty());
  const json_lite::Value* requests = series->Get("gs_status_server_requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_GE(requests->Get("count")->number, 1.0);

  watchdog::Watchdog::Global().Stop();
  timeseries::Sampler::Global().Stop();
  EXPECT_EQ(firings->Value(), firings_before);
}

TEST(WatchdogRuleTest, EpochAdvanceDeadlineFiresAndDumps) {
  watchdog::Watchdog dog;
  watchdog::WatchdogOptions options;
  options.cadence_ms = 3600 * 1000;  // thread idles; EvaluateNow drives
  options.epoch_advance_deadline_ms = 40;
  options.flight_dir = ::testing::TempDir();
  ASSERT_TRUE(dog.Start(options).ok());
  EXPECT_FALSE(dog.Start(options).ok());  // double start rejected

  metrics::Gauge* started = metrics::Registry::Global().GetGauge(
      "gs_live_epoch_advance_started_ms");
  started->Set(static_cast<int64_t>(timeseries::NowMillis()));
  // Fresh advance: still within deadline.
  EXPECT_FALSE(Contains(dog.EvaluateNow(), "epoch_advance_deadline"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(Contains(dog.EvaluateNow(), "epoch_advance_deadline"));

  watchdog::HealthSnapshot health = dog.Health();
  EXPECT_FALSE(health.healthy);
  EXPECT_EQ(health.firings, 1u);
  ASSERT_FALSE(health.last_dump_path.empty());
  EXPECT_NE(health.last_dump_path.find("epoch_advance_deadline"),
            std::string::npos);
  ExpectFlightDumpWellFormed(health.last_dump_path, "epoch_advance_deadline");

  // Edge-triggered: the still-violated rule does not fire again.
  EXPECT_TRUE(Contains(dog.EvaluateNow(), "epoch_advance_deadline"));
  EXPECT_EQ(dog.Health().firings, 1u);

  // The advance finishing (gauge cleared) heals the verdict.
  started->Set(0);
  EXPECT_TRUE(dog.EvaluateNow().empty());
  EXPECT_TRUE(dog.Health().healthy);

  // The health JSON names the SLO histograms alongside the verdict.
  json_lite::Value health_doc = ParseJsonOrFail(dog.RenderHealthJson());
  const json_lite::Value* slo = health_doc.Get("slo_nanos");
  ASSERT_NE(slo, nullptr);
  EXPECT_NE(slo->Get("gs_wal_fsync_nanos"), nullptr);
  EXPECT_NE(slo->Get("gs_live_epoch_advance_nanos"), nullptr);

  dog.Stop();
  dog.Stop();  // idempotent
  EXPECT_TRUE(dog.Health().healthy);
}

TEST(WatchdogRuleTest, WalFsyncLatencySpikeOverDeltaWindow) {
  watchdog::Watchdog dog;
  watchdog::WatchdogOptions options;
  options.cadence_ms = 3600 * 1000;
  options.wal_fsync_p99_ns = 1000;     // any real fsync exceeds this
  options.write_flight_dumps = false;  // master switch: no file
  ASSERT_TRUE(dog.Start(options).ok());

  // No fsyncs since the baseline sync: quiet.
  EXPECT_TRUE(dog.EvaluateNow().empty());
  metrics::Registry::Global()
      .GetHistogram("gs_wal_fsync_nanos")
      ->Observe(50'000'000);
  EXPECT_TRUE(Contains(dog.EvaluateNow(), "wal_fsync_latency"));
  EXPECT_EQ(dog.Health().firings, 1u);
  EXPECT_TRUE(dog.Health().last_dump_path.empty());  // dumps disabled

  // The delta window advanced past the spike: healthy again.
  EXPECT_TRUE(dog.EvaluateNow().empty());
  dog.Stop();
}

TEST(WatchdogRuleTest, IngestLagMonotoneGrowthFires) {
  metrics::Gauge* lag_epoch = metrics::Registry::Global().GetGauge(
      "gs_graph_epoch", {{"graph", "wd_lag"}});
  // Dominate every other graph's epoch so this test controls the max.
  lag_epoch->Set(1000);

  watchdog::Watchdog dog;
  watchdog::WatchdogOptions options;
  options.cadence_ms = 3600 * 1000;
  options.ingest_lag_min = 2;
  options.ingest_lag_increases = 3;
  options.write_flight_dumps = false;
  ASSERT_TRUE(dog.Start(options).ok());  // baseline: lag already 1000-ish

  metrics::Counter* rule_firings = metrics::Registry::Global().GetCounter(
      "gs_watchdog_rule_firings", {{"rule", "ingest_lag"}});
  const uint64_t rule_firings_before = rule_firings->Value();

  // Three consecutive strictly-increasing evaluations above the floor.
  lag_epoch->Set(1001);
  EXPECT_FALSE(Contains(dog.EvaluateNow(), "ingest_lag"));
  lag_epoch->Set(1002);
  EXPECT_FALSE(Contains(dog.EvaluateNow(), "ingest_lag"));
  lag_epoch->Set(1003);
  EXPECT_TRUE(Contains(dog.EvaluateNow(), "ingest_lag"));
  EXPECT_EQ(rule_firings->Value(), rule_firings_before + 1);

  // Lag flat: the streak resets and the rule clears.
  EXPECT_FALSE(Contains(dog.EvaluateNow(), "ingest_lag"));

  // The watchdog records the derived lag series for /timeseriez.
  timeseries::Series* lag_series =
      timeseries::Store::Global().GetSeries("gs_watchdog_ingest_lag");
  ASSERT_NE(lag_series, nullptr);
  EXPECT_GE(lag_series->Stats().count, 4u);

  lag_epoch->Set(0);
  dog.Stop();
}

// The issue's stall-injection acceptance criterion: an injected frontier
// stall (fuzz_hooks) makes the watchdog fire within its deadline, /healthz
// flips to 503 naming frontier_stall, and the flight dump is well-formed.
TEST(WatchdogIntegrationTest, FrontierStallFlips503AndDumps) {
  differential::fuzz::Hooks hooks;
  hooks.stall_frontier_ms = 600;
  differential::fuzz::ScopedHooks scoped(hooks);

  watchdog::WatchdogOptions options;
  options.cadence_ms = 10;
  options.frontier_stall_ms = 50;
  options.flight_dir = ::testing::TempDir();
  ASSERT_TRUE(watchdog::Watchdog::Global().Start(options).ok());

  server::StatusServer server;
  ASSERT_TRUE(server.Start(0).ok());

  DataflowOptions dopts;
  dopts.num_workers = 2;
  ShardedDataflow dataflow(dopts);
  std::vector<Input<IntPair>> inputs;
  std::vector<Arranged<int64_t, int64_t>> arranged;
  inputs.reserve(dopts.num_workers);
  for (size_t w = 0; w < dataflow.num_workers(); ++w) {
    inputs.emplace_back(dataflow.worker(w));
    arranged.push_back(Arrange(inputs[w].stream()));
  }
  Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    IntPair p{rng.Uniform(0, 64), rng.Uniform(0, 1000)};
    inputs[dataflow.OwnerOfHash(HashValue(p))].Send(p, 1);
  }

  Status step_status = Status::Ok();
  std::thread runner([&] { step_status = dataflow.Step(); });

  // The stall holds the round open for 600ms; the watchdog must fire within
  // deadline + cadence (~60ms), leaving a wide window to observe the 503.
  bool fired = false;
  for (int i = 0; i < 1000 && !fired; ++i) {
    fired = !watchdog::Watchdog::Global().Health().healthy;
    if (!fired) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(fired) << "watchdog did not fire during the injected stall";

  HttpReply reply = HttpGet(server.port(), "/healthz");
  EXPECT_EQ(reply.status_code, 503);
  json_lite::Value verdict = ParseJsonOrFail(reply.body);
  EXPECT_FALSE(verdict.Get("healthy")->boolean);
  const json_lite::Value* violated = verdict.Get("violated_rules");
  ASSERT_NE(violated, nullptr);
  bool named = false;
  for (const json_lite::Value& v : violated->array) {
    if (v.string == "frontier_stall") named = true;
  }
  EXPECT_TRUE(named) << reply.body;

  runner.join();
  ASSERT_TRUE(step_status.ok()) << step_status.ToString();

  // Progress resumed: the rule clears within a few evaluation ticks.
  bool healed = false;
  for (int i = 0; i < 400 && !healed; ++i) {
    healed = watchdog::Watchdog::Global().Health().healthy;
    if (!healed) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(healed);

  watchdog::HealthSnapshot health = watchdog::Watchdog::Global().Health();
  EXPECT_GE(health.firings, 1u);
  ASSERT_FALSE(health.last_dump_path.empty());
  EXPECT_NE(health.last_dump_path.find("frontier_stall"), std::string::npos);
  ExpectFlightDumpWellFormed(health.last_dump_path, "frontier_stall");
  EXPECT_EQ(HttpGet(server.port(), "/healthz").body, "ok\n");

  watchdog::Watchdog::Global().Stop();
}

// The second injection hook: a delayed epoch seal pushes a real
// LiveRun::AdvanceEpoch past the watchdog's epoch_advance_deadline.
TEST(WatchdogIntegrationTest, EpochSealDelayTripsAdvanceDeadline) {
  differential::fuzz::Hooks hooks;
  hooks.delay_epoch_seal_ms = 400;
  differential::fuzz::ScopedHooks scoped(hooks);

  PropertyGraph g;
  g.AddNodes(24);
  ASSERT_TRUE(g.edge_properties().AddColumn("w", PropertyType::kInt).ok());
  Rng rng(17);
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(g.AddEdge(rng.Index(24), rng.Index(24)).ok());
    ASSERT_TRUE(g.edge_properties()
                    .AppendRow({PropertyValue(rng.Uniform(0, 15))})
                    .ok());
  }
  const int wcol = g.FindWeightColumn("w");
  ASSERT_GE(wcol, 0);
  std::vector<std::function<bool(EdgeId)>> preds;
  for (int64_t threshold : {4, 8, 12}) {
    preds.push_back([&g, wcol, threshold](EdgeId e) {
      return g.ResolveWeighted(e, wcol).weight <= threshold;
    });
  }
  preds.push_back([](EdgeId) { return true; });

  views::MaterializeOptions mopts;
  auto col = views::MaterializeCollectionWith(g, "c", {"a", "b", "c", "d"},
                                              preds, mopts);
  ASSERT_TRUE(col.ok()) << col.status().ToString();
  views::MaterializedCollection mc = std::move(col).value();

  analytics::Wcc wcc;
  views::LiveRunOptions lopts;
  lopts.weight_column = wcol;  // full_compaction_period 1: every epoch seals
  auto live = views::LiveRun::Start(wcc, g, &mc, lopts);
  ASSERT_TRUE(live.ok()) << live.status().ToString();

  watchdog::Watchdog dog;
  watchdog::WatchdogOptions options;
  options.cadence_ms = 10;
  options.epoch_advance_deadline_ms = 50;
  options.write_flight_dumps = false;
  ASSERT_TRUE(dog.Start(options).ok());

  MutationEffects effects;
  Status advanced = Status::Ok();
  std::thread runner([&] {
    Status applied =
        ApplyMutationBatch(&g, {Mutation::RemoveEdge(0)}, &effects);
    if (!applied.ok()) {
      advanced = applied;
      return;
    }
    Status maintained =
        views::UpdateCollectionForMutations(&mc, g, effects.touched_edges);
    if (!maintained.ok()) {
      advanced = maintained;
      return;
    }
    advanced = live.value()->AdvanceEpoch(effects.touched_edges);
  });

  bool fired = false;
  for (int i = 0; i < 1000 && !fired; ++i) {
    fired = Contains(dog.Health().violated_rules, "epoch_advance_deadline");
    if (!fired) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(fired)
      << "epoch_advance_deadline did not fire during the delayed seal";

  runner.join();
  ASSERT_TRUE(advanced.ok()) << advanced.ToString();

  // The advance finished: its RAII scope cleared the in-progress marker.
  EXPECT_TRUE(dog.EvaluateNow().empty());
  dog.Stop();
}

// RAII environment variable for the override tests: set on construction,
// unset on destruction so state never leaks across tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

TEST(WatchdogEnvOverrideTest, ValidValuesOverrideThresholds) {
  ScopedEnv stall("GRAPHSURGE_WATCHDOG_FRONTIER_STALL_MS", "1234");
  ScopedEnv deadline("GRAPHSURGE_WATCHDOG_EPOCH_ADVANCE_DEADLINE_MS", "777");
  ScopedEnv fsync("GRAPHSURGE_WATCHDOG_WAL_FSYNC_P99_NS", "5000000");
  ScopedEnv lag_min("GRAPHSURGE_WATCHDOG_INGEST_LAG_MIN", "9");
  ScopedEnv lag_inc("GRAPHSURGE_WATCHDOG_INGEST_LAG_INCREASES", "6");
  watchdog::WatchdogOptions options;
  watchdog::Watchdog::ApplyEnvOverrides(&options);
  EXPECT_EQ(options.frontier_stall_ms, 1234u);
  EXPECT_EQ(options.epoch_advance_deadline_ms, 777u);
  EXPECT_EQ(options.wal_fsync_p99_ns, 5000000u);
  EXPECT_EQ(options.ingest_lag_min, 9u);
  EXPECT_EQ(options.ingest_lag_increases, 6);
}

TEST(WatchdogEnvOverrideTest, InvalidValuesKeepDefaults) {
  const watchdog::WatchdogOptions defaults;
  {
    ScopedEnv bad("GRAPHSURGE_WATCHDOG_FRONTIER_STALL_MS", "soon");
    watchdog::WatchdogOptions options;
    watchdog::Watchdog::ApplyEnvOverrides(&options);
    EXPECT_EQ(options.frontier_stall_ms, defaults.frontier_stall_ms);
  }
  {
    ScopedEnv bad("GRAPHSURGE_WATCHDOG_EPOCH_ADVANCE_DEADLINE_MS", "-5");
    watchdog::WatchdogOptions options;
    watchdog::Watchdog::ApplyEnvOverrides(&options);
    EXPECT_EQ(options.epoch_advance_deadline_ms,
              defaults.epoch_advance_deadline_ms);
  }
  {
    ScopedEnv bad("GRAPHSURGE_WATCHDOG_WAL_FSYNC_P99_NS", "12monkeys");
    watchdog::WatchdogOptions options;
    watchdog::Watchdog::ApplyEnvOverrides(&options);
    EXPECT_EQ(options.wal_fsync_p99_ns, defaults.wal_fsync_p99_ns);
  }
  {
    ScopedEnv bad("GRAPHSURGE_WATCHDOG_INGEST_LAG_MIN", "");
    watchdog::WatchdogOptions options;
    watchdog::Watchdog::ApplyEnvOverrides(&options);
    EXPECT_EQ(options.ingest_lag_min, defaults.ingest_lag_min);
  }
}

TEST(WatchdogEnvOverrideTest, UnsetVariablesLeaveOptionsUntouched) {
  // No GRAPHSURGE_WATCHDOG_* set: caller-provided values survive.
  watchdog::WatchdogOptions options;
  options.frontier_stall_ms = 42;
  options.ingest_lag_increases = 11;
  watchdog::Watchdog::ApplyEnvOverrides(&options);
  EXPECT_EQ(options.frontier_stall_ms, 42u);
  EXPECT_EQ(options.ingest_lag_increases, 11);
}

}  // namespace
}  // namespace gs
