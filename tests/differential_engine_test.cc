// Core (non-iterative) engine behavior: linear operators, capture semantics,
// join bilinearity across versions, reduce incrementality.
#include "differential/differential.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace gs::differential {
namespace {

using IntPair = std::pair<int64_t, int64_t>;

// Renders a consolidated batch as a map for comparisons.
template <typename D>
std::map<D, Diff> ToMap(const Batch<D>& batch) {
  std::map<D, Diff> m;
  for (const auto& u : batch) m[u.data] += u.diff;
  for (auto it = m.begin(); it != m.end();) {
    it = it->second == 0 ? m.erase(it) : std::next(it);
  }
  return m;
}

TEST(EngineTest, MapFilterNegateConcat) {
  Dataflow df;
  Input<int64_t> in(&df);
  auto doubled = in.stream().Map([](const int64_t& x) { return x * 2; });
  auto evens = doubled.Filter([](const int64_t& x) { return x % 4 == 0; });
  auto all = doubled.Concat(evens.Negate());
  auto* cap = Capture(all);

  in.Send(1, 1);
  in.Send(2, 1);
  in.Send(3, 2);
  ASSERT_TRUE(df.Step().ok());

  // doubled = {2:1, 4:1, 6:2}; evens = {4:1}; all = doubled - evens.
  auto m = ToMap(cap->AccumulatedAt(0));
  EXPECT_EQ(m, (std::map<int64_t, Diff>{{2, 1}, {6, 2}}));
}

TEST(EngineTest, FlatMapExpandsRecords) {
  Dataflow df;
  Input<int64_t> in(&df);
  auto out = in.stream().FlatMap(
      [](const int64_t& x, std::vector<int64_t>* out) {
        for (int64_t i = 0; i < x; ++i) out->push_back(i);
      });
  auto* cap = Capture(out);
  in.Send(3, 1);
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(ToMap(cap->AccumulatedAt(0)),
            (std::map<int64_t, Diff>{{0, 1}, {1, 1}, {2, 1}}));
}

TEST(EngineTest, RetractionsCancelAcrossVersions) {
  Dataflow df;
  Input<int64_t> in(&df);
  auto* cap = Capture(in.stream().Map([](const int64_t& x) { return x; }));

  in.Send(10, 1);
  in.Send(20, 1);
  ASSERT_TRUE(df.Step().ok());
  in.Send(10, -1);  // version 1 removes 10
  in.Send(30, 1);
  ASSERT_TRUE(df.Step().ok());

  EXPECT_EQ(ToMap(cap->AccumulatedAt(0)),
            (std::map<int64_t, Diff>{{10, 1}, {20, 1}}));
  EXPECT_EQ(ToMap(cap->AccumulatedAt(1)),
            (std::map<int64_t, Diff>{{20, 1}, {30, 1}}));
  EXPECT_EQ(ToMap(cap->VersionDiffs(1)),
            (std::map<int64_t, Diff>{{10, -1}, {30, 1}}));
}

TEST(EngineTest, JoinMatchesByKey) {
  Dataflow df;
  Input<IntPair> left(&df);
  Input<IntPair> right(&df);
  auto joined = Join(left.stream(), right.stream(),
                     [](const int64_t& k, const int64_t& a, const int64_t& b) {
                       return std::make_tuple(k, a, b);
                     });
  auto* cap = Capture(joined);

  left.Send({1, 10}, 1);
  left.Send({2, 20}, 1);
  right.Send({1, 100}, 1);
  right.Send({3, 300}, 1);
  ASSERT_TRUE(df.Step().ok());

  auto m = ToMap(cap->AccumulatedAt(0));
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m.begin()->first, std::make_tuple(int64_t{1}, int64_t{10},
                                              int64_t{100}));
}

TEST(EngineTest, JoinIsBilinearAcrossVersions) {
  // (A + δA) ⋈ (B + δB) accumulated at v1 must equal the full join of the
  // accumulated inputs, including the δA ⋈ δB cross term.
  Dataflow df;
  Input<IntPair> left(&df);
  Input<IntPair> right(&df);
  auto joined = Join(left.stream(), right.stream(),
                     [](const int64_t& k, const int64_t& a, const int64_t& b) {
                       return std::make_pair(a, b);
                     });
  auto* cap = Capture(joined);

  left.Send({1, 10}, 1);
  right.Send({1, 100}, 1);
  ASSERT_TRUE(df.Step().ok());

  left.Send({1, 11}, 1);    // new left value
  right.Send({1, 101}, 1);  // new right value — cross term (11,101) needed
  right.Send({1, 100}, -1);
  ASSERT_TRUE(df.Step().ok());

  // At v1: left = {10, 11}, right = {101}. Join = {(10,101), (11,101)}.
  EXPECT_EQ(ToMap(cap->AccumulatedAt(1)),
            (std::map<IntPair, Diff>{{{10, 101}, 1}, {{11, 101}, 1}}));
}

TEST(EngineTest, JoinWithMultiplicities) {
  Dataflow df;
  Input<IntPair> left(&df);
  Input<IntPair> right(&df);
  auto joined = Join(left.stream(), right.stream(),
                     [](const int64_t&, const int64_t& a, const int64_t& b) {
                       return a + b;
                     });
  auto* cap = Capture(joined);
  left.Send({1, 5}, 2);    // multiplicity 2
  right.Send({1, 7}, 3);   // multiplicity 3
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(ToMap(cap->AccumulatedAt(0)),
            (std::map<int64_t, Diff>{{12, 6}}));  // 2 * 3
}

TEST(EngineTest, ReduceMinTracksMinimum) {
  Dataflow df;
  Input<IntPair> in(&df);
  auto mins = ReduceMin(in.stream());
  auto* cap = Capture(mins);

  in.Send({1, 30}, 1);
  in.Send({1, 10}, 1);
  in.Send({2, 99}, 1);
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(ToMap(cap->AccumulatedAt(0)),
            (std::map<IntPair, Diff>{{{1, 10}, 1}, {{2, 99}, 1}}));

  in.Send({1, 10}, -1);  // retract the minimum; falls back to 30
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(ToMap(cap->AccumulatedAt(1)),
            (std::map<IntPair, Diff>{{{1, 30}, 1}, {{2, 99}, 1}}));
  // Only key 1 changed: version diff touches exactly that key.
  auto d = ToMap(cap->VersionDiffs(1));
  EXPECT_EQ(d, (std::map<IntPair, Diff>{{{1, 10}, -1}, {{1, 30}, 1}}));

  in.Send({2, 50}, 1);  // improve key 2's min
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(ToMap(cap->AccumulatedAt(2)),
            (std::map<IntPair, Diff>{{{1, 30}, 1}, {{2, 50}, 1}}));
}

TEST(EngineTest, ReduceSkipsUnaffectedKeys) {
  Dataflow df;
  Input<IntPair> in(&df);
  auto mins = ReduceMin(in.stream());
  Capture(mins);

  const int kKeys = 1000;
  for (int64_t k = 0; k < kKeys; ++k) in.Send({k, k * 10}, 1);
  ASSERT_TRUE(df.Step().ok());
  uint64_t evals_v0 = df.stats().reduce_evaluations;

  in.Send({7, 1}, 1);  // touch a single key
  ASSERT_TRUE(df.Step().ok());
  uint64_t evals_v1 = df.stats().reduce_evaluations - evals_v0;
  EXPECT_LE(evals_v1, 4u) << "incremental step must not re-evaluate all keys";
}

TEST(EngineTest, CountAndDistinct) {
  Dataflow df;
  Input<IntPair> in(&df);
  auto counts = Count(in.stream());
  auto* cap_counts = Capture(counts);
  Input<int64_t> din(&df);
  auto distinct = Distinct(din.stream());
  auto* cap_distinct = Capture(distinct);

  in.Send({1, 5}, 1);
  in.Send({1, 6}, 1);
  in.Send({1, 7}, 2);
  din.Send(4, 3);  // multiplicity 3 → appears once
  din.Send(9, 1);
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(ToMap(cap_counts->AccumulatedAt(0)),
            (std::map<IntPair, Diff>{{{1, 4}, 1}}));
  EXPECT_EQ(ToMap(cap_distinct->AccumulatedAt(0)),
            (std::map<int64_t, Diff>{{4, 1}, {9, 1}}));

  din.Send(4, -3);  // fully retract → disappears
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(ToMap(cap_distinct->AccumulatedAt(1)),
            (std::map<int64_t, Diff>{{9, 1}}));
}

TEST(EngineTest, NoChangeProducesNoWork) {
  Dataflow df;
  Input<IntPair> in(&df);
  auto mins = ReduceMin(in.stream());
  auto* cap = Capture(mins);
  for (int64_t k = 0; k < 100; ++k) in.Send({k, k}, 1);
  ASSERT_TRUE(df.Step().ok());
  uint64_t published_v0 = df.stats().updates_published;

  // Empty version: nothing may be recomputed or published.
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(df.stats().updates_published, published_v0);
  EXPECT_TRUE(cap->VersionDiffs(1).empty());
}

TEST(EngineTest, StatsTrackWork) {
  Dataflow df;
  Input<IntPair> left(&df);
  Input<IntPair> right(&df);
  auto joined = Join(left.stream(), right.stream(),
                     [](const int64_t& k, const int64_t&, const int64_t&) {
                       return k;
                     });
  Capture(joined);
  left.Send({1, 1}, 1);
  right.Send({1, 2}, 1);
  right.Send({1, 3}, 1);
  ASSERT_TRUE(df.Step().ok());
  EXPECT_GE(df.stats().join_matches, 2u);
  EXPECT_GT(df.stats().updates_published, 0u);
  EXPECT_GT(df.scheduler().events_processed(), 0u);
}

}  // namespace
}  // namespace gs::differential
