#include "common/status.h"

#include <gtest/gtest.h>

namespace gs {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad view name");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad view name");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad view name");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseMacros(int x, int* out) {
  GS_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  GS_RETURN_IF_ERROR(Status::Ok());
  *out = v * 2;
  return Status::Ok();
}

TEST(StatusOrTest, MacrosPropagate) {
  int out = 0;
  EXPECT_TRUE(UseMacros(21, &out).ok());
  EXPECT_EQ(out, 42);
  Status err = UseMacros(-1, &out);
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

}  // namespace
}  // namespace gs
