#include "common/trace_event.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "differential/differential.h"
#include "json_lite.h"

namespace gs::trace {
namespace {

class TraceEventTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(false);
    ClearForTest();
  }
  void TearDown() override {
    SetEnabled(false);
    ClearForTest();
  }
};

// Parses a trace dump and returns the traceEvents array, failing the test on
// malformed JSON.
json_lite::Value ParseTrace(const std::string& text) {
  json_lite::Value root;
  std::string error;
  EXPECT_TRUE(json_lite::Parse(text, &root, &error)) << error;
  return root;
}

TEST_F(TraceEventTest, DisabledRecordsNothing) {
  AddInstantEvent("test", "ignored");
  { Span span("test", "also_ignored"); }
  json_lite::Value root = ParseTrace(ToJson());
  const json_lite::Value* events = root.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->array.empty());
}

TEST_F(TraceEventTest, EmptyDumpIsValidJson) {
  json_lite::Value root = ParseTrace(ToJson());
  ASSERT_TRUE(root.is_object());
  ASSERT_NE(root.Get("traceEvents"), nullptr);
  EXPECT_TRUE(root.Get("traceEvents")->is_array());
  ASSERT_NE(root.Get("displayTimeUnit"), nullptr);
  EXPECT_EQ(root.Get("displayTimeUnit")->string, "ms");
}

TEST_F(TraceEventTest, RecordsSpanInstantAndCounter) {
  SetEnabled(true);
  { Span span("cat_span", "my_span", /*version=*/3); }
  AddInstantEvent("cat_instant", "my_instant");
  AddCounterEvent("cat_counter", "my_counter", 42);
  SetEnabled(false);

  json_lite::Value root = ParseTrace(ToJson());
  const json_lite::Value* events = root.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 3u);

  // Chrome trace-event required fields on every event.
  for (const json_lite::Value& e : events->array) {
    ASSERT_TRUE(e.is_object());
    EXPECT_NE(e.Get("name"), nullptr);
    EXPECT_NE(e.Get("cat"), nullptr);
    ASSERT_NE(e.Get("ph"), nullptr);
    EXPECT_NE(e.Get("ts"), nullptr);
    EXPECT_NE(e.Get("pid"), nullptr);
    EXPECT_NE(e.Get("tid"), nullptr);
  }

  const json_lite::Value& span = events->array[0];
  EXPECT_EQ(span.Get("ph")->string, "X");
  EXPECT_EQ(span.Get("name")->string, "my_span");
  ASSERT_NE(span.Get("dur"), nullptr);
  ASSERT_NE(span.Get("args"), nullptr);
  EXPECT_EQ(span.Get("args")->Get("version")->number, 3);

  const json_lite::Value& instant = events->array[1];
  EXPECT_EQ(instant.Get("ph")->string, "i");
  EXPECT_EQ(instant.Get("name")->string, "my_instant");

  const json_lite::Value& counter = events->array[2];
  EXPECT_EQ(counter.Get("ph")->string, "C");
  ASSERT_NE(counter.Get("args"), nullptr);
  EXPECT_EQ(counter.Get("args")->Get("value")->number, 42);
}

TEST_F(TraceEventTest, LongNamesAreTruncatedNotCorrupted) {
  SetEnabled(true);
  std::string long_name(200, 'x');
  AddInstantEvent("test", long_name.c_str());
  SetEnabled(false);
  json_lite::Value root = ParseTrace(ToJson());
  const auto& events = root.Get("traceEvents")->array;
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].Get("name")->string, std::string(kNameCapacity - 1, 'x'));
}

TEST_F(TraceEventTest, TidUsesWorkerIdWhenSet) {
  SetEnabled(true);
  {
    ScopedWorkerId tag(5);
    AddInstantEvent("test", "tagged");
  }
  AddInstantEvent("test", "untagged");
  SetEnabled(false);
  json_lite::Value root = ParseTrace(ToJson());
  const auto& events = root.Get("traceEvents")->array;
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].Get("tid")->number, 5);
  // Untagged threads get a synthetic tid ≥ 1000.
  EXPECT_GE(events[1].Get("tid")->number, 1000);
}

TEST_F(TraceEventTest, SpanStartedWhileDisabledStaysDisabled) {
  {
    Span span("test", "pre_enable");
    // The span destructs while recording is enabled but must not record —
    // it captured no valid start time.
    SetEnabled(true);
  }
  SetEnabled(false);
  json_lite::Value root = ParseTrace(ToJson());
  EXPECT_TRUE(root.Get("traceEvents")->array.empty());
}

TEST_F(TraceEventTest, WriteJsonRoundTripsThroughDisk) {
  SetEnabled(true);
  { Span span("test", "disk_span"); }
  SetEnabled(false);
  std::string path = ::testing::TempDir() + "/gs_trace_test.json";
  ASSERT_TRUE(WriteJson(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  json_lite::Value root = ParseTrace(buffer.str());
  ASSERT_EQ(root.Get("traceEvents")->array.size(), 1u);
  EXPECT_EQ(root.Get("traceEvents")->array[0].Get("name")->string,
            "disk_span");
  std::remove(path.c_str());
}

// End-to-end: run a real sharded differential computation with tracing on
// and check the dump is a loadable Chrome/Perfetto trace with the expected
// engine spans — the programmatic stand-in for "loads in ui.perfetto.dev".
TEST_F(TraceEventTest, EngineRunProducesLoadablePerfettoTrace) {
  namespace dd = ::gs::differential;
  SetEnabled(true);
  {
    dd::DataflowOptions options;
    options.num_workers = 2;
    dd::ShardedDataflow sharded(options);
    std::vector<dd::Input<std::pair<uint64_t, int64_t>>> inputs;
    for (size_t w = 0; w < sharded.num_workers(); ++w) {
      inputs.emplace_back(sharded.worker(w));
      dd::Capture(dd::ReduceMin(inputs[w].stream()));
    }
    for (int64_t i = 0; i < 1000; ++i) {
      uint64_t key = static_cast<uint64_t>(i) % 64;
      inputs[sharded.OwnerOfHash(HashValue(key))].Send({key, i}, 1);
    }
    ASSERT_TRUE(sharded.Step().ok());
  }
  SetEnabled(false);

  json_lite::Value root = ParseTrace(ToJson());
  const json_lite::Value* events = root.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_FALSE(events->array.empty());

  bool saw_step = false;
  bool saw_seal = false;
  bool saw_op = false;
  for (const json_lite::Value& e : events->array) {
    ASSERT_TRUE(e.is_object());
    ASSERT_NE(e.Get("ph"), nullptr);
    ASSERT_NE(e.Get("ts"), nullptr);
    ASSERT_NE(e.Get("pid"), nullptr);
    ASSERT_NE(e.Get("tid"), nullptr);
    const std::string& ph = e.Get("ph")->string;
    if (ph == "X") {
      ASSERT_NE(e.Get("dur"), nullptr);
    }
    const std::string& cat = e.Get("cat")->string;
    const std::string& name = e.Get("name")->string;
    if (cat == "engine" && name == "step") saw_step = true;
    if (cat == "engine" && name == "seal") saw_seal = true;
    if (cat == "op") saw_op = true;
  }
  EXPECT_TRUE(saw_step);
  EXPECT_TRUE(saw_seal);
  EXPECT_TRUE(saw_op);
}

// Overflowing a thread's ring buffer must keep the dump a well-formed
// trace: newest events win, spans stay properly formed, and the JSON still
// parses. Nested outer/inner spans across the wrap point exercise the case
// where an inner span survives but its enclosing outer span was evicted.
TEST_F(TraceEventTest, RingWraparoundDropsOldestKeepsJsonWellFormed) {
  // Keep in sync with ThreadBuffer::kCapacity in trace_event.cc.
  constexpr size_t kRingCapacity = 16384;
  constexpr size_t kPairs = kRingCapacity / 2 + 512;  // overflow by ~1024
  SetEnabled(true);
  for (size_t i = 0; i < kPairs; ++i) {
    std::string name = "outer_" + std::to_string(i);
    Span outer("wrap", name.c_str(), static_cast<uint32_t>(i));
    std::string inner_name = "inner_" + std::to_string(i);
    Span inner("wrap", inner_name.c_str(), static_cast<uint32_t>(i));
  }
  SetEnabled(false);

  // Structured view: exactly one ring of events survives, and they are the
  // newest (the first recorded pairs were evicted).
  std::vector<CollectedEvent> events = CollectStructured();
  ASSERT_EQ(events.size(), kRingCapacity);
  uint32_t min_version = UINT32_MAX;
  uint32_t max_version = 0;
  for (const CollectedEvent& e : events) {
    ASSERT_EQ(e.phase, 'X');
    EXPECT_EQ(e.category, "wrap");
    min_version = std::min(min_version, e.version);
    max_version = std::max(max_version, e.version);
  }
  EXPECT_EQ(max_version, kPairs - 1);                  // newest kept
  EXPECT_EQ(min_version, kPairs - kRingCapacity / 2);  // oldest dropped
  // Spans destruct inner-first, so events are ordered inner_i, outer_i,
  // inner_i+1, ... — every surviving pair must still nest (inner's interval
  // inside outer's), even right after the wrap seam.
  for (size_t i = 0; i + 1 < events.size(); i += 2) {
    const CollectedEvent& inner = events[i];
    const CollectedEvent& outer = events[i + 1];
    ASSERT_EQ(inner.version, outer.version);
    EXPECT_GE(inner.ts_ns, outer.ts_ns);
    EXPECT_LE(inner.ts_ns + inner.dur_ns, outer.ts_ns + outer.dur_ns);
  }

  // The Chrome-format dump of a wrapped buffer still parses.
  json_lite::Value root = ParseTrace(ToJson());
  EXPECT_EQ(root.Get("traceEvents")->array.size(), kRingCapacity);
}

}  // namespace
}  // namespace gs::trace
