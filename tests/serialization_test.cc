// Binary persistence round-trips for graphs and materialized collections.
#include "views/serialization.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "graph/generators.h"
#include "gvdl/parser.h"

namespace gs::views {
namespace {

class SerializationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "gs_ser_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(SerializationTest, GraphRoundTrip) {
  PropertyGraph g = MakeCallGraphExample();
  ASSERT_TRUE(SaveGraph(g, Path("g.bin")).ok());
  auto loaded = LoadGraph(Path("g.bin"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded->num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(loaded->edge(e).src, g.edge(e).src);
    EXPECT_EQ(loaded->edge(e).dst, g.edge(e).dst);
    EXPECT_EQ(loaded->edge_properties().GetByName(e, "duration")->AsInt(),
              g.edge_properties().GetByName(e, "duration")->AsInt());
  }
  for (VertexId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(loaded->node_properties().GetByName(v, "city")->AsString(),
              g.node_properties().GetByName(v, "city")->AsString());
  }
}

TEST_F(SerializationTest, GraphWithNullsAndDoubles) {
  PropertyGraph g;
  g.AddNodes(2);
  ASSERT_TRUE(g.node_properties().AddColumn("w", PropertyType::kDouble).ok());
  ASSERT_TRUE(g.node_properties().AddColumn("b", PropertyType::kBool).ok());
  ASSERT_TRUE(
      g.node_properties().AppendRow({PropertyValue(2.5), PropertyValue(true)})
          .ok());
  ASSERT_TRUE(g.node_properties()
                  .AppendRow({PropertyValue::Null(), PropertyValue::Null()})
                  .ok());
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(SaveGraph(g, Path("g2.bin")).ok());
  auto loaded = LoadGraph(Path("g2.bin"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->node_properties().Get(0, 0).AsDouble(), 2.5);
  EXPECT_TRUE(loaded->node_properties().Get(0, 1).AsBool());
  EXPECT_TRUE(loaded->node_properties().Get(1, 0).is_null());
}

TEST_F(SerializationTest, CollectionRoundTrip) {
  PropertyGraph g = MakeCallGraphExample();
  auto stmt = gvdl::Parse(
      "create view collection c on Calls "
      "[a: duration <= 5], [b: year = 2019], [c: duration <= 34]");
  ASSERT_TRUE(stmt.ok());
  MaterializeOptions mopts;
  auto mc = MaterializeCollection(
      g, std::get<gvdl::ViewCollectionDef>(*stmt), mopts);
  ASSERT_TRUE(mc.ok());

  ASSERT_TRUE(SaveCollection(*mc, Path("c.bin")).ok());
  auto loaded = LoadCollection(Path("c.bin"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name, mc->name);
  EXPECT_EQ(loaded->base_graph, "Calls");
  EXPECT_EQ(loaded->view_names, mc->view_names);
  EXPECT_EQ(loaded->order, mc->order);
  EXPECT_EQ(loaded->view_sizes, mc->view_sizes);
  EXPECT_EQ(loaded->diff_sizes, mc->diff_sizes);
  EXPECT_EQ(loaded->total_diffs, mc->total_diffs);
  for (size_t t = 0; t < mc->num_views(); ++t) {
    EXPECT_EQ(loaded->diffs.Reconstruct(t), mc->diffs.Reconstruct(t));
  }
}

TEST_F(SerializationTest, RejectsCorruptFiles) {
  // Wrong magic.
  {
    std::ofstream out(Path("bad.bin"), std::ios::binary);
    out << "NOTAMAGIC and some trailing garbage";
  }
  EXPECT_FALSE(LoadGraph(Path("bad.bin")).ok());
  EXPECT_FALSE(LoadCollection(Path("bad.bin")).ok());

  // Truncation: save a real graph, then cut the file in half.
  PropertyGraph g = MakeCallGraphExample();
  ASSERT_TRUE(SaveGraph(g, Path("t.bin")).ok());
  auto size = std::filesystem::file_size(Path("t.bin"));
  std::filesystem::resize_file(Path("t.bin"), size / 2);
  EXPECT_FALSE(LoadGraph(Path("t.bin")).ok());

  // Missing file.
  EXPECT_EQ(LoadGraph(Path("nope.bin")).status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace gs::views
