// Focused operator-level coverage beyond the engine basics: fan-out,
// multiplicity algebra, derived reductions, and incremental corrections.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "differential/differential.h"

namespace gs::differential {
namespace {

using IntPair = std::pair<int64_t, int64_t>;

template <typename D>
std::map<D, Diff> ToMap(const Batch<D>& batch) {
  std::map<D, Diff> m;
  for (const auto& u : batch) m[u.data] += u.diff;
  for (auto it = m.begin(); it != m.end();) {
    it = it->second == 0 ? m.erase(it) : std::next(it);
  }
  return m;
}

TEST(OperatorTest, FanOutDeliversToAllSubscribers) {
  Dataflow df;
  Input<int64_t> in(&df);
  auto s = in.stream();
  auto* cap1 = Capture(s.Map([](const int64_t& x) { return x + 1; }));
  auto* cap2 = Capture(s.Map([](const int64_t& x) { return x * 10; }));
  in.Send(4, 1);
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(ToMap(cap1->AccumulatedAt(0)), (std::map<int64_t, Diff>{{5, 1}}));
  EXPECT_EQ(ToMap(cap2->AccumulatedAt(0)),
            (std::map<int64_t, Diff>{{40, 1}}));
}

TEST(OperatorTest, MapPreservesMultiplicity) {
  Dataflow df;
  Input<int64_t> in(&df);
  auto* cap = Capture(in.stream().Map([](const int64_t& x) { return x % 2; }));
  in.Send(2, 3);
  in.Send(4, 2);
  in.Send(5, -1);
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(ToMap(cap->AccumulatedAt(0)),
            (std::map<int64_t, Diff>{{0, 5}, {1, -1}}));
}

TEST(OperatorTest, FlatMapWithEmptyExpansion) {
  Dataflow df;
  Input<int64_t> in(&df);
  auto* cap = Capture(in.stream().FlatMap(
      [](const int64_t& x, std::vector<int64_t>* out) {
        if (x > 0) out->push_back(x);
      }));
  in.Send(-5, 1);
  in.Send(3, 2);
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(ToMap(cap->AccumulatedAt(0)), (std::map<int64_t, Diff>{{3, 2}}));
}

TEST(OperatorTest, ChainedConcatAndNegateAlgebra) {
  // a + b - a == b at every version.
  Dataflow df;
  Input<int64_t> a(&df), b(&df);
  auto* cap =
      Capture(a.stream().Concat(b.stream()).Concat(a.stream().Negate()));
  a.Send(1, 1);
  b.Send(2, 1);
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(ToMap(cap->AccumulatedAt(0)), (std::map<int64_t, Diff>{{2, 1}}));
  a.Send(7, 5);
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(ToMap(cap->AccumulatedAt(1)), (std::map<int64_t, Diff>{{2, 1}}));
}

TEST(OperatorTest, CountTracksMultisetCardinality) {
  Dataflow df;
  Input<IntPair> in(&df);
  auto* cap = Capture(Count(in.stream()));
  in.Send({1, 10}, 2);
  in.Send({1, 20}, 1);
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(ToMap(cap->AccumulatedAt(0)),
            (std::map<IntPair, Diff>{{{1, 3}, 1}}));
  in.Send({1, 10}, -2);
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(ToMap(cap->AccumulatedAt(1)),
            (std::map<IntPair, Diff>{{{1, 1}, 1}}));
  in.Send({1, 20}, -1);  // key vanishes entirely
  ASSERT_TRUE(df.Step().ok());
  EXPECT_TRUE(ToMap(cap->AccumulatedAt(2)).empty());
}

TEST(OperatorTest, ReduceMaxMirrorsReduceMin) {
  Dataflow df;
  Input<IntPair> in(&df);
  auto* mx = Capture(ReduceMax(in.stream()));
  auto* mn = Capture(ReduceMin(in.stream()));
  in.Send({1, 3}, 1);
  in.Send({1, 9}, 1);
  in.Send({1, 6}, 1);
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(ToMap(mx->AccumulatedAt(0)),
            (std::map<IntPair, Diff>{{{1, 9}, 1}}));
  EXPECT_EQ(ToMap(mn->AccumulatedAt(0)),
            (std::map<IntPair, Diff>{{{1, 3}, 1}}));
  in.Send({1, 9}, -1);
  in.Send({1, 3}, -1);
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(ToMap(mx->AccumulatedAt(1)),
            (std::map<IntPair, Diff>{{{1, 6}, 1}}));
  EXPECT_EQ(ToMap(mn->AccumulatedAt(1)),
            (std::map<IntPair, Diff>{{{1, 6}, 1}}));
}

TEST(OperatorTest, GeneralReduceUserFunction) {
  // Sum-of-values reduce with multiplicities, including a key that ends
  // empty (must produce no output row).
  Dataflow df;
  Input<IntPair> in(&df);
  auto summed = Reduce<int64_t>(
      in.stream(),
      [](const int64_t&, const Batch<int64_t>& input, Batch<int64_t>* out) {
        int64_t total = 0;
        for (const auto& u : input) total += u.data * u.diff;
        out->push_back(Update<int64_t>{total, 1});
      });
  auto* cap = Capture(summed);
  in.Send({1, 5}, 2);
  in.Send({2, 7}, 1);
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(ToMap(cap->AccumulatedAt(0)),
            (std::map<IntPair, Diff>{{{1, 10}, 1}, {{2, 7}, 1}}));
  in.Send({2, 7}, -1);
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(ToMap(cap->AccumulatedAt(1)),
            (std::map<IntPair, Diff>{{{1, 10}, 1}}));
}

TEST(OperatorTest, JoinProducesNothingWithoutMatches) {
  Dataflow df;
  Input<IntPair> left(&df), right(&df);
  auto* cap = Capture(Join(left.stream(), right.stream(),
                           [](const int64_t& k, const int64_t&,
                              const int64_t&) { return k; }));
  left.Send({1, 10}, 1);
  right.Send({2, 20}, 1);
  ASSERT_TRUE(df.Step().ok());
  EXPECT_TRUE(cap->AccumulatedAt(0).empty());
  // A later version creates the match retroactively — only new pairs flow.
  right.Send({1, 30}, 1);
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(ToMap(cap->AccumulatedAt(1)), (std::map<int64_t, Diff>{{1, 1}}));
}

TEST(OperatorTest, JoinRetractionCancelsDerivedRecords) {
  Dataflow df;
  Input<IntPair> left(&df), right(&df);
  auto* cap = Capture(Join(
      left.stream(), right.stream(),
      [](const int64_t&, const int64_t& a, const int64_t& b) { return a + b; }));
  left.Send({1, 10}, 1);
  right.Send({1, 1}, 1);
  right.Send({1, 2}, 1);
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(ToMap(cap->AccumulatedAt(0)),
            (std::map<int64_t, Diff>{{11, 1}, {12, 1}}));
  left.Send({1, 10}, -1);  // retracting one side removes both pairs
  ASSERT_TRUE(df.Step().ok());
  EXPECT_TRUE(ToMap(cap->AccumulatedAt(1)).empty());
}

TEST(OperatorTest, StringKeyedRecordsWork) {
  Dataflow df;
  Input<std::pair<std::string, int64_t>> in(&df);
  auto* cap = Capture(ReduceMin(in.stream()));
  in.Send({"alpha", 4}, 1);
  in.Send({"alpha", 2}, 1);
  in.Send({"beta", 9}, 1);
  ASSERT_TRUE(df.Step().ok());
  auto m = ToMap(cap->AccumulatedAt(0));
  EXPECT_EQ(m.at({"alpha", 2}), 1);
  EXPECT_EQ(m.at({"beta", 9}), 1);
}

TEST(OperatorTest, InspectObservesWithoutPerturbing) {
  Dataflow df;
  Input<int64_t> in(&df);
  int batches_seen = 0;
  auto* cap = Capture(in.stream().InspectBatches(
      [&batches_seen](const Time&, const Batch<int64_t>&) {
        ++batches_seen;
      }));
  in.Send(1, 1);
  ASSERT_TRUE(df.Step().ok());
  in.Send(1, -1);
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(batches_seen, 2);
  EXPECT_TRUE(ToMap(cap->AccumulatedAt(1)).empty());
}

TEST(OperatorTest, ShardWorkIsAccounted) {
  DataflowOptions options;
  options.num_workers = 4;
  Dataflow df(options);
  Input<IntPair> in(&df);
  Capture(ReduceMin(in.stream()));
  for (int64_t k = 0; k < 100; ++k) in.Send({k, k}, 1);
  ASSERT_TRUE(df.Step().ok());
  uint64_t total = 0;
  ASSERT_EQ(df.stats().shard_work.size(), 4u);
  for (uint64_t w : df.stats().shard_work) total += w;
  EXPECT_GT(total, 0u);
  // Hashing spreads 100 keys across all four shards.
  for (uint64_t w : df.stats().shard_work) EXPECT_GT(w, 0u);
}

TEST(OperatorTest, IterateWithMultipleEnteredCollections) {
  // A loop body joining two outer collections (weights and edges).
  Dataflow df;
  Input<std::pair<uint64_t, uint64_t>> edges(&df);
  Input<std::pair<uint64_t, int64_t>> bonus(&df);  // (vertex, extra cost)
  Input<std::pair<uint64_t, int64_t>> roots(&df);
  auto dists = Iterate<std::pair<uint64_t, int64_t>>(
      roots.stream(),
      [&](LoopScope& scope, Stream<std::pair<uint64_t, int64_t>> inner) {
        auto e = scope.Enter(edges.stream());
        auto b = scope.Enter(bonus.stream());
        auto r = scope.Enter(roots.stream());
        auto moved = Join(inner, e,
                          [](const uint64_t&, const int64_t& d,
                             const uint64_t& dst) {
                            return std::make_pair(dst, d + 1);
                          });
        auto adjusted = Join(moved, b,
                             [](const uint64_t& v, const int64_t& d,
                                const int64_t& extra) {
                               return std::make_pair(v, d + extra);
                             });
        return ReduceMin(adjusted.Concat(r));
      });
  auto* cap = Capture(dists);
  edges.Send({0, 1}, 1);
  edges.Send({1, 2}, 1);
  bonus.Send({1, 10}, 1);
  bonus.Send({2, 0}, 1);
  roots.Send({0, 0}, 1);
  ASSERT_TRUE(df.Step().ok());
  auto m = ToMap(cap->AccumulatedAt(0));
  EXPECT_EQ(m.at({1, 11}), 1);  // 0 + 1 hop + bonus 10
  EXPECT_EQ(m.at({2, 12}), 1);
}

}  // namespace
}  // namespace gs::differential
