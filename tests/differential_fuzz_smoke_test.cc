// Bounded smoke over the differential fuzzing harness (src/testing/): the
// multi-mode oracle on a spread of generated cases, campaign determinism,
// and the planted-bug catch -> minimize -> replay pipeline. Runs in the
// sanitizer matrix, so the oracle's threads execute under TSan here.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "testing/fuzz_case.h"
#include "testing/fuzz_driver.h"
#include "testing/generators.h"
#include "testing/oracle.h"

namespace gs::testing {
namespace {

TEST(DifferentialFuzzSmokeTest, OracleAgreesAcrossSeeds) {
  // 25 distinct seeds through every oracle mode (serial, scrambled,
  // arranged, sharded, scratch, reference). Each case spins up real
  // multi-worker engines; the memory gauges must return to zero after
  // every one.
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    FuzzCase c = GenerateCase(seed * 0x9e3779b97f4a7c15ull, /*max_nodes=*/20);
    std::string log;
    Status status = RunOracle(c, &log);
    EXPECT_TRUE(status.ok()) << "seed " << seed << ": " << status.ToString()
                             << "\n" << log;
    Status gauges = CheckArrangementGaugesZero();
    EXPECT_TRUE(gauges.ok()) << "seed " << seed << ": " << gauges.ToString();
  }
}

TEST(DifferentialFuzzSmokeTest, CampaignIsDeterministic) {
  FuzzOptions options;
  options.seed = 7;
  options.runs = 3;
  options.max_nodes = 16;
  std::ostringstream first, second;
  EXPECT_EQ(RunFuzz(options, first), 0);
  EXPECT_EQ(RunFuzz(options, second), 0);
  EXPECT_FALSE(first.str().empty());
  EXPECT_EQ(first.str(), second.str());
}

TEST(DifferentialFuzzSmokeTest, InjectedBugIsCaughtMinimizedAndReplayable) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "gs_fuzz_smoke_repro";
  std::filesystem::remove_all(dir);

  FuzzOptions options;
  options.seed = 1;
  options.runs = 1;
  options.inject_bug = true;
  options.out_dir = dir.string();
  std::ostringstream log;
  EXPECT_NE(RunFuzz(options, log), 0) << log.str();
  EXPECT_NE(log.str().find("FAIL"), std::string::npos) << log.str();
  EXPECT_NE(log.str().find("minimized"), std::string::npos) << log.str();

  // The campaign must have written a replayable .case artifact; parsing it
  // back and re-running the oracle must reproduce the failure.
  std::filesystem::path case_path;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".case") case_path = entry.path();
  }
  ASSERT_FALSE(case_path.empty()) << "no repro_*.case written\n" << log.str();
  std::ifstream in(case_path);
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = FuzzCase::Parse(buf.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_NE(parsed->drop_insert_at, 0u);
  std::string replay_log;
  Status replay = RunOracle(parsed.value(), &replay_log);
  EXPECT_FALSE(replay.ok()) << "minimized case no longer fails\n"
                            << replay_log;
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gs::testing
