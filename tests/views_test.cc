// EBM computation, difference streams, and collection materialization.
#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "graph/generators.h"
#include "gvdl/parser.h"
#include "gvdl/predicate.h"
#include "views/collection.h"
#include "views/diff_stream.h"
#include "views/ebm.h"

namespace gs::views {
namespace {

gvdl::ExprPtr Pred(const std::string& text) {
  auto p = gvdl::ParsePredicate(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return *p;
}

TEST(EbmTest, ComputeMatchesDirectEvaluation) {
  PropertyGraph g = MakeCallGraphExample();
  std::vector<gvdl::ExprPtr> preds = {Pred("year = 2019"),
                                      Pred("duration <= 10"),
                                      Pred("src.city = 'LA'")};
  auto ebm = EdgeBooleanMatrix::Compute(g, preds, nullptr);
  ASSERT_TRUE(ebm.ok()) << ebm.status().ToString();
  for (size_t v = 0; v < preds.size(); ++v) {
    auto compiled = gvdl::CompiledEdgePredicate::Compile(preds[v], g);
    ASSERT_TRUE(compiled.ok());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      EXPECT_EQ(ebm->Get(e, v), compiled->Evaluate(e))
          << "edge " << e << " view " << v;
    }
  }
}

TEST(EbmTest, ParallelComputeMatchesSerial) {
  TemporalGraphOptions topts;
  topts.num_nodes = 200;
  topts.num_edges = 5000;
  PropertyGraph g = GenerateTemporalGraph(topts);
  std::vector<gvdl::ExprPtr> preds;
  for (int i = 1; i <= 7; ++i) {
    preds.push_back(
        Pred("timestamp <= " + std::to_string(i * 120000)));
  }
  auto serial = EdgeBooleanMatrix::Compute(g, preds, nullptr);
  ThreadPool pool(4);
  auto parallel = EdgeBooleanMatrix::Compute(g, preds, &pool);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  for (size_t v = 0; v < preds.size(); ++v) {
    EXPECT_EQ(serial->ColumnOnes(v), parallel->ColumnOnes(v));
    EXPECT_EQ(serial->HammingDistance(v, (v + 1) % preds.size()),
              parallel->HammingDistance(v, (v + 1) % preds.size()));
  }
}

TEST(EbmTest, HammingAndDifferenceCount) {
  // Figure 5's example matrix: 5 edges × 3 views.
  EdgeBooleanMatrix ebm(5, 3);
  // Columns: GV1 = {e0,e1,e4}, GV2 = {e3,e4}, GV3 = {e1,e2,e3,e4}.
  for (EdgeId e : {0, 1, 4}) ebm.Set(e, 0, true);
  for (EdgeId e : {3, 4}) ebm.Set(e, 1, true);
  for (EdgeId e : {1, 2, 3, 4}) ebm.Set(e, 2, true);

  EXPECT_EQ(ebm.ColumnOnes(0), 3u);
  EXPECT_EQ(ebm.HammingDistance(0, 1), 3u);  // e0,e1 leave; e3 enters
  EXPECT_EQ(ebm.HammingDistance(1, 2), 2u);
  EXPECT_EQ(ebm.HammingDistance(0, EdgeBooleanMatrix::kZeroColumn), 3u);

  // Figure 5b: difference stream for order (GV1, GV2, GV3) has 8 diffs.
  EXPECT_EQ(ebm.DifferenceCount({0, 1, 2}), 8u);
  // ds = |GV1| + H(1,2) + H(2,3) = 3 + 3 + 2.
  EXPECT_EQ(ebm.DifferenceCount({2, 1, 0}), 4u + 2u + 3u);
}

TEST(DiffStreamTest, MatchesFigure5) {
  EdgeBooleanMatrix ebm(5, 3);
  for (EdgeId e : {0, 1, 4}) ebm.Set(e, 0, true);
  for (EdgeId e : {3, 4}) ebm.Set(e, 1, true);
  for (EdgeId e : {1, 2, 3, 4}) ebm.Set(e, 2, true);

  auto stream = EdgeDifferenceStream::FromMatrix(ebm, {0, 1, 2}, nullptr);
  ASSERT_EQ(stream.num_views(), 3u);
  // δC1 = +e0 +e1 +e4; δC2 = -e0 -e1 +e3; δC3 = +e1 +e2.
  EXPECT_EQ(stream.ViewDiffs(0),
            (std::vector<EdgeDiff>{{0, 1}, {1, 1}, {4, 1}}));
  EXPECT_EQ(stream.ViewDiffs(1),
            (std::vector<EdgeDiff>{{0, -1}, {1, -1}, {3, 1}}));
  EXPECT_EQ(stream.ViewDiffs(2), (std::vector<EdgeDiff>{{1, 1}, {2, 1}}));
  EXPECT_EQ(stream.TotalDiffs(), 8u);
}

TEST(DiffStreamTest, ReconstructionInvariant) {
  // Property: accumulating δC through t reproduces exactly the edges whose
  // EBM bit is set for the view at position t — for random matrices and
  // random orders.
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    size_t edges = 1 + rng.Index(200);
    size_t views = 1 + rng.Index(8);
    EdgeBooleanMatrix ebm(edges, views);
    for (EdgeId e = 0; e < edges; ++e) {
      for (size_t v = 0; v < views; ++v) {
        ebm.Set(e, v, rng.Bernoulli(0.4));
      }
    }
    std::vector<size_t> order(views);
    std::iota(order.begin(), order.end(), size_t{0});
    rng.Shuffle(&order);

    auto stream = EdgeDifferenceStream::FromMatrix(ebm, order, nullptr);
    EXPECT_EQ(stream.TotalDiffs(), ebm.DifferenceCount(order));
    for (size_t t = 0; t < views; ++t) {
      std::vector<EdgeId> expected;
      for (EdgeId e = 0; e < edges; ++e) {
        if (ebm.Get(e, order[t])) expected.push_back(e);
      }
      EXPECT_EQ(stream.Reconstruct(t), expected)
          << "trial " << trial << " view position " << t;
    }
  }
}

TEST(DiffStreamTest, ParallelMatchesSerial) {
  Rng rng(9);
  EdgeBooleanMatrix ebm(5000, 6);
  for (EdgeId e = 0; e < 5000; ++e) {
    for (size_t v = 0; v < 6; ++v) ebm.Set(e, v, rng.Bernoulli(0.3));
  }
  std::vector<size_t> order = {3, 1, 5, 0, 2, 4};
  auto serial = EdgeDifferenceStream::FromMatrix(ebm, order, nullptr);
  ThreadPool pool(4);
  auto parallel = EdgeDifferenceStream::FromMatrix(ebm, order, &pool);
  ASSERT_EQ(serial.num_views(), parallel.num_views());
  for (size_t t = 0; t < order.size(); ++t) {
    EXPECT_EQ(serial.Reconstruct(t), parallel.Reconstruct(t));
  }
}

TEST(CollectionTest, MaterializeListing3StyleCollection) {
  PropertyGraph g = MakeCallGraphExample();
  auto stmt = gvdl::Parse(
      "create view collection call-analysis on Calls "
      "[D5: duration <= 5], [D15: duration <= 15], [D34: duration <= 34]");
  ASSERT_TRUE(stmt.ok());
  const auto& def = std::get<gvdl::ViewCollectionDef>(*stmt);
  MaterializeOptions opts;
  auto mc = MaterializeCollection(g, def, opts);
  ASSERT_TRUE(mc.ok()) << mc.status().ToString();
  EXPECT_EQ(mc->num_views(), 3u);
  EXPECT_EQ(mc->base_graph, "Calls");
  // Inclusion chain: only additions after the first view.
  EXPECT_EQ(mc->view_sizes[2], g.num_edges());
  EXPECT_EQ(mc->total_diffs, g.num_edges());
  EXPECT_EQ(mc->view_names[0], "D5");
  EXPECT_GT(mc->creation_seconds, 0.0);
}

TEST(CollectionTest, ExplicitOrderIsRespected) {
  PropertyGraph g = MakeCallGraphExample();
  auto stmt = gvdl::Parse(
      "create view collection c on Calls "
      "[a: duration <= 5], [b: duration <= 15], [c: duration <= 34]");
  ASSERT_TRUE(stmt.ok());
  const auto& def = std::get<gvdl::ViewCollectionDef>(*stmt);
  MaterializeOptions opts;
  opts.explicit_order = {2, 0, 1};
  auto mc = MaterializeCollection(g, def, opts);
  ASSERT_TRUE(mc.ok());
  EXPECT_EQ(mc->view_names,
            (std::vector<std::string>{"c", "a", "b"}));
}

TEST(CollectionTest, FromDiffBatches) {
  std::vector<std::vector<EdgeDiff>> batches = {
      {{0, 1}, {1, 1}, {2, 1}},
      {{1, -1}, {3, 1}},
  };
  auto mc = CollectionFromDiffBatches("perturb", "G", batches);
  EXPECT_EQ(mc.num_views(), 2u);
  EXPECT_EQ(mc.view_sizes, (std::vector<uint64_t>{3, 3}));
  EXPECT_EQ(mc.diff_sizes, (std::vector<uint64_t>{3, 2}));
  EXPECT_EQ(mc.diffs.Reconstruct(1), (std::vector<EdgeId>{0, 2, 3}));
}

TEST(CollectionTest, MaterializeFilteredViewSubgraph) {
  PropertyGraph g = MakeCallGraphExample();
  auto view = MaterializeFilteredView(g, Pred("year = 2019"), nullptr);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->num_nodes(), g.num_nodes());
  EXPECT_EQ(view->num_edges(), 8u);
  for (EdgeId e = 0; e < view->num_edges(); ++e) {
    EXPECT_EQ(view->edge_properties().GetByName(e, "year")->AsInt(), 2019);
  }
}

}  // namespace
}  // namespace gs::views
