// Property tests of the batch-spine trace against a naive reference trace
// (a flat update log with brute-force accumulation) over random update
// sequences, plus structural invariants of the spine itself: geometric
// batch counts and compaction that never changes any legal accumulation.
#include "differential/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "differential/time.h"
#include "differential/update.h"

namespace gs::differential {
namespace {

// The specification trace: every update kept verbatim, accumulation by
// linear scan. Deliberately has no consolidation, sealing, or compaction —
// the spine must agree with it at every legal probe time.
template <typename K, typename V>
class ReferenceTrace {
 public:
  void Insert(const K& key, const V& value, const Time& time, Diff diff) {
    if (diff != 0) log_.push_back({key, value, time, diff});
  }

  std::map<V, Diff> Accumulate(const K& key, const Time& time) const {
    std::map<V, Diff> out;
    for (const auto& e : log_) {
      if (e.key == key && e.time.LessEq(time)) out[e.value] += e.diff;
    }
    for (auto it = out.begin(); it != out.end();) {
      it = it->second == 0 ? out.erase(it) : std::next(it);
    }
    return out;
  }

 private:
  struct Entry {
    K key;
    V value;
    Time time;
    Diff diff;
  };
  std::vector<Entry> log_;
};

template <typename V>
std::map<V, Diff> ToMap(const Batch<V>& batch) {
  std::map<V, Diff> m;
  for (const auto& u : batch) m[u.data] += u.diff;
  for (auto it = m.begin(); it != m.end();) {
    it = it->second == 0 ? m.erase(it) : std::next(it);
  }
  return m;
}

// A random time at `version` with 0–2 iteration coordinates, mimicking the
// nested-scope times the engine produces.
Time RandomTime(Rng& rng, uint32_t version) {
  Time t(version);
  uint8_t depth = static_cast<uint8_t>(rng.Uniform(0, 2));
  for (uint8_t d = 0; d < depth; ++d) {
    t = t.Entered();
    t.iters[d] = static_cast<uint32_t>(rng.Uniform(0, 5));
  }
  return t;
}

TEST(TraceSpineTest, MatchesReferenceOverRandomUpdateSequences) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Rng rng(seed);
    Trace<uint64_t, int64_t> spine;
    ReferenceTrace<uint64_t, int64_t> reference;

    for (uint32_t version = 0; version < 6; ++version) {
      size_t inserts = 50 + rng.Index(400);
      for (size_t i = 0; i < inserts; ++i) {
        uint64_t key = rng.Index(16);
        int64_t value = static_cast<int64_t>(rng.Uniform(0, 8));
        Time t = RandomTime(rng, version);
        Diff diff = rng.Bernoulli(0.4) ? -1 : 1;
        spine.Insert(key, value, t, diff);
        reference.Insert(key, value, t, diff);

        // Mid-version probe (tail unsealed) every few inserts.
        if (i % 37 == 0) {
          uint64_t probe_key = rng.Index(16);
          Time probe = RandomTime(rng, version);
          Batch<int64_t> acc;
          spine.Accumulate(probe_key, probe, &acc);
          EXPECT_EQ(ToMap(acc), reference.Accumulate(probe_key, probe))
              << "seed " << seed << " version " << version << " insert " << i;
        }
      }

      // Seal the version, as the engine does, then re-probe every key at
      // this and the next version: compaction must be unobservable for any
      // probe at or beyond the sealed frontier.
      spine.CompactTo(version);
      for (uint64_t key = 0; key < 16; ++key) {
        for (uint32_t probe_version : {version, version + 1}) {
          Time probe = RandomTime(rng, probe_version);
          Batch<int64_t> acc;
          spine.Accumulate(key, probe, &acc);
          EXPECT_EQ(ToMap(acc), reference.Accumulate(key, probe))
              << "seed " << seed << " sealed " << version << " probe v"
              << probe_version;
        }
      }
    }
  }
}

TEST(TraceSpineTest, ForEachVisitsExactlyTheKeyHistory) {
  Rng rng(42);
  Trace<uint64_t, int64_t> spine;
  std::map<uint64_t, Diff> expected_net;
  for (int i = 0; i < 5000; ++i) {
    uint64_t key = rng.Index(32);
    Diff diff = rng.Bernoulli(0.3) ? -1 : 1;
    spine.Insert(key, static_cast<int64_t>(rng.Uniform(0, 4)), Time(0), diff);
    expected_net[key] += diff;
  }
  for (uint64_t key = 0; key < 32; ++key) {
    Diff net = 0;
    spine.ForEach(key,
                  [&](const int64_t&, const Time&, Diff d) { net += d; });
    EXPECT_EQ(net, expected_net[key]) << "key " << key;
  }
}

TEST(TraceSpineTest, SpineStaysLogarithmic) {
  // 100k inserts with unique (key, value) pairs — nothing consolidates, so
  // the geometric merge invariant alone must bound the batch count.
  Trace<uint64_t, int64_t> trace;
  const size_t kInserts = 100000;
  for (size_t i = 0; i < kInserts; ++i) {
    trace.Insert(i % 512, static_cast<int64_t>(i), Time(0), 1);
  }
  EXPECT_EQ(trace.total_entries(), kInserts);
  // log2(100000 / 256) ≈ 8.6; the invariant allows a small constant slack.
  EXPECT_LE(trace.num_spine_batches(), 16u);

  // Compaction at a version that invalidates nothing must not lose data.
  trace.CompactTo(0);
  EXPECT_EQ(trace.total_entries(), kInserts);

  // Inserting the exact retractions and sealing must cancel the trace to
  // nothing. Batches already rewritten to the frontier compact one seal
  // later (documented in trace.h), so full convergence takes two seals.
  for (size_t i = 0; i < kInserts; ++i) {
    trace.Insert(i % 512, static_cast<int64_t>(i), Time(1), -1);
  }
  trace.CompactTo(2);
  trace.CompactTo(3);
  EXPECT_EQ(trace.total_entries(), 0u);
  EXPECT_EQ(trace.num_keys(), 0u);
}

TEST(TraceSpineTest, IterationCoordinatesSurviveCompaction) {
  // Version rewriting must never collapse iteration coordinates: a probe at
  // (v, j) still sees exactly the entries with iteration ≤ j.
  Trace<uint64_t, int64_t> trace;
  Time t0 = Time(0).Entered();  // (0, {0})
  Time t2 = t0;
  t2.iters[0] = 2;  // (0, {2})
  trace.Insert(7, 10, t0, 1);
  trace.Insert(7, 20, t2, 1);
  trace.CompactTo(3);  // rewrites both versions to 3, keeps iterations

  Time probe1 = Time(3).Entered();
  probe1.iters[0] = 1;  // (3, {1}) — sees only the iteration-0 entry
  Batch<int64_t> acc;
  trace.Accumulate(7, probe1, &acc);
  EXPECT_EQ(ToMap(acc), (std::map<int64_t, Diff>{{10, 1}}));

  Time probe2 = Time(3).Entered();
  probe2.iters[0] = 2;  // (3, {2}) — sees both
  acc.clear();
  trace.Accumulate(7, probe2, &acc);
  EXPECT_EQ(ToMap(acc), (std::map<int64_t, Diff>{{10, 1}, {20, 1}}));
}

TEST(TraceSpineTest, SkewedMergesGallopAndMatchReference) {
  // A huge sorted history plus trickles of small batches is the worst case
  // for element-at-a-time merging: every seal re-walks the big batch. The
  // galloping path must bulk-move the big runs (observable through the
  // gs_spine_merge_gallops counter) without changing any accumulation.
  uint64_t gallops_before = SpineMergeGallops()->Value();
  Rng rng(99);
  Trace<uint64_t, int64_t> spine;
  ReferenceTrace<uint64_t, int64_t> reference;

  // Version 0: a large base history over many keys, fully compacted into
  // one big batch.
  for (uint64_t i = 0; i < 8192; ++i) {
    uint64_t key = rng.Index(1024);
    int64_t value = rng.Uniform(0, 3);
    spine.Insert(key, value, Time(0), 1);
    reference.Insert(key, value, Time(0), 1);
  }
  spine.CompactFully(0);

  // Versions 1..8: small skewed bursts, each hitting a narrow key range so
  // merges interleave long runs of the big batch with short new runs.
  for (uint32_t v = 1; v <= 8; ++v) {
    uint64_t base = rng.Index(900);
    for (int i = 0; i < 96; ++i) {
      uint64_t key = base + rng.Index(16);
      int64_t value = rng.Uniform(0, 3);
      Time t = RandomTime(rng, v);
      Diff diff = rng.Bernoulli(0.3) ? -1 : 1;
      spine.Insert(key, value, t, diff);
      reference.Insert(key, value, t, diff);
    }
    spine.CompactFully(v);
  }

  EXPECT_GT(SpineMergeGallops()->Value(), gallops_before)
      << "skewed merges never took the galloping path";

  // Every key's accumulation at the final frontier must match the naive
  // reference — galloped bulk moves and linear merging are equivalent.
  Time probe = Time(8).Entered().Entered();
  probe.iters[0] = 100;  // above any iteration used
  probe.iters[1] = 100;
  for (uint64_t key = 0; key < 1024; ++key) {
    Batch<int64_t> acc;
    spine.Accumulate(key, probe, &acc);
    EXPECT_EQ(ToMap(acc), reference.Accumulate(key, probe)) << "key " << key;
  }
}

TEST(TraceSpineTest, UniformTimeFastPathMatchesPerEntryScan) {
  // After CompactFully every surviving entry in a single-version trace sits
  // at one identical time, arming the uniform_time run-level fast path in
  // Accumulate/AccumulateWithFutures. Probes below, at, and above that time
  // must behave exactly like the per-entry scan.
  Trace<uint64_t, int64_t> spine;
  ReferenceTrace<uint64_t, int64_t> reference;
  Rng rng(7);
  for (uint64_t i = 0; i < 512; ++i) {
    uint64_t key = rng.Index(64);
    int64_t value = rng.Uniform(0, 5);
    spine.Insert(key, value, Time(2), 1);
    reference.Insert(key, value, Time(2), 1);
  }
  spine.CompactFully(2);
  for (uint64_t key = 0; key < 64; ++key) {
    for (uint32_t v : {1u, 2u, 3u}) {
      Batch<int64_t> acc;
      spine.Accumulate(key, Time(v), &acc);
      EXPECT_EQ(ToMap(acc), reference.Accumulate(key, Time(v)))
          << "key " << key << " version " << v;
    }
  }
}

}  // namespace
}  // namespace gs::differential
