// Collection ordering: TSP machinery correctness, heuristic quality vs the
// exact Held–Karp optimum, and end-to-end diff reduction on EBMs.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/random.h"
#include "ordering/optimizer.h"
#include "ordering/tsp.h"
#include "views/ebm.h"

namespace gs::ordering {
namespace {

DistanceMatrix RandomMetric(Rng& rng, size_t n) {
  // Random points on a line → a metric for free.
  std::vector<int64_t> points(n);
  for (auto& p : points) p = rng.Uniform(0, 1000);
  DistanceMatrix d(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      d.set(i, j, static_cast<uint64_t>(std::abs(points[i] - points[j])));
    }
  }
  return d;
}

TEST(TspTest, MstIsSpanningAndMinimal) {
  Rng rng(1);
  DistanceMatrix d = RandomMetric(rng, 10);
  auto mst = MinimumSpanningTree(d);
  ASSERT_EQ(mst.size(), 9u);
  // Spanning: union-find reaches all vertices.
  std::vector<size_t> parent(10);
  std::iota(parent.begin(), parent.end(), size_t{0});
  std::function<size_t(size_t)> find = [&](size_t x) {
    return parent[x] == x ? x : parent[x] = find(parent[x]);
  };
  for (auto [a, b] : mst) parent[find(a)] = find(b);
  for (size_t v = 1; v < 10; ++v) EXPECT_EQ(find(v), find(0));
  // On a line metric the MST weight equals max - min of the points.
  uint64_t weight = 0;
  for (auto [a, b] : mst) weight += d.at(a, b);
  uint64_t spread = 0;
  for (size_t i = 0; i < 10; ++i) spread = std::max(spread, d.at(0, i));
  uint64_t max_d = 0;
  for (size_t i = 0; i < 10; ++i) {
    for (size_t j = 0; j < 10; ++j) max_d = std::max(max_d, d.at(i, j));
  }
  EXPECT_EQ(weight, max_d);
}

TEST(TspTest, MatchingIsPerfect) {
  Rng rng(2);
  DistanceMatrix d = RandomMetric(rng, 12);
  std::vector<size_t> vertices = {0, 2, 3, 5, 7, 8, 9, 11};
  auto matching = GreedyPerfectMatching(d, vertices);
  ASSERT_EQ(matching.size(), vertices.size() / 2);
  std::set<size_t> covered;
  for (auto [a, b] : matching) {
    EXPECT_TRUE(covered.insert(a).second);
    EXPECT_TRUE(covered.insert(b).second);
  }
  EXPECT_EQ(covered.size(), vertices.size());
}

TEST(TspTest, EulerCircuitUsesEveryEdgeOnce) {
  // A multigraph with all-even degrees: square + doubled diagonal.
  std::vector<std::pair<size_t, size_t>> edges = {
      {0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}, {0, 2}};
  auto circuit = EulerCircuit(4, edges);
  ASSERT_EQ(circuit.size(), edges.size());
  // Consecutive vertices in the circuit must consume distinct edges.
  std::multiset<std::pair<size_t, size_t>> remaining;
  for (auto [a, b] : edges) {
    auto key = std::minmax(a, b);
    remaining.insert({key.first, key.second});
  }
  for (size_t i = 0; i < circuit.size(); ++i) {
    size_t a = circuit[i], b = circuit[(i + 1) % circuit.size()];
    auto key = std::minmax(a, b);
    auto it = remaining.find({key.first, key.second});
    ASSERT_NE(it, remaining.end()) << "edge " << a << "-" << b << " reused";
    remaining.erase(it);
  }
  EXPECT_TRUE(remaining.empty());
}

TEST(TspTest, ChristofidesTourIsAPermutation) {
  Rng rng(3);
  for (size_t n : {1, 2, 3, 5, 9, 16, 40}) {
    DistanceMatrix d = RandomMetric(rng, n);
    auto tour = ChristofidesTour(d);
    std::set<size_t> unique(tour.begin(), tour.end());
    EXPECT_EQ(tour.size(), n);
    EXPECT_EQ(unique.size(), n);
  }
}

TEST(TspTest, HeldKarpFindsOptimumOnLineMetric) {
  Rng rng(4);
  // On a line metric the optimal closed tour costs exactly 2 * spread.
  DistanceMatrix d = RandomMetric(rng, 9);
  uint64_t max_d = 0;
  for (size_t i = 0; i < 9; ++i) {
    for (size_t j = 0; j < 9; ++j) max_d = std::max(max_d, d.at(i, j));
  }
  auto optimal = HeldKarpOptimalTour(d);
  EXPECT_EQ(d.TourCost(optimal), 2 * max_d);
}

TEST(TspTest, ChristofidesNearOptimalOnRandomMetrics) {
  Rng rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    size_t n = 4 + rng.Index(8);  // 4..11 — Held-Karp range
    DistanceMatrix d = RandomMetric(rng, n);
    ASSERT_TRUE(d.SatisfiesTriangleInequality());
    uint64_t opt = d.TourCost(HeldKarpOptimalTour(d));
    uint64_t heur = d.TourCost(ChristofidesTour(d));
    EXPECT_GE(heur, opt);
    // Greedy matching weakens the 1.5 guarantee; 2x is the safety bound we
    // hold ourselves to (empirically it is almost always ≤ 1.5).
    EXPECT_LE(heur, 2 * opt) << "n=" << n << " trial=" << trial;
  }
}

TEST(OrderingTest, HammingCliqueIsAMetric) {
  Rng rng(6);
  views::EdgeBooleanMatrix ebm(300, 9);
  for (EdgeId e = 0; e < 300; ++e) {
    for (size_t v = 0; v < 9; ++v) ebm.Set(e, v, rng.Bernoulli(0.35));
  }
  DistanceMatrix d = BuildPaddedDistanceMatrix(ebm, nullptr);
  EXPECT_EQ(d.size(), 10u);
  EXPECT_TRUE(d.SatisfiesTriangleInequality());
  // Vertex 0 is the zero column: distance = column popcount.
  for (size_t v = 0; v < 9; ++v) {
    EXPECT_EQ(d.at(0, v + 1), ebm.ColumnOnes(v));
  }
}

TEST(OrderingTest, RecoversShuffledInclusionChain) {
  // Views with an inclusion structure (like Listing 3's duration windows)
  // have an obvious best order; shuffle them and check the optimizer gets
  // within a whisker of the sorted order's cost.
  Rng rng(7);
  const size_t kViews = 12, kEdges = 4000;
  views::EdgeBooleanMatrix ebm(kEdges, kViews);
  std::vector<size_t> shuffled(kViews);
  std::iota(shuffled.begin(), shuffled.end(), size_t{0});
  rng.Shuffle(&shuffled);
  // Column shuffled[i] contains the first (i+1)/kViews fraction of edges.
  std::vector<size_t> position_of(kViews);
  for (size_t i = 0; i < kViews; ++i) position_of[shuffled[i]] = i;
  for (size_t col = 0; col < kViews; ++col) {
    size_t rank = position_of[col];
    size_t prefix = kEdges * (rank + 1) / kViews;
    for (EdgeId e = 0; e < prefix; ++e) ebm.Set(e, col, true);
  }
  // The sorted (inclusion) order costs exactly kEdges.
  std::vector<size_t> best_order;
  for (size_t rank = 0; rank < kViews; ++rank) {
    best_order.push_back(shuffled[rank]);
  }
  ASSERT_EQ(ebm.DifferenceCount(best_order), kEdges);

  OrderingResult result = OrderCollection(ebm, nullptr);
  EXPECT_EQ(result.difference_count, ebm.DifferenceCount(result.order));
  EXPECT_LE(result.difference_count, kEdges * 3 / 2);
  // And it must beat a random order by a wide margin.
  std::vector<size_t> random_order(kViews);
  std::iota(random_order.begin(), random_order.end(), size_t{0});
  rng.Shuffle(&random_order);
  EXPECT_LT(result.difference_count,
            ebm.DifferenceCount(random_order));
}

TEST(OrderingTest, NeverWorseThanTwiceIdentityOnRandomMatrices) {
  Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    size_t views = 2 + rng.Index(10);
    views::EdgeBooleanMatrix ebm(500, views);
    for (EdgeId e = 0; e < 500; ++e) {
      for (size_t v = 0; v < views; ++v) {
        ebm.Set(e, v, rng.Bernoulli(0.2 + 0.05 * v));
      }
    }
    OrderingResult result = OrderCollection(ebm, nullptr);
    // Sanity: order is a permutation and the reported count is accurate.
    std::set<size_t> unique(result.order.begin(), result.order.end());
    EXPECT_EQ(unique.size(), views);
    EXPECT_EQ(result.difference_count, ebm.DifferenceCount(result.order));
  }
}

}  // namespace
}  // namespace gs::ordering
