// WAL durability tests: record round-trips, replay idempotence, torn-tail
// recovery (the expected crash artifact), and checksum-mismatch rejection
// (real corruption).
#include "graph/wal/wal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "graph/mutation.h"
#include "graph/wal/record.h"

namespace gs {
namespace {

std::string TestPath(const std::string& name) {
  std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

uint64_t FileSize(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in.good()) << path;
  return static_cast<uint64_t>(in.tellg());
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// One batch exercising every mutation kind and every value tag.
MutationBatch SampleBatch(int64_t salt) {
  MutationBatch b;
  b.push_back(Mutation::AddNode(
      {PropertyValue(salt), PropertyValue(salt % 2 == 0)}));
  b.push_back(Mutation::AddNode({}));
  b.push_back(Mutation::AddEdge(
      0, static_cast<VertexId>(salt % 7),
      {PropertyValue(salt + 1), PropertyValue(2.5),
       PropertyValue(std::string("red"))}));
  b.push_back(Mutation::RemoveEdge(static_cast<EdgeId>(salt % 11)));
  b.push_back(Mutation::RemoveNode(static_cast<VertexId>(salt % 5)));
  b.push_back(Mutation::SetNodeProperty(1, "grp", PropertyValue(salt)));
  b.push_back(
      Mutation::SetEdgeProperty(0, "tag", PropertyValue(std::string("blue"))));
  b.push_back(Mutation::SetEdgeProperty(0, "maybe", PropertyValue::Null()));
  return b;
}

/// Batches have no operator==; the encoding is canonical, so byte-compare.
void ExpectBatchesEqual(const std::vector<MutationBatch>& want,
                        const std::vector<MutationBatch>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(wal::EncodeMutationBatch(want[i]),
              wal::EncodeMutationBatch(got[i]))
        << "batch " << i;
  }
}

TEST(WalRecordTest, BatchRoundTrips) {
  MutationBatch batch = SampleBatch(3);
  std::vector<uint8_t> payload = wal::EncodeMutationBatch(batch);
  auto decoded = wal::DecodeMutationBatch(payload.data(), payload.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectBatchesEqual({batch}, {decoded.value()});
  EXPECT_EQ(decoded.value()[0].kind, MutationKind::kAddNode);
  EXPECT_EQ(decoded.value()[2].src, 0u);
  EXPECT_EQ(decoded.value()[5].column, "grp");
  EXPECT_TRUE(decoded.value()[7].value.is_null());
}

TEST(WalRecordTest, EmptyBatchRoundTrips) {
  std::vector<uint8_t> payload = wal::EncodeMutationBatch({});
  auto decoded = wal::DecodeMutationBatch(payload.data(), payload.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(WalRecordTest, TrailingGarbageRejected) {
  std::vector<uint8_t> payload = wal::EncodeMutationBatch(SampleBatch(1));
  payload.push_back(0xab);
  auto decoded = wal::DecodeMutationBatch(payload.data(), payload.size());
  EXPECT_FALSE(decoded.ok());
}

TEST(WalRecordTest, TruncatedPayloadRejected) {
  std::vector<uint8_t> payload = wal::EncodeMutationBatch(SampleBatch(1));
  for (size_t len : {payload.size() - 1, payload.size() / 2, size_t{1}}) {
    EXPECT_FALSE(wal::DecodeMutationBatch(payload.data(), len).ok())
        << "len " << len;
  }
}

TEST(WalTest, WriteThenReplay) {
  const std::string path = TestPath("write_then_replay.wal");
  std::vector<MutationBatch> batches = {SampleBatch(1), SampleBatch(2), {}};
  wal::WalWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  for (const MutationBatch& b : batches) {
    ASSERT_TRUE(writer.Append(b).ok());
  }
  EXPECT_EQ(writer.bytes_written(), FileSize(path));
  ASSERT_TRUE(writer.Close().ok());

  auto replay = wal::ReplayWal(path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_FALSE(replay.value().recovered_torn_tail);
  EXPECT_EQ(replay.value().valid_bytes, FileSize(path));
  ExpectBatchesEqual(batches, replay.value().batches);
}

TEST(WalTest, ReplayIsIdempotentAndAppendResumes) {
  const std::string path = TestPath("replay_idempotent.wal");
  {
    wal::WalWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(writer.Append(SampleBatch(1)).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  auto first = wal::ReplayWal(path);
  auto second = wal::ReplayWal(path);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().valid_bytes, second.value().valid_bytes);
  ExpectBatchesEqual(first.value().batches, second.value().batches);

  // Re-open and append: the log grows by exactly one record.
  {
    wal::WalWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(writer.Append(SampleBatch(9)).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  auto after = wal::ReplayWal(path);
  ASSERT_TRUE(after.ok());
  ExpectBatchesEqual({SampleBatch(1), SampleBatch(9)}, after.value().batches);
}

TEST(WalTest, MissingFileIsFreshLog) {
  auto replay = wal::ReplayWal(TestPath("never_created.wal"));
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_TRUE(replay.value().batches.empty());
  EXPECT_FALSE(replay.value().recovered_torn_tail);
}

TEST(WalTest, TornTailIsRecovered) {
  const std::string path = TestPath("torn_tail.wal");
  uint64_t two_records = 0;
  {
    wal::WalWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(writer.Append(SampleBatch(1)).ok());
    ASSERT_TRUE(writer.Append(SampleBatch(2)).ok());
    two_records = writer.bytes_written();
    ASSERT_TRUE(writer.Append(SampleBatch(3)).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  // Tear the last record at every interesting cut: mid-payload, mid-frame,
  // and one byte into the frame.
  for (uint64_t cut :
       {FileSize(path) - 1, two_records + 8, two_records + 1}) {
    ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(cut)), 0);
    auto replay = wal::ReplayWal(path);
    ASSERT_TRUE(replay.ok()) << "cut " << cut << ": "
                             << replay.status().ToString();
    EXPECT_TRUE(replay.value().recovered_torn_tail) << "cut " << cut;
    EXPECT_EQ(replay.value().valid_bytes, two_records) << "cut " << cut;
    ExpectBatchesEqual({SampleBatch(1), SampleBatch(2)},
                       replay.value().batches);
  }
  // Open truncates the torn tail so the next append lands on a boundary.
  {
    wal::WalWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    EXPECT_EQ(writer.bytes_written(), two_records);
    ASSERT_TRUE(writer.Append(SampleBatch(4)).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  auto healed = wal::ReplayWal(path);
  ASSERT_TRUE(healed.ok());
  EXPECT_FALSE(healed.value().recovered_torn_tail);
  ExpectBatchesEqual({SampleBatch(1), SampleBatch(2), SampleBatch(4)},
                     healed.value().batches);
}

TEST(WalTest, ChecksumMismatchRejected) {
  const std::string path = TestPath("bad_crc.wal");
  {
    wal::WalWriter writer;
    ASSERT_TRUE(writer.Open(path).ok());
    ASSERT_TRUE(writer.Append(SampleBatch(1)).ok());
    ASSERT_TRUE(writer.Append(SampleBatch(2)).ok());
    ASSERT_TRUE(writer.Close().ok());
  }
  std::string bytes = ReadFile(path);
  // Flip one payload byte of the first record (header 8 + frame 8 skipped).
  bytes[8 + 8 + 3] = static_cast<char>(bytes[8 + 8 + 3] ^ 0x40);
  WriteFile(path, bytes);

  auto replay = wal::ReplayWal(path);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kIoError);
  EXPECT_NE(replay.status().message().find("checksum"), std::string::npos)
      << replay.status().ToString();
}

TEST(WalTest, BadMagicRejected) {
  const std::string path = TestPath("bad_magic.wal");
  WriteFile(path, "NOTAGSWAL-FILE--");
  EXPECT_FALSE(wal::ReplayWal(path).ok());
  wal::WalWriter writer;
  EXPECT_FALSE(writer.Open(path).ok());
}

TEST(WalTest, BatchedFsyncCadence) {
  const std::string path = TestPath("batched_sync.wal");
  wal::WalWriterOptions options;
  options.sync_every_n_appends = 4;
  wal::WalWriter writer;
  ASSERT_TRUE(writer.Open(path, options).ok());
  std::vector<MutationBatch> batches;
  for (int64_t i = 0; i < 5; ++i) {
    batches.push_back(SampleBatch(i));
    ASSERT_TRUE(writer.Append(batches.back()).ok());
  }
  ASSERT_TRUE(writer.Close().ok());  // Close always syncs the straggler.
  auto replay = wal::ReplayWal(path);
  ASSERT_TRUE(replay.ok());
  ExpectBatchesEqual(batches, replay.value().batches);
}

}  // namespace
}  // namespace gs
