// Time-series store and sampler: ring-buffer retention and ordering,
// rollup stats, sparkline rendering, JSON well-formedness (via json_lite),
// and the sampler thread actually following a watched metric family.
#include "common/timeseries.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "json_lite.h"

namespace gs {
namespace {

json_lite::Value ParseJsonOrFail(const std::string& text) {
  json_lite::Value value;
  std::string error;
  EXPECT_TRUE(json_lite::Parse(text, &value, &error))
      << error << "\npayload:\n"
      << text.substr(0, 2000);
  return value;
}

TEST(NowMillisTest, MonotonicallyNonDecreasing) {
  uint64_t a = timeseries::NowMillis();
  uint64_t b = timeseries::NowMillis();
  EXPECT_LE(a, b);
}

TEST(SeriesTest, RetainsSamplesInOrder) {
  timeseries::Series series(8);
  for (uint64_t i = 0; i < 5; ++i) series.Record(i * 10, double(i));
  std::vector<timeseries::Sample> samples = series.Snapshot();
  ASSERT_EQ(samples.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(samples[i].t_ms, i * 10);
    EXPECT_EQ(samples[i].value, double(i));
  }
}

TEST(SeriesTest, RingOverwritesOldestOnceFull) {
  timeseries::Series series(4);
  for (uint64_t i = 0; i < 10; ++i) series.Record(i, double(i));
  std::vector<timeseries::Sample> samples = series.Snapshot();
  ASSERT_EQ(samples.size(), 4u);
  // The newest 4 samples survive, oldest first.
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(samples[i].t_ms, 6 + i);
    EXPECT_EQ(samples[i].value, double(6 + i));
  }
}

TEST(SeriesTest, StatsRollups) {
  timeseries::Series series;
  EXPECT_EQ(series.Stats().count, 0u);
  series.Record(1000, 10.0);
  series.Record(2000, 4.0);
  series.Record(3000, 16.0);
  timeseries::SeriesStats stats = series.Stats();
  EXPECT_EQ(stats.count, 3u);
  EXPECT_EQ(stats.min, 4.0);
  EXPECT_EQ(stats.max, 16.0);
  EXPECT_EQ(stats.last, 16.0);
  // (16 − 10) over 2 seconds.
  EXPECT_DOUBLE_EQ(stats.rate_per_s, 3.0);
}

TEST(SparklineTest, RendersOneGlyphPerSample) {
  std::vector<timeseries::Sample> samples;
  for (uint64_t i = 0; i < 8; ++i) {
    samples.push_back({i, double(i)});
  }
  std::string spark = timeseries::Sparkline(samples, 8);
  EXPECT_FALSE(spark.empty());
  // Block glyphs are 3 UTF-8 bytes each.
  EXPECT_EQ(spark.size(), 8u * 3u);
  // Monotone ramp: first glyph is the lowest block, last the highest.
  EXPECT_EQ(spark.substr(0, 3), "▁");
  EXPECT_EQ(spark.substr(spark.size() - 3), "█");
  EXPECT_EQ(timeseries::Sparkline({}, 8), "");
  // Width truncates to the newest samples.
  EXPECT_EQ(timeseries::Sparkline(samples, 3).size(), 3u * 3u);
}

TEST(StoreTest, JsonParsesAndCarriesSamples) {
  timeseries::Store store;
  store.Record("test_series", 100, 1.0);
  store.Record("test_series", 200, 2.5);
  store.Record("other", 100, -3.0);
  json_lite::Value doc = ParseJsonOrFail(store.ToJson());
  const json_lite::Value* series = doc.Get("series");
  ASSERT_NE(series, nullptr);
  const json_lite::Value* ts = series->Get("test_series");
  ASSERT_NE(ts, nullptr);
  EXPECT_EQ(ts->Get("count")->number, 2.0);
  EXPECT_EQ(ts->Get("last")->number, 2.5);
  const json_lite::Value* samples = ts->Get("samples");
  ASSERT_NE(samples, nullptr);
  ASSERT_TRUE(samples->is_array());
  ASSERT_EQ(samples->array.size(), 2u);
  EXPECT_EQ(samples->array[0].array[0].number, 100.0);
  EXPECT_EQ(samples->array[0].array[1].number, 1.0);

  json_lite::Value summary = ParseJsonOrFail(store.ToSummaryJson());
  const json_lite::Value* sseries = summary.Get("series");
  ASSERT_NE(sseries, nullptr);
  const json_lite::Value* spark = sseries->Get("test_series")->Get("spark");
  ASSERT_NE(spark, nullptr);
  EXPECT_FALSE(spark->string.empty());
}

TEST(StoreTest, SeriesCapCountsDrops) {
  timeseries::Store store;
  for (size_t i = 0; i < timeseries::Store::kMaxSeries + 5; ++i) {
    store.Record("s" + std::to_string(i), 1, 1.0);
  }
  EXPECT_EQ(store.Names().size(), timeseries::Store::kMaxSeries);
  json_lite::Value doc = ParseJsonOrFail(store.ToJson());
  EXPECT_EQ(doc.Get("dropped_series")->number, 5.0);
}

TEST(SamplerTest, FollowsWatchedFamilies) {
  // The sampler writes into the global store; use a probe family plus a
  // labeled default-watched family to check both name forms.
  timeseries::Sampler& sampler = timeseries::Sampler::Global();
  sampler.AddWatch("gs_timeseries_test_probe");
  auto* probe =
      metrics::Registry::Global().GetCounter("gs_timeseries_test_probe");
  auto* labeled = metrics::Registry::Global().GetGauge(
      "gs_graph_epoch", {{"graph", "ts_test"}});
  probe->Increment(7);
  labeled->Set(41);
  ASSERT_TRUE(sampler.Start(5).ok());
  EXPECT_TRUE(sampler.running());
  EXPECT_FALSE(sampler.Start(5).ok());  // double start rejected
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  probe->Increment(3);
  labeled->Set(42);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  sampler.Stop();
  sampler.Stop();  // idempotent
  EXPECT_FALSE(sampler.running());

  timeseries::Series* series =
      timeseries::Store::Global().GetSeries("gs_timeseries_test_probe");
  ASSERT_NE(series, nullptr);
  timeseries::SeriesStats stats = series->Stats();
  EXPECT_GE(stats.count, 2u);
  EXPECT_EQ(stats.last, 10.0);
  // Labeled series are stored under their full key.
  timeseries::Series* labeled_series = timeseries::Store::Global().GetSeries(
      "gs_graph_epoch{graph=\"ts_test\"}");
  ASSERT_NE(labeled_series, nullptr);
  EXPECT_EQ(labeled_series->Stats().last, 42.0);
}

TEST(SamplerTest, SampleOnceWorksWithoutThread) {
  auto* probe =
      metrics::Registry::Global().GetCounter("gs_ingest_batches");
  probe->Increment();
  timeseries::Sampler::Global().SampleOnce();
  timeseries::Series* series =
      timeseries::Store::Global().GetSeries("gs_ingest_batches");
  ASSERT_NE(series, nullptr);
  EXPECT_GE(series->Stats().count, 1u);
}

}  // namespace
}  // namespace gs
