#include "graph/property.h"

#include <gtest/gtest.h>

#include "graph/property_table.h"

namespace gs {
namespace {

TEST(PropertyValueTest, TypesAndAccessors) {
  EXPECT_TRUE(PropertyValue().is_null());
  EXPECT_EQ(PropertyValue(int64_t{5}).AsInt(), 5);
  EXPECT_EQ(PropertyValue(2.5).AsDouble(), 2.5);
  EXPECT_EQ(PropertyValue("hi").AsString(), "hi");
  EXPECT_TRUE(PropertyValue(true).AsBool());
}

TEST(PropertyValueTest, NumericCrossTypeComparison) {
  PropertyValue i(int64_t{3});
  PropertyValue d(3.0);
  PropertyValue bigger(4.5);
  EXPECT_EQ(i.Compare(d), 0);
  EXPECT_EQ(i.Compare(bigger), -1);
  EXPECT_EQ(bigger.Compare(i), 1);
}

TEST(PropertyValueTest, StringComparison) {
  PropertyValue a("apple"), b("banana");
  EXPECT_EQ(a.Compare(b), -1);
  EXPECT_EQ(b.Compare(a), 1);
  EXPECT_EQ(a.Compare(PropertyValue("apple")), 0);
}

TEST(PropertyValueTest, IncomparableTypesReturnNullopt) {
  EXPECT_FALSE(PropertyValue("x").Compare(PropertyValue(int64_t{1})));
  EXPECT_FALSE(PropertyValue().Compare(PropertyValue(int64_t{1})));
  EXPECT_FALSE(PropertyValue(true).Compare(PropertyValue("t")));
}

TEST(PropertyValueTest, ParseRoundTrip) {
  auto i = PropertyValue::Parse("42", PropertyType::kInt);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->AsInt(), 42);
  auto d = PropertyValue::Parse("2.5", PropertyType::kDouble);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->AsDouble(), 2.5);
  auto b = PropertyValue::Parse("true", PropertyType::kBool);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->AsBool());
  auto s = PropertyValue::Parse("NY", PropertyType::kString);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->AsString(), "NY");
  // Empty cell parses to null regardless of type.
  auto n = PropertyValue::Parse("", PropertyType::kInt);
  ASSERT_TRUE(n.ok());
  EXPECT_TRUE(n->is_null());
}

TEST(PropertyValueTest, ParseErrors) {
  EXPECT_FALSE(PropertyValue::Parse("4x", PropertyType::kInt).ok());
  EXPECT_FALSE(PropertyValue::Parse("yes", PropertyType::kBool).ok());
  EXPECT_FALSE(PropertyValue::Parse("1.2.3", PropertyType::kDouble).ok());
}

TEST(PropertyTypeTest, ParseTypeNames) {
  EXPECT_EQ(*ParsePropertyType("int"), PropertyType::kInt);
  EXPECT_EQ(*ParsePropertyType("STRING"), PropertyType::kString);
  EXPECT_EQ(*ParsePropertyType("bool"), PropertyType::kBool);
  EXPECT_EQ(*ParsePropertyType("double"), PropertyType::kDouble);
  EXPECT_FALSE(ParsePropertyType("blob").ok());
}

TEST(PropertyTableTest, AppendAndGet) {
  PropertyTable t;
  ASSERT_TRUE(t.AddColumn("year", PropertyType::kInt).ok());
  ASSERT_TRUE(t.AddColumn("city", PropertyType::kString).ok());
  ASSERT_TRUE(
      t.AppendRow({PropertyValue(int64_t{2019}), PropertyValue("LA")}).ok());
  ASSERT_TRUE(t.AppendRow({PropertyValue::Null(), PropertyValue("NY")}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.Get(0, 0).AsInt(), 2019);
  EXPECT_TRUE(t.Get(1, 0).is_null());
  EXPECT_EQ(t.GetByName(1, "city")->AsString(), "NY");
}

TEST(PropertyTableTest, SchemaErrors) {
  PropertyTable t;
  ASSERT_TRUE(t.AddColumn("a", PropertyType::kInt).ok());
  EXPECT_EQ(t.AddColumn("a", PropertyType::kInt).code(),
            StatusCode::kAlreadyExists);
  // Wrong arity.
  EXPECT_FALSE(t.AppendRow({}).ok());
  // Wrong type.
  EXPECT_FALSE(t.AppendRow({PropertyValue("str")}).ok());
  // Adding a column after rows is rejected.
  ASSERT_TRUE(t.AppendRow({PropertyValue(int64_t{1})}).ok());
  EXPECT_EQ(t.AddColumn("b", PropertyType::kInt).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(t.ColumnIndex("zz").status().code(), StatusCode::kNotFound);
}

TEST(PropertyTableTest, IntIntoDoubleColumnCoerces) {
  PropertyTable t;
  ASSERT_TRUE(t.AddColumn("w", PropertyType::kDouble).ok());
  ASSERT_TRUE(t.AppendRow({PropertyValue(int64_t{3})}).ok());
  EXPECT_EQ(t.Get(0, 0).AsDouble(), 3.0);
}

}  // namespace
}  // namespace gs
