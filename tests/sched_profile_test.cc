// Scheduler time attribution and critical-path extraction: the five worker
// states tile each step's wall clock exactly (the /workersz numbers are
// measurements, not estimates), skewed and balanced workloads are
// distinguishable, and the trace-derived critical path covers the wall
// clock of a serial run.
#include "common/sched_profile.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "algorithms/algorithms.h"
#include "common/critical_path.h"
#include "common/trace_event.h"
#include "differential/differential.h"
#include "graph/generators.h"
#include "gvdl/parser.h"
#include "json_lite.h"
#include "views/executor.h"

namespace gs::sched {
namespace {

using IntPair = std::pair<uint64_t, int64_t>;

// ---------------------------------------------------------------------------
// ComputeSkew

TEST(ComputeSkewTest, EmptyAndAllZeroAreZero) {
  EXPECT_EQ(ComputeSkew({}).max_mean_ratio, 0.0);
  EXPECT_EQ(ComputeSkew({}).gini, 0.0);
  EXPECT_EQ(ComputeSkew({0, 0, 0}).max_mean_ratio, 0.0);
  EXPECT_EQ(ComputeSkew({0, 0, 0}).gini, 0.0);
}

TEST(ComputeSkewTest, BalancedDistributionIsRatioOneGiniZero) {
  Skew skew = ComputeSkew({100, 100, 100, 100});
  EXPECT_DOUBLE_EQ(skew.max_mean_ratio, 1.0);
  EXPECT_DOUBLE_EQ(skew.gini, 0.0);
}

TEST(ComputeSkewTest, OneHotShardIsRatioNGiniNearOne) {
  // All work on one of four shards: max/mean = 400/100 = 4, and the Gini of
  // a one-hot distribution over n shards is (n-1)/n.
  Skew skew = ComputeSkew({400, 0, 0, 0});
  EXPECT_DOUBLE_EQ(skew.max_mean_ratio, 4.0);
  EXPECT_DOUBLE_EQ(skew.gini, 0.75);
}

TEST(ComputeSkewTest, GiniSeesMidDistributionImbalanceTheRatioMisses) {
  // Same max and mean, different shapes: the ratio cannot tell these apart
  // but the Gini orders them.
  Skew flat = ComputeSkew({200, 100, 100, 100, 100, 200});
  Skew tilted = ComputeSkew({200, 200, 190, 10, 100, 100});
  EXPECT_DOUBLE_EQ(flat.max_mean_ratio, tilted.max_mean_ratio);
  EXPECT_GT(tilted.gini, flat.gini);
}

// ---------------------------------------------------------------------------
// Step attribution on a real sharded engine

namespace dd = ::gs::differential;

dd::DataflowOptions Workers(size_t n) {
  dd::DataflowOptions options;
  options.num_workers = n;
  return options;
}

// Runs `rounds` Step() rounds of a hash-partitioned ReduceMin over
// `num_keys` keys and returns the dataflow's profile snapshot.
StepProfile::Snapshot RunReduceRounds(size_t num_workers, size_t num_keys,
                                      size_t rounds, size_t records_per_round,
                                      std::string* all_json = nullptr) {
  dd::ShardedDataflow sharded(Workers(num_workers));
  std::vector<dd::Input<IntPair>> inputs;
  for (size_t w = 0; w < sharded.num_workers(); ++w) {
    inputs.emplace_back(sharded.worker(w));
    dd::Capture(dd::ReduceMin(inputs[w].stream()));
  }
  for (size_t round = 0; round < rounds; ++round) {
    for (size_t i = 0; i < records_per_round; ++i) {
      uint64_t key = (round * records_per_round + i) % num_keys;
      inputs[sharded.OwnerOfHash(HashValue(key))].Send(
          {key, static_cast<int64_t>(i)}, 1);
    }
    EXPECT_TRUE(sharded.Step().ok());
  }
  if (all_json != nullptr) {
    // Rendered while the dataflow (and so its profile) is still alive.
    *all_json = ProfileRegistry::Global().RenderAllJson();
  }
  return sharded.profile().GetSnapshot();
}

// The tentpole acceptance bound: per worker and per step, the five states
// sum to the step's wall clock within 1% (they tile it by construction; the
// slack only absorbs clock-read interleaving between coordinator and
// workers).
void ExpectExactTiling(const StepProfile::Snapshot& snap) {
  ASSERT_FALSE(snap.recent.empty());
  for (const StepProfile::VersionRecord& record : snap.recent) {
    ASSERT_EQ(record.workers.size(), snap.num_workers);
    for (size_t w = 0; w < record.workers.size(); ++w) {
      const uint64_t total = record.workers[w].total_ns();
      const uint64_t wall = record.wall_ns;
      const uint64_t slack = wall / 100 + 10'000;  // 1% + 10µs clock grain
      EXPECT_LE(total > wall ? total - wall : wall - total, slack)
          << "version " << record.version << " worker " << w << ": total "
          << total << " vs wall " << wall;
    }
  }
}

TEST(StepProfileTest, AttributionSumsToWallPerWorker) {
  for (size_t workers : {2u, 4u, 7u}) {
    StepProfile::Snapshot snap =
        RunReduceRounds(workers, /*num_keys=*/64, /*rounds=*/4,
                        /*records_per_round=*/2000);
    EXPECT_EQ(snap.num_workers, workers);
    EXPECT_GE(snap.steps, 4u);
    EXPECT_GT(snap.wall_ns, 0u);
    ExpectExactTiling(snap);
    // Real work happened and was attributed.
    uint64_t busy = 0;
    for (const WorkerAttribution& a : snap.totals) busy += a.busy_ns;
    EXPECT_GT(busy, 0u) << workers << " workers";
  }
}

TEST(StepProfileTest, SingleWorkerHasNoBarrierOrExchangeTime) {
  StepProfile::Snapshot snap = RunReduceRounds(
      /*num_workers=*/1, /*num_keys=*/64, /*rounds=*/3,
      /*records_per_round=*/2000);
  ASSERT_EQ(snap.totals.size(), 1u);
  // An inline pool has no peers to wait for and no inboxes to drain: every
  // nanosecond is busy, seal, or idle.
  EXPECT_EQ(snap.totals[0].barrier_ns, 0u);
  EXPECT_EQ(snap.totals[0].exchange_ns, 0u);
  EXPECT_GT(snap.totals[0].busy_ns, 0u);
  ExpectExactTiling(snap);
}

TEST(StepProfileTest, WorkerEventCountsAndExchangeBatchesAreAttributed) {
  // Two keyed hops with a rekey between them: the second hop repartitions
  // across shards, so the exchange hub carries real traffic.
  dd::ShardedDataflow sharded(Workers(4));
  std::vector<dd::Input<IntPair>> inputs;
  for (size_t w = 0; w < sharded.num_workers(); ++w) {
    inputs.emplace_back(sharded.worker(w));
    auto mins = dd::ReduceMin(inputs[w].stream());
    dd::Capture(dd::Count(mins.Map(
        [](const IntPair& p) { return IntPair{p.second % 13, p.first}; })));
  }
  for (size_t i = 0; i < 2000; ++i) {
    uint64_t key = i % 64;
    inputs[sharded.OwnerOfHash(HashValue(key))].Send(
        {key, static_cast<int64_t>(i % 29)}, 1);
  }
  ASSERT_TRUE(sharded.Step().ok());

  StepProfile::Snapshot snap = sharded.profile().GetSnapshot();
  uint64_t events = 0;
  for (const WorkerAttribution& a : snap.totals) events += a.events;
  EXPECT_GT(events, 0u);
  EXPECT_GT(snap.exchange_batches, 0u);
  ExpectExactTiling(snap);
}

// Hash-skewed vs balanced: a single hot key lands every record on one
// shard, so the record-skew ratio approaches W while the balanced run stays
// near 1 — and /workersz renders the two runs distinguishably.
TEST(StepProfileTest, SkewedDistributionIsDetectedAndRendered) {
  std::string balanced_json;
  StepProfile::Snapshot balanced = RunReduceRounds(
      /*num_workers=*/4, /*num_keys=*/256, /*rounds=*/2,
      /*records_per_round=*/4000, &balanced_json);
  std::string skewed_json;
  StepProfile::Snapshot skewed = RunReduceRounds(
      /*num_workers=*/4, /*num_keys=*/1, /*rounds=*/2,
      /*records_per_round=*/4000, &skewed_json);

  ASSERT_GT(balanced.record_skew.max_mean_ratio, 0.0);
  ASSERT_GT(skewed.record_skew.max_mean_ratio, 0.0);
  // Acceptance: the hot-key run's ratio is at least 2× the balanced run's.
  EXPECT_GE(skewed.record_skew.max_mean_ratio,
            2.0 * balanced.record_skew.max_mean_ratio);
  // One hot shard out of four: the ratio is exactly W and the Gini is high.
  EXPECT_DOUBLE_EQ(skewed.record_skew.max_mean_ratio, 4.0);
  EXPECT_GT(skewed.record_skew.gini, 0.7);
  EXPECT_LT(balanced.record_skew.gini, 0.3);

  // The /workersz body renders both runs with their skew visible: find each
  // profile by name and compare the records_ratio fields.
  auto ratio_of = [](const std::string& json, const std::string& name) {
    json_lite::Value root;
    std::string error;
    EXPECT_TRUE(json_lite::Parse(json, &root, &error)) << error;
    const json_lite::Value* dataflows = root.Get("dataflows");
    EXPECT_NE(dataflows, nullptr);
    for (const json_lite::Value& df : dataflows->array) {
      if (df.Get("name") != nullptr && df.Get("name")->string == name) {
        EXPECT_NE(df.Get("skew"), nullptr);
        return df.Get("skew")->Get("records_ratio")->number;
      }
    }
    ADD_FAILURE() << "profile " << name << " not rendered";
    return 0.0;
  };
  const double balanced_rendered = ratio_of(balanced_json, balanced.name);
  const double skewed_rendered = ratio_of(skewed_json, skewed.name);
  EXPECT_NEAR(balanced_rendered, balanced.record_skew.max_mean_ratio, 0.001);
  EXPECT_NEAR(skewed_rendered, skewed.record_skew.max_mean_ratio, 0.001);
  EXPECT_GE(skewed_rendered, 2.0 * balanced_rendered);
}

TEST(StepProfileTest, GlobalSummaryIsWellFormedAndCounting) {
  RunReduceRounds(/*num_workers=*/2, /*num_keys=*/16, /*rounds=*/1,
                  /*records_per_round=*/500);
  json_lite::Value root;
  std::string error;
  ASSERT_TRUE(json_lite::Parse(GlobalSummaryJson(), &root, &error)) << error;
  ASSERT_NE(root.Get("steps"), nullptr);
  EXPECT_GE(root.Get("steps")->number, 1);
  ASSERT_NE(root.Get("state_nanos"), nullptr);
  for (const char* state : {"busy", "exchange", "barrier", "seal", "idle"}) {
    EXPECT_NE(root.Get("state_nanos")->Get(state), nullptr) << state;
  }
  ASSERT_NE(root.Get("busy_frac"), nullptr);
  EXPECT_GT(root.Get("busy_frac")->number, 0.0);
}

// ---------------------------------------------------------------------------
// Critical-path extraction

trace::CollectedEvent Span(const char* category, const char* name,
                           uint64_t ts_ns, uint64_t dur_ns, uint32_t version) {
  trace::CollectedEvent e;
  e.phase = 'X';
  e.category = category;
  e.name = name;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.version = version;
  return e;
}

TEST(CriticalPathTest, EmptyTraceIsDisabled) {
  critical_path::Report report = critical_path::Extract({});
  EXPECT_FALSE(report.enabled);
  EXPECT_EQ(critical_path::ToJson(report), "{\"enabled\": false}");
}

TEST(CriticalPathTest, PicksLongestNonOverlappingChainAndStalls) {
  // Wall = the step span [0, 100). Ops: A [10, 40), B [50, 90), and C
  // [15, 25) overlapping A. The longest dependent chain is A → B (70 ns);
  // the stalls are the 10 ns lead-in before A and the 10 ns gap before B.
  std::vector<trace::CollectedEvent> events;
  events.push_back(Span("engine", "step", 0, 100, 7));
  events.push_back(Span("op", "join", 10, 30, 7));
  events.push_back(Span("op", "reduce", 50, 40, 7));
  events.push_back(Span("op", "map", 15, 10, 7));
  critical_path::Report report = critical_path::Extract(events);
  ASSERT_TRUE(report.enabled);
  ASSERT_EQ(report.versions.size(), 1u);
  const critical_path::VersionReport& vr = report.versions[0];
  EXPECT_EQ(vr.version, 7u);
  EXPECT_EQ(vr.wall_ns, 100u);
  EXPECT_EQ(vr.path_ns, 70u);
  EXPECT_DOUBLE_EQ(vr.path_fraction, 0.7);
  ASSERT_EQ(vr.path.size(), 2u);
  EXPECT_EQ(vr.path[0].name, "join");
  EXPECT_EQ(vr.path[1].name, "reduce");
  ASSERT_EQ(vr.top_stalls.size(), 2u);
  EXPECT_EQ(vr.top_stalls[0].gap_ns, 10u);
  EXPECT_EQ(vr.top_stalls[1].gap_ns, 10u);
}

TEST(CriticalPathTest, StepSpanIsNeverAChainCandidate) {
  // Only the step span at this version: wall is known but no candidate
  // spans exist, so the path is empty rather than trivially 100%.
  std::vector<trace::CollectedEvent> events;
  events.push_back(Span("engine", "step", 0, 100, 3));
  critical_path::Report report = critical_path::Extract(events);
  ASSERT_TRUE(report.enabled);
  EXPECT_TRUE(report.versions.empty());
  EXPECT_EQ(report.total_path_ns, 0u);
}

TEST(CriticalPathTest, VersionlessAndNonSpanEventsAreIgnored) {
  std::vector<trace::CollectedEvent> events;
  events.push_back(Span("op", "join", 0, 50, trace::kNoVersion));
  trace::CollectedEvent counter = Span("op", "c", 0, 0, 1);
  counter.phase = 'C';
  events.push_back(counter);
  critical_path::Report report = critical_path::Extract(events);
  EXPECT_TRUE(report.versions.empty());
}

// Acceptance: with one worker and tracing on, the extracted critical path
// covers at least 80% of the measured step wall clock across a 10-view
// collection analytics run (serial execution has essentially no
// coordination gaps — the path should be nearly all of the wall).
TEST(CriticalPathTest, PathCoversWallClockOnSerialCollectionRun) {
  trace::SetEnabled(false);
  trace::ClearForTest();

  TemporalGraphOptions graph_opts;
  graph_opts.num_nodes = 300;
  graph_opts.num_edges = 3000;
  graph_opts.end_time = 1000;
  PropertyGraph graph = GenerateTemporalGraph(graph_opts);
  std::string stmt_text = "create view collection w on G ";
  const size_t kViews = 10;
  for (size_t i = 0; i < kViews; ++i) {
    if (i) stmt_text += ", ";
    stmt_text += "[w" + std::to_string(i) +
                 ": timestamp <= " + std::to_string(1000 * (i + 1) / kViews) +
                 "]";
  }
  auto stmt = gvdl::Parse(stmt_text);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto collection = views::MaterializeCollection(
      graph, std::get<gvdl::ViewCollectionDef>(*stmt),
      views::MaterializeOptions());
  ASSERT_TRUE(collection.ok()) << collection.status().ToString();

  trace::SetEnabled(true);
  analytics::Wcc wcc;
  views::ExecutionOptions opts;
  opts.strategy = splitting::Strategy::kDiffOnly;
  opts.dataflow.num_workers = 1;
  auto result = views::RunOnCollection(wcc, graph, *collection, opts);
  trace::SetEnabled(false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  critical_path::Report report = critical_path::ExtractFromLiveTrace();
  trace::ClearForTest();
  ASSERT_TRUE(report.enabled);
  EXPECT_GE(report.versions.size(), kViews);
  ASSERT_GT(report.total_wall_ns, 0u);
  EXPECT_GE(report.path_fraction, 0.8)
      << "critical path covers only " << report.path_fraction * 100
      << "% of wall";
  for (const critical_path::VersionReport& vr : report.versions) {
    EXPECT_LE(vr.path_ns, vr.wall_ns) << "version " << vr.version;
  }

  // The report renders as valid JSON (the /statusz "critical_path" source).
  json_lite::Value root;
  std::string error;
  ASSERT_TRUE(json_lite::Parse(critical_path::ToJson(report), &root, &error))
      << error;
  EXPECT_NE(root.Get("versions"), nullptr);
}

}  // namespace
}  // namespace gs::sched
