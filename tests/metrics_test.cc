#include "common/metrics.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "json_lite.h"

namespace gs::metrics {
namespace {

TEST(CounterTest, SingleThreadedIncrements) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Set(-5);
  EXPECT_EQ(gauge.Value(), -5);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket i covers (2^(i-1), 2^i]; values ≤ 1 land in bucket 0.
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 0u);
  EXPECT_EQ(Histogram::BucketIndex(2), 1u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 2u);
  EXPECT_EQ(Histogram::BucketIndex(5), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 3u);
  EXPECT_EQ(Histogram::BucketIndex(9), 4u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1025), 11u);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX),
            Histogram::kNumBuckets - 1);

  EXPECT_EQ(Histogram::BucketUpperBound(0), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1024u);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1),
            UINT64_MAX);

  // Every value lands in the bucket whose bound is the least one ≥ value.
  for (uint64_t value : {1ull, 2ull, 3ull, 100ull, 4096ull, 4097ull}) {
    size_t bucket = Histogram::BucketIndex(value);
    EXPECT_LE(value, Histogram::BucketUpperBound(bucket)) << value;
    if (bucket > 0) {
      EXPECT_GT(value, Histogram::BucketUpperBound(bucket - 1)) << value;
    }
  }
}

TEST(HistogramTest, ObserveAccumulatesCountSumAndBuckets) {
  Histogram h;
  h.Observe(1);
  h.Observe(2);
  h.Observe(2);
  h.Observe(1000);
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_EQ(h.Sum(), 1005u);
  EXPECT_EQ(h.BucketCount(0), 1u);   // value 1
  EXPECT_EQ(h.BucketCount(1), 2u);   // the two 2s
  EXPECT_EQ(h.BucketCount(10), 1u);  // 1000 ∈ (512, 1024]
}

TEST(HistogramTest, ConcurrentObservesSumExactly) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (uint64_t i = 0; i < kPerThread; ++i) h.Observe(i % 100 + 1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.Count(), kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    bucket_total += h.BucketCount(i);
  }
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
}

TEST(RegistryTest, GetReturnsSamePointerForSameSeries) {
  Registry registry;
  Counter* a = registry.GetCounter("requests");
  Counter* b = registry.GetCounter("requests");
  EXPECT_EQ(a, b);
  Counter* labeled = registry.GetCounter("requests", {{"shard", "0"}});
  EXPECT_NE(a, labeled);
  EXPECT_EQ(labeled, registry.GetCounter("requests", {{"shard", "0"}}));
}

TEST(RegistryTest, MakeKeyFormatsLabels) {
  EXPECT_EQ(Registry::MakeKey("m", {}), "m");
  EXPECT_EQ(Registry::MakeKey("m", {{"a", "1"}, {"b", "x"}}),
            "m{a=\"1\",b=\"x\"}");
}

TEST(RegistryTest, PrometheusExpositionGolden) {
  Registry registry;
  registry.GetCounter("gs_requests")->Increment(3);
  registry.GetCounter("gs_requests", {{"shard", "1"}})->Increment(2);
  registry.GetGauge("gs_depth")->Set(-4);
  Histogram* h = registry.GetHistogram("gs_latency");
  h->Observe(1);
  h->Observe(3);

  const std::string expected =
      "# TYPE gs_requests counter\n"
      "gs_requests 3\n"
      "gs_requests{shard=\"1\"} 2\n"
      "# TYPE gs_depth gauge\n"
      "gs_depth -4\n"
      "# TYPE gs_latency histogram\n"
      "gs_latency_bucket{le=\"1\"} 1\n"
      "gs_latency_bucket{le=\"4\"} 2\n"
      "gs_latency_bucket{le=\"+Inf\"} 2\n"
      "gs_latency_sum 4\n"
      "gs_latency_count 2\n";
  EXPECT_EQ(registry.ExpositionText(), expected);
}

TEST(RegistryTest, JsonSnapshotParsesAndCarriesValues) {
  Registry registry;
  registry.GetCounter("c1")->Increment(7);
  registry.GetGauge("g1")->Set(9);
  registry.GetHistogram("h1")->Observe(5);

  std::string snapshot = registry.JsonSnapshot();
  json_lite::Value root;
  std::string error;
  ASSERT_TRUE(json_lite::Parse(snapshot, &root, &error)) << error << "\n"
                                                         << snapshot;
  const json_lite::Value* counters = root.Get("counters");
  ASSERT_NE(counters, nullptr);
  const json_lite::Value* c1 = counters->Get("c1");
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1->number, 7);
  const json_lite::Value* gauges = root.Get("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->Get("g1")->number, 9);
  const json_lite::Value* h1 = root.Get("histograms")->Get("h1");
  ASSERT_NE(h1, nullptr);
  EXPECT_EQ(h1->Get("count")->number, 1);
  EXPECT_EQ(h1->Get("sum")->number, 5);
}

TEST(RegistryTest, JsonSnapshotSurvivesLargeHistogramSums) {
  // Regression: the histogram header ({"count": N, "sum": M, "buckets": {)
  // was formatted into a 48-byte buffer; a many-digit count+sum pair
  // truncated the trailing "{" and corrupted the whole snapshot.
  Registry registry;
  Histogram* h = registry.GetHistogram("big");
  for (int i = 0; i < 100; ++i) h->Observe(uint64_t{1} << 40);

  std::string snapshot = registry.JsonSnapshot();
  json_lite::Value root;
  std::string error;
  ASSERT_TRUE(json_lite::Parse(snapshot, &root, &error)) << error << "\n"
                                                         << snapshot;
  const json_lite::Value* big = root.Get("histograms")->Get("big");
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(big->Get("count")->number, 100);
  EXPECT_EQ(big->Get("sum")->number,
            100.0 * static_cast<double>(uint64_t{1} << 40));
  ASSERT_NE(big->Get("buckets"), nullptr);
}

TEST(RegistryTest, ConcurrentRegistrationAndUse) {
  Registry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // All threads race to create and bump the same series.
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("shared")->Increment();
        registry.GetHistogram("shared_h")->Observe(static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("shared")->Value(), kThreads * 1000u);
  EXPECT_EQ(registry.GetHistogram("shared_h")->Count(), kThreads * 1000u);
}

TEST(RegistryTest, GlobalIsSingleton) {
  EXPECT_EQ(&Registry::Global(), &Registry::Global());
}

TEST(RegistryTest, GlobalCarriesBuildInfoGauge) {
  // The build-attribution gauge is registered on the global registry only
  // (test-local registries, like the golden-exposition one above, stay
  // clean). Value is always 1; the labels carry the information.
  std::string exposition = Registry::Global().ExpositionText();
  EXPECT_NE(exposition.find("gs_build_info{"), std::string::npos);
  const Registry::Labels& labels = BuildInfoLabels();
  ASSERT_EQ(labels.count("git_sha"), 1u);
  ASSERT_EQ(labels.count("compiler"), 1u);
  ASSERT_EQ(labels.count("simd"), 1u);
  EXPECT_FALSE(labels.at("compiler").empty());
  const std::string& simd = labels.at("simd");
  EXPECT_TRUE(simd == "avx2" || simd == "scalar" || simd == "killed") << simd;
  EXPECT_EQ(Registry::Global().GetGauge("gs_build_info", labels)->Value(), 1);
}

TEST(QuantileTest, EmptyHistogramReturnsZero) {
  Histogram h;
  EXPECT_EQ(HistogramQuantile(h, 0.5), 0.0);
  EXPECT_EQ(HistogramQuantile(h, 0.99), 0.0);
  std::array<uint64_t, Histogram::kNumBuckets> empty{};
  EXPECT_EQ(QuantileFromBuckets(empty, 0.5), 0.0);
}

TEST(QuantileTest, ExactBucketBoundaries) {
  // One observation per bucket boundary: each value's cumulative rank maps
  // exactly back to that boundary (fraction = 1 within its bucket).
  Histogram h;
  for (uint64_t v : {1, 2, 4, 8}) h.Observe(v);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.75), 4.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 1.0), 8.0);
}

TEST(QuantileTest, SingleObservationInterpolatesWithinItsBucket) {
  Histogram h;
  h.Observe(1024);  // bucket (512, 1024]
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 1.0), 1024.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.5), 768.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.0), 512.0);
}

TEST(QuantileTest, OverflowBucketClampsToItsLowerBound) {
  Histogram h;
  h.Observe(UINT64_MAX);  // lands in the +Inf bucket
  // The +Inf bucket has no finite upper bound to interpolate toward; the
  // estimate clamps to the bucket's lower bound instead of overflowing.
  EXPECT_DOUBLE_EQ(
      HistogramQuantile(h, 0.99),
      static_cast<double>(
          Histogram::BucketUpperBound(Histogram::kNumBuckets - 2)));
}

TEST(QuantileTest, CrossShardObservationsMergeExactly) {
  // Concurrent observers spread across the histogram's shards; quantiles
  // are computed over the merged bucket counts, so the estimates must be
  // identical to a single-threaded fill.
  Histogram h;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < 100; ++i) h.Observe(4);
      for (int i = 0; i < 100; ++i) h.Observe(16);
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(h.Count(), kThreads * 200u);
  // Half the mass ends exactly at 4, the rest exactly at 16.
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.5), 4.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 1.0), 16.0);
  // p75 interpolates through the (8, 16] bucket: rank 1200 is 400/800 of
  // the way through it.
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.75), 12.0);
}

}  // namespace
}  // namespace gs::metrics
