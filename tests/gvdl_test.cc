// GVDL: lexer, parser (all three statement forms, from the paper's
// listings), error reporting, and compiled predicate evaluation.
#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "graph/generators.h"
#include "gvdl/lexer.h"
#include "gvdl/parser.h"
#include "gvdl/predicate.h"

namespace gs::gvdl {
namespace {

TEST(LexerTest, TokenKindsAndPositions) {
  auto tokens = Tokenize("create view V1 on Calls\nedges where duration > 10");
  ASSERT_TRUE(tokens.ok()) << tokens.status().ToString();
  ASSERT_GE(tokens->size(), 9u);
  EXPECT_EQ((*tokens)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "create");
  EXPECT_EQ((*tokens)[2].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[2].text, "V1");
  // Second line positions.
  EXPECT_EQ((*tokens)[5].line, 2u);
  EXPECT_EQ(tokens->back().type, TokenType::kEnd);
}

TEST(LexerTest, HyphenatedIdentifiersAndComments) {
  auto tokens = Tokenize("CA-Long-Calls -- a comment\nD1-Y2010");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);  // two identifiers + end
  EXPECT_EQ((*tokens)[0].text, "CA-Long-Calls");
  EXPECT_EQ((*tokens)[1].text, "D1-Y2010");
}

TEST(LexerTest, LiteralsAndOperators) {
  auto tokens = Tokenize("x >= 2.5 and y != 'a b' or z <= 3");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, ">=");
  EXPECT_EQ((*tokens)[2].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ((*tokens)[2].float_value, 2.5);
  EXPECT_EQ((*tokens)[5].text, "!=");
  EXPECT_EQ((*tokens)[6].type, TokenType::kString);
  EXPECT_EQ((*tokens)[6].text, "a b");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("x = 'unterminated").ok());
  EXPECT_FALSE(Tokenize("x # y").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

TEST(ParserTest, Listing1FilteredView) {
  // Paper Listing 1 (state → city to match our example graph).
  auto s = Parse(
      "create view CA-Long-Calls on Calls\n"
      "edges where src.city = 'CA' and dst.city = 'CA'\n"
      "and duration > 10 and year = 2019");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  const auto* def = std::get_if<FilteredViewDef>(&*s);
  ASSERT_NE(def, nullptr);
  EXPECT_EQ(def->name, "CA-Long-Calls");
  EXPECT_EQ(def->on, "Calls");
  ASSERT_EQ(def->predicate->kind, Expr::Kind::kAnd);
  EXPECT_EQ(def->predicate->children.size(), 4u);
  EXPECT_EQ(def->predicate->ToString(),
            "(src.city = 'CA' and dst.city = 'CA' and duration > 10 and "
            "year = 2019)");
}

TEST(ParserTest, Listing3ViewCollection) {
  auto s = Parse(
      "create view collection call-analysis on Calls\n"
      "[D1-Y2010: duration <= 1 and year <= 2010],\n"
      "[D2-Y2010: duration <= 2 and year <= 2010],\n"
      "[D3-Y2010: duration <= 3 and year <= 2010]");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  const auto* def = std::get_if<ViewCollectionDef>(&*s);
  ASSERT_NE(def, nullptr);
  EXPECT_EQ(def->name, "call-analysis");
  ASSERT_EQ(def->views.size(), 3u);
  EXPECT_EQ(def->views[1].name, "D2-Y2010");
}

TEST(ParserTest, Listing4AggregateViews) {
  auto s1 = Parse(
      "create view NY-Dr-CA-Lawyer on Calls\n"
      "nodes group by [\n"
      "(profession='Doctor' and city='NY'),\n"
      "(profession='Lawyer' and city='LA'),\n"
      "(profession='Teacher' and city='DC')]\n"
      "aggregate count(*)");
  ASSERT_TRUE(s1.ok()) << s1.status().ToString();
  const auto* agg1 = std::get_if<AggregateViewDef>(&*s1);
  ASSERT_NE(agg1, nullptr);
  EXPECT_EQ(agg1->group_by_predicates.size(), 3u);
  ASSERT_EQ(agg1->node_aggregates.size(), 1u);
  EXPECT_EQ(agg1->node_aggregates[0].func, AggregateSpec::Func::kCount);
  EXPECT_EQ(agg1->node_aggregates[0].output_name, "count");

  auto s2 = Parse(
      "create view City-Calls-City on Calls\n"
      "nodes group by city aggregate num-phones: count(*)\n"
      "edges aggregate total-duration: sum(duration)");
  ASSERT_TRUE(s2.ok()) << s2.status().ToString();
  const auto* agg2 = std::get_if<AggregateViewDef>(&*s2);
  ASSERT_NE(agg2, nullptr);
  ASSERT_EQ(agg2->group_by_properties.size(), 1u);
  EXPECT_EQ(agg2->group_by_properties[0], "city");
  ASSERT_EQ(agg2->node_aggregates.size(), 1u);
  EXPECT_EQ(agg2->node_aggregates[0].output_name, "num-phones");
  ASSERT_EQ(agg2->edge_aggregates.size(), 1u);
  EXPECT_EQ(agg2->edge_aggregates[0].output_name, "total-duration");
  EXPECT_EQ(agg2->edge_aggregates[0].func, AggregateSpec::Func::kSum);
  EXPECT_EQ(agg2->edge_aggregates[0].property, "duration");
}

TEST(ParserTest, PredicatePrecedenceAndNot) {
  auto p = ParsePredicate("a = 1 or b = 2 and not (c = 3 or d = 4)");
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  // Or at the top, and binds tighter, not applies to the parenthesized or.
  ASSERT_EQ((*p)->kind, Expr::Kind::kOr);
  ASSERT_EQ((*p)->children.size(), 2u);
  EXPECT_EQ((*p)->children[1]->kind, Expr::Kind::kAnd);
  EXPECT_EQ((*p)->children[1]->children[1]->kind, Expr::Kind::kNot);
}

TEST(ParserTest, ScriptWithMultipleStatements) {
  auto script = ParseScript(
      "create view A on G edges where x = 1\n"
      "create view B on A edges where y = 2\n"
      "create view collection C on G [v1: x = 1], [v2: x = 2]");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_EQ(script->size(), 3u);
  EXPECT_TRUE(std::holds_alternative<FilteredViewDef>((*script)[0]));
  EXPECT_EQ(std::get<FilteredViewDef>((*script)[1]).on, "A");
  EXPECT_TRUE(std::holds_alternative<ViewCollectionDef>((*script)[2]));
}

TEST(ParserTest, ExplainStatement) {
  auto s = Parse("explain C");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  ASSERT_TRUE(std::holds_alternative<ExplainDef>(*s));
  EXPECT_EQ(std::get<ExplainDef>(*s).target, "C");
}

TEST(ParserTest, ExplainMixedIntoScript) {
  auto script = ParseScript(
      "create view collection C on G [v1: x = 1], [v2: x = 2]\n"
      "explain C\n"
      "create view A on G edges where x = 1");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_EQ(script->size(), 3u);
  EXPECT_TRUE(std::holds_alternative<ViewCollectionDef>((*script)[0]));
  ASSERT_TRUE(std::holds_alternative<ExplainDef>((*script)[1]));
  EXPECT_EQ(std::get<ExplainDef>((*script)[1]).target, "C");
  EXPECT_TRUE(std::holds_alternative<FilteredViewDef>((*script)[2]));
}

TEST(ParserTest, ExplainErrors) {
  // Missing collection name.
  EXPECT_FALSE(Parse("explain").ok());
  // Trailing garbage after the name.
  EXPECT_FALSE(Parse("explain C bogus").ok());
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("create view X on").ok());
  EXPECT_FALSE(Parse("create view X on G edges x = 1").ok());
  EXPECT_FALSE(Parse("create view collection C on G").ok());
  EXPECT_FALSE(Parse("create view X on G nodes group by").ok());
  EXPECT_FALSE(Parse("create view X on G edges where x =").ok());
  EXPECT_FALSE(
      Parse("create view X on G nodes group by c aggregate median(x)").ok());
  // Trailing garbage.
  EXPECT_FALSE(Parse("create view X on G edges where x = 1 bogus bogus").ok());
  // Position information is included.
  auto err = Parse("create view X on G edges where x ==");
  ASSERT_FALSE(err.ok());
  EXPECT_NE(err.status().message().find("line 1"), std::string::npos);
}

class PredicateEvalTest : public ::testing::Test {
 protected:
  PredicateEvalTest() : graph_(MakeCallGraphExample()) {}

  // Evaluates the predicate over all edges, returning matched edge ids.
  std::vector<EdgeId> Matches(const std::string& pred_text) {
    auto expr = ParsePredicate(pred_text);
    EXPECT_TRUE(expr.ok()) << expr.status().ToString();
    auto compiled = CompiledEdgePredicate::Compile(*expr, graph_);
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    std::vector<EdgeId> out;
    for (EdgeId e = 0; e < graph_.num_edges(); ++e) {
      if (compiled->Evaluate(e)) out.push_back(e);
    }
    return out;
  }

  PropertyGraph graph_;
};

TEST_F(PredicateEvalTest, EdgePropertyComparisons) {
  // All 2019 calls (from the Figure 1 reconstruction there are 8).
  EXPECT_EQ(Matches("year = 2019").size(), 8u);
  EXPECT_EQ(Matches("year != 2019").size(), 7u);
  EXPECT_EQ(Matches("duration <= 4").size(), 4u);
  EXPECT_EQ(Matches("duration <= 4 and year = 2019").size(), 2u);
  EXPECT_EQ(Matches("duration > 34").size(), 0u);
}

TEST_F(PredicateEvalTest, NodePropertyComparisons) {
  auto la_internal = Matches("src.city = 'LA' and dst.city = 'LA'");
  for (EdgeId e : la_internal) {
    EXPECT_EQ(graph_.node_properties()
                  .GetByName(graph_.edge(e).src, "city")
                  ->AsString(),
              "LA");
    EXPECT_EQ(graph_.node_properties()
                  .GetByName(graph_.edge(e).dst, "city")
                  ->AsString(),
              "LA");
  }
  // Complement partitions the edge set.
  auto rest = Matches("not (src.city = 'LA' and dst.city = 'LA')");
  EXPECT_EQ(la_internal.size() + rest.size(), graph_.num_edges());
}

TEST_F(PredicateEvalTest, MixedAndOrSemantics) {
  auto m = Matches(
      "src.profession = 'Doctor' or dst.profession = 'Doctor' and year >= "
      "2015");
  // and binds tighter: doctors-as-source OR (doctors-as-dst AND recent).
  for (EdgeId e : m) {
    bool src_doc = graph_.node_properties()
                       .GetByName(graph_.edge(e).src, "profession")
                       ->AsString() == "Doctor";
    bool dst_doc = graph_.node_properties()
                       .GetByName(graph_.edge(e).dst, "profession")
                       ->AsString() == "Doctor";
    int64_t year = graph_.edge_properties().GetByName(e, "year")->AsInt();
    EXPECT_TRUE(src_doc || (dst_doc && year >= 2015));
  }
}

TEST_F(PredicateEvalTest, CompileErrors) {
  auto expr = ParsePredicate("nonexistent = 1");
  ASSERT_TRUE(expr.ok());
  EXPECT_FALSE(CompiledEdgePredicate::Compile(*expr, graph_).ok());

  auto bad_type = ParsePredicate("duration = 'ten'");
  ASSERT_TRUE(bad_type.ok());
  EXPECT_FALSE(CompiledEdgePredicate::Compile(*bad_type, graph_).ok());

  // Node predicates reject src./dst. references.
  auto node_expr = ParsePredicate("src.city = 'LA'");
  ASSERT_TRUE(node_expr.ok());
  EXPECT_FALSE(CompiledNodePredicate::Compile(*node_expr, graph_).ok());
}

TEST(ParserTest, MalformedPredicateCorpusIsRejectedCleanly) {
  // The committed corpus holds the fuzzer's first 50 rejected predicate
  // strings (`fuzz_differential --emit-gvdl-corpus --seed 1`). Every line
  // must come back as a Status — never an abort or a spurious accept.
  std::ifstream in(GS_TEST_DATA_DIR "/gvdl_corpus/rejected_predicates.txt");
  ASSERT_TRUE(in.is_open()) << "corpus file missing";
  std::string line;
  size_t count = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++count;
    auto parsed = ParsePredicate(line);
    EXPECT_FALSE(parsed.ok()) << "corpus line unexpectedly parsed: " << line;
  }
  EXPECT_EQ(count, 50u);
}

TEST(ParserTest, DeepNestingHitsRecursionLimit) {
  // Unbounded recursive descent would overflow the stack long before the
  // lexer complains; the parser caps predicate depth instead.
  std::string deep_not;
  for (int i = 0; i < 300; ++i) deep_not += "not ";
  deep_not += "a = 1";
  auto p1 = ParsePredicate(deep_not);
  ASSERT_FALSE(p1.ok());
  EXPECT_NE(p1.status().message().find("nesting too deep"), std::string::npos)
      << p1.status().ToString();

  std::string deep_paren(300, '(');
  deep_paren += "a = 1";
  deep_paren += std::string(300, ')');
  auto p2 = ParsePredicate(deep_paren);
  ASSERT_FALSE(p2.ok());
  EXPECT_NE(p2.status().message().find("nesting too deep"), std::string::npos)
      << p2.status().ToString();

  // Just-under-the-limit nesting still parses.
  std::string shallow(50, '(');
  shallow += "a = 1";
  shallow += std::string(50, ')');
  EXPECT_TRUE(ParsePredicate(shallow).ok());
}

TEST_F(PredicateEvalTest, NodePredicates) {
  auto expr = ParsePredicate("city = 'NY' and profession = 'Lawyer'");
  ASSERT_TRUE(expr.ok());
  auto compiled = CompiledNodePredicate::Compile(*expr, graph_);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  size_t count = 0;
  for (VertexId v = 0; v < graph_.num_nodes(); ++v) {
    if (compiled->Evaluate(v)) ++count;
  }
  EXPECT_EQ(count, 2u);  // paper nodes 4 and 7
}

}  // namespace
}  // namespace gs::gvdl
