// The collection analytics executor: all three strategies produce
// identical, oracle-matching per-view results; splitting bookkeeping and
// engine statistics behave as specified.
#include "views/executor.h"

#include <gtest/gtest.h>

#include "algorithms/algorithms.h"
#include "algorithms/reference.h"
#include "common/random.h"
#include "graph/generators.h"
#include "gvdl/parser.h"

namespace gs::views {
namespace {

using analytics::ResultMap;

// A temporal graph plus a window collection over it.
struct Fixture {
  PropertyGraph graph;
  MaterializedCollection collection;

  static Fixture ExpandingWindows(size_t num_views) {
    Fixture f;
    TemporalGraphOptions opts;
    opts.num_nodes = 120;
    opts.num_edges = 1500;
    opts.end_time = 1000;
    f.graph = GenerateTemporalGraph(opts);

    auto stmt_text = std::string("create view collection w on G ");
    for (size_t i = 0; i < num_views; ++i) {
      if (i) stmt_text += ", ";
      stmt_text += "[w" + std::to_string(i) + ": timestamp <= " +
                   std::to_string(1000 * (i + 1) / num_views) + "]";
    }
    auto stmt = gvdl::Parse(stmt_text);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    MaterializeOptions mopts;
    auto mc = MaterializeCollection(
        f.graph, std::get<gvdl::ViewCollectionDef>(*stmt), mopts);
    EXPECT_TRUE(mc.ok()) << mc.status().ToString();
    f.collection = std::move(*mc);
    return f;
  }

  // Reference result for the view at position t.
  std::vector<WeightedEdge> ViewEdges(size_t t, int weight_column) const {
    std::vector<WeightedEdge> out;
    for (EdgeId e : collection.diffs.Reconstruct(t)) {
      out.push_back(graph.ResolveWeighted(e, weight_column));
    }
    return out;
  }
};

TEST(ExecutorTest, AllStrategiesMatchOracle) {
  Fixture f = Fixture::ExpandingWindows(6);
  analytics::Wcc wcc;
  for (auto strategy :
       {splitting::Strategy::kDiffOnly, splitting::Strategy::kScratch,
        splitting::Strategy::kAdaptive}) {
    ExecutionOptions opts;
    opts.strategy = strategy;
    opts.chunk_size = 2;
    opts.capture_results = true;
    auto result = RunOnCollection(wcc, f.graph, f.collection, opts);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->results.size(), f.collection.num_views());
    for (size_t t = 0; t < f.collection.num_views(); ++t) {
      EXPECT_EQ(result->results[t],
                analytics::WccReference(f.ViewEdges(t, -1)))
          << splitting::StrategyName(strategy) << " view " << t;
    }
  }
}

TEST(ExecutorTest, WeightedComputationUsesWeightColumn) {
  Fixture f = Fixture::ExpandingWindows(4);
  int weight_col = f.graph.FindWeightColumn("weight");
  ASSERT_GE(weight_col, 0);
  // Source: first vertex with an outgoing edge in the first view.
  auto first_view = f.collection.diffs.Reconstruct(0);
  ASSERT_FALSE(first_view.empty());
  VertexId source = f.graph.edge(first_view[0]).src;

  analytics::BellmanFord bf(source);
  ExecutionOptions opts;
  opts.weight_column = weight_col;
  opts.capture_results = true;
  auto result = RunOnCollection(bf, f.graph, f.collection, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (size_t t = 0; t < f.collection.num_views(); ++t) {
    EXPECT_EQ(result->results[t],
              analytics::SsspReference(f.ViewEdges(t, weight_col), source))
        << "view " << t;
  }
}

TEST(ExecutorTest, StrategyBookkeeping) {
  Fixture f = Fixture::ExpandingWindows(7);
  analytics::Bfs bfs(f.graph.edge(0).src);

  ExecutionOptions diff_opts;
  diff_opts.strategy = splitting::Strategy::kDiffOnly;
  auto diff_run = RunOnCollection(bfs, f.graph, f.collection, diff_opts);
  ASSERT_TRUE(diff_run.ok());
  EXPECT_EQ(diff_run->num_splits, 0u);
  ASSERT_EQ(diff_run->per_view.size(), 7u);
  EXPECT_TRUE(diff_run->per_view[0].ran_scratch);  // first view is a seed
  for (size_t t = 1; t < 7; ++t) {
    EXPECT_FALSE(diff_run->per_view[t].ran_scratch);
    EXPECT_EQ(diff_run->per_view[t].input_size,
              f.collection.diff_sizes[t]);
  }

  ExecutionOptions scratch_opts;
  scratch_opts.strategy = splitting::Strategy::kScratch;
  auto scratch_run =
      RunOnCollection(bfs, f.graph, f.collection, scratch_opts);
  ASSERT_TRUE(scratch_run.ok());
  EXPECT_EQ(scratch_run->num_splits, 6u);
  for (size_t t = 0; t < 7; ++t) {
    EXPECT_TRUE(scratch_run->per_view[t].ran_scratch);
    EXPECT_EQ(scratch_run->per_view[t].input_size,
              f.collection.view_sizes[t]);
  }

  ExecutionOptions adaptive_opts;
  adaptive_opts.strategy = splitting::Strategy::kAdaptive;
  auto adaptive_run =
      RunOnCollection(bfs, f.graph, f.collection, adaptive_opts);
  ASSERT_TRUE(adaptive_run.ok());
  // Bootstrap: view 0 scratch, view 1 differential.
  EXPECT_TRUE(adaptive_run->per_view[0].ran_scratch);
  EXPECT_FALSE(adaptive_run->per_view[1].ran_scratch);
}

TEST(ExecutorTest, DiffOnlySharesWorkOnSimilarViews) {
  Fixture f = Fixture::ExpandingWindows(8);
  analytics::Wcc wcc;
  ExecutionOptions diff_opts;
  diff_opts.strategy = splitting::Strategy::kDiffOnly;
  auto diff_run = RunOnCollection(wcc, f.graph, f.collection, diff_opts);
  ExecutionOptions scratch_opts;
  scratch_opts.strategy = splitting::Strategy::kScratch;
  auto scratch_run =
      RunOnCollection(wcc, f.graph, f.collection, scratch_opts);
  ASSERT_TRUE(diff_run.ok());
  ASSERT_TRUE(scratch_run.ok());
  // Engine work (updates published) must be substantially lower for the
  // differential run on an expanding-window collection.
  EXPECT_LT(diff_run->engine_stats.updates_published,
            scratch_run->engine_stats.updates_published / 2)
      << "differential execution should share computation";
}

TEST(ExecutorTest, RunOnGraphMatchesReference) {
  PropertyGraph g = GeneratePowerLawGraph(80, 600, 1.2, 11);
  analytics::PageRank pr(4);
  auto result = RunOnGraph(pr, g);
  ASSERT_TRUE(result.ok());
  std::vector<WeightedEdge> edges;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    edges.push_back(g.ResolveWeighted(e, -1));
  }
  EXPECT_EQ(*result, analytics::PageRankReference(edges, 4));
}

TEST(ExecutorTest, ProfileAccountsForEndToEndTime) {
  // The ISSUE acceptance scenario: 8K nodes / 40K edges / 10 views. The
  // per-operator attribution must cover (nearly) the whole per-view wall
  // time — operator time is a strict subset of the view timer, so the
  // ratio is ≤ 1 and must stay within 10% of it.
  Fixture f;
  TemporalGraphOptions gopts;
  gopts.num_nodes = 8000;
  gopts.num_edges = 40000;
  gopts.end_time = 1000;
  f.graph = GenerateTemporalGraph(gopts);
  std::string text = "create view collection w on G ";
  for (size_t i = 0; i < 10; ++i) {
    if (i) text += ", ";
    text += "[w" + std::to_string(i) + ": timestamp <= " +
            std::to_string(100 * (i + 1)) + "]";
  }
  auto stmt = gvdl::Parse(text);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  MaterializeOptions mopts;
  auto mc = MaterializeCollection(
      f.graph, std::get<gvdl::ViewCollectionDef>(*stmt), mopts);
  ASSERT_TRUE(mc.ok()) << mc.status().ToString();
  f.collection = std::move(*mc);

  analytics::Wcc wcc;
  ExecutionOptions opts;
  opts.strategy = splitting::Strategy::kDiffOnly;
  auto result = RunOnCollection(wcc, f.graph, f.collection, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->per_view.size(), 10u);

  double view_seconds = 0;
  double op_seconds = 0;
  for (const ViewRunStats& v : result->per_view) {
    view_seconds += v.seconds;
    EXPECT_FALSE(v.op_nanos.empty());
    for (const auto& [name, nanos] : v.op_nanos) {
      EXPECT_EQ(name.find('@'), std::string::npos) << name;
      op_seconds += static_cast<double>(nanos) * 1e-9;
    }
  }
  ASSERT_GT(view_seconds, 0.0);
  EXPECT_LE(op_seconds, view_seconds * 1.001);
  EXPECT_GT(op_seconds, view_seconds * 0.9)
      << "profiled operator time " << op_seconds << "s accounts for < 90% of "
      << view_seconds << "s end-to-end";

  // And the rendered report carries the table and the headline counters.
  std::string report = result->Profile();
  EXPECT_NE(report.find("view"), std::string::npos);
  EXPECT_NE(report.find("TOTAL"), std::string::npos);
  EXPECT_NE(report.find("end_to_end_ms="), std::string::npos);
  EXPECT_NE(report.find("exchanged_bytes="), std::string::npos);
}

TEST(ExecutorTest, ProfileCoversScratchAndShardedRuns) {
  Fixture f = Fixture::ExpandingWindows(5);
  analytics::Bfs bfs(f.graph.edge(0).src);
  for (auto strategy :
       {splitting::Strategy::kScratch, splitting::Strategy::kDiffOnly}) {
    for (size_t workers : {size_t{1}, size_t{4}}) {
      ExecutionOptions opts;
      opts.strategy = strategy;
      opts.dataflow.num_workers = workers;
      auto result = RunOnCollection(bfs, f.graph, f.collection, opts);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      for (const ViewRunStats& v : result->per_view) {
        EXPECT_FALSE(v.op_nanos.empty())
            << splitting::StrategyName(strategy) << " workers=" << workers;
      }
      std::string report = result->Profile();
      EXPECT_NE(report.find("TOTAL"), std::string::npos);
    }
  }
}

TEST(ExecutorTest, EmptyViewsAreHandled) {
  PropertyGraph g = MakeCallGraphExample();
  auto stmt = gvdl::Parse(
      "create view collection c on Calls "
      "[none: year > 3000], [all: year > 0], [none2: year > 3000]");
  ASSERT_TRUE(stmt.ok());
  MaterializeOptions mopts;
  auto mc = MaterializeCollection(
      g, std::get<gvdl::ViewCollectionDef>(*stmt), mopts);
  ASSERT_TRUE(mc.ok());
  analytics::Wcc wcc;
  ExecutionOptions opts;
  opts.capture_results = true;
  auto result = RunOnCollection(wcc, g, *mc, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->results[0].empty());
  EXPECT_FALSE(result->results[1].empty());
  EXPECT_TRUE(result->results[2].empty());
}

}  // namespace
}  // namespace gs::views
