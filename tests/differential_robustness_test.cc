// Engine robustness: degenerate inputs, multiplicities, cancellation,
// divergence guards, and API edge cases.
#include <gtest/gtest.h>

#include <map>

#include "differential/differential.h"

namespace gs::differential {
namespace {

using IntPair = std::pair<int64_t, int64_t>;

template <typename D>
std::map<D, Diff> ToMap(const Batch<D>& batch) {
  std::map<D, Diff> m;
  for (const auto& u : batch) m[u.data] += u.diff;
  for (auto it = m.begin(); it != m.end();) {
    it = it->second == 0 ? m.erase(it) : std::next(it);
  }
  return m;
}

TEST(RobustnessTest, EmptyVersionsInterleaved) {
  Dataflow df;
  Input<IntPair> in(&df);
  auto* cap = Capture(ReduceMin(in.stream()));
  in.Send({1, 5}, 1);
  ASSERT_TRUE(df.Step().ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(df.Step().ok());  // empty versions
  in.Send({1, 3}, 1);
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(ToMap(cap->AccumulatedAt(6)),
            (std::map<IntPair, Diff>{{{1, 3}, 1}}));
  EXPECT_TRUE(cap->VersionDiffs(3).empty());
}

TEST(RobustnessTest, SelfCancellingBatch) {
  Dataflow df;
  Input<int64_t> in(&df);
  auto* cap = Capture(in.stream().Map([](const int64_t& x) { return x; }));
  in.Send(7, 1);
  in.Send(7, -1);  // cancels within the same version
  in.Send(8, 3);
  in.Send(8, -2);
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(ToMap(cap->AccumulatedAt(0)), (std::map<int64_t, Diff>{{8, 1}}));
}

TEST(RobustnessTest, HighMultiplicityThroughJoin) {
  Dataflow df;
  Input<IntPair> left(&df), right(&df);
  auto* cap = Capture(Join(left.stream(), right.stream(),
                           [](const int64_t&, const int64_t& a,
                              const int64_t& b) { return a * 100 + b; }));
  left.Send({1, 2}, 1000);
  right.Send({1, 3}, 1000);
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(ToMap(cap->AccumulatedAt(0)),
            (std::map<int64_t, Diff>{{203, 1000000}}));
}

TEST(RobustnessTest, RetractBeyondZeroAndRestore) {
  // A negative accumulation is legal engine state (mid-stream); restoring
  // it must yield the correct final multiset.
  Dataflow df;
  Input<int64_t> in(&df);
  auto* cap = Capture(in.stream().Map([](const int64_t& x) { return x; }));
  in.Send(5, -2);
  ASSERT_TRUE(df.Step().ok());
  in.Send(5, 3);
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(ToMap(cap->AccumulatedAt(1)), (std::map<int64_t, Diff>{{5, 1}}));
}

TEST(RobustnessTest, EventCapAbortsDivergentLoop) {
  DataflowOptions options;
  options.max_events_per_version = 500;
  Dataflow df(options);
  Input<IntPair> in(&df);
  // A loop that increments a counter forever (never converges).
  auto result = Iterate<IntPair>(
      in.stream(), [](LoopScope& scope, Stream<IntPair> inner) {
        return inner.Map([](const IntPair& p) {
          return IntPair{p.first, p.second + 1};
        });
      });
  Capture(result);
  in.Send({1, 0}, 1);
  Status s = df.Step();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST(RobustnessTest, IterationCapTerminatesDivergentLoop) {
  Dataflow df;
  Input<IntPair> in(&df);
  IterateOptions opts;
  opts.max_iterations = 7;
  auto result = Iterate<IntPair>(
      in.stream(),
      [](LoopScope& scope, Stream<IntPair> inner) {
        return inner.Map([](const IntPair& p) {
          return IntPair{p.first, p.second + 1};
        });
      },
      opts);
  auto* cap = Capture(result);
  in.Send({1, 0}, 1);
  ASSERT_TRUE(df.Step().ok());
  // The scope egresses the body's final value: with feedback capped at
  // iteration 7 the body applies once more, i.e. f^8(input) (PageRank
  // accounts for this by passing iterations-1 as the cap).
  EXPECT_EQ(ToMap(cap->AccumulatedAt(0)),
            (std::map<IntPair, Diff>{{{1, 8}, 1}}));
}

TEST(RobustnessTest, UpdateMagnitudeCountsAbsolute) {
  Batch<int> b = {{1, 3}, {2, -2}, {3, 1}};
  EXPECT_EQ(UpdateMagnitude(b), 6u);
}

TEST(RobustnessTest, CaptureVersionsAccessors) {
  Dataflow df;
  Input<int64_t> in(&df);
  auto* cap = Capture(in.stream().Map([](const int64_t& x) { return x; }));
  in.Send(1, 1);
  ASSERT_TRUE(df.Step().ok());
  in.Send(2, 1);
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(cap->versions().size(), 2u);
  EXPECT_EQ(ToMap(cap->VersionDiffs(0)), (std::map<int64_t, Diff>{{1, 1}}));
  EXPECT_EQ(ToMap(cap->VersionDiffs(5)), (std::map<int64_t, Diff>{}));
  EXPECT_EQ(ToMap(cap->AccumulatedAt(1)),
            (std::map<int64_t, Diff>{{1, 1}, {2, 1}}));
}

TEST(RobustnessTest, DistinctHandlesOscillation) {
  Dataflow df;
  Input<int64_t> in(&df);
  auto* cap = Capture(Distinct(in.stream()));
  for (uint32_t v = 0; v < 6; ++v) {
    in.Send(42, v % 2 == 0 ? 1 : -1);
    ASSERT_TRUE(df.Step().ok());
    auto m = ToMap(cap->AccumulatedAt(v));
    if (v % 2 == 0) {
      EXPECT_EQ(m, (std::map<int64_t, Diff>{{42, 1}}));
    } else {
      EXPECT_TRUE(m.empty());
    }
  }
}

TEST(RobustnessTest, LongSynchronousChainsDoNotOverflow) {
  // 200 chained maps exercise the synchronous linear delivery path.
  Dataflow df;
  Input<int64_t> in(&df);
  Stream<int64_t> s = in.stream();
  for (int i = 0; i < 200; ++i) {
    s = s.Map([](const int64_t& x) { return x + 1; });
  }
  auto* cap = Capture(s);
  in.Send(0, 1);
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(ToMap(cap->AccumulatedAt(0)),
            (std::map<int64_t, Diff>{{200, 1}}));
}

TEST(RobustnessTest, TwoIndependentLoopsInOneDataflow) {
  Dataflow df;
  Input<IntPair> a(&df), b(&df);
  auto ra = Iterate<IntPair>(a.stream(), [](LoopScope&, Stream<IntPair> v) {
    return ReduceMin(v.Map(
        [](const IntPair& p) { return IntPair{p.first, p.second / 2}; }));
  });
  auto rb = Iterate<IntPair>(b.stream(), [](LoopScope&, Stream<IntPair> v) {
    return ReduceMin(v);
  });
  auto* ca = Capture(ra);
  auto* cb = Capture(rb);
  a.Send({1, 64}, 1);
  b.Send({2, 9}, 1);
  ASSERT_TRUE(df.Step().ok());
  EXPECT_EQ(ToMap(ca->AccumulatedAt(0)),
            (std::map<IntPair, Diff>{{{1, 0}, 1}}));
  EXPECT_EQ(ToMap(cb->AccumulatedAt(0)),
            (std::map<IntPair, Diff>{{{2, 9}, 1}}));
}

}  // namespace
}  // namespace gs::differential
