// The golden invariant of the engine (DESIGN.md §3.2), as a parameterized
// property test: for every algorithm A and every version t of a random
// evolving edge collection, the differential result accumulated through t
// equals A recomputed from scratch on the accumulated edge set.
#include <gtest/gtest.h>

#include <memory>

#include "algorithms/algorithms.h"
#include "algorithms/reference.h"
#include "test_util.h"

namespace gs::analytics {
namespace {

using testutil::ComputationRunner;
using testutil::EdgeAccumulator;
using testutil::RandomEdge;
namespace dd = ::gs::differential;

struct PropertyCase {
  std::string name;
  uint64_t seed;
  uint64_t num_vertices;
  size_t initial_edges;
  size_t versions;
  size_t churn;  // adds + removes per version
};

class GoldenInvariantTest
    : public ::testing::TestWithParam<std::tuple<std::string, PropertyCase>> {
 protected:
  // Factory avoids constructing heavyweight computations eagerly.
  static std::unique_ptr<Computation> MakeComputation(
      const std::string& algorithm) {
    if (algorithm == "wcc") return std::make_unique<Wcc>();
    if (algorithm == "bfs") return std::make_unique<Bfs>(0);
    if (algorithm == "bellman-ford") return std::make_unique<BellmanFord>(0);
    if (algorithm == "pagerank") return std::make_unique<PageRank>(4);
    if (algorithm == "scc") return std::make_unique<Scc>();
    if (algorithm == "mpsp") {
      return std::make_unique<Mpsp>(
          std::vector<std::pair<VertexId, VertexId>>{{0, 5}, {1, 7}, {2, 3}});
    }
    ADD_FAILURE() << "unknown algorithm " << algorithm;
    return nullptr;
  }

  static ResultMap Reference(const std::string& algorithm,
                             const std::vector<WeightedEdge>& edges) {
    if (algorithm == "wcc") return WccReference(edges);
    if (algorithm == "bfs") return BfsReference(edges, 0);
    if (algorithm == "bellman-ford") return SsspReference(edges, 0);
    if (algorithm == "pagerank") return PageRankReference(edges, 4);
    if (algorithm == "scc") return SccReference(edges);
    if (algorithm == "mpsp") {
      return MpspReference(edges, {{0, 5}, {1, 7}, {2, 3}});
    }
    return {};
  }
};

TEST_P(GoldenInvariantTest, DifferentialEqualsScratchAtEveryVersion) {
  const auto& [algorithm, pc] = GetParam();
  auto computation = MakeComputation(algorithm);
  ASSERT_NE(computation, nullptr);

  Rng rng(pc.seed);
  ComputationRunner runner(*computation);
  EdgeAccumulator acc;

  // Version 0: the initial graph (deduplicated).
  std::set<WeightedEdge> present;
  dd::Batch<WeightedEdge> initial;
  while (present.size() < pc.initial_edges) {
    WeightedEdge e = RandomEdge(rng, pc.num_vertices);
    if (present.insert(e).second) initial.push_back({e, 1});
  }
  runner.Advance(initial);
  acc.Apply(initial);
  ASSERT_EQ(runner.ResultAt(0), Reference(algorithm, acc.Edges()))
      << algorithm << " differs from the oracle at version 0";

  for (uint32_t v = 1; v <= pc.versions; ++v) {
    dd::Batch<WeightedEdge> diffs;
    // Random removals.
    std::vector<WeightedEdge> current(present.begin(), present.end());
    size_t removes = std::min<size_t>(pc.churn / 2, current.size() / 2);
    for (uint64_t idx : rng.SampleDistinct(current.size(), removes)) {
      diffs.push_back({current[idx], -1});
      present.erase(current[idx]);
    }
    // Random additions.
    size_t added = 0;
    while (added < pc.churn - removes) {
      WeightedEdge e = RandomEdge(rng, pc.num_vertices);
      if (present.insert(e).second) {
        diffs.push_back({e, 1});
        ++added;
      }
    }
    runner.Advance(diffs);
    acc.Apply(diffs);
    ASSERT_EQ(runner.ResultAt(v), Reference(algorithm, acc.Edges()))
        << algorithm << " differs from the oracle at version " << v
        << " (seed " << pc.seed << ")";
  }
}

const PropertyCase kSmallDense{"small_dense", 101, 12, 30, 8, 8};
const PropertyCase kMediumSparse{"medium_sparse", 202, 60, 90, 6, 20};
const PropertyCase kHeavyChurn{"heavy_churn", 303, 25, 40, 6, 30};

std::string CaseName(
    const ::testing::TestParamInfo<GoldenInvariantTest::ParamType>& info) {
  std::string n = std::get<0>(info.param) + "_" + std::get<1>(info.param).name;
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(
    FastAlgorithms, GoldenInvariantTest,
    ::testing::Combine(::testing::Values("wcc", "bfs", "bellman-ford",
                                         "pagerank", "mpsp"),
                       ::testing::Values(kSmallDense, kMediumSparse,
                                         kHeavyChurn)),
    CaseName);

// SCC is doubly iterative and far heavier; exercise it on smaller cases.
const PropertyCase kSccSmall{"scc_small", 404, 10, 20, 5, 6};
const PropertyCase kSccCyclic{"scc_cyclic", 505, 8, 24, 5, 8};

INSTANTIATE_TEST_SUITE_P(
    Scc, GoldenInvariantTest,
    ::testing::Combine(::testing::Values("scc"),
                       ::testing::Values(kSccSmall, kSccCyclic)),
    CaseName);

}  // namespace
}  // namespace gs::analytics
