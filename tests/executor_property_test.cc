// End-to-end property matrix: every algorithm × every execution strategy
// over a GVDL-defined collection must produce, at every view, exactly the
// sequential oracle's result on that view's edges.
#include <gtest/gtest.h>

#include <memory>

#include "algorithms/algorithms.h"
#include "algorithms/reference.h"
#include "api/graphsurge.h"
#include "graph/generators.h"

namespace gs {
namespace {

using analytics::ResultMap;

class ExecutorMatrixTest
    : public ::testing::TestWithParam<
          std::tuple<std::string, splitting::Strategy>> {
 protected:
  static void SetUpTestSuite() {
    system_ = new Graphsurge();
    TemporalGraphOptions opts;
    opts.num_nodes = 150;
    opts.num_edges = 1200;
    opts.end_time = 1000;
    ASSERT_TRUE(system_->AddGraph("g", GenerateTemporalGraph(opts)).ok());
    // A mixed collection: expanding windows then a disjoint slide —
    // exercises additions, deletions, and a natural splitting point.
    ASSERT_TRUE(system_
                    ->Execute("create view collection mixed on g "
                              "[a: timestamp <= 300], "
                              "[b: timestamp <= 550], "
                              "[c: timestamp <= 800], "
                              "[d: timestamp > 500 and timestamp <= 900], "
                              "[e: timestamp > 600], "
                              "[f: timestamp <= 400]")
                    .ok());
  }
  static void TearDownTestSuite() {
    delete system_;
    system_ = nullptr;
  }

  static std::unique_ptr<analytics::Computation> Make(
      const std::string& algorithm, VertexId source) {
    if (algorithm == "wcc") return std::make_unique<analytics::Wcc>();
    if (algorithm == "bfs") return std::make_unique<analytics::Bfs>(source);
    if (algorithm == "bellman-ford") {
      return std::make_unique<analytics::BellmanFord>(source);
    }
    if (algorithm == "pagerank") {
      return std::make_unique<analytics::PageRank>(3);
    }
    if (algorithm == "scc") return std::make_unique<analytics::Scc>();
    if (algorithm == "mpsp") {
      return std::make_unique<analytics::Mpsp>(
          std::vector<std::pair<VertexId, VertexId>>{{source, 5},
                                                     {source, 9}});
    }
    return nullptr;
  }

  static ResultMap Reference(const std::string& algorithm,
                             const std::vector<WeightedEdge>& edges,
                             VertexId source) {
    if (algorithm == "wcc") return analytics::WccReference(edges);
    if (algorithm == "bfs") return analytics::BfsReference(edges, source);
    if (algorithm == "bellman-ford") {
      return analytics::SsspReference(edges, source);
    }
    if (algorithm == "pagerank") {
      return analytics::PageRankReference(edges, 3);
    }
    if (algorithm == "scc") return analytics::SccReference(edges);
    if (algorithm == "mpsp") {
      return analytics::MpspReference(edges, {{source, 5}, {source, 9}});
    }
    return {};
  }

  static Graphsurge* system_;
};

Graphsurge* ExecutorMatrixTest::system_ = nullptr;

TEST_P(ExecutorMatrixTest, EveryViewMatchesOracle) {
  const auto& [algorithm, strategy] = GetParam();
  const PropertyGraph& g = **system_->GetGraph("g");
  const views::MaterializedCollection& mc = **system_->GetCollection("mixed");
  int weight_col = g.FindWeightColumn("weight");
  VertexId source = g.edge(0).src;

  auto computation = Make(algorithm, source);
  ASSERT_NE(computation, nullptr);
  views::ExecutionOptions options;
  options.strategy = strategy;
  options.chunk_size = 2;
  options.weight_column = weight_col;
  options.capture_results = true;
  auto run = system_->RunComputation(*computation, "mixed", options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run->results.size(), mc.num_views());

  for (size_t t = 0; t < mc.num_views(); ++t) {
    std::vector<WeightedEdge> edges;
    for (EdgeId e : mc.diffs.Reconstruct(t)) {
      edges.push_back(g.ResolveWeighted(e, weight_col));
    }
    ASSERT_EQ(run->results[t], Reference(algorithm, edges, source))
        << algorithm << "/" << splitting::StrategyName(strategy)
        << " diverges from the oracle at view " << t;
  }
}

std::string MatrixName(
    const ::testing::TestParamInfo<ExecutorMatrixTest::ParamType>& info) {
  std::string n = std::get<0>(info.param);
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n + "_" + splitting::StrategyName(std::get<1>(info.param))[0] +
         std::to_string(static_cast<int>(std::get<1>(info.param)));
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllStrategies, ExecutorMatrixTest,
    ::testing::Combine(
        ::testing::Values("wcc", "bfs", "bellman-ford", "pagerank", "scc",
                          "mpsp"),
        ::testing::Values(splitting::Strategy::kDiffOnly,
                          splitting::Strategy::kScratch,
                          splitting::Strategy::kAdaptive)),
    MatrixName);

}  // namespace
}  // namespace gs
