// Arrangement-cache lifecycle: builder/reader transactions, slot typing,
// abort and empty-commit retraction, concurrent-builder waiting, LRU
// eviction under a byte budget, scope invalidation, and the end-to-end
// behavior through the api::Graphsurge facade (epoch invalidation after
// ApplyMutations, teardown-zero gauges).
#include "differential/arrcache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/algorithms.h"
#include "api/graphsurge.h"
#include "common/metrics.h"
#include "graph/generators.h"
#include "graph/mutation.h"

namespace gs::differential {
namespace {

using Role = ArrCacheTxn::Role;

std::shared_ptr<const std::vector<int>> Rows(std::vector<int> v) {
  return std::make_shared<const std::vector<int>>(std::move(v));
}

// Most tests use a private cache instance so per-key stats start from zero
// and nothing leaks into the process-wide cache the facade tests inspect.
TEST(ArrCacheTest, BuilderMissThenReaderHit) {
  ArrangementCache cache;
  {
    auto txn = cache.Begin("s/g@0", "wcc/w1");
    ASSERT_EQ(txn->role(), Role::kBuilder);
    EXPECT_TRUE(txn->building());
    // A builder never reads slots, even its own staged ones.
    EXPECT_EQ(txn->GetRows<int>(0, 0), nullptr);
    txn->PutRows<int>(0, 0, Rows({1, 2, 3}));
    txn->PutRows<int>(4, 0, Rows({7}));
    txn->Commit();
  }
  auto stats = cache.Stats("s/g@0", "wcc/w1");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->misses, 1u);
  EXPECT_EQ(stats->hits, 0u);
  EXPECT_TRUE(stats->complete);
  EXPECT_TRUE(stats->resident);
  EXPECT_EQ(stats->bytes, 4 * sizeof(int));
  EXPECT_EQ(stats->pins, 0);

  {
    auto txn = cache.Begin("s/g@0", "wcc/w1");
    ASSERT_EQ(txn->role(), Role::kReader);
    EXPECT_TRUE(txn->importing());
    auto rows = txn->GetRows<int>(0, 0);
    ASSERT_NE(rows, nullptr);
    EXPECT_EQ(*rows, (std::vector<int>{1, 2, 3}));
    // Type mismatch and absent slots both read as "build it yourself".
    EXPECT_EQ(txn->GetRows<double>(0, 0), nullptr);
    EXPECT_EQ(txn->GetRows<int>(1, 0), nullptr);
    // While the reader is live the entry is pinned.
    EXPECT_EQ(cache.Stats("s/g@0", "wcc/w1")->pins, 1);
  }
  stats = cache.Stats("s/g@0", "wcc/w1");
  EXPECT_EQ(stats->hits, 1u);
  EXPECT_EQ(stats->misses, 1u);
  EXPECT_EQ(stats->pins, 0);

  // Distinct tags on the same scope are distinct entries.
  auto other = cache.Begin("s/g@0", "scc/w1");
  EXPECT_EQ(other->role(), Role::kBuilder);
}

TEST(ArrCacheTest, EmptyScopeBypasses) {
  ArrangementCache cache;
  auto txn = cache.Begin("", "wcc/w1");
  EXPECT_EQ(txn->role(), Role::kBypass);
  txn->PutRows<int>(0, 0, Rows({1}));  // ignored
  txn->Commit();
  EXPECT_EQ(cache.num_entries(), 0u);
  EXPECT_FALSE(cache.Stats("", "wcc/w1").has_value());
}

TEST(ArrCacheTest, AbortedBuilderRetractsEntry) {
  ArrangementCache cache;
  {
    auto txn = cache.Begin("s/g@0", "t");
    ASSERT_EQ(txn->role(), Role::kBuilder);
    txn->PutRows<int>(0, 0, Rows({1}));
    // Destroyed without Commit: the run failed.
  }
  EXPECT_EQ(cache.num_entries(), 0u);
  // The next run gets to build; it is a second miss, not a hit on a ghost.
  auto txn = cache.Begin("s/g@0", "t");
  EXPECT_EQ(txn->role(), Role::kBuilder);
  EXPECT_EQ(cache.Stats("s/g@0", "t")->misses, 2u);
}

TEST(ArrCacheTest, EmptyCommitRetractsEntry) {
  ArrangementCache cache;
  {
    auto txn = cache.Begin("s/g@0", "t");
    ASSERT_EQ(txn->role(), Role::kBuilder);
    txn->Commit();  // nothing qualified for caching in this run
  }
  EXPECT_EQ(cache.num_entries(), 0u);
  EXPECT_EQ(cache.Begin("s/g@0", "t")->role(), Role::kBuilder);
}

TEST(ArrCacheTest, ConcurrentReaderWaitsForBuilder) {
  ArrangementCache cache;
  auto builder = cache.Begin("s/g@0", "t");
  ASSERT_EQ(builder->role(), Role::kBuilder);

  std::atomic<bool> reader_done{false};
  std::thread reader([&] {
    auto txn = cache.Begin("s/g@0", "t");  // blocks until Commit below
    EXPECT_EQ(txn->role(), Role::kReader);
    auto rows = txn->GetRows<int>(2, 0);
    ASSERT_NE(rows, nullptr);
    EXPECT_EQ(*rows, (std::vector<int>{42}));
    reader_done = true;
  });

  // Give the reader a moment to block on the in-flight builder.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(reader_done.load());
  builder->PutRows<int>(2, 0, Rows({42}));
  builder->Commit();
  reader.join();
  EXPECT_TRUE(reader_done.load());
  EXPECT_EQ(cache.Stats("s/g@0", "t")->hits, 1u);
}

TEST(ArrCacheTest, WaiterPromotesToBuilderAfterAbort) {
  ArrangementCache cache;
  auto builder = cache.Begin("s/g@0", "t");
  ASSERT_EQ(builder->role(), Role::kBuilder);

  std::atomic<int> promoted{0};
  std::thread waiter([&] {
    auto txn = cache.Begin("s/g@0", "t");
    if (txn->role() == Role::kBuilder) promoted = 1;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  builder.reset();  // abort: waiter retries Begin and becomes the builder
  waiter.join();
  EXPECT_EQ(promoted.load(), 1);
}

TEST(ArrCacheTest, WaitTimeoutBypasses) {
  ArrangementCache cache;
  cache.set_wait_ms(50);
  auto builder = cache.Begin("s/g@0", "t");
  ASSERT_EQ(builder->role(), Role::kBuilder);
  auto waiter = cache.Begin("s/g@0", "t");  // times out after ~50ms
  EXPECT_EQ(waiter->role(), Role::kBypass);
  EXPECT_EQ(waiter->GetRows<int>(0, 0), nullptr);
}

TEST(ArrCacheTest, LruEvictionUnderByteBudget) {
  ArrangementCache cache;
  auto build = [&](const std::string& scope, int n) {
    auto txn = cache.Begin(scope, "t");
    ASSERT_EQ(txn->role(), Role::kBuilder);
    txn->PutRows<int>(0, 0, Rows(std::vector<int>(n, 7)));
    txn->Commit();
  };
  build("a@0", 100);  // 400 bytes
  build("b@0", 100);
  build("c@0", 100);
  EXPECT_EQ(cache.total_bytes(), 1200u);

  // Touch "a" so "b" becomes least recently used.
  cache.Begin("a@0", "t");

  cache.set_byte_budget(900);
  EXPECT_EQ(cache.num_entries(), 2u);
  EXPECT_FALSE(cache.Stats("b@0", "t")->resident);
  EXPECT_TRUE(cache.Stats("a@0", "t")->resident);
  EXPECT_TRUE(cache.Stats("c@0", "t")->resident);
  // Stats survive eviction — the next build of "b" is its second miss.
  EXPECT_EQ(cache.Begin("b@0", "t")->role(), Role::kBuilder);
  EXPECT_EQ(cache.Stats("b@0", "t")->misses, 2u);
}

TEST(ArrCacheTest, PinnedEntriesSurviveEviction) {
  ArrangementCache cache;
  {
    auto txn = cache.Begin("a@0", "t");
    txn->PutRows<int>(0, 0, Rows({1, 2, 3, 4}));
    txn->Commit();
  }
  auto reader = cache.Begin("a@0", "t");
  ASSERT_EQ(reader->role(), Role::kReader);
  auto rows = reader->GetRows<int>(0, 0);
  ASSERT_NE(rows, nullptr);

  cache.set_byte_budget(0);  // pinned entry must not be evicted
  EXPECT_EQ(cache.num_entries(), 1u);

  reader.reset();  // unpin; the snapshot we already took stays valid
  cache.set_byte_budget(0);
  EXPECT_EQ(cache.num_entries(), 0u);
  EXPECT_EQ(*rows, (std::vector<int>{1, 2, 3, 4}));
}

TEST(ArrCacheTest, InvalidateScopeExactAndPrefix) {
  ArrangementCache cache;
  auto build = [&](const std::string& scope) {
    auto txn = cache.Begin(scope, "t");
    ASSERT_EQ(txn->role(), Role::kBuilder);
    txn->PutRows<int>(0, 0, Rows({9}));
    txn->Commit();
  };
  build("gs1/g@0");
  build("gs1/h@0");
  build("gs2/g@0");

  // A running reader's snapshot survives invalidation via shared_ptr.
  auto reader = cache.Begin("gs1/g@0", "t");
  auto rows = reader->GetRows<int>(0, 0);
  ASSERT_NE(rows, nullptr);

  cache.InvalidateScope("gs1/g@0");  // the mutation path: exact epoch scope
  EXPECT_EQ(cache.num_entries(), 2u);
  EXPECT_FALSE(cache.Stats("gs1/g@0", "t")->resident);
  EXPECT_EQ(*rows, (std::vector<int>{9}));

  cache.InvalidateScopePrefix("gs1/");  // the teardown path: whole instance
  EXPECT_EQ(cache.num_entries(), 1u);
  EXPECT_TRUE(cache.Stats("gs2/g@0", "t")->resident);

  cache.Clear();
  EXPECT_EQ(cache.num_entries(), 0u);
  EXPECT_FALSE(cache.Stats("gs2/g@0", "t").has_value());
}

// --- End-to-end through the facade ----------------------------------------
// These use the process-wide cache (the one RunOnGraph actually talks to),
// observed through per-key Stats so concurrent global counters from other
// tests in this binary cannot skew the assertions.

std::string DefaultTag(const analytics::Computation& c) {
  // Mirrors views::RunOnGraph's tag for default ExecutionOptions:
  // one worker, no weight column, arrangements enabled.
  return c.cache_tag() + "/w1/c-1/a1";
}

TEST(ArrCacheFacadeTest, RepeatedRunOnViewHitsCache) {
  ArrangementCache::Global().Clear();
  Graphsurge system;
  ASSERT_TRUE(
      system.AddGraph("G", GenerateUniformGraph(200, 800, 11)).ok());
  analytics::Wcc wcc;

  auto first = system.RunOnView(wcc, "G");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const std::string scope = system.ArrangementCacheScope("G");
  ASSERT_FALSE(scope.empty());
  auto stats = ArrangementCache::Global().Stats(scope, DefaultTag(wcc));
  ASSERT_TRUE(stats.has_value()) << "no cache entry for " << scope;
  EXPECT_EQ(stats->misses, 1u);
  EXPECT_EQ(stats->hits, 0u);
  EXPECT_TRUE(stats->complete);

  auto second = system.RunOnView(wcc, "G");
  ASSERT_TRUE(second.ok());
  stats = ArrangementCache::Global().Stats(scope, DefaultTag(wcc));
  EXPECT_EQ(stats->misses, 1u);
  EXPECT_EQ(stats->hits, 1u);
  EXPECT_EQ(*first, *second);
}

TEST(ArrCacheFacadeTest, ApplyMutationsInvalidatesEpochScope) {
  ArrangementCache::Global().Clear();
  Graphsurge system;
  ASSERT_TRUE(
      system.AddGraph("G", GenerateUniformGraph(100, 300, 5)).ok());
  analytics::Wcc wcc;

  auto before = system.RunOnView(wcc, "G");
  ASSERT_TRUE(before.ok());
  const std::string scope0 = system.ArrangementCacheScope("G");

  MutationBatch batch;
  batch.push_back(Mutation::AddEdge(0, 1, {PropertyValue(int64_t{1})}));
  ASSERT_TRUE(system.ApplyMutations("G", batch).ok());

  const std::string scope1 = system.ArrangementCacheScope("G");
  EXPECT_NE(scope0, scope1) << "epoch must be part of the scope";
  // The stale epoch's entry is gone; its statistics remain for inspection.
  auto stale = ArrangementCache::Global().Stats(scope0, DefaultTag(wcc));
  ASSERT_TRUE(stale.has_value());
  EXPECT_FALSE(stale->resident);

  // The run at the new epoch builds fresh (miss), and repeats hit it.
  auto after = system.RunOnView(wcc, "G");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), before->size());
  auto again = system.RunOnView(wcc, "G");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*after, *again);
  auto fresh = ArrangementCache::Global().Stats(scope1, DefaultTag(wcc));
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->misses, 1u);
  EXPECT_EQ(fresh->hits, 1u);
}

TEST(ArrCacheFacadeTest, TeardownDropsEntriesAndZeroesGauges) {
  ArrangementCache::Global().Clear();
  {
    Graphsurge system;
    ASSERT_TRUE(
        system.AddGraph("G", GenerateUniformGraph(100, 300, 3)).ok());
    analytics::Wcc wcc;
    ASSERT_TRUE(system.RunOnView(wcc, "G").ok());
    EXPECT_GE(ArrangementCache::Global().num_entries(), 1u);
    EXPECT_GT(ArrangementCache::Global().total_bytes(), 0u);
  }
  // Destructor invalidates the instance's scope prefix.
  EXPECT_EQ(ArrangementCache::Global().num_entries(), 0u);
  EXPECT_EQ(ArrangementCache::Global().total_bytes(), 0u);
  EXPECT_EQ(
      metrics::Registry::Global().GetGauge("gs_arrcache_bytes")->Value(), 0);
  EXPECT_EQ(
      metrics::Registry::Global().GetGauge("gs_arrcache_entries")->Value(),
      0);
}

}  // namespace
}  // namespace gs::differential
