// Multi-worker sharded execution: results are byte-identical to the serial
// engine for keyed operators, iterative scopes, and full analytics runs on
// view collections; exchange queues and per-worker stats behave under
// concurrency (this file is the TSan gate for the sharded engine).
#include "differential/differential.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "algorithms/algorithms.h"
#include "common/random.h"
#include "graph/generators.h"
#include "gvdl/parser.h"
#include "views/executor.h"

namespace gs::differential {
namespace {

using IntPair = std::pair<int64_t, int64_t>;

template <typename D>
std::map<D, Diff> ToMap(const Batch<D>& batch) {
  std::map<D, Diff> m;
  for (const auto& u : batch) m[u.data] += u.diff;
  for (auto it = m.begin(); it != m.end();) {
    it = it->second == 0 ? m.erase(it) : std::next(it);
  }
  return m;
}

DataflowOptions Workers(size_t n) {
  DataflowOptions options;
  options.num_workers = n;
  return options;
}

// A ShardedDataflow running one keyed pipeline on every shard, with inputs
// hash-partitioned and captures merged — the pattern the views executor
// uses, reduced to its engine-level core. `Build` maps the (per-shard)
// input stream to the captured stream.
template <typename In, typename Out>
class ShardedHarness {
 public:
  using Builder =
      std::function<Stream<Out>(Dataflow*, Stream<In>)>;

  ShardedHarness(size_t num_workers, const Builder& build)
      : dataflow_(Workers(num_workers)) {
    for (size_t w = 0; w < dataflow_.num_workers(); ++w) {
      inputs_.emplace_back(dataflow_.worker(w));
      captures_.push_back(
          Capture(build(dataflow_.worker(w), inputs_[w].stream())));
    }
  }

  void Send(In data, Diff diff) {
    inputs_[dataflow_.OwnerOfHash(HashValue(data))].Send(std::move(data),
                                                         diff);
  }

  Status Step() { return dataflow_.Step(); }

  std::map<Out, Diff> Accumulated(uint32_t version) const {
    Batch<Out> all;
    for (const auto* cap : captures_) {
      Batch<Out> b = cap->AccumulatedAt(version);
      all.insert(all.end(), b.begin(), b.end());
    }
    return ToMap(all);
  }

  std::map<Out, Diff> VersionDiffs(uint32_t version) const {
    Batch<Out> all;
    for (const auto* cap : captures_) {
      Batch<Out> b = cap->VersionDiffs(version);
      all.insert(all.end(), b.begin(), b.end());
    }
    return ToMap(all);
  }

  ShardedDataflow& dataflow() { return dataflow_; }

 private:
  ShardedDataflow dataflow_;
  std::vector<Input<In>> inputs_;
  std::vector<CaptureOp<Out>*> captures_;
};

TEST(ShardedTest, ReduceMatchesSerialAcrossVersions) {
  auto build = [](Dataflow*, Stream<IntPair> in) {
    return ReduceMin<int64_t, int64_t>(in);
  };
  ShardedHarness<IntPair, IntPair> serial(1, build);
  ShardedHarness<IntPair, IntPair> sharded(4, build);

  Rng rng(7);
  std::vector<IntPair> live;
  for (uint32_t version = 0; version < 6; ++version) {
    Batch<IntPair> diffs;
    for (int i = 0; i < 300; ++i) {
      IntPair p{rng.Uniform(0, 80), rng.Uniform(0, 1000)};
      diffs.push_back({p, 1});
      live.push_back(p);
    }
    // Retract a random prefix of earlier insertions.
    size_t retract = version == 0 ? 0 : live.size() / 4;
    for (size_t i = 0; i < retract; ++i) {
      diffs.push_back({live[i], -1});
    }
    live.erase(live.begin(), live.begin() + retract);

    for (const auto& u : diffs) {
      serial.Send(u.data, u.diff);
      sharded.Send(u.data, u.diff);
    }
    ASSERT_TRUE(serial.Step().ok());
    ASSERT_TRUE(sharded.Step().ok());
    EXPECT_EQ(serial.VersionDiffs(version), sharded.VersionDiffs(version))
        << "version " << version;
    EXPECT_EQ(serial.Accumulated(version), sharded.Accumulated(version))
        << "version " << version;
  }
}

TEST(ShardedTest, JoinMatchesSerialAcrossVersions) {
  // Self-join through a map: (k, v) joined with (k+1 keyed copies).
  auto build = [](Dataflow*, Stream<IntPair> in) {
    auto shifted = in.Map([](const IntPair& p) {
      return IntPair{p.first + 1, p.second * 3};
    });
    return Join(in, shifted,
                [](const int64_t& k, const int64_t& a, const int64_t& b) {
                  return IntPair{k, a + b};
                });
  };
  ShardedHarness<IntPair, IntPair> serial(1, build);
  ShardedHarness<IntPair, IntPair> sharded(3, build);

  Rng rng(11);
  for (uint32_t version = 0; version < 5; ++version) {
    for (int i = 0; i < 200; ++i) {
      IntPair p{rng.Uniform(0, 50), rng.Uniform(0, 20)};
      Diff d = rng.Bernoulli(0.25) && version > 0 ? -1 : 1;
      serial.Send(p, d);
      sharded.Send(p, d);
    }
    ASSERT_TRUE(serial.Step().ok());
    ASSERT_TRUE(sharded.Step().ok());
    EXPECT_EQ(serial.VersionDiffs(version), sharded.VersionDiffs(version))
        << "version " << version;
  }
}

TEST(ShardedTest, IterateMatchesSerial) {
  // Transitive reachability from vertex 0 over an edge input: the classic
  // label-propagation loop with a cross-shard exchange inside the scope.
  auto build = [](Dataflow*, Stream<IntPair> edges) {
    auto roots = Distinct(
        edges.Filter([](const IntPair& e) { return e.first == 0; })
            .Map([](const IntPair&) { return IntPair{0, 0}; }));
    return Iterate<IntPair>(
        roots, [&](LoopScope& scope, Stream<IntPair> inner) {
          auto edges_in = scope.Enter(edges);
          auto roots_in = scope.Enter(roots);
          auto moved =
              Join(inner, edges_in,
                   [](const int64_t&, const int64_t& dist,
                      const int64_t& dst) { return IntPair{dst, dist + 1}; });
          return ReduceMin<int64_t, int64_t>(moved.Concat(roots_in));
        });
  };
  ShardedHarness<IntPair, IntPair> serial(1, build);
  ShardedHarness<IntPair, IntPair> sharded(4, build);

  Rng rng(3);
  for (uint32_t version = 0; version < 4; ++version) {
    for (int i = 0; i < 150; ++i) {
      IntPair e{rng.Uniform(0, 60), rng.Uniform(0, 60)};
      serial.Send(e, 1);
      sharded.Send(e, 1);
    }
    ASSERT_TRUE(serial.Step().ok());
    ASSERT_TRUE(sharded.Step().ok());
    EXPECT_EQ(serial.Accumulated(version), sharded.Accumulated(version))
        << "version " << version;
  }
}

TEST(ShardedTest, ExchangeStress) {
  // Hammers the exchange queues: every input record crosses the reduce
  // boundary, most to a different shard, over many small versions. Run
  // under TSan in CI, this exercises concurrent inbox pushes, drains, and
  // per-worker stats updates.
  auto build = [](Dataflow*, Stream<IntPair> in) {
    auto sums = Reduce<int64_t>(
        in, [](const int64_t&, const Batch<int64_t>& vals,
               Batch<int64_t>* out) {
          int64_t total = 0;
          for (const auto& u : vals) total += u.data * u.diff;
          out->push_back(Update<int64_t>{total, 1});
        });
    // A second repartitioning hop: re-key by value bucket and count.
    auto rekeyed = sums.Map([](const IntPair& p) {
      return IntPair{p.second % 17, p.first};
    });
    return Count(rekeyed);
  };
  ShardedHarness<IntPair, IntPair> serial(1, build);
  ShardedHarness<IntPair, IntPair> sharded(4, build);

  Rng rng(23);
  for (uint32_t version = 0; version < 12; ++version) {
    for (int i = 0; i < 400; ++i) {
      IntPair p{rng.Uniform(0, 500), rng.Uniform(1, 9)};
      Diff d = rng.Bernoulli(0.3) && version > 0 ? -1 : 1;
      serial.Send(p, d);
      sharded.Send(p, d);
    }
    ASSERT_TRUE(serial.Step().ok());
    ASSERT_TRUE(sharded.Step().ok());
    ASSERT_EQ(serial.Accumulated(version), sharded.Accumulated(version))
        << "version " << version;
  }
  // Cross-shard traffic actually happened, and the byte counter moved with
  // it (it counts sizeof(Update<D>) per routed record).
  DataflowStats stats = sharded.dataflow().AggregatedStats();
  EXPECT_GT(stats.exchanged_updates, 0u);
  EXPECT_GT(stats.exchanged_bytes, 0u);
  EXPECT_EQ(stats.exchanged_bytes % sizeof(Update<IntPair>), 0u);
}

TEST(ShardedTest, NormalizeOpNameStripsShardSuffixAndLowercases) {
  EXPECT_EQ(DataflowStats::NormalizeOpName("Join@3"), "join");
  EXPECT_EQ(DataflowStats::NormalizeOpName("join@0"), "join");
  EXPECT_EQ(DataflowStats::NormalizeOpName("ReduceMin@12"), "reducemin");
  EXPECT_EQ(DataflowStats::NormalizeOpName("Map"), "map");
  // Non-numeric suffixes are part of the name, not a shard tag.
  EXPECT_EQ(DataflowStats::NormalizeOpName("join@left"), "join@left");
  EXPECT_EQ(DataflowStats::NormalizeOpName("join@"), "join@");
}

TEST(ShardedTest, OpNanosKeysCarryShardSuffixes) {
  auto build = [](Dataflow*, Stream<IntPair> in) {
    auto shifted = in.Map([](const IntPair& p) {
      return IntPair{p.first + 1, p.second};
    });
    auto joined =
        Join(in, shifted,
             [](const int64_t& k, const int64_t& a, const int64_t& b) {
               return IntPair{k, a + b};
             });
    return ReduceMin<int64_t, int64_t>(joined);
  };
  for (size_t workers : {2, 4, 7}) {
    ShardedHarness<IntPair, IntPair> sharded(workers, build);
    Rng rng(41);
    for (int i = 0; i < 500; ++i) {
      sharded.Send({rng.Uniform(0, 100), rng.Uniform(0, 1000)}, 1);
    }
    ASSERT_TRUE(sharded.Step().ok());

    DataflowStats stats = sharded.dataflow().AggregatedStats();
    ASSERT_FALSE(stats.op_nanos.empty()) << "workers=" << workers;
    uint64_t raw_total = 0;
    for (const auto& [name, nanos] : stats.op_nanos) {
      raw_total += nanos;
      // Every sharded key names its worker: `name@shard`, shard < workers.
      size_t at = name.rfind('@');
      ASSERT_NE(at, std::string::npos) << "workers=" << workers << " " << name;
      ASSERT_LT(at + 1, name.size()) << name;
      int shard = std::stoi(name.substr(at + 1));
      EXPECT_GE(shard, 0) << name;
      EXPECT_LT(shard, static_cast<int>(workers)) << name;
    }

    // The rollup strips the suffixes without losing any time.
    std::map<std::string, uint64_t> rolled = stats.AggregatedOpNanos();
    uint64_t rolled_total = 0;
    for (const auto& [name, nanos] : rolled) {
      rolled_total += nanos;
      EXPECT_EQ(name.find('@'), std::string::npos) << name;
    }
    EXPECT_EQ(rolled_total, raw_total) << "workers=" << workers;
  }
}

TEST(ShardedTest, StatsAreMergedPerWorker) {
  auto build = [](Dataflow*, Stream<IntPair> in) {
    return ReduceMin<int64_t, int64_t>(in);
  };
  ShardedHarness<IntPair, IntPair> sharded(4, build);
  for (int64_t k = 0; k < 200; ++k) sharded.Send({k, k}, 1);
  ASSERT_TRUE(sharded.Step().ok());

  DataflowStats stats = sharded.dataflow().AggregatedStats();
  EXPECT_GT(stats.updates_published, 0u);
  EXPECT_GT(stats.reduce_evaluations, 0u);
  ASSERT_EQ(stats.shard_work.size(), 4u);
  // Sharded keyed operators only touch owned keys, so the merged breakdown
  // covers all four shards.
  for (uint64_t w : stats.shard_work) EXPECT_GT(w, 0u);
  std::vector<uint64_t> events = sharded.dataflow().PerWorkerEvents();
  ASSERT_EQ(events.size(), 4u);
  for (uint64_t e : events) EXPECT_GT(e, 0u);
}

TEST(ShardedTest, EventCapErrorPropagatesFromWorkers) {
  // A 200-vertex chain forces ~200 loop iterations; the tiny per-worker
  // event cap trips inside a worker thread and the error must surface from
  // ShardedDataflow::Step.
  auto build = [](Dataflow*, Stream<IntPair> edges) {
    auto roots = Distinct(
        edges.Filter([](const IntPair& e) { return e.first == 0; })
            .Map([](const IntPair&) { return IntPair{0, 0}; }));
    return Iterate<IntPair>(
        roots, [&](LoopScope& scope, Stream<IntPair> inner) {
          auto edges_in = scope.Enter(edges);
          auto roots_in = scope.Enter(roots);
          auto moved =
              Join(inner, edges_in,
                   [](const int64_t&, const int64_t& dist,
                      const int64_t& dst) { return IntPair{dst, dist + 1}; });
          return ReduceMin<int64_t, int64_t>(moved.Concat(roots_in));
        });
  };
  DataflowOptions options = Workers(3);
  options.max_events_per_version = 40;  // far below the chain's needs
  ShardedDataflow df(options);
  std::vector<std::unique_ptr<Input<IntPair>>> inputs;
  for (size_t w = 0; w < df.num_workers(); ++w) {
    inputs.push_back(std::make_unique<Input<IntPair>>(df.worker(w)));
    Capture(build(df.worker(w), inputs[w]->stream()));
  }
  for (int64_t k = 0; k < 200; ++k) {
    IntPair e{k, k + 1};
    inputs[df.OwnerOfHash(HashValue(e))]->Send(e, 1);
  }
  EXPECT_FALSE(df.Step().ok());
}

// ---------------------------------------------------------------------------
// Full-system determinism: analytics on a view collection, multi-worker
// output must match single-worker output exactly.

struct CollectionFixture {
  PropertyGraph graph;
  views::MaterializedCollection collection;

  static CollectionFixture Windows(size_t num_views) {
    CollectionFixture f;
    TemporalGraphOptions opts;
    opts.num_nodes = 90;
    opts.num_edges = 900;
    opts.end_time = 1000;
    f.graph = GenerateTemporalGraph(opts);
    std::string text = "create view collection w on G ";
    for (size_t i = 0; i < num_views; ++i) {
      if (i) text += ", ";
      text += "[w" + std::to_string(i) + ": timestamp <= " +
              std::to_string(1000 * (i + 1) / num_views) + "]";
    }
    auto stmt = gvdl::Parse(text);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    views::MaterializeOptions mopts;
    auto mc = views::MaterializeCollection(
        f.graph, std::get<gvdl::ViewCollectionDef>(*stmt), mopts);
    EXPECT_TRUE(mc.ok()) << mc.status().ToString();
    f.collection = std::move(*mc);
    return f;
  }
};

void ExpectShardedRunsMatchSerial(const analytics::Computation& computation,
                                  const CollectionFixture& f,
                                  int weight_column = -1) {
  views::ExecutionOptions opts;
  opts.capture_results = true;
  opts.weight_column = weight_column;
  opts.dataflow.num_workers = 1;
  auto serial =
      views::RunOnCollection(computation, f.graph, f.collection, opts);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  for (size_t workers : {2, 4, 7}) {
    opts.dataflow.num_workers = workers;
    auto sharded =
        views::RunOnCollection(computation, f.graph, f.collection, opts);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    ASSERT_EQ(sharded->results.size(), serial->results.size());
    for (size_t t = 0; t < serial->results.size(); ++t) {
      EXPECT_EQ(sharded->results[t], serial->results[t])
          << computation.name() << " with " << workers
          << " workers diverges on view " << t;
    }
    // The per-view difference sets match too (same diffs, not just the
    // same accumulated state).
    for (size_t t = 0; t < serial->per_view.size(); ++t) {
      EXPECT_EQ(sharded->per_view[t].output_diffs,
                serial->per_view[t].output_diffs)
          << computation.name() << " workers=" << workers << " view " << t;
    }
  }
}

TEST(ShardedDeterminismTest, Wcc) {
  CollectionFixture f = CollectionFixture::Windows(5);
  ExpectShardedRunsMatchSerial(analytics::Wcc(), f);
}

TEST(ShardedDeterminismTest, PageRank) {
  CollectionFixture f = CollectionFixture::Windows(5);
  ExpectShardedRunsMatchSerial(analytics::PageRank(6), f);
}

TEST(ShardedDeterminismTest, BellmanFord) {
  CollectionFixture f = CollectionFixture::Windows(5);
  int weight_col = f.graph.FindWeightColumn("weight");
  ASSERT_GE(weight_col, 0);
  VertexId source = f.graph.edge(0).src;
  ExpectShardedRunsMatchSerial(analytics::BellmanFord(source), f, weight_col);
}

TEST(ShardedDeterminismTest, Bfs) {
  CollectionFixture f = CollectionFixture::Windows(4);
  ExpectShardedRunsMatchSerial(analytics::Bfs(f.graph.edge(0).src), f);
}

}  // namespace
}  // namespace gs::differential
