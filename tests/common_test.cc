#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace gs {
namespace {

TEST(HashTest, Mix64Decorrelates) {
  // Sequential inputs must not produce sequential outputs.
  std::set<uint64_t> low_bits;
  for (uint64_t i = 0; i < 1000; ++i) low_bits.insert(Mix64(i) & 0xFF);
  EXPECT_GT(low_bits.size(), 200u);  // all 256 buckets nearly covered
}

TEST(HashTest, PairAndTupleHashing) {
  auto h1 = HashValue(std::make_pair(uint64_t{1}, uint64_t{2}));
  auto h2 = HashValue(std::make_pair(uint64_t{2}, uint64_t{1}));
  EXPECT_NE(h1, h2);  // order matters
  auto t1 = HashValue(std::make_tuple(1, std::string("a"), true));
  auto t2 = HashValue(std::make_tuple(1, std::string("a"), false));
  EXPECT_NE(t1, t2);
}

TEST(RandomTest, DeterministicGivenSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000000), b.Uniform(0, 1000000));
  }
}

TEST(RandomTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, PowerLawSkewsLow) {
  Rng rng(2);
  int lows = 0;
  const int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.PowerLaw(1000, 1.5) < 10) ++lows;
  }
  // With alpha 1.5, a large fraction of mass is on the first few values.
  EXPECT_GT(lows, kTrials / 4);
}

TEST(RandomTest, SampleDistinctIsDistinct) {
  Rng rng(3);
  auto sample = rng.SampleDistinct(100, 50);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 50u);
  for (uint64_t v : sample) EXPECT_LT(v, 100u);
}

TEST(ThreadPoolTest, InlineModeRunsTasks) {
  ThreadPool pool(1);
  int counter = 0;
  pool.Submit([&] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter, 1);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForShardsPartition) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> ranges;
  pool.ParallelForShards(100, [&](size_t shard, size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    ranges.emplace_back(begin, end);
  });
  size_t total = 0;
  for (auto [b, e] : ranges) total += e - b;
  EXPECT_EQ(total, 100u);
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.Seconds(), 0.0);
  EXPECT_LT(t.Seconds(), 10.0);
}

// GS_CHECK used as the sole statement of an if branch must not capture a
// following else (the classic dangling-else macro hazard). With a bare
// `if (!(cond)) log` expansion the else below would bind to the macro's
// internal if and run when the check PASSES; the switch-wrapped expansion
// makes it bind to the outer if, so it runs only when `outer` is false.
TEST(CheckMacroTest, ElseBindsToEnclosingIf) {
  bool else_taken = false;
  const bool outer = false;
  if (outer)
    GS_CHECK(true) << "never evaluated";
  else
    else_taken = true;
  EXPECT_TRUE(else_taken);

  // And when the outer branch is taken, a passing check runs without
  // touching the else.
  else_taken = false;
  const bool outer2 = true;
  if (outer2)
    GS_CHECK(1 + 1 == 2) << "passes";
  else
    else_taken = true;
  EXPECT_FALSE(else_taken);
}

// Captured log lines for the sink tests below. The sink is process-global,
// so these tests serialize through a static buffer guarded by a mutex.
std::mutex g_sink_mutex;
std::vector<std::string>* g_sink_lines = nullptr;

void TestSink(const char* data, size_t size) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink_lines != nullptr) g_sink_lines->emplace_back(data, size);
}

class LogSinkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    {
      std::lock_guard<std::mutex> lock(g_sink_mutex);
      g_sink_lines = &lines_;
    }
    internal::SetLogSinkForTest(&TestSink);
  }
  void TearDown() override {
    internal::SetLogSinkForTest(nullptr);
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    g_sink_lines = nullptr;
  }
  std::vector<std::string> lines_;
};

TEST_F(LogSinkTest, WorkerIdPrefixesLogLines) {
  {
    ScopedWorkerId tag(3);
    GS_LOG(Info) << "tagged message";
  }
  GS_LOG(Info) << "untagged message";
  ASSERT_EQ(lines_.size(), 2u);
  EXPECT_NE(lines_[0].find("[INFO W3 "), std::string::npos) << lines_[0];
  EXPECT_NE(lines_[0].find("tagged message"), std::string::npos);
  EXPECT_EQ(lines_[1].find("W3"), std::string::npos) << lines_[1];
}

TEST_F(LogSinkTest, ScopedWorkerIdRestoresPrevious) {
  SetThreadWorkerId(1);
  {
    ScopedWorkerId inner(2);
    EXPECT_EQ(GetThreadWorkerId(), 2);
  }
  EXPECT_EQ(GetThreadWorkerId(), 1);
  SetThreadWorkerId(-1);
  EXPECT_EQ(GetThreadWorkerId(), -1);
}

TEST_F(LogSinkTest, ConcurrentEmissionsAreWholeLines) {
  // Each message arrives at the sink as one complete, newline-terminated
  // line — concurrent emitters never interleave fragments.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      ScopedWorkerId tag(t);
      for (int i = 0; i < kPerThread; ++i) {
        GS_LOG(Info) << "worker " << t << " line " << i << " payload";
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(lines_.size(), static_cast<size_t>(kThreads * kPerThread));
  for (const std::string& line : lines_) {
    EXPECT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '\n');
    // Exactly one newline (at the end) and exactly one payload marker:
    // no torn or merged lines.
    EXPECT_EQ(line.find('\n'), line.size() - 1) << line;
    size_t first = line.find("payload");
    ASSERT_NE(first, std::string::npos) << line;
    EXPECT_EQ(line.find("payload", first + 1), std::string::npos) << line;
  }
}

}  // namespace
}  // namespace gs
