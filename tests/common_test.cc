#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "common/hash.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace gs {
namespace {

TEST(HashTest, Mix64Decorrelates) {
  // Sequential inputs must not produce sequential outputs.
  std::set<uint64_t> low_bits;
  for (uint64_t i = 0; i < 1000; ++i) low_bits.insert(Mix64(i) & 0xFF);
  EXPECT_GT(low_bits.size(), 200u);  // all 256 buckets nearly covered
}

TEST(HashTest, PairAndTupleHashing) {
  auto h1 = HashValue(std::make_pair(uint64_t{1}, uint64_t{2}));
  auto h2 = HashValue(std::make_pair(uint64_t{2}, uint64_t{1}));
  EXPECT_NE(h1, h2);  // order matters
  auto t1 = HashValue(std::make_tuple(1, std::string("a"), true));
  auto t2 = HashValue(std::make_tuple(1, std::string("a"), false));
  EXPECT_NE(t1, t2);
}

TEST(RandomTest, DeterministicGivenSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000000), b.Uniform(0, 1000000));
  }
}

TEST(RandomTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, PowerLawSkewsLow) {
  Rng rng(2);
  int lows = 0;
  const int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.PowerLaw(1000, 1.5) < 10) ++lows;
  }
  // With alpha 1.5, a large fraction of mass is on the first few values.
  EXPECT_GT(lows, kTrials / 4);
}

TEST(RandomTest, SampleDistinctIsDistinct) {
  Rng rng(3);
  auto sample = rng.SampleDistinct(100, 50);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 50u);
  for (uint64_t v : sample) EXPECT_LT(v, 100u);
}

TEST(ThreadPoolTest, InlineModeRunsTasks) {
  ThreadPool pool(1);
  int counter = 0;
  pool.Submit([&] { ++counter; });
  pool.Wait();
  EXPECT_EQ(counter, 1);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForShardsPartition) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> ranges;
  pool.ParallelForShards(100, [&](size_t shard, size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    ranges.emplace_back(begin, end);
  });
  size_t total = 0;
  for (auto [b, e] : ranges) total += e - b;
  EXPECT_EQ(total, 100u);
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.Seconds(), 0.0);
  EXPECT_LT(t.Seconds(), 10.0);
}

}  // namespace
}  // namespace gs
