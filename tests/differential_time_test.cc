#include "differential/time.h"

#include <gtest/gtest.h>

#include "differential/trace.h"
#include "differential/update.h"

namespace gs::differential {
namespace {

Time T(uint32_t v, std::initializer_list<uint32_t> iters = {}) {
  Time t(v);
  for (uint32_t i : iters) {
    t = t.Entered();
    t.iters[t.depth - 1] = i;
  }
  return t;
}

TEST(TimeTest, ProductPartialOrder) {
  EXPECT_TRUE(T(0).LessEq(T(1)));
  EXPECT_FALSE(T(1).LessEq(T(0)));
  EXPECT_TRUE(T(1, {2}).LessEq(T(1, {3})));
  EXPECT_TRUE(T(0, {2}).LessEq(T(1, {2})));
  // Incomparable: later version but earlier iteration.
  EXPECT_FALSE(T(0, {3}).LessEq(T(1, {2})));
  EXPECT_FALSE(T(1, {2}).LessEq(T(0, {3})));
  // Reflexive.
  EXPECT_TRUE(T(2, {1, 4}).LessEq(T(2, {1, 4})));
}

TEST(TimeTest, LubIsComponentwiseMax) {
  Time lub = T(0, {3}).Lub(T(1, {2}));
  EXPECT_EQ(lub, T(1, {3}));
  Time nested = T(2, {1, 5}).Lub(T(1, {4, 2}));
  EXPECT_EQ(nested, T(2, {4, 5}));
  // Lub is an upper bound of both operands.
  EXPECT_TRUE(T(0, {3}).LessEq(lub));
  EXPECT_TRUE(T(1, {2}).LessEq(lub));
}

TEST(TimeTest, LexOrderExtendsPartialOrder) {
  // Whenever a ≤ b in the product order, a ≤ b lexicographically.
  std::vector<Time> times = {T(0), T(1), T(0, {0}), T(0, {5}), T(1, {2}),
                             T(2, {1, 1}), T(1, {1, 3}), T(2, {0, 4})};
  for (const Time& a : times) {
    for (const Time& b : times) {
      if (a.depth == b.depth && a.LessEq(b) && !(a == b)) {
        EXPECT_TRUE(a.LexLess(b))
            << a.ToString() << " vs " << b.ToString();
      }
    }
  }
}

TEST(TimeTest, EnterLeaveDelay) {
  Time t = T(3);
  Time in = t.Entered();
  EXPECT_EQ(in.depth, 1);
  EXPECT_EQ(in.inner_iteration(), 0u);
  Time next = in.Delayed();
  EXPECT_EQ(next.inner_iteration(), 1u);
  EXPECT_EQ(next.Left(), t);
  // Nested.
  Time deep = next.Entered().Delayed(4);
  EXPECT_EQ(deep.depth, 2);
  EXPECT_EQ(deep.inner_iteration(), 4u);
  EXPECT_EQ(deep.Left(), next);
}

TEST(UpdateTest, ConsolidateMergesAndDropsZeros) {
  Batch<int> b = {{5, 1}, {3, 2}, {5, -1}, {3, 1}, {7, 0}};
  Consolidate(&b);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].data, 3);
  EXPECT_EQ(b[0].diff, 3);
  EXPECT_EQ(UpdateMagnitude(b), 3u);
}

TEST(TraceTest, AccumulateRespectsPartialOrder) {
  Trace<int, int> trace;
  trace.Insert(1, 100, T(0, {0}), 1);
  trace.Insert(1, 200, T(0, {2}), 1);
  trace.Insert(1, 300, T(1, {1}), 1);

  Batch<int> at_v0_i1;
  trace.Accumulate(1, T(0, {1}), &at_v0_i1);
  ASSERT_EQ(at_v0_i1.size(), 1u);  // only the (0,{0}) entry
  EXPECT_EQ(at_v0_i1[0].data, 100);

  Batch<int> at_v1_i2;
  trace.Accumulate(1, T(1, {2}), &at_v1_i2);
  EXPECT_EQ(at_v1_i2.size(), 3u);  // everything

  Batch<int> at_v1_i0;
  trace.Accumulate(1, T(1, {0}), &at_v1_i0);
  ASSERT_EQ(at_v1_i0.size(), 1u);  // (0,{0}) only; (1,{1}) incomparable
}

TEST(TraceTest, CompactPreservesAccumulations) {
  Trace<int, int> trace;
  trace.Insert(7, 10, T(0, {0}), 1);
  trace.Insert(7, 10, T(1, {0}), -1);
  trace.Insert(7, 20, T(1, {0}), 1);
  trace.Insert(7, 20, T(1, {3}), -1);
  trace.Insert(7, 30, T(1, {3}), 1);

  Batch<int> before;
  trace.Accumulate(7, T(2, {5}), &before);

  trace.CompactTo(1);
  Batch<int> after;
  trace.Accumulate(7, T(2, {5}), &after);
  Consolidate(&before);
  Consolidate(&after);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].data, after[i].data);
    EXPECT_EQ(before[i].diff, after[i].diff);
  }
  // Cancelled value-10 entries are gone entirely after compaction.
  EXPECT_LE(trace.total_entries(), 3u);
}

TEST(TraceTest, CompactDropsEmptyKeys) {
  Trace<int, int> trace;
  trace.Insert(1, 5, T(0), 1);
  trace.Insert(1, 5, T(1), -1);
  trace.CompactTo(2);
  EXPECT_EQ(trace.num_keys(), 0u);
}

}  // namespace
}  // namespace gs::differential
