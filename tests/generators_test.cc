#include "graph/generators.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace gs {
namespace {

TEST(TemporalGraphTest, TimestampsMonotoneAndInRange) {
  TemporalGraphOptions opts;
  opts.num_nodes = 500;
  opts.num_edges = 5000;
  opts.start_time = 100;
  opts.end_time = 200;
  PropertyGraph g = GenerateTemporalGraph(opts);
  ASSERT_EQ(g.num_edges(), 5000u);
  ASSERT_TRUE(g.Validate().ok());
  int64_t prev = opts.start_time;
  auto col = g.edge_properties().ColumnIndex("timestamp");
  ASSERT_TRUE(col.ok());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    int64_t ts = g.edge_properties().column(*col).GetInt(e);
    EXPECT_GE(ts, prev);
    EXPECT_LE(ts, opts.end_time);
    prev = ts;
  }
}

TEST(TemporalGraphTest, GrowthSkewsLate) {
  TemporalGraphOptions opts;
  opts.num_nodes = 500;
  opts.num_edges = 10000;
  opts.start_time = 0;
  opts.end_time = 1000;
  opts.growth = 3.0;
  PropertyGraph g = GenerateTemporalGraph(opts);
  auto col = *g.edge_properties().ColumnIndex("timestamp");
  size_t late = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (g.edge_properties().column(col).GetInt(e) > 500) ++late;
  }
  // With growth skew, well over half the edges land in the later half.
  EXPECT_GT(late, g.num_edges() * 6 / 10);
}

TEST(CitationGraphTest, CitationsPointBackwards) {
  CitationGraphOptions opts;
  opts.first_year = 2000;
  opts.last_year = 2010;
  opts.papers_first_year = 50;
  PropertyGraph g = GenerateCitationGraph(opts);
  ASSERT_TRUE(g.Validate().ok());
  ASSERT_GT(g.num_edges(), 100u);
  auto year_col = *g.node_properties().ColumnIndex("year");
  const Column& years = g.node_properties().column(year_col);
  for (const Edge& e : g.edges()) {
    EXPECT_GE(years.GetInt(e.src), years.GetInt(e.dst))
        << "citation must point to an older or same-year paper";
  }
  auto co_col = *g.node_properties().ColumnIndex("coauthors");
  for (size_t v = 0; v < g.num_nodes(); ++v) {
    int64_t c = g.node_properties().column(co_col).GetInt(v);
    EXPECT_GE(c, 1);
    EXPECT_LE(c, opts.max_coauthors);
  }
}

TEST(CommunityGraphTest, BitmaskMatchesMemberLists) {
  CommunityGraphOptions opts;
  opts.num_nodes = 2000;
  opts.num_communities = 12;
  CommunityGraph cg = GenerateCommunityGraph(opts);
  ASSERT_TRUE(cg.graph.Validate().ok());
  ASSERT_EQ(cg.communities.size(), 12u);
  // Sizes are sorted descending.
  for (size_t c = 1; c < cg.communities.size(); ++c) {
    EXPECT_GE(cg.communities[c - 1].size(), cg.communities[c].size());
  }
  auto col = *cg.graph.node_properties().ColumnIndex("communities");
  const Column& mask = cg.graph.node_properties().column(col);
  for (size_t c = 0; c < cg.communities.size(); ++c) {
    for (VertexId v : cg.communities[c]) {
      EXPECT_TRUE(static_cast<uint64_t>(mask.GetInt(v)) & (1ULL << c));
    }
  }
}

TEST(SocialNetworkTest, LocationHierarchyConsistent) {
  SocialNetworkOptions opts;
  opts.num_nodes = 3000;
  opts.num_edges = 20000;
  PropertyGraph g = GenerateSocialNetwork(opts);
  ASSERT_TRUE(g.Validate().ok());
  auto city = *g.node_properties().ColumnIndex("city");
  auto state = *g.node_properties().ColumnIndex("state");
  auto country = *g.node_properties().ColumnIndex("country");
  for (size_t v = 0; v < g.num_nodes(); ++v) {
    int64_t c = g.node_properties().column(city).GetInt(v);
    int64_t s = g.node_properties().column(state).GetInt(v);
    int64_t n = g.node_properties().column(country).GetInt(v);
    EXPECT_EQ(s, c / opts.cities_per_state);
    EXPECT_EQ(n, s / opts.states_per_country);
  }
  auto aff = *g.edge_properties().ColumnIndex("affinity");
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    int64_t a = g.edge_properties().column(aff).GetInt(e);
    EXPECT_GE(a, 0);
    EXPECT_LE(a, 2);
  }
}

TEST(RandomGraphTest, SizesAndDeterminism) {
  PropertyGraph a = GeneratePowerLawGraph(100, 1000, 1.3, 9);
  PropertyGraph b = GeneratePowerLawGraph(100, 1000, 1.3, 9);
  ASSERT_EQ(a.num_edges(), 1000u);
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge(e).src, b.edge(e).src);
    EXPECT_EQ(a.edge(e).dst, b.edge(e).dst);
  }
  PropertyGraph u = GenerateUniformGraph(50, 500, 1);
  EXPECT_EQ(u.num_edges(), 500u);
  EXPECT_TRUE(u.Validate().ok());
  // No self loops in either generator.
  for (const Edge& e : a.edges()) EXPECT_NE(e.src, e.dst);
  for (const Edge& e : u.edges()) EXPECT_NE(e.src, e.dst);
}

TEST(RandomGraphTest, PowerLawIsSkewed) {
  PropertyGraph g = GeneratePowerLawGraph(1000, 20000, 1.4, 5);
  std::vector<size_t> deg(1000, 0);
  for (const Edge& e : g.edges()) deg[e.src]++;
  std::sort(deg.rbegin(), deg.rend());
  size_t top10 = 0, total = 0;
  for (size_t i = 0; i < deg.size(); ++i) {
    if (i < 10) top10 += deg[i];
    total += deg[i];
  }
  EXPECT_GT(top10 * 5, total) << "top-10 nodes should hold >20% of degree";
}

}  // namespace
}  // namespace gs
