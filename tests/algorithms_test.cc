// Correctness of the differential analytics computations against the
// sequential reference oracles, on fixed topologies and under incremental
// edge changes.
#include "algorithms/algorithms.h"

#include <gtest/gtest.h>

#include "algorithms/reference.h"
#include "test_util.h"

namespace gs::analytics {
namespace {

using testutil::ComputationRunner;
using testutil::EdgeAccumulator;
namespace dd = ::gs::differential;

dd::Batch<WeightedEdge> MakeBatch(
    std::initializer_list<std::tuple<uint64_t, uint64_t, int64_t>> adds,
    std::initializer_list<std::tuple<uint64_t, uint64_t, int64_t>> dels = {}) {
  dd::Batch<WeightedEdge> b;
  for (auto [s, d, w] : adds) b.push_back({WeightedEdge{s, d, w}, 1});
  for (auto [s, d, w] : dels) b.push_back({WeightedEdge{s, d, w}, -1});
  return b;
}

TEST(WccTest, TwoComponentsThenMerge) {
  Wcc wcc;
  ComputationRunner runner(wcc);
  EdgeAccumulator acc;
  // Components {0,1,2} and {5,6}.
  auto b0 = MakeBatch({{0, 1, 1}, {1, 2, 1}, {5, 6, 1}});
  runner.Advance(b0);
  acc.Apply(b0);
  EXPECT_EQ(runner.ResultAt(0), WccReference(acc.Edges()));
  EXPECT_EQ(runner.ResultAt(0).at(6), 5);

  // Merge them.
  auto b1 = MakeBatch({{2, 5, 1}});
  runner.Advance(b1);
  acc.Apply(b1);
  EXPECT_EQ(runner.ResultAt(1), WccReference(acc.Edges()));
  EXPECT_EQ(runner.ResultAt(1).at(6), 0);

  // Split them again.
  auto b2 = MakeBatch({}, {{2, 5, 1}});
  runner.Advance(b2);
  acc.Apply(b2);
  EXPECT_EQ(runner.ResultAt(2), WccReference(acc.Edges()));
}

TEST(WccTest, DirectionIsIgnored) {
  Wcc wcc;
  ComputationRunner runner(wcc);
  runner.Advance(MakeBatch({{9, 3, 1}, {3, 7, 1}}));
  auto r = runner.ResultAt(0);
  EXPECT_EQ(r.at(9), 3);
  EXPECT_EQ(r.at(7), 3);
  EXPECT_EQ(r.at(3), 3);
}

TEST(BfsTest, LevelsAndIncrementalShortcut) {
  Bfs bfs(0);
  ComputationRunner runner(bfs);
  EdgeAccumulator acc;
  auto b0 = MakeBatch({{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}});
  runner.Advance(b0);
  acc.Apply(b0);
  EXPECT_EQ(runner.ResultAt(0), BfsReference(acc.Edges(), 0));

  auto b1 = MakeBatch({{0, 3, 1}});
  runner.Advance(b1);
  acc.Apply(b1);
  auto r = runner.ResultAt(1);
  EXPECT_EQ(r, BfsReference(acc.Edges(), 0));
  EXPECT_EQ(r.at(4), 2);
}

TEST(BfsTest, MissingSourceProducesNothing) {
  Bfs bfs(42);
  ComputationRunner runner(bfs);
  runner.Advance(MakeBatch({{0, 1, 1}}));
  EXPECT_TRUE(runner.ResultAt(0).empty());
  // Source appears in version 1.
  runner.Advance(MakeBatch({{42, 0, 1}}));
  auto r = runner.ResultAt(1);
  EXPECT_EQ(r.at(42), 0);
  EXPECT_EQ(r.at(0), 1);
  EXPECT_EQ(r.at(1), 2);
}

TEST(BellmanFordTest, WeightedShortestPaths) {
  BellmanFord bf(0);
  ComputationRunner runner(bf);
  EdgeAccumulator acc;
  // Figure 3-style: cheap long path vs expensive direct edge.
  auto b0 = MakeBatch({{0, 1, 2}, {0, 2, 10}, {1, 2, 2}});
  runner.Advance(b0);
  acc.Apply(b0);
  auto r0 = runner.ResultAt(0);
  EXPECT_EQ(r0, SsspReference(acc.Edges(), 0));
  EXPECT_EQ(r0.at(2), 4);

  // Table 1's updates: (0,1) cost 2 → 1, then (0,2) cost 10 → 1.
  auto b1 = MakeBatch({{0, 1, 1}}, {{0, 1, 2}});
  runner.Advance(b1);
  acc.Apply(b1);
  EXPECT_EQ(runner.ResultAt(1), SsspReference(acc.Edges(), 0));
  EXPECT_EQ(runner.ResultAt(1).at(2), 3);

  auto b2 = MakeBatch({{0, 2, 1}}, {{0, 2, 10}});
  runner.Advance(b2);
  acc.Apply(b2);
  EXPECT_EQ(runner.ResultAt(2), SsspReference(acc.Edges(), 0));
  EXPECT_EQ(runner.ResultAt(2).at(2), 1);
}

TEST(PageRankTest, MatchesReferenceExactly) {
  PageRank pr(5);
  ComputationRunner runner(pr);
  EdgeAccumulator acc;
  auto b0 = MakeBatch({{0, 1, 1}, {1, 2, 1}, {2, 0, 1}, {0, 2, 1}, {3, 0, 1}});
  runner.Advance(b0);
  acc.Apply(b0);
  EXPECT_EQ(runner.ResultAt(0), PageRankReference(acc.Edges(), 5));

  auto b1 = MakeBatch({{2, 3, 1}}, {{3, 0, 1}});
  runner.Advance(b1);
  acc.Apply(b1);
  EXPECT_EQ(runner.ResultAt(1), PageRankReference(acc.Edges(), 5));
}

TEST(PageRankTest, SinkAndSourceVertices) {
  PageRank pr(3);
  ComputationRunner runner(pr);
  EdgeAccumulator acc;
  // 0 is a pure source, 2 a pure sink.
  auto b0 = MakeBatch({{0, 1, 1}, {1, 2, 1}});
  runner.Advance(b0);
  acc.Apply(b0);
  auto r = runner.ResultAt(0);
  EXPECT_EQ(r, PageRankReference(acc.Edges(), 3));
  EXPECT_EQ(r.at(0), PageRank::Base());
  EXPECT_GT(r.at(2), r.at(0));
}

TEST(SccTest, CyclesAndCondensation) {
  Scc scc;
  ComputationRunner runner(scc);
  EdgeAccumulator acc;
  // SCCs: {0,1,2} (cycle), {3,4} (2-cycle), {5} reached from both.
  auto b0 = MakeBatch({{0, 1, 1},
                       {1, 2, 1},
                       {2, 0, 1},
                       {3, 4, 1},
                       {4, 3, 1},
                       {2, 3, 1},
                       {4, 5, 1}});
  runner.Advance(b0);
  acc.Apply(b0);
  EXPECT_EQ(runner.ResultAt(0), SccReference(acc.Edges()));
  auto r = runner.ResultAt(0);
  EXPECT_EQ(r.at(0), 2);
  EXPECT_EQ(r.at(1), 2);
  EXPECT_EQ(r.at(3), 4);
  EXPECT_EQ(r.at(5), 5);
}

TEST(SccTest, EdgeInsertionMergesComponents) {
  Scc scc;
  ComputationRunner runner(scc);
  EdgeAccumulator acc;
  auto b0 = MakeBatch({{0, 1, 1}, {1, 2, 1}, {3, 0, 1}, {2, 9, 1}});
  runner.Advance(b0);
  acc.Apply(b0);
  EXPECT_EQ(runner.ResultAt(0), SccReference(acc.Edges()));

  // Close the loop 2 -> 3: {0,1,2,3} become one SCC.
  auto b1 = MakeBatch({{2, 3, 1}});
  runner.Advance(b1);
  acc.Apply(b1);
  EXPECT_EQ(runner.ResultAt(1), SccReference(acc.Edges()));
  EXPECT_EQ(runner.ResultAt(1).at(0), 3);

  // Remove it again.
  auto b2 = MakeBatch({}, {{2, 3, 1}});
  runner.Advance(b2);
  acc.Apply(b2);
  EXPECT_EQ(runner.ResultAt(2), SccReference(acc.Edges()));
}

TEST(MpspTest, MultiplePairsIndependent) {
  std::vector<std::pair<VertexId, VertexId>> pairs = {{0, 3}, {5, 7}};
  Mpsp mpsp(pairs);
  ComputationRunner runner(mpsp);
  EdgeAccumulator acc;
  auto b0 = MakeBatch(
      {{0, 1, 4}, {1, 3, 1}, {0, 3, 9}, {5, 6, 2}, {6, 7, 2}, {5, 7, 5}});
  runner.Advance(b0);
  acc.Apply(b0);
  auto r = runner.ResultAt(0);
  EXPECT_EQ(r, MpspReference(acc.Edges(), pairs));
  EXPECT_EQ(r.at(Mpsp::PackKey(3, 0)), 5);
  EXPECT_EQ(r.at(Mpsp::PackKey(7, 1)), 4);

  // Cheapen a path for pair 0 only.
  auto b1 = MakeBatch({{0, 1, 1}}, {{0, 1, 4}});
  runner.Advance(b1);
  acc.Apply(b1);
  EXPECT_EQ(runner.ResultAt(1), MpspReference(acc.Edges(), pairs));
  EXPECT_EQ(runner.ResultAt(1).at(Mpsp::PackKey(3, 0)), 2);
}

TEST(AlgorithmNamesAreStable, Names) {
  EXPECT_EQ(Wcc().name(), "wcc");
  EXPECT_EQ(Bfs(0).name(), "bfs");
  EXPECT_EQ(BellmanFord(0).name(), "bellman-ford");
  EXPECT_EQ(PageRank().name(), "pagerank");
  EXPECT_EQ(Scc().name(), "scc");
  EXPECT_EQ(Mpsp({}).name(), "mpsp");
}

}  // namespace
}  // namespace gs::analytics
