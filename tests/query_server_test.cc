// Query-serving front end: session lifecycle and isolation, admission
// control, GVDL + analytics over HTTP, protocol conformance through the
// shared http layer, and the headline arrangement-cache property — two
// concurrent sessions running the same algorithm on the same host graph
// trigger exactly one arrangement build and read byte-identical results
// that match the embedded API.
#include "server/query_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/algorithms.h"
#include "algorithms/reference.h"
#include "api/graphsurge.h"
#include "differential/arrcache.h"
#include "graph/generators.h"
#include "test_util.h"

namespace gs::server {
namespace {

using testutil::ExpectHttpConformance;
using testutil::HttpGet;
using testutil::HttpPost;
using testutil::HttpReply;

constexpr uint64_t kNodes = 200;
constexpr uint64_t kEdges = 800;
constexpr uint64_t kSeed = 11;

/// One statement in one session. Statements never contain double quotes
/// (GVDL string literals accept single quotes), so no JSON escaping needed.
HttpReply Query(uint16_t port, const std::string& session,
                const std::string& statement) {
  return HttpPost(port, "/query",
                  "{\"session\": \"" + session + "\", \"statement\": \"" +
                      statement + "\"}");
}

/// The exact body RenderResults produces for a single-view run on
/// `target`, built from an independently computed result map. Asserting
/// equality against this string is the "byte-identical to the direct API"
/// criterion.
std::string CanonicalResultsBody(const std::string& target,
                                 const analytics::ResultMap& values) {
  std::string body = "{\"ok\": true, \"target\": \"" + target +
                     "\", \"results\": [{\"view\": \"" + target +
                     "\", \"values\": {";
  bool first = true;
  for (const auto& [vertex, value] : values) {
    if (!first) body += ", ";
    first = false;
    body += "\"" + std::to_string(vertex) + "\": " + std::to_string(value);
  }
  body += "}}]}\n";
  return body;
}

class QueryServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    differential::ArrangementCache::Global().Clear();
    ASSERT_TRUE(
        server_.AddGraph("G", GenerateUniformGraph(kNodes, kEdges, kSeed))
            .ok());
    ASSERT_TRUE(server_.Start(0).ok());
    ASSERT_NE(server_.port(), 0);
  }

  void TearDown() override { server_.Stop(); }

  QueryServer server_;
};

// --- The headline acceptance criterion ------------------------------------

TEST_F(QueryServerTest, ConcurrentSessionsShareOneArrangementBuild) {
  // The embedded API computes the ground truth on an identical graph.
  Graphsurge direct;
  ASSERT_TRUE(
      direct.AddGraph("G", GenerateUniformGraph(kNodes, kEdges, kSeed)).ok());
  auto truth = direct.RunOnView(analytics::Wcc(), "G");
  ASSERT_TRUE(truth.ok()) << truth.status().ToString();
  const std::string expected = CanonicalResultsBody("G", *truth);

  // Two sessions issue the same run concurrently. Whichever statement
  // arrives second waits on the in-flight builder and becomes a reader —
  // the arrangement is built exactly once.
  std::atomic<int> failures{0};
  auto run = [&](const std::string& session) {
    HttpReply reply = Query(server_.port(), session, "run wcc on G");
    if (reply.status_code != 200) failures++;
  };
  std::thread a(run, "alice");
  std::thread b(run, "bob");
  a.join();
  b.join();
  ASSERT_EQ(failures.load(), 0);

  const std::string scope = server_.ArrangementCacheScope("G");
  ASSERT_FALSE(scope.empty());
  auto stats = differential::ArrangementCache::Global().Stats(
      scope, analytics::Wcc().cache_tag() + "/w1/c-1/a1");
  ASSERT_TRUE(stats.has_value()) << "no cache entry under scope " << scope;
  EXPECT_EQ(stats->misses, 1u) << "the arrangement was built more than once";
  EXPECT_GE(stats->hits, 1u) << "the second session did not share the build";

  // Both sessions read byte-identical bodies, and those bytes render the
  // embedded API's result exactly.
  HttpReply ra = Query(server_.port(), "alice", "get results");
  HttpReply rb = Query(server_.port(), "bob", "get results");
  ASSERT_EQ(ra.status_code, 200);
  ASSERT_EQ(rb.status_code, 200);
  EXPECT_EQ(ra.body, rb.body);
  EXPECT_EQ(ra.body, expected);
}

// --- Sessions --------------------------------------------------------------

TEST_F(QueryServerTest, SessionNamespacesAreIsolated) {
  // The same view name means different things in different sessions.
  EXPECT_EQ(Query(server_.port(), "s1",
                  "create view V on G edges where weight < 20")
                .status_code,
            200);
  EXPECT_EQ(Query(server_.port(), "s2",
                  "create view V on G edges where weight < 90")
                .status_code,
            200);
  ASSERT_EQ(Query(server_.port(), "s1", "run wcc on V").status_code, 200);
  ASSERT_EQ(Query(server_.port(), "s2", "run wcc on V").status_code, 200);
  HttpReply r1 = Query(server_.port(), "s1", "get results");
  HttpReply r2 = Query(server_.port(), "s2", "get results");
  ASSERT_EQ(r1.status_code, 200);
  ASSERT_EQ(r2.status_code, 200);
  // Different predicates → different graphs → different components.
  EXPECT_NE(r1.body, r2.body);

  // s2 cannot see s1's names being redefined; s1 cannot redefine its own.
  EXPECT_EQ(Query(server_.port(), "s1",
                  "create view V on G edges where weight < 50")
                .status_code,
            400);

  // Closing a session drops its namespace: the view is gone, and the
  // session (recreated lazily) can reuse the name.
  EXPECT_EQ(HttpPost(server_.port(), "/session/close",
                     "{\"session\": \"s1\"}")
                .status_code,
            200);
  EXPECT_EQ(Query(server_.port(), "s1", "run wcc on V").status_code, 400);
  EXPECT_EQ(Query(server_.port(), "s1",
                  "create view V on G edges where weight < 50")
                .status_code,
            200);
}

TEST_F(QueryServerTest, CollectionRunServesPerViewResults) {
  HttpReply created = Query(
      server_.port(), "s",
      "create view collection C on G [small: weight < 30], "
      "[mid: weight < 60], [all: weight < 200]");
  ASSERT_EQ(created.status_code, 200) << created.body;
  EXPECT_NE(created.body.find("\"created\": [\"C\"]"), std::string::npos);

  HttpReply ran = Query(server_.port(), "s", "run wcc on C");
  ASSERT_EQ(ran.status_code, 200) << ran.body;
  EXPECT_NE(ran.body.find("\"views\": 3"), std::string::npos);

  HttpReply results = Query(server_.port(), "s", "get results");
  ASSERT_EQ(results.status_code, 200);
  // Views render in execution order with their given names.
  size_t small = results.body.find("\"view\": \"small\"");
  size_t mid = results.body.find("\"view\": \"mid\"");
  size_t all = results.body.find("\"view\": \"all\"");
  ASSERT_NE(small, std::string::npos);
  ASSERT_NE(mid, std::string::npos);
  ASSERT_NE(all, std::string::npos);
  EXPECT_LT(small, mid);
  EXPECT_LT(mid, all);

  // The last (unfiltered) view matches a direct run on the host graph.
  Graphsurge direct;
  ASSERT_TRUE(
      direct.AddGraph("G", GenerateUniformGraph(kNodes, kEdges, kSeed)).ok());
  auto truth = direct.RunOnView(analytics::Wcc(), "G");
  ASSERT_TRUE(truth.ok());
  std::string tail = CanonicalResultsBody("all", *truth);
  // Extract the {"view": "all", ...} fragment from the canonical render.
  size_t frag_begin = tail.find("{\"view\"");
  std::string fragment =
      tail.substr(frag_begin, tail.find("]}") - frag_begin);
  EXPECT_NE(results.body.find(fragment), std::string::npos)
      << "unfiltered view diverged from the direct API";
}

TEST_F(QueryServerTest, AdmissionControlCapsSessions) {
  QueryServerOptions options;
  options.max_sessions = 2;
  QueryServer capped(options);
  ASSERT_TRUE(capped.AddGraph("G", GenerateUniformGraph(20, 40, 1)).ok());
  ASSERT_TRUE(capped.Start(0).ok());

  EXPECT_EQ(HttpPost(capped.port(), "/session", "{\"session\": \"a\"}")
                .status_code,
            200);
  EXPECT_EQ(Query(capped.port(), "b", "run wcc on G").status_code, 200);
  // Third distinct session: deterministic 503, both explicitly and lazily.
  EXPECT_EQ(HttpPost(capped.port(), "/session", "{\"session\": \"c\"}")
                .status_code,
            503);
  EXPECT_EQ(Query(capped.port(), "c", "run wcc on G").status_code, 503);
  // Existing sessions keep working at the cap.
  EXPECT_EQ(Query(capped.port(), "a", "run wcc on G").status_code, 200);
  EXPECT_EQ(capped.num_sessions(), 2u);

  // Closing one admits the waiter.
  EXPECT_EQ(HttpPost(capped.port(), "/session/close", "{\"session\": \"a\"}")
                .status_code,
            200);
  EXPECT_EQ(HttpPost(capped.port(), "/session", "{\"session\": \"c\"}")
                .status_code,
            200);
  capped.Stop();
}

// --- Protocol and error handling -------------------------------------------

TEST_F(QueryServerTest, ProtocolConformance) {
  // The same HTTP/1.1 conformance suite the status server passes: the two
  // listeners share server/http.h, so framing behavior is identical.
  ExpectHttpConformance(server_.port());
}

TEST_F(QueryServerTest, MalformedJsonIs400WithParseableErrorBody) {
  HttpReply reply =
      HttpPost(server_.port(), "/query", "{\"session\": \"s\", ");
  EXPECT_EQ(reply.status_code, 400);
  EXPECT_NE(reply.body.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(reply.body.find("malformed JSON"), std::string::npos);

  reply = HttpPost(server_.port(), "/query", "not json at all");
  EXPECT_EQ(reply.status_code, 400);
  EXPECT_NE(reply.body.find("\"ok\": false"), std::string::npos);
}

TEST_F(QueryServerTest, StatementErrorsAreClientErrors) {
  EXPECT_EQ(HttpPost(server_.port(), "/query", "{\"session\": \"s\"}")
                .status_code,
            400);
  EXPECT_EQ(Query(server_.port(), "s", "frobnicate the graph").status_code,
            400);
  EXPECT_EQ(Query(server_.port(), "s", "run nosuchalgo on G").status_code,
            400);
  EXPECT_EQ(Query(server_.port(), "s", "run wcc on NoSuchTarget")
                .status_code,
            400);
  EXPECT_EQ(Query(server_.port(), "s", "run wcc on").status_code, 400);
  // Aggregate views and explain are embedded-API features.
  EXPECT_EQ(Query(server_.port(), "s",
                  "create view A on G nodes group by [(weight = 1)] "
                  "aggregate count(*)")
                .status_code,
            400);
  // Unknown POST path and unsupported method.
  EXPECT_EQ(HttpPost(server_.port(), "/nosuch", "{}").status_code, 404);
  EXPECT_EQ(testutil::HttpFetch(server_.port(),
                                "DELETE /query HTTP/1.1\r\nHost: x\r\n"
                                "Content-Length: 0\r\n"
                                "Connection: close\r\n\r\n")
                .status_code,
            405);
}

TEST_F(QueryServerTest, StatusPagesServedFromSameListener) {
  ASSERT_EQ(Query(server_.port(), "s", "run wcc on G").status_code, 200);
  HttpReply metrics = HttpGet(server_.port(), "/metrics");
  ASSERT_EQ(metrics.status_code, 200);
  EXPECT_NE(metrics.body.find("gs_query_server_requests"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("gs_arrcache_misses"), std::string::npos);

  HttpReply sessionz = HttpGet(server_.port(), "/sessionz");
  ASSERT_EQ(sessionz.status_code, 200);
  EXPECT_NE(sessionz.body.find("\"s\""), std::string::npos);

  HttpReply statusz = HttpGet(server_.port(), "/statusz");
  ASSERT_EQ(statusz.status_code, 200);
  EXPECT_NE(statusz.body.find("arrangement-cache"), std::string::npos);

  EXPECT_EQ(HttpGet(server_.port(), "/healthz").body, "ok\n");
}

// --- Concurrency stress -----------------------------------------------------
// N raw-socket clients × M sessions each, mixing GVDL, analytics, result
// reads, and status scrapes against one server. Run under TSan in CI; the
// assertions here are isolation (each session's results render the
// canonical bytes) and clean teardown.

TEST_F(QueryServerTest, ConcurrentClientsAcrossSessionsStayIsolated) {
  constexpr int kClients = 8;
  constexpr int kSessionsPerClient = 2;

  Graphsurge direct;
  ASSERT_TRUE(
      direct.AddGraph("G", GenerateUniformGraph(kNodes, kEdges, kSeed)).ok());
  auto truth = direct.RunOnView(analytics::Wcc(), "G");
  ASSERT_TRUE(truth.ok());
  const std::string expected = CanonicalResultsBody("G", *truth);

  std::atomic<int> errors{0};
  auto client = [&](int id) {
    for (int s = 0; s < kSessionsPerClient; ++s) {
      const std::string session =
          "c" + std::to_string(id) + "-" + std::to_string(s);
      // Private view in the session namespace; same name everywhere.
      if (Query(server_.port(), session,
                "create view V on G edges where weight < " +
                    std::to_string(10 + 10 * (id % 5)))
              .status_code != 200) {
        errors++;
      }
      if (Query(server_.port(), session, "run wcc on G").status_code !=
          200) {
        errors++;
      }
      if (HttpGet(server_.port(), "/metrics").status_code != 200) errors++;
      HttpReply results = Query(server_.port(), session, "get results");
      if (results.status_code != 200 || results.body != expected) errors++;
      if (HttpGet(server_.port(), "/sessionz").status_code != 200) errors++;
      if (HttpPost(server_.port(), "/session/close",
                   "{\"session\": \"" + session + "\"}")
              .status_code != 200) {
        errors++;
      }
    }
  };
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) clients.emplace_back(client, i);
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(server_.num_sessions(), 0u);

  // All those "run wcc on G" statements shared one arrangement build.
  auto stats = differential::ArrangementCache::Global().Stats(
      server_.ArrangementCacheScope("G"),
      analytics::Wcc().cache_tag() + "/w1/c-1/a1");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->misses, 1u);
  EXPECT_GE(stats->hits,
            static_cast<uint64_t>(kClients * kSessionsPerClient - 1));
}

TEST_F(QueryServerTest, StopIsIdempotentAndDropsCacheEntriesOnDestruction) {
  ASSERT_EQ(Query(server_.port(), "s", "run wcc on G").status_code, 200);
  const std::string scope = server_.ArrangementCacheScope("G");
  ASSERT_TRUE(differential::ArrangementCache::Global()
                  .Stats(scope, analytics::Wcc().cache_tag() + "/w1/c-1/a1")
                  ->resident);
  server_.Stop();
  server_.Stop();  // idempotent
  {
    QueryServerOptions options;
    QueryServer scoped(options);
    ASSERT_TRUE(scoped.AddGraph("G", GenerateUniformGraph(20, 40, 1)).ok());
    ASSERT_TRUE(scoped.Start(0).ok());
    ASSERT_EQ(Query(scoped.port(), "s", "run wcc on G").status_code, 200);
    ASSERT_GE(differential::ArrangementCache::Global().num_entries(), 1u);
  }
  // The destroyed server's entries are invalidated; ours (a different
  // instance prefix) were dropped by our own Stop+destruction path only at
  // destruction, so the surviving entry count excludes the scoped server.
  auto stats = differential::ArrangementCache::Global().Stats(
      scope, analytics::Wcc().cache_tag() + "/w1/c-1/a1");
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->resident) << "Stop() must not drop cache entries; "
                                  "destruction does";
}

}  // namespace
}  // namespace gs::server
