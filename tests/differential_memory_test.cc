// Memory-accounting invariants for the arrangement byte gauges
// (ISSUE satellite: observability numbers must be trustworthy):
//   1. per-arrangement gauges drop to zero once the owning dataflow is
//      destroyed — a leaked gauge would make /metrics report phantom
//      memory forever;
//   2. high-water >= live at every step on every operator;
//   3. compaction monotonically grows reclaimed_bytes and never grows
//      live_bytes;
//   4. serial trace bytes == sum over shards at W ∈ {1, 2, 4} — the
//      accounting is entries × sizeof(Entry), which is partition-
//      independent once a single-version workload is fully compacted.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "differential/differential.h"

namespace gs::differential {
namespace {

using IntPair = std::pair<int64_t, int64_t>;

DataflowOptions Workers(size_t n) {
  DataflowOptions options;
  options.num_workers = n;
  return options;
}

/// Sums every sample of one metric family in Prometheus exposition text.
/// Matches `family{...} value` and `family value` lines only — a family
/// that is a prefix of a longer name (bytes vs bytes_high_water) does not
/// match.
uint64_t SumFamily(const std::string& text, const std::string& family) {
  uint64_t sum = 0;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind(family, 0) != 0 || line.size() <= family.size()) continue;
    const char next = line[family.size()];
    if (next != '{' && next != ' ') continue;
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    sum += std::strtoull(line.c_str() + space + 1, nullptr, 10);
  }
  return sum;
}

/// A two-stage stateful pipeline per shard: a shared arrangement plus a
/// distinct (which owns input + output traces), exercising every gauge the
/// engine maintains.
class ArrangementHarness {
 public:
  explicit ArrangementHarness(size_t num_workers)
      : dataflow_(Workers(num_workers)) {
    inputs_.reserve(num_workers);
    for (size_t w = 0; w < dataflow_.num_workers(); ++w) {
      inputs_.emplace_back(dataflow_.worker(w));
      arranged_.push_back(Arrange(inputs_[w].stream()));
      Distinct(inputs_[w].stream());
    }
  }

  void Send(IntPair data, Diff diff) {
    inputs_[dataflow_.OwnerOfHash(HashValue(data))].Send(std::move(data),
                                                         diff);
  }

  Status Step() { return dataflow_.Step(); }

  ShardedDataflow& dataflow() { return dataflow_; }

  uint64_t ManualArrangeBytes() const {
    uint64_t sum = 0;
    for (const auto& a : arranged_) sum += a.trace()->live_bytes();
    return sum;
  }

 private:
  ShardedDataflow dataflow_;
  std::vector<Input<IntPair>> inputs_;
  std::vector<Arranged<int64_t, int64_t>> arranged_;
};

void SendRandom(ArrangementHarness* h, Rng* rng, int count, bool retracts) {
  for (int i = 0; i < count; ++i) {
    IntPair p{rng->Uniform(0, 48), rng->Uniform(0, 12)};
    h->Send(p, retracts && rng->Bernoulli(0.3) ? -1 : 1);
  }
}

TEST(ArrangementGaugesTest, LiveGaugesReturnToZeroAfterTeardown) {
  auto& registry = metrics::Registry::Global();
  {
    ArrangementHarness harness(2);
    Rng rng(3);
    SendRandom(&harness, &rng, 500, /*retracts=*/false);
    ASSERT_TRUE(harness.Step().ok());

    const std::string text = registry.ExpositionText();
    EXPECT_GT(SumFamily(text, "gs_arrangement_bytes"), 0u);
    EXPECT_GT(SumFamily(text, "gs_arrangement_batches"), 0u);
    // The gauges carry the per-arrangement labels the dashboards key on.
    EXPECT_NE(text.find("gs_arrangement_bytes{"), std::string::npos);
    EXPECT_NE(text.find("op=\"arrange\""), std::string::npos);
  }
  // Teardown must zero the live gauges of every arrangement the harness
  // owned (high-water and reclaimed are historical and may persist).
  const std::string text = registry.ExpositionText();
  EXPECT_EQ(SumFamily(text, "gs_arrangement_bytes"), 0u);
  EXPECT_EQ(SumFamily(text, "gs_arrangement_batches"), 0u);
}

TEST(ArrangementGaugesTest, HighWaterDominatesLiveOnEveryStep) {
  ArrangementHarness harness(2);
  Rng rng(17);
  for (uint32_t version = 0; version < 4; ++version) {
    SendRandom(&harness, &rng, 300, /*retracts=*/version > 0);
    ASSERT_TRUE(harness.Step().ok());
    for (size_t w = 0; w < harness.dataflow().num_workers(); ++w) {
      for (const auto& snap :
           harness.dataflow().worker(w)->CollectOperatorSnapshots()) {
        EXPECT_GE(snap.memory.trace_high_water_bytes,
                  snap.memory.trace_bytes)
            << "op " << snap.name << " shard " << w << " version "
            << version;
      }
    }
  }
}

TEST(TraceCompactionTest, ReclaimGrowsAndLiveNeverGrowsAcrossCompactions) {
  Trace<int64_t, int64_t> trace;
  constexpr int kKeys = 128;
  for (int k = 0; k < kKeys; ++k) trace.Insert(k, 0, Time(0), 1);
  trace.CompactTo(0);
  const size_t consolidated = trace.live_bytes();
  EXPECT_EQ(trace.total_entries(), static_cast<size_t>(kKeys));

  uint64_t reclaimed_prev = trace.reclaimed_bytes();
  for (uint32_t version = 1; version <= 6; ++version) {
    // Rewrite every key's value: the old entry cancels against its
    // retraction once the version seals, so a compacted trace holds
    // exactly one entry per key again.
    for (int k = 0; k < kKeys; ++k) {
      trace.Insert(k, version - 1, Time(version), -1);
      trace.Insert(k, version, Time(version), 1);
    }
    const size_t before = trace.live_bytes();
    trace.CompactTo(version);
    EXPECT_LE(trace.live_bytes(), before) << "version " << version;
    EXPECT_GE(trace.reclaimed_bytes(), reclaimed_prev)
        << "version " << version;
    reclaimed_prev = trace.reclaimed_bytes();
  }
  // Full history rewrite cancels everything but the final value per key:
  // one more compaction round returns the trace to its consolidated size.
  trace.CompactTo(7);
  EXPECT_EQ(trace.live_bytes(), consolidated);
  EXPECT_GT(trace.reclaimed_bytes(), 0u);
  EXPECT_GE(trace.high_water_bytes(), trace.live_bytes());
}

TEST(ArrangementGaugesTest, SerialTraceBytesEqualSumOfShards) {
  // Single-version workload: the first CompactTo after the seal always
  // fully consolidates (everything inserted since the last compaction), so
  // the per-shard entry counts are partition-independent and serial ==
  // sum-of-shards holds exactly. (Multi-version workloads may compact on
  // some shards and not others — amortization is per shard — so only the
  // single-version case admits an exact cross-worker equality.)
  uint64_t expected = 0;
  uint64_t manual_serial = 0;
  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
    ArrangementHarness harness(workers);
    Rng rng(29);
    SendRandom(&harness, &rng, 800, /*retracts=*/false);
    ASSERT_TRUE(harness.Step().ok());

    const uint64_t total =
        harness.dataflow().AggregatedStats().trace_bytes;
    ASSERT_GT(total, 0u);
    if (workers == 1) {
      expected = total;
    } else {
      EXPECT_EQ(total, expected) << "W=" << workers;
    }
    // The shared arrangement alone obeys the same invariant, checked
    // against the traces directly rather than the stats rollup.
    const uint64_t manual = harness.ManualArrangeBytes();
    ASSERT_GT(manual, 0u);
    if (workers == 1) manual_serial = manual;
    EXPECT_EQ(manual, manual_serial) << "W=" << workers;
  }
}

}  // namespace
}  // namespace gs::differential
