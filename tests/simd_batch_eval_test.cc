// Vectorized data plane cross-checks: the dispatched SIMD compare kernels
// against the unconditionally compiled scalar namespace on randomized
// arrays (including NaNs and integer extremes), and the batch predicate
// evaluator against the per-edge scalar compiler on randomized property
// tables with NULL cells, string prefix ties, and tombstoned edges.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <variant>
#include <vector>

#include "common/random.h"
#include "common/simd.h"
#include "graph/graph.h"
#include "graph/mutation.h"
#include "gvdl/batch_eval.h"
#include "gvdl/parser.h"
#include "gvdl/predicate.h"
#include "views/collection.h"
#include "views/ebm.h"

namespace gs {
namespace {

constexpr simd::Cmp kAllOps[] = {simd::Cmp::kEq, simd::Cmp::kNe,
                                 simd::Cmp::kLt, simd::Cmp::kLe,
                                 simd::Cmp::kGt, simd::Cmp::kGe};

const size_t kLengths[] = {0, 1, 7, 63, 64, 65, 127, 128, 1000};

TEST(SimdKernelTest, I64MatchesScalarNamespace) {
  Rng rng(7);
  for (size_t n : kLengths) {
    std::vector<int64_t> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      // Small range forces plenty of equal lanes; sprinkle in extremes.
      a[i] = rng.Uniform(-4, 4);
      b[i] = rng.Uniform(-4, 4);
      if (rng.Bernoulli(0.05)) a[i] = std::numeric_limits<int64_t>::min();
      if (rng.Bernoulli(0.05)) b[i] = std::numeric_limits<int64_t>::max();
    }
    std::vector<uint64_t> got(simd::MaskWords(n) + 1, ~uint64_t{0});
    std::vector<uint64_t> want(simd::MaskWords(n) + 1, ~uint64_t{0});
    for (simd::Cmp op : kAllOps) {
      simd::CmpI64Const(a.data(), n, op, int64_t{2}, got.data());
      simd::scalar::CmpI64Const(a.data(), n, op, int64_t{2}, want.data());
      EXPECT_EQ(got, want) << "I64Const n=" << n << " op=" << int(op);
      simd::CmpI64Pairs(a.data(), b.data(), n, op, got.data());
      simd::scalar::CmpI64Pairs(a.data(), b.data(), n, op, want.data());
      EXPECT_EQ(got, want) << "I64Pairs n=" << n << " op=" << int(op);
    }
  }
}

TEST(SimdKernelTest, U64MatchesScalarNamespace) {
  Rng rng(8);
  for (size_t n : kLengths) {
    std::vector<uint64_t> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      // Values straddling the sign bit exercise the bias trick.
      a[i] = static_cast<uint64_t>(rng.Uniform(-3, 3)) +
             (rng.Bernoulli(0.5) ? (uint64_t{1} << 63) : 0);
      b[i] = static_cast<uint64_t>(rng.Uniform(-3, 3)) +
             (rng.Bernoulli(0.5) ? (uint64_t{1} << 63) : 0);
    }
    std::vector<uint64_t> got(simd::MaskWords(n) + 1, ~uint64_t{0});
    std::vector<uint64_t> want(simd::MaskWords(n) + 1, ~uint64_t{0});
    for (simd::Cmp op : kAllOps) {
      simd::CmpU64Const(a.data(), n, op, uint64_t{1} << 63, got.data());
      simd::scalar::CmpU64Const(a.data(), n, op, uint64_t{1} << 63,
                                want.data());
      EXPECT_EQ(got, want) << "U64Const n=" << n << " op=" << int(op);
      simd::CmpU64Pairs(a.data(), b.data(), n, op, got.data());
      simd::scalar::CmpU64Pairs(a.data(), b.data(), n, op, want.data());
      EXPECT_EQ(got, want) << "U64Pairs n=" << n << " op=" << int(op);
    }
  }
}

TEST(SimdKernelTest, F64MatchesScalarNamespaceIncludingNaN) {
  Rng rng(9);
  const double kNaN = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();
  for (size_t n : kLengths) {
    std::vector<double> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      a[i] = rng.Uniform(-3, 3) * 0.5;
      b[i] = rng.Uniform(-3, 3) * 0.5;
      if (rng.Bernoulli(0.1)) a[i] = kNaN;
      if (rng.Bernoulli(0.1)) b[i] = kNaN;
      if (rng.Bernoulli(0.05)) a[i] = kInf;
      if (rng.Bernoulli(0.05)) b[i] = -kInf;
      if (rng.Bernoulli(0.05)) a[i] = -0.0;
    }
    std::vector<uint64_t> got(simd::MaskWords(n) + 1, ~uint64_t{0});
    std::vector<uint64_t> want(simd::MaskWords(n) + 1, ~uint64_t{0});
    for (simd::Cmp op : kAllOps) {
      simd::CmpF64Const(a.data(), n, op, 0.5, got.data());
      simd::scalar::CmpF64Const(a.data(), n, op, 0.5, want.data());
      EXPECT_EQ(got, want) << "F64Const n=" << n << " op=" << int(op);
      simd::CmpF64Pairs(a.data(), b.data(), n, op, got.data());
      simd::scalar::CmpF64Pairs(a.data(), b.data(), n, op, want.data());
      EXPECT_EQ(got, want) << "F64Pairs n=" << n << " op=" << int(op);
    }
  }
}

TEST(SimdKernelTest, BytesNonZeroMatchesScalarNamespace) {
  Rng rng(10);
  for (size_t n : kLengths) {
    std::vector<uint8_t> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = rng.Bernoulli(0.5) ? static_cast<uint8_t>(rng.Uniform(1, 255))
                                : 0;
    }
    std::vector<uint64_t> got(simd::MaskWords(n) + 1, ~uint64_t{0});
    std::vector<uint64_t> want(simd::MaskWords(n) + 1, ~uint64_t{0});
    simd::BytesNonZero(v.data(), n, got.data());
    simd::scalar::BytesNonZero(v.data(), n, want.data());
    EXPECT_EQ(got, want) << "BytesNonZero n=" << n;
  }
}

TEST(SimdKernelTest, StringPrefixOrdersLikeStringCompare) {
  // On strings whose first 8 bytes differ, the big-endian prefix compares
  // (as unsigned) exactly like the string; equal first 8 bytes give equal
  // prefixes regardless of what follows.
  const std::string samples[] = {"",        "a",        "ab",
                                 "abcdefgh", "abcdefgi", "abcdefghzzz",
                                 "abcdefghaaa", "\xff\xfe", "zzzzzzzzz",
                                 "Zebra",   "zebra"};
  for (const std::string& x : samples) {
    for (const std::string& y : samples) {
      uint64_t px = simd::StringPrefix(x);
      uint64_t py = simd::StringPrefix(y);
      std::string x8 = x.substr(0, 8), y8 = y.substr(0, 8);
      if (x8 == y8) {
        EXPECT_EQ(px, py) << x << " vs " << y;
      } else {
        EXPECT_EQ(px < py, x8 < y8) << x << " vs " << y;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Batch evaluator vs the scalar per-edge compiler.

// A graph with every property type on both tables, NULL cells, and string
// values engineered to collide on their 8-byte prefixes.
PropertyGraph RandomGraph(Rng& rng, size_t num_nodes, size_t num_edges) {
  PropertyGraph g;
  g.AddNodes(num_nodes);
  auto& np = g.node_properties();
  EXPECT_TRUE(np.AddColumn("city", PropertyType::kString).ok());
  EXPECT_TRUE(np.AddColumn("score", PropertyType::kDouble).ok());
  EXPECT_TRUE(np.AddColumn("rank", PropertyType::kInt).ok());
  EXPECT_TRUE(np.AddColumn("flag", PropertyType::kBool).ok());
  const std::string cities[] = {"NY",       "LA",          "prefix88",
                                "prefix88a", "prefix88b",  "prefix88ab",
                                ""};
  auto cell = [&](PropertyValue v) {
    return rng.Bernoulli(0.15) ? PropertyValue::Null() : std::move(v);
  };
  for (size_t i = 0; i < num_nodes; ++i) {
    EXPECT_TRUE(np.AppendRow({cell(PropertyValue(cities[rng.Index(7)])),
                              cell(PropertyValue(rng.Uniform(-3, 3) * 0.5)),
                              cell(PropertyValue(rng.Uniform(-5, 5))),
                              cell(PropertyValue(rng.Bernoulli(0.5)))})
                    .ok());
  }
  auto& ep = g.edge_properties();
  EXPECT_TRUE(ep.AddColumn("duration", PropertyType::kInt).ok());
  EXPECT_TRUE(ep.AddColumn("weight", PropertyType::kDouble).ok());
  EXPECT_TRUE(ep.AddColumn("label", PropertyType::kString).ok());
  EXPECT_TRUE(ep.AddColumn("active", PropertyType::kBool).ok());
  const std::string labels[] = {"call", "sms", "prefix88", "prefix88x", ""};
  for (size_t i = 0; i < num_edges; ++i) {
    EXPECT_TRUE(
        g.AddEdge(rng.Index(num_nodes), rng.Index(num_nodes)).ok());
    EXPECT_TRUE(ep.AppendRow({cell(PropertyValue(rng.Uniform(0, 10))),
                              cell(PropertyValue(rng.UniformReal(0, 1))),
                              cell(PropertyValue(labels[rng.Index(5)])),
                              cell(PropertyValue(rng.Bernoulli(0.5)))})
                    .ok());
  }
  return g;
}

// A random GVDL predicate over the columns of RandomGraph, as source text.
std::string RandomPredicate(Rng& rng, int depth) {
  static const char* ops[] = {"=", "!=", "<", "<=", ">", ">="};
  if (depth > 0 && rng.Bernoulli(0.6)) {
    std::string a = RandomPredicate(rng, depth - 1);
    std::string b = RandomPredicate(rng, depth - 1);
    switch (rng.Index(3)) {
      case 0:
        return "(" + a + " and " + b + ")";
      case 1:
        return "(" + a + " or " + b + ")";
      default:
        return "not (" + a + ")";
    }
  }
  const char* op = ops[rng.Index(6)];
  switch (rng.Index(7)) {
    case 0:
      return std::string("duration ") + op + " " +
             std::to_string(rng.Uniform(0, 10));
    case 1:
      return std::string("weight ") + op + " 0.5";
    case 2: {
      const char* vals[] = {"'call'", "'prefix88'", "'prefix88x'", "''"};
      return std::string("label ") + op + " " + vals[rng.Index(4)];
    }
    case 3: {
      const char* side = rng.Bernoulli(0.5) ? "src" : "dst";
      const char* vals[] = {"'NY'", "'prefix88'", "'prefix88a'"};
      return std::string(side) + ".city " + op + " " + vals[rng.Index(3)];
    }
    case 4: {
      const char* side = rng.Bernoulli(0.5) ? "src" : "dst";
      return std::string(side) + ".score " + op + " 0.5";
    }
    case 5:
      return std::string("src.rank ") + op + " dst.rank";
    default:
      return std::string("src.score ") + op + " duration";
  }
}

TEST(BatchEvalTest, MatchesScalarCompilerOnRandomPredicates) {
  Rng rng(11);
  PropertyGraph g = RandomGraph(rng, 48, 500);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = RandomPredicate(rng, 3);
    auto expr = gvdl::ParsePredicate(text);
    ASSERT_TRUE(expr.ok()) << text;
    auto scalar = gvdl::CompiledEdgePredicate::Compile(*expr, g);
    auto batch = gvdl::BatchPredicateProgram::Compile(*expr, g);
    ASSERT_TRUE(scalar.ok()) << text << ": " << scalar.status().ToString();
    ASSERT_TRUE(batch.ok()) << text << ": " << batch.status().ToString();
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      ASSERT_EQ(batch->EvalEdge(g, e), scalar->Evaluate(e))
          << "edge " << e << " predicate: " << text;
    }
  }
}

TEST(BatchEvalTest, RejectsExactlyWhatScalarCompilerRejects) {
  Rng rng(12);
  PropertyGraph g = RandomGraph(rng, 8, 16);
  const char* bad[] = {
      "nosuchcolumn > 1",        "src.nosuch = 'x'",
      "duration > 'str'",        "label < 5",
      "src.city = dst.score",    "active > 1.5",
      "duration = src.city",
  };
  for (const char* text : bad) {
    auto expr = gvdl::ParsePredicate(text);
    ASSERT_TRUE(expr.ok()) << text;
    auto scalar = gvdl::CompiledEdgePredicate::Compile(*expr, g);
    auto batch = gvdl::BatchPredicateProgram::Compile(*expr, g);
    EXPECT_EQ(scalar.ok(), batch.ok()) << text;
    if (!scalar.ok() && !batch.ok()) {
      EXPECT_EQ(scalar.status().ToString(), batch.status().ToString()) << text;
    }
  }
  // Null literals are accepted by both (and always compare false).
  auto expr = gvdl::ParsePredicate("duration = null");
  if (expr.ok()) {
    auto scalar = gvdl::CompiledEdgePredicate::Compile(*expr, g);
    auto batch = gvdl::BatchPredicateProgram::Compile(*expr, g);
    EXPECT_EQ(scalar.ok(), batch.ok());
  }
}

TEST(BatchEvalTest, EbmComputeMasksTombstonedEdges) {
  Rng rng(13);
  PropertyGraph g = RandomGraph(rng, 32, 300);
  // Tombstone a random fifth of the edges.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (rng.Bernoulli(0.2)) EXPECT_TRUE(g.RemoveEdge(e).ok());
  }
  std::vector<std::string> texts;
  std::vector<gvdl::ExprPtr> exprs;
  for (int v = 0; v < 9; ++v) {
    texts.push_back(RandomPredicate(rng, 2));
    auto expr = gvdl::ParsePredicate(texts.back());
    ASSERT_TRUE(expr.ok()) << texts.back();
    exprs.push_back(*expr);
  }
  auto ebm = views::EdgeBooleanMatrix::Compute(g, exprs, nullptr);
  ASSERT_TRUE(ebm.ok()) << ebm.status().ToString();
  for (size_t v = 0; v < exprs.size(); ++v) {
    auto scalar = gvdl::CompiledEdgePredicate::Compile(exprs[v], g);
    ASSERT_TRUE(scalar.ok());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      EXPECT_EQ(ebm->Get(e, v), g.edge_alive(e) && scalar->Evaluate(e))
          << "view " << v << " (" << texts[v] << ") edge " << e;
    }
  }
}

TEST(BatchEvalTest, WordPathMaintenanceMatchesRematerialization) {
  Rng rng(14);
  PropertyGraph g = RandomGraph(rng, 32, 300);
  auto def = gvdl::Parse(
      "create view collection c on g\n"
      "[a: duration > 3 and src.city = 'prefix88'],\n"
      "[b: weight <= 0.5 or not (dst.score > 0.5)],\n"
      "[c: label = 'prefix88x' or src.rank >= dst.rank]");
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  const auto* cdef = std::get_if<gvdl::ViewCollectionDef>(&*def);
  ASSERT_NE(cdef, nullptr);
  auto mc = views::MaterializeCollection(g, *cdef, {});
  ASSERT_TRUE(mc.ok()) << mc.status().ToString();
  ASSERT_FALSE(mc->programs.empty());

  // Mutate: property flips, edge adds, edge removes — then maintain.
  MutationBatch batch;
  for (int i = 0; i < 20; ++i) {
    batch.push_back(Mutation::SetEdgeProperty(
        rng.Index(g.num_edges()), "duration",
        PropertyValue(rng.Uniform(0, 10))));
    batch.push_back(Mutation::SetNodeProperty(
        rng.Index(g.num_nodes()), "city", PropertyValue("prefix88")));
  }
  for (int i = 0; i < 10; ++i) {
    batch.push_back(Mutation::AddEdge(rng.Index(g.num_nodes()),
                                      rng.Index(g.num_nodes()), {}));
  }
  batch.push_back(Mutation::RemoveEdge(rng.Index(g.num_edges())));
  MutationEffects fx;
  ASSERT_TRUE(ApplyMutationBatch(&g, batch, &fx).ok());
  ASSERT_TRUE(views::UpdateCollectionForMutations(&*mc, g, fx.touched_edges)
                  .ok());

  auto fresh = views::MaterializeCollection(g, *cdef, {});
  ASSERT_TRUE(fresh.ok());
  ASSERT_EQ(mc->ebm->num_edges(), fresh->ebm->num_edges());
  for (size_t v = 0; v < mc->ebm->num_views(); ++v) {
    for (EdgeId e = 0; e < mc->ebm->num_edges(); ++e) {
      ASSERT_EQ(mc->ebm->Get(e, v), fresh->ebm->Get(e, v))
          << "view " << v << " edge " << e;
    }
  }
  EXPECT_EQ(mc->view_sizes, fresh->view_sizes);
  EXPECT_EQ(mc->total_diffs, fresh->total_diffs);
}

}  // namespace
}  // namespace gs
