// Status server end-to-end, over real sockets: builtin endpoint payloads,
// HTTP error paths, live scrapes while a sharded 10-view WCC run is in
// flight, and the /statusz arrangement byte gauges cross-checked against a
// manual spine-size computation (they must agree exactly — the accounting
// is entry counts × sizeof(Entry), not malloc capacity).
#include "server/status_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/algorithms.h"
#include "api/graphsurge.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/timeseries.h"
#include "common/watchdog.h"
#include "differential/differential.h"
#include "graph/generators.h"
#include "json_lite.h"
#include "test_util.h"

namespace gs {
namespace {

using differential::Arrange;
using differential::Arranged;
using differential::DataflowOptions;
using differential::Input;
using differential::ShardedDataflow;
using testutil::ExpectHttpConformance;
using testutil::HttpFetch;
using testutil::HttpGet;
using testutil::HttpPipeline;
using testutil::HttpReply;
using IntPair = std::pair<int64_t, int64_t>;

json_lite::Value ParseJsonOrFail(const std::string& text) {
  json_lite::Value value;
  std::string error;
  EXPECT_TRUE(json_lite::Parse(text, &value, &error))
      << error << "\npayload:\n"
      << text.substr(0, 2000);
  return value;
}

class StatusServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(server_.Start(0).ok());
    ASSERT_TRUE(server_.running());
    ASSERT_NE(server_.port(), 0);
  }

  server::StatusServer server_;
};

TEST_F(StatusServerTest, HealthzAnswersOk) {
  HttpReply reply = HttpGet(server_.port(), "/healthz");
  EXPECT_EQ(reply.status_code, 200);
  EXPECT_EQ(reply.body, "ok\n");
  EXPECT_NE(reply.raw.find("Connection: close"), std::string::npos);
}

TEST_F(StatusServerTest, MetricsServesExpositionText) {
  // Touch a counter so the registry is non-empty regardless of test order.
  metrics::Registry::Global().GetCounter("gs_server_test_probe")->Increment();
  HttpReply reply = HttpGet(server_.port(), "/metrics");
  EXPECT_EQ(reply.status_code, 200);
  EXPECT_NE(reply.body.find("gs_"), std::string::npos);
  EXPECT_NE(reply.raw.find("text/plain; version=0.0.4"), std::string::npos);
}

TEST_F(StatusServerTest, JsonEndpointsParse) {
  for (const char* path : {"/varz", "/statusz", "/tracez"}) {
    HttpReply reply = HttpGet(server_.port(), path);
    EXPECT_EQ(reply.status_code, 200) << path;
    ParseJsonOrFail(reply.body);
  }
}

TEST_F(StatusServerTest, WorkerszServesSchedulingReport) {
  // Keep a sharded dataflow alive across the scrape so it renders under
  // "dataflows" with real attribution.
  differential::DataflowOptions options;
  options.num_workers = 3;
  differential::ShardedDataflow sharded(options);
  std::vector<differential::Input<std::pair<uint64_t, int64_t>>> inputs;
  for (size_t w = 0; w < sharded.num_workers(); ++w) {
    inputs.emplace_back(sharded.worker(w));
    differential::Capture(differential::ReduceMin(inputs[w].stream()));
  }
  for (int64_t i = 0; i < 3000; ++i) {
    uint64_t key = static_cast<uint64_t>(i) % 64;
    inputs[sharded.OwnerOfHash(HashValue(key))].Send({key, i}, 1);
  }
  ASSERT_TRUE(sharded.Step().ok());

  HttpReply reply = HttpGet(server_.port(), "/workersz");
  ASSERT_EQ(reply.status_code, 200);
  EXPECT_NE(reply.raw.find("application/json"), std::string::npos);
  json_lite::Value doc = ParseJsonOrFail(reply.body);
  const json_lite::Value* dataflows = doc.Get("dataflows");
  ASSERT_NE(dataflows, nullptr);
  ASSERT_TRUE(dataflows->is_array());
  bool found = false;
  for (const json_lite::Value& df : dataflows->array) {
    if (df.Get("name") == nullptr ||
        df.Get("name")->string != sharded.profile().name()) {
      continue;
    }
    found = true;
    EXPECT_EQ(df.Get("workers")->number, 3);
    const json_lite::Value* attribution = df.Get("attribution");
    ASSERT_NE(attribution, nullptr);
    ASSERT_EQ(attribution->array.size(), 3u);
    for (const json_lite::Value& worker : attribution->array) {
      // The five exclusive states tile the worker's accounted time.
      const double sum = worker.Get("busy_ns")->number +
                         worker.Get("exchange_ns")->number +
                         worker.Get("barrier_ns")->number +
                         worker.Get("seal_ns")->number +
                         worker.Get("idle_ns")->number;
      EXPECT_DOUBLE_EQ(sum, worker.Get("total_ns")->number);
      EXPECT_GT(worker.Get("total_ns")->number, 0.0);
    }
    EXPECT_NE(df.Get("skew"), nullptr);
  }
  EXPECT_TRUE(found) << reply.body;
  const json_lite::Value* summary = doc.Get("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_GE(summary->Get("steps")->number, 1);
}

TEST_F(StatusServerTest, StatuszWarnsWhenTimeseriesDropsSeries) {
  metrics::Gauge* dropped = metrics::Registry::Global().GetGauge(
      "gs_timeseries_dropped_series");
  dropped->Set(2);
  HttpReply reply = HttpGet(server_.port(), "/statusz");
  ASSERT_EQ(reply.status_code, 200);
  json_lite::Value doc = ParseJsonOrFail(reply.body);
  const json_lite::Value* warnings = doc.Get("warnings");
  ASSERT_NE(warnings, nullptr) << reply.body;
  ASSERT_FALSE(warnings->array.empty());
  EXPECT_NE(warnings->array[0].string.find("dropped 2 series"),
            std::string::npos)
      << warnings->array[0].string;

  // With the gauge back at zero the banner disappears.
  dropped->Set(0);
  json_lite::Value clean =
      ParseJsonOrFail(HttpGet(server_.port(), "/statusz").body);
  EXPECT_EQ(clean.Get("warnings"), nullptr);
}

TEST_F(StatusServerTest, IndexListsRegisteredPaths) {
  HttpReply reply = HttpGet(server_.port(), "/");
  EXPECT_EQ(reply.status_code, 200);
  EXPECT_NE(reply.body.find("/healthz"), std::string::npos);
  EXPECT_NE(reply.body.find("/metrics"), std::string::npos);
  EXPECT_NE(reply.body.find("/statusz"), std::string::npos);
}

TEST_F(StatusServerTest, UnknownPathIs404) {
  EXPECT_EQ(HttpGet(server_.port(), "/nonexistent").status_code, 404);
}

TEST_F(StatusServerTest, QueryStringIsStripped) {
  EXPECT_EQ(HttpGet(server_.port(), "/healthz?verbose=1").body, "ok\n");
}

TEST_F(StatusServerTest, NonGetIs405) {
  HttpReply reply =
      HttpFetch(server_.port(),
                "POST /healthz HTTP/1.1\r\nHost: x\r\n"
                "Connection: close\r\nContent-Length: 0\r\n\r\n");
  EXPECT_EQ(reply.status_code, 405);
}

TEST_F(StatusServerTest, MalformedRequestIs400) {
  EXPECT_EQ(HttpFetch(server_.port(), "not-http\r\n\r\n").status_code, 400);
}

TEST_F(StatusServerTest, ProtocolConformance) {
  // The shared HTTP/1.1 conformance suite (tests/test_util.h): pipelining,
  // Content-Length framing rejections, chunked rejection, malformed lines.
  ExpectHttpConformance(server_.port());
}

TEST_F(StatusServerTest, PipelinedRequestsAnswerInOrder) {
  // Distinct paths prove ordering, not just counting: the index, a
  // 404, and /healthz, all on one connection.
  std::vector<HttpReply> replies = HttpPipeline(
      server_.port(),
      {"GET / HTTP/1.1\r\nHost: x\r\n\r\n",
       "GET /nonexistent HTTP/1.1\r\nHost: x\r\n\r\n",
       "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"});
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(replies[0].status_code, 200);
  EXPECT_NE(replies[0].body.find("/healthz"), std::string::npos);
  EXPECT_EQ(replies[1].status_code, 404);
  EXPECT_EQ(replies[2].status_code, 200);
  EXPECT_EQ(replies[2].body, "ok\n");
}

TEST_F(StatusServerTest, HeadOmitsBody) {
  HttpReply reply = HttpFetch(server_.port(),
                              "HEAD /healthz HTTP/1.1\r\nHost: x\r\n"
                              "Connection: close\r\n\r\n");
  EXPECT_EQ(reply.status_code, 200);
  EXPECT_TRUE(reply.body.empty());
  // The advertised length still describes the GET body.
  EXPECT_NE(reply.raw.find("Content-Length: 3"), std::string::npos);
}

TEST_F(StatusServerTest, CustomHandlerAndReplacement) {
  server_.Handle("/custom", [] {
    server::HttpResponse r;
    r.body = "v1";
    return r;
  });
  EXPECT_EQ(HttpGet(server_.port(), "/custom").body, "v1");
  server_.Handle("/custom", [] {
    server::HttpResponse r;
    r.body = "v2";
    return r;
  });
  EXPECT_EQ(HttpGet(server_.port(), "/custom").body, "v2");
}

TEST_F(StatusServerTest, TimeseriezServesStoreJson) {
  timeseries::Store::Global().Record("gs_server_test_series",
                                     timeseries::NowMillis(), 3.0);
  HttpReply reply = HttpGet(server_.port(), "/timeseriez");
  EXPECT_EQ(reply.status_code, 200);
  EXPECT_NE(reply.raw.find("application/json"), std::string::npos);
  json_lite::Value doc = ParseJsonOrFail(reply.body);
  const json_lite::Value* series = doc.Get("series");
  ASSERT_NE(series, nullptr);
  EXPECT_NE(series->Get("gs_server_test_series"), nullptr);
}

TEST_F(StatusServerTest, UnhealthyHealthzIs503WithConsistentHead) {
  // Make the global watchdog genuinely unhealthy: an epoch advance marked
  // in progress since early in the process's life, with a 10ms deadline.
  watchdog::WatchdogOptions options;
  options.cadence_ms = 3600 * 1000;  // evaluations driven manually below
  options.epoch_advance_deadline_ms = 10;
  options.write_flight_dumps = false;
  ASSERT_TRUE(watchdog::Watchdog::Global().Start(options).ok());
  metrics::Gauge* started = metrics::Registry::Global().GetGauge(
      "gs_live_epoch_advance_started_ms");
  started->Set(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  watchdog::Watchdog::Global().EvaluateNow();

  HttpReply get = HttpGet(server_.port(), "/healthz");
  EXPECT_EQ(get.status_code, 503);
  EXPECT_NE(get.raw.find("application/json"), std::string::npos);
  json_lite::Value verdict = ParseJsonOrFail(get.body);
  EXPECT_FALSE(verdict.Get("healthy")->boolean);
  const json_lite::Value* violated = verdict.Get("violated_rules");
  ASSERT_NE(violated, nullptr);
  ASSERT_EQ(violated->array.size(), 1u);
  EXPECT_EQ(violated->array[0].string, "epoch_advance_deadline");

  // HEAD mirrors the status code and advertises the GET body's length
  // without sending it.
  HttpReply head = HttpFetch(server_.port(),
                             "HEAD /healthz HTTP/1.1\r\nHost: x\r\n"
                             "Connection: close\r\n\r\n");
  EXPECT_EQ(head.status_code, 503);
  EXPECT_TRUE(head.body.empty());
  EXPECT_NE(head.raw.find("Content-Length: " +
                          std::to_string(get.body.size())),
            std::string::npos)
      << head.raw;

  // Heal and verify the plain contract returns.
  started->Set(0);
  watchdog::Watchdog::Global().EvaluateNow();
  EXPECT_EQ(HttpGet(server_.port(), "/healthz").body, "ok\n");
  watchdog::Watchdog::Global().Stop();
}

TEST_F(StatusServerTest, OversizedRequestHeadIs400) {
  // Drive ServeConnection directly over a socketpair: a request line that
  // hits the head cap without ever terminating must be rejected, not
  // dispatched as a truncated target.
  int pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  std::string oversized = "GET /" + std::string(10000, 'a');
  size_t sent = 0;
  while (sent < oversized.size()) {
    ssize_t n = ::send(pair[0], oversized.data() + sent,
                       oversized.size() - sent, 0);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }
  server_.ServeConnection(pair[1]);
  ::close(pair[1]);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(pair[0], buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(pair[0]);
  EXPECT_EQ(response.rfind("HTTP/1.1 400", 0), 0u) << response;
  EXPECT_NE(response.find("request head too large"), std::string::npos);
}

TEST(StatusServerTimeoutTest, SlowPartialRequestHitsReadTimeout) {
  server::StatusServer server;
  server.set_read_timeout_ms(200);
  ASSERT_TRUE(server.Start(0).ok());

  const auto start = std::chrono::steady_clock::now();
  // A client that sends half a request line and then goes silent: the
  // receive timeout must end the read, and the truncated line is rejected.
  HttpReply reply = HttpFetch(server.port(), "GET /health");
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_EQ(reply.status_code, 400);
  // Proves the 200ms setting took effect (the default would be 5000ms).
  EXPECT_GE(elapsed, 150);
  EXPECT_LT(elapsed, 3000);
}

TEST(StatusServerTeardownTest, ConcurrentScrapesDuringTeardownAreSafe) {
  auto server = std::make_unique<server::StatusServer>();
  ASSERT_TRUE(server->Start(0).ok());
  const uint16_t port = server->port();

  // Hammer the server from several threads while the main thread tears it
  // down mid-flight. Requests racing the shutdown may fail (refused
  // connections return status 0) — the invariant is no crash, no hang, and
  // well-formed responses for every request that did get served.
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 4; ++t) {
    scrapers.emplace_back([port] {
      for (int i = 0; i < 25; ++i) {
        for (const char* path : {"/metrics", "/varz"}) {
          HttpReply reply = HttpGet(port, path);
          if (reply.status_code != 0) {
            EXPECT_EQ(reply.status_code, 200) << path;
          }
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server->Stop();
  EXPECT_FALSE(server->running());
  server.reset();
  for (std::thread& t : scrapers) t.join();
}

TEST_F(StatusServerTest, StopIsIdempotentAndRestartable) {
  server_.Stop();
  server_.Stop();
  EXPECT_FALSE(server_.running());
  ASSERT_TRUE(server_.Start(0).ok());
  EXPECT_EQ(HttpGet(server_.port(), "/healthz").status_code, 200);
}

TEST(StatusServerStartTest, SecondStartOnSameInstanceFails) {
  server::StatusServer server;
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_FALSE(server.Start(0).ok());
}

// Sums `trace_bytes` over the operators of one rendered dataflow status
// object, restricted to operators whose name matches `op_name` (empty
// matches all).
uint64_t SumOperatorTraceBytes(const json_lite::Value& status,
                               const std::string& op_name) {
  uint64_t sum = 0;
  const json_lite::Value* ops = status.Get("operators");
  EXPECT_NE(ops, nullptr);
  if (ops == nullptr || !ops->is_array()) return 0;
  for (const json_lite::Value& op : ops->array) {
    const json_lite::Value* name = op.Get("name");
    const json_lite::Value* bytes = op.Get("trace_bytes");
    if (name == nullptr || bytes == nullptr) continue;
    if (!op_name.empty() && name->string != op_name) continue;
    sum += static_cast<uint64_t>(bytes->number);
  }
  return sum;
}

// The acceptance check from the issue: the arrangement byte gauges served
// by /statusz must agree with a manual spine-size computation. Because the
// accounting is deterministic (entries × sizeof(Entry)), the agreement is
// exact, not merely within tolerance.
TEST(StatusServerStatuszTest, ArrangementBytesMatchManualSpineComputation) {
  DataflowOptions options;
  options.num_workers = 2;
  ShardedDataflow dataflow(options);
  std::vector<Input<IntPair>> inputs;
  std::vector<Arranged<int64_t, int64_t>> arranged;
  inputs.reserve(options.num_workers);
  for (size_t w = 0; w < dataflow.num_workers(); ++w) {
    inputs.emplace_back(dataflow.worker(w));
    arranged.push_back(Arrange(inputs[w].stream()));
  }
  Rng rng(7);
  for (int i = 0; i < 600; ++i) {
    IntPair p{rng.Uniform(0, 64), rng.Uniform(0, 16)};
    inputs[dataflow.OwnerOfHash(HashValue(p))].Send(p, 1);
  }
  ASSERT_TRUE(dataflow.Step().ok());

  // Manual computation straight from the shared traces.
  uint64_t manual = 0;
  for (const auto& a : arranged) manual += a.trace()->live_bytes();
  ASSERT_GT(manual, 0u);

  // The rendered snapshot must carry the same number...
  json_lite::Value status = ParseJsonOrFail(dataflow.RenderStatusJson());
  EXPECT_EQ(SumOperatorTraceBytes(status, "arrange"), manual);

  // ...and so must the payload served over HTTP, which goes through the
  // introspect registry.
  server::StatusServer server;
  ASSERT_TRUE(server.Start(0).ok());
  HttpReply reply = HttpGet(server.port(), "/statusz");
  ASSERT_EQ(reply.status_code, 200);
  json_lite::Value statusz = ParseJsonOrFail(reply.body);
  const json_lite::Value* sources = statusz.Get("sources");
  ASSERT_NE(sources, nullptr);
  ASSERT_TRUE(sources->is_object());
  bool found = false;
  for (const auto& [name, value] : sources->object) {
    if (name.rfind("dataflow-", 0) != 0) continue;
    if (!value.is_object() || value.Get("operators") == nullptr) continue;
    if (SumOperatorTraceBytes(value, "arrange") != manual) continue;
    found = true;
  }
  EXPECT_TRUE(found)
      << "no /statusz source reported the expected arrangement bytes:\n"
      << reply.body.substr(0, 2000);
}

// Live-run scrape, the issue's acceptance scenario: a 10-view collection
// runs WCC at W=4 while this thread hammers every endpoint from outside.
// Every payload must stay well-formed at every instant of the run.
TEST(StatusServerLiveTest, EndpointsStayValidDuringShardedWccRun) {
  GraphsurgeOptions options;
  options.num_workers = 4;
  Graphsurge system(options);
  ASSERT_TRUE(
      system.AddGraph("G", GenerateUniformGraph(1200, 4800, 11)).ok());

  std::vector<std::string> names;
  std::vector<std::function<bool(EdgeId)>> predicates;
  for (int v = 0; v < 10; ++v) {
    names.push_back("v" + std::to_string(v));
    // Growing nested subsets, the paper's canonical collection shape.
    predicates.push_back([v](EdgeId e) {
      return static_cast<int>(e % 12) <= v + 2;
    });
  }
  ASSERT_TRUE(system.CreateCollection("C", "G", names, predicates).ok());

  ASSERT_TRUE(system.StartStatusServer(0).ok());
  const uint16_t port = server::StatusServer::Global().port();
  ASSERT_NE(port, 0);

  std::atomic<bool> done{false};
  Status run_status = Status::Ok();
  std::thread runner([&] {
    analytics::Wcc wcc;
    views::ExecutionOptions opts;
    auto result = system.RunComputation(wcc, "C", opts);
    run_status = result.status();
    done.store(true, std::memory_order_release);
  });

  int scrapes = 0;
  // Scrape continuously while the run is in flight, and in any case at
  // least three full rounds so the assertions run even if the computation
  // finishes before the first scrape lands.
  while (!done.load(std::memory_order_acquire) || scrapes < 3) {
    EXPECT_EQ(HttpGet(port, "/healthz").body, "ok\n");
    EXPECT_NE(HttpGet(port, "/metrics").body.find("gs_"), std::string::npos);
    for (const char* path : {"/varz", "/statusz", "/tracez"}) {
      HttpReply reply = HttpGet(port, path);
      EXPECT_EQ(reply.status_code, 200) << path;
      ParseJsonOrFail(reply.body);
    }
    ++scrapes;
  }
  runner.join();
  ASSERT_TRUE(run_status.ok()) << run_status.ToString();
  EXPECT_GE(scrapes, 3);

  // After the run, /profilez serves this system's per-view table.
  HttpReply profile = HttpGet(port, "/profilez");
  EXPECT_EQ(profile.status_code, 200);
  EXPECT_FALSE(profile.body.empty());
  EXPECT_NE(profile.body.find("view"), std::string::npos) << profile.body;
}

}  // namespace
}  // namespace gs
