// Status server end-to-end, over real sockets: builtin endpoint payloads,
// HTTP error paths, live scrapes while a sharded 10-view WCC run is in
// flight, and the /statusz arrangement byte gauges cross-checked against a
// manual spine-size computation (they must agree exactly — the accounting
// is entry counts × sizeof(Entry), not malloc capacity).
#include "server/status_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/algorithms.h"
#include "api/graphsurge.h"
#include "common/metrics.h"
#include "common/random.h"
#include "differential/differential.h"
#include "graph/generators.h"
#include "json_lite.h"

namespace gs {
namespace {

using differential::Arrange;
using differential::Arranged;
using differential::DataflowOptions;
using differential::Input;
using differential::ShardedDataflow;
using IntPair = std::pair<int64_t, int64_t>;

struct HttpReply {
  int status_code = 0;
  std::string body;
  std::string raw;
};

/// One request, read to EOF (the server always closes the connection).
HttpReply HttpFetch(uint16_t port, const std::string& request) {
  HttpReply reply;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return reply;
  }
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    reply.raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (reply.raw.rfind("HTTP/1.1 ", 0) == 0 && reply.raw.size() >= 12) {
    reply.status_code = std::atoi(reply.raw.c_str() + 9);
  }
  size_t header_end = reply.raw.find("\r\n\r\n");
  if (header_end != std::string::npos) {
    reply.body = reply.raw.substr(header_end + 4);
  }
  return reply;
}

HttpReply HttpGet(uint16_t port, const std::string& path) {
  return HttpFetch(port, "GET " + path +
                             " HTTP/1.1\r\nHost: localhost\r\n"
                             "Connection: close\r\n\r\n");
}

json_lite::Value ParseJsonOrFail(const std::string& text) {
  json_lite::Value value;
  std::string error;
  EXPECT_TRUE(json_lite::Parse(text, &value, &error))
      << error << "\npayload:\n"
      << text.substr(0, 2000);
  return value;
}

class StatusServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(server_.Start(0).ok());
    ASSERT_TRUE(server_.running());
    ASSERT_NE(server_.port(), 0);
  }

  server::StatusServer server_;
};

TEST_F(StatusServerTest, HealthzAnswersOk) {
  HttpReply reply = HttpGet(server_.port(), "/healthz");
  EXPECT_EQ(reply.status_code, 200);
  EXPECT_EQ(reply.body, "ok\n");
  EXPECT_NE(reply.raw.find("Connection: close"), std::string::npos);
}

TEST_F(StatusServerTest, MetricsServesExpositionText) {
  // Touch a counter so the registry is non-empty regardless of test order.
  metrics::Registry::Global().GetCounter("gs_server_test_probe")->Increment();
  HttpReply reply = HttpGet(server_.port(), "/metrics");
  EXPECT_EQ(reply.status_code, 200);
  EXPECT_NE(reply.body.find("gs_"), std::string::npos);
  EXPECT_NE(reply.raw.find("text/plain; version=0.0.4"), std::string::npos);
}

TEST_F(StatusServerTest, JsonEndpointsParse) {
  for (const char* path : {"/varz", "/statusz", "/tracez"}) {
    HttpReply reply = HttpGet(server_.port(), path);
    EXPECT_EQ(reply.status_code, 200) << path;
    ParseJsonOrFail(reply.body);
  }
}

TEST_F(StatusServerTest, IndexListsRegisteredPaths) {
  HttpReply reply = HttpGet(server_.port(), "/");
  EXPECT_EQ(reply.status_code, 200);
  EXPECT_NE(reply.body.find("/healthz"), std::string::npos);
  EXPECT_NE(reply.body.find("/metrics"), std::string::npos);
  EXPECT_NE(reply.body.find("/statusz"), std::string::npos);
}

TEST_F(StatusServerTest, UnknownPathIs404) {
  EXPECT_EQ(HttpGet(server_.port(), "/nonexistent").status_code, 404);
}

TEST_F(StatusServerTest, QueryStringIsStripped) {
  EXPECT_EQ(HttpGet(server_.port(), "/healthz?verbose=1").body, "ok\n");
}

TEST_F(StatusServerTest, NonGetIs405) {
  HttpReply reply =
      HttpFetch(server_.port(),
                "POST /healthz HTTP/1.1\r\nHost: x\r\n"
                "Connection: close\r\nContent-Length: 0\r\n\r\n");
  EXPECT_EQ(reply.status_code, 405);
}

TEST_F(StatusServerTest, MalformedRequestIs400) {
  EXPECT_EQ(HttpFetch(server_.port(), "not-http\r\n\r\n").status_code, 400);
}

TEST_F(StatusServerTest, HeadOmitsBody) {
  HttpReply reply = HttpFetch(server_.port(),
                              "HEAD /healthz HTTP/1.1\r\nHost: x\r\n"
                              "Connection: close\r\n\r\n");
  EXPECT_EQ(reply.status_code, 200);
  EXPECT_TRUE(reply.body.empty());
  // The advertised length still describes the GET body.
  EXPECT_NE(reply.raw.find("Content-Length: 3"), std::string::npos);
}

TEST_F(StatusServerTest, CustomHandlerAndReplacement) {
  server_.Handle("/custom", [] {
    server::HttpResponse r;
    r.body = "v1";
    return r;
  });
  EXPECT_EQ(HttpGet(server_.port(), "/custom").body, "v1");
  server_.Handle("/custom", [] {
    server::HttpResponse r;
    r.body = "v2";
    return r;
  });
  EXPECT_EQ(HttpGet(server_.port(), "/custom").body, "v2");
}

TEST_F(StatusServerTest, StopIsIdempotentAndRestartable) {
  server_.Stop();
  server_.Stop();
  EXPECT_FALSE(server_.running());
  ASSERT_TRUE(server_.Start(0).ok());
  EXPECT_EQ(HttpGet(server_.port(), "/healthz").status_code, 200);
}

TEST(StatusServerStartTest, SecondStartOnSameInstanceFails) {
  server::StatusServer server;
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_FALSE(server.Start(0).ok());
}

// Sums `trace_bytes` over the operators of one rendered dataflow status
// object, restricted to operators whose name matches `op_name` (empty
// matches all).
uint64_t SumOperatorTraceBytes(const json_lite::Value& status,
                               const std::string& op_name) {
  uint64_t sum = 0;
  const json_lite::Value* ops = status.Get("operators");
  EXPECT_NE(ops, nullptr);
  if (ops == nullptr || !ops->is_array()) return 0;
  for (const json_lite::Value& op : ops->array) {
    const json_lite::Value* name = op.Get("name");
    const json_lite::Value* bytes = op.Get("trace_bytes");
    if (name == nullptr || bytes == nullptr) continue;
    if (!op_name.empty() && name->string != op_name) continue;
    sum += static_cast<uint64_t>(bytes->number);
  }
  return sum;
}

// The acceptance check from the issue: the arrangement byte gauges served
// by /statusz must agree with a manual spine-size computation. Because the
// accounting is deterministic (entries × sizeof(Entry)), the agreement is
// exact, not merely within tolerance.
TEST(StatusServerStatuszTest, ArrangementBytesMatchManualSpineComputation) {
  DataflowOptions options;
  options.num_workers = 2;
  ShardedDataflow dataflow(options);
  std::vector<Input<IntPair>> inputs;
  std::vector<Arranged<int64_t, int64_t>> arranged;
  inputs.reserve(options.num_workers);
  for (size_t w = 0; w < dataflow.num_workers(); ++w) {
    inputs.emplace_back(dataflow.worker(w));
    arranged.push_back(Arrange(inputs[w].stream()));
  }
  Rng rng(7);
  for (int i = 0; i < 600; ++i) {
    IntPair p{rng.Uniform(0, 64), rng.Uniform(0, 16)};
    inputs[dataflow.OwnerOfHash(HashValue(p))].Send(p, 1);
  }
  ASSERT_TRUE(dataflow.Step().ok());

  // Manual computation straight from the shared traces.
  uint64_t manual = 0;
  for (const auto& a : arranged) manual += a.trace()->live_bytes();
  ASSERT_GT(manual, 0u);

  // The rendered snapshot must carry the same number...
  json_lite::Value status = ParseJsonOrFail(dataflow.RenderStatusJson());
  EXPECT_EQ(SumOperatorTraceBytes(status, "arrange"), manual);

  // ...and so must the payload served over HTTP, which goes through the
  // introspect registry.
  server::StatusServer server;
  ASSERT_TRUE(server.Start(0).ok());
  HttpReply reply = HttpGet(server.port(), "/statusz");
  ASSERT_EQ(reply.status_code, 200);
  json_lite::Value statusz = ParseJsonOrFail(reply.body);
  const json_lite::Value* sources = statusz.Get("sources");
  ASSERT_NE(sources, nullptr);
  ASSERT_TRUE(sources->is_object());
  bool found = false;
  for (const auto& [name, value] : sources->object) {
    if (name.rfind("dataflow-", 0) != 0) continue;
    if (!value.is_object() || value.Get("operators") == nullptr) continue;
    if (SumOperatorTraceBytes(value, "arrange") != manual) continue;
    found = true;
  }
  EXPECT_TRUE(found)
      << "no /statusz source reported the expected arrangement bytes:\n"
      << reply.body.substr(0, 2000);
}

// Live-run scrape, the issue's acceptance scenario: a 10-view collection
// runs WCC at W=4 while this thread hammers every endpoint from outside.
// Every payload must stay well-formed at every instant of the run.
TEST(StatusServerLiveTest, EndpointsStayValidDuringShardedWccRun) {
  GraphsurgeOptions options;
  options.num_workers = 4;
  Graphsurge system(options);
  ASSERT_TRUE(
      system.AddGraph("G", GenerateUniformGraph(1200, 4800, 11)).ok());

  std::vector<std::string> names;
  std::vector<std::function<bool(EdgeId)>> predicates;
  for (int v = 0; v < 10; ++v) {
    names.push_back("v" + std::to_string(v));
    // Growing nested subsets, the paper's canonical collection shape.
    predicates.push_back([v](EdgeId e) {
      return static_cast<int>(e % 12) <= v + 2;
    });
  }
  ASSERT_TRUE(system.CreateCollection("C", "G", names, predicates).ok());

  ASSERT_TRUE(system.StartStatusServer(0).ok());
  const uint16_t port = server::StatusServer::Global().port();
  ASSERT_NE(port, 0);

  std::atomic<bool> done{false};
  Status run_status = Status::Ok();
  std::thread runner([&] {
    analytics::Wcc wcc;
    views::ExecutionOptions opts;
    auto result = system.RunComputation(wcc, "C", opts);
    run_status = result.status();
    done.store(true, std::memory_order_release);
  });

  int scrapes = 0;
  // Scrape continuously while the run is in flight, and in any case at
  // least three full rounds so the assertions run even if the computation
  // finishes before the first scrape lands.
  while (!done.load(std::memory_order_acquire) || scrapes < 3) {
    EXPECT_EQ(HttpGet(port, "/healthz").body, "ok\n");
    EXPECT_NE(HttpGet(port, "/metrics").body.find("gs_"), std::string::npos);
    for (const char* path : {"/varz", "/statusz", "/tracez"}) {
      HttpReply reply = HttpGet(port, path);
      EXPECT_EQ(reply.status_code, 200) << path;
      ParseJsonOrFail(reply.body);
    }
    ++scrapes;
  }
  runner.join();
  ASSERT_TRUE(run_status.ok()) << run_status.ToString();
  EXPECT_GE(scrapes, 3);

  // After the run, /profilez serves this system's per-view table.
  HttpReply profile = HttpGet(port, "/profilez");
  EXPECT_EQ(profile.status_code, 200);
  EXPECT_FALSE(profile.body.empty());
  EXPECT_NE(profile.body.find("view"), std::string::npos) << profile.body;
}

}  // namespace
}  // namespace gs
