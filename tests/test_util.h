// Shared helpers for tests: driving a Computation over a sequence of edge
// difference batches, converting captured outputs to plain maps, and
// raw-socket HTTP clients for exercising the embedded servers exactly as a
// network peer would (no client library smoothing over protocol edges).
#ifndef GRAPHSURGE_TESTS_TEST_UTIL_H_
#define GRAPHSURGE_TESTS_TEST_UTIL_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "algorithms/computation.h"
#include "algorithms/reference.h"
#include "common/random.h"
#include "differential/differential.h"
#include "graph/types.h"

namespace gs::testutil {

using analytics::ResultMap;
using analytics::VertexValue;
namespace dd = ::gs::differential;

/// Drives one analytics computation over successive edge difference sets.
class ComputationRunner {
 public:
  explicit ComputationRunner(
      const analytics::Computation& computation,
      dd::DataflowOptions options = dd::DataflowOptions())
      : dataflow_(options), edges_(&dataflow_) {
    capture_ = dd::Capture(
        computation.GraphAnalytics(&dataflow_, edges_.stream()));
  }

  /// Applies `diffs` as the next version and runs to fixpoint.
  void Advance(const dd::Batch<WeightedEdge>& diffs) {
    for (const auto& u : diffs) edges_.Send(u.data, u.diff);
    Status s = dataflow_.Step();
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  /// Accumulated result at `version` as a map; fails the test if any record
  /// has multiplicity != 1 (all our computations are functional).
  ResultMap ResultAt(uint32_t version) const {
    ResultMap m;
    for (const auto& u : capture_->AccumulatedAt(version)) {
      EXPECT_EQ(u.diff, 1) << "key " << u.data.first << " has multiplicity "
                           << u.diff << " at version " << version;
      m[u.data.first] = u.data.second;
    }
    return m;
  }

  uint64_t DiffMagnitudeAt(uint32_t version) const {
    return dd::UpdateMagnitude(capture_->VersionDiffs(version));
  }

  dd::Dataflow& dataflow() { return dataflow_; }

 private:
  dd::Dataflow dataflow_;
  dd::Input<WeightedEdge> edges_;
  dd::CaptureOp<VertexValue>* capture_;
};

/// Accumulates edge difference batches into a concrete edge list for the
/// reference oracles. Multiplicities must resolve to {0, 1}.
class EdgeAccumulator {
 public:
  void Apply(const dd::Batch<WeightedEdge>& diffs) {
    for (const auto& u : diffs) {
      auto [it, inserted] = counts_.try_emplace(u.data, 0);
      it->second += u.diff;
      EXPECT_GE(it->second, 0);
      EXPECT_LE(it->second, 1);
      if (it->second == 0) counts_.erase(it);
    }
  }

  std::vector<WeightedEdge> Edges() const {
    std::vector<WeightedEdge> out;
    out.reserve(counts_.size());
    for (const auto& [e, c] : counts_) out.push_back(e);
    return out;
  }

 private:
  std::map<WeightedEdge, int> counts_;
};

/// Random weighted edge over `n` vertices.
inline WeightedEdge RandomEdge(Rng& rng, uint64_t n, int64_t max_weight = 9) {
  uint64_t src = rng.Index(n);
  uint64_t dst = rng.Index(n);
  if (src == dst) dst = (dst + 1) % n;
  return WeightedEdge{src, dst, rng.Uniform(1, max_weight)};
}

// --- Raw-socket HTTP client ------------------------------------------------
// Shared by every server test (status server, watchdog endpoints, query
// server): one implementation of "speak bytes at a loopback port" so
// protocol-conformance expectations are identical across suites.

struct HttpReply {
  int status_code = 0;
  std::string body;
  std::string raw;  // status line + headers + body as received
};

/// Connects to 127.0.0.1:`port` and sends `request` verbatim. Returns the
/// connected socket, or -1.
inline int HttpConnect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

inline void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
}

inline std::string RecvToEof(int fd) {
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

/// Splits one HTTP response off the front of `stream` (using its
/// Content-Length), filling `reply`. Returns false when the stream does
/// not hold a complete response.
inline bool PopHttpReply(std::string* stream, HttpReply* reply) {
  size_t header_end = stream->find("\r\n\r\n");
  if (header_end == std::string::npos) return false;
  const std::string head = stream->substr(0, header_end + 4);
  size_t body_len = 0;
  size_t cl = head.find("Content-Length: ");
  if (cl != std::string::npos) {
    body_len = static_cast<size_t>(
        std::atoll(head.c_str() + cl + sizeof("Content-Length: ") - 1));
  }
  if (stream->size() < header_end + 4 + body_len) return false;
  reply->raw = stream->substr(0, header_end + 4 + body_len);
  reply->body = stream->substr(header_end + 4, body_len);
  if (reply->raw.rfind("HTTP/1.1 ", 0) == 0 && reply->raw.size() >= 12) {
    reply->status_code = std::atoi(reply->raw.c_str() + 9);
  }
  stream->erase(0, header_end + 4 + body_len);
  return true;
}

/// One request, read to EOF (for `Connection: close` exchanges and raw
/// protocol-violation probes).
inline HttpReply HttpFetch(uint16_t port, const std::string& request) {
  HttpReply reply;
  int fd = HttpConnect(port);
  if (fd < 0) return reply;
  SendAll(fd, request);
  reply.raw = RecvToEof(fd);
  ::close(fd);
  size_t header_end = reply.raw.find("\r\n\r\n");
  if (header_end != std::string::npos) {
    reply.body = reply.raw.substr(header_end + 4);
  }
  if (reply.raw.rfind("HTTP/1.1 ", 0) == 0 && reply.raw.size() >= 12) {
    reply.status_code = std::atoi(reply.raw.c_str() + 9);
  }
  return reply;
}

inline HttpReply HttpGet(uint16_t port, const std::string& path) {
  return HttpFetch(port, "GET " + path +
                             " HTTP/1.1\r\nHost: localhost\r\n"
                             "Connection: close\r\n\r\n");
}

inline HttpReply HttpPost(uint16_t port, const std::string& path,
                          const std::string& body,
                          const std::string& content_type =
                              "application/json") {
  return HttpFetch(port, "POST " + path +
                             " HTTP/1.1\r\nHost: localhost\r\n"
                             "Content-Type: " + content_type +
                             "\r\nContent-Length: " +
                             std::to_string(body.size()) +
                             "\r\nConnection: close\r\n\r\n" + body);
}

/// Sends every request in one burst on one connection (HTTP/1.1
/// pipelining; the last request should say `Connection: close`) and parses
/// the responses back out in order.
inline std::vector<HttpReply> HttpPipeline(
    uint16_t port, const std::vector<std::string>& requests) {
  std::vector<HttpReply> replies;
  int fd = HttpConnect(port);
  if (fd < 0) return replies;
  std::string burst;
  for (const std::string& r : requests) burst += r;
  SendAll(fd, burst);
  std::string stream = RecvToEof(fd);
  ::close(fd);
  HttpReply reply;
  while (PopHttpReply(&stream, &reply)) {
    replies.push_back(reply);
    reply = HttpReply();
  }
  return replies;
}

/// HTTP/1.1 conformance expectations shared by every listener built on
/// server/http.h (status server and query server): pipelining, body
/// framing rejections, and malformed-input handling must behave
/// identically regardless of which endpoint set is mounted. `port` must
/// serve /healthz with 200 "ok\n".
inline void ExpectHttpConformance(uint16_t port) {
  // Pipelined requests on one connection are answered in order; the
  // connection disposition follows the client's headers.
  const std::string keep = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  const std::string last =
      "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  std::vector<HttpReply> replies = HttpPipeline(port, {keep, keep, last});
  ASSERT_EQ(replies.size(), 3u);
  for (const HttpReply& reply : replies) {
    EXPECT_EQ(reply.status_code, 200);
    EXPECT_EQ(reply.body, "ok\n");
  }
  EXPECT_NE(replies[0].raw.find("Connection: keep-alive"),
            std::string::npos);
  EXPECT_NE(replies[2].raw.find("Connection: close"), std::string::npos);

  // POST without Content-Length: the one body framing we speak is
  // Content-Length, so its absence is 411, not a hang waiting for EOF.
  EXPECT_EQ(HttpFetch(port,
                      "POST /query HTTP/1.1\r\nHost: x\r\n"
                      "Connection: close\r\n\r\n")
                .status_code,
            411);

  // A Content-Length beyond the body cap is refused before any body byte
  // is read.
  EXPECT_EQ(HttpFetch(port,
                      "POST /query HTTP/1.1\r\nHost: x\r\n"
                      "Content-Length: 1048577\r\n"
                      "Connection: close\r\n\r\nx")
                .status_code,
            413);

  // A non-numeric Content-Length is malformed framing.
  EXPECT_EQ(HttpFetch(port,
                      "POST /query HTTP/1.1\r\nHost: x\r\n"
                      "Content-Length: banana\r\n"
                      "Connection: close\r\n\r\n")
                .status_code,
            400);

  // Chunked bodies (any Transfer-Encoding) are rejected, not misparsed.
  EXPECT_EQ(HttpFetch(port,
                      "POST /query HTTP/1.1\r\nHost: x\r\n"
                      "Transfer-Encoding: chunked\r\n"
                      "Connection: close\r\n\r\n0\r\n\r\n")
                .status_code,
            501);

  // Garbage request line.
  EXPECT_EQ(HttpFetch(port, "not-http\r\n\r\n").status_code, 400);
}

}  // namespace gs::testutil

#endif  // GRAPHSURGE_TESTS_TEST_UTIL_H_
