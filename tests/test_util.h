// Shared helpers for tests: driving a Computation over a sequence of edge
// difference batches and converting captured outputs to plain maps.
#ifndef GRAPHSURGE_TESTS_TEST_UTIL_H_
#define GRAPHSURGE_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "algorithms/computation.h"
#include "algorithms/reference.h"
#include "common/random.h"
#include "differential/differential.h"
#include "graph/types.h"

namespace gs::testutil {

using analytics::ResultMap;
using analytics::VertexValue;
namespace dd = ::gs::differential;

/// Drives one analytics computation over successive edge difference sets.
class ComputationRunner {
 public:
  explicit ComputationRunner(
      const analytics::Computation& computation,
      dd::DataflowOptions options = dd::DataflowOptions())
      : dataflow_(options), edges_(&dataflow_) {
    capture_ = dd::Capture(
        computation.GraphAnalytics(&dataflow_, edges_.stream()));
  }

  /// Applies `diffs` as the next version and runs to fixpoint.
  void Advance(const dd::Batch<WeightedEdge>& diffs) {
    for (const auto& u : diffs) edges_.Send(u.data, u.diff);
    Status s = dataflow_.Step();
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  /// Accumulated result at `version` as a map; fails the test if any record
  /// has multiplicity != 1 (all our computations are functional).
  ResultMap ResultAt(uint32_t version) const {
    ResultMap m;
    for (const auto& u : capture_->AccumulatedAt(version)) {
      EXPECT_EQ(u.diff, 1) << "key " << u.data.first << " has multiplicity "
                           << u.diff << " at version " << version;
      m[u.data.first] = u.data.second;
    }
    return m;
  }

  uint64_t DiffMagnitudeAt(uint32_t version) const {
    return dd::UpdateMagnitude(capture_->VersionDiffs(version));
  }

  dd::Dataflow& dataflow() { return dataflow_; }

 private:
  dd::Dataflow dataflow_;
  dd::Input<WeightedEdge> edges_;
  dd::CaptureOp<VertexValue>* capture_;
};

/// Accumulates edge difference batches into a concrete edge list for the
/// reference oracles. Multiplicities must resolve to {0, 1}.
class EdgeAccumulator {
 public:
  void Apply(const dd::Batch<WeightedEdge>& diffs) {
    for (const auto& u : diffs) {
      auto [it, inserted] = counts_.try_emplace(u.data, 0);
      it->second += u.diff;
      EXPECT_GE(it->second, 0);
      EXPECT_LE(it->second, 1);
      if (it->second == 0) counts_.erase(it);
    }
  }

  std::vector<WeightedEdge> Edges() const {
    std::vector<WeightedEdge> out;
    out.reserve(counts_.size());
    for (const auto& [e, c] : counts_) out.push_back(e);
    return out;
  }

 private:
  std::map<WeightedEdge, int> counts_;
};

/// Random weighted edge over `n` vertices.
inline WeightedEdge RandomEdge(Rng& rng, uint64_t n, int64_t max_weight = 9) {
  uint64_t src = rng.Index(n);
  uint64_t dst = rng.Index(n);
  if (src == dst) dst = (dst + 1) % n;
  return WeightedEdge{src, dst, rng.Uniform(1, max_weight)};
}

}  // namespace gs::testutil

#endif  // GRAPHSURGE_TESTS_TEST_UTIL_H_
