// Minimal recursive-descent JSON parser for tests that validate the
// well-formedness of JSON the system emits (metrics snapshots, Chrome trace
// dumps, bench reports). Supports the full JSON grammar the emitters use:
// objects, arrays, strings with escapes, numbers, booleans, null. Not a
// general-purpose library — no streaming, no error recovery, everything is
// materialized.
#ifndef GRAPHSURGE_TESTS_JSON_LITE_H_
#define GRAPHSURGE_TESTS_JSON_LITE_H_

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gs::json_lite {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_string() const { return type == Type::kString; }
  bool is_number() const { return type == Type::kNumber; }

  /// Object member access; returns nullptr when absent or not an object.
  const Value* Get(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  /// Parses the whole input as one JSON value. Returns false on any syntax
  /// error or trailing garbage; `error()` then describes the failure.
  bool Parse(Value* out) {
    pos_ = 0;
    error_.clear();
    if (!ParseValue(out)) return false;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after top-level value");
    }
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return Fail(std::string("expected '") + c + "'");
  }

  bool ParseValue(Value* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->type = Value::Type::kString;
        return ParseString(&out->string);
      case 't':
      case 'f':
        return ParseBool(out);
      case 'n':
        return ParseNull(out);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(Value* out) {
    out->type = Value::Type::kObject;
    if (!Consume('{')) return false;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      Value member;
      if (!ParseValue(&member)) return false;
      out->object.emplace(std::move(key), std::move(member));
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume('}');
    }
  }

  bool ParseArray(Value* out) {
    out->type = Value::Type::kArray;
    if (!Consume('[')) return false;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      Value element;
      if (!ParseValue(&element)) return false;
      out->array.push_back(std::move(element));
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
            // Tests only need well-formedness; non-ASCII code points are
            // replaced rather than UTF-8 encoded.
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad \\u escape digit");
              }
            }
            out->push_back(code < 0x80 ? static_cast<char>(code) : '?');
            break;
          }
          default:
            return Fail("unknown escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  bool ParseBool(Value* out) {
    out->type = Value::Type::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    return Fail("expected boolean");
  }

  bool ParseNull(Value* out) {
    out->type = Value::Type::kNull;
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return Fail("expected null");
  }

  bool ParseNumber(Value* out) {
    out->type = Value::Type::kNumber;
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    out->number = std::strtod(start, &end);
    if (end == start) return Fail("expected number");
    pos_ += static_cast<size_t>(end - start);
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

/// One-shot parse helper.
inline bool Parse(const std::string& text, Value* out, std::string* error) {
  Parser parser(text);
  bool ok = parser.Parse(out);
  if (!ok && error != nullptr) *error = parser.error();
  return ok;
}

}  // namespace gs::json_lite

#endif  // GRAPHSURGE_TESTS_JSON_LITE_H_
