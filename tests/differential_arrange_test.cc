// Shared arrangements: JoinArranged / ReduceArranged / DistinctArranged /
// CountArranged produce exactly the outputs of their trace-per-operator
// counterparts, serial and sharded, flat and inside iterative scopes; the
// arrangement-sharing stats are recorded; and unchanged reductions publish
// no batch at all (the empty-batch regression gate).
#include "differential/differential.h"

#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "algorithms/algorithms.h"
#include "common/random.h"
#include "graph/generators.h"
#include "gvdl/parser.h"
#include "views/executor.h"

namespace gs::differential {
namespace {

using IntPair = std::pair<int64_t, int64_t>;

template <typename D>
std::map<D, Diff> ToMap(const Batch<D>& batch) {
  std::map<D, Diff> m;
  for (const auto& u : batch) m[u.data] += u.diff;
  for (auto it = m.begin(); it != m.end();) {
    it = it->second == 0 ? m.erase(it) : std::next(it);
  }
  return m;
}

DataflowOptions Workers(size_t n) {
  DataflowOptions options;
  options.num_workers = n;
  return options;
}

// Same harness as differential_sharded_test.cc: one keyed pipeline per
// shard, inputs hash-partitioned, captures merged.
template <typename In, typename Out>
class ShardedHarness {
 public:
  using Builder = std::function<Stream<Out>(Dataflow*, Stream<In>)>;

  ShardedHarness(size_t num_workers, const Builder& build)
      : dataflow_(Workers(num_workers)) {
    for (size_t w = 0; w < dataflow_.num_workers(); ++w) {
      inputs_.emplace_back(dataflow_.worker(w));
      captures_.push_back(
          Capture(build(dataflow_.worker(w), inputs_[w].stream())));
    }
  }

  void Send(In data, Diff diff) {
    inputs_[dataflow_.OwnerOfHash(HashValue(data))].Send(std::move(data),
                                                         diff);
  }

  Status Step() { return dataflow_.Step(); }

  std::map<Out, Diff> Accumulated(uint32_t version) const {
    Batch<Out> all;
    for (const auto* cap : captures_) {
      Batch<Out> b = cap->AccumulatedAt(version);
      all.insert(all.end(), b.begin(), b.end());
    }
    return ToMap(all);
  }

  std::map<Out, Diff> VersionDiffs(uint32_t version) const {
    Batch<Out> all;
    for (const auto* cap : captures_) {
      Batch<Out> b = cap->VersionDiffs(version);
      all.insert(all.end(), b.begin(), b.end());
    }
    return ToMap(all);
  }

  ShardedDataflow& dataflow() { return dataflow_; }

 private:
  ShardedDataflow dataflow_;
  std::vector<Input<In>> inputs_;
  std::vector<CaptureOp<Out>*> captures_;
};

using Harness = ShardedHarness<IntPair, IntPair>;

// Drives `plain` and `arranged` pipelines at one and four workers through
// random insert/retract versions and requires all four runs to agree on
// every version's difference set and accumulation.
void ExpectEquivalentPipelines(const Harness::Builder& plain,
                               const Harness::Builder& arranged,
                               uint64_t seed) {
  Harness plain1(1, plain);
  Harness plain4(4, plain);
  Harness arranged1(1, arranged);
  Harness arranged4(4, arranged);
  Harness* runs[] = {&plain1, &plain4, &arranged1, &arranged4};

  Rng rng(seed);
  for (uint32_t version = 0; version < 5; ++version) {
    for (int i = 0; i < 250; ++i) {
      IntPair p{rng.Uniform(0, 50), rng.Uniform(0, 20)};
      Diff d = rng.Bernoulli(0.25) && version > 0 ? -1 : 1;
      for (Harness* h : runs) h->Send(p, d);
    }
    for (Harness* h : runs) ASSERT_TRUE(h->Step().ok());
    auto expected_diffs = plain1.VersionDiffs(version);
    auto expected_acc = plain1.Accumulated(version);
    EXPECT_EQ(plain4.VersionDiffs(version), expected_diffs)
        << "plain W=4, version " << version;
    EXPECT_EQ(arranged1.VersionDiffs(version), expected_diffs)
        << "arranged W=1, version " << version;
    EXPECT_EQ(arranged4.VersionDiffs(version), expected_diffs)
        << "arranged W=4, version " << version;
    EXPECT_EQ(arranged4.Accumulated(version), expected_acc)
        << "arranged W=4, version " << version;
  }
}

TEST(ArrangeTest, JoinStreamArrangedMatchesJoin) {
  auto shift = [](const IntPair& p) {
    return IntPair{p.first + 1, p.second * 3};
  };
  auto merge = [](const int64_t& k, const int64_t& a, const int64_t& b) {
    return IntPair{k, a * 100 + b};
  };
  auto plain = [=](Dataflow*, Stream<IntPair> in) {
    return Join(in, in.Map(shift), merge);
  };
  auto arranged = [=](Dataflow*, Stream<IntPair> in) {
    return JoinArranged(in, Arrange(in.Map(shift)), merge);
  };
  ExpectEquivalentPipelines(plain, arranged, 11);
}

TEST(ArrangeTest, JoinArrangedArrangedMatchesJoin) {
  auto shift = [](const IntPair& p) {
    return IntPair{p.first + 1, p.second * 3};
  };
  auto merge = [](const int64_t& k, const int64_t& a, const int64_t& b) {
    return IntPair{k, a * 100 + b};
  };
  auto plain = [=](Dataflow*, Stream<IntPair> in) {
    return Join(in, in.Map(shift), merge);
  };
  auto arranged = [=](Dataflow*, Stream<IntPair> in) {
    return JoinArranged(Arrange(in), Arrange(in.Map(shift)), merge);
  };
  ExpectEquivalentPipelines(plain, arranged, 13);
}

TEST(ArrangeTest, OneArrangementSharedByTwoJoins) {
  // The payoff case: one trace, two consumers. Both joins probe the same
  // shared adjacency arrangement; the union must equal two plain joins.
  auto fwd = [](const int64_t& k, const int64_t& a, const int64_t& b) {
    return IntPair{k, a + b};
  };
  auto bwd = [](const int64_t& k, const int64_t& a, const int64_t& b) {
    return IntPair{k + 1000, a - b};
  };
  auto tag = [](const IntPair& p) { return IntPair{p.first, p.second + 7}; };
  auto plain = [=](Dataflow*, Stream<IntPair> in) {
    auto tagged = in.Map(tag);
    return Join(tagged, in, fwd).Concat(Join(tagged, in, bwd));
  };
  auto arranged = [=](Dataflow*, Stream<IntPair> in) {
    auto shared = Arrange(in);
    auto tagged = in.Map(tag);
    return JoinArranged(tagged, shared, fwd)
        .Concat(JoinArranged(tagged, shared, bwd));
  };
  ExpectEquivalentPipelines(plain, arranged, 17);
}

TEST(ArrangeTest, ReduceFamilyOverArrangementsMatchesPlain) {
  auto plain = [](Dataflow*, Stream<IntPair> in) {
    auto counts = Count(Distinct(in));
    return ReduceMin<int64_t, int64_t>(counts);
  };
  auto arranged = [](Dataflow*, Stream<IntPair> in) {
    auto counts = CountArranged(DistinctArranged(in));
    return ReduceArranged<int64_t>(
        counts, [](const int64_t&, const Batch<int64_t>& vals,
                   Batch<int64_t>* out) {
          bool any = false;
          int64_t best = 0;
          for (const auto& u : vals) {
            if (u.diff <= 0) continue;
            if (!any || u.data < best) best = u.data;
            any = true;
          }
          if (any) out->push_back(Update<int64_t>{best, 1});
        });
  };
  ExpectEquivalentPipelines(plain, arranged, 19);
}

TEST(ArrangeTest, ArrangedLoopMatchesPlainLoop) {
  // Transitive reachability with the adjacency arrangement built outside
  // the scope and entered — the pattern algorithms.cc uses for WCC/BFS.
  auto step = [](const int64_t&, const int64_t& dist, const int64_t& dst) {
    return IntPair{dst, dist + 1};
  };
  auto plain = [=](Dataflow*, Stream<IntPair> edges) {
    auto roots = Distinct(
        edges.Filter([](const IntPair& e) { return e.first == 0; })
            .Map([](const IntPair&) { return IntPair{0, 0}; }));
    return Iterate<IntPair>(
        roots, [&](LoopScope& scope, Stream<IntPair> inner) {
          auto edges_in = scope.Enter(edges);
          auto roots_in = scope.Enter(roots);
          auto moved = Join(inner, edges_in, step);
          return ReduceMin<int64_t, int64_t>(moved.Concat(roots_in));
        });
  };
  auto arranged = [=](Dataflow*, Stream<IntPair> edges) {
    auto adjacency = DistinctArranged(edges);
    auto roots = Distinct(
        edges.Filter([](const IntPair& e) { return e.first == 0; })
            .Map([](const IntPair&) { return IntPair{0, 0}; }));
    return Iterate<IntPair>(
        roots, [&](LoopScope& scope, Stream<IntPair> inner) {
          auto adj_in = adjacency.Enter(scope);
          auto roots_in = scope.Enter(roots);
          auto moved = JoinArranged(inner, adj_in, step);
          return ReduceMin<int64_t, int64_t>(moved.Concat(roots_in));
        });
  };

  Harness plain1(1, plain);
  Harness arranged1(1, arranged);
  Harness arranged4(4, arranged);
  Harness* runs[] = {&plain1, &arranged1, &arranged4};
  Rng rng(3);
  for (uint32_t version = 0; version < 4; ++version) {
    for (int i = 0; i < 150; ++i) {
      IntPair e{rng.Uniform(0, 60), rng.Uniform(0, 60)};
      for (Harness* h : runs) h->Send(e, 1);
    }
    for (Harness* h : runs) ASSERT_TRUE(h->Step().ok());
    auto expected = plain1.Accumulated(version);
    EXPECT_EQ(arranged1.Accumulated(version), expected)
        << "arranged W=1, version " << version;
    EXPECT_EQ(arranged4.Accumulated(version), expected)
        << "arranged W=4, version " << version;
  }
}

TEST(ArrangeTest, ArrangementSharesAreCounted) {
  Dataflow dataflow;
  Input<IntPair> input(&dataflow);
  auto shared = Arrange(input.stream());
  auto tagged = input.stream().Map(
      [](const IntPair& p) { return IntPair{p.first, p.second + 1}; });
  auto merge = [](const int64_t& k, const int64_t& a, const int64_t& b) {
    return IntPair{k, a + b};
  };
  // Two stream⋈arranged consumers (1 share each) plus one
  // arranged⋈arranged consumer (2 shares) plus one reduce-over-arrangement
  // (1 share): five endpoints probing shared traces.
  Capture(JoinArranged(tagged, shared, merge));
  Capture(JoinArranged(tagged, shared, merge));
  Capture(JoinArranged(shared, shared, merge));
  Capture(ReduceArranged<int64_t>(
      shared, [](const int64_t&, const Batch<int64_t>& vals,
                 Batch<int64_t>* out) {
        int64_t total = 0;
        for (const auto& u : vals) total += u.data * u.diff;
        out->push_back(Update<int64_t>{total, 1});
      }));
  EXPECT_EQ(dataflow.stats().arrangement_shares, 5u);

  input.Send({1, 2}, 1);
  ASSERT_TRUE(dataflow.Step().ok());
  EXPECT_GT(dataflow.stats().trace_entries, 0u);
}

TEST(ArrangeTest, UnchangedReductionPublishesNoBatch) {
  // Version 1 inserts a value that does not change the minimum: the reduce
  // must publish nothing at all — no empty batch, no capture entry.
  Dataflow dataflow;
  Input<IntPair> input(&dataflow);
  auto* capture = Capture(ReduceMin<int64_t, int64_t>(input.stream()));

  input.Send({1, 5}, 1);
  ASSERT_TRUE(dataflow.Step().ok());
  EXPECT_EQ(ToMap(capture->VersionDiffs(0)),
            (std::map<IntPair, Diff>{{{1, 5}, 1}}));

  input.Send({1, 9}, 1);  // min unchanged
  ASSERT_TRUE(dataflow.Step().ok());
  EXPECT_EQ(capture->versions().count(1), 0u)
      << "an unchanged reduction published a batch at version 1";

  input.Send({1, 5}, -1);  // retract the old min; 9 takes over
  ASSERT_TRUE(dataflow.Step().ok());
  EXPECT_EQ(ToMap(capture->VersionDiffs(2)),
            (std::map<IntPair, Diff>{{{1, 5}, -1}, {{1, 9}, 1}}));
}

// ---------------------------------------------------------------------------
// Full-system equivalence: with arrangements on (the default) the analytics
// results on a view collection are byte-identical to the unarranged plans,
// serial and sharded.

struct CollectionFixture {
  PropertyGraph graph;
  views::MaterializedCollection collection;

  static CollectionFixture Windows(size_t num_views) {
    CollectionFixture f;
    TemporalGraphOptions opts;
    opts.num_nodes = 90;
    opts.num_edges = 900;
    opts.end_time = 1000;
    f.graph = GenerateTemporalGraph(opts);
    std::string text = "create view collection w on G ";
    for (size_t i = 0; i < num_views; ++i) {
      if (i) text += ", ";
      text += "[w" + std::to_string(i) + ": timestamp <= " +
              std::to_string(1000 * (i + 1) / num_views) + "]";
    }
    auto stmt = gvdl::Parse(text);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    views::MaterializeOptions mopts;
    auto mc = views::MaterializeCollection(
        f.graph, std::get<gvdl::ViewCollectionDef>(*stmt), mopts);
    EXPECT_TRUE(mc.ok()) << mc.status().ToString();
    f.collection = std::move(*mc);
    return f;
  }
};

void ExpectArrangedRunsMatchUnarranged(
    const analytics::Computation& computation, const CollectionFixture& f) {
  views::ExecutionOptions opts;
  opts.capture_results = true;
  opts.dataflow.num_workers = 1;
  opts.dataflow.use_arrangements = false;
  auto reference =
      views::RunOnCollection(computation, f.graph, f.collection, opts);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  for (size_t workers : {1, 4}) {
    opts.dataflow.num_workers = workers;
    opts.dataflow.use_arrangements = true;
    auto run = views::RunOnCollection(computation, f.graph, f.collection,
                                      opts);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    ASSERT_EQ(run->results.size(), reference->results.size());
    for (size_t t = 0; t < reference->results.size(); ++t) {
      EXPECT_EQ(run->results[t], reference->results[t])
          << computation.name() << " arranged with " << workers
          << " workers diverges on view " << t;
    }
    for (size_t t = 0; t < reference->per_view.size(); ++t) {
      EXPECT_EQ(run->per_view[t].output_diffs,
                reference->per_view[t].output_diffs)
          << computation.name() << " arranged workers=" << workers
          << " view " << t;
    }
    // Arranged plans actually share traces.
    EXPECT_GT(run->engine_stats.arrangement_shares, 0u)
        << computation.name();
  }
}

TEST(ArrangedEquivalenceTest, Wcc) {
  CollectionFixture f = CollectionFixture::Windows(5);
  ExpectArrangedRunsMatchUnarranged(analytics::Wcc(), f);
}

TEST(ArrangedEquivalenceTest, PageRank) {
  CollectionFixture f = CollectionFixture::Windows(4);
  ExpectArrangedRunsMatchUnarranged(analytics::PageRank(6), f);
}

TEST(ArrangedEquivalenceTest, Bfs) {
  CollectionFixture f = CollectionFixture::Windows(4);
  ExpectArrangedRunsMatchUnarranged(analytics::Bfs(f.graph.edge(0).src), f);
}

}  // namespace
}  // namespace gs::differential
