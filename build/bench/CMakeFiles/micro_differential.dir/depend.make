# Empty dependencies file for micro_differential.
# This may be replaced when dependencies are built.
