file(REMOVE_RECURSE
  "CMakeFiles/micro_differential.dir/micro_differential.cc.o"
  "CMakeFiles/micro_differential.dir/micro_differential.cc.o.d"
  "micro_differential"
  "micro_differential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
