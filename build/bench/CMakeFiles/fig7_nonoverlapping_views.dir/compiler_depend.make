# Empty compiler generated dependencies file for fig7_nonoverlapping_views.
# This may be replaced when dependencies are built.
