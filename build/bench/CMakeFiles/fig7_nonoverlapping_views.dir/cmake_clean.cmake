file(REMOVE_RECURSE
  "CMakeFiles/fig7_nonoverlapping_views.dir/fig7_nonoverlapping_views.cc.o"
  "CMakeFiles/fig7_nonoverlapping_views.dir/fig7_nonoverlapping_views.cc.o.d"
  "fig7_nonoverlapping_views"
  "fig7_nonoverlapping_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_nonoverlapping_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
