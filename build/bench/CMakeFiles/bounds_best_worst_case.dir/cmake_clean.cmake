file(REMOVE_RECURSE
  "CMakeFiles/bounds_best_worst_case.dir/bounds_best_worst_case.cc.o"
  "CMakeFiles/bounds_best_worst_case.dir/bounds_best_worst_case.cc.o.d"
  "bounds_best_worst_case"
  "bounds_best_worst_case.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounds_best_worst_case.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
