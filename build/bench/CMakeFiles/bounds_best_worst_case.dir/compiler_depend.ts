# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bounds_best_worst_case.
