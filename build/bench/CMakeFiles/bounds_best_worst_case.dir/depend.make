# Empty dependencies file for bounds_best_worst_case.
# This may be replaced when dependencies are built.
