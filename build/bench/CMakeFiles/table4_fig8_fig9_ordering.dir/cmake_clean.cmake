file(REMOVE_RECURSE
  "CMakeFiles/table4_fig8_fig9_ordering.dir/table4_fig8_fig9_ordering.cc.o"
  "CMakeFiles/table4_fig8_fig9_ordering.dir/table4_fig8_fig9_ordering.cc.o.d"
  "table4_fig8_fig9_ordering"
  "table4_fig8_fig9_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_fig8_fig9_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
