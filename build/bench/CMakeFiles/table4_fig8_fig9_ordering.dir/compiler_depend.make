# Empty compiler generated dependencies file for table4_fig8_fig9_ordering.
# This may be replaced when dependencies are built.
