file(REMOVE_RECURSE
  "CMakeFiles/fig6_similar_views.dir/fig6_similar_views.cc.o"
  "CMakeFiles/fig6_similar_views.dir/fig6_similar_views.cc.o.d"
  "fig6_similar_views"
  "fig6_similar_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_similar_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
