# Empty compiler generated dependencies file for fig6_similar_views.
# This may be replaced when dependencies are built.
