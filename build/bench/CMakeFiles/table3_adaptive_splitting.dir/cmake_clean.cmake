file(REMOVE_RECURSE
  "CMakeFiles/table3_adaptive_splitting.dir/table3_adaptive_splitting.cc.o"
  "CMakeFiles/table3_adaptive_splitting.dir/table3_adaptive_splitting.cc.o.d"
  "table3_adaptive_splitting"
  "table3_adaptive_splitting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_adaptive_splitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
