# Empty compiler generated dependencies file for table3_adaptive_splitting.
# This may be replaced when dependencies are built.
