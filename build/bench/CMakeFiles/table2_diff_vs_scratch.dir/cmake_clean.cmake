file(REMOVE_RECURSE
  "CMakeFiles/table2_diff_vs_scratch.dir/table2_diff_vs_scratch.cc.o"
  "CMakeFiles/table2_diff_vs_scratch.dir/table2_diff_vs_scratch.cc.o.d"
  "table2_diff_vs_scratch"
  "table2_diff_vs_scratch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_diff_vs_scratch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
