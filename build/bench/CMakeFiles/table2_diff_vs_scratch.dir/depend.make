# Empty dependencies file for table2_diff_vs_scratch.
# This may be replaced when dependencies are built.
