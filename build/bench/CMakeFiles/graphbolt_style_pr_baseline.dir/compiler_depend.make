# Empty compiler generated dependencies file for graphbolt_style_pr_baseline.
# This may be replaced when dependencies are built.
