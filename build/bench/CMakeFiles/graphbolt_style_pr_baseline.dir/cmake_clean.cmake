file(REMOVE_RECURSE
  "CMakeFiles/graphbolt_style_pr_baseline.dir/graphbolt_style_pr_baseline.cc.o"
  "CMakeFiles/graphbolt_style_pr_baseline.dir/graphbolt_style_pr_baseline.cc.o.d"
  "graphbolt_style_pr_baseline"
  "graphbolt_style_pr_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphbolt_style_pr_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
