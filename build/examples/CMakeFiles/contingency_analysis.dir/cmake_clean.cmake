file(REMOVE_RECURSE
  "CMakeFiles/contingency_analysis.dir/contingency_analysis.cpp.o"
  "CMakeFiles/contingency_analysis.dir/contingency_analysis.cpp.o.d"
  "contingency_analysis"
  "contingency_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contingency_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
