# Empty compiler generated dependencies file for contingency_analysis.
# This may be replaced when dependencies are built.
