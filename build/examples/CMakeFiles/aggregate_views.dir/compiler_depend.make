# Empty compiler generated dependencies file for aggregate_views.
# This may be replaced when dependencies are built.
