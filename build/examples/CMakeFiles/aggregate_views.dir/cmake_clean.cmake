file(REMOVE_RECURSE
  "CMakeFiles/aggregate_views.dir/aggregate_views.cpp.o"
  "CMakeFiles/aggregate_views.dir/aggregate_views.cpp.o.d"
  "aggregate_views"
  "aggregate_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
