file(REMOVE_RECURSE
  "CMakeFiles/bellman_ford_trace.dir/bellman_ford_trace.cpp.o"
  "CMakeFiles/bellman_ford_trace.dir/bellman_ford_trace.cpp.o.d"
  "bellman_ford_trace"
  "bellman_ford_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bellman_ford_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
