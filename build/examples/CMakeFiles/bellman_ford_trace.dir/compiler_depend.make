# Empty compiler generated dependencies file for bellman_ford_trace.
# This may be replaced when dependencies are built.
