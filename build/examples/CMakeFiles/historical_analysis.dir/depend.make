# Empty dependencies file for historical_analysis.
# This may be replaced when dependencies are built.
