file(REMOVE_RECURSE
  "CMakeFiles/historical_analysis.dir/historical_analysis.cpp.o"
  "CMakeFiles/historical_analysis.dir/historical_analysis.cpp.o.d"
  "historical_analysis"
  "historical_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/historical_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
