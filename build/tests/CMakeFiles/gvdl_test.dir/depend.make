# Empty dependencies file for gvdl_test.
# This may be replaced when dependencies are built.
