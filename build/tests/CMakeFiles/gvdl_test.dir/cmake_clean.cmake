file(REMOVE_RECURSE
  "CMakeFiles/gvdl_test.dir/gvdl_test.cc.o"
  "CMakeFiles/gvdl_test.dir/gvdl_test.cc.o.d"
  "gvdl_test"
  "gvdl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gvdl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
