file(REMOVE_RECURSE
  "CMakeFiles/differential_iterate_test.dir/differential_iterate_test.cc.o"
  "CMakeFiles/differential_iterate_test.dir/differential_iterate_test.cc.o.d"
  "differential_iterate_test"
  "differential_iterate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/differential_iterate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
