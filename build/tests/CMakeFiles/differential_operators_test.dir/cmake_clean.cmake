file(REMOVE_RECURSE
  "CMakeFiles/differential_operators_test.dir/differential_operators_test.cc.o"
  "CMakeFiles/differential_operators_test.dir/differential_operators_test.cc.o.d"
  "differential_operators_test"
  "differential_operators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/differential_operators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
