file(REMOVE_RECURSE
  "CMakeFiles/differential_time_test.dir/differential_time_test.cc.o"
  "CMakeFiles/differential_time_test.dir/differential_time_test.cc.o.d"
  "differential_time_test"
  "differential_time_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/differential_time_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
