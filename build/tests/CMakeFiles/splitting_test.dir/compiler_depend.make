# Empty compiler generated dependencies file for splitting_test.
# This may be replaced when dependencies are built.
