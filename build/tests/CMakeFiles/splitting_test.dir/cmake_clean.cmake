file(REMOVE_RECURSE
  "CMakeFiles/splitting_test.dir/splitting_test.cc.o"
  "CMakeFiles/splitting_test.dir/splitting_test.cc.o.d"
  "splitting_test"
  "splitting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
