# Empty compiler generated dependencies file for differential_robustness_test.
# This may be replaced when dependencies are built.
