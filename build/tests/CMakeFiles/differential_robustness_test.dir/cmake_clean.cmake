file(REMOVE_RECURSE
  "CMakeFiles/differential_robustness_test.dir/differential_robustness_test.cc.o"
  "CMakeFiles/differential_robustness_test.dir/differential_robustness_test.cc.o.d"
  "differential_robustness_test"
  "differential_robustness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/differential_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
