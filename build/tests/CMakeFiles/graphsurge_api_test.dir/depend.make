# Empty dependencies file for graphsurge_api_test.
# This may be replaced when dependencies are built.
