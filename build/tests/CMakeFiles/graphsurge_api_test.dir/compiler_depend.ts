# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for graphsurge_api_test.
