file(REMOVE_RECURSE
  "CMakeFiles/graphsurge_api_test.dir/graphsurge_api_test.cc.o"
  "CMakeFiles/graphsurge_api_test.dir/graphsurge_api_test.cc.o.d"
  "graphsurge_api_test"
  "graphsurge_api_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphsurge_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
