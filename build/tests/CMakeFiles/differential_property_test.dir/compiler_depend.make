# Empty compiler generated dependencies file for differential_property_test.
# This may be replaced when dependencies are built.
