file(REMOVE_RECURSE
  "CMakeFiles/differential_property_test.dir/differential_property_test.cc.o"
  "CMakeFiles/differential_property_test.dir/differential_property_test.cc.o.d"
  "differential_property_test"
  "differential_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/differential_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
