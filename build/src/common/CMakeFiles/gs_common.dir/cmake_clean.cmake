file(REMOVE_RECURSE
  "CMakeFiles/gs_common.dir/logging.cc.o"
  "CMakeFiles/gs_common.dir/logging.cc.o.d"
  "CMakeFiles/gs_common.dir/status.cc.o"
  "CMakeFiles/gs_common.dir/status.cc.o.d"
  "CMakeFiles/gs_common.dir/thread_pool.cc.o"
  "CMakeFiles/gs_common.dir/thread_pool.cc.o.d"
  "libgs_common.a"
  "libgs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
