# Empty dependencies file for gs_views.
# This may be replaced when dependencies are built.
