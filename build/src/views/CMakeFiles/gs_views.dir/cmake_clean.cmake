file(REMOVE_RECURSE
  "CMakeFiles/gs_views.dir/collection.cc.o"
  "CMakeFiles/gs_views.dir/collection.cc.o.d"
  "CMakeFiles/gs_views.dir/diff_stream.cc.o"
  "CMakeFiles/gs_views.dir/diff_stream.cc.o.d"
  "CMakeFiles/gs_views.dir/ebm.cc.o"
  "CMakeFiles/gs_views.dir/ebm.cc.o.d"
  "CMakeFiles/gs_views.dir/executor.cc.o"
  "CMakeFiles/gs_views.dir/executor.cc.o.d"
  "CMakeFiles/gs_views.dir/serialization.cc.o"
  "CMakeFiles/gs_views.dir/serialization.cc.o.d"
  "libgs_views.a"
  "libgs_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
