file(REMOVE_RECURSE
  "libgs_views.a"
)
