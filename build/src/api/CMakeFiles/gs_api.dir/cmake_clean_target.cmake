file(REMOVE_RECURSE
  "libgs_api.a"
)
