
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/graphsurge.cc" "src/api/CMakeFiles/gs_api.dir/graphsurge.cc.o" "gcc" "src/api/CMakeFiles/gs_api.dir/graphsurge.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/views/CMakeFiles/gs_views.dir/DependInfo.cmake"
  "/root/repo/build/src/agg/CMakeFiles/gs_agg.dir/DependInfo.cmake"
  "/root/repo/build/src/ordering/CMakeFiles/gs_ordering.dir/DependInfo.cmake"
  "/root/repo/build/src/splitting/CMakeFiles/gs_splitting.dir/DependInfo.cmake"
  "/root/repo/build/src/algorithms/CMakeFiles/gs_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/gvdl/CMakeFiles/gs_gvdl.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
