# Empty compiler generated dependencies file for gs_api.
# This may be replaced when dependencies are built.
