file(REMOVE_RECURSE
  "CMakeFiles/gs_api.dir/graphsurge.cc.o"
  "CMakeFiles/gs_api.dir/graphsurge.cc.o.d"
  "libgs_api.a"
  "libgs_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
