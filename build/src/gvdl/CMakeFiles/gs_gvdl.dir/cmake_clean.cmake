file(REMOVE_RECURSE
  "CMakeFiles/gs_gvdl.dir/lexer.cc.o"
  "CMakeFiles/gs_gvdl.dir/lexer.cc.o.d"
  "CMakeFiles/gs_gvdl.dir/parser.cc.o"
  "CMakeFiles/gs_gvdl.dir/parser.cc.o.d"
  "CMakeFiles/gs_gvdl.dir/predicate.cc.o"
  "CMakeFiles/gs_gvdl.dir/predicate.cc.o.d"
  "libgs_gvdl.a"
  "libgs_gvdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_gvdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
