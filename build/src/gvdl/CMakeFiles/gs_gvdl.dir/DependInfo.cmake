
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gvdl/lexer.cc" "src/gvdl/CMakeFiles/gs_gvdl.dir/lexer.cc.o" "gcc" "src/gvdl/CMakeFiles/gs_gvdl.dir/lexer.cc.o.d"
  "/root/repo/src/gvdl/parser.cc" "src/gvdl/CMakeFiles/gs_gvdl.dir/parser.cc.o" "gcc" "src/gvdl/CMakeFiles/gs_gvdl.dir/parser.cc.o.d"
  "/root/repo/src/gvdl/predicate.cc" "src/gvdl/CMakeFiles/gs_gvdl.dir/predicate.cc.o" "gcc" "src/gvdl/CMakeFiles/gs_gvdl.dir/predicate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/gs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
