# Empty compiler generated dependencies file for gs_gvdl.
# This may be replaced when dependencies are built.
