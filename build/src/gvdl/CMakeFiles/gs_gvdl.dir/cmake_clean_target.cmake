file(REMOVE_RECURSE
  "libgs_gvdl.a"
)
