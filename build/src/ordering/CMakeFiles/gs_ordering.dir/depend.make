# Empty dependencies file for gs_ordering.
# This may be replaced when dependencies are built.
