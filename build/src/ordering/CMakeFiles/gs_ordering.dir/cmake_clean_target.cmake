file(REMOVE_RECURSE
  "libgs_ordering.a"
)
