file(REMOVE_RECURSE
  "CMakeFiles/gs_ordering.dir/optimizer.cc.o"
  "CMakeFiles/gs_ordering.dir/optimizer.cc.o.d"
  "CMakeFiles/gs_ordering.dir/tsp.cc.o"
  "CMakeFiles/gs_ordering.dir/tsp.cc.o.d"
  "libgs_ordering.a"
  "libgs_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
