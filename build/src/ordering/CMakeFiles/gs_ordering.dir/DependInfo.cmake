
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ordering/optimizer.cc" "src/ordering/CMakeFiles/gs_ordering.dir/optimizer.cc.o" "gcc" "src/ordering/CMakeFiles/gs_ordering.dir/optimizer.cc.o.d"
  "/root/repo/src/ordering/tsp.cc" "src/ordering/CMakeFiles/gs_ordering.dir/tsp.cc.o" "gcc" "src/ordering/CMakeFiles/gs_ordering.dir/tsp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
