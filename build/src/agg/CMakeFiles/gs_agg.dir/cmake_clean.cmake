file(REMOVE_RECURSE
  "CMakeFiles/gs_agg.dir/aggregate_view.cc.o"
  "CMakeFiles/gs_agg.dir/aggregate_view.cc.o.d"
  "libgs_agg.a"
  "libgs_agg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
