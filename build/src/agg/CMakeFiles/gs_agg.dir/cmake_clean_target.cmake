file(REMOVE_RECURSE
  "libgs_agg.a"
)
