# Empty dependencies file for gs_agg.
# This may be replaced when dependencies are built.
