file(REMOVE_RECURSE
  "libgs_splitting.a"
)
