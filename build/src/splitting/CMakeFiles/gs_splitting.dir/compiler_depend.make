# Empty compiler generated dependencies file for gs_splitting.
# This may be replaced when dependencies are built.
