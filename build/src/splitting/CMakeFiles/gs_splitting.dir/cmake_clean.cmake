file(REMOVE_RECURSE
  "CMakeFiles/gs_splitting.dir/adaptive.cc.o"
  "CMakeFiles/gs_splitting.dir/adaptive.cc.o.d"
  "CMakeFiles/gs_splitting.dir/cost_model.cc.o"
  "CMakeFiles/gs_splitting.dir/cost_model.cc.o.d"
  "libgs_splitting.a"
  "libgs_splitting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_splitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
