
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/splitting/adaptive.cc" "src/splitting/CMakeFiles/gs_splitting.dir/adaptive.cc.o" "gcc" "src/splitting/CMakeFiles/gs_splitting.dir/adaptive.cc.o.d"
  "/root/repo/src/splitting/cost_model.cc" "src/splitting/CMakeFiles/gs_splitting.dir/cost_model.cc.o" "gcc" "src/splitting/CMakeFiles/gs_splitting.dir/cost_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
