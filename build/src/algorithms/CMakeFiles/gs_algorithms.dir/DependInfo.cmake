
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algorithms/algorithms.cc" "src/algorithms/CMakeFiles/gs_algorithms.dir/algorithms.cc.o" "gcc" "src/algorithms/CMakeFiles/gs_algorithms.dir/algorithms.cc.o.d"
  "/root/repo/src/algorithms/reference.cc" "src/algorithms/CMakeFiles/gs_algorithms.dir/reference.cc.o" "gcc" "src/algorithms/CMakeFiles/gs_algorithms.dir/reference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/gs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
