file(REMOVE_RECURSE
  "libgs_algorithms.a"
)
