# Empty dependencies file for gs_algorithms.
# This may be replaced when dependencies are built.
