# Empty compiler generated dependencies file for gs_algorithms.
# This may be replaced when dependencies are built.
