file(REMOVE_RECURSE
  "CMakeFiles/gs_algorithms.dir/algorithms.cc.o"
  "CMakeFiles/gs_algorithms.dir/algorithms.cc.o.d"
  "CMakeFiles/gs_algorithms.dir/reference.cc.o"
  "CMakeFiles/gs_algorithms.dir/reference.cc.o.d"
  "libgs_algorithms.a"
  "libgs_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
