file(REMOVE_RECURSE
  "CMakeFiles/gs_graph.dir/csv.cc.o"
  "CMakeFiles/gs_graph.dir/csv.cc.o.d"
  "CMakeFiles/gs_graph.dir/generators.cc.o"
  "CMakeFiles/gs_graph.dir/generators.cc.o.d"
  "CMakeFiles/gs_graph.dir/graph.cc.o"
  "CMakeFiles/gs_graph.dir/graph.cc.o.d"
  "CMakeFiles/gs_graph.dir/property.cc.o"
  "CMakeFiles/gs_graph.dir/property.cc.o.d"
  "CMakeFiles/gs_graph.dir/property_table.cc.o"
  "CMakeFiles/gs_graph.dir/property_table.cc.o.d"
  "libgs_graph.a"
  "libgs_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gs_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
