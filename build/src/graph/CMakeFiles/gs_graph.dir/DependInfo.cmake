
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/csv.cc" "src/graph/CMakeFiles/gs_graph.dir/csv.cc.o" "gcc" "src/graph/CMakeFiles/gs_graph.dir/csv.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/graph/CMakeFiles/gs_graph.dir/generators.cc.o" "gcc" "src/graph/CMakeFiles/gs_graph.dir/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/gs_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/gs_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/property.cc" "src/graph/CMakeFiles/gs_graph.dir/property.cc.o" "gcc" "src/graph/CMakeFiles/gs_graph.dir/property.cc.o.d"
  "/root/repo/src/graph/property_table.cc" "src/graph/CMakeFiles/gs_graph.dir/property_table.cc.o" "gcc" "src/graph/CMakeFiles/gs_graph.dir/property_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
