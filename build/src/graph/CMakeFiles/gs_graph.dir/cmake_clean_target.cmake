file(REMOVE_RECURSE
  "libgs_graph.a"
)
