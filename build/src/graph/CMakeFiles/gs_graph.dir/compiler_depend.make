# Empty compiler generated dependencies file for gs_graph.
# This may be replaced when dependencies are built.
