// Reproduces Table 2 (paper §5): Bellman-Ford and PageRank on two
// controlled view collections over an Orkut-like power-law graph — one
// with tiny random difference sets (C1K analog) and one with huge ones
// (C3.5M analog) — run diff-only vs scratch.
//
// Expected shape (paper): BF is stable — diff-only wins on both
// collections. PR is unstable — diff-only wins only when views are very
// similar; with large diffs, scratch wins.
//
// Scale note: the paper uses 10M Orkut edges with 1K / 3.5M diffs; we scale
// everything by ~100x to fit the evaluation machine (DESIGN.md §5).
#include "bench_util.h"
#include "views/collection.h"

namespace gs::bench {
namespace {

void Run(BenchReport* report) {
  const size_t kEdges = 50000;
  const size_t kNodes = 10000;
  const size_t kViews = 12;

  PropertyGraph graph = GeneratePowerLawGraph(kNodes, kEdges, 1.15, 42);
  VertexId source = FirstSource(graph);
  int weight_col = graph.FindWeightColumn("weight");

  Graphsurge system;
  GS_CHECK(system.AddGraph("orkut", std::move(graph)).ok());
  const PropertyGraph& g = **system.GetGraph("orkut");

  struct Config {
    const char* label;
    size_t adds, removes;
  };
  // Diff sizes scaled 1:100 from the paper's 1K and 3.5M (2M add + 1.5M
  // remove) difference sets.
  const Config configs[] = {{"~10-diffs", 5, 5}, {"~10K-diffs", 6000, 4500}};

  PrintHeader("Table 2: diff-only vs scratch on controlled collections");
  std::printf("graph: %zu nodes, %zu edges, %zu views per collection\n",
              kNodes, kEdges, kViews);
  report->Meta().Int("nodes", kNodes).Int("edges", kEdges).Int("views",
                                                               kViews);
  const std::vector<int> widths = {14, 14, 12, 12, 10};
  PrintRow({"|diff sets|", "algorithm", "diff-only", "scratch", "winner"},
           widths);

  for (const Config& config : configs) {
    auto batches = RandomPerturbationBatches(g, kViews, config.adds,
                                             config.removes, 7);
    std::string cname = std::string("c_") + config.label;
    views::MaterializedCollection mc = views::CollectionFromDiffBatches(
        cname, "orkut", std::move(batches));

    struct AlgoRun {
      const char* name;
      std::unique_ptr<analytics::Computation> computation;
    };
    std::vector<AlgoRun> algos;
    algos.push_back({"BF", std::make_unique<analytics::BellmanFord>(source)});
    algos.push_back({"PR", std::make_unique<analytics::PageRank>(8)});

    for (const AlgoRun& algo : algos) {
      views::ExecutionOptions options;
      options.weight_column = weight_col;
      double diff_s = 0, scratch_s = 0;
      differential::DataflowStats diff_stats;
      for (auto strategy :
           {splitting::Strategy::kDiffOnly, splitting::Strategy::kScratch}) {
        options.strategy = strategy;
        Timer timer;
        auto result = views::RunOnCollection(*algo.computation, g, mc, options);
        GS_CHECK(result.ok()) << result.status().ToString();
        if (strategy == splitting::Strategy::kDiffOnly) {
          diff_s = timer.Seconds();
          diff_stats = result->engine_stats;
        } else {
          scratch_s = timer.Seconds();
        }
      }
      PrintRow({config.label, algo.name, Secs(diff_s), Secs(scratch_s),
                diff_s < scratch_s ? "diff-only" : "scratch"},
               widths);
      report->AddRow()
          .Str("config", config.label)
          .Str("algo", algo.name)
          .Num("diff_only_s", diff_s)
          .Num("scratch_s", scratch_s)
          .Int("join_matches", diff_stats.join_matches)
          .Num("join_matches_per_s",
               diff_s > 0 ? static_cast<double>(diff_stats.join_matches) /
                                diff_s
                          : 0);
    }
  }
}

}  // namespace
}  // namespace gs::bench

int main() {
  gs::bench::BenchReport report("table2_diff_vs_scratch");
  gs::bench::Run(&report);
  report.Write();
  return 0;
}
