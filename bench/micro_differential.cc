// Microbenchmarks (google-benchmark) of the differential engine's
// primitives and the view-materialization kernels, plus a deterministic
// end-to-end engine workload whose per-operator timings and trace gauges
// are printed and written to BENCH_micro_differential.json.
#include <benchmark/benchmark.h>

#include "algorithms/algorithms.h"
#include "bench_util.h"
#include "common/hash.h"
#include "common/random.h"
#include "differential/arrcache.h"
#include "differential/differential.h"
#include "graph/generators.h"
#include "graph/mutation.h"
#include "gvdl/parser.h"
#include "gvdl/predicate.h"
#include "ordering/optimizer.h"
#include "views/collection.h"
#include "views/ebm.h"
#include "views/executor.h"
#include "views/live.h"

namespace gs {
namespace {

namespace dd = ::gs::differential;

void BM_Consolidate(benchmark::State& state) {
  Rng rng(1);
  dd::Batch<int64_t> base(state.range(0));
  for (auto& u : base) {
    u.data = rng.Uniform(0, state.range(0) / 2);
    u.diff = rng.Bernoulli(0.5) ? 1 : -1;
  }
  for (auto _ : state) {
    dd::Batch<int64_t> batch = base;
    dd::Consolidate(&batch);
    benchmark::DoNotOptimize(batch.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Consolidate)->Arg(1024)->Arg(65536);

void BM_TraceInsertAccumulate(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    dd::Trace<uint64_t, int64_t> trace;
    for (int64_t i = 0; i < state.range(0); ++i) {
      trace.Insert(rng.Index(256), i, dd::Time(0), 1);
    }
    dd::Batch<int64_t> out;
    trace.Accumulate(0, dd::Time(1), &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceInsertAccumulate)->Arg(4096);

void BM_JoinThroughput(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    dd::Dataflow df;
    dd::Input<std::pair<uint64_t, int64_t>> left(&df);
    dd::Input<std::pair<uint64_t, int64_t>> right(&df);
    auto joined = dd::Join(
        left.stream(), right.stream(),
        [](const uint64_t& k, const int64_t& a, const int64_t& b) {
          return std::make_pair(k, a + b);
        });
    dd::Capture(joined);
    for (int64_t i = 0; i < n; ++i) {
      left.Send({static_cast<uint64_t>(i % 1024), i}, 1);
      right.Send({static_cast<uint64_t>(i % 1024), i}, 1);
    }
    benchmark::DoNotOptimize(df.Step().ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_JoinThroughput)->Arg(8192);

void BM_ReduceMinThroughput(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(3);
  for (auto _ : state) {
    dd::Dataflow df;
    dd::Input<std::pair<uint64_t, int64_t>> in(&df);
    dd::Capture(dd::ReduceMin(in.stream()));
    for (int64_t i = 0; i < n; ++i) {
      in.Send({rng.Index(1024), i}, 1);
    }
    benchmark::DoNotOptimize(df.Step().ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ReduceMinThroughput)->Arg(8192);

void BM_BfsFixpoint(benchmark::State& state) {
  PropertyGraph g = GenerateUniformGraph(2000, state.range(0), 7);
  analytics::Bfs bfs(g.edge(0).src);
  for (auto _ : state) {
    dd::Dataflow df;
    dd::Input<WeightedEdge> edges(&df);
    dd::Capture(bfs.GraphAnalytics(&df, edges.stream()));
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      edges.Send(g.ResolveWeighted(e, -1), 1);
    }
    benchmark::DoNotOptimize(df.Step().ok());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_BfsFixpoint)->Arg(10000);

void BM_IncrementalBfsStep(benchmark::State& state) {
  PropertyGraph g = GenerateUniformGraph(2000, 10000, 7);
  analytics::Bfs bfs(g.edge(0).src);
  dd::Dataflow df;
  dd::Input<WeightedEdge> edges(&df);
  dd::Capture(bfs.GraphAnalytics(&df, edges.stream()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    edges.Send(g.ResolveWeighted(e, -1), 1);
  }
  benchmark::DoNotOptimize(df.Step().ok());
  Rng rng(9);
  for (auto _ : state) {
    // One random edge swap per version.
    EdgeId victim = rng.Index(g.num_edges());
    edges.Send(g.ResolveWeighted(victim, -1), -1);
    benchmark::DoNotOptimize(df.Step().ok());
    edges.Send(g.ResolveWeighted(victim, -1), 1);
    benchmark::DoNotOptimize(df.Step().ok());
  }
}
BENCHMARK(BM_IncrementalBfsStep)->Iterations(200);

void BM_EbmHammingDistance(benchmark::State& state) {
  Rng rng(4);
  views::EdgeBooleanMatrix ebm(state.range(0), 8);
  for (EdgeId e = 0; e < static_cast<EdgeId>(state.range(0)); ++e) {
    for (size_t v = 0; v < 8; ++v) ebm.Set(e, v, rng.Bernoulli(0.3));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ebm.HammingDistance(i % 8, (i + 3) % 8));
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EbmHammingDistance)->Arg(1 << 20);

void BM_ChristofidesOrdering(benchmark::State& state) {
  Rng rng(5);
  views::EdgeBooleanMatrix ebm(20000, state.range(0));
  for (EdgeId e = 0; e < 20000; ++e) {
    for (int64_t v = 0; v < state.range(0); ++v) {
      ebm.Set(e, v, rng.Bernoulli(0.3));
    }
  }
  for (auto _ : state) {
    auto result = ordering::OrderCollection(ebm, nullptr);
    benchmark::DoNotOptimize(result.difference_count);
  }
}
BENCHMARK(BM_ChristofidesOrdering)->Arg(16)->Arg(64);

// Single-graph analytics through the process-level arrangement cache
// (differential/arrcache.h): cold runs clear the cache and pay the full
// arrangement build every iteration; warm runs seed their traces from the
// shared snapshot. The gap is what concurrent serving sessions on the same
// graph save after the first run.
void BM_ArrangementCacheColdRun(benchmark::State& state) {
  PropertyGraph g = GenerateUniformGraph(
      static_cast<size_t>(state.range(0)),
      static_cast<size_t>(state.range(0)) * 4, 9);
  analytics::Wcc wcc;
  views::ExecutionOptions eo;
  eo.capture_results = true;
  eo.dataflow.use_arrangements = true;
  eo.arrangement_cache_scope = "bench-cold/g@0";
  for (auto _ : state) {
    dd::ArrangementCache::Global().Clear();
    auto r = views::RunOnGraph(wcc, g, eo);
    GS_CHECK(r.ok()) << r.status().ToString();
    benchmark::DoNotOptimize(r.value().size());
  }
  dd::ArrangementCache::Global().Clear();
  state.SetItemsProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_ArrangementCacheColdRun)->Arg(2000);

void BM_ArrangementCacheWarmRun(benchmark::State& state) {
  PropertyGraph g = GenerateUniformGraph(
      static_cast<size_t>(state.range(0)),
      static_cast<size_t>(state.range(0)) * 4, 9);
  analytics::Wcc wcc;
  views::ExecutionOptions eo;
  eo.capture_results = true;
  eo.dataflow.use_arrangements = true;
  eo.arrangement_cache_scope = "bench-warm/g@0";
  dd::ArrangementCache::Global().Clear();
  GS_CHECK(views::RunOnGraph(wcc, g, eo).ok());  // prime the entry
  for (auto _ : state) {
    auto r = views::RunOnGraph(wcc, g, eo);
    GS_CHECK(r.ok()) << r.status().ToString();
    benchmark::DoNotOptimize(r.value().size());
  }
  dd::ArrangementCache::Global().Clear();
  state.SetItemsProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_ArrangementCacheWarmRun)->Arg(2000);

// ---------------------------------------------------------------------------
// Deterministic end-to-end engine workload. Unlike the micros above this
// runs a fixed seed/shape every time, so its wall time, join throughput, and
// per-operator breakdown are comparable across commits (the JSON is the
// perf-trajectory record; see bench/run_all.sh).

void RunEngineWorkload(bench::BenchReport* report) {
  const size_t kNodes = 8000;
  const size_t kEdges = 40000;
  const size_t kViews = 10;
  PropertyGraph graph = GeneratePowerLawGraph(kNodes, kEdges, 1.15, 33);
  auto batches = bench::RandomPerturbationBatches(graph, kViews, 40, 40, 17);
  auto mc =
      views::CollectionFromDiffBatches("micro", "g", std::move(batches));
  report->Meta()
      .Int("nodes", kNodes)
      .Int("edges", kEdges)
      .Int("views", kViews);

  struct Algo {
    const char* name;
    std::unique_ptr<analytics::Computation> computation;
  };
  std::vector<Algo> algos;
  algos.push_back({"WCC", std::make_unique<analytics::Wcc>()});
  algos.push_back(
      {"BFS", std::make_unique<analytics::Bfs>(graph.edge(0).src)});
  algos.push_back({"PR", std::make_unique<analytics::PageRank>(8)});

  bench::PrintHeader("engine workload: per-operator breakdown (diff-only)");
  for (size_t workers : {size_t{1}, size_t{4}}) {
    for (const Algo& algo : algos) {
      views::ExecutionOptions options;
      options.strategy = splitting::Strategy::kDiffOnly;
      options.dataflow.num_workers = workers;
      Timer timer;
      auto result = views::RunOnCollection(*algo.computation, graph, mc,
                                           options);
      GS_CHECK(result.ok()) << result.status().ToString();
      double seconds = timer.Seconds();
      const differential::DataflowStats& s = result->engine_stats;

      std::printf("\n%s W=%zu: %.3fs | %llu join matches (%.2fM/s) | "
                  "%llu updates | %llu reduce evals | %llu arrangement "
                  "shares | %llu trace entries in %llu spine batches\n",
                  algo.name, workers, seconds,
                  static_cast<unsigned long long>(s.join_matches),
                  seconds > 0
                      ? static_cast<double>(s.join_matches) / seconds / 1e6
                      : 0,
                  static_cast<unsigned long long>(s.updates_published),
                  static_cast<unsigned long long>(s.reduce_evaluations),
                  static_cast<unsigned long long>(s.arrangement_shares),
                  static_cast<unsigned long long>(s.trace_entries),
                  static_cast<unsigned long long>(s.trace_spine_batches));
      uint64_t total_nanos = 0;
      for (const auto& [op, nanos] : s.op_nanos) total_nanos += nanos;
      for (const auto& [op, nanos] : s.op_nanos) {
        std::printf("  %-16s %8.1fms  (%4.1f%%)\n", op.c_str(),
                    static_cast<double>(nanos) / 1e6,
                    total_nanos > 0 ? 100.0 * static_cast<double>(nanos) /
                                          static_cast<double>(total_nanos)
                                    : 0);
        report->AddRow()
            .Str("row", "op_time")
            .Str("algo", algo.name)
            .Int("workers", workers)
            .Str("op", op)
            .Int("nanos", nanos);
      }
      report->AddRow()
          .Str("row", "engine")
          .Str("algo", algo.name)
          .Int("workers", workers)
          .Num("seconds", seconds)
          .Int("join_matches", s.join_matches)
          .Num("join_matches_per_s",
               seconds > 0 ? static_cast<double>(s.join_matches) / seconds
                           : 0)
          .Int("updates_published", s.updates_published)
          .Int("reduce_evaluations", s.reduce_evaluations)
          .Int("arrangement_shares", s.arrangement_shares)
          .Int("trace_entries", s.trace_entries)
          .Int("trace_spine_batches", s.trace_spine_batches);
    }
  }
}

// ---------------------------------------------------------------------------
// Streaming-ingest workload: a 10-view hash-predicate collection over a
// 40k-edge graph, hit with 1% mutation batches. Compares the incremental
// path (ApplyMutationBatch + UpdateCollectionForMutations +
// LiveRun::AdvanceEpoch) against a full rematerialize + batch recompute on
// the post-mutation graph. The ISSUE acceptance bar is >= 5x.

MutationBatch IngestBatch(const PropertyGraph& g, uint64_t epoch,
                          size_t mutations) {
  Rng rng(4000 + epoch);
  MutationBatch b;
  auto keep_if_valid = [&](Mutation m) {
    b.push_back(std::move(m));
    if (!CheckMutationBatch(g, b).ok()) b.pop_back();
  };
  const uint64_t n = g.num_nodes();
  const uint64_t m = g.num_edges();
  for (size_t i = 0; i < mutations / 2; ++i) {
    keep_if_valid(Mutation::RemoveEdge(rng.Index(m)));
  }
  for (size_t i = 0; i < mutations / 2; ++i) {
    keep_if_valid(Mutation::AddEdge(rng.Index(n), rng.Index(n), {}));
  }
  return b;
}

void RunIngestWorkload(bench::BenchReport* report) {
  const size_t kNodes = 8000;
  const size_t kEdges = 40000;
  const size_t kViews = 10;
  const size_t kEpochs = 3;
  PropertyGraph graph = GeneratePowerLawGraph(kNodes, kEdges, 1.15, 33);

  // Nested hash views: edge e belongs to view t iff Mix64(e) lands under
  // the view's per-mille threshold, so view t+1 contains view t. The 1‰
  // steps keep consecutive views similar (the regime view collections are
  // built for): each δC_t is ~0.1% of the edges, so the mutation batch —
  // not the view deltas — dominates the incremental epoch's input.
  std::vector<std::string> names;
  std::vector<std::function<bool(EdgeId)>> preds;
  for (size_t t = 0; t < kViews; ++t) {
    names.push_back("h" + std::to_string(t));
    const uint64_t threshold = 500 + 1 * t;
    preds.push_back(
        [threshold](EdgeId e) { return Mix64(e) % 1000 < threshold; });
  }

  views::MaterializeOptions mopts;
  auto col = views::MaterializeCollectionWith(graph, "ingest", names, preds,
                                              mopts);
  GS_CHECK(col.ok()) << col.status().ToString();
  views::MaterializedCollection mc = std::move(col).value();

  analytics::Wcc wcc;
  views::LiveRunOptions lopts;
  lopts.weight_column = -1;
  lopts.dataflow.num_workers = 1;
  // Small frequent batches: a full-spine rewrite every epoch would cost
  // O(total state) per batch; lean on the amortized per-version compaction
  // and only fully compact every 8th epoch.
  lopts.full_compaction_period = 1;
  auto live = views::LiveRun::Start(wcc, graph, &mc, lopts);
  GS_CHECK(live.ok()) << live.status().ToString();

  bench::PrintHeader(
      "ingest workload: incremental epoch vs full recompute (WCC, 10 views)");
  const size_t batch_size = graph.num_edges() / 100;  // 1% of edges
  double total_incremental = 0;
  double total_scratch = 0;
  for (uint64_t epoch = 1; epoch <= kEpochs; ++epoch) {
    MutationBatch batch = IngestBatch(graph, epoch, batch_size);

    Timer inc_timer;
    MutationEffects effects;
    Status s = ApplyMutationBatch(&graph, batch, &effects);
    GS_CHECK(s.ok()) << s.ToString();
    double apply_seconds = inc_timer.Seconds();
    s = views::UpdateCollectionForMutations(&mc, graph,
                                            effects.touched_edges);
    GS_CHECK(s.ok()) << s.ToString();
    double maintain_seconds = inc_timer.Seconds() - apply_seconds;
    s = live.value()->AdvanceEpoch(effects.touched_edges);
    GS_CHECK(s.ok()) << s.ToString();
    double inc_seconds = inc_timer.Seconds();
    double advance_seconds = inc_seconds - apply_seconds - maintain_seconds;

    // Full recompute on the post-mutation graph: rematerialize all views,
    // then run the same computation over the whole collection.
    Timer scratch_timer;
    auto fresh = views::MaterializeCollectionWith(graph, "scratch", names,
                                                 preds, mopts);
    GS_CHECK(fresh.ok()) << fresh.status().ToString();
    views::ExecutionOptions eo;
    eo.strategy = splitting::Strategy::kDiffOnly;
    eo.dataflow.num_workers = 1;
    auto scratch = views::RunOnCollection(wcc, graph, fresh.value(), eo);
    GS_CHECK(scratch.ok()) << scratch.status().ToString();
    double scratch_seconds = scratch_timer.Seconds();

    total_incremental += inc_seconds;
    total_scratch += scratch_seconds;
    std::printf("epoch %llu: %zu mutations | incremental %.4fs "
                "(apply %.4f, maintain %.4f, advance %.4f) | "
                "scratch %.4fs | speedup %.1fx\n",
                static_cast<unsigned long long>(epoch), batch.size(),
                inc_seconds, apply_seconds, maintain_seconds,
                advance_seconds, scratch_seconds,
                inc_seconds > 0 ? scratch_seconds / inc_seconds : 0);
    report->AddRow()
        .Str("row", "ingest_epoch")
        .Int("epoch", epoch)
        .Int("mutations", batch.size())
        .Num("incremental_seconds", inc_seconds)
        .Num("scratch_seconds", scratch_seconds)
        .Num("speedup",
             inc_seconds > 0 ? scratch_seconds / inc_seconds : 0);
  }
  double overall =
      total_incremental > 0 ? total_scratch / total_incremental : 0;
  std::printf("overall: incremental %.4fs vs scratch %.4fs -> %.1fx "
              "(target >= 5x)\n",
              total_incremental, total_scratch, overall);
  report->AddRow()
      .Str("row", "ingest_overall")
      .Num("incremental_seconds", total_incremental)
      .Num("scratch_seconds", total_scratch)
      .Num("speedup", overall);
}

// ---------------------------------------------------------------------------
// EBM build: the vectorized batch evaluator (GVDL predicates lowered to
// 64-edge mask programs, gvdl/batch_eval.h) against the per-edge scalar
// compiler driving ComputeWith. Same 1M-edge graph, same 32 nested-threshold
// predicates; the two matrices must be bit-identical, and the batch path is
// expected to win by >= 2x (the ISSUE acceptance bar).

void RunEbmBuildWorkload(bench::BenchReport* report) {
  const size_t kNodes = 100000;
  const size_t kEdges = 1000000;
  const size_t kViews = 32;
  // Columns must exist before rows, so the graph is built by hand with
  // Zipf-ish endpoint popularity rather than via GeneratePowerLawGraph
  // (whose weight:int column can't be extended after the fact).
  Rng rng(33);
  PropertyGraph graph;
  graph.AddNodes(kNodes);
  auto& ep = graph.edge_properties();
  GS_CHECK(ep.AddColumn("duration", PropertyType::kInt).ok());
  GS_CHECK(ep.AddColumn("weight", PropertyType::kDouble).ok());
  auto endpoint = [&] {
    // Squaring a uniform draw skews popularity toward low node ids.
    double u = rng.UniformReal(0, 1);
    auto v = static_cast<VertexId>(u * u * kNodes);
    return v < kNodes ? v : kNodes - 1;
  };
  for (size_t i = 0; i < kEdges; ++i) {
    GS_CHECK(graph.AddEdge(endpoint(), endpoint()).ok());
    GS_CHECK(ep.AppendRow({PropertyValue(rng.Uniform(0, 63)),
                           PropertyValue(rng.UniformReal(0, 1))})
                 .ok());
  }

  // Nested views: view t keeps edges with duration <= 2t+1, half also
  // gated on weight, so consecutive views stay similar.
  std::vector<gvdl::ExprPtr> exprs;
  for (size_t t = 0; t < kViews; ++t) {
    std::string text = "duration <= " + std::to_string(2 * t + 1);
    if (t % 2 == 1) text += " and weight > 0.25";
    auto expr = gvdl::ParsePredicate(text);
    GS_CHECK(expr.ok()) << expr.status().ToString();
    exprs.push_back(*expr);
  }

  bench::PrintHeader("EBM build: batch mask programs vs per-edge predicates");
  Timer batch_timer;
  auto batch_ebm = views::EdgeBooleanMatrix::Compute(graph, exprs, nullptr);
  GS_CHECK(batch_ebm.ok()) << batch_ebm.status().ToString();
  double batch_seconds = batch_timer.Seconds();

  std::vector<std::function<bool(EdgeId)>> preds;
  for (const gvdl::ExprPtr& expr : exprs) {
    auto compiled = gvdl::CompiledEdgePredicate::Compile(expr, graph);
    GS_CHECK(compiled.ok()) << compiled.status().ToString();
    preds.push_back(
        [c = std::move(compiled).value()](EdgeId e) { return c.Evaluate(e); });
  }
  Timer scalar_timer;
  views::EdgeBooleanMatrix scalar_ebm =
      views::EdgeBooleanMatrix::ComputeWith(graph, preds, nullptr);
  double scalar_seconds = scalar_timer.Seconds();

  // Identical masks or the speedup is meaningless.
  for (size_t v = 0; v < kViews; ++v) {
    for (size_t w = 0; w < batch_ebm->words_per_column(); ++w) {
      GS_CHECK(batch_ebm->ColumnWord(v, w) == scalar_ebm.ColumnWord(v, w))
          << "EBM mismatch at view " << v << " word " << w;
    }
  }

  double speedup = batch_seconds > 0 ? scalar_seconds / batch_seconds : 0;
  std::printf("%zu edges x %zu views: batch %.4fs | scalar %.4fs | "
              "%.1fx (target >= 2x)\n",
              kEdges, kViews, batch_seconds, scalar_seconds, speedup);
  report->AddRow()
      .Str("row", "ebm_build")
      .Str("path", "batch")
      .Int("edges", kEdges)
      .Int("views", kViews)
      .Num("seconds", batch_seconds);
  report->AddRow()
      .Str("row", "ebm_build")
      .Str("path", "scalar_reference")
      .Int("edges", kEdges)
      .Int("views", kViews)
      .Num("seconds", scalar_seconds)
      .Num("speedup", speedup);
}

}  // namespace
}  // namespace gs

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  gs::bench::BenchReport report("micro_differential");
  gs::RunEngineWorkload(&report);
  gs::RunIngestWorkload(&report);
  gs::RunEbmBuildWorkload(&report);
  report.Write();
  return 0;
}
