// Microbenchmarks (google-benchmark) of the differential engine's
// primitives and the view-materialization kernels, plus a deterministic
// end-to-end engine workload whose per-operator timings and trace gauges
// are printed and written to BENCH_micro_differential.json.
#include <benchmark/benchmark.h>

#include "algorithms/algorithms.h"
#include "bench_util.h"
#include "common/random.h"
#include "differential/differential.h"
#include "graph/generators.h"
#include "ordering/optimizer.h"
#include "views/collection.h"
#include "views/ebm.h"

namespace gs {
namespace {

namespace dd = ::gs::differential;

void BM_Consolidate(benchmark::State& state) {
  Rng rng(1);
  dd::Batch<int64_t> base(state.range(0));
  for (auto& u : base) {
    u.data = rng.Uniform(0, state.range(0) / 2);
    u.diff = rng.Bernoulli(0.5) ? 1 : -1;
  }
  for (auto _ : state) {
    dd::Batch<int64_t> batch = base;
    dd::Consolidate(&batch);
    benchmark::DoNotOptimize(batch.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Consolidate)->Arg(1024)->Arg(65536);

void BM_TraceInsertAccumulate(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    dd::Trace<uint64_t, int64_t> trace;
    for (int64_t i = 0; i < state.range(0); ++i) {
      trace.Insert(rng.Index(256), i, dd::Time(0), 1);
    }
    dd::Batch<int64_t> out;
    trace.Accumulate(0, dd::Time(1), &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TraceInsertAccumulate)->Arg(4096);

void BM_JoinThroughput(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    dd::Dataflow df;
    dd::Input<std::pair<uint64_t, int64_t>> left(&df);
    dd::Input<std::pair<uint64_t, int64_t>> right(&df);
    auto joined = dd::Join(
        left.stream(), right.stream(),
        [](const uint64_t& k, const int64_t& a, const int64_t& b) {
          return std::make_pair(k, a + b);
        });
    dd::Capture(joined);
    for (int64_t i = 0; i < n; ++i) {
      left.Send({static_cast<uint64_t>(i % 1024), i}, 1);
      right.Send({static_cast<uint64_t>(i % 1024), i}, 1);
    }
    benchmark::DoNotOptimize(df.Step().ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_JoinThroughput)->Arg(8192);

void BM_ReduceMinThroughput(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(3);
  for (auto _ : state) {
    dd::Dataflow df;
    dd::Input<std::pair<uint64_t, int64_t>> in(&df);
    dd::Capture(dd::ReduceMin(in.stream()));
    for (int64_t i = 0; i < n; ++i) {
      in.Send({rng.Index(1024), i}, 1);
    }
    benchmark::DoNotOptimize(df.Step().ok());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ReduceMinThroughput)->Arg(8192);

void BM_BfsFixpoint(benchmark::State& state) {
  PropertyGraph g = GenerateUniformGraph(2000, state.range(0), 7);
  analytics::Bfs bfs(g.edge(0).src);
  for (auto _ : state) {
    dd::Dataflow df;
    dd::Input<WeightedEdge> edges(&df);
    dd::Capture(bfs.GraphAnalytics(&df, edges.stream()));
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      edges.Send(g.ResolveWeighted(e, -1), 1);
    }
    benchmark::DoNotOptimize(df.Step().ok());
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_BfsFixpoint)->Arg(10000);

void BM_IncrementalBfsStep(benchmark::State& state) {
  PropertyGraph g = GenerateUniformGraph(2000, 10000, 7);
  analytics::Bfs bfs(g.edge(0).src);
  dd::Dataflow df;
  dd::Input<WeightedEdge> edges(&df);
  dd::Capture(bfs.GraphAnalytics(&df, edges.stream()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    edges.Send(g.ResolveWeighted(e, -1), 1);
  }
  benchmark::DoNotOptimize(df.Step().ok());
  Rng rng(9);
  for (auto _ : state) {
    // One random edge swap per version.
    EdgeId victim = rng.Index(g.num_edges());
    edges.Send(g.ResolveWeighted(victim, -1), -1);
    benchmark::DoNotOptimize(df.Step().ok());
    edges.Send(g.ResolveWeighted(victim, -1), 1);
    benchmark::DoNotOptimize(df.Step().ok());
  }
}
BENCHMARK(BM_IncrementalBfsStep)->Iterations(200);

void BM_EbmHammingDistance(benchmark::State& state) {
  Rng rng(4);
  views::EdgeBooleanMatrix ebm(state.range(0), 8);
  for (EdgeId e = 0; e < static_cast<EdgeId>(state.range(0)); ++e) {
    for (size_t v = 0; v < 8; ++v) ebm.Set(e, v, rng.Bernoulli(0.3));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ebm.HammingDistance(i % 8, (i + 3) % 8));
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EbmHammingDistance)->Arg(1 << 20);

void BM_ChristofidesOrdering(benchmark::State& state) {
  Rng rng(5);
  views::EdgeBooleanMatrix ebm(20000, state.range(0));
  for (EdgeId e = 0; e < 20000; ++e) {
    for (int64_t v = 0; v < state.range(0); ++v) {
      ebm.Set(e, v, rng.Bernoulli(0.3));
    }
  }
  for (auto _ : state) {
    auto result = ordering::OrderCollection(ebm, nullptr);
    benchmark::DoNotOptimize(result.difference_count);
  }
}
BENCHMARK(BM_ChristofidesOrdering)->Arg(16)->Arg(64);

// ---------------------------------------------------------------------------
// Deterministic end-to-end engine workload. Unlike the micros above this
// runs a fixed seed/shape every time, so its wall time, join throughput, and
// per-operator breakdown are comparable across commits (the JSON is the
// perf-trajectory record; see bench/run_all.sh).

void RunEngineWorkload(bench::BenchReport* report) {
  const size_t kNodes = 8000;
  const size_t kEdges = 40000;
  const size_t kViews = 10;
  PropertyGraph graph = GeneratePowerLawGraph(kNodes, kEdges, 1.15, 33);
  auto batches = bench::RandomPerturbationBatches(graph, kViews, 40, 40, 17);
  auto mc =
      views::CollectionFromDiffBatches("micro", "g", std::move(batches));
  report->Meta()
      .Int("nodes", kNodes)
      .Int("edges", kEdges)
      .Int("views", kViews);

  struct Algo {
    const char* name;
    std::unique_ptr<analytics::Computation> computation;
  };
  std::vector<Algo> algos;
  algos.push_back({"WCC", std::make_unique<analytics::Wcc>()});
  algos.push_back(
      {"BFS", std::make_unique<analytics::Bfs>(graph.edge(0).src)});
  algos.push_back({"PR", std::make_unique<analytics::PageRank>(8)});

  bench::PrintHeader("engine workload: per-operator breakdown (diff-only)");
  for (size_t workers : {size_t{1}, size_t{4}}) {
    for (const Algo& algo : algos) {
      views::ExecutionOptions options;
      options.strategy = splitting::Strategy::kDiffOnly;
      options.dataflow.num_workers = workers;
      Timer timer;
      auto result = views::RunOnCollection(*algo.computation, graph, mc,
                                           options);
      GS_CHECK(result.ok()) << result.status().ToString();
      double seconds = timer.Seconds();
      const differential::DataflowStats& s = result->engine_stats;

      std::printf("\n%s W=%zu: %.3fs | %llu join matches (%.2fM/s) | "
                  "%llu updates | %llu reduce evals | %llu arrangement "
                  "shares | %llu trace entries in %llu spine batches\n",
                  algo.name, workers, seconds,
                  static_cast<unsigned long long>(s.join_matches),
                  seconds > 0
                      ? static_cast<double>(s.join_matches) / seconds / 1e6
                      : 0,
                  static_cast<unsigned long long>(s.updates_published),
                  static_cast<unsigned long long>(s.reduce_evaluations),
                  static_cast<unsigned long long>(s.arrangement_shares),
                  static_cast<unsigned long long>(s.trace_entries),
                  static_cast<unsigned long long>(s.trace_spine_batches));
      uint64_t total_nanos = 0;
      for (const auto& [op, nanos] : s.op_nanos) total_nanos += nanos;
      for (const auto& [op, nanos] : s.op_nanos) {
        std::printf("  %-16s %8.1fms  (%4.1f%%)\n", op.c_str(),
                    static_cast<double>(nanos) / 1e6,
                    total_nanos > 0 ? 100.0 * static_cast<double>(nanos) /
                                          static_cast<double>(total_nanos)
                                    : 0);
        report->AddRow()
            .Str("row", "op_time")
            .Str("algo", algo.name)
            .Int("workers", workers)
            .Str("op", op)
            .Int("nanos", nanos);
      }
      report->AddRow()
          .Str("row", "engine")
          .Str("algo", algo.name)
          .Int("workers", workers)
          .Num("seconds", seconds)
          .Int("join_matches", s.join_matches)
          .Num("join_matches_per_s",
               seconds > 0 ? static_cast<double>(s.join_matches) / seconds
                           : 0)
          .Int("updates_published", s.updates_published)
          .Int("reduce_evaluations", s.reduce_evaluations)
          .Int("arrangement_shares", s.arrangement_shares)
          .Int("trace_entries", s.trace_entries)
          .Int("trace_spine_batches", s.trace_spine_batches);
    }
  }
}

}  // namespace
}  // namespace gs

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  gs::bench::BenchReport report("micro_differential");
  gs::RunEngineWorkload(&report);
  report.Write();
  return 0;
}
