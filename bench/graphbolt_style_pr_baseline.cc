// Reproduces the §7.5 qualitative claim: algorithm-specific incremental
// maintenance (GraphBolt-style) beats black-box differential maintenance
// for PageRank, because a hand-written maintainer restarts the power
// iteration from the previous view's converged ranks instead of tracking
// per-iteration difference histories.
#include <unordered_map>

#include "bench_util.h"
#include "views/collection.h"

namespace gs::bench {
namespace {

// Hand-written incremental PageRank: keeps the dense rank vector; on a new
// view, re-runs the fixed-point from the previous ranks until ranks stop
// changing (or the iteration cap), touching every vertex per sweep but
// converging in very few sweeps after small changes. This mirrors the
// specialized `retract/propagatedelta` maintenance GraphBolt requires users
// to write (paper §7.5).
class SpecializedIncrementalPageRank {
 public:
  SpecializedIncrementalPageRank(size_t num_nodes, uint32_t max_iterations)
      : max_iterations_(max_iterations),
        present_(),
        ranks_(num_nodes, analytics::PageRank::Base()) {}

  void ApplyDiffs(const PropertyGraph& graph,
                  const std::vector<views::EdgeDiff>& diffs) {
    for (const views::EdgeDiff& d : diffs) {
      const Edge& e = graph.edge(d.edge);
      if (d.diff > 0) {
        adjacency_[e.src].push_back(e.dst);
        outdeg_[e.src]++;
      } else {
        auto& nbrs = adjacency_[e.src];
        auto it = std::find(nbrs.begin(), nbrs.end(), e.dst);
        if (it != nbrs.end()) nbrs.erase(it);
        outdeg_[e.src]--;
      }
    }
  }

  // Iterates from the current ranks until stable; returns sweeps used.
  uint32_t Recompute() {
    std::vector<int64_t> next(ranks_.size());
    uint32_t sweeps = 0;
    for (; sweeps < max_iterations_; ++sweeps) {
      std::fill(next.begin(), next.end(), analytics::PageRank::Base());
      for (const auto& [src, nbrs] : adjacency_) {
        int64_t deg = outdeg_[src];
        if (deg <= 0) continue;
        int64_t share = analytics::PageRank::Damp(ranks_[src]) / deg;
        for (VertexId dst : nbrs) next[dst] += share;
      }
      if (next == ranks_) break;
      std::swap(ranks_, next);
    }
    return sweeps;
  }

 private:
  uint32_t max_iterations_;
  std::vector<bool> present_;
  std::vector<int64_t> ranks_;
  std::unordered_map<VertexId, std::vector<VertexId>> adjacency_;
  std::unordered_map<VertexId, int64_t> outdeg_;
};

void Run(BenchReport* report) {
  const size_t kEdges = 40000;
  const size_t kViews = 12;
  PropertyGraph graph = GeneratePowerLawGraph(8000, kEdges, 1.15, 21);

  auto batches = RandomPerturbationBatches(graph, kViews, 20, 20, 5);
  auto batches_copy = batches;
  auto mc = views::CollectionFromDiffBatches("perturb", "g",
                                             std::move(batches));

  PrintHeader("§7.5: specialized incremental PR vs black-box differential");
  std::printf("graph: %zu edges, %zu views, ±20-edge diffs per view\n",
              kEdges, kViews);
  report->Meta().Int("edges", kEdges).Int("views", kViews);
  const std::vector<int> widths = {34, 12};
  analytics::PageRank pr(10);

  // Black-box differential (Graphsurge/DD route).
  {
    views::ExecutionOptions options;
    options.strategy = splitting::Strategy::kDiffOnly;
    Timer timer;
    auto r = views::RunOnCollection(pr, graph, mc, options);
    GS_CHECK(r.ok()) << r.status().ToString();
    double seconds = timer.Seconds();
    PrintRow({"differential (black-box DD)", Secs(seconds)}, widths);
    report->AddRow()
        .Str("variant", "differential")
        .Num("seconds", seconds)
        .Int("join_matches", r->engine_stats.join_matches);
  }
  // Scratch.
  {
    views::ExecutionOptions options;
    options.strategy = splitting::Strategy::kScratch;
    Timer timer;
    auto r = views::RunOnCollection(pr, graph, mc, options);
    GS_CHECK(r.ok()) << r.status().ToString();
    double seconds = timer.Seconds();
    PrintRow({"scratch (per-view rerun)", Secs(seconds)}, widths);
    report->AddRow().Str("variant", "scratch").Num("seconds", seconds);
  }
  // Specialized maintenance.
  {
    Timer timer;
    SpecializedIncrementalPageRank spr(graph.num_nodes(), 10);
    uint32_t total_sweeps = 0;
    for (const auto& batch : batches_copy) {
      spr.ApplyDiffs(graph, batch);
      total_sweeps += spr.Recompute();
    }
    double seconds = timer.Seconds();
    PrintRow({"specialized (GraphBolt-style)", Secs(seconds)}, widths);
    std::printf("  (specialized maintenance used %u total sweeps across %zu "
                "views)\n",
                total_sweeps, kViews);
    report->AddRow()
        .Str("variant", "specialized")
        .Num("seconds", seconds)
        .Int("sweeps", total_sweeps);
  }
  std::printf(
      "expected shape (paper §7.5): specialized < scratch/differential —\n"
      "the price of DD's generality on unstable computations like PR.\n");
}

}  // namespace
}  // namespace gs::bench

int main() {
  gs::bench::BenchReport report("graphbolt_style_pr_baseline");
  gs::bench::Run(&report);
  report.Write();
  return 0;
}
