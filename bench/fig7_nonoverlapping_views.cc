// Reproduces Figure 7 (paper §7.2): Cno — completely disjoint sliding
// window collections. Every consecutive view replaces all edges, the worst
// case for differential sharing. Expected shape: scratch wins by a bounded
// factor (paper: up to 2.5x) that does NOT grow with the number of views;
// adaptive tracks scratch.
#include "bench_util.h"

namespace gs::bench {
namespace {

void Run(BenchReport* report) {
  const int64_t kEnd = 1000000;

  TemporalGraphOptions topts;
  topts.num_nodes = 8000;
  topts.num_edges = 40000;
  topts.end_time = kEnd;
  PropertyGraph graph = GenerateTemporalGraph(topts);
  VertexId source = FirstSource(graph);

  Graphsurge system;
  GS_CHECK(system.AddGraph("so", std::move(graph)).ok());

  struct WindowConfig {
    const char* label;
    int64_t window;
  };
  const WindowConfig windows[] = {
      {"w=1/16", kEnd / 16},
      {"w=1/8", kEnd / 8},
      {"w=1/4", kEnd / 4},
      {"w=1/2", kEnd / 2},
  };
  std::vector<std::string> names;
  for (const WindowConfig& w : windows) {
    std::string name = "cno_" + std::to_string(&w - windows);
    GS_CHECK(system.Execute(DisjointWindowsGvdl(name, "so", w.window, kEnd))
                 .ok());
    names.push_back(name);
  }

  PrintHeader("Figure 7: non-overlapping window collections (Cno)");
  std::printf("graph: %zu nodes, %zu edges (temporal SO analog)\n",
              topts.num_nodes, topts.num_edges);
  report->Meta()
      .Int("nodes", topts.num_nodes)
      .Int("edges", topts.num_edges)
      .Str("workload", "disjoint windows (Cno)");
  const std::vector<int> widths = {10, 8, 8, 11, 11, 11, 16};
  PrintRow({"algo", "window", "views", "diff-only", "scratch", "adaptive",
            "scratch speedup"},
           widths);

  struct Algo {
    const char* name;
    std::unique_ptr<analytics::Computation> computation;
  };
  std::vector<Algo> algos;
  algos.push_back({"WCC", std::make_unique<analytics::Wcc>()});
  algos.push_back({"BFS", std::make_unique<analytics::Bfs>(source)});
  algos.push_back({"PR", std::make_unique<analytics::PageRank>(5)});

  for (const Algo& algo : algos) {
    for (size_t c = 0; c < names.size(); ++c) {
      auto mc = system.GetCollection(names[c]);
      GS_CHECK(mc.ok());
      StrategyTimes times =
          RunAllStrategies(system, *algo.computation, names[c]);
      PrintRow({algo.name, windows[c].label,
                std::to_string((*mc)->num_views()), Secs(times.diff_only),
                Secs(times.scratch), Secs(times.adaptive),
                Factor(times.diff_only, times.scratch)},
               widths);
      AddStrategyRow(report, algo.name, windows[c].label, (*mc)->num_views(),
                     times);
    }
  }
}

}  // namespace
}  // namespace gs::bench

int main() {
  gs::bench::BenchReport report("fig7_nonoverlapping_views");
  gs::bench::Run(&report);
  report.Write();
  return 0;
}
