// Reproduces Table 4 and Figures 8–9 (paper §7.4): perturbation analysis
// on graphs with ground-truth communities (LiveJournal / Wiki-topcats
// analogs). Each view removes one k-combination of the largest N
// communities; a good order is non-obvious, so the collection ordering
// optimizer is compared against 3 random orders —
//   Table 4:    #diffs and collection creation time (CCT), Ord vs R1–R3;
//   Figures 8/9: WCC, BFS, MPSP runtimes under each order, with the
//                adaptive splitting optimizer off and on.
#include "bench_util.h"
#include "ordering/optimizer.h"

namespace gs::bench {
namespace {

struct Dataset {
  const char* name;
  CommunityGraph cg;
};

// Builds one perturbation predicate per k-combination of the top N
// communities, testing the community bitmask node property.
std::vector<std::function<bool(EdgeId)>> PerturbationPredicates(
    const PropertyGraph& g, size_t n, size_t k,
    std::vector<std::string>* names) {
  auto col = g.node_properties().ColumnIndex("communities");
  GS_CHECK(col.ok());
  const Column* masks = &g.node_properties().column(*col);
  std::vector<std::function<bool(EdgeId)>> predicates;
  for (const std::vector<size_t>& combo : Combinations(n, k)) {
    uint64_t removed = 0;
    std::string label = "rm";
    for (size_t c : combo) {
      removed |= 1ULL << c;
      label += "_" + std::to_string(c);
    }
    names->push_back(label);
    const PropertyGraph* graph = &g;
    predicates.push_back([graph, masks, removed](EdgeId e) {
      uint64_t src_mask =
          static_cast<uint64_t>(masks->GetInt(graph->edge(e).src));
      uint64_t dst_mask =
          static_cast<uint64_t>(masks->GetInt(graph->edge(e).dst));
      return ((src_mask | dst_mask) & removed) == 0;
    });
  }
  return predicates;
}

void RunDataset(BenchReport* report, const char* dataset_name,
                const CommunityGraph& cg, size_t n, size_t k, uint64_t seed) {
  const PropertyGraph& g = cg.graph;
  std::printf("\n--- dataset %s: %zu nodes, %zu edges, C(%zu,%zu) = ",
              dataset_name, g.num_nodes(), g.num_edges(), n, k);

  std::vector<std::string> view_names;
  auto predicates = PerturbationPredicates(g, n, k, &view_names);
  std::printf("%zu views ---\n", predicates.size());

  ThreadPool pool(1);
  Timer ebm_timer;
  views::EdgeBooleanMatrix ebm =
      views::EdgeBooleanMatrix::ComputeWith(g, predicates, &pool);
  double ebm_seconds = ebm_timer.Seconds();

  // The four orders: optimizer vs three random permutations.
  struct OrderRun {
    std::string label;
    std::vector<size_t> order;
    uint64_t diffs = 0;
    double cct = 0;
  };
  std::vector<OrderRun> orders;
  {
    Timer t;
    ordering::OrderingResult ores = ordering::OrderCollection(ebm, &pool);
    orders.push_back({"Ord", ores.order, ores.difference_count,
                      ebm_seconds + t.Seconds()});
  }
  Rng rng(seed);
  for (int r = 1; r <= 3; ++r) {
    Timer t;
    std::vector<size_t> order = ordering::IdentityOrder(predicates.size());
    rng.Shuffle(&order);
    uint64_t diffs = ebm.DifferenceCount(order);
    orders.push_back({"R" + std::to_string(r), order, diffs,
                      ebm_seconds + t.Seconds()});
  }

  PrintHeader(std::string("Table 4 (") + dataset_name +
              "): #diffs and collection creation time");
  const std::vector<int> widths = {8, 12, 12, 12};
  PrintRow({"order", "#diffs", "vs Ord", "CCT"}, widths);
  for (const OrderRun& o : orders) {
    PrintRow({o.label, Count(o.diffs),
              Factor(static_cast<double>(o.diffs),
                     static_cast<double>(orders[0].diffs)),
              Secs(o.cct)},
             widths);
    report->AddRow()
        .Str("dataset", dataset_name)
        .Str("table", "table4")
        .Str("order", o.label)
        .Int("diffs", o.diffs)
        .Num("cct_s", o.cct);
  }

  // Figures 8/9: runtimes per order, adaptive off and on.
  Graphsurge system;
  PropertyGraph copy = cg.graph;  // keep cg intact for the second dataset
  GS_CHECK(system.AddGraph("g", std::move(copy)).ok());
  std::vector<std::string> collection_names;
  for (const OrderRun& o : orders) {
    views::MaterializeOptions mopts;
    mopts.explicit_order = o.order;
    std::string cname = std::string("c_") + o.label;
    GS_CHECK(
        system.CreateCollection(cname, "g", view_names, predicates, &mopts)
            .ok());
    collection_names.push_back(cname);
  }

  VertexId source = FirstSource(g);
  std::vector<std::pair<VertexId, VertexId>> pairs;
  Rng prng(seed + 1);
  for (int i = 0; i < 3; ++i) {
    pairs.emplace_back(source, prng.Index(g.num_nodes()));
  }

  struct Algo {
    const char* name;
    std::unique_ptr<analytics::Computation> computation;
  };
  std::vector<Algo> algos;
  algos.push_back({"WCC", std::make_unique<analytics::Wcc>()});
  algos.push_back({"BFS", std::make_unique<analytics::Bfs>(source)});
  algos.push_back({"MPSP", std::make_unique<analytics::Mpsp>(pairs)});

  PrintHeader(std::string("Figures 8/9 (") + dataset_name +
              "): runtime under each order");
  const std::vector<int> w2 = {8, 8, 13, 13, 14};
  PrintRow({"algo", "order", "no-adapt", "with-adapt", "Ord speedup"}, w2);
  int weight_col = g.FindWeightColumn("weight");
  std::vector<std::vector<double>> noadapt(algos.size()),
      withadapt(algos.size());
  for (size_t a = 0; a < algos.size(); ++a) {
    for (size_t c = 0; c < collection_names.size(); ++c) {
      views::ExecutionOptions options;
      options.weight_column = weight_col;
      options.strategy = splitting::Strategy::kDiffOnly;
      Timer t1;
      auto r1 = system.RunComputation(*algos[a].computation,
                                      collection_names[c], options);
      GS_CHECK(r1.ok()) << r1.status().ToString();
      noadapt[a].push_back(t1.Seconds());
      options.strategy = splitting::Strategy::kAdaptive;
      Timer t2;
      auto r2 = system.RunComputation(*algos[a].computation,
                                      collection_names[c], options);
      GS_CHECK(r2.ok()) << r2.status().ToString();
      withadapt[a].push_back(t2.Seconds());
    }
    for (size_t c = 0; c < collection_names.size(); ++c) {
      PrintRow({algos[a].name, orders[c].label, Secs(noadapt[a][c]),
                Secs(withadapt[a][c]),
                c == 0 ? "-" : Factor(noadapt[a][c], noadapt[a][0])},
               w2);
      report->AddRow()
          .Str("dataset", dataset_name)
          .Str("table", "fig8_9")
          .Str("algo", algos[a].name)
          .Str("order", orders[c].label)
          .Num("noadapt_s", noadapt[a][c])
          .Num("withadapt_s", withadapt[a][c]);
    }
  }
}

void Run(BenchReport* report) {
  // LiveJournal analog: larger communities, denser.
  CommunityGraphOptions lj;
  lj.num_nodes = 7000;
  lj.num_communities = 24;
  lj.intra_degree = 5.0;
  lj.background_degree = 0.8;
  lj.seed = 11;
  CommunityGraph lj_graph = GenerateCommunityGraph(lj);

  // Wiki-topcats analog: more, smaller, more-overlapping categories.
  CommunityGraphOptions wtc;
  wtc.num_nodes = 5500;
  wtc.num_communities = 32;
  wtc.avg_memberships = 2.0;
  wtc.intra_degree = 4.0;
  wtc.background_degree = 0.6;
  wtc.seed = 12;
  CommunityGraph wtc_graph = GenerateCommunityGraph(wtc);

  RunDataset(report, "LJ-analog", lj_graph, /*n=*/6, /*k=*/3, 101);
  RunDataset(report, "WTC-analog", wtc_graph, /*n=*/6, /*k=*/3, 202);
}

}  // namespace
}  // namespace gs::bench

int main() {
  gs::bench::BenchReport report("table4_fig8_fig9_ordering");
  gs::bench::Run(&report);
  report.Write();
  return 0;
}
