#!/usr/bin/env bash
# Runs every bench binary and collects the machine-readable BENCH_*.json
# reports. Usage:
#   bench/run_all.sh [--smoke] [--compare [baseline_dir]] [build_dir] [output_dir]
# Defaults: build_dir=build, output_dir=<build_dir>/bench_json.
# --smoke runs only the deterministic engine workload (micro_differential
# with the google-benchmark micros filtered out) — the CI observability
# check: fast, and the emitted JSON still carries the metrics snapshot.
# --compare diffs the fresh JSON against bench/baselines/ (or the given
# directory) with compare_baselines.py and exits nonzero on any wall-time
# regression beyond 15%.
# Build first with:
#   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"

SMOKE=0
COMPARE=0
BASELINE_DIR="${SCRIPT_DIR}/baselines"
while [[ "${1:-}" == --* ]]; do
  case "$1" in
    --smoke)
      SMOKE=1
      shift
      ;;
    --compare)
      COMPARE=1
      shift
      if [[ -n "${1:-}" && "${1:-}" != --* && -d "${1:-}" ]]; then
        BASELINE_DIR="$1"
        shift
      fi
      ;;
    *)
      echo "unknown option: $1" >&2
      exit 2
      ;;
  esac
done

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-${BUILD_DIR}/bench_json}"
BENCH_DIR="${BUILD_DIR}/bench"

if [[ ! -d "${BENCH_DIR}" ]]; then
  echo "error: ${BENCH_DIR} not found — build the project first" >&2
  exit 1
fi

mkdir -p "${OUT_DIR}"
export GS_BENCH_JSON_DIR="${OUT_DIR}"
# Health plane on by default: every bench runs with the metrics sampler and
# the stall watchdog active at their default cadences, so --compare doubles
# as the observability overhead gate. Override with GRAPHSURGE_SAMPLE_MS=0 /
# GRAPHSURGE_WATCHDOG=0 to measure without them.
# The scheduler attribution profiler (sched_profile, the /workersz data
# source) is always on — it is a handful of clock reads per Step() — so the
# 15% --compare bound also gates its overhead; its rollup lands in each
# BENCH_*.json under "sched".
export GRAPHSURGE_SAMPLE_MS="${GRAPHSURGE_SAMPLE_MS:-250}"
export GRAPHSURGE_WATCHDOG="${GRAPHSURGE_WATCHDOG:-1}"
export GRAPHSURGE_FLIGHT_DIR="${GRAPHSURGE_FLIGHT_DIR:-${OUT_DIR}}"

BENCHES=(
  micro_differential
  table2_diff_vs_scratch
  fig6_similar_views
  fig7_nonoverlapping_views
  table3_adaptive_splitting
  table4_fig8_fig9_ordering
  fig10_scalability
  bounds_best_worst_case
  graphbolt_style_pr_baseline
)

EXTRA_ARGS=()
if (( SMOKE )); then
  BENCHES=(micro_differential)
  # ^$ matches no benchmark name: skip the micros, keep the deterministic
  # end-to-end engine workload that main() always runs.
  EXTRA_ARGS=(--benchmark_filter='^$')
fi

for bench in "${BENCHES[@]}"; do
  bin="${BENCH_DIR}/${bench}"
  if [[ ! -x "${bin}" ]]; then
    echo "skipping ${bench} (not built)" >&2
    continue
  fi
  echo "==> ${bench}"
  "${bin}" ${EXTRA_ARGS[@]+"${EXTRA_ARGS[@]}"}
done

echo
echo "JSON reports in ${OUT_DIR}:"
ls -l "${OUT_DIR}"

if (( COMPARE )); then
  echo
  echo "==> comparing against baselines in ${BASELINE_DIR}"
  # Capture the exit code explicitly instead of relying on `set -e`: when
  # this script runs mid-pipeline (`run_all.sh --compare | tee ...`) or in a
  # conditional context, -e is suppressed and a comparator failure would
  # otherwise be swallowed — the regression gate must not silently pass.
  rc=0
  python3 "${SCRIPT_DIR}/compare_baselines.py" \
    --fresh "${OUT_DIR}" --baseline "${BASELINE_DIR}" || rc=$?
  if (( rc != 0 )); then
    echo "baseline comparison FAILED (exit ${rc})" >&2
    exit "${rc}"
  fi
  echo "baseline comparison passed"
fi
