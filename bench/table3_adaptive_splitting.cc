// Reproduces Table 3 (paper §7.3): three view collections on a citation
// (Semantic Scholar analog) graph with mixed addition/deletion structure:
//   Csl        — a sliding decade window (adds + removes every view),
//   Cex-sh-sl  — expand, then shrink, then slide,
//   Caut       — cartesian product of year windows × co-author windows:
//                addition-only runs punctuated by non-overlapping slides,
//                the case where adaptive beats BOTH fixed strategies by
//                splitting exactly at the slides.
#include "bench_util.h"

namespace gs::bench {
namespace {

std::string YearWindow(int lo, int hi) {
  return "src.year >= " + std::to_string(lo) +
         " and src.year <= " + std::to_string(hi) + " and dst.year >= " +
         std::to_string(lo);
}

void Run(BenchReport* report) {
  CitationGraphOptions copts;
  copts.first_year = 1936;
  copts.last_year = 2020;
  copts.papers_first_year = 60;
  copts.yearly_growth = 1.03;
  PropertyGraph graph = GenerateCitationGraph(copts);
  VertexId source = FirstSource(graph);
  std::printf("citation graph: %zu papers, %zu citations\n",
              graph.num_nodes(), graph.num_edges());
  report->Meta()
      .Int("nodes", graph.num_nodes())
      .Int("edges", graph.num_edges())
      .Str("workload", "mixed add/remove collections");

  Graphsurge system;
  GS_CHECK(system.AddGraph("pc", std::move(graph)).ok());

  // Csl: [1936,1945], [1941,1950], ..., slide by 5 years.
  {
    std::string q = "create view collection csl on pc ";
    size_t i = 0;
    for (int lo = 1936; lo + 9 <= 2020; lo += 5, ++i) {
      if (i) q += ", ";
      q += "[sl" + std::to_string(i) + ": " + YearWindow(lo, lo + 9) + "]";
    }
    GS_CHECK(system.Execute(q).ok());
  }
  // Cex-sh-sl: expand [1995,2000]→[1995,2005], shrink →[2000,2005],
  // slide →[2005,2010], by 1-year steps.
  {
    std::string q = "create view collection cexshsl on pc ";
    std::vector<std::pair<int, int>> windows;
    for (int hi = 2000; hi <= 2005; ++hi) windows.push_back({1995, hi});
    for (int lo = 1996; lo <= 2000; ++lo) windows.push_back({lo, 2005});
    for (int s = 1; s <= 5; ++s) windows.push_back({2000 + s, 2005 + s});
    for (size_t i = 0; i < windows.size(); ++i) {
      if (i) q += ", ";
      q += "[es" + std::to_string(i) + ": " +
           YearWindow(windows[i].first, windows[i].second) + "]";
    }
    GS_CHECK(system.Execute(q).ok());
  }
  // Caut: non-overlapping 5-year windows × expanding co-author windows.
  {
    std::string q = "create view collection caut on pc ";
    size_t i = 0;
    for (int lo = 1996; lo <= 2016; lo += 5) {
      for (int co = 5; co <= 25; co += 5) {
        if (i) q += ", ";
        q += "[au" + std::to_string(i) + ": " + YearWindow(lo, lo + 4) +
             " and src.coauthors <= " + std::to_string(co) +
             " and dst.coauthors <= " + std::to_string(co) + "]";
        ++i;
      }
    }
    GS_CHECK(system.Execute(q).ok());
  }

  PrintHeader("Table 3: adaptive splitting on mixed collections");
  const std::vector<int> widths = {8, 10, 8, 11, 11, 11, 8};
  PrintRow({"algo", "collection", "views", "diff-only", "scratch",
            "adaptive", "splits"},
           widths);

  struct Algo {
    const char* name;
    std::unique_ptr<analytics::Computation> computation;
  };
  std::vector<Algo> algos;
  algos.push_back({"WCC", std::make_unique<analytics::Wcc>()});
  algos.push_back({"BFS", std::make_unique<analytics::Bfs>(source)});
  algos.push_back({"PR", std::make_unique<analytics::PageRank>(5)});

  for (const Algo& algo : algos) {
    for (const char* cname : {"csl", "cexshsl", "caut"}) {
      auto mc = system.GetCollection(cname);
      GS_CHECK(mc.ok());
      views::ExecutionOptions options;
      options.chunk_size = 5;  // Caut's year slides come every 5 views
      StrategyTimes times =
          RunAllStrategies(system, *algo.computation, cname, options);
      PrintRow({algo.name, cname, std::to_string((*mc)->num_views()),
                Secs(times.diff_only), Secs(times.scratch),
                Secs(times.adaptive), std::to_string(times.adaptive_splits)},
               widths);
      AddStrategyRow(report, algo.name, cname, (*mc)->num_views(), times);
    }
  }
}

}  // namespace
}  // namespace gs::bench

int main() {
  gs::bench::BenchReport report("table3_adaptive_splitting");
  gs::bench::Run(&report);
  report.Write();
  return 0;
}
