// Shared helpers for the paper-reproduction bench harnesses: aligned table
// printing, strategy sweeps, and the workload builders used by several
// tables/figures.
#ifndef GRAPHSURGE_BENCH_BENCH_UTIL_H_
#define GRAPHSURGE_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/graphsurge.h"
#include "algorithms/algorithms.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/sched_profile.h"
#include "common/timer.h"
#include "common/timeseries.h"
#include "common/watchdog.h"
#include "graph/generators.h"
#include "server/status_server.h"

namespace gs::bench {

// ---------------------------------------------------------------------------
// Output formatting

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRow(const std::vector<std::string>& cells,
                     const std::vector<int>& widths) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%-*s", widths[std::min(i, widths.size() - 1)],
                cells[i].c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

inline std::string Secs(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fs", s);
  return buf;
}

inline std::string Factor(double base, double other) {
  char buf[32];
  if (other <= 0) return "-";
  std::snprintf(buf, sizeof(buf), "%.1fx", base / other);
  return buf;
}

inline std::string Count(uint64_t n) {
  char buf[32];
  if (n >= 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(n) / 1e6);
  } else if (n >= 10'000) {
    std::snprintf(buf, sizeof(buf), "%.0fK", static_cast<double>(n) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(n));
  }
  return buf;
}

// ---------------------------------------------------------------------------
// Machine-readable results
//
// Every bench binary emits a BENCH_<name>.json next to its table output so
// the perf trajectory across commits can be tracked without parsing tables.
// Layout: {"bench": <name>, "meta": {...}, "metrics": {...},
// "rows": [{...}, ...]} — one row object per printed table row, fields
// named by the caller; "metrics" is the process-wide metrics-registry
// snapshot (common/metrics.h) taken when the report is written.

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {
    // Every bench binary is scrapeable: GRAPHSURGE_STATUS_PORT starts the
    // embedded status server even in harnesses that drive the engine
    // directly without constructing an api::Graphsurge. The health plane
    // rides along the same way (GRAPHSURGE_SAMPLE_MS / GRAPHSURGE_WATCHDOG),
    // which doubles as the overhead gate: the --compare regression check
    // runs with sampler + watchdog active at their default cadences.
    server::StatusServer::MaybeStartFromEnv();
    timeseries::Sampler::MaybeStartFromEnv();
    watchdog::Watchdog::MaybeStartFromEnv();
  }

  /// A single result row; fields keep insertion order.
  class Row {
   public:
    Row& Str(const std::string& key, const std::string& value) {
      fields_.emplace_back(key, Quote(value));
      return *this;
    }
    Row& Num(const std::string& key, double value) {
      char buf[40];
      if (!std::isfinite(value)) {
        std::snprintf(buf, sizeof(buf), "null");
      } else {
        std::snprintf(buf, sizeof(buf), "%.9g", value);
      }
      fields_.emplace_back(key, buf);
      return *this;
    }
    Row& Int(const std::string& key, uint64_t value) {
      fields_.emplace_back(key, std::to_string(value));
      return *this;
    }

   private:
    friend class BenchReport;
    static std::string Quote(const std::string& s) {
      std::string out = "\"";
      for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
              char buf[8];
              std::snprintf(buf, sizeof(buf), "\\u%04x", c);
              out += buf;
            } else {
              out += c;
            }
        }
      }
      out += '"';
      return out;
    }
    std::string Render() const {
      std::string out = "{";
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (i) out += ", ";
        out += Quote(fields_[i].first) + ": " + fields_[i].second;
      }
      out += "}";
      return out;
    }
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  /// Run-level metadata (graph sizes, view counts, worker counts, ...).
  Row& Meta() { return meta_; }
  /// Appends and returns a new result row (reference stays valid — rows are
  /// deque-backed).
  Row& AddRow() {
    rows_.emplace_back();
    return rows_.back();
  }

  /// Output path: $GS_BENCH_JSON_DIR/BENCH_<name>.json, or the current
  /// directory when the env var is unset.
  std::string path() const {
    std::string dir;
    if (const char* env = std::getenv("GS_BENCH_JSON_DIR")) dir = env;
    if (!dir.empty() && dir.back() != '/') dir += '/';
    return dir + "BENCH_" + name_ + ".json";
  }

  /// Writes the report; call once at the end of main().
  void Write() const {
    std::string out = "{\n  \"bench\": " + Row::Quote(name_) + ",\n";
    out += "  \"meta\": " + meta_.Render() + ",\n";
    out += "  \"metrics\": " + metrics::Registry::Global().JsonSnapshot() +
           ",\n";
    out += "  \"timeseries\": " + timeseries::Store::Global().ToJson() +
           ",\n";
    // Process-lifetime scheduler attribution rollup (busy/exchange/barrier/
    // seal/idle nanos + skew). Nanosecond fields, so the --compare seconds
    // gate ignores it; trajectory tooling can chart busy_frac per commit.
    out += "  \"sched\": " + sched::GlobalSummaryJson() + ",\n  \"rows\": [\n";
    for (size_t i = 0; i < rows_.size(); ++i) {
      out += "    " + rows_[i].Render();
      out += i + 1 < rows_.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    std::string file = path();
    if (std::FILE* f = std::fopen(file.c_str(), "w")) {
      std::fwrite(out.data(), 1, out.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", file.c_str());
    } else {
      std::fprintf(stderr, "could not write %s\n", file.c_str());
    }
  }

 private:
  std::string name_;
  Row meta_;
  std::deque<Row> rows_;
};

// ---------------------------------------------------------------------------
// Strategy sweeps

struct StrategyTimes {
  double diff_only = 0;
  double scratch = 0;
  double adaptive = 0;
  size_t adaptive_splits = 0;
  /// Engine counters of the diff-only run (join matches, trace sizes, ...).
  differential::DataflowStats diff_stats;
};

/// Runs `computation` on `collection_name` under all three strategies.
inline StrategyTimes RunAllStrategies(const Graphsurge& system,
                                      const analytics::Computation& computation,
                                      const std::string& collection_name,
                                      views::ExecutionOptions options =
                                          views::ExecutionOptions()) {
  StrategyTimes times;
  for (auto strategy :
       {splitting::Strategy::kDiffOnly, splitting::Strategy::kScratch,
        splitting::Strategy::kAdaptive}) {
    options.strategy = strategy;
    Timer timer;
    auto result = system.RunComputation(computation, collection_name, options);
    double seconds = timer.Seconds();
    if (!result.ok()) {
      std::fprintf(stderr, "run failed (%s on %s): %s\n",
                   splitting::StrategyName(strategy), collection_name.c_str(),
                   result.status().ToString().c_str());
      continue;
    }
    switch (strategy) {
      case splitting::Strategy::kDiffOnly:
        times.diff_only = seconds;
        times.diff_stats = result->engine_stats;
        break;
      case splitting::Strategy::kScratch:
        times.scratch = seconds;
        break;
      case splitting::Strategy::kAdaptive:
        times.adaptive = seconds;
        times.adaptive_splits = result->num_splits;
        break;
    }
  }
  return times;
}

/// Standard JSON row for a three-strategy sweep: wall times per strategy
/// plus the diff-only run's engine counters (join-match throughput is the
/// headline efficiency metric tracked across commits).
inline void AddStrategyRow(BenchReport* report, const std::string& algo,
                           const std::string& config, size_t views,
                           const StrategyTimes& times) {
  const differential::DataflowStats& s = times.diff_stats;
  report->AddRow()
      .Str("algo", algo)
      .Str("config", config)
      .Int("views", views)
      .Num("diff_only_s", times.diff_only)
      .Num("scratch_s", times.scratch)
      .Num("adaptive_s", times.adaptive)
      .Int("adaptive_splits", times.adaptive_splits)
      .Int("join_matches", s.join_matches)
      .Num("join_matches_per_s",
           times.diff_only > 0
               ? static_cast<double>(s.join_matches) / times.diff_only
               : 0)
      .Int("updates_published", s.updates_published)
      .Int("reduce_evaluations", s.reduce_evaluations)
      .Int("arrangement_shares", s.arrangement_shares);
}

// ---------------------------------------------------------------------------
// Workload builders

/// GVDL for an expanding-window collection over a temporal graph: the first
/// view covers [0, initial]; each later view extends by `step` until
/// `end` (paper §7.2 Csim).
inline std::string ExpandingWindowsGvdl(const std::string& name,
                                        const std::string& graph,
                                        int64_t initial, int64_t step,
                                        int64_t end) {
  std::string q = "create view collection " + name + " on " + graph + " ";
  size_t i = 0;
  for (int64_t hi = initial; hi <= end; hi += step, ++i) {
    if (i) q += ", ";
    q += "[w" + std::to_string(i) + ": timestamp <= " + std::to_string(hi) +
         "]";
    if (hi == end) break;
    if (hi + step > end) {  // final view covers the full range
      q += ", [w" + std::to_string(i + 1) +
           ": timestamp <= " + std::to_string(end) + "]";
      break;
    }
  }
  return q;
}

/// GVDL for completely disjoint sliding windows (paper §7.2 Cno).
inline std::string DisjointWindowsGvdl(const std::string& name,
                                       const std::string& graph,
                                       int64_t window, int64_t end) {
  std::string q = "create view collection " + name + " on " + graph + " ";
  size_t i = 0;
  for (int64_t lo = 0; lo < end; lo += window, ++i) {
    int64_t hi = std::min(end, lo + window);
    if (i) q += ", ";
    q += "[s" + std::to_string(i) + ": timestamp > " + std::to_string(lo) +
         " and timestamp <= " + std::to_string(hi) + "]";
  }
  return q;
}

/// Random-perturbation difference batches (Table 2's controlled
/// collections): view 0 is the base graph; each later view adds `adds` new
/// random edges and removes `removes` present ones.
inline std::vector<std::vector<views::EdgeDiff>> RandomPerturbationBatches(
    const PropertyGraph& graph, size_t num_views, size_t adds, size_t removes,
    uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<views::EdgeDiff>> batches;
  std::vector<EdgeId> present;
  std::vector<EdgeId> absent;
  // Start with ~80% of edges present so there is headroom to add.
  std::vector<bool> in(graph.num_edges(), false);
  std::vector<views::EdgeDiff> base;
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (rng.Bernoulli(0.8)) {
      in[e] = true;
      present.push_back(e);
      base.push_back({e, 1});
    } else {
      absent.push_back(e);
    }
  }
  batches.push_back(std::move(base));
  for (size_t v = 1; v < num_views; ++v) {
    std::vector<views::EdgeDiff> batch;
    for (size_t a = 0; a < adds && !absent.empty(); ++a) {
      size_t idx = rng.Index(absent.size());
      EdgeId e = absent[idx];
      absent[idx] = absent.back();
      absent.pop_back();
      present.push_back(e);
      batch.push_back({e, 1});
    }
    for (size_t r = 0; r < removes && present.size() > 1; ++r) {
      size_t idx = rng.Index(present.size());
      EdgeId e = present[idx];
      present[idx] = present.back();
      present.pop_back();
      absent.push_back(e);
      batch.push_back({e, -1});
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

/// All k-subsets of {0..n-1} (perturbation-analysis view enumeration,
/// paper §7.4's C(N,k) collections).
inline std::vector<std::vector<size_t>> Combinations(size_t n, size_t k) {
  std::vector<std::vector<size_t>> out;
  std::vector<size_t> cur;
  std::function<void(size_t)> rec = [&](size_t start) {
    if (cur.size() == k) {
      out.push_back(cur);
      return;
    }
    for (size_t i = start; i + (k - cur.size()) <= n; ++i) {
      cur.push_back(i);
      rec(i + 1);
      cur.pop_back();
    }
  };
  rec(0);
  return out;
}

/// First vertex with an outgoing edge (the paper's BFS/MPSP source rule).
inline VertexId FirstSource(const PropertyGraph& graph) {
  return graph.num_edges() > 0 ? graph.edge(0).src : 0;
}

}  // namespace gs::bench

#endif  // GRAPHSURGE_BENCH_BENCH_UTIL_H_
