// Reproduces Figure 10 (paper §7.6): scalability of BFS, WCC, and PageRank
// on a Twitter-analog social network with city/state/country attributes and
// affinity-weighted edges, over the paper's 9-view collection (3 geography
// levels × 3 affinity thresholds).
//
// The engine runs each view collection on a real multi-worker sharded
// dataflow (differential/sharded.h): W worker shards with hash-partitioned
// keyed state, exchanged at join/reduce boundaries, executing on W threads.
// Substitution note (DESIGN.md §5): the paper scales across 1–12 machines;
// CI-class hosts may expose only a core or two, so threads can be
// timesharing a core and measured wall time then understates the engine's
// scaling. We therefore report, per worker count W:
//   measured  — wall time of the W-worker run (true speedup on ≥W cores);
//   modeled   — measured × max(events_w) / Σ(events_w), the critical-path
//               time of the same run with its per-worker event streams
//               perfectly overlapped (events_w is *measured* per-shard
//               scheduler work, not a hash model);
//   speedup   — modeled T(1) / modeled T(W);
//   skew      — max(events_w) / mean(events_w), the load-balance loss.
#include "bench_util.h"

namespace gs::bench {
namespace {

void Run(BenchReport* report) {
  SocialNetworkOptions sopts;
  sopts.num_nodes = 8000;
  sopts.num_edges = 40000;
  PropertyGraph graph = GenerateSocialNetwork(sopts);
  VertexId source = FirstSource(graph);

  Graphsurge system;
  GS_CHECK(system.AddGraph("tw", std::move(graph)).ok());
  // 9 views: same-{city,state,country} × affinity ≥ {2,1,0}.
  std::string q = "create view collection geo on tw ";
  size_t i = 0;
  for (const char* level : {"city", "state", "country"}) {
    for (int affinity = 2; affinity >= 0; --affinity) {
      if (i) q += ", ";
      q += "[v" + std::to_string(i) + ": src." + level + " = dst." + level +
           " and affinity >= " + std::to_string(affinity) + "]";
      ++i;
    }
  }
  GS_CHECK(system.Execute(q).ok());
  auto mc = system.GetCollection("geo");
  GS_CHECK(mc.ok());

  PrintHeader("Figure 10: scalability (sharded workers; see header note)");
  std::printf("graph: %zu nodes, %zu edges; collection: %zu views, %s total "
              "diffs\n",
              sopts.num_nodes, sopts.num_edges, (*mc)->num_views(),
              Count((*mc)->total_diffs).c_str());
  report->Meta()
      .Int("nodes", sopts.num_nodes)
      .Int("edges", sopts.num_edges)
      .Int("views", (*mc)->num_views())
      .Int("total_diffs", (*mc)->total_diffs);
  const std::vector<int> widths = {10, 9, 11, 13, 13, 10};
  PrintRow({"algo", "workers", "measured", "modeled", "speedup", "skew"},
           widths);

  struct Algo {
    const char* name;
    std::unique_ptr<analytics::Computation> computation;
  };
  std::vector<Algo> algos;
  algos.push_back({"BFS", std::make_unique<analytics::Bfs>(source)});
  algos.push_back({"WCC", std::make_unique<analytics::Wcc>()});
  algos.push_back({"PageRank", std::make_unique<analytics::PageRank>(8)});

  for (const Algo& algo : algos) {
    double t1_modeled = 0;
    for (size_t workers : {1, 2, 4, 8}) {
      views::ExecutionOptions options;
      options.strategy = splitting::Strategy::kDiffOnly;
      options.dataflow.num_workers = workers;
      Timer timer;
      auto result = system.RunComputation(*algo.computation, "geo", options);
      GS_CHECK(result.ok()) << result.status().ToString();
      double measured = timer.Seconds();

      const auto& events = result->per_worker_events;
      uint64_t total = 0, max_shard = 0;
      for (uint64_t e : events) {
        total += e;
        max_shard = std::max(max_shard, e);
      }
      double skew = total == 0 ? 1.0
                               : static_cast<double>(max_shard) *
                                     static_cast<double>(events.size()) /
                                     static_cast<double>(total);
      double modeled =
          total == 0 ? measured
                     : measured * static_cast<double>(max_shard) /
                           static_cast<double>(total);
      if (workers == 1) t1_modeled = modeled;
      char skew_buf[16];
      std::snprintf(skew_buf, sizeof(skew_buf), "%.2f", skew);
      PrintRow({algo.name, std::to_string(workers), Secs(measured),
                Secs(modeled), Factor(t1_modeled, modeled), skew_buf},
               widths);
      report->AddRow()
          .Str("algo", algo.name)
          .Int("workers", workers)
          .Num("measured_s", measured)
          .Num("modeled_s", modeled)
          .Num("speedup", modeled > 0 ? t1_modeled / modeled : 0)
          .Num("skew", skew)
          .Int("join_matches", result->engine_stats.join_matches);
    }
  }
}

}  // namespace
}  // namespace gs::bench

int main() {
  gs::bench::BenchReport report("fig10_scalability");
  gs::bench::Run(&report);
  report.Write();
  return 0;
}
