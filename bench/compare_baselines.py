#!/usr/bin/env python3
"""Compare fresh BENCH_*.json reports against committed baselines.

Usage:
  bench/compare_baselines.py --fresh <dir> [--baseline bench/baselines]
                             [--threshold 0.15] [--min-seconds 0.05]

Rows are matched by their identity fields (every string-valued field plus
the integer fields named in ID_INT_KEYS); wall-time fields ("seconds" and
anything ending in "_s", excluding "_per_s" throughputs) are then compared
pairwise. A fresh time more than
--threshold above the baseline is a regression; the script prints every
comparison and exits 1 if any regression was found. Baselines below
--min-seconds are skipped — micro-times are dominated by noise.

Only the Python standard library is used.
"""

import argparse
import json
import os
import sys

# Integer-valued fields that identify a row rather than measure it.
ID_INT_KEYS = {"workers", "views"}


def row_identity(row):
    ident = []
    for key in sorted(row):
        value = row[key]
        if isinstance(value, str) or (key in ID_INT_KEYS and
                                      isinstance(value, int)):
            ident.append((key, value))
    return tuple(ident)


def time_fields(row):
    out = {}
    for key, value in row.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        # "_per_s" fields are throughputs (higher is better), not times —
        # comparing them as wall-clock would flag speedups as regressions.
        if key == "seconds" or (key.endswith("_s") and
                                not key.endswith("_per_s")):
            out[key] = float(value)
    return out


def index_rows(report):
    index = {}
    for row in report.get("rows", []):
        ident = row_identity(row)
        # Duplicate identities (e.g. repeated configs) keep the first row;
        # benches emit each configuration once.
        index.setdefault(ident, row)
    return index


def compare_report(name, fresh, baseline, threshold, min_seconds):
    regressions = []
    compared = 0
    fresh_index = index_rows(fresh)
    base_index = index_rows(baseline)
    for ident, base_row in base_index.items():
        fresh_row = fresh_index.get(ident)
        label = " ".join(f"{k}={v}" for k, v in ident)
        if fresh_row is None:
            print(f"  [missing] {label} — row absent from fresh report")
            continue
        base_times = time_fields(base_row)
        fresh_times = time_fields(fresh_row)
        for key, base_value in sorted(base_times.items()):
            if key not in fresh_times:
                continue
            if base_value < min_seconds:
                continue
            fresh_value = fresh_times[key]
            delta = (fresh_value - base_value) / base_value
            compared += 1
            marker = " "
            if delta > threshold:
                marker = "!"
                regressions.append(
                    f"{name}: {label} {key} {base_value:.3f}s -> "
                    f"{fresh_value:.3f}s ({delta:+.1%})")
            print(f"  [{marker}] {label} {key}: "
                  f"{base_value:.3f}s -> {fresh_value:.3f}s ({delta:+.1%})")
    return compared, regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True,
                        help="directory with freshly generated BENCH_*.json")
    parser.add_argument("--baseline", default=None,
                        help="baseline directory (default: bench/baselines "
                             "next to this script)")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative wall-time regression that fails the "
                             "comparison (default 0.15 = 15%%)")
    parser.add_argument("--min-seconds", type=float, default=0.05,
                        help="skip baseline times below this (noise floor)")
    args = parser.parse_args()

    baseline_dir = args.baseline or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "baselines")

    if not os.path.isdir(baseline_dir):
        print(f"error: baseline directory not found: {baseline_dir}",
              file=sys.stderr)
        return 2

    baseline_files = sorted(
        f for f in os.listdir(baseline_dir)
        if f.startswith("BENCH_") and f.endswith(".json"))
    if not baseline_files:
        print(f"error: no BENCH_*.json baselines in {baseline_dir}",
              file=sys.stderr)
        return 2

    total_compared = 0
    all_regressions = []
    for filename in baseline_files:
        fresh_path = os.path.join(args.fresh, filename)
        print(f"== {filename}")
        if not os.path.isfile(fresh_path):
            print("  [missing] no fresh report — bench not run, skipping")
            continue
        with open(os.path.join(baseline_dir, filename)) as f:
            baseline = json.load(f)
        with open(fresh_path) as f:
            fresh = json.load(f)
        compared, regressions = compare_report(
            filename, fresh, baseline, args.threshold, args.min_seconds)
        total_compared += compared
        all_regressions.extend(regressions)

    print(f"\ncompared {total_compared} wall-time measurements against "
          f"{len(baseline_files)} baseline report(s); "
          f"{len(all_regressions)} regression(s) beyond "
          f"{args.threshold:.0%}")
    if all_regressions:
        print("\nregressions:", file=sys.stderr)
        for r in all_regressions:
            print(f"  {r}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
