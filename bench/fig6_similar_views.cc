// Reproduces Figure 6 (paper §7.2): Csim — expanding time-window
// collections on a temporal (Stack Overflow analog) graph. The first view
// is a large initial window; each later view extends it by w. Smaller w ⇒
// more, more-similar views ⇒ diff-only wins by growing factors; PageRank
// is the unstable exception. `adaptive` should track the winner.
#include "bench_util.h"

namespace gs::bench {
namespace {

void Run(BenchReport* report) {
  const int64_t kEnd = 1000000;
  const int64_t kInitial = kEnd / 2;

  TemporalGraphOptions topts;
  topts.num_nodes = 8000;
  topts.num_edges = 40000;
  topts.end_time = kEnd;
  PropertyGraph graph = GenerateTemporalGraph(topts);
  VertexId source = FirstSource(graph);

  Graphsurge system;
  GS_CHECK(system.AddGraph("so", std::move(graph)).ok());

  // Window extensions (fractions of the remaining half), mirroring the
  // paper's 1d/1m/6m/1y/2y ladder: smaller w ⇒ more views.
  struct WindowConfig {
    const char* label;
    int64_t step;
  };
  const WindowConfig windows[] = {
      {"w=1/32", kInitial / 16}, {"w=1/16", kInitial / 8},
      {"w=1/8", kInitial / 4},   {"w=1/4", kInitial / 2},
      {"w=1/2", kInitial},
  };
  std::vector<std::string> collection_names;
  for (const WindowConfig& w : windows) {
    std::string name = "csim_" + std::to_string(&w - windows);
    GS_CHECK(system
                 .Execute(ExpandingWindowsGvdl(name, "so", kInitial, w.step,
                                               kEnd))
                 .ok());
    collection_names.push_back(name);
  }

  PrintHeader("Figure 6: expanding-window collections (Csim)");
  std::printf("graph: %zu nodes, %zu edges (temporal SO analog)\n",
              topts.num_nodes, topts.num_edges);
  report->Meta()
      .Int("nodes", topts.num_nodes)
      .Int("edges", topts.num_edges)
      .Str("workload", "expanding windows (Csim)");
  const std::vector<int> widths = {10, 8, 8, 11, 11, 11, 13};
  PrintRow({"algo", "window", "views", "diff-only", "scratch", "adaptive",
            "diff speedup"},
           widths);

  struct Algo {
    const char* name;
    std::unique_ptr<analytics::Computation> computation;
  };
  std::vector<Algo> algos;
  algos.push_back({"WCC", std::make_unique<analytics::Wcc>()});
  algos.push_back({"BFS", std::make_unique<analytics::Bfs>(source)});
  algos.push_back({"PR", std::make_unique<analytics::PageRank>(5)});

  for (const Algo& algo : algos) {
    for (size_t c = 0; c < collection_names.size(); ++c) {
      auto mc = system.GetCollection(collection_names[c]);
      GS_CHECK(mc.ok());
      StrategyTimes times =
          RunAllStrategies(system, *algo.computation, collection_names[c]);
      PrintRow({algo.name, windows[c].label,
                std::to_string((*mc)->num_views()), Secs(times.diff_only),
                Secs(times.scratch), Secs(times.adaptive),
                Factor(times.scratch, times.diff_only)},
               widths);
      AddStrategyRow(report, algo.name, windows[c].label, (*mc)->num_views(),
                     times);
    }
  }

  // SCC (doubly iterative) on a reduced instance; its differential variant
  // is far heavier per diff (see EXPERIMENTS.md).
  TemporalGraphOptions sopts;
  sopts.num_nodes = 2500;
  sopts.num_edges = 10000;
  sopts.end_time = kEnd;
  GS_CHECK(system.AddGraph("so_small", GenerateTemporalGraph(sopts)).ok());
  for (const char* label : {"w=1/8", "w=1/2"}) {
    int64_t step = std::string(label) == "w=1/8" ? kInitial / 4 : kInitial;
    std::string name = std::string("csim_scc_") + (std::string(label) == "w=1/8" ? "a" : "b");
    GS_CHECK(system
                 .Execute(ExpandingWindowsGvdl(name, "so_small", kInitial,
                                               step, kEnd))
                 .ok());
    analytics::Scc scc;
    auto mc = system.GetCollection(name);
    StrategyTimes times = RunAllStrategies(system, scc, name);
    PrintRow({"SCC", label, std::to_string((*mc)->num_views()),
              Secs(times.diff_only), Secs(times.scratch),
              Secs(times.adaptive), Factor(times.scratch, times.diff_only)},
             widths);
    AddStrategyRow(report, "SCC", label, (*mc)->num_views(), times);
  }
}

}  // namespace
}  // namespace gs::bench

int main() {
  gs::bench::BenchReport report("fig6_similar_views");
  gs::bench::Run(&report);
  report.Write();
  return 0;
}
