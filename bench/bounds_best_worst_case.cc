// Reproduces the paper §5 bounds discussion: differential execution can be
// ~k× faster than scratch in the best case (k identical views) but only
// ~2× slower in the worst case (completely disjoint views) — the
// robustness property that motivates defaulting to differential.
#include "bench_util.h"
#include "views/collection.h"

namespace gs::bench {
namespace {

void Run(BenchReport* report) {
  const size_t kEdges = 30000;
  const size_t kViews = 16;
  PropertyGraph graph = GenerateUniformGraph(6000, kEdges, 5);
  report->Meta().Int("edges", kEdges).Int("views", kViews);

  PrintHeader("§5 bounds: best case (identical views) / worst case "
              "(disjoint views)");
  const std::vector<int> widths = {22, 11, 11, 16};
  PrintRow({"collection", "diff-only", "scratch", "diff vs scratch"},
           widths);

  analytics::Wcc wcc;

  // Best case: every view identical to the base graph.
  {
    std::vector<std::vector<views::EdgeDiff>> batches(kViews);
    for (EdgeId e = 0; e < kEdges; ++e) batches[0].push_back({e, 1});
    auto mc = views::CollectionFromDiffBatches("identical", "g",
                                               std::move(batches));
    double diff_s = 0, scratch_s = 0;
    for (auto strategy :
         {splitting::Strategy::kDiffOnly, splitting::Strategy::kScratch}) {
      views::ExecutionOptions options;
      options.strategy = strategy;
      Timer timer;
      auto r = views::RunOnCollection(wcc, graph, mc, options);
      GS_CHECK(r.ok()) << r.status().ToString();
      (strategy == splitting::Strategy::kDiffOnly ? diff_s : scratch_s) =
          timer.Seconds();
    }
    PrintRow({"identical (best)", Secs(diff_s), Secs(scratch_s),
              Factor(scratch_s, diff_s) + " faster"},
             widths);
    report->AddRow()
        .Str("collection", "identical")
        .Num("diff_only_s", diff_s)
        .Num("scratch_s", scratch_s);
  }

  // Worst case: consecutive views share no edges (half the edge set each,
  // alternating).
  {
    std::vector<std::vector<views::EdgeDiff>> batches(kViews);
    for (size_t v = 0; v < kViews; ++v) {
      bool even = v % 2 == 0;
      for (EdgeId e = 0; e < kEdges; ++e) {
        bool in_even = e < kEdges / 2;
        bool now = even ? in_even : !in_even;
        bool before = v == 0 ? false : (!even ? in_even : !in_even);
        if (now != before) {
          batches[v].push_back({e, static_cast<int8_t>(now ? 1 : -1)});
        }
      }
    }
    auto mc = views::CollectionFromDiffBatches("disjoint", "g",
                                               std::move(batches));
    double diff_s = 0, scratch_s = 0;
    for (auto strategy :
         {splitting::Strategy::kDiffOnly, splitting::Strategy::kScratch}) {
      views::ExecutionOptions options;
      options.strategy = strategy;
      Timer timer;
      auto r = views::RunOnCollection(wcc, graph, mc, options);
      GS_CHECK(r.ok()) << r.status().ToString();
      (strategy == splitting::Strategy::kDiffOnly ? diff_s : scratch_s) =
          timer.Seconds();
    }
    PrintRow({"disjoint (worst)", Secs(diff_s), Secs(scratch_s),
              Factor(diff_s, scratch_s) + " slower"},
             widths);
    report->AddRow()
        .Str("collection", "disjoint")
        .Num("diff_only_s", diff_s)
        .Num("scratch_s", scratch_s);
  }
}

}  // namespace
}  // namespace gs::bench

int main() {
  gs::bench::BenchReport report("bounds_best_worst_case");
  gs::bench::Run(&report);
  report.Write();
  return 0;
}
