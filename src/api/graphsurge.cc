#include "api/graphsurge.h"

#include "common/metrics.h"

namespace gs {

Graphsurge::Graphsurge(GraphsurgeOptions options)
    : options_(options),
      pool_(std::make_unique<ThreadPool>(
          options.num_workers == 0 ? 1 : options.num_workers)) {}

Status Graphsurge::CheckNameFree(const std::string& name) const {
  if (graphs_.count(name) || collections_.count(name) ||
      aggregate_views_.count(name)) {
    return Status::AlreadyExists("name '" + name + "' is already in use");
  }
  return Status::Ok();
}

Status Graphsurge::LoadGraphCsv(const std::string& name,
                                const std::string& nodes_path,
                                const std::string& edges_path) {
  GS_RETURN_IF_ERROR(CheckNameFree(name));
  GS_ASSIGN_OR_RETURN(PropertyGraph graph,
                      LoadGraphFromCsv(nodes_path, edges_path));
  graphs_.emplace(name, std::move(graph));
  return Status::Ok();
}

Status Graphsurge::AddGraph(const std::string& name, PropertyGraph graph) {
  GS_RETURN_IF_ERROR(CheckNameFree(name));
  GS_RETURN_IF_ERROR(graph.Validate());
  graphs_.emplace(name, std::move(graph));
  return Status::Ok();
}

StatusOr<const PropertyGraph*> Graphsurge::GetGraph(
    const std::string& name) const {
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("no graph or view named '" + name + "'");
  }
  return &it->second;
}

Status Graphsurge::Execute(const std::string& gvdl) {
  GS_ASSIGN_OR_RETURN(std::vector<gvdl::Statement> statements,
                      gvdl::ParseScript(gvdl));
  for (const gvdl::Statement& statement : statements) {
    if (const auto* fv = std::get_if<gvdl::FilteredViewDef>(&statement)) {
      GS_RETURN_IF_ERROR(CheckNameFree(fv->name));
      GS_ASSIGN_OR_RETURN(const PropertyGraph* base, GetGraph(fv->on));
      GS_ASSIGN_OR_RETURN(
          PropertyGraph view,
          views::MaterializeFilteredView(*base, fv->predicate, pool_.get()));
      graphs_.emplace(fv->name, std::move(view));
    } else if (const auto* vc =
                   std::get_if<gvdl::ViewCollectionDef>(&statement)) {
      GS_RETURN_IF_ERROR(CheckNameFree(vc->name));
      GS_ASSIGN_OR_RETURN(const PropertyGraph* base, GetGraph(vc->on));
      views::MaterializeOptions mopts;
      mopts.use_ordering = options_.order_collections;
      mopts.pool = pool_.get();
      GS_ASSIGN_OR_RETURN(views::MaterializedCollection mc,
                          views::MaterializeCollection(*base, *vc, mopts));
      collections_.emplace(vc->name, std::move(mc));
    } else if (const auto* av =
                   std::get_if<gvdl::AggregateViewDef>(&statement)) {
      GS_RETURN_IF_ERROR(CheckNameFree(av->name));
      GS_ASSIGN_OR_RETURN(const PropertyGraph* base, GetGraph(av->on));
      GS_ASSIGN_OR_RETURN(agg::AggregateView result,
                          agg::ComputeAggregateView(*base, *av, pool_.get()));
      aggregate_views_.emplace(av->name, std::move(result));
    }
  }
  return Status::Ok();
}

StatusOr<const views::MaterializedCollection*> Graphsurge::GetCollection(
    const std::string& name) const {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("no view collection named '" + name + "'");
  }
  return &it->second;
}

StatusOr<const agg::AggregateView*> Graphsurge::GetAggregateView(
    const std::string& name) const {
  auto it = aggregate_views_.find(name);
  if (it == aggregate_views_.end()) {
    return Status::NotFound("no aggregate view named '" + name + "'");
  }
  return &it->second;
}

Status Graphsurge::CreateCollection(
    const std::string& name, const std::string& base_graph,
    const std::vector<std::string>& view_names,
    const std::vector<std::function<bool(EdgeId)>>& predicates,
    const views::MaterializeOptions* materialize_options) {
  GS_RETURN_IF_ERROR(CheckNameFree(name));
  GS_ASSIGN_OR_RETURN(const PropertyGraph* base, GetGraph(base_graph));
  views::MaterializeOptions mopts;
  if (materialize_options != nullptr) {
    mopts = *materialize_options;
  } else {
    mopts.use_ordering = options_.order_collections;
  }
  if (mopts.pool == nullptr) mopts.pool = pool_.get();
  GS_ASSIGN_OR_RETURN(
      views::MaterializedCollection mc,
      views::MaterializeCollectionWith(*base, name, view_names, predicates,
                                       mopts));
  mc.base_graph = base_graph;
  collections_.emplace(name, std::move(mc));
  return Status::Ok();
}

StatusOr<views::ExecutionResult> Graphsurge::RunComputation(
    const analytics::Computation& computation,
    const std::string& collection_name,
    views::ExecutionOptions options) const {
  GS_ASSIGN_OR_RETURN(const views::MaterializedCollection* collection,
                      GetCollection(collection_name));
  GS_ASSIGN_OR_RETURN(const PropertyGraph* base,
                      GetGraph(collection->base_graph));
  if (options.dataflow.num_workers == 0) {
    options.dataflow.num_workers = options_.num_workers;
  }
  StatusOr<views::ExecutionResult> result =
      views::RunOnCollection(computation, *base, *collection, options);
  if (result.ok()) last_run_profile_ = result.value().Profile();
  return result;
}

std::string Graphsurge::Profile() const {
  std::string report = last_run_profile_;
  report += "\n";
  report += metrics::Registry::Global().ExpositionText();
  return report;
}

StatusOr<analytics::ResultMap> Graphsurge::RunOnView(
    const analytics::Computation& computation, const std::string& name,
    views::ExecutionOptions options) const {
  GS_ASSIGN_OR_RETURN(const PropertyGraph* graph, GetGraph(name));
  if (options.dataflow.num_workers == 0) {
    options.dataflow.num_workers = options_.num_workers;
  }
  return views::RunOnGraph(computation, *graph, options);
}

std::vector<std::string> Graphsurge::GraphNames() const {
  std::vector<std::string> names;
  for (const auto& [name, _] : graphs_) names.push_back(name);
  return names;
}

std::vector<std::string> Graphsurge::CollectionNames() const {
  std::vector<std::string> names;
  for (const auto& [name, _] : collections_) names.push_back(name);
  return names;
}

}  // namespace gs
