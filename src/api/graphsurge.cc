#include "api/graphsurge.h"

#include <atomic>
#include <iomanip>
#include <sstream>

#include "common/crash_dump.h"
#include "differential/arrcache.h"
#include "common/introspect.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "common/timeseries.h"
#include "common/watchdog.h"
#include "server/status_server.h"

namespace gs {

namespace {

/// The Graphsurge instance currently backing /profilez. The handler lambda
/// registered on the (never-destroyed) global status server must not
/// capture a raw `this`, so instances check in/out of this slot instead;
/// the newest live instance wins the endpoint.
std::mutex g_profilez_mutex;
const Graphsurge* g_profilez_system = nullptr;

/// Monotone instance numbering for arrangement-cache scopes: a system's
/// scopes must never alias another instance's (live or destroyed), even for
/// graphs with equal names at equal epochs.
std::atomic<uint64_t> g_next_instance_id{1};

}  // namespace

Graphsurge::Graphsurge(GraphsurgeOptions options)
    : options_(options),
      instance_id_(g_next_instance_id.fetch_add(1)),
      pool_(std::make_unique<ThreadPool>(
          options.num_workers == 0 ? 1 : options.num_workers)),
      ingest_source_("ingest", [this] {
        std::lock_guard<std::mutex> lock(ingest_status_mutex_);
        return ingest_status_json_;
      }) {
  // A dying run should leave its flight recorder behind (no-ops under
  // sanitizer runtimes, which install their own handlers first).
  InstallCrashHandlers();
  server::StatusServer::MaybeStartFromEnv();
  // The health plane is opt-in the same way the status server is: sampling
  // on GRAPHSURGE_SAMPLE_MS, the watchdog on GRAPHSURGE_WATCHDOG.
  timeseries::Sampler::MaybeStartFromEnv();
  watchdog::Watchdog::MaybeStartFromEnv();
  {
    std::lock_guard<std::mutex> lock(g_profilez_mutex);
    g_profilez_system = this;
  }
  server::StatusServer::Global().Handle("/profilez", [] {
    server::HttpResponse r;
    std::lock_guard<std::mutex> lock(g_profilez_mutex);
    r.body = g_profilez_system != nullptr
                 ? g_profilez_system->Profile()
                 : std::string("no live Graphsurge instance\n");
    return r;
  });
}

Graphsurge::~Graphsurge() {
  // Teardown-zero: every cached arrangement this instance's graphs seeded
  // is dropped (scopes all carry the instance prefix), so the arrcache
  // byte gauge returns to zero once in-flight readers release their pins.
  differential::ArrangementCache::Global().InvalidateScopePrefix(
      "gs" + std::to_string(instance_id_) + "/");
  std::lock_guard<std::mutex> lock(g_profilez_mutex);
  if (g_profilez_system == this) g_profilez_system = nullptr;
}

std::string Graphsurge::CacheScopeFor(const std::string& graph_name,
                                      uint64_t epoch) const {
  return "gs" + std::to_string(instance_id_) + "/" + graph_name + "@" +
         std::to_string(epoch);
}

std::string Graphsurge::ArrangementCacheScope(
    const std::string& graph_name) const {
  auto it = graphs_.find(graph_name);
  const uint64_t epoch =
      it == graphs_.end() ? 0 : it->second.mutation_epoch();
  return CacheScopeFor(graph_name, epoch);
}

Status Graphsurge::CheckNameFree(const std::string& name) const {
  if (graphs_.count(name) || collections_.count(name) ||
      aggregate_views_.count(name)) {
    return Status::AlreadyExists("name '" + name + "' is already in use");
  }
  return Status::Ok();
}

Status Graphsurge::LoadGraphCsv(const std::string& name,
                                const std::string& nodes_path,
                                const std::string& edges_path) {
  GS_RETURN_IF_ERROR(CheckNameFree(name));
  GS_ASSIGN_OR_RETURN(PropertyGraph graph,
                      LoadGraphFromCsv(nodes_path, edges_path));
  graphs_.emplace(name, std::move(graph));
  return Status::Ok();
}

Status Graphsurge::AddGraph(const std::string& name, PropertyGraph graph) {
  GS_RETURN_IF_ERROR(CheckNameFree(name));
  GS_RETURN_IF_ERROR(graph.Validate());
  graphs_.emplace(name, std::move(graph));
  return Status::Ok();
}

StatusOr<const PropertyGraph*> Graphsurge::GetGraph(
    const std::string& name) const {
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("no graph or view named '" + name + "'");
  }
  return &it->second;
}

Status Graphsurge::Execute(const std::string& gvdl) {
  GS_ASSIGN_OR_RETURN(std::vector<gvdl::Statement> statements,
                      gvdl::ParseScript(gvdl));
  for (const gvdl::Statement& statement : statements) {
    if (const auto* fv = std::get_if<gvdl::FilteredViewDef>(&statement)) {
      GS_RETURN_IF_ERROR(CheckNameFree(fv->name));
      GS_ASSIGN_OR_RETURN(const PropertyGraph* base, GetGraph(fv->on));
      GS_ASSIGN_OR_RETURN(
          PropertyGraph view,
          views::MaterializeFilteredView(*base, fv->predicate, pool_.get()));
      graphs_.emplace(fv->name, std::move(view));
    } else if (const auto* vc =
                   std::get_if<gvdl::ViewCollectionDef>(&statement)) {
      GS_RETURN_IF_ERROR(CheckNameFree(vc->name));
      GS_ASSIGN_OR_RETURN(const PropertyGraph* base, GetGraph(vc->on));
      views::MaterializeOptions mopts;
      mopts.use_ordering = options_.order_collections;
      mopts.pool = pool_.get();
      GS_ASSIGN_OR_RETURN(views::MaterializedCollection mc,
                          views::MaterializeCollection(*base, *vc, mopts));
      collections_.emplace(vc->name, std::move(mc));
    } else if (const auto* av =
                   std::get_if<gvdl::AggregateViewDef>(&statement)) {
      GS_RETURN_IF_ERROR(CheckNameFree(av->name));
      GS_ASSIGN_OR_RETURN(const PropertyGraph* base, GetGraph(av->on));
      GS_ASSIGN_OR_RETURN(agg::AggregateView result,
                          agg::ComputeAggregateView(*base, *av, pool_.get()));
      aggregate_views_.emplace(av->name, std::move(result));
    } else if (const auto* ex = std::get_if<gvdl::ExplainDef>(&statement)) {
      GS_ASSIGN_OR_RETURN(std::string text, ExplainCollection(ex->target));
      GS_LOG(Info) << "EXPLAIN " << ex->target << "\n" << text;
    }
  }
  return Status::Ok();
}

StatusOr<const views::MaterializedCollection*> Graphsurge::GetCollection(
    const std::string& name) const {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("no view collection named '" + name + "'");
  }
  return &it->second;
}

StatusOr<const agg::AggregateView*> Graphsurge::GetAggregateView(
    const std::string& name) const {
  auto it = aggregate_views_.find(name);
  if (it == aggregate_views_.end()) {
    return Status::NotFound("no aggregate view named '" + name + "'");
  }
  return &it->second;
}

Status Graphsurge::CreateCollection(
    const std::string& name, const std::string& base_graph,
    const std::vector<std::string>& view_names,
    const std::vector<std::function<bool(EdgeId)>>& predicates,
    const views::MaterializeOptions* materialize_options) {
  GS_RETURN_IF_ERROR(CheckNameFree(name));
  GS_ASSIGN_OR_RETURN(const PropertyGraph* base, GetGraph(base_graph));
  views::MaterializeOptions mopts;
  if (materialize_options != nullptr) {
    mopts = *materialize_options;
  } else {
    mopts.use_ordering = options_.order_collections;
  }
  if (mopts.pool == nullptr) mopts.pool = pool_.get();
  GS_ASSIGN_OR_RETURN(
      views::MaterializedCollection mc,
      views::MaterializeCollectionWith(*base, name, view_names, predicates,
                                       mopts));
  mc.base_graph = base_graph;
  collections_.emplace(name, std::move(mc));
  return Status::Ok();
}

StatusOr<views::ExecutionResult> Graphsurge::RunComputation(
    const analytics::Computation& computation,
    const std::string& collection_name,
    views::ExecutionOptions options) const {
  GS_ASSIGN_OR_RETURN(const views::MaterializedCollection* collection,
                      GetCollection(collection_name));
  GS_ASSIGN_OR_RETURN(const PropertyGraph* base,
                      GetGraph(collection->base_graph));
  if (options.dataflow.num_workers == 0) {
    options.dataflow.num_workers = options_.num_workers;
  }
  StatusOr<views::ExecutionResult> result =
      views::RunOnCollection(computation, *base, *collection, options);
  if (result.ok()) {
    // Keep the run's metadata (not the captured results — those can be the
    // size of the collection) for Profile() and Explain().
    views::ExecutionResult trimmed = result.value();
    trimmed.results.clear();
    std::lock_guard<std::mutex> lock(run_state_mutex_);
    last_run_profile_ = trimmed.Profile();
    last_runs_[collection_name] = std::move(trimmed);
  }
  return result;
}

std::string Graphsurge::Profile() const {
  std::string report;
  {
    std::lock_guard<std::mutex> lock(run_state_mutex_);
    report = last_run_profile_;
  }
  report += "\n";
  report += metrics::Registry::Global().ExpositionText();
  return report;
}

Status Graphsurge::StartStatusServer(uint16_t port) {
  return server::StatusServer::Global().Start(port);
}

StatusOr<std::string> Graphsurge::Explain(const std::string& target) const {
  // Accept either a bare collection name or an `explain <name>` statement.
  std::string name = target;
  if (target.find(' ') != std::string::npos ||
      target.find('\n') != std::string::npos) {
    GS_ASSIGN_OR_RETURN(gvdl::Statement statement, gvdl::Parse(target));
    const auto* ex = std::get_if<gvdl::ExplainDef>(&statement);
    if (ex == nullptr) {
      return Status::InvalidArgument(
          "Explain() expects an 'explain <collection>' statement");
    }
    name = ex->target;
  }
  return ExplainCollection(name);
}

StatusOr<std::string> Graphsurge::ExplainCollection(
    const std::string& name) const {
  GS_ASSIGN_OR_RETURN(const views::MaterializedCollection* collection,
                      GetCollection(name));

  // Snapshot the last run for this collection, if any.
  bool has_run = false;
  views::ExecutionResult run;
  {
    std::lock_guard<std::mutex> lock(run_state_mutex_);
    auto it = last_runs_.find(name);
    if (it != last_runs_.end()) {
      has_run = true;
      run = it->second;
    }
  }

  std::ostringstream out;
  out << std::fixed;
  out << "collection " << collection->name << " on " << collection->base_graph
      << " (" << collection->num_views() << " views)\n";
  out << "order source: " << collection->order_source
      << "  estimated ds(B,sigma)=" << collection->total_diffs
      << "  identity ds=" << collection->identity_ds;
  if (collection->identity_ds > 0 &&
      collection->total_diffs < collection->identity_ds) {
    out << std::setprecision(1) << "  ("
        << 100.0 * (1.0 - static_cast<double>(collection->total_diffs) /
                              static_cast<double>(collection->identity_ds))
        << "% fewer diffs than user-given order)";
  }
  out << "\n";
  if (collection->ordering_seconds > 0) {
    out << std::setprecision(3)
        << "ordering overhead: " << collection->ordering_seconds * 1e3
        << " ms of " << collection->creation_seconds * 1e3 << " ms CCT\n";
  }

  // Per-position plan: the view at each position with the optimizer's
  // estimated |GV_t| and |δC_t| (the per-adjacent-pair ds contribution),
  // joined with the last run's actual counts when available.
  out << "\n" << std::left << std::setw(5) << "pos" << std::setw(14) << "view"
      << std::setw(7) << "def#" << std::right << std::setw(12) << "est |GV|"
      << std::setw(12) << "est |dC|";
  if (has_run) {
    out << std::setw(10) << "mode" << std::setw(12) << "actual in"
        << std::setw(12) << "actual out" << std::setw(10) << "ms";
  }
  out << "\n";
  for (size_t t = 0; t < collection->num_views(); ++t) {
    out << std::left << std::setw(5) << t << std::setw(14)
        << collection->view_names[t] << std::setw(7) << collection->order[t]
        << std::right << std::setw(12) << collection->view_sizes[t]
        << std::setw(12) << collection->diff_sizes[t];
    if (has_run && t < run.per_view.size()) {
      const views::ViewRunStats& v = run.per_view[t];
      out << std::setw(10) << (v.ran_scratch ? "scratch" : "diff")
          << std::setw(12) << v.input_size << std::setw(12) << v.output_diffs
          << std::setprecision(3) << std::setw(10) << v.seconds * 1e3;
    }
    out << "\n";
  }

  if (has_run) {
    out << "\nlast run: strategy=" << splitting::StrategyName(run.strategy)
        << " chunk_size=" << run.chunk_size << " splits=" << run.num_splits
        << std::setprecision(3) << " total_ms=" << run.total_seconds * 1e3
        << "\n";
    if (!run.chunk_decisions.empty()) {
      out << std::left << std::setw(12) << "chunk" << std::setw(10)
          << "choice" << std::right << std::setw(16) << "pred scratch s"
          << std::setw(14) << "pred diff s" << "  basis\n";
      for (const views::ChunkDecision& d : run.chunk_decisions) {
        out << std::left << std::setw(12)
            << ("[" + std::to_string(d.begin) + "," +
                std::to_string(d.end) + ")")
            << std::setw(10) << (d.scratch ? "scratch" : "diff");
        out << std::right << std::setprecision(6) << std::setw(16);
        if (d.from_model) {
          out << d.predicted_scratch_seconds << std::setw(14)
              << d.predicted_diff_seconds << "  cost-model";
        } else {
          out << "-" << std::setw(14) << "-"
              << (run.strategy == splitting::Strategy::kAdaptive
                      ? "  bootstrap"
                      : "  fixed strategy");
        }
        out << "\n";
      }
    }
  } else {
    out << "\nno recorded run for this collection yet — RunComputation() "
           "fills in actual per-view diff counts and splitting decisions\n";
  }
  return out.str();
}

StatusOr<analytics::ResultMap> Graphsurge::RunOnView(
    const analytics::Computation& computation, const std::string& name,
    views::ExecutionOptions options) const {
  GS_ASSIGN_OR_RETURN(const PropertyGraph* graph, GetGraph(name));
  if (options.dataflow.num_workers == 0) {
    options.dataflow.num_workers = options_.num_workers;
  }
  if (options.arrangement_cache_scope.empty()) {
    options.arrangement_cache_scope =
        CacheScopeFor(name, graph->mutation_epoch());
  }
  return views::RunOnGraph(computation, *graph, options);
}

// --- Streaming ingest ------------------------------------------------------

StatusOr<PropertyGraph*> Graphsurge::GetMutableGraph(const std::string& name) {
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return Status::NotFound("no graph named '" + name + "'");
  }
  return &it->second;
}

Status Graphsurge::ApplyBatchInternal(const std::string& graph_name,
                                      PropertyGraph* graph,
                                      const MutationBatch& batch) {
  // Arrangements cached for the pre-mutation epoch describe a graph that no
  // longer exists; drop them (in-flight readers keep their pinned
  // snapshots). Post-mutation runs key under the bumped epoch and rebuild.
  const std::string stale_scope =
      CacheScopeFor(graph_name, graph->mutation_epoch());
  MutationEffects effects;
  GS_RETURN_IF_ERROR(ApplyMutationBatch(graph, batch, &effects));
  differential::ArrangementCache::Global().InvalidateScope(stale_scope);

  // Maintain every collection over this graph before advancing its live
  // runs: LiveRun::AdvanceEpoch requires the refreshed collection.
  for (auto& [name, mc] : collections_) {
    if (mc.base_graph != graph_name) continue;
    if (!mc.maintainable()) {
      GS_LOG(Warning) << "collection '" << name
                      << "' cannot be incrementally maintained (no stored "
                         "predicates); it is now stale (graph epoch "
                      << graph->mutation_epoch() << ", collection epoch "
                      << mc.graph_epoch << ")";
      continue;
    }
    GS_RETURN_IF_ERROR(views::UpdateCollectionForMutations(
        &mc, *graph, effects.touched_edges));
  }
  for (auto& [name, entry] : live_runs_) {
    if (entry.base_graph != graph_name) continue;
    GS_RETURN_IF_ERROR(entry.run->AdvanceEpoch(effects.touched_edges));
  }

  static metrics::Counter* batches =
      metrics::Registry::Global().GetCounter("gs_ingest_batches");
  static metrics::Counter* mutations =
      metrics::Registry::Global().GetCounter("gs_ingest_mutations");
  batches->Increment();
  mutations->Increment(batch.size());
  metrics::Registry::Global()
      .GetGauge("gs_graph_epoch", {{"graph", graph_name}})
      ->Set(static_cast<int64_t>(graph->mutation_epoch()));
  return Status::Ok();
}

Status Graphsurge::EnableWal(const std::string& graph_name,
                             const std::string& wal_path,
                             wal::WalWriterOptions wal_options) {
  GS_ASSIGN_OR_RETURN(PropertyGraph* graph, GetMutableGraph(graph_name));
  if (wals_.count(graph_name) > 0) {
    return Status::AlreadyExists("graph '" + graph_name +
                                 "' already has a WAL attached");
  }
  GS_ASSIGN_OR_RETURN(wal::WalReplayResult replay, wal::ReplayWal(wal_path));
  for (size_t i = 0; i < replay.batches.size(); ++i) {
    Status s = ApplyBatchInternal(graph_name, graph, replay.batches[i]);
    if (!s.ok()) {
      return Status(s.code(), "WAL replay failed at record " +
                                  std::to_string(i) + ": " + s.message());
    }
  }
  if (replay.recovered_torn_tail) {
    GS_LOG(Warning) << "WAL '" << wal_path << "': dropped torn tail after "
                    << replay.batches.size() << " complete records";
  }
  GS_RETURN_IF_ERROR(wals_[graph_name].Open(wal_path, wal_options));
  RefreshIngestStatus();
  return Status::Ok();
}

Status Graphsurge::ApplyMutations(const std::string& graph_name,
                                  const MutationBatch& batch) {
  Timer apply_timer;
  GS_ASSIGN_OR_RETURN(PropertyGraph* graph, GetMutableGraph(graph_name));
  // Validate up front so the WAL never records a batch the apply rejects
  // (the write-ahead append must strictly precede an apply that cannot
  // fail).
  GS_RETURN_IF_ERROR(CheckMutationBatch(*graph, batch));
  auto wal_it = wals_.find(graph_name);
  if (wal_it != wals_.end()) {
    GS_RETURN_IF_ERROR(wal_it->second.Append(batch));
  }
  GS_RETURN_IF_ERROR(ApplyBatchInternal(graph_name, graph, batch));
  RefreshIngestStatus();
  // SLO: the full ingest round trip — validate, WAL append (+fsync), graph
  // apply, view maintenance, and every dependent live-run epoch advance.
  static auto* apply_nanos =
      metrics::Registry::Global().GetHistogram("gs_ingest_apply_nanos");
  apply_nanos->Observe(static_cast<uint64_t>(apply_timer.Nanos()));
  return Status::Ok();
}

StatusOr<uint64_t> Graphsurge::GraphEpoch(const std::string& graph_name) const {
  GS_ASSIGN_OR_RETURN(const PropertyGraph* graph, GetGraph(graph_name));
  return graph->mutation_epoch();
}

Status Graphsurge::StartLiveComputation(
    const std::string& name, const analytics::Computation& computation,
    const std::string& collection_name, views::LiveRunOptions options) {
  if (live_runs_.count(name) > 0) {
    return Status::AlreadyExists("live computation '" + name +
                                 "' already exists");
  }
  GS_ASSIGN_OR_RETURN(const views::MaterializedCollection* collection,
                      GetCollection(collection_name));
  GS_ASSIGN_OR_RETURN(const PropertyGraph* base,
                      GetGraph(collection->base_graph));
  if (options.dataflow.num_workers == 0) {
    options.dataflow.num_workers = options_.num_workers;
  }
  GS_ASSIGN_OR_RETURN(
      std::unique_ptr<views::LiveRun> run,
      views::LiveRun::Start(computation, *base, collection, options));
  live_runs_.emplace(name, LiveEntry{collection_name, collection->base_graph,
                                     std::move(run)});
  RefreshIngestStatus();
  return Status::Ok();
}

StatusOr<const views::LiveRun*> Graphsurge::GetLiveRun(
    const std::string& name) const {
  auto it = live_runs_.find(name);
  if (it == live_runs_.end()) {
    return Status::NotFound("no live computation named '" + name + "'");
  }
  return it->second.run.get();
}

void Graphsurge::RefreshIngestStatus() {
  std::ostringstream out;
  out << "{\"graphs\":{";
  bool first = true;
  for (const auto& [name, graph] : graphs_) {
    // Only graphs on the ingest path (mutated or WAL-attached) are listed.
    if (graph.mutation_epoch() == 0 && wals_.count(name) == 0) continue;
    if (!first) out << ",";
    first = false;
    out << "\"" << introspect::JsonEscape(name)
        << "\":{\"epoch\":" << graph.mutation_epoch()
        << ",\"live_nodes\":" << graph.num_live_nodes()
        << ",\"live_edges\":" << graph.num_live_edges();
    auto w = wals_.find(name);
    if (w != wals_.end()) {
      out << ",\"wal_bytes\":" << w->second.bytes_written();
    }
    out << "}";
  }
  out << "},\"live_runs\":{";
  first = true;
  for (const auto& [name, entry] : live_runs_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << introspect::JsonEscape(name) << "\":{\"collection\":\""
        << introspect::JsonEscape(entry.collection)
        << "\",\"epochs_fed\":" << entry.run->epochs_fed()
        << ",\"views\":" << entry.run->num_views()
        << ",\"last_epoch_input_diffs\":" << entry.run->last_epoch_input_diffs()
        << "}";
  }
  out << "}}";
  std::lock_guard<std::mutex> lock(ingest_status_mutex_);
  ingest_status_json_ = out.str();
}

std::vector<std::string> Graphsurge::GraphNames() const {
  std::vector<std::string> names;
  for (const auto& [name, _] : graphs_) names.push_back(name);
  return names;
}

std::vector<std::string> Graphsurge::CollectionNames() const {
  std::vector<std::string> names;
  for (const auto& [name, _] : collections_) names.push_back(name);
  return names;
}

}  // namespace gs
