// The Graphsurge system facade (paper Figure 4): graph store, view &
// collection store, GVDL entry point, and the analytics computation
// executor with the ordering and adaptive splitting optimizers.
//
// Quickstart:
//   gs::Graphsurge system;
//   system.LoadGraphCsv("Calls", "nodes.csv", "edges.csv");
//   system.Execute("create view collection C on Calls "
//                  "[v1: year <= 2015], [v2: year <= 2019]");
//   gs::analytics::Wcc wcc;
//   auto result = system.RunComputation(wcc, "C", options);
#ifndef GRAPHSURGE_API_GRAPHSURGE_H_
#define GRAPHSURGE_API_GRAPHSURGE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "agg/aggregate_view.h"
#include "common/introspect.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "graph/csv.h"
#include "graph/graph.h"
#include "graph/mutation.h"
#include "graph/wal/wal.h"
#include "gvdl/parser.h"
#include "views/collection.h"
#include "views/executor.h"
#include "views/live.h"

namespace gs {

struct GraphsurgeOptions {
  /// Worker parallelism for view materialization and for the differential
  /// engine's sharded multi-worker execution (paper: TD/DD workers).
  /// Computations pick this up when ExecutionOptions leaves
  /// dataflow.num_workers at 0 ("system default").
  size_t num_workers = 1;
  /// Apply the collection ordering optimizer when materializing
  /// collections (paper §4). Off by default, as in the paper's
  /// user-given-order workloads.
  bool order_collections = false;
};

/// The top-level system. Owns loaded graphs, materialized filtered views
/// (as subgraphs), aggregate views, and view collections. All names share
/// one namespace, as in the paper's GVDL (`on` may reference any graph or
/// materialized filtered view).
class Graphsurge {
 public:
  explicit Graphsurge(GraphsurgeOptions options = GraphsurgeOptions());
  ~Graphsurge();

  Graphsurge(const Graphsurge&) = delete;
  Graphsurge& operator=(const Graphsurge&) = delete;

  // --- Graph store ---------------------------------------------------------
  Status LoadGraphCsv(const std::string& name, const std::string& nodes_path,
                      const std::string& edges_path);
  Status AddGraph(const std::string& name, PropertyGraph graph);
  StatusOr<const PropertyGraph*> GetGraph(const std::string& name) const;

  // --- GVDL ---------------------------------------------------------------
  /// Executes one or more GVDL statements: materializes filtered views (as
  /// subgraphs usable in later `on` clauses), view collections, and
  /// aggregate views.
  Status Execute(const std::string& gvdl);

  StatusOr<const views::MaterializedCollection*> GetCollection(
      const std::string& name) const;
  StatusOr<const agg::AggregateView*> GetAggregateView(
      const std::string& name) const;

  /// Programmatic view collection over arbitrary edge predicates (for
  /// applications whose views are not GVDL-expressible). `use_ordering`
  /// overrides the system default; pass explicit_order for baselines.
  Status CreateCollection(const std::string& name,
                          const std::string& base_graph,
                          const std::vector<std::string>& view_names,
                          const std::vector<std::function<bool(EdgeId)>>&
                              predicates,
                          const views::MaterializeOptions* materialize_options
                          = nullptr);

  // --- Analytics -----------------------------------------------------------
  /// Runs a computation over every view of a collection.
  StatusOr<views::ExecutionResult> RunComputation(
      const analytics::Computation& computation,
      const std::string& collection_name,
      views::ExecutionOptions options = views::ExecutionOptions()) const;

  /// Runs a computation on a single graph or materialized view.
  StatusOr<analytics::ResultMap> RunOnView(
      const analytics::Computation& computation, const std::string& name,
      views::ExecutionOptions options = views::ExecutionOptions()) const;

  /// Profiling report of the most recent RunComputation on this system:
  /// the per-view × per-operator wall-time table
  /// (views::ExecutionResult::Profile) followed by a snapshot of the global
  /// metrics registry in Prometheus exposition format. Empty-table header
  /// only before the first run.
  std::string Profile() const;

  /// Renders the optimizer's plan for a materialized collection: chosen
  /// view order with the estimated per-position difference-set sizes, the
  /// ordering decision (ds under the chosen order vs the user-given order),
  /// and — after a RunComputation over the collection — the splitting
  /// decision per chunk with both cost-model predictions plus a per-view
  /// estimated-vs-actual diff-count table. `target` is a collection name or
  /// a GVDL `explain <collection>` statement.
  StatusOr<std::string> Explain(const std::string& target) const;

  // --- Streaming ingest ----------------------------------------------------
  /// Attaches a write-ahead log to `graph_name`. Any records already in
  /// `wal_path` are replayed into the graph first (restart recovery: the
  /// graph must be the same base snapshot the log was originally written
  /// against), updating maintainable collections and advancing live
  /// computations epoch-by-epoch. Subsequent ApplyMutations calls append to
  /// the log *before* touching the graph (write-ahead).
  Status EnableWal(const std::string& graph_name, const std::string& wal_path,
                   wal::WalWriterOptions wal_options = {});

  /// Applies one mutation batch atomically as the graph's next update
  /// epoch: validate → WAL append + sync (when a log is attached) → apply →
  /// incrementally update every maintainable collection on the graph →
  /// advance every live computation over those collections by one epoch.
  /// Collections that cannot be maintained (diff-batch imports) go stale
  /// and are logged.
  Status ApplyMutations(const std::string& graph_name,
                        const MutationBatch& batch);

  /// The graph's current mutation epoch — the number of batches applied,
  /// including batches replayed from the WAL.
  StatusOr<uint64_t> GraphEpoch(const std::string& graph_name) const;

  /// Starts a continuously maintained computation over a maintainable
  /// collection. ApplyMutations on the collection's base graph advances the
  /// run automatically; query any (epoch, view) cell via GetLiveRun(name)
  /// → LiveRun::ResultsAt.
  Status StartLiveComputation(const std::string& name,
                              const analytics::Computation& computation,
                              const std::string& collection_name,
                              views::LiveRunOptions options =
                                  views::LiveRunOptions());
  StatusOr<const views::LiveRun*> GetLiveRun(const std::string& name) const;

  // --- Live introspection ---------------------------------------------------
  /// Starts the embedded HTTP status server on 127.0.0.1:`port` (0 picks an
  /// ephemeral port; see server::StatusServer::Global().port()). Serves
  /// /metrics, /varz, /healthz, /statusz, /tracez and this system's
  /// /profilez. Also started automatically when GRAPHSURGE_STATUS_PORT is
  /// set in the environment.
  Status StartStatusServer(uint16_t port);

  ThreadPool* pool() const { return pool_.get(); }
  const GraphsurgeOptions& options() const { return options_; }

  /// The shared-arrangement cache scope RunOnView uses for `graph_name`:
  /// "gs<instance>/<graph>@<epoch>". Process-unique per (instance, graph,
  /// mutation epoch), so concurrent sessions of one system share cached
  /// arrangements while other instances (or post-mutation runs) never
  /// alias. ApplyMutations invalidates the superseded epoch's entries; the
  /// destructor drops everything under "gs<instance>/".
  std::string ArrangementCacheScope(const std::string& graph_name) const;

  /// Names of stored graphs/views (diagnostics, examples).
  std::vector<std::string> GraphNames() const;
  std::vector<std::string> CollectionNames() const;

 private:
  Status CheckNameFree(const std::string& name) const;
  std::string CacheScopeFor(const std::string& graph_name,
                            uint64_t epoch) const;
  StatusOr<std::string> ExplainCollection(const std::string& name) const;
  /// Non-const lookup for the ingest path (ApplyMutations mutates graphs).
  StatusOr<PropertyGraph*> GetMutableGraph(const std::string& name);
  /// Applies one batch end-to-end (no WAL append): graph, collections, live
  /// runs, metrics. Shared by ApplyMutations and EnableWal's replay.
  Status ApplyBatchInternal(const std::string& graph_name,
                            PropertyGraph* graph, const MutationBatch& batch);
  /// Rebuilds the /statusz "ingest" snapshot (epochs, WAL sizes, live-run
  /// progress). Called at the end of every ingest-path mutation.
  void RefreshIngestStatus();

  GraphsurgeOptions options_;
  /// Process-unique instance number prefixing every arrangement-cache
  /// scope this system creates.
  uint64_t instance_id_;
  std::unique_ptr<ThreadPool> pool_;
  /// Guards the cached run reports below: the status server's /profilez
  /// scrapes them from its own thread while RunComputation replaces them.
  mutable std::mutex run_state_mutex_;
  /// Per-view table of the last RunComputation (RunComputation is logically
  /// const — it mutates no stored graph or collection — so the cached
  /// reports are the one mutable bit).
  mutable std::string last_run_profile_;
  /// Last ExecutionResult per collection (results vector cleared — only the
  /// run metadata is kept), feeding Explain()'s estimated-vs-actual table.
  mutable std::map<std::string, views::ExecutionResult> last_runs_;
  std::map<std::string, PropertyGraph> graphs_;
  std::map<std::string, views::MaterializedCollection> collections_;
  std::map<std::string, agg::AggregateView> aggregate_views_;

  // --- Streaming ingest state ---------------------------------------------
  /// Per-graph WAL appenders (WalWriter is neither copyable nor movable;
  /// operator[] constructs in place).
  std::map<std::string, wal::WalWriter> wals_;
  struct LiveEntry {
    std::string collection;
    std::string base_graph;
    std::unique_ptr<views::LiveRun> run;
  };
  std::map<std::string, LiveEntry> live_runs_;
  /// /statusz snapshot: ingest-path methods rebuild it at safe points; the
  /// scrape thread's producer only copies it under the mutex.
  mutable std::mutex ingest_status_mutex_;
  std::string ingest_status_json_ = "{}";
  /// Declared last: destroyed (unregistered) before the state it renders.
  introspect::ScopedSource ingest_source_;
};

}  // namespace gs

#endif  // GRAPHSURGE_API_GRAPHSURGE_H_
