// The Graphsurge system facade (paper Figure 4): graph store, view &
// collection store, GVDL entry point, and the analytics computation
// executor with the ordering and adaptive splitting optimizers.
//
// Quickstart:
//   gs::Graphsurge system;
//   system.LoadGraphCsv("Calls", "nodes.csv", "edges.csv");
//   system.Execute("create view collection C on Calls "
//                  "[v1: year <= 2015], [v2: year <= 2019]");
//   gs::analytics::Wcc wcc;
//   auto result = system.RunComputation(wcc, "C", options);
#ifndef GRAPHSURGE_API_GRAPHSURGE_H_
#define GRAPHSURGE_API_GRAPHSURGE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "agg/aggregate_view.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "graph/csv.h"
#include "graph/graph.h"
#include "gvdl/parser.h"
#include "views/collection.h"
#include "views/executor.h"

namespace gs {

struct GraphsurgeOptions {
  /// Worker parallelism for view materialization and for the differential
  /// engine's sharded multi-worker execution (paper: TD/DD workers).
  /// Computations pick this up when ExecutionOptions leaves
  /// dataflow.num_workers at 0 ("system default").
  size_t num_workers = 1;
  /// Apply the collection ordering optimizer when materializing
  /// collections (paper §4). Off by default, as in the paper's
  /// user-given-order workloads.
  bool order_collections = false;
};

/// The top-level system. Owns loaded graphs, materialized filtered views
/// (as subgraphs), aggregate views, and view collections. All names share
/// one namespace, as in the paper's GVDL (`on` may reference any graph or
/// materialized filtered view).
class Graphsurge {
 public:
  explicit Graphsurge(GraphsurgeOptions options = GraphsurgeOptions());
  ~Graphsurge();

  Graphsurge(const Graphsurge&) = delete;
  Graphsurge& operator=(const Graphsurge&) = delete;

  // --- Graph store ---------------------------------------------------------
  Status LoadGraphCsv(const std::string& name, const std::string& nodes_path,
                      const std::string& edges_path);
  Status AddGraph(const std::string& name, PropertyGraph graph);
  StatusOr<const PropertyGraph*> GetGraph(const std::string& name) const;

  // --- GVDL ---------------------------------------------------------------
  /// Executes one or more GVDL statements: materializes filtered views (as
  /// subgraphs usable in later `on` clauses), view collections, and
  /// aggregate views.
  Status Execute(const std::string& gvdl);

  StatusOr<const views::MaterializedCollection*> GetCollection(
      const std::string& name) const;
  StatusOr<const agg::AggregateView*> GetAggregateView(
      const std::string& name) const;

  /// Programmatic view collection over arbitrary edge predicates (for
  /// applications whose views are not GVDL-expressible). `use_ordering`
  /// overrides the system default; pass explicit_order for baselines.
  Status CreateCollection(const std::string& name,
                          const std::string& base_graph,
                          const std::vector<std::string>& view_names,
                          const std::vector<std::function<bool(EdgeId)>>&
                              predicates,
                          const views::MaterializeOptions* materialize_options
                          = nullptr);

  // --- Analytics -----------------------------------------------------------
  /// Runs a computation over every view of a collection.
  StatusOr<views::ExecutionResult> RunComputation(
      const analytics::Computation& computation,
      const std::string& collection_name,
      views::ExecutionOptions options = views::ExecutionOptions()) const;

  /// Runs a computation on a single graph or materialized view.
  StatusOr<analytics::ResultMap> RunOnView(
      const analytics::Computation& computation, const std::string& name,
      views::ExecutionOptions options = views::ExecutionOptions()) const;

  /// Profiling report of the most recent RunComputation on this system:
  /// the per-view × per-operator wall-time table
  /// (views::ExecutionResult::Profile) followed by a snapshot of the global
  /// metrics registry in Prometheus exposition format. Empty-table header
  /// only before the first run.
  std::string Profile() const;

  /// Renders the optimizer's plan for a materialized collection: chosen
  /// view order with the estimated per-position difference-set sizes, the
  /// ordering decision (ds under the chosen order vs the user-given order),
  /// and — after a RunComputation over the collection — the splitting
  /// decision per chunk with both cost-model predictions plus a per-view
  /// estimated-vs-actual diff-count table. `target` is a collection name or
  /// a GVDL `explain <collection>` statement.
  StatusOr<std::string> Explain(const std::string& target) const;

  // --- Live introspection ---------------------------------------------------
  /// Starts the embedded HTTP status server on 127.0.0.1:`port` (0 picks an
  /// ephemeral port; see server::StatusServer::Global().port()). Serves
  /// /metrics, /varz, /healthz, /statusz, /tracez and this system's
  /// /profilez. Also started automatically when GRAPHSURGE_STATUS_PORT is
  /// set in the environment.
  Status StartStatusServer(uint16_t port);

  ThreadPool* pool() const { return pool_.get(); }
  const GraphsurgeOptions& options() const { return options_; }

  /// Names of stored graphs/views (diagnostics, examples).
  std::vector<std::string> GraphNames() const;
  std::vector<std::string> CollectionNames() const;

 private:
  Status CheckNameFree(const std::string& name) const;
  StatusOr<std::string> ExplainCollection(const std::string& name) const;

  GraphsurgeOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  /// Guards the cached run reports below: the status server's /profilez
  /// scrapes them from its own thread while RunComputation replaces them.
  mutable std::mutex run_state_mutex_;
  /// Per-view table of the last RunComputation (RunComputation is logically
  /// const — it mutates no stored graph or collection — so the cached
  /// reports are the one mutable bit).
  mutable std::string last_run_profile_;
  /// Last ExecutionResult per collection (results vector cleared — only the
  /// run metadata is kept), feeding Explain()'s estimated-vs-actual table.
  mutable std::map<std::string, views::ExecutionResult> last_runs_;
  std::map<std::string, PropertyGraph> graphs_;
  std::map<std::string, views::MaterializedCollection> collections_;
  std::map<std::string, agg::AggregateView> aggregate_views_;
};

}  // namespace gs

#endif  // GRAPHSURGE_API_GRAPHSURGE_H_
