#include "gvdl/lexer.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <set>

namespace gs::gvdl {

namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kKeywords = {
      "create", "view",  "collection", "on",  "edges", "nodes",
      "where",  "group", "by",         "aggregate",    "and",
      "or",     "not",   "true",       "false",        "explain"};
  return kKeywords;
}

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

Status ErrorAt(size_t line, size_t column, const std::string& message) {
  return Status::ParseError("line " + std::to_string(line) + ":" +
                            std::to_string(column) + ": " + message);
}

}  // namespace

bool IsKeyword(const std::string& word) {
  return Keywords().count(Lower(word)) > 0;
}

StatusOr<std::vector<Token>> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  size_t line = 1, column = 1;
  size_t i = 0;
  const size_t n = source.size();

  auto advance = [&](size_t count = 1) {
    for (size_t k = 0; k < count && i < n; ++k) {
      if (source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };
  auto push = [&](TokenType type, std::string text, size_t tl, size_t tc) {
    Token t;
    t.type = type;
    t.text = std::move(text);
    t.line = tl;
    t.column = tc;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    char c = source[i];
    size_t tl = line, tc = column;
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    // Comments: -- to end of line.
    if (c == '-' && i + 1 < n && source[i + 1] == '-') {
      while (i < n && source[i] != '\n') advance();
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n) {
        char d = source[i];
        bool word_char = std::isalnum(static_cast<unsigned char>(d)) ||
                         d == '_';
        // Interior hyphen followed by an identifier character.
        bool hyphen = d == '-' && i + 1 < n &&
                      (std::isalnum(static_cast<unsigned char>(source[i + 1])) ||
                       source[i + 1] == '_');
        if (!word_char && !hyphen) break;
        advance();
      }
      std::string word = source.substr(start, i - start);
      std::string lower = Lower(word);
      if (Keywords().count(lower)) {
        push(TokenType::kKeyword, lower, tl, tc);
      } else {
        push(TokenType::kIdentifier, word, tl, tc);
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
        advance();
      }
      if (i + 1 < n && source[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(source[i + 1]))) {
        is_float = true;
        advance();
        while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
          advance();
        }
      }
      std::string text = source.substr(start, i - start);
      Token t;
      t.text = text;
      t.line = tl;
      t.column = tc;
      if (is_float) {
        t.type = TokenType::kFloat;
        t.float_value = std::strtod(text.c_str(), nullptr);
      } else {
        t.type = TokenType::kInt;
        auto [ptr, ec] =
            std::from_chars(text.data(), text.data() + text.size(),
                            t.int_value);
        if (ec != std::errc()) {
          return ErrorAt(tl, tc, "integer literal out of range: " + text);
        }
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      advance();
      std::string value;
      bool closed = false;
      while (i < n) {
        if (source[i] == quote) {
          closed = true;
          advance();
          break;
        }
        if (source[i] == '\n') break;
        value.push_back(source[i]);
        advance();
      }
      if (!closed) return ErrorAt(tl, tc, "unterminated string literal");
      push(TokenType::kString, value, tl, tc);
      continue;
    }
    switch (c) {
      case '(':
        push(TokenType::kLParen, "(", tl, tc);
        advance();
        continue;
      case ')':
        push(TokenType::kRParen, ")", tl, tc);
        advance();
        continue;
      case '[':
        push(TokenType::kLBracket, "[", tl, tc);
        advance();
        continue;
      case ']':
        push(TokenType::kRBracket, "]", tl, tc);
        advance();
        continue;
      case ',':
        push(TokenType::kComma, ",", tl, tc);
        advance();
        continue;
      case ':':
        push(TokenType::kColon, ":", tl, tc);
        advance();
        continue;
      case '.':
        push(TokenType::kDot, ".", tl, tc);
        advance();
        continue;
      case '*':
        push(TokenType::kStar, "*", tl, tc);
        advance();
        continue;
      case '=':
        push(TokenType::kOperator, "=", tl, tc);
        advance();
        continue;
      case '!':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenType::kOperator, "!=", tl, tc);
          advance(2);
          continue;
        }
        return ErrorAt(tl, tc, "unexpected '!'");
      case '<':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenType::kOperator, "<=", tl, tc);
          advance(2);
        } else if (i + 1 < n && source[i + 1] == '>') {
          push(TokenType::kOperator, "!=", tl, tc);
          advance(2);
        } else {
          push(TokenType::kOperator, "<", tl, tc);
          advance();
        }
        continue;
      case '>':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenType::kOperator, ">=", tl, tc);
          advance(2);
        } else {
          push(TokenType::kOperator, ">", tl, tc);
          advance();
        }
        continue;
      default:
        return ErrorAt(tl, tc,
                       std::string("unexpected character '") + c + "'");
    }
  }
  push(TokenType::kEnd, "", line, column);
  return tokens;
}

}  // namespace gs::gvdl
