// Recursive-descent parser for GVDL statements.
//
// Grammar (keywords case-insensitive):
//   statement   := filtered | collection | aggregate | explain
//   explain     := 'explain' name
//   filtered    := 'create' 'view' name 'on' name 'edges' 'where' pred
//   collection  := 'create' 'view' 'collection' name 'on' name member
//                  (','? member)*
//   member      := '[' name ':' pred ']'
//   aggregate   := 'create' 'view' name 'on' name 'nodes' 'group' 'by'
//                  groupspec ('aggregate' agglist)?
//                  ('edges' 'aggregate' agglist)?
//   groupspec   := proplist | '[' '(' pred ')' (',' '(' pred ')')* ']'
//   agglist     := agg (',' agg)*
//   agg         := (name ':')? func '(' (prop | '*') ')'
//   pred        := orexpr;  orexpr := andexpr ('or' andexpr)*
//   andexpr     := unary ('and' unary)*
//   unary       := 'not' unary | '(' pred ')' | comparison
//   comparison  := operand ('='|'!='|'<'|'<='|'>'|'>=') operand
//   operand     := 'src' '.' prop | 'dst' '.' prop | prop | literal
#ifndef GRAPHSURGE_GVDL_PARSER_H_
#define GRAPHSURGE_GVDL_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "gvdl/ast.h"

namespace gs::gvdl {

/// Parses a single GVDL statement.
StatusOr<Statement> Parse(const std::string& source);

/// Parses a semicolon- or newline-separated script of statements.
/// (Statements start with `create`, which doubles as the separator.)
StatusOr<std::vector<Statement>> ParseScript(const std::string& source);

/// Parses a bare predicate expression (used by programmatic view
/// construction and tests).
StatusOr<ExprPtr> ParsePredicate(const std::string& source);

}  // namespace gs::gvdl

#endif  // GRAPHSURGE_GVDL_PARSER_H_
