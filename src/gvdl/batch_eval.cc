#include "gvdl/batch_eval.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace gs::gvdl {

namespace {

simd::Cmp ToCmp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return simd::Cmp::kEq;
    case CompareOp::kNe:
      return simd::Cmp::kNe;
    case CompareOp::kLt:
      return simd::Cmp::kLt;
    case CompareOp::kLe:
      return simd::Cmp::kLe;
    case CompareOp::kGt:
      return simd::Cmp::kGt;
    case CompareOp::kGe:
      return simd::Cmp::kGe;
  }
  return simd::Cmp::kEq;
}

// a OP b == b Mirror(OP) a — used to normalize constant-on-the-left
// comparisons so kCmp's `a` operand is always a column.
simd::Cmp Mirror(simd::Cmp op) {
  switch (op) {
    case simd::Cmp::kLt:
      return simd::Cmp::kGt;
    case simd::Cmp::kLe:
      return simd::Cmp::kGe;
    case simd::Cmp::kGt:
      return simd::Cmp::kLt;
    case simd::Cmp::kGe:
      return simd::Cmp::kLe;
    default:
      return op;
  }
}

bool IsNumericType(PropertyType t) {
  return t == PropertyType::kInt || t == PropertyType::kDouble;
}

int SignOf(int c) { return c < 0 ? -1 : (c > 0 ? 1 : 0); }

}  // namespace

StatusOr<BatchPredicateProgram> BatchPredicateProgram::Compile(
    const ExprPtr& expr, const PropertyGraph& graph) {
  BatchPredicateProgram prog;

  // Local class so the lowering helpers can name the private Instr/Operand
  // types. Mirrors ResolveOperand/CheckComparable in gvdl/predicate.cc —
  // the two compilers must accept and reject identical expressions.
  struct Lowerer {
    BatchPredicateProgram* prog;
    const PropertyGraph* graph;

    struct ResolvedOperand {
      Operand op;
      PropertyType type = PropertyType::kNull;
      bool is_const = false;
      PropertyValue constant;
    };

    int32_t PrefixCacheFor(bool node_table, uint32_t column) {
      for (size_t i = 0; i < prog->prefix_caches_.size(); ++i) {
        const PrefixCache& c = prog->prefix_caches_[i];
        if (c.node_table == node_table && c.column == column) {
          return static_cast<int32_t>(i);
        }
      }
      prog->prefix_caches_.push_back(PrefixCache{node_table, column, {}});
      return static_cast<int32_t>(prog->prefix_caches_.size() - 1);
    }

    StatusOr<ResolvedOperand> Resolve(const gvdl::Operand& o) {
      ResolvedOperand r;
      switch (o.kind) {
        case gvdl::Operand::Kind::kLiteral:
          r.op.kind = Operand::Kind::kConst;
          r.is_const = true;
          r.constant = o.literal;
          r.type = o.literal.type();
          return r;
        case gvdl::Operand::Kind::kSrcProperty:
        case gvdl::Operand::Kind::kDstProperty: {
          GS_ASSIGN_OR_RETURN(
              size_t col, graph->node_properties().ColumnIndex(o.property));
          r.op.kind = o.kind == gvdl::Operand::Kind::kSrcProperty
                          ? Operand::Kind::kSrc
                          : Operand::Kind::kDst;
          r.op.column = static_cast<uint32_t>(col);
          r.type = graph->node_properties().column(col).type();
          return r;
        }
        case gvdl::Operand::Kind::kEdgeProperty: {
          GS_ASSIGN_OR_RETURN(
              size_t col, graph->edge_properties().ColumnIndex(o.property));
          r.op.kind = Operand::Kind::kEdge;
          r.op.column = static_cast<uint32_t>(col);
          r.type = graph->edge_properties().column(col).type();
          return r;
        }
      }
      return Status::Internal("unreachable operand kind");
    }

    void EmitConst(bool value, size_t height) {
      Instr ins;
      ins.op = value ? Instr::Op::kConstTrue : Instr::Op::kConstFalse;
      prog->instrs_.push_back(std::move(ins));
      Bump(height + 1);
    }

    void Bump(size_t height) {
      prog->max_stack_depth_ = std::max(prog->max_stack_depth_, height);
    }

    Status LowerCompare(const Expr& e, size_t height) {
      GS_ASSIGN_OR_RETURN(ResolvedOperand lhs, Resolve(e.lhs));
      GS_ASSIGN_OR_RETURN(ResolvedOperand rhs, Resolve(e.rhs));
      PropertyType a = lhs.type, b = rhs.type;
      // Static comparability: identical to CheckComparable.
      bool comparable = a == PropertyType::kNull || b == PropertyType::kNull ||
                        (IsNumericType(a) && IsNumericType(b)) || a == b;
      if (!comparable) {
        return Status::InvalidArgument(
            std::string("cannot compare ") + PropertyTypeName(a) + " with " +
            PropertyTypeName(b));
      }
      // A null anywhere (literal or null-typed column) compares false.
      if (a == PropertyType::kNull || b == PropertyType::kNull) {
        EmitConst(false, height);
        return Status::Ok();
      }
      simd::Cmp cmp = ToCmp(e.op);
      if (lhs.is_const && rhs.is_const) {
        auto c = lhs.constant.Compare(rhs.constant);
        EmitConst(c.has_value() && simd::ApplyCmp(cmp, *c), height);
        return Status::Ok();
      }
      if (lhs.is_const) {
        std::swap(lhs, rhs);
        cmp = Mirror(cmp);
      }
      Instr ins;
      ins.op = Instr::Op::kCmp;
      ins.cmp = cmp;
      ins.a = lhs.op;
      ins.b = rhs.op;
      ins.b_is_const = rhs.is_const;
      if (IsNumericType(lhs.type)) {
        ins.kind = CmpKind::kNumeric;
        if (rhs.is_const) ins.b.f64 = *rhs.constant.AsNumeric();
      } else if (lhs.type == PropertyType::kBool) {
        ins.kind = CmpKind::kBool;
        if (rhs.is_const) ins.b.i64 = rhs.constant.AsBool() ? 1 : 0;
      } else {
        ins.kind = CmpKind::kString;
        ins.a.prefix_cache =
            PrefixCacheFor(ins.a.kind != Operand::Kind::kEdge, ins.a.column);
        if (rhs.is_const) {
          ins.b.str = rhs.constant.AsString();
          ins.b.prefix = simd::StringPrefix(ins.b.str);
        } else {
          ins.b.prefix_cache =
              PrefixCacheFor(ins.b.kind != Operand::Kind::kEdge, ins.b.column);
        }
      }
      prog->instrs_.push_back(std::move(ins));
      Bump(height + 1);
      return Status::Ok();
    }

    // `height` is the stack height before this expression's value is pushed.
    Status Lower(const ExprPtr& e, size_t height) {
      if (e == nullptr) return Status::InvalidArgument("null predicate");
      switch (e->kind) {
        case Expr::Kind::kCompare:
          return LowerCompare(*e, height);
        case Expr::Kind::kNot: {
          GS_RETURN_IF_ERROR(Lower(e->children[0], height));
          Instr ins;
          ins.op = Instr::Op::kNot;
          prog->instrs_.push_back(std::move(ins));
          return Status::Ok();
        }
        case Expr::Kind::kAnd:
        case Expr::Kind::kOr: {
          bool is_and = e->kind == Expr::Kind::kAnd;
          if (e->children.empty()) {
            // Matches the scalar evaluator: empty AND is true, empty OR false.
            EmitConst(is_and, height);
            return Status::Ok();
          }
          GS_RETURN_IF_ERROR(Lower(e->children[0], height));
          for (size_t i = 1; i < e->children.size(); ++i) {
            GS_RETURN_IF_ERROR(Lower(e->children[i], height + 1));
            Instr ins;
            ins.op = is_and ? Instr::Op::kAnd : Instr::Op::kOr;
            prog->instrs_.push_back(std::move(ins));
          }
          return Status::Ok();
        }
      }
      return Status::Internal("unreachable expr kind");
    }
  };

  Lowerer lowerer{&prog, &graph};
  GS_RETURN_IF_ERROR(lowerer.Lower(expr, 0));
  prog.Prepare(graph);
  return prog;
}

void BatchPredicateProgram::Prepare(const PropertyGraph& graph) {
  for (PrefixCache& cache : prefix_caches_) {
    const PropertyTable& table = cache.node_table ? graph.node_properties()
                                                  : graph.edge_properties();
    const Column& col = table.column(cache.column);
    size_t n = col.size();
    cache.prefixes.resize(n);
    const std::string* strings = col.raw_strings();
    // Rebuilt from scratch: property-update mutations can rewrite strings
    // in place, so no incremental shortcut is sound.
    for (size_t i = 0; i < n; ++i) {
      cache.prefixes[i] = simd::StringPrefix(strings[i]);
    }
  }
}

void BatchPredicateProgram::EvalEdges(const PropertyGraph& graph, size_t begin,
                                      size_t end, uint64_t* out,
                                      BatchEvalScratch& scratch) const {
  GS_CHECK(begin % 64 == 0);
  scratch.stack.resize(max_stack_depth_ * kChunkWords);
  scratch.tmp.resize(kChunkWords);
  scratch.tmp2.resize(kChunkWords);
  scratch.f64_a.resize(kChunkEdges);
  scratch.f64_b.resize(kChunkEdges);
  scratch.i64_a.resize(kChunkEdges);
  scratch.i64_b.resize(kChunkEdges);
  scratch.u64_a.resize(kChunkEdges);
  scratch.u64_b.resize(kChunkEdges);
  scratch.bytes_a.resize(kChunkEdges);
  scratch.bytes_b.resize(kChunkEdges);
  for (size_t cb = begin; cb < end; cb += kChunkEdges) {
    size_t n = std::min(kChunkEdges, end - cb);
    EvalChunk(graph, cb, n, out + (cb - begin) / 64, scratch);
  }
}

void BatchPredicateProgram::EvalChunk(const PropertyGraph& graph,
                                      size_t chunk_begin, size_t n,
                                      uint64_t* out,
                                      BatchEvalScratch& scratch) const {
  size_t words = simd::MaskWords(n);
  uint64_t tail =
      (n % 64) != 0 ? (uint64_t{1} << (n % 64)) - 1 : ~uint64_t{0};
  auto lanes = [&](size_t w) { return w + 1 == words ? tail : ~uint64_t{0}; };
  uint64_t* stack = scratch.stack.data();
  size_t sp = 0;
  for (const Instr& ins : instrs_) {
    switch (ins.op) {
      case Instr::Op::kConstTrue: {
        uint64_t* top = stack + sp * kChunkWords;
        for (size_t w = 0; w < words; ++w) top[w] = lanes(w);
        ++sp;
        break;
      }
      case Instr::Op::kConstFalse: {
        uint64_t* top = stack + sp * kChunkWords;
        for (size_t w = 0; w < words; ++w) top[w] = 0;
        ++sp;
        break;
      }
      case Instr::Op::kAnd: {
        uint64_t* b = stack + (sp - 1) * kChunkWords;
        uint64_t* a = stack + (sp - 2) * kChunkWords;
        for (size_t w = 0; w < words; ++w) a[w] &= b[w];
        --sp;
        break;
      }
      case Instr::Op::kOr: {
        uint64_t* b = stack + (sp - 1) * kChunkWords;
        uint64_t* a = stack + (sp - 2) * kChunkWords;
        for (size_t w = 0; w < words; ++w) a[w] |= b[w];
        --sp;
        break;
      }
      case Instr::Op::kNot: {
        uint64_t* top = stack + (sp - 1) * kChunkWords;
        for (size_t w = 0; w < words; ++w) top[w] = ~top[w] & lanes(w);
        break;
      }
      case Instr::Op::kCmp: {
        uint64_t* top = stack + sp * kChunkWords;
        EvalCmp(ins, graph, chunk_begin, n, top, scratch);
        ++sp;
        break;
      }
    }
  }
  GS_CHECK(sp == 1);
  for (size_t w = 0; w < words; ++w) out[w] = stack[w];
}

namespace {

const Column& ColumnOf(const PropertyGraph& graph, bool node_table,
                       uint32_t column) {
  const PropertyTable& t =
      node_table ? graph.node_properties() : graph.edge_properties();
  return t.column(column);
}

}  // namespace

void BatchPredicateProgram::EvalCmp(const Instr& ins,
                                    const PropertyGraph& graph,
                                    size_t chunk_begin, size_t n,
                                    uint64_t* top,
                                    BatchEvalScratch& scratch) const {
  const Edge* edges = graph.edges().data() + chunk_begin;
  auto node_row = [&](const Operand& o, size_t i) -> size_t {
    return o.kind == Operand::Kind::kSrc ? edges[i].src : edges[i].dst;
  };
  auto is_node = [](const Operand& o) {
    return o.kind != Operand::Kind::kEdge;
  };
  auto column_of = [&](const Operand& o) -> const Column& {
    return ColumnOf(graph, is_node(o), o.column);
  };
  // Validity bytes for `o`'s rows: zero-copy for edge columns, gathered
  // through src/dst for node columns.
  auto valid_bytes = [&](const Operand& o, const Column& col,
                         std::vector<uint8_t>& buf) -> const uint8_t* {
    const uint8_t* rv = col.raw_valid();
    if (!is_node(o)) return rv + chunk_begin;
    for (size_t i = 0; i < n; ++i) buf[i] = rv[node_row(o, i)];
    return buf.data();
  };
  // Rows of `o` as doubles (the numeric comparison domain).
  auto numeric_rows = [&](const Operand& o, const Column& col,
                          std::vector<double>& buf) -> const double* {
    if (col.type() == PropertyType::kDouble) {
      if (!is_node(o)) return col.raw_doubles() + chunk_begin;
      const double* dv = col.raw_doubles();
      for (size_t i = 0; i < n; ++i) buf[i] = dv[node_row(o, i)];
    } else {
      const int64_t* iv = col.raw_ints();
      if (!is_node(o)) {
        iv += chunk_begin;
        for (size_t i = 0; i < n; ++i) buf[i] = static_cast<double>(iv[i]);
      } else {
        for (size_t i = 0; i < n; ++i) {
          buf[i] = static_cast<double>(iv[node_row(o, i)]);
        }
      }
    }
    return buf.data();
  };
  auto bool_rows = [&](const Operand& o, const Column& col,
                       std::vector<int64_t>& buf) -> const int64_t* {
    const uint8_t* bv = col.raw_bools();
    if (!is_node(o)) bv += chunk_begin;
    for (size_t i = 0; i < n; ++i) {
      buf[i] = is_node(o) ? bv[node_row(o, i)] : bv[i];
    }
    return buf.data();
  };
  auto prefix_rows = [&](const Operand& o,
                         std::vector<uint64_t>& buf) -> const uint64_t* {
    const std::vector<uint64_t>& p =
        prefix_caches_[o.prefix_cache].prefixes;
    if (!is_node(o)) return p.data() + chunk_begin;
    for (size_t i = 0; i < n; ++i) buf[i] = p[node_row(o, i)];
    return buf.data();
  };

  const Column& col_a = column_of(ins.a);
  switch (ins.kind) {
    case CmpKind::kNumeric: {
      const double* pa = numeric_rows(ins.a, col_a, scratch.f64_a);
      if (ins.b_is_const) {
        simd::CmpF64Const(pa, n, ins.cmp, ins.b.f64, top);
      } else {
        const double* pb =
            numeric_rows(ins.b, column_of(ins.b), scratch.f64_b);
        simd::CmpF64Pairs(pa, pb, n, ins.cmp, top);
      }
      break;
    }
    case CmpKind::kBool: {
      const int64_t* pa = bool_rows(ins.a, col_a, scratch.i64_a);
      if (ins.b_is_const) {
        simd::CmpI64Const(pa, n, ins.cmp, ins.b.i64, top);
      } else {
        const int64_t* pb = bool_rows(ins.b, column_of(ins.b), scratch.i64_b);
        simd::CmpI64Pairs(pa, pb, n, ins.cmp, top);
      }
      break;
    }
    case CmpKind::kString: {
      const uint64_t* pa = prefix_rows(ins.a, scratch.u64_a);
      const uint64_t* pb = nullptr;
      if (ins.b_is_const) {
        simd::CmpU64Const(pa, n, ins.cmp, ins.b.prefix, top);
        simd::CmpU64Const(pa, n, simd::Cmp::kEq, ins.b.prefix,
                          scratch.tmp2.data());
      } else {
        pb = prefix_rows(ins.b, scratch.u64_b);
        simd::CmpU64Pairs(pa, pb, n, ins.cmp, top);
        simd::CmpU64Pairs(pa, pb, n, simd::Cmp::kEq, scratch.tmp2.data());
      }
      break;
    }
  }

  // Null semantics: clear lanes where either column operand is null.
  // (tmp2 holds the string tie mask, so b's validity uses a local buffer.)
  size_t words = simd::MaskWords(n);
  const uint8_t* va = valid_bytes(ins.a, col_a, scratch.bytes_a);
  simd::BytesNonZero(va, n, scratch.tmp.data());
  if (!ins.b_is_const) {
    const uint8_t* vb =
        valid_bytes(ins.b, column_of(ins.b), scratch.bytes_b);
    uint64_t vb_words[kChunkWords];
    simd::BytesNonZero(vb, n, vb_words);
    for (size_t w = 0; w < words; ++w) scratch.tmp[w] &= vb_words[w];
  }
  for (size_t w = 0; w < words; ++w) top[w] &= scratch.tmp[w];

  // String prefix ties: re-resolve with a full scalar comparison. Only
  // valid lanes matter (invalid ones were just cleared from `top`).
  if (ins.kind == CmpKind::kString) {
    const std::string* sa = col_a.raw_strings();
    const std::string* sb =
        ins.b_is_const ? nullptr : column_of(ins.b).raw_strings();
    for (size_t w = 0; w < words; ++w) {
      uint64_t ties = scratch.tmp2[w] & scratch.tmp[w];
      while (ties != 0) {
        size_t j = static_cast<size_t>(std::countr_zero(ties));
        ties &= ties - 1;
        size_t i = 64 * w + j;
        size_t row_a =
            is_node(ins.a) ? node_row(ins.a, i) : chunk_begin + i;
        const std::string& a_str = sa[row_a];
        const std::string& b_str =
            ins.b_is_const
                ? ins.b.str
                : sb[is_node(ins.b) ? node_row(ins.b, i) : chunk_begin + i];
        int sign = SignOf(a_str.compare(b_str));
        uint64_t bit = uint64_t{1} << j;
        if (simd::ApplyCmp(ins.cmp, sign)) {
          top[w] |= bit;
        } else {
          top[w] &= ~bit;
        }
      }
    }
  }
}

bool BatchPredicateProgram::EvalEdge(const PropertyGraph& graph,
                                     EdgeId edge) const {
  static thread_local BatchEvalScratch scratch;
  size_t begin = static_cast<size_t>(edge) & ~size_t{63};
  uint64_t word = 0;
  EvalEdges(graph, begin, static_cast<size_t>(edge) + 1, &word, scratch);
  return (word >> (edge & 63)) & 1;
}

}  // namespace gs::gvdl
