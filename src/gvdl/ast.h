// Abstract syntax of GVDL, the Graph View Definition Language (paper §3.1,
// §3.2.1, §6): filtered views, view collections, and aggregate views.
#ifndef GRAPHSURGE_GVDL_AST_H_
#define GRAPHSURGE_GVDL_AST_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "graph/property.h"

namespace gs::gvdl {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

/// One side of a comparison: a property reference (`src.city`, `dst.city`,
/// bare edge property `duration`) or a literal.
struct Operand {
  enum class Kind { kSrcProperty, kDstProperty, kEdgeProperty, kLiteral };
  Kind kind = Kind::kLiteral;
  std::string property;   // for property kinds
  PropertyValue literal;  // for kLiteral

  static Operand Src(std::string name) {
    return {Kind::kSrcProperty, std::move(name), PropertyValue()};
  }
  static Operand Dst(std::string name) {
    return {Kind::kDstProperty, std::move(name), PropertyValue()};
  }
  static Operand Edge(std::string name) {
    return {Kind::kEdgeProperty, std::move(name), PropertyValue()};
  }
  static Operand Literal(PropertyValue v) {
    return {Kind::kLiteral, {}, std::move(v)};
  }
};

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Predicate expression tree: comparisons combined with and/or/not.
struct Expr {
  enum class Kind { kCompare, kAnd, kOr, kNot };
  Kind kind;

  // kCompare:
  CompareOp op = CompareOp::kEq;
  Operand lhs;
  Operand rhs;

  // kAnd / kOr / kNot:
  std::vector<ExprPtr> children;

  static ExprPtr Compare(Operand lhs, CompareOp op, Operand rhs) {
    auto e = std::make_shared<Expr>();
    e->kind = Kind::kCompare;
    e->op = op;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
  }
  static ExprPtr And(std::vector<ExprPtr> children) {
    auto e = std::make_shared<Expr>();
    e->kind = Kind::kAnd;
    e->children = std::move(children);
    return e;
  }
  static ExprPtr Or(std::vector<ExprPtr> children) {
    auto e = std::make_shared<Expr>();
    e->kind = Kind::kOr;
    e->children = std::move(children);
    return e;
  }
  static ExprPtr Not(ExprPtr child) {
    auto e = std::make_shared<Expr>();
    e->kind = Kind::kNot;
    e->children = {std::move(child)};
    return e;
  }

  std::string ToString() const;
};

/// `create view <name> on <graph> edges where <predicate>` (Listing 1).
struct FilteredViewDef {
  std::string name;
  std::string on;  // base graph or a previously materialized view
  ExprPtr predicate;
};

/// `create view collection <name> on <graph> [v1: p1], [v2: p2], ...`
/// (Listing 3).
struct ViewCollectionDef {
  struct Member {
    std::string name;
    ExprPtr predicate;
  };
  std::string name;
  std::string on;
  std::vector<Member> views;
};

/// Aggregation function over grouped nodes or edges.
struct AggregateSpec {
  enum class Func { kCount, kSum, kMin, kMax, kAvg };
  std::string output_name;  // defaults to "<func>_<property>" / "count"
  Func func = Func::kCount;
  std::string property;  // empty for count(*)
};

/// `create view <name> on <graph> nodes group by ... aggregate ...
///  [edges aggregate ...]` (Listing 4).
struct AggregateViewDef {
  std::string name;
  std::string on;
  /// Either a list of node properties to group by, or a list of predicates
  /// where each predicate defines one super-node.
  std::vector<std::string> group_by_properties;
  std::vector<ExprPtr> group_by_predicates;  // used when properties empty
  std::vector<AggregateSpec> node_aggregates;
  std::vector<AggregateSpec> edge_aggregates;
};

/// `explain <collection>` — renders the optimizer's plan for a materialized
/// view collection: chosen view order, estimated difference-set sizes, and
/// (after a RunComputation) the splitting decisions with estimated-vs-actual
/// per-view diff counts. Purely diagnostic; materializes nothing.
struct ExplainDef {
  std::string target;
};

using Statement = std::variant<FilteredViewDef, ViewCollectionDef,
                               AggregateViewDef, ExplainDef>;

}  // namespace gs::gvdl

#endif  // GRAPHSURGE_GVDL_AST_H_
