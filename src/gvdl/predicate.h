// Compilation of GVDL predicate expressions against a concrete property
// graph: property names are resolved to column indices once, then the
// predicate is evaluated per edge (the hot path of EBM computation) and,
// for aggregate views, per node.
#ifndef GRAPHSURGE_GVDL_PREDICATE_H_
#define GRAPHSURGE_GVDL_PREDICATE_H_

#include <functional>
#include <memory>

#include "common/status.h"
#include "graph/graph.h"
#include "gvdl/ast.h"

namespace gs::gvdl {

/// An edge predicate compiled against one graph. Copyable; holds no
/// reference to the AST after compilation. Null property values make any
/// comparison involving them false (SQL-ish semantics, paper-compatible).
class CompiledEdgePredicate {
 public:
  /// Resolves all property references; errors on unknown properties or
  /// statically incomparable types (e.g. string column vs int literal).
  static StatusOr<CompiledEdgePredicate> Compile(const ExprPtr& expr,
                                                 const PropertyGraph& graph);

  bool Evaluate(EdgeId edge) const { return fn_(edge); }

 private:
  explicit CompiledEdgePredicate(std::function<bool(EdgeId)> fn)
      : fn_(std::move(fn)) {}
  std::function<bool(EdgeId)> fn_;
};

/// A node predicate (only src-less property references allowed) compiled
/// against one graph; used by aggregate views' predicate-defined groups.
class CompiledNodePredicate {
 public:
  static StatusOr<CompiledNodePredicate> Compile(const ExprPtr& expr,
                                                 const PropertyGraph& graph);

  bool Evaluate(VertexId node) const { return fn_(node); }

 private:
  explicit CompiledNodePredicate(std::function<bool(VertexId)> fn)
      : fn_(std::move(fn)) {}
  std::function<bool(VertexId)> fn_;
};

}  // namespace gs::gvdl

#endif  // GRAPHSURGE_GVDL_PREDICATE_H_
