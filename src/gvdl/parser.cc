#include "gvdl/parser.h"

#include "gvdl/lexer.h"

namespace gs::gvdl {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {

std::string OperandToString(const Operand& o) {
  switch (o.kind) {
    case Operand::Kind::kSrcProperty:
      return "src." + o.property;
    case Operand::Kind::kDstProperty:
      return "dst." + o.property;
    case Operand::Kind::kEdgeProperty:
      return o.property;
    case Operand::Kind::kLiteral:
      if (o.literal.type() == PropertyType::kString) {
        return "'" + o.literal.AsString() + "'";
      }
      return o.literal.ToString();
  }
  return "?";
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kCompare:
      return OperandToString(lhs) + " " + CompareOpName(op) + " " +
             OperandToString(rhs);
    case Kind::kNot:
      return "not (" + children[0]->ToString() + ")";
    case Kind::kAnd:
    case Kind::kOr: {
      std::string sep = kind == Kind::kAnd ? " and " : " or ";
      std::string out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i) out += sep;
        out += children[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Statement> ParseStatement() {
    if (PeekKeyword("explain")) {
      ++pos_;
      GS_ASSIGN_OR_RETURN(std::string target,
                          ExpectIdentifier("collection name"));
      ExplainDef def;
      def.target = std::move(target);
      return Statement(std::move(def));
    }
    GS_RETURN_IF_ERROR(ExpectKeyword("create"));
    GS_RETURN_IF_ERROR(ExpectKeyword("view"));
    if (PeekKeyword("collection")) {
      ++pos_;
      return ParseCollection();
    }
    GS_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("view name"));
    GS_RETURN_IF_ERROR(ExpectKeyword("on"));
    GS_ASSIGN_OR_RETURN(std::string on, ExpectIdentifier("graph name"));
    if (PeekKeyword("edges")) {
      ++pos_;
      GS_RETURN_IF_ERROR(ExpectKeyword("where"));
      GS_ASSIGN_OR_RETURN(ExprPtr pred, ParseOr());
      FilteredViewDef def;
      def.name = std::move(name);
      def.on = std::move(on);
      def.predicate = std::move(pred);
      return Statement(std::move(def));
    }
    if (PeekKeyword("nodes")) {
      ++pos_;
      return ParseAggregate(std::move(name), std::move(on));
    }
    return ErrorHere("expected 'edges where' or 'nodes group by'");
  }

  StatusOr<std::vector<Statement>> ParseAll() {
    std::vector<Statement> out;
    while (!AtEnd()) {
      GS_ASSIGN_OR_RETURN(Statement s, ParseStatement());
      out.push_back(std::move(s));
    }
    return out;
  }

  StatusOr<ExprPtr> ParseBarePredicate() {
    GS_ASSIGN_OR_RETURN(ExprPtr e, ParseOr());
    if (!AtEnd()) return ErrorHere("unexpected trailing input");
    return e;
  }

  bool AtEnd() const { return tokens_[pos_].type == TokenType::kEnd; }
  bool AtStatementBoundary() const {
    return AtEnd() || PeekKeyword("create") || PeekKeyword("explain");
  }

 private:
  StatusOr<Statement> ParseCollection() {
    GS_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("collection name"));
    GS_RETURN_IF_ERROR(ExpectKeyword("on"));
    GS_ASSIGN_OR_RETURN(std::string on, ExpectIdentifier("graph name"));
    ViewCollectionDef def;
    def.name = std::move(name);
    def.on = std::move(on);
    for (;;) {
      if (Peek().type == TokenType::kComma) ++pos_;
      if (Peek().type != TokenType::kLBracket) break;
      ++pos_;
      GS_ASSIGN_OR_RETURN(std::string view_name, ExpectIdentifier("view name"));
      GS_RETURN_IF_ERROR(Expect(TokenType::kColon, ":"));
      GS_ASSIGN_OR_RETURN(ExprPtr pred, ParseOr());
      GS_RETURN_IF_ERROR(Expect(TokenType::kRBracket, "]"));
      def.views.push_back({std::move(view_name), std::move(pred)});
    }
    if (def.views.empty()) {
      return ErrorHere("view collection must define at least one view");
    }
    return Statement(std::move(def));
  }

  StatusOr<Statement> ParseAggregate(std::string name, std::string on) {
    GS_RETURN_IF_ERROR(ExpectKeyword("group"));
    GS_RETURN_IF_ERROR(ExpectKeyword("by"));
    AggregateViewDef def;
    def.name = std::move(name);
    def.on = std::move(on);
    if (Peek().type == TokenType::kLBracket) {
      // Predicate-defined super-nodes.
      ++pos_;
      for (;;) {
        GS_RETURN_IF_ERROR(Expect(TokenType::kLParen, "("));
        GS_ASSIGN_OR_RETURN(ExprPtr pred, ParseOr());
        GS_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
        def.group_by_predicates.push_back(std::move(pred));
        if (Peek().type == TokenType::kComma) {
          ++pos_;
          continue;
        }
        break;
      }
      GS_RETURN_IF_ERROR(Expect(TokenType::kRBracket, "]"));
    } else {
      // Property list.
      for (;;) {
        GS_ASSIGN_OR_RETURN(std::string prop,
                            ExpectIdentifier("group-by property"));
        def.group_by_properties.push_back(std::move(prop));
        if (Peek().type == TokenType::kComma) {
          ++pos_;
          continue;
        }
        break;
      }
    }
    if (PeekKeyword("aggregate")) {
      ++pos_;
      GS_ASSIGN_OR_RETURN(def.node_aggregates, ParseAggList());
    }
    if (PeekKeyword("edges")) {
      ++pos_;
      GS_RETURN_IF_ERROR(ExpectKeyword("aggregate"));
      GS_ASSIGN_OR_RETURN(def.edge_aggregates, ParseAggList());
    }
    return Statement(std::move(def));
  }

  StatusOr<std::vector<AggregateSpec>> ParseAggList() {
    std::vector<AggregateSpec> specs;
    for (;;) {
      AggregateSpec spec;
      GS_ASSIGN_OR_RETURN(std::string first,
                          ExpectIdentifier("aggregate function"));
      if (Peek().type == TokenType::kColon) {
        ++pos_;
        spec.output_name = first;
        GS_ASSIGN_OR_RETURN(first, ExpectIdentifier("aggregate function"));
      }
      if (first == "count") {
        spec.func = AggregateSpec::Func::kCount;
      } else if (first == "sum") {
        spec.func = AggregateSpec::Func::kSum;
      } else if (first == "min") {
        spec.func = AggregateSpec::Func::kMin;
      } else if (first == "max") {
        spec.func = AggregateSpec::Func::kMax;
      } else if (first == "avg") {
        spec.func = AggregateSpec::Func::kAvg;
      } else {
        return ErrorHere("unknown aggregate function '" + first + "'");
      }
      GS_RETURN_IF_ERROR(Expect(TokenType::kLParen, "("));
      if (Peek().type == TokenType::kStar) {
        ++pos_;
        if (spec.func != AggregateSpec::Func::kCount) {
          return ErrorHere("'*' is only valid with count()");
        }
      } else {
        GS_ASSIGN_OR_RETURN(spec.property,
                            ExpectIdentifier("aggregate property"));
        if (spec.func == AggregateSpec::Func::kCount) {
          // count(prop) counts non-null values of prop.
        }
      }
      GS_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
      if (spec.output_name.empty()) {
        spec.output_name =
            spec.property.empty() ? "count" : first + "_" + spec.property;
      }
      specs.push_back(std::move(spec));
      if (Peek().type == TokenType::kComma &&
          tokens_[pos_ + 1].type == TokenType::kIdentifier) {
        ++pos_;
        continue;
      }
      break;
    }
    return specs;
  }

  StatusOr<ExprPtr> ParseOr() {
    GS_ASSIGN_OR_RETURN(ExprPtr first, ParseAnd());
    std::vector<ExprPtr> children = {std::move(first)};
    while (PeekKeyword("or")) {
      ++pos_;
      GS_ASSIGN_OR_RETURN(ExprPtr next, ParseAnd());
      children.push_back(std::move(next));
    }
    if (children.size() == 1) return children[0];
    return Expr::Or(std::move(children));
  }

  StatusOr<ExprPtr> ParseAnd() {
    GS_ASSIGN_OR_RETURN(ExprPtr first, ParseUnary());
    std::vector<ExprPtr> children = {std::move(first)};
    while (PeekKeyword("and")) {
      ++pos_;
      GS_ASSIGN_OR_RETURN(ExprPtr next, ParseUnary());
      children.push_back(std::move(next));
    }
    if (children.size() == 1) return children[0];
    return Expr::And(std::move(children));
  }

  StatusOr<ExprPtr> ParseUnary() {
    // `not` and `(` recurse; without a depth cap a pathological input
    // ("not not not ...") overflows the stack instead of returning a
    // parse error. 200 is far beyond any legitimate predicate.
    static constexpr int kMaxPredicateDepth = 200;
    if (depth_ >= kMaxPredicateDepth) {
      return ErrorHere("predicate nesting too deep");
    }
    ++depth_;
    StatusOr<ExprPtr> result = ParseUnaryInner();
    --depth_;
    return result;
  }

  StatusOr<ExprPtr> ParseUnaryInner() {
    if (PeekKeyword("not")) {
      ++pos_;
      GS_ASSIGN_OR_RETURN(ExprPtr child, ParseUnary());
      return Expr::Not(std::move(child));
    }
    if (Peek().type == TokenType::kLParen) {
      ++pos_;
      GS_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
      GS_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
      return inner;
    }
    return ParseComparison();
  }

  StatusOr<ExprPtr> ParseComparison() {
    GS_ASSIGN_OR_RETURN(Operand lhs, ParseOperand());
    if (Peek().type != TokenType::kOperator) {
      return ErrorHere("expected comparison operator");
    }
    std::string op_text = Peek().text;
    ++pos_;
    CompareOp op;
    if (op_text == "=") {
      op = CompareOp::kEq;
    } else if (op_text == "!=") {
      op = CompareOp::kNe;
    } else if (op_text == "<") {
      op = CompareOp::kLt;
    } else if (op_text == "<=") {
      op = CompareOp::kLe;
    } else if (op_text == ">") {
      op = CompareOp::kGt;
    } else {
      op = CompareOp::kGe;
    }
    GS_ASSIGN_OR_RETURN(Operand rhs, ParseOperand());
    return Expr::Compare(std::move(lhs), op, std::move(rhs));
  }

  StatusOr<Operand> ParseOperand() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInt:
        ++pos_;
        return Operand::Literal(PropertyValue(t.int_value));
      case TokenType::kFloat:
        ++pos_;
        return Operand::Literal(PropertyValue(t.float_value));
      case TokenType::kString:
        ++pos_;
        return Operand::Literal(PropertyValue(t.text));
      case TokenType::kKeyword:
        if (t.text == "true" || t.text == "false") {
          ++pos_;
          return Operand::Literal(PropertyValue(t.text == "true"));
        }
        return ErrorHere("unexpected keyword '" + t.text + "' in predicate");
      case TokenType::kIdentifier: {
        std::string name = t.text;
        ++pos_;
        if ((name == "src" || name == "dst") &&
            Peek().type == TokenType::kDot) {
          ++pos_;
          GS_ASSIGN_OR_RETURN(std::string prop,
                              ExpectIdentifier("property name"));
          return name == "src" ? Operand::Src(std::move(prop))
                               : Operand::Dst(std::move(prop));
        }
        return Operand::Edge(std::move(name));
      }
      default:
        return ErrorHere("expected operand");
    }
  }

  const Token& Peek() const { return tokens_[pos_]; }
  bool PeekKeyword(const char* kw) const {
    return Peek().type == TokenType::kKeyword && Peek().text == kw;
  }

  Status ExpectKeyword(const char* kw) {
    if (!PeekKeyword(kw)) {
      return ErrorHere(std::string("expected '") + kw + "'");
    }
    ++pos_;
    return Status::Ok();
  }

  Status Expect(TokenType type, const char* what) {
    if (Peek().type != type) {
      return ErrorHere(std::string("expected '") + what + "'");
    }
    ++pos_;
    return Status::Ok();
  }

  StatusOr<std::string> ExpectIdentifier(const char* what) {
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere(std::string("expected ") + what);
    }
    std::string text = Peek().text;
    ++pos_;
    return text;
  }

  Status ErrorHere(const std::string& message) const {
    const Token& t = Peek();
    return Status::ParseError("line " + std::to_string(t.line) + ":" +
                              std::to_string(t.column) + ": " + message +
                              (t.text.empty() ? "" : " (got '" + t.text + "')"));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;  // ParseUnary recursion depth (stack-overflow guard)
};

}  // namespace

StatusOr<Statement> Parse(const std::string& source) {
  GS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  GS_ASSIGN_OR_RETURN(Statement s, parser.ParseStatement());
  if (!parser.AtEnd()) {
    return Status::ParseError("unexpected trailing input after statement");
  }
  return s;
}

StatusOr<std::vector<Statement>> ParseScript(const std::string& source) {
  GS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseAll();
}

StatusOr<ExprPtr> ParsePredicate(const std::string& source) {
  GS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseBarePredicate();
}

}  // namespace gs::gvdl
