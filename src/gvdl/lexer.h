// GVDL tokenizer. Keywords are case-insensitive; identifiers may contain
// interior hyphens (view names like `CA-Long-Calls` and `D1-Y2010` in the
// paper); string literals use single or double quotes.
#ifndef GRAPHSURGE_GVDL_LEXER_H_
#define GRAPHSURGE_GVDL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace gs::gvdl {

enum class TokenType {
  kIdentifier,
  kKeyword,  // create, view, collection, on, edges, nodes, where, group,
             // by, aggregate, and, or, not, true, false
  kInt,
  kFloat,
  kString,
  kOperator,  // = != < <= > >=
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kColon,
  kDot,
  kStar,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  // normalized (keywords lowercased)
  int64_t int_value = 0;
  double float_value = 0;
  size_t line = 1;
  size_t column = 1;
};

/// Tokenizes a full GVDL source string. Returns ParseError with position
/// info on invalid input. The final token is always kEnd.
StatusOr<std::vector<Token>> Tokenize(const std::string& source);

/// True if `word` (lowercased) is a reserved GVDL keyword.
bool IsKeyword(const std::string& word);

}  // namespace gs::gvdl

#endif  // GRAPHSURGE_GVDL_LEXER_H_
