#include "gvdl/predicate.h"

#include <optional>

namespace gs::gvdl {

namespace {

// How a compiled operand produces a value for a row: either from a column
// of the node/edge tables or from a constant.
struct ValueSource {
  enum class Kind { kSrcColumn, kDstColumn, kEdgeColumn, kConstant };
  Kind kind = Kind::kConstant;
  const Column* column = nullptr;
  PropertyValue constant;

  PropertyType type() const {
    return kind == Kind::kConstant ? constant.type() : column->type();
  }
};

// Resolves an operand against the graph's tables. `allow_edge_refs` is
// false for node predicates.
StatusOr<ValueSource> ResolveOperand(const Operand& operand,
                                     const PropertyGraph& graph,
                                     bool allow_edge_refs) {
  ValueSource source;
  switch (operand.kind) {
    case Operand::Kind::kLiteral:
      source.kind = ValueSource::Kind::kConstant;
      source.constant = operand.literal;
      return source;
    case Operand::Kind::kSrcProperty:
    case Operand::Kind::kDstProperty: {
      if (!allow_edge_refs) {
        return Status::InvalidArgument(
            "src./dst. references are not allowed in node predicates");
      }
      GS_ASSIGN_OR_RETURN(size_t col,
                          graph.node_properties().ColumnIndex(operand.property));
      source.kind = operand.kind == Operand::Kind::kSrcProperty
                        ? ValueSource::Kind::kSrcColumn
                        : ValueSource::Kind::kDstColumn;
      source.column = &graph.node_properties().column(col);
      return source;
    }
    case Operand::Kind::kEdgeProperty: {
      if (allow_edge_refs) {
        GS_ASSIGN_OR_RETURN(
            size_t col, graph.edge_properties().ColumnIndex(operand.property));
        source.kind = ValueSource::Kind::kEdgeColumn;
        source.column = &graph.edge_properties().column(col);
        return source;
      }
      // In node predicates a bare identifier is a node property.
      GS_ASSIGN_OR_RETURN(size_t col,
                          graph.node_properties().ColumnIndex(operand.property));
      source.kind = ValueSource::Kind::kSrcColumn;  // row = the node itself
      source.column = &graph.node_properties().column(col);
      return source;
    }
  }
  return Status::Internal("unreachable operand kind");
}

// Checks static comparability of the two sides.
Status CheckComparable(const ValueSource& lhs, const ValueSource& rhs) {
  auto numeric = [](PropertyType t) {
    return t == PropertyType::kInt || t == PropertyType::kDouble;
  };
  PropertyType a = lhs.type(), b = rhs.type();
  if (a == PropertyType::kNull || b == PropertyType::kNull) {
    return Status::Ok();  // null literals compare false at runtime
  }
  if (numeric(a) && numeric(b)) return Status::Ok();
  if (a == b) return Status::Ok();
  return Status::InvalidArgument(
      std::string("cannot compare ") + PropertyTypeName(a) + " with " +
      PropertyTypeName(b));
}

bool ApplyOp(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

// Builds an evaluator for one comparison. `row_of` maps an input row id to
// the (src_row, dst_row, edge_row) triple used by the sources.
template <typename RowMapper>
std::function<bool(uint64_t)> MakeComparison(const ValueSource& lhs,
                                             CompareOp op,
                                             const ValueSource& rhs,
                                             RowMapper row_of) {
  auto fetch = [](const ValueSource& s, size_t src_row, size_t dst_row,
                  size_t edge_row) -> PropertyValue {
    switch (s.kind) {
      case ValueSource::Kind::kConstant:
        return s.constant;
      case ValueSource::Kind::kSrcColumn:
        return s.column->Get(src_row);
      case ValueSource::Kind::kDstColumn:
        return s.column->Get(dst_row);
      case ValueSource::Kind::kEdgeColumn:
        return s.column->Get(edge_row);
    }
    return PropertyValue::Null();
  };
  return [lhs, op, rhs, row_of, fetch](uint64_t row) {
    auto [src_row, dst_row, edge_row] = row_of(row);
    PropertyValue a = fetch(lhs, src_row, dst_row, edge_row);
    PropertyValue b = fetch(rhs, src_row, dst_row, edge_row);
    std::optional<int> cmp = a.Compare(b);
    return cmp.has_value() && ApplyOp(op, *cmp);
  };
}

template <typename RowMapper>
StatusOr<std::function<bool(uint64_t)>> CompileExpr(
    const ExprPtr& expr, const PropertyGraph& graph, bool allow_edge_refs,
    RowMapper row_of) {
  if (expr == nullptr) return Status::InvalidArgument("null predicate");
  switch (expr->kind) {
    case Expr::Kind::kCompare: {
      GS_ASSIGN_OR_RETURN(ValueSource lhs,
                          ResolveOperand(expr->lhs, graph, allow_edge_refs));
      GS_ASSIGN_OR_RETURN(ValueSource rhs,
                          ResolveOperand(expr->rhs, graph, allow_edge_refs));
      GS_RETURN_IF_ERROR(CheckComparable(lhs, rhs));
      return MakeComparison(lhs, expr->op, rhs, row_of);
    }
    case Expr::Kind::kNot: {
      GS_ASSIGN_OR_RETURN(auto child,
                          CompileExpr(expr->children[0], graph,
                                      allow_edge_refs, row_of));
      return std::function<bool(uint64_t)>(
          [child](uint64_t row) { return !child(row); });
    }
    case Expr::Kind::kAnd:
    case Expr::Kind::kOr: {
      std::vector<std::function<bool(uint64_t)>> children;
      children.reserve(expr->children.size());
      for (const ExprPtr& c : expr->children) {
        GS_ASSIGN_OR_RETURN(auto child,
                            CompileExpr(c, graph, allow_edge_refs, row_of));
        children.push_back(std::move(child));
      }
      bool is_and = expr->kind == Expr::Kind::kAnd;
      return std::function<bool(uint64_t)>([children, is_and](uint64_t row) {
        for (const auto& c : children) {
          if (c(row) != is_and) return !is_and;
        }
        return is_and;
      });
    }
  }
  return Status::Internal("unreachable expr kind");
}

}  // namespace

StatusOr<CompiledEdgePredicate> CompiledEdgePredicate::Compile(
    const ExprPtr& expr, const PropertyGraph& graph) {
  const PropertyGraph* g = &graph;
  auto row_of = [g](uint64_t edge) {
    const Edge& e = g->edge(edge);
    return std::make_tuple(static_cast<size_t>(e.src),
                           static_cast<size_t>(e.dst),
                           static_cast<size_t>(edge));
  };
  GS_ASSIGN_OR_RETURN(auto fn, CompileExpr(expr, graph,
                                           /*allow_edge_refs=*/true, row_of));
  return CompiledEdgePredicate(std::move(fn));
}

StatusOr<CompiledNodePredicate> CompiledNodePredicate::Compile(
    const ExprPtr& expr, const PropertyGraph& graph) {
  auto row_of = [](uint64_t node) {
    size_t row = static_cast<size_t>(node);
    return std::make_tuple(row, row, row);
  };
  GS_ASSIGN_OR_RETURN(auto fn, CompileExpr(expr, graph,
                                           /*allow_edge_refs=*/false, row_of));
  return CompiledNodePredicate(std::move(fn));
}

}  // namespace gs::gvdl
