// Batch-at-a-time GVDL predicate evaluation: a predicate expression lowers
// to a flat postfix program whose instructions operate on whole 1024-edge
// chunks of the columnar PropertyTable, producing 64-bit selection masks
// directly (bit j of output word w is edge `begin + 64w + j`). There is no
// per-edge std::function dispatch anywhere on this path — comparisons run
// through the common/simd.h kernels and boolean combinators are word-wise
// AND/OR/NOT on a small mask stack.
//
// Lowering rules (DESIGN.md "Vectorized data plane"):
//   - numeric comparisons (int/double in any combination) are evaluated in
//     the double domain, matching PropertyValue::Compare's AsNumeric rule
//     (including its NaN-compares-equal behaviour);
//   - bool comparisons widen to int64 0/1;
//   - string comparisons order big-endian 8-byte prefixes with unsigned-u64
//     kernels; prefix-tied lanes fall back to a full scalar compare;
//   - a null literal anywhere folds the comparison to constant-false, and
//     a comparison of two literals folds to a constant mask at compile time;
//   - rows where either referenced column value is null are cleared from
//     the comparison's mask (SQL-ish semantics, same as the scalar path).
#ifndef GRAPHSURGE_GVDL_BATCH_EVAL_H_
#define GRAPHSURGE_GVDL_BATCH_EVAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/simd.h"
#include "common/status.h"
#include "graph/graph.h"
#include "gvdl/ast.h"

namespace gs::gvdl {

/// Reusable per-thread buffers for BatchPredicateProgram::EvalEdges. The
/// program itself is immutable during evaluation, so one program can be
/// evaluated from many threads as long as each brings its own scratch.
struct BatchEvalScratch {
  std::vector<uint64_t> stack;
  std::vector<uint64_t> tmp, tmp2;
  std::vector<double> f64_a, f64_b;
  std::vector<int64_t> i64_a, i64_b;
  std::vector<uint64_t> u64_a, u64_b;
  std::vector<uint8_t> bytes_a, bytes_b;
};

/// An edge predicate compiled to a postfix mask program against one graph.
class BatchPredicateProgram {
 public:
  /// Edges per evaluation chunk (16 mask words). Large enough to amortize
  /// dispatch, small enough that operand gathers stay in L1.
  static constexpr size_t kChunkEdges = 1024;
  static constexpr size_t kChunkWords = kChunkEdges / 64;

  BatchPredicateProgram() = default;

  /// Resolves property references and lowers `expr`. Accepts and rejects
  /// exactly the same expressions as CompiledEdgePredicate::Compile.
  static StatusOr<BatchPredicateProgram> Compile(const ExprPtr& expr,
                                                 const PropertyGraph& graph);

  /// Refreshes row-dependent caches (string-prefix arrays). Call once after
  /// Compile and again after every graph mutation epoch, from a single
  /// thread, before any EvalEdges.
  void Prepare(const PropertyGraph& graph);

  /// Evaluates edges [begin, end); `begin` must be a multiple of 64. Writes
  /// simd::MaskWords(end - begin) words to `out`; trailing bits of the last
  /// word are zero. Tombstones are NOT considered — callers AND the result
  /// with the graph's alive-mask words.
  void EvalEdges(const PropertyGraph& graph, size_t begin, size_t end,
                 uint64_t* out, BatchEvalScratch& scratch) const;

  /// Scalar convenience for single-edge re-checks; uses a thread_local
  /// scratch internally.
  bool EvalEdge(const PropertyGraph& graph, EdgeId edge) const;

 private:
  friend class BatchEvalTestPeer;

  // Which typed kernel class a comparison runs in.
  enum class CmpKind : uint8_t { kNumeric, kBool, kString };

  // A comparison operand: a table column addressed per-edge (directly for
  // edge columns, through src/dst for node columns) or a pre-typed constant.
  struct Operand {
    enum class Kind : uint8_t { kSrc, kDst, kEdge, kConst };
    Kind kind = Kind::kConst;
    uint32_t column = 0;   // column index in the node or edge table
    int32_t prefix_cache = -1;  // index into prefix_caches_ (string columns)
    double f64 = 0;        // numeric constant
    int64_t i64 = 0;       // bool constant widened to 0/1
    uint64_t prefix = 0;   // string constant prefix
    std::string str;       // string constant full value
  };

  struct Instr {
    enum class Op : uint8_t { kCmp, kAnd, kOr, kNot, kConstTrue, kConstFalse };
    Op op = Op::kConstFalse;
    simd::Cmp cmp = simd::Cmp::kEq;
    CmpKind kind = CmpKind::kNumeric;
    bool b_is_const = false;
    Operand a, b;  // kCmp only; `a` is always a column reference
  };

  // Cached big-endian 8-byte prefixes for one string column, rebuilt by
  // Prepare (cell updates can change strings in place, so the rebuild is
  // unconditional).
  struct PrefixCache {
    bool node_table = false;
    uint32_t column = 0;
    std::vector<uint64_t> prefixes;
  };

  void EvalChunk(const PropertyGraph& graph, size_t chunk_begin, size_t n,
                 uint64_t* out, BatchEvalScratch& scratch) const;
  void EvalCmp(const Instr& instr, const PropertyGraph& graph,
               size_t chunk_begin, size_t n, uint64_t* top,
               BatchEvalScratch& scratch) const;

  std::vector<Instr> instrs_;
  std::vector<PrefixCache> prefix_caches_;
  size_t max_stack_depth_ = 1;
};

}  // namespace gs::gvdl

#endif  // GRAPHSURGE_GVDL_BATCH_EVAL_H_
