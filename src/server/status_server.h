// Embedded HTTP/1.1 status server: live introspection of a running engine
// without attaching a debugger or stopping the dataflow.
//
// Design constraints, in order:
//   1. Zero dependencies — raw POSIX sockets and poll(), nothing else. The
//      server speaks just enough HTTP/1.1 (GET, Connection: close) for curl,
//      a browser, or a Prometheus scraper.
//   2. Never perturb the computation — handlers only read snapshots that the
//      engine refreshes at its own safe points (barriers, version seals) or
//      data structures that are internally synchronized (metrics registry,
//      trace_event ring buffers, introspect registry). The accept/serve loop
//      runs on one dedicated thread; a slow client blocks other scrapes, not
//      the dataflow.
//   3. Opt-in — nothing listens unless the process sets
//      GRAPHSURGE_STATUS_PORT=<port> or calls StatusServer::Start (the api
//      layer exposes Graphsurge::StartStatusServer). Binds 127.0.0.1 only:
//      this is an operator-facing debug port, not a public service.
//
// Built-in endpoints:
//   /healthz    watchdog-evaluated health: 200 "ok\n" while no rule is
//               violated, 503 with a JSON body naming the violated rules
//               otherwise (HEAD mirrors the status code)
//   /metrics    Prometheus exposition text (metrics registry)
//   /varz       metrics registry as a JSON object
//   /timeseriez sampled metric history (common/timeseries) as JSON
//   /tracez     newest trace_event spans per thread, Chrome trace JSON
//   /statusz    every registered introspection source (running dataflows
//               publish their operator/channel/frontier snapshots here;
//               the health plane publishes rollups + sparklines)
//   /           plain-text index of the registered paths
// Additional paths (e.g. /profilez) are registered via Handle().
#ifndef GRAPHSURGE_SERVER_STATUS_SERVER_H_
#define GRAPHSURGE_SERVER_STATUS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "server/http.h"

namespace gs::server {

/// A status server bound to one port. Typically accessed through the
/// process-wide instance (StatusServer::Global()), which the api layer
/// starts; standalone instances are used by tests.
class StatusServer {
 public:
  using Handler = std::function<HttpResponse()>;

  StatusServer();
  ~StatusServer();  // calls Stop()

  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  /// Binds 127.0.0.1:`port` and starts the serve thread. `port` == 0 picks
  /// an ephemeral port (see port()). Fails if already running or the bind
  /// fails (e.g. port in use).
  Status Start(uint16_t port);

  /// Stops the serve thread and closes the listening socket. Idempotent;
  /// safe to call while a request is in flight (it finishes first).
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (resolved after Start; meaningful with port 0).
  uint16_t port() const { return port_; }

  /// Registers `handler` for GET `path` (must start with '/'). Replaces any
  /// existing handler for the same path. Safe to call while serving.
  void Handle(const std::string& path, Handler handler);

  /// Socket receive/send timeout applied to accepted connections (how long
  /// a stalled client may hold the single serve thread). Default 5000;
  /// set before Start(). Exposed so tests can exercise the timeout path
  /// without 5-second waits.
  void set_read_timeout_ms(int ms) { read_timeout_ms_ = ms; }

  /// Serves an already-accepted connection until the client closes, the
  /// exchange turns `Connection: close`, or a protocol error ends it
  /// (exposed for tests; the serve loop uses it internally). Pipelined
  /// requests on one connection are served in order.
  void ServeConnection(int fd);

  /// Routes a path to its registered handler ("/" renders the index, an
  /// unknown path a 404). Public so the query-serving front end can mount
  /// this registry's pages on its own listener.
  HttpResponse Dispatch(const std::string& path) const;

  /// The process-wide server used by GRAPHSURGE_STATUS_PORT and the api
  /// layer. Never destroyed.
  static StatusServer& Global();

  /// Starts Global() on GRAPHSURGE_STATUS_PORT if the variable is set and
  /// the server is not yet running. Returns true if the server is running
  /// on return. Logs and returns false on bind failure (an observability
  /// port must never take down the computation).
  static bool MaybeStartFromEnv();

 private:
  void ServeLoop();
  HttpResponse IndexPage() const;

  void RegisterBuiltins();

  std::atomic<bool> running_{false};
  int read_timeout_ms_ = 5000;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: Stop() wakes the poll()
  uint16_t port_ = 0;
  std::thread thread_;

  mutable std::mutex handlers_mutex_;
  std::map<std::string, Handler> handlers_;
};

}  // namespace gs::server

#endif  // GRAPHSURGE_SERVER_STATUS_SERVER_H_
