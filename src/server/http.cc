#include "server/http.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

namespace gs::server::http {

namespace {

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

ReadResult Reject(int code, const std::string& message) {
  ReadResult out;
  out.kind = ReadResult::Kind::kError;
  out.error.status_code = code;
  out.error.body = message;
  return out;
}

/// Appends more bytes from the socket. Returns false when the peer closed
/// or stalled past the socket timeout (no more bytes will come).
bool RecvMore(int fd, std::string* buffer) {
  char buf[2048];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      buffer->append(buf, static_cast<size_t>(n));
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // closed, timed out, or errored
  }
}

}  // namespace

const char* ReasonPhrase(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

std::string RenderResponse(const HttpResponse& response, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status_code) + " " +
                    ReasonPhrase(response.status_code) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                    : "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

void WriteAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // client went away; nothing useful to do
    }
    sent += static_cast<size_t>(n);
  }
}

ReadResult ReadRequest(int fd, std::string* buffer, const Limits& limits) {
  // Buffer the head. A peer that closes or stalls mid-head is handled the
  // way the status server always has: nothing at all means no request;
  // a partial head falls through to the request-line parse, which rejects
  // whatever is incomplete about it.
  bool open = true;
  while (buffer->find("\r\n\r\n") == std::string::npos &&
         buffer->size() < limits.max_head_bytes) {
    if (!RecvMore(fd, buffer)) {
      open = false;
      break;
    }
  }
  if (buffer->empty()) return ReadResult();  // kClosed

  // A head that hit the size cap without terminating is rejected outright —
  // parsing a prefix of a request line of unknown total length risks
  // dispatching a truncated target.
  size_t head_end = buffer->find("\r\n\r\n");
  if (head_end == std::string::npos &&
      buffer->size() >= limits.max_head_bytes) {
    return Reject(400, "request head too large\n");
  }

  // Request line: METHOD SP target SP version CRLF.
  size_t line_end = buffer->find("\r\n");
  if (line_end == std::string::npos) line_end = buffer->size();
  const std::string line = buffer->substr(0, line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos || sp1 == 0 ||
      sp2 == sp1 + 1) {
    return Reject(400, "malformed request line\n");
  }

  ReadResult out;
  out.kind = ReadResult::Kind::kRequest;
  Request& req = out.request;
  req.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = line.substr(sp2 + 1);
  // Handlers are parameterless views; the query string is split off and
  // retained for completeness only.
  size_t query = target.find('?');
  if (query != std::string::npos) {
    req.query = target.substr(query + 1);
    target.resize(query);
  }
  req.path = std::move(target);
  req.keep_alive = version == "HTTP/1.1";

  // Header fields (only present when the head terminated properly; a
  // partial head served at EOF has none, matching the historical
  // line-only parse).
  size_t header_bytes_end = head_end == std::string::npos
                                ? buffer->size()
                                : head_end;
  size_t pos = line_end + 2;
  while (pos < header_bytes_end) {
    size_t eol = buffer->find("\r\n", pos);
    if (eol == std::string::npos || eol > header_bytes_end) {
      eol = header_bytes_end;
    }
    const std::string field = buffer->substr(pos, eol - pos);
    pos = eol + 2;
    size_t colon = field.find(':');
    if (colon == std::string::npos) continue;  // lenient: skip junk lines
    req.headers[ToLower(field.substr(0, colon))] =
        Trim(field.substr(colon + 1));
  }

  auto connection = req.headers.find("connection");
  if (connection != req.headers.end()) {
    const std::string value = ToLower(connection->second);
    if (value.find("close") != std::string::npos) {
      req.keep_alive = false;
    } else if (value.find("keep-alive") != std::string::npos) {
      req.keep_alive = true;
    }
  }

  // Consume the head; what remains in `buffer` is body and/or pipelined
  // requests.
  buffer->erase(0, head_end == std::string::npos ? buffer->size()
                                                 : head_end + 4);

  // Body framing. We speak exactly one framing: Content-Length. A request
  // advertising a Transfer-Encoding is refused — silently ignoring it
  // would desynchronize the connection on the unread chunked body.
  if (req.headers.count("transfer-encoding") != 0) {
    return Reject(501, "transfer encoding is not supported\n");
  }
  size_t content_length = 0;
  auto cl = req.headers.find("content-length");
  if (cl != req.headers.end()) {
    const std::string& value = cl->second;
    if (value.empty()) return Reject(400, "invalid Content-Length\n");
    for (char c : value) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        return Reject(400, "invalid Content-Length\n");
      }
    }
    errno = 0;
    const unsigned long long parsed = std::strtoull(value.c_str(), nullptr, 10);
    if (errno == ERANGE || parsed > limits.max_body_bytes) {
      return Reject(413, "request body too large\n");
    }
    content_length = static_cast<size_t>(parsed);
  } else if (req.method == "POST" || req.method == "PUT") {
    return Reject(411, "Content-Length required\n");
  }

  while (buffer->size() < content_length) {
    if (!open || !RecvMore(fd, buffer)) {
      return Reject(400, "incomplete request body\n");
    }
  }
  req.body = buffer->substr(0, content_length);
  buffer->erase(0, content_length);
  return out;
}

}  // namespace gs::server::http
