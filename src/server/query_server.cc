#include "server/query_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "algorithms/algorithms.h"
#include "common/introspect.h"
#include "differential/arrcache.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "graph/csv.h"
#include "gvdl/parser.h"
#include "views/executor.h"

namespace gs::server {

namespace {

std::atomic<uint64_t> g_next_instance_id{1};

/// Cap on requests served over one keep-alive connection.
constexpr int kMaxRequestsPerConnection = 1000;

/// POST bodies are statements, not data uploads.
constexpr size_t kMaxBodyBytes = 1 << 20;

std::string ToLower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

HttpResponse JsonOk(std::string body_fields) {
  HttpResponse r;
  r.content_type = "application/json";
  r.body = "{\"ok\": true" +
           (body_fields.empty() ? std::string() : ", " + body_fields) + "}\n";
  return r;
}

HttpResponse JsonError(int code, const std::string& message) {
  HttpResponse r;
  r.status_code = code;
  r.content_type = "application/json";
  r.body =
      "{\"ok\": false, \"error\": \"" + introspect::JsonEscape(message) +
      "\"}\n";
  return r;
}

/// Minimal JSON parser for the request bodies this server accepts: one
/// flat object with string keys and string values. Anything else —
/// including structurally valid JSON using numbers, arrays, or nesting —
/// is rejected with a message naming the position, and the caller turns
/// that into a 400 with a parseable JSON error body.
bool ParseJsonStringObject(const std::string& text,
                           std::map<std::string, std::string>* out,
                           std::string* error) {
  size_t i = 0;
  auto skip_ws = [&] {
    while (i < text.size() &&
           (text[i] == ' ' || text[i] == '\t' || text[i] == '\n' ||
            text[i] == '\r')) {
      ++i;
    }
  };
  auto fail = [&](const std::string& what) {
    *error = what + " at byte " + std::to_string(i);
    return false;
  };
  auto parse_string = [&](std::string* s) {
    if (i >= text.size() || text[i] != '"') return false;
    ++i;
    while (i < text.size() && text[i] != '"') {
      char c = text[i];
      if (c == '\\') {
        if (i + 1 >= text.size()) return false;
        char e = text[i + 1];
        switch (e) {
          case '"': s->push_back('"'); break;
          case '\\': s->push_back('\\'); break;
          case '/': s->push_back('/'); break;
          case 'b': s->push_back('\b'); break;
          case 'f': s->push_back('\f'); break;
          case 'n': s->push_back('\n'); break;
          case 'r': s->push_back('\r'); break;
          case 't': s->push_back('\t'); break;
          case 'u': {
            if (i + 5 >= text.size()) return false;
            unsigned code = 0;
            for (int k = 2; k < 6; ++k) {
              char h = text[i + k];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            if (code > 0x7f) return false;  // statements are ASCII
            s->push_back(static_cast<char>(code));
            i += 4;
            break;
          }
          default: return false;
        }
        i += 2;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control characters must be escaped
      } else {
        s->push_back(c);
        ++i;
      }
    }
    if (i >= text.size()) return false;
    ++i;  // closing quote
    return true;
  };

  skip_ws();
  if (i >= text.size() || text[i] != '{') return fail("expected '{'");
  ++i;
  skip_ws();
  if (i < text.size() && text[i] == '}') {
    ++i;
  } else {
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return fail("expected string key");
      skip_ws();
      if (i >= text.size() || text[i] != ':') return fail("expected ':'");
      ++i;
      skip_ws();
      std::string value;
      if (!parse_string(&value)) return fail("expected string value");
      (*out)[key] = std::move(value);
      skip_ws();
      if (i < text.size() && text[i] == ',') {
        ++i;
        continue;
      }
      if (i < text.size() && text[i] == '}') {
        ++i;
        break;
      }
      return fail("expected ',' or '}'");
    }
  }
  skip_ws();
  if (i != text.size()) return fail("trailing content");
  return true;
}

bool ValidSessionName(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-' &&
        c != '_' && c != '.') {
      return false;
    }
  }
  return true;
}

bool ParseUint(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  errno = 0;
  *out = std::strtoull(s.c_str(), nullptr, 10);
  return errno != ERANGE;
}

std::vector<std::string> SplitTokens(const std::string& text) {
  std::vector<std::string> tokens;
  std::istringstream in(text);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t begin = 0;
  for (;;) {
    size_t end = s.find(sep, begin);
    if (end == std::string::npos) {
      parts.push_back(s.substr(begin));
      return parts;
    }
    parts.push_back(s.substr(begin, end - begin));
    begin = end + 1;
  }
}

/// Builds the computation named by `spec` ("name" or "name(args)").
StatusOr<std::unique_ptr<analytics::Computation>> MakeComputation(
    const std::string& spec) {
  std::string name = spec;
  std::string args;
  size_t paren = spec.find('(');
  if (paren != std::string::npos) {
    if (spec.back() != ')') {
      return Status::InvalidArgument("malformed algorithm spec: " + spec);
    }
    name = spec.substr(0, paren);
    args = spec.substr(paren + 1, spec.size() - paren - 2);
  }
  name = ToLower(name);
  auto need_source = [&]() -> StatusOr<uint64_t> {
    uint64_t source = 0;
    if (!ParseUint(args, &source)) {
      return Status::InvalidArgument(name + " requires a numeric source: " +
                                     spec);
    }
    return source;
  };
  std::unique_ptr<analytics::Computation> c;
  if (name == "wcc") {
    if (!args.empty()) {
      return Status::InvalidArgument("wcc takes no arguments");
    }
    c = std::make_unique<analytics::Wcc>();
  } else if (name == "scc") {
    if (!args.empty()) {
      return Status::InvalidArgument("scc takes no arguments");
    }
    c = std::make_unique<analytics::Scc>();
  } else if (name == "pagerank") {
    uint64_t iters = 10;
    if (!args.empty() && (!ParseUint(args, &iters) || iters == 0)) {
      return Status::InvalidArgument(
          "pagerank takes a positive iteration count");
    }
    c = std::make_unique<analytics::PageRank>(static_cast<uint32_t>(iters));
  } else if (name == "bfs") {
    auto source = need_source();
    GS_RETURN_IF_ERROR(source.status());
    c = std::make_unique<analytics::Bfs>(source.value());
  } else if (name == "bellman-ford" || name == "bellmanford" ||
             name == "sssp") {
    auto source = need_source();
    GS_RETURN_IF_ERROR(source.status());
    c = std::make_unique<analytics::BellmanFord>(source.value());
  } else if (name == "mpsp") {
    std::vector<std::pair<VertexId, VertexId>> pairs;
    for (const std::string& pair_spec : SplitOn(args, ',')) {
      std::vector<std::string> ends = SplitOn(pair_spec, ':');
      uint64_t src = 0;
      uint64_t dst = 0;
      if (ends.size() != 2 || !ParseUint(ends[0], &src) ||
          !ParseUint(ends[1], &dst)) {
        return Status::InvalidArgument(
            "mpsp takes src:dst pairs, e.g. mpsp(0:5,2:7)");
      }
      pairs.emplace_back(src, dst);
    }
    if (pairs.empty()) {
      return Status::InvalidArgument("mpsp requires at least one src:dst");
    }
    c = std::make_unique<analytics::Mpsp>(std::move(pairs));
  } else {
    return Status::InvalidArgument(
        "unknown algorithm '" + name +
        "' (expected wcc, scc, pagerank, bfs, bellman-ford, or mpsp)");
  }
  return c;
}

metrics::Counter* Requests() {
  static auto* c =
      metrics::Registry::Global().GetCounter("gs_query_server_requests");
  return c;
}
metrics::Counter* Statements() {
  static auto* c =
      metrics::Registry::Global().GetCounter("gs_query_server_statements");
  return c;
}
metrics::Counter* RejectedQueueFull() {
  static auto* c = metrics::Registry::Global().GetCounter(
      "gs_query_server_rejected_queue_full");
  return c;
}
metrics::Counter* RejectedSessionCap() {
  static auto* c = metrics::Registry::Global().GetCounter(
      "gs_query_server_rejected_session_cap");
  return c;
}
metrics::Gauge* SessionsGauge() {
  static auto* g =
      metrics::Registry::Global().GetGauge("gs_query_server_sessions");
  return g;
}

}  // namespace

QueryServer::QueryServer(QueryServerOptions options)
    : options_(options),
      instance_id_(g_next_instance_id.fetch_add(1)) {
  status_pages_.Handle("/sessionz", [this] {
    HttpResponse r;
    r.content_type = "application/json";
    r.body = SessionzJson();
    return r;
  });
}

QueryServer::~QueryServer() {
  Stop();
  differential::ArrangementCache::Global().InvalidateScopePrefix(
      "qs" + std::to_string(instance_id_) + "/");
}

Status QueryServer::Start(uint16_t port) {
  if (running()) return Status::InvalidArgument("query server already running");

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Internal("bind(127.0.0.1:" + std::to_string(port) +
                            ") failed: " + std::strerror(errno));
  }
  if (::listen(fd, static_cast<int>(options_.max_queue)) != 0) {
    ::close(fd);
    return Status::Internal("listen() failed");
  }
  sockaddr_in bound = {};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    ::close(fd);
    return Status::Internal("getsockname() failed");
  }
  if (::pipe(wake_pipe_) != 0) {
    ::close(fd);
    return Status::Internal("pipe() failed");
  }

  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(options_.num_threads);
  for (size_t i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  GS_LOG(Info) << "query server listening on http://127.0.0.1:" << port_;
  return Status::Ok();
}

void QueryServer::Stop() {
  if (!running_.exchange(false)) return;
  char byte = 'q';
  ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
  (void)ignored;
  if (accept_thread_.joinable()) accept_thread_.join();
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (int fd : queue_) ::close(fd);
    queue_.clear();
  }
  ::close(listen_fd_);
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  listen_fd_ = -1;
  wake_pipe_[0] = wake_pipe_[1] = -1;
}

void QueryServer::AcceptLoop() {
  // Rendered once: the rejection sent when the connection queue is full.
  const std::string overload_wire = http::RenderResponse(
      JsonError(503, "server overloaded: connection queue is full"),
      /*keep_alive=*/false);
  while (running()) {
    pollfd fds[2] = {};
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (!running()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    timeval timeout = {};
    timeout.tv_sec = options_.read_timeout_ms / 1000;
    timeout.tv_usec = (options_.read_timeout_ms % 1000) * 1000;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (queue_.size() < options_.max_queue) {
        queue_.push_back(client);
        queue_cv_.notify_one();
        continue;
      }
    }
    // Queue full: shed load with an immediate, deterministic 503 rather
    // than queueing unbounded latency. Sent from the accept thread; the
    // send timeout bounds how long a pathological client can stall it.
    RejectedQueueFull()->Increment();
    http::WriteAll(client, overload_wire);
    ::close(client);
  }
}

void QueryServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return !queue_.empty() || !running(); });
      if (queue_.empty()) return;  // shutting down
      fd = queue_.front();
      queue_.pop_front();
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void QueryServer::ServeConnection(int fd) {
  std::string buffer;
  http::Limits limits;
  limits.max_body_bytes = kMaxBodyBytes;
  for (int served = 0; served < kMaxRequestsPerConnection; ++served) {
    http::ReadResult in = http::ReadRequest(fd, &buffer, limits);
    if (in.kind == http::ReadResult::Kind::kClosed) return;
    if (in.kind == http::ReadResult::Kind::kError) {
      http::WriteAll(fd, http::RenderResponse(in.error, /*keep_alive=*/false));
      return;
    }
    const http::Request& request = in.request;
    HttpResponse response = Route(request);
    const bool keep_alive =
        request.keep_alive && served + 1 < kMaxRequestsPerConnection;
    std::string wire = http::RenderResponse(response, keep_alive);
    if (request.method == "HEAD") wire.resize(wire.find("\r\n\r\n") + 4);
    http::WriteAll(fd, wire);
    if (!keep_alive) return;
  }
}

HttpResponse QueryServer::Route(const http::Request& request) {
  Requests()->Increment();
  if (request.method == "GET" || request.method == "HEAD") {
    return status_pages_.Dispatch(request.path);
  }
  if (request.method == "POST") {
    if (request.path == "/query") return HandleQuery(request);
    if (request.path == "/session") return HandleSessionOpen(request);
    if (request.path == "/session/close") return HandleSessionClose(request);
    return JsonError(404, "no POST handler for " + request.path);
  }
  HttpResponse r;
  r.status_code = 405;
  r.body = "only GET and POST are supported\n";
  return r;
}

std::shared_ptr<QueryServer::Session> QueryServer::AdmitSession(
    const std::string& name, HttpResponse* error) {
  if (!ValidSessionName(name)) {
    *error = JsonError(
        400, "invalid session name (alphanumeric, '-', '_', '.'; max 128)");
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  auto it = sessions_.find(name);
  if (it != sessions_.end()) return it->second;
  if (sessions_.size() >= options_.max_sessions) {
    RejectedSessionCap()->Increment();
    *error = JsonError(503, "session limit reached (" +
                                std::to_string(options_.max_sessions) + ")");
    return nullptr;
  }
  auto session = std::make_shared<Session>();
  sessions_[name] = session;
  SessionsGauge()->Set(static_cast<int64_t>(sessions_.size()));
  return session;
}

HttpResponse QueryServer::HandleSessionOpen(const http::Request& request) {
  std::map<std::string, std::string> fields;
  std::string parse_error;
  if (!ParseJsonStringObject(request.body, &fields, &parse_error)) {
    return JsonError(400, "malformed JSON: " + parse_error);
  }
  auto it = fields.find("session");
  if (it == fields.end()) {
    return JsonError(400, "missing field \"session\"");
  }
  HttpResponse error;
  if (AdmitSession(it->second, &error) == nullptr) return error;
  return JsonOk("\"session\": \"" + introspect::JsonEscape(it->second) +
                "\"");
}

HttpResponse QueryServer::HandleSessionClose(const http::Request& request) {
  std::map<std::string, std::string> fields;
  std::string parse_error;
  if (!ParseJsonStringObject(request.body, &fields, &parse_error)) {
    return JsonError(400, "malformed JSON: " + parse_error);
  }
  auto it = fields.find("session");
  if (it == fields.end()) {
    return JsonError(400, "missing field \"session\"");
  }
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    auto found = sessions_.find(it->second);
    if (found == sessions_.end()) {
      return JsonError(404, "no session named '" + it->second + "'");
    }
    session = std::move(found->second);
    sessions_.erase(found);
    SessionsGauge()->Set(static_cast<int64_t>(sessions_.size()));
  }
  // Serialize with any in-flight statement so its state is not destroyed
  // under it; the shared_ptr keeps the storage alive either way.
  std::lock_guard<std::mutex> lock(session->mutex);
  return JsonOk("\"closed\": \"" + introspect::JsonEscape(it->second) + "\"");
}

HttpResponse QueryServer::HandleQuery(const http::Request& request) {
  std::map<std::string, std::string> fields;
  std::string parse_error;
  if (!ParseJsonStringObject(request.body, &fields, &parse_error)) {
    return JsonError(400, "malformed JSON: " + parse_error);
  }
  auto session_field = fields.find("session");
  auto statement_field = fields.find("statement");
  if (session_field == fields.end() || statement_field == fields.end()) {
    return JsonError(400, "required fields: \"session\", \"statement\"");
  }
  HttpResponse error;
  std::shared_ptr<Session> session =
      AdmitSession(session_field->second, &error);
  if (session == nullptr) return error;
  Statements()->Increment();
  std::lock_guard<std::mutex> lock(session->mutex);
  return ExecuteStatement(session.get(), statement_field->second);
}

HttpResponse QueryServer::ExecuteStatement(Session* session,
                                           const std::string& text) {
  std::vector<std::string> tokens = SplitTokens(text);
  if (tokens.empty()) return JsonError(400, "empty statement");
  const std::string head = ToLower(tokens[0]);
  if (head == "create") return ExecuteGvdl(session, text);
  if (head == "run") return ExecuteRun(session, text);
  if (head == "get" && tokens.size() >= 2 &&
      ToLower(tokens[1]) == "results") {
    return RenderResults(session);
  }
  return JsonError(400,
                   "unrecognized statement (expected CREATE VIEW "
                   "[COLLECTION], RUN <algorithm> ON <target>, or GET "
                   "RESULTS): " +
                       text);
}

HttpResponse QueryServer::ExecuteGvdl(Session* session,
                                      const std::string& text) {
  auto parsed = gvdl::ParseScript(text);
  if (!parsed.ok()) {
    return JsonError(400, "GVDL parse error: " + parsed.status().ToString());
  }
  std::vector<std::string> created;
  for (const gvdl::Statement& statement : parsed.value()) {
    // Resolve the `on` graph: the session's filtered views shadow host
    // graphs, mirroring the embedded API's single namespace.
    auto resolve = [&](const std::string& name) -> const PropertyGraph* {
      auto view = session->filtered_views.find(name);
      if (view != session->filtered_views.end()) return &view->second;
      std::lock_guard<std::mutex> lock(graphs_mutex_);
      auto graph = graphs_.find(name);
      return graph == graphs_.end() ? nullptr : &graph->second;
    };
    auto name_taken = [&](const std::string& name) {
      if (session->collections.count(name) != 0 ||
          session->filtered_views.count(name) != 0) {
        return true;
      }
      std::lock_guard<std::mutex> lock(graphs_mutex_);
      return graphs_.count(name) != 0;
    };
    if (const auto* def = std::get_if<gvdl::ViewCollectionDef>(&statement)) {
      if (name_taken(def->name)) {
        return JsonError(400, "name already in use: " + def->name);
      }
      const PropertyGraph* graph = resolve(def->on);
      if (graph == nullptr) {
        return JsonError(400, "unknown graph or view: " + def->on);
      }
      views::MaterializeOptions mopts;
      mopts.use_ordering = options_.order_collections;
      auto mc = views::MaterializeCollection(*graph, *def, mopts);
      if (!mc.ok()) {
        return JsonError(400, "materialization failed: " +
                                  mc.status().ToString());
      }
      session->collections[def->name] = std::move(mc).value();
      created.push_back(def->name);
    } else if (const auto* def =
                   std::get_if<gvdl::FilteredViewDef>(&statement)) {
      if (name_taken(def->name)) {
        return JsonError(400, "name already in use: " + def->name);
      }
      const PropertyGraph* graph = resolve(def->on);
      if (graph == nullptr) {
        return JsonError(400, "unknown graph or view: " + def->on);
      }
      auto view =
          views::MaterializeFilteredView(*graph, def->predicate, nullptr);
      if (!view.ok()) {
        return JsonError(400, "materialization failed: " +
                                  view.status().ToString());
      }
      session->filtered_views[def->name] = std::move(view).value();
      created.push_back(def->name);
    } else if (std::get_if<gvdl::AggregateViewDef>(&statement) != nullptr) {
      return JsonError(400,
                       "aggregate views are not served over HTTP; use the "
                       "embedded api::Graphsurge");
    } else {
      return JsonError(
          400, "explain is not served over HTTP; use the embedded API");
    }
  }
  std::string names;
  for (size_t i = 0; i < created.size(); ++i) {
    if (i != 0) names += ", ";
    names += "\"" + introspect::JsonEscape(created[i]) + "\"";
  }
  return JsonOk("\"created\": [" + names + "]");
}

HttpResponse QueryServer::ExecuteRun(Session* session,
                                     const std::string& text) {
  // run <algorithm> on <target> [weight <column>] — the algorithm spec may
  // contain spaces inside its parentheses ("mpsp(0:5, 2:7)"), so tokens up
  // to the ON keyword are joined with whitespace removed.
  std::vector<std::string> tokens = SplitTokens(text);
  size_t on_index = 0;
  for (size_t i = 1; i < tokens.size(); ++i) {
    if (ToLower(tokens[i]) == "on") {
      on_index = i;
      break;
    }
  }
  if (on_index < 2 || on_index + 1 >= tokens.size()) {
    return JsonError(
        400, "expected: run <algorithm> on <target> [weight <column>]");
  }
  std::string spec;
  for (size_t i = 1; i < on_index; ++i) spec += tokens[i];
  const std::string target = tokens[on_index + 1];
  int weight_column = -1;
  if (on_index + 2 < tokens.size()) {
    if (ToLower(tokens[on_index + 2]) != "weight" ||
        on_index + 3 >= tokens.size()) {
      return JsonError(400, "trailing tokens; expected: weight <column>");
    }
    uint64_t column = 0;
    if (!ParseUint(tokens[on_index + 3], &column)) {
      return JsonError(400, "weight column must be a number");
    }
    weight_column = static_cast<int>(column);
    if (on_index + 4 < tokens.size()) {
      return JsonError(400, "trailing tokens after weight column");
    }
  }

  auto computation = MakeComputation(spec);
  if (!computation.ok()) {
    return JsonError(400, computation.status().ToString());
  }

  views::ExecutionOptions options;
  options.weight_column = weight_column;
  options.dataflow.num_workers = options_.num_workers;
  options.capture_results = true;

  session->last_target.clear();
  session->last_results.clear();

  // Target resolution: session collection → session filtered view → host
  // graph. Only host graphs route through the arrangement cache — they are
  // the shared substrate; session-local views are private by construction.
  auto collection = session->collections.find(target);
  if (collection != session->collections.end()) {
    const views::MaterializedCollection& mc = collection->second;
    const PropertyGraph* base = nullptr;
    auto view = session->filtered_views.find(mc.base_graph);
    if (view != session->filtered_views.end()) {
      base = &view->second;
    } else {
      std::lock_guard<std::mutex> lock(graphs_mutex_);
      auto graph = graphs_.find(mc.base_graph);
      if (graph != graphs_.end()) base = &graph->second;
    }
    if (base == nullptr) {
      return JsonError(400, "collection base graph vanished: " +
                                mc.base_graph);
    }
    auto result =
        views::RunOnCollection(*computation.value(), *base, mc, options);
    if (!result.ok()) {
      return JsonError(500, "execution failed: " +
                                result.status().ToString());
    }
    session->last_target = target;
    for (size_t t = 0; t < mc.num_views(); ++t) {
      session->last_results.emplace_back(
          mc.view_names[t], t < result.value().results.size()
                                ? std::move(result.value().results[t])
                                : analytics::ResultMap());
    }
    return JsonOk("\"algorithm\": \"" +
                  introspect::JsonEscape(computation.value()->name()) +
                  "\", \"target\": \"" + introspect::JsonEscape(target) +
                  "\", \"views\": " + std::to_string(mc.num_views()));
  }

  const PropertyGraph* graph = nullptr;
  bool host_graph = false;
  auto view = session->filtered_views.find(target);
  if (view != session->filtered_views.end()) {
    graph = &view->second;
  } else {
    std::lock_guard<std::mutex> lock(graphs_mutex_);
    auto found = graphs_.find(target);
    if (found != graphs_.end()) {
      graph = &found->second;
      host_graph = true;
    }
  }
  if (graph == nullptr) {
    return JsonError(400, "unknown target '" + target +
                              "' (not a collection, view, or graph)");
  }
  if (host_graph) {
    options.arrangement_cache_scope = ArrangementCacheScope(target);
  }
  auto result = views::RunOnGraph(*computation.value(), *graph, options);
  if (!result.ok()) {
    return JsonError(500,
                     "execution failed: " + result.status().ToString());
  }
  session->last_target = target;
  session->last_results.emplace_back(target, std::move(result).value());
  return JsonOk("\"algorithm\": \"" +
                introspect::JsonEscape(computation.value()->name()) +
                "\", \"target\": \"" + introspect::JsonEscape(target) +
                "\", \"views\": 1");
}

HttpResponse QueryServer::RenderResults(Session* session) const {
  // Deterministic rendering: view order is execution order, vertex order
  // is ResultMap (std::map) order — two sessions that ran the same
  // statement read byte-identical bodies.
  std::string body = "{\"ok\": true, \"target\": \"" +
                     introspect::JsonEscape(session->last_target) +
                     "\", \"results\": [";
  for (size_t t = 0; t < session->last_results.size(); ++t) {
    const auto& [view, values] = session->last_results[t];
    if (t != 0) body += ", ";
    body += "{\"view\": \"" + introspect::JsonEscape(view) +
            "\", \"values\": {";
    bool first = true;
    for (const auto& [vertex, value] : values) {
      if (!first) body += ", ";
      first = false;
      body += "\"" + std::to_string(vertex) + "\": " + std::to_string(value);
    }
    body += "}}";
  }
  body += "]}\n";
  HttpResponse r;
  r.content_type = "application/json";
  r.body = std::move(body);
  return r;
}

Status QueryServer::AddGraph(const std::string& name, PropertyGraph graph) {
  if (name.empty()) return Status::InvalidArgument("graph name is empty");
  std::lock_guard<std::mutex> lock(graphs_mutex_);
  if (graphs_.count(name) != 0) {
    return Status::InvalidArgument("graph already exists: " + name);
  }
  graphs_.emplace(name, std::move(graph));
  return Status::Ok();
}

Status QueryServer::LoadGraphCsv(const std::string& name,
                                 const std::string& nodes_path,
                                 const std::string& edges_path) {
  auto graph = LoadGraphFromCsv(nodes_path, edges_path);
  GS_RETURN_IF_ERROR(graph.status());
  return AddGraph(name, std::move(graph).value());
}

std::string QueryServer::ArrangementCacheScope(
    const std::string& graph_name) const {
  {
    std::lock_guard<std::mutex> lock(graphs_mutex_);
    if (graphs_.count(graph_name) == 0) return std::string();
  }
  // Host graphs are immutable, so the epoch component is always 0; the
  // instance id keeps same-named graphs in other servers (or in
  // api::Graphsurge instances, which use the "gs" prefix) from aliasing.
  return "qs" + std::to_string(instance_id_) + "/" + graph_name + "@0";
}

size_t QueryServer::num_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  return sessions_.size();
}

std::string QueryServer::SessionzJson() const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  std::string s = "{\"max_sessions\": " +
                  std::to_string(options_.max_sessions) +
                  ", \"sessions\": [";
  bool first = true;
  for (const auto& [name, session] : sessions_) {
    if (!first) s += ", ";
    first = false;
    s += "{\"name\": \"" + introspect::JsonEscape(name) + "\"}";
  }
  s += "]}\n";
  return s;
}

}  // namespace gs::server
