// The query-serving front end: GVDL statements and analytics requests over
// HTTP/JSON, executed against a process-hosted graph store on a
// cooperative worker pool.
//
// Protocol (all bodies JSON objects with string values):
//   POST /session        {"session": "alice"}
//       Creates a session (admission-controlled: past the session cap the
//       answer is a deterministic 503). Sessions are also created lazily by
//       the first /query that names them.
//   POST /session/close  {"session": "alice"}
//       Tears the session down; its collections, views, and results vanish.
//   POST /query          {"session": "alice", "statement": "..."}
//       Executes one statement in the session:
//         create view collection C on G [v1: p1], [v2: p2], ...
//         create view V on G edges where <pred>
//             GVDL, parsed by gvdl::ParseScript. Collections and filtered
//             views land in the session's private namespace; `on` resolves
//             session names first, then host graphs. Aggregate views and
//             explain are politely refused — they are embedded-API
//             features.
//         run <algorithm> on <target> [weight <column>]
//             <algorithm> is wcc | scc | pagerank[(iters)] | bfs(src) |
//             bellman-ford(src) | mpsp(s:d[,s:d...]). <target> is a
//             session collection (differential execution over all views),
//             a session filtered view, or a host graph. Runs on a host
//             graph go through the process-level arrangement cache
//             (differential/arrcache.h), so concurrent sessions running on
//             the same graph build the adjacency arrangements once.
//         get results
//             The per-view results of the session's last run, rendered
//             deterministically (std::map order) — two sessions that ran
//             the same statement read byte-identical bodies.
//   GET <path>
//       Every status-server page (/metrics, /varz, /statusz, /healthz,
//       ...) plus /sessionz (this server's session table), served from the
//       same listener so one scrape target covers serving and engine
//       state.
//
// Concurrency model: one accept thread hands connections to a bounded
// queue drained by `num_threads` workers; a full queue answers 503
// immediately rather than letting latency grow unbounded. Statements
// within a session serialize on the session's mutex; distinct sessions
// execute in parallel. Host graphs are immutable once added, so analytics
// reads need no graph lock.
#ifndef GRAPHSURGE_SERVER_QUERY_SERVER_H_
#define GRAPHSURGE_SERVER_QUERY_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "algorithms/reference.h"
#include "common/status.h"
#include "graph/graph.h"
#include "server/status_server.h"
#include "views/collection.h"

namespace gs::server {

struct QueryServerOptions {
  /// Request-serving worker threads (each runs whole statements, including
  /// analytics, so this bounds concurrent dataflow runs).
  size_t num_threads = 4;
  /// Admission control: sessions beyond this answer 503.
  size_t max_sessions = 16;
  /// Bounded accepted-connection queue; a connection arriving while the
  /// queue is full is answered 503 and closed by the accept thread.
  size_t max_queue = 64;
  /// Socket receive/send timeout for accepted connections.
  int read_timeout_ms = 5000;
  /// Dataflow worker shards per analytics run.
  size_t num_workers = 1;
  /// Run the collection ordering optimizer when materializing collections.
  bool order_collections = false;
};

class QueryServer {
 public:
  explicit QueryServer(QueryServerOptions options = QueryServerOptions());
  ~QueryServer();  // calls Stop()

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port; see port()) and
  /// starts the accept thread plus the worker pool.
  Status Start(uint16_t port);

  /// Stops accepting, drains the connection queue, and joins all threads.
  /// Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return port_; }

  // --- Host graph store ----------------------------------------------------
  // Shared across sessions, read-only to them. Graphs are immutable once
  // added; there is deliberately no mutation path through the server.
  Status AddGraph(const std::string& name, PropertyGraph graph);
  Status LoadGraphCsv(const std::string& name, const std::string& nodes_path,
                      const std::string& edges_path);

  /// The arrangement-cache scope `run ... on <graph_name>` uses:
  /// "qs<instance>/<graph>@0". Exposed so tests can interrogate
  /// differential::ArrangementCache::Stats for exactly this server's
  /// entries. Empty when the graph does not exist.
  std::string ArrangementCacheScope(const std::string& graph_name) const;

  /// Serves one already-accepted connection to completion (exposed for
  /// protocol-conformance tests; the worker pool uses it internally).
  void ServeConnection(int fd);

  size_t num_sessions() const;

 private:
  struct Session {
    std::mutex mutex;
    std::map<std::string, views::MaterializedCollection> collections;
    std::map<std::string, PropertyGraph> filtered_views;
    std::string last_target;
    /// (view name, vertex→value) per view of the last run, in execution
    /// order.
    std::vector<std::pair<std::string, analytics::ResultMap>> last_results;
  };

  void AcceptLoop();
  void WorkerLoop();

  HttpResponse Route(const http::Request& request);
  HttpResponse HandleSessionOpen(const http::Request& request);
  HttpResponse HandleSessionClose(const http::Request& request);
  HttpResponse HandleQuery(const http::Request& request);

  /// Executes one statement against `session` (its mutex held by the
  /// caller). Returns the JSON response.
  HttpResponse ExecuteStatement(Session* session, const std::string& text);
  HttpResponse ExecuteGvdl(Session* session, const std::string& text);
  HttpResponse ExecuteRun(Session* session, const std::string& text);
  HttpResponse RenderResults(Session* session) const;

  /// Finds-or-creates the named session under admission control. Returns
  /// nullptr (and fills `error`) when the cap is hit.
  std::shared_ptr<Session> AdmitSession(const std::string& name,
                                        HttpResponse* error);

  std::string SessionzJson() const;

  const QueryServerOptions options_;
  /// Process-unique instance number prefixing this server's
  /// arrangement-cache scopes.
  const uint64_t instance_id_;

  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  /// Bounded queue of accepted connections awaiting a worker.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> queue_;

  mutable std::mutex graphs_mutex_;
  std::map<std::string, PropertyGraph> graphs_;

  mutable std::mutex sessions_mutex_;
  std::map<std::string, std::shared_ptr<Session>> sessions_;

  /// GET pages: the full status-server registry (never Start()ed — only
  /// its handler table is used) plus /sessionz.
  StatusServer status_pages_;
};

}  // namespace gs::server

#endif  // GRAPHSURGE_SERVER_QUERY_SERVER_H_
