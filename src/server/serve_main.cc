// graphsurge_serve: stand-alone query-serving front end.
//
//   graphsurge_serve --port 8080 --graph Calls=nodes.csv,edges.csv
//   graphsurge_serve --port 8080 --generate G=2000x8000x7
//
// Loads the named graphs into the host store, starts the HTTP front end,
// prints the bound port, and serves until SIGINT/SIGTERM. The same
// listener answers analytics (POST /query) and every status page
// (/metrics, /statusz, ...) — see server/query_server.h for the protocol.
#include <csignal>
#include <cstdio>
#include <ctime>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "graph/generators.h"
#include "server/query_server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port N] [--threads N] [--workers N] [--max-sessions N]\n"
      "          [--graph NAME=nodes.csv,edges.csv]...\n"
      "          [--generate NAME=NODESxEDGESxSEED]...\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  uint16_t port = 8080;
  gs::server::QueryServerOptions options;
  struct CsvSpec {
    std::string name, nodes, edges;
  };
  struct GenSpec {
    std::string name;
    size_t nodes = 0, edges = 0;
    unsigned long seed = 0;  // NOLINT: matches the %lu scan below
  };
  std::vector<CsvSpec> csv_graphs;
  std::vector<GenSpec> generated;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--port") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      port = static_cast<uint16_t>(std::atoi(v));
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.num_threads = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.num_workers = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--max-sessions") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.max_sessions = static_cast<size_t>(std::atoi(v));
    } else if (arg == "--graph") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      const std::string spec = v;
      size_t eq = spec.find('=');
      size_t comma = spec.find(',', eq == std::string::npos ? 0 : eq);
      if (eq == std::string::npos || comma == std::string::npos) {
        return Usage(argv[0]);
      }
      csv_graphs.push_back({spec.substr(0, eq),
                            spec.substr(eq + 1, comma - eq - 1),
                            spec.substr(comma + 1)});
    } else if (arg == "--generate") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      const std::string spec = v;
      size_t eq = spec.find('=');
      if (eq == std::string::npos) return Usage(argv[0]);
      GenSpec gen;
      gen.name = spec.substr(0, eq);
      if (std::sscanf(spec.c_str() + eq + 1, "%zux%zux%lu", &gen.nodes,
                      &gen.edges, &gen.seed) != 3) {
        return Usage(argv[0]);
      }
      generated.push_back(gen);
    } else {
      return Usage(argv[0]);
    }
  }

  gs::server::QueryServer server(options);
  for (const CsvSpec& spec : csv_graphs) {
    gs::Status s = server.LoadGraphCsv(spec.name, spec.nodes, spec.edges);
    if (!s.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", spec.name.c_str(),
                   s.ToString().c_str());
      return 1;
    }
  }
  for (const GenSpec& spec : generated) {
    gs::Status s = server.AddGraph(
        spec.name, gs::GenerateUniformGraph(spec.nodes, spec.edges,
                                            spec.seed));
    if (!s.ok()) {
      std::fprintf(stderr, "failed to generate %s: %s\n", spec.name.c_str(),
                   s.ToString().c_str());
      return 1;
    }
  }

  gs::Status s = server.Start(port);
  if (!s.ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  // Machine-readable first line: CI smoke scripts parse the bound port.
  std::printf("listening on http://127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  server.Stop();
  return 0;
}
