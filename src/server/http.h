// Dependency-free HTTP/1.1 plumbing shared by the status server and the
// query-serving front end: request parsing (GET/HEAD/POST with
// Content-Length bodies, keep-alive and pipelining, strict rejection of
// what we do not speak) and response rendering over raw POSIX sockets.
//
// The protocol subset is deliberate:
//   - Bodies require Content-Length. POST without one is 411; a body larger
//     than the configured cap is 413 without reading it.
//   - Transfer-Encoding (chunked or otherwise) is rejected with 501 —
//     ignoring it and misreading the framing would be worse than refusing.
//   - Every parse error produces a complete HTTP error response the caller
//     writes before closing; the connection never continues past an error,
//     because framing is unreliable from that point on.
//   - Keep-alive follows HTTP/1.1 defaults (persistent unless the client
//     says `Connection: close`), and `buffer` carries bytes past the
//     current request so pipelined requests parse without extra reads.
#ifndef GRAPHSURGE_SERVER_HTTP_H_
#define GRAPHSURGE_SERVER_HTTP_H_

#include <cstddef>
#include <map>
#include <string>

namespace gs::server {

/// What a handler returns: the response body plus its media type.
struct HttpResponse {
  std::string body;
  std::string content_type = "text/plain; charset=utf-8";
  int status_code = 200;
};

namespace http {

struct Limits {
  /// Upper bound on the buffered request head (request line + headers).
  size_t max_head_bytes = 8192;
  /// Upper bound on an accepted Content-Length. Requests declaring more
  /// are rejected with 413 before any body byte is read.
  size_t max_body_bytes = 1 << 20;
};

/// One parsed request.
struct Request {
  std::string method;
  std::string path;   // request target with the query string stripped
  std::string query;  // the stripped query string (without '?'), if any
  /// Header fields, names lowercased, values trimmed of outer whitespace.
  std::map<std::string, std::string> headers;
  std::string body;
  /// Whether the connection may carry another request after this exchange
  /// (HTTP/1.1 default, overridden by `Connection: close`).
  bool keep_alive = false;
};

/// Outcome of reading one request off a connection.
struct ReadResult {
  enum class Kind {
    kRequest,  // `request` is valid
    kClosed,   // peer closed (or stalled) without sending a request
    kError     // protocol violation; `error` is the response to send,
               // after which the connection must be closed
  };
  Kind kind = Kind::kClosed;
  Request request;
  HttpResponse error;
};

/// Reads one request from `fd` (blocking, honoring any SO_RCVTIMEO set by
/// the caller). `buffer` holds bytes received beyond previous requests and
/// returns with any bytes past this one — pass the same string across
/// calls on a connection to support pipelining.
ReadResult ReadRequest(int fd, std::string* buffer,
                       const Limits& limits = Limits());

const char* ReasonPhrase(int code);

/// Renders status line + headers + body. `keep_alive` selects the
/// advertised `Connection:` disposition; the caller must actually close
/// the socket when it advertises close.
std::string RenderResponse(const HttpResponse& response, bool keep_alive);

/// Sends all of `data`, retrying short writes; gives up silently if the
/// peer goes away (there is nobody left to tell).
void WriteAll(int fd, const std::string& data);

}  // namespace http
}  // namespace gs::server

#endif  // GRAPHSURGE_SERVER_HTTP_H_
