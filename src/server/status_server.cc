#include "server/status_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "common/critical_path.h"
#include "common/introspect.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/sched_profile.h"
#include "common/timeseries.h"
#include "common/trace_event.h"
#include "common/watchdog.h"

namespace gs::server {

namespace {

/// Newest spans per thread served by /tracez. Small enough to render in a
/// few milliseconds while a run is recording; Perfetto handles the rest.
constexpr size_t kTracezEventsPerThread = 256;

/// Cap on requests served over one keep-alive connection before the server
/// closes it — a backstop against a client holding the single serve thread
/// forever.
constexpr int kMaxRequestsPerConnection = 100;

}  // namespace

StatusServer::StatusServer() { RegisterBuiltins(); }

StatusServer::~StatusServer() { Stop(); }

void StatusServer::RegisterBuiltins() {
  Handle("/healthz", [] {
    // Rule-evaluated liveness: healthy (including "watchdog not running")
    // keeps the plain 200 "ok\n" contract; any violated watchdog rule turns
    // it into a 503 whose JSON body names the rules, so a supervisor can
    // alert on — or restart — a process that is alive but wedged.
    HttpResponse r;
    watchdog::HealthSnapshot health = watchdog::Watchdog::Global().Health();
    if (health.healthy) {
      r.body = "ok\n";
      return r;
    }
    r.status_code = 503;
    r.content_type = "application/json";
    r.body = watchdog::Watchdog::Global().RenderHealthJson();
    return r;
  });
  Handle("/metrics", [] {
    HttpResponse r;
    r.body = metrics::Registry::Global().ExpositionText();
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    return r;
  });
  Handle("/varz", [] {
    HttpResponse r;
    r.body = metrics::Registry::Global().JsonSnapshot();
    r.content_type = "application/json";
    return r;
  });
  Handle("/timeseriez", [] {
    HttpResponse r;
    r.body = timeseries::Store::Global().ToJson();
    r.content_type = "application/json";
    return r;
  });
  Handle("/tracez", [] {
    HttpResponse r;
    r.body = trace::ToJsonTail(kTracezEventsPerThread);
    r.content_type = "application/json";
    return r;
  });
  Handle("/workersz", [] {
    // The scheduling report: per-worker time attribution (busy / exchange /
    // barrier / seal / idle), per-shard skew, recent-version breakdowns,
    // and skew sparklines — one row per live sharded dataflow.
    HttpResponse r;
    r.body = sched::ProfileRegistry::Global().RenderAllJson();
    r.content_type = "application/json";
    return r;
  });
  // The critical-path report rides along /statusz as an introspect source
  // (it renders {"enabled": false} until tracing is turned on).
  critical_path::RegisterStatuszSource();
  Handle("/statusz", [] {
    HttpResponse r;
    std::string body = "{\n";
    // Operability warnings that must not be buried inside a source blob.
    // Today's only rule: the time-series store silently dropping new series
    // means sparklines/SLO history are incomplete — surface it loudly.
    const int64_t dropped_series =
        metrics::Registry::Global()
            .GetGauge("gs_timeseries_dropped_series")
            ->Value();
    if (dropped_series > 0) {
      body += "  \"warnings\": [\"timeseries store dropped " +
              std::to_string(dropped_series) +
              " series (capacity reached); sparklines and SLO history are "
              "incomplete — reduce series cardinality\"],\n";
    }
    body += "  \"sources\": {";
    std::vector<introspect::Rendered> sources =
        introspect::Registry::Global().Collect();
    for (size_t i = 0; i < sources.size(); ++i) {
      if (i) body += ",";
      body += "\n    \"" + introspect::JsonEscape(sources[i].name) +
              "\": " + sources[i].json;
    }
    body += "\n  }\n}\n";
    r.body = body;
    r.content_type = "application/json";
    return r;
  });
}

HttpResponse StatusServer::IndexPage() const {
  HttpResponse r;
  r.body = "graphsurge status server\n\nendpoints:\n";
  std::lock_guard<std::mutex> lock(handlers_mutex_);
  for (const auto& [path, handler] : handlers_) {
    r.body += "  " + path + "\n";
  }
  return r;
}

void StatusServer::Handle(const std::string& path, Handler handler) {
  std::lock_guard<std::mutex> lock(handlers_mutex_);
  handlers_[path] = std::move(handler);
}

Status StatusServer::Start(uint16_t port) {
  if (running()) return Status::InvalidArgument("status server already running");

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Internal("bind(127.0.0.1:" + std::to_string(port) +
                            ") failed: " + std::strerror(errno));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::Internal("listen() failed");
  }
  sockaddr_in bound = {};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    ::close(fd);
    return Status::Internal("getsockname() failed");
  }
  if (::pipe(wake_pipe_) != 0) {
    ::close(fd);
    return Status::Internal("pipe() failed");
  }

  listen_fd_ = fd;
  port_ = ntohs(bound.sin_port);
  running_.store(true, std::memory_order_release);
  // A dedicated thread, not the worker pool: the serve loop blocks in
  // poll() indefinitely and must never occupy a compute slot.
  thread_ = std::thread([this] { ServeLoop(); });
  GS_LOG(Info) << "status server listening on http://127.0.0.1:" << port_;
  return Status::Ok();
}

void StatusServer::Stop() {
  if (!running_.exchange(false)) return;
  // Self-pipe: wake the poll() so the loop observes running_ == false.
  char byte = 'q';
  ssize_t ignored = ::write(wake_pipe_[1], &byte, 1);
  (void)ignored;
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  listen_fd_ = -1;
  wake_pipe_[0] = wake_pipe_[1] = -1;
}

void StatusServer::ServeLoop() {
  while (running()) {
    pollfd fds[2] = {};
    fds[0].fd = listen_fd_;
    fds[0].events = POLLIN;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (!running()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    // Bound how long a stalled client can hold the (single) serve thread.
    timeval timeout = {};
    timeout.tv_sec = read_timeout_ms_ / 1000;
    timeout.tv_usec = (read_timeout_ms_ % 1000) * 1000;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    ServeConnection(client);
    ::close(client);
  }
}

void StatusServer::ServeConnection(int fd) {
  std::string buffer;
  for (int served = 0; served < kMaxRequestsPerConnection; ++served) {
    http::ReadResult in = http::ReadRequest(fd, &buffer);
    if (in.kind == http::ReadResult::Kind::kClosed) return;
    if (in.kind == http::ReadResult::Kind::kError) {
      http::WriteAll(fd, http::RenderResponse(in.error, /*keep_alive=*/false));
      return;
    }
    const http::Request& request = in.request;
    HttpResponse response;
    if (request.method != "GET" && request.method != "HEAD") {
      response.status_code = 405;
      response.body = "only GET is supported\n";
    } else {
      response = Dispatch(request.path);
    }
    const bool keep_alive =
        request.keep_alive && served + 1 < kMaxRequestsPerConnection;
    std::string wire = http::RenderResponse(response, keep_alive);
    // HEAD: same headers as GET — Content-Length advertises the GET body —
    // but no body bytes on the wire (RFC 7231 §4.3.2).
    if (request.method == "HEAD") wire.resize(wire.find("\r\n\r\n") + 4);
    http::WriteAll(fd, wire);
    if (!keep_alive) return;
  }
}

HttpResponse StatusServer::Dispatch(const std::string& path) const {
  // Counting scrapes here also guarantees /metrics is never empty: by the
  // time a scraper reads it, its own request has registered the family.
  static metrics::Counter* requests =
      metrics::Registry::Global().GetCounter("gs_status_server_requests");
  requests->Increment();
  if (path == "/" || path.empty()) return IndexPage();
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(handlers_mutex_);
    auto it = handlers_.find(path);
    if (it != handlers_.end()) handler = it->second;
  }
  if (!handler) {
    HttpResponse r;
    r.status_code = 404;
    r.body = "no handler for " + path + "\n";
    return r;
  }
  // Invoked outside handlers_mutex_ so a slow render never blocks Handle().
  return handler();
}

StatusServer& StatusServer::Global() {
  static StatusServer* server = new StatusServer();
  return *server;
}

bool StatusServer::MaybeStartFromEnv() {
  StatusServer& server = Global();
  if (server.running()) return true;
  const char* env = std::getenv("GRAPHSURGE_STATUS_PORT");
  if (env == nullptr || *env == '\0') return false;
  char* end = nullptr;
  long port = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || port < 0 || port > 65535) {
    GS_LOG(Warning) << "ignoring invalid GRAPHSURGE_STATUS_PORT: " << env;
    return false;
  }
  Status status = server.Start(static_cast<uint16_t>(port));
  if (!status.ok()) {
    GS_LOG(Warning) << "status server failed to start: " << status.ToString();
    return false;
  }
  return true;
}

}  // namespace gs::server
