// Binary persistence for materialized collections and property graphs
// (the paper's Storage Manager persists edge streams and views to files;
// we provide a compact little-endian binary format with a magic/version
// header so materialization work can be reused across processes).
#ifndef GRAPHSURGE_VIEWS_SERIALIZATION_H_
#define GRAPHSURGE_VIEWS_SERIALIZATION_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"
#include "views/collection.h"

namespace gs::views {

/// Writes a materialized collection (names, order, sizes, difference
/// stream, timings) to `path`.
Status SaveCollection(const MaterializedCollection& collection,
                      const std::string& path);

/// Reads a collection previously written by SaveCollection. Fails with
/// ParseError on magic/version mismatch or truncation.
StatusOr<MaterializedCollection> LoadCollection(const std::string& path);

/// Writes a property graph (edges + both property tables) to `path`.
Status SaveGraph(const PropertyGraph& graph, const std::string& path);

/// Reads a graph previously written by SaveGraph.
StatusOr<PropertyGraph> LoadGraph(const std::string& path);

}  // namespace gs::views

#endif  // GRAPHSURGE_VIEWS_SERIALIZATION_H_
