#include "views/serialization.h"

#include <cstring>
#include <fstream>

namespace gs::views {

namespace {

constexpr uint32_t kCollectionMagic = 0x47535643;  // "GSVC"
constexpr uint32_t kGraphMagic = 0x47535047;       // "GSPG"
constexpr uint32_t kFormatVersion = 1;

// --- primitive writers/readers ---------------------------------------------

void WriteU32(std::ostream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteU64(std::ostream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteI64(std::ostream& out, int64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteF64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteString(std::ostream& out, const std::string& s) {
  WriteU64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

Status ReadU32(std::istream& in, uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  if (!in) return Status::ParseError("truncated file (u32)");
  return Status::Ok();
}
Status ReadU64(std::istream& in, uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  if (!in) return Status::ParseError("truncated file (u64)");
  return Status::Ok();
}
Status ReadI64(std::istream& in, int64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  if (!in) return Status::ParseError("truncated file (i64)");
  return Status::Ok();
}
Status ReadF64(std::istream& in, double* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  if (!in) return Status::ParseError("truncated file (f64)");
  return Status::Ok();
}
Status ReadString(std::istream& in, std::string* s) {
  uint64_t n = 0;
  GS_RETURN_IF_ERROR(ReadU64(in, &n));
  if (n > (1ull << 32)) return Status::ParseError("implausible string size");
  s->resize(n);
  in.read(s->data(), static_cast<std::streamsize>(n));
  if (!in) return Status::ParseError("truncated file (string)");
  return Status::Ok();
}

Status CheckHeader(std::istream& in, uint32_t magic) {
  uint32_t got_magic = 0, got_version = 0;
  GS_RETURN_IF_ERROR(ReadU32(in, &got_magic));
  GS_RETURN_IF_ERROR(ReadU32(in, &got_version));
  if (got_magic != magic) return Status::ParseError("bad magic");
  if (got_version != kFormatVersion) {
    return Status::ParseError("unsupported format version " +
                              std::to_string(got_version));
  }
  return Status::Ok();
}

void WritePropertyValue(std::ostream& out, const PropertyValue& v) {
  WriteU32(out, static_cast<uint32_t>(v.type()));
  switch (v.type()) {
    case PropertyType::kNull:
      break;
    case PropertyType::kBool:
      WriteU32(out, v.AsBool() ? 1 : 0);
      break;
    case PropertyType::kInt:
      WriteI64(out, v.AsInt());
      break;
    case PropertyType::kDouble:
      WriteF64(out, v.AsDouble());
      break;
    case PropertyType::kString:
      WriteString(out, v.AsString());
      break;
  }
}

StatusOr<PropertyValue> ReadPropertyValue(std::istream& in) {
  uint32_t type = 0;
  GS_RETURN_IF_ERROR(ReadU32(in, &type));
  switch (static_cast<PropertyType>(type)) {
    case PropertyType::kNull:
      return PropertyValue::Null();
    case PropertyType::kBool: {
      uint32_t b = 0;
      GS_RETURN_IF_ERROR(ReadU32(in, &b));
      return PropertyValue(b != 0);
    }
    case PropertyType::kInt: {
      int64_t v = 0;
      GS_RETURN_IF_ERROR(ReadI64(in, &v));
      return PropertyValue(v);
    }
    case PropertyType::kDouble: {
      double v = 0;
      GS_RETURN_IF_ERROR(ReadF64(in, &v));
      return PropertyValue(v);
    }
    case PropertyType::kString: {
      std::string s;
      GS_RETURN_IF_ERROR(ReadString(in, &s));
      return PropertyValue(std::move(s));
    }
  }
  return Status::ParseError("bad property type tag");
}

void WriteTable(std::ostream& out, const PropertyTable& t) {
  WriteU64(out, t.num_columns());
  for (size_t c = 0; c < t.num_columns(); ++c) {
    WriteString(out, t.column_name(c));
    WriteU32(out, static_cast<uint32_t>(t.column(c).type()));
  }
  WriteU64(out, t.num_rows());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (size_t c = 0; c < t.num_columns(); ++c) {
      WritePropertyValue(out, t.Get(r, c));
    }
  }
}

Status ReadTable(std::istream& in, PropertyTable* t) {
  uint64_t cols = 0;
  GS_RETURN_IF_ERROR(ReadU64(in, &cols));
  for (uint64_t c = 0; c < cols; ++c) {
    std::string name;
    uint32_t type = 0;
    GS_RETURN_IF_ERROR(ReadString(in, &name));
    GS_RETURN_IF_ERROR(ReadU32(in, &type));
    GS_RETURN_IF_ERROR(t->AddColumn(name, static_cast<PropertyType>(type)));
  }
  uint64_t rows = 0;
  GS_RETURN_IF_ERROR(ReadU64(in, &rows));
  for (uint64_t r = 0; r < rows; ++r) {
    std::vector<PropertyValue> row;
    row.reserve(cols);
    for (uint64_t c = 0; c < cols; ++c) {
      GS_ASSIGN_OR_RETURN(PropertyValue v, ReadPropertyValue(in));
      row.push_back(std::move(v));
    }
    GS_RETURN_IF_ERROR(t->AppendRow(row));
  }
  return Status::Ok();
}

}  // namespace

Status SaveCollection(const MaterializedCollection& mc,
                      const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot write " + path);
  WriteU32(out, kCollectionMagic);
  WriteU32(out, kFormatVersion);
  WriteString(out, mc.name);
  WriteString(out, mc.base_graph);
  WriteU64(out, mc.num_views());
  for (size_t t = 0; t < mc.num_views(); ++t) {
    WriteString(out, mc.view_names[t]);
    WriteU64(out, mc.order[t]);
    WriteU64(out, mc.view_sizes[t]);
    const auto& diffs = mc.diffs.ViewDiffs(t);
    WriteU64(out, diffs.size());
    for (const EdgeDiff& d : diffs) {
      WriteU64(out, d.edge);
      WriteU32(out, d.diff > 0 ? 1 : 0);
    }
  }
  WriteF64(out, mc.creation_seconds);
  WriteF64(out, mc.ordering_seconds);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<MaterializedCollection> LoadCollection(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  GS_RETURN_IF_ERROR(CheckHeader(in, kCollectionMagic));
  MaterializedCollection mc;
  GS_RETURN_IF_ERROR(ReadString(in, &mc.name));
  GS_RETURN_IF_ERROR(ReadString(in, &mc.base_graph));
  uint64_t views = 0;
  GS_RETURN_IF_ERROR(ReadU64(in, &views));
  std::vector<std::vector<EdgeDiff>> batches(views);
  for (uint64_t t = 0; t < views; ++t) {
    std::string name;
    uint64_t order = 0, size = 0, ndiffs = 0;
    GS_RETURN_IF_ERROR(ReadString(in, &name));
    GS_RETURN_IF_ERROR(ReadU64(in, &order));
    GS_RETURN_IF_ERROR(ReadU64(in, &size));
    GS_RETURN_IF_ERROR(ReadU64(in, &ndiffs));
    mc.view_names.push_back(std::move(name));
    mc.order.push_back(order);
    mc.view_sizes.push_back(size);
    batches[t].reserve(ndiffs);
    for (uint64_t i = 0; i < ndiffs; ++i) {
      uint64_t edge = 0;
      uint32_t positive = 0;
      GS_RETURN_IF_ERROR(ReadU64(in, &edge));
      GS_RETURN_IF_ERROR(ReadU32(in, &positive));
      batches[t].push_back(
          EdgeDiff{edge, static_cast<int8_t>(positive ? 1 : -1)});
    }
    mc.diff_sizes.push_back(ndiffs);
    mc.total_diffs += ndiffs;
  }
  mc.diffs = EdgeDifferenceStream::FromBatches(std::move(batches));
  GS_RETURN_IF_ERROR(ReadF64(in, &mc.creation_seconds));
  GS_RETURN_IF_ERROR(ReadF64(in, &mc.ordering_seconds));
  return mc;
}

Status SaveGraph(const PropertyGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot write " + path);
  WriteU32(out, kGraphMagic);
  WriteU32(out, kFormatVersion);
  WriteU64(out, graph.num_nodes());
  WriteU64(out, graph.num_edges());
  for (const Edge& e : graph.edges()) {
    WriteU64(out, e.src);
    WriteU64(out, e.dst);
  }
  WriteTable(out, graph.node_properties());
  WriteTable(out, graph.edge_properties());
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<PropertyGraph> LoadGraph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  GS_RETURN_IF_ERROR(CheckHeader(in, kGraphMagic));
  PropertyGraph graph;
  uint64_t nodes = 0, edges = 0;
  GS_RETURN_IF_ERROR(ReadU64(in, &nodes));
  GS_RETURN_IF_ERROR(ReadU64(in, &edges));
  graph.AddNodes(nodes);
  for (uint64_t e = 0; e < edges; ++e) {
    uint64_t src = 0, dst = 0;
    GS_RETURN_IF_ERROR(ReadU64(in, &src));
    GS_RETURN_IF_ERROR(ReadU64(in, &dst));
    GS_RETURN_IF_ERROR(graph.AddEdge(src, dst).status());
  }
  GS_RETURN_IF_ERROR(ReadTable(in, &graph.node_properties()));
  GS_RETURN_IF_ERROR(ReadTable(in, &graph.edge_properties()));
  GS_RETURN_IF_ERROR(graph.Validate());
  return graph;
}

}  // namespace gs::views
