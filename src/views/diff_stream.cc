#include "views/diff_stream.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace gs::views {

EdgeDifferenceStream EdgeDifferenceStream::FromMatrix(
    const EdgeBooleanMatrix& ebm, const std::vector<size_t>& order,
    ThreadPool* pool) {
  GS_CHECK(order.size() == ebm.num_views());
  EdgeDifferenceStream stream;
  stream.diffs_.resize(order.size());

  size_t shards =
      pool != nullptr ? std::max<size_t>(1, pool->num_threads()) : 1;
  std::vector<std::vector<std::vector<EdgeDiff>>> partial(
      shards, std::vector<std::vector<EdgeDiff>>(order.size()));

  auto scan = [&](size_t shard, size_t begin, size_t end) {
    auto& local = partial[shard];
    for (EdgeId e = begin; e < end; ++e) {
      bool prev = false;
      for (size_t t = 0; t < order.size(); ++t) {
        bool now = ebm.Get(e, order[t]);
        if (now != prev) {
          local[t].push_back(
              EdgeDiff{e, static_cast<int8_t>(now ? 1 : -1)});
        }
        prev = now;
      }
    }
  };
  if (shards > 1) {
    pool->ParallelForShards(ebm.num_edges(), scan);
  } else {
    scan(0, 0, ebm.num_edges());
  }

  // Merge shard outputs preserving edge order (shards cover contiguous
  // ascending ranges).
  for (size_t t = 0; t < order.size(); ++t) {
    size_t total = 0;
    for (size_t s = 0; s < shards; ++s) total += partial[s][t].size();
    stream.diffs_[t].reserve(total);
    for (size_t s = 0; s < shards; ++s) {
      auto& src = partial[s][t];
      stream.diffs_[t].insert(stream.diffs_[t].end(), src.begin(), src.end());
    }
  }
  return stream;
}

EdgeDifferenceStream EdgeDifferenceStream::FromBatches(
    std::vector<std::vector<EdgeDiff>> batches) {
  EdgeDifferenceStream stream;
  stream.diffs_ = std::move(batches);
  return stream;
}

void EdgeDifferenceStream::UpdateEdges(
    const std::vector<EdgeId>& touched_edges, const EdgeBooleanMatrix& ebm,
    const std::vector<size_t>& order) {
  GS_CHECK(order.size() == diffs_.size());
  if (touched_edges.empty()) return;

  // Fresh alternation contributions of every touched edge, computed exactly
  // as FromMatrix's row scan does (touched_edges is ascending, so each
  // per-view list comes out in ascending edge order).
  std::vector<std::vector<EdgeDiff>> fresh(order.size());
  for (EdgeId e : touched_edges) {
    bool prev = false;
    for (size_t t = 0; t < order.size(); ++t) {
      bool now = e < ebm.num_edges() && ebm.Get(e, order[t]);
      if (now != prev) {
        fresh[t].push_back(EdgeDiff{e, static_cast<int8_t>(now ? 1 : -1)});
      }
      prev = now;
    }
  }

  // Per view: drop the touched edges' stale entries, then merge the fresh
  // ones back in by edge id — both inputs are ascending, so one linear merge
  // reproduces FromMatrix's output exactly.
  for (size_t t = 0; t < order.size(); ++t) {
    std::vector<EdgeDiff>& old = diffs_[t];
    std::vector<EdgeDiff> merged;
    merged.reserve(old.size() + fresh[t].size());
    size_t fi = 0;
    for (const EdgeDiff& d : old) {
      if (std::binary_search(touched_edges.begin(), touched_edges.end(),
                             d.edge)) {
        continue;  // stale entry for a touched edge
      }
      while (fi < fresh[t].size() && fresh[t][fi].edge < d.edge) {
        merged.push_back(fresh[t][fi++]);
      }
      merged.push_back(d);
    }
    while (fi < fresh[t].size()) merged.push_back(fresh[t][fi++]);
    old = std::move(merged);
  }
}

uint64_t EdgeDifferenceStream::TotalDiffs() const {
  uint64_t total = 0;
  for (const auto& d : diffs_) total += d.size();
  return total;
}

std::vector<EdgeId> EdgeDifferenceStream::Reconstruct(size_t view) const {
  GS_CHECK(view < diffs_.size());
  std::vector<EdgeId> present;
  // Accumulate ±1 per edge; edges appear/disappear at most once per view,
  // so a sorted merge is unnecessary — use a set-like vector keyed by edge.
  std::unordered_map<EdgeId, int> counts;
  for (size_t t = 0; t <= view; ++t) {
    for (const EdgeDiff& d : diffs_[t]) counts[d.edge] += d.diff;
  }
  for (const auto& [edge, c] : counts) {
    GS_CHECK(c == 0 || c == 1) << "difference stream inconsistent";
    if (c == 1) present.push_back(edge);
  }
  std::sort(present.begin(), present.end());
  return present;
}

}  // namespace gs::views
