#include "views/diff_stream.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace gs::views {

EdgeDifferenceStream EdgeDifferenceStream::FromMatrix(
    const EdgeBooleanMatrix& ebm, const std::vector<size_t>& order,
    ThreadPool* pool) {
  GS_CHECK(order.size() == ebm.num_views());
  EdgeDifferenceStream stream;
  stream.diffs_.resize(order.size());

  size_t shards =
      pool != nullptr ? std::max<size_t>(1, pool->num_threads()) : 1;
  std::vector<std::vector<std::vector<EdgeDiff>>> partial(
      shards, std::vector<std::vector<EdgeDiff>>(order.size()));

  auto scan = [&](size_t shard, size_t begin, size_t end) {
    auto& local = partial[shard];
    for (EdgeId e = begin; e < end; ++e) {
      bool prev = false;
      for (size_t t = 0; t < order.size(); ++t) {
        bool now = ebm.Get(e, order[t]);
        if (now != prev) {
          local[t].push_back(
              EdgeDiff{e, static_cast<int8_t>(now ? 1 : -1)});
        }
        prev = now;
      }
    }
  };
  if (shards > 1) {
    pool->ParallelForShards(ebm.num_edges(), scan);
  } else {
    scan(0, 0, ebm.num_edges());
  }

  // Merge shard outputs preserving edge order (shards cover contiguous
  // ascending ranges).
  for (size_t t = 0; t < order.size(); ++t) {
    size_t total = 0;
    for (size_t s = 0; s < shards; ++s) total += partial[s][t].size();
    stream.diffs_[t].reserve(total);
    for (size_t s = 0; s < shards; ++s) {
      auto& src = partial[s][t];
      stream.diffs_[t].insert(stream.diffs_[t].end(), src.begin(), src.end());
    }
  }
  return stream;
}

EdgeDifferenceStream EdgeDifferenceStream::FromBatches(
    std::vector<std::vector<EdgeDiff>> batches) {
  EdgeDifferenceStream stream;
  stream.diffs_ = std::move(batches);
  return stream;
}

uint64_t EdgeDifferenceStream::TotalDiffs() const {
  uint64_t total = 0;
  for (const auto& d : diffs_) total += d.size();
  return total;
}

std::vector<EdgeId> EdgeDifferenceStream::Reconstruct(size_t view) const {
  GS_CHECK(view < diffs_.size());
  std::vector<EdgeId> present;
  // Accumulate ±1 per edge; edges appear/disappear at most once per view,
  // so a sorted merge is unnecessary — use a set-like vector keyed by edge.
  std::unordered_map<EdgeId, int> counts;
  for (size_t t = 0; t <= view; ++t) {
    for (const EdgeDiff& d : diffs_[t]) counts[d.edge] += d.diff;
  }
  for (const auto& [edge, c] : counts) {
    GS_CHECK(c == 0 || c == 1) << "difference stream inconsistent";
    if (c == 1) present.push_back(edge);
  }
  std::sort(present.begin(), present.end());
  return present;
}

}  // namespace gs::views
