// Live (continuously maintained) execution of an analytics computation over
// a view collection across graph-update epochs — the streaming half of the
// tentpole: instead of recomputing a collection's analytics after each
// mutation batch, the differential engine's version axis is extended with an
// epoch dimension and only the *changed* input is fed.
//
// Time model: graph-update epochs and view positions form a product order
// where epochs dominate. The engine's versions are totally ordered, so the
// product is embedded epoch-major (differential::EpochVersion):
//     engine_version = epoch * num_views + view_position
// The accumulated input at flattened version (e, t) is exactly
//     { ResolveWeighted(edge) : edge alive at epoch e
//                               ∧ edge ∈ view t under the epoch-e EBM }
// so the engine's accumulated *output* at (e, t) is the computation's result
// on view t of epoch e — query any (epoch, view) cell at any time.
//
// Within an epoch, views are fed boustrophedon: even epochs walk the
// collection order ascending (0 → k−1), odd epochs descending (k−1 → 0,
// replaying the maintained difference stream negated). Every epoch
// transition is therefore between the *same* view position — the last view
// one epoch fed is the first view the next epoch feeds — so the transition
// only needs diffs for edges touched by the mutation batch. (A fixed
// ascending order would instead pay a wrap-around at every boundary:
// view k−1 → view 0 retracts every edge that alternates anywhere in the
// collection, a deletion cascade through the computation each epoch.)
// Per-epoch input cost is O(|touched| + Σ_t |δC_t|) with the constant
// halved versus the wrap-around design. ResultsAt hides the zigzag: it maps
// (epoch, view position) to the flattened engine version, reversing the
// position for odd epochs. After the last view of an epoch the engine may
// seal the epoch (full trace compaction — no future input can land at or
// before it) at the cadence set by LiveRunOptions::full_compaction_period.
#ifndef GRAPHSURGE_VIEWS_LIVE_H_
#define GRAPHSURGE_VIEWS_LIVE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "algorithms/computation.h"
#include "algorithms/reference.h"
#include "common/sched_profile.h"
#include "common/status.h"
#include "views/collection.h"
#include "views/engine.h"
#include "views/executor.h"

namespace gs::views {

struct LiveRunOptions {
  /// Edge property column used as edge weight; -1 → weight 1.
  int weight_column = -1;
  /// Engine parameters (num_workers > 1 runs sharded).
  differential::DataflowOptions dataflow;
  /// Seal (fully compact) the engine's traces after every N-th epoch;
  /// epochs in between rely on the amortized per-version compaction alone.
  /// 0 never epoch-seals. A full-spine rewrite costs O(total state)
  /// regardless of batch size, so streams of small frequent batches should
  /// raise this; 1 (the default) preserves seal-every-epoch behavior.
  /// Purely a compaction cadence — results are identical for any value.
  uint32_t full_compaction_period = 1;
};

/// A continuously maintained differential execution: one computation, one
/// maintainable collection, advanced epoch-by-epoch as mutation batches
/// land. `graph` and `collection` are borrowed and must outlive the run;
/// the collection must be refreshed (UpdateCollectionForMutations) before
/// each AdvanceEpoch.
class LiveRun {
 public:
  /// Builds the engine and feeds epoch 0: every view of the collection's
  /// current materialization, differentially (the kDiffOnly strategy).
  static StatusOr<std::unique_ptr<LiveRun>> Start(
      const analytics::Computation& computation, const PropertyGraph& graph,
      const MaterializedCollection* collection, const LiveRunOptions& options);

  /// Feeds one more epoch. Preconditions: the mutation batch has been
  /// applied to the graph AND the collection has been incrementally updated
  /// (its graph_epoch matches the graph's). `touched_edges` is the batch's
  /// sorted/deduplicated touched set (MutationEffects::touched_edges).
  Status AdvanceEpoch(const std::vector<EdgeId>& touched_edges);

  /// The computation's full result on view `view` of epoch `epoch`
  /// (accumulated engine output at the flattened version).
  StatusOr<analytics::ResultMap> ResultsAt(uint32_t epoch, size_t view) const;

  /// Epochs fed so far (1 after Start: epoch 0).
  uint32_t epochs_fed() const { return epochs_fed_; }
  size_t num_views() const { return num_views_; }
  /// Input updates fed for the most recent epoch (the per-epoch diff count
  /// surfaced by /statusz and gs_live_epoch_input_diffs).
  uint64_t last_epoch_input_diffs() const { return last_epoch_input_diffs_; }
  /// Aggregated engine work counters (call between epochs).
  differential::DataflowStats EngineStats() const {
    return engine_->dataflow.AggregatedStats();
  }
  /// Scheduler time attribution (summed over workers) for the most recent
  /// AdvanceEpoch — where the epoch's wall clock went: operator work,
  /// exchange drains, barrier waits, seals, or idle. Mirrored into the
  /// gs_live_epoch_state_nanos{state=...} counters.
  const sched::WorkerAttribution& last_epoch_attribution() const {
    return last_epoch_attr_;
  }

 private:
  LiveRun(const PropertyGraph& graph, const MaterializedCollection* collection,
          const LiveRunOptions& options);

  /// Feeds resolved_[e] with `diff` and counts it toward the epoch total.
  void Send(EdgeId e, differential::Diff diff);

  const PropertyGraph& graph_;
  const MaterializedCollection* collection_;
  LiveRunOptions options_;
  std::unique_ptr<detail::Engine> engine_;
  size_t num_views_ = 0;
  uint32_t epochs_fed_ = 0;
  uint64_t epoch_input_diffs_ = 0;       // accumulator for the current epoch
  uint64_t last_epoch_input_diffs_ = 0;  // finished-epoch readout
  sched::WorkerAttribution last_epoch_attr_;  // finished-epoch time split
  /// present_[e]: edge e is in the most recently fed view's accumulated
  /// input. resolved_[e]: the exact record fed for e (retractions must
  /// byte-match the original insertion even after a weight update).
  std::vector<uint8_t> present_;
  std::vector<WeightedEdge> resolved_;
};

}  // namespace gs::views

#endif  // GRAPHSURGE_VIEWS_LIVE_H_
