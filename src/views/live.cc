#include "views/live.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/timer.h"
#include "common/timeseries.h"
#include "common/trace_event.h"
#include "differential/time.h"

namespace gs::views {

LiveRun::LiveRun(const PropertyGraph& graph,
                 const MaterializedCollection* collection,
                 const LiveRunOptions& options)
    : graph_(graph), collection_(collection), options_(options) {}

void LiveRun::Send(EdgeId e, differential::Diff diff) {
  engine_->Send(resolved_[e], diff);
  epoch_input_diffs_ += 1;
}

StatusOr<std::unique_ptr<LiveRun>> LiveRun::Start(
    const analytics::Computation& computation, const PropertyGraph& graph,
    const MaterializedCollection* collection, const LiveRunOptions& options) {
  if (collection == nullptr || collection->num_views() == 0) {
    return Status::InvalidArgument("live run needs a non-empty collection");
  }
  if (!collection->maintainable()) {
    return Status::FailedPrecondition(
        "live run needs a maintainable (predicate-defined) collection");
  }
  if (collection->graph_epoch != graph.mutation_epoch()) {
    return Status::FailedPrecondition(
        "collection '" + collection->name +
        "' is stale: materialized at epoch " +
        std::to_string(collection->graph_epoch) + ", graph is at " +
        std::to_string(graph.mutation_epoch()));
  }

  auto run = std::unique_ptr<LiveRun>(new LiveRun(graph, collection, options));
  run->num_views_ = collection->num_views();
  run->engine_ =
      std::make_unique<detail::Engine>(computation, options.dataflow);
  run->present_.assign(graph.num_edges(), 0);
  run->resolved_.resize(graph.num_edges());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    run->resolved_[e] = graph.ResolveWeighted(e, options.weight_column);
  }

  // Epoch 0: replay the difference stream, one engine version per view
  // (δC_0 = GV_0, so the first Step is the full first view).
  for (size_t t = 0; t < run->num_views_; ++t) {
    for (const EdgeDiff& d : collection->diffs.ViewDiffs(t)) {
      run->present_[d.edge] = d.diff > 0 ? 1 : 0;
      run->Send(d.edge, d.diff);
    }
    GS_RETURN_IF_ERROR(run->engine_->Step());
  }
  // Epoch 0 is the full initial build — by far the largest history the run
  // will ever feed — so collapsing it is worth a full compaction whatever
  // the cadence (unless sealing is disabled outright).
  if (options.full_compaction_period != 0) run->engine_->SealEpoch();
  run->epochs_fed_ = 1;
  run->last_epoch_input_diffs_ = run->epoch_input_diffs_;
  run->epoch_input_diffs_ = 0;
  return run;
}

namespace {

/// SLO + watchdog marker around one epoch advance. The start-time gauge is
/// what the watchdog's epoch_advance_deadline rule reads (non-zero =
/// in progress since that NowMillis); the destructor clears it on every
/// exit path so an early validation return can never leave the deadline
/// armed.
class EpochAdvanceScope {
 public:
  EpochAdvanceScope() {
    StartedGauge()->Set(static_cast<int64_t>(timeseries::NowMillis()));
  }
  ~EpochAdvanceScope() {
    LatencyHistogram()->Observe(static_cast<uint64_t>(timer_.Nanos()));
    StartedGauge()->Set(0);
  }

 private:
  static metrics::Gauge* StartedGauge() {
    static auto* gauge = metrics::Registry::Global().GetGauge(
        "gs_live_epoch_advance_started_ms");
    return gauge;
  }
  static metrics::Histogram* LatencyHistogram() {
    static auto* histogram = metrics::Registry::Global().GetHistogram(
        "gs_live_epoch_advance_nanos");
    return histogram;
  }
  Timer timer_;
};

/// Sums the engine's cumulative per-worker time attribution into one record
/// (peak_pending becomes the max over workers — it is a level, not a sum).
sched::WorkerAttribution SumAttribution(const sched::StepProfile& profile) {
  sched::StepProfile::Snapshot snap = profile.GetSnapshot();
  sched::WorkerAttribution sum;
  for (const sched::WorkerAttribution& w : snap.totals) sum.Add(w);
  return sum;
}

/// after − before per cumulative field (clamped: attribution counters are
/// monotone, but snapshots are taken around code that also runs SealEpoch).
sched::WorkerAttribution AttributionDelta(const sched::WorkerAttribution& a,
                                          const sched::WorkerAttribution& b) {
  auto sub = [](uint64_t after, uint64_t before) {
    return after > before ? after - before : 0;
  };
  sched::WorkerAttribution delta;
  delta.busy_ns = sub(b.busy_ns, a.busy_ns);
  delta.exchange_ns = sub(b.exchange_ns, a.exchange_ns);
  delta.barrier_ns = sub(b.barrier_ns, a.barrier_ns);
  delta.seal_ns = sub(b.seal_ns, a.seal_ns);
  delta.idle_ns = sub(b.idle_ns, a.idle_ns);
  delta.events = sub(b.events, a.events);
  delta.peak_pending = b.peak_pending;
  return delta;
}

}  // namespace

Status LiveRun::AdvanceEpoch(const std::vector<EdgeId>& touched_edges) {
  EpochAdvanceScope slo_scope;
  const uint32_t epoch = epochs_fed_;
  if (collection_->graph_epoch != graph_.mutation_epoch()) {
    return Status::FailedPrecondition(
        "collection '" + collection_->name +
        "' not refreshed before AdvanceEpoch (run "
        "UpdateCollectionForMutations first)");
  }
  if (collection_->num_views() != num_views_) {
    return Status::FailedPrecondition("view count changed mid-run");
  }
  GS_TRACE_SPAN_V("live", "advance_epoch", epoch);
  const sched::WorkerAttribution attr_before =
      SumAttribution(engine_->dataflow.profile());

  const EdgeBooleanMatrix& ebm = *collection_->ebm;
  // Boustrophedon: even epochs walk positions 0 → k−1, odd epochs k−1 → 0.
  // The previous epoch (opposite parity) ended on this epoch's boundary
  // position, so the transition is between the same view.
  const bool descending = (epoch % 2) == 1;
  const size_t boundary_view =
      collection_->order[descending ? num_views_ - 1 : 0];

  // Grow per-edge state for edges appended by this batch. New edges start
  // absent (they were not in any previous-epoch view).
  present_.resize(graph_.num_edges(), 0);
  resolved_.resize(graph_.num_edges());

  // Touched edges may have new weights: save the records originally fed
  // (retractions must match them) before refreshing the cache.
  std::vector<WeightedEdge> old_records(touched_edges.size());
  for (size_t i = 0; i < touched_edges.size(); ++i) {
    EdgeId e = touched_edges[i];
    old_records[i] = resolved_[e];
    resolved_[e] = graph_.ResolveWeighted(e, options_.weight_column);
  }

  // --- First version of the epoch: the transition -----------------------
  // Accumulated input goes from "boundary view, old epoch" to "boundary
  // view, new epoch" — the same view, so only touched edges (membership
  // and/or record changed; maintenance re-evaluates exactly the touched
  // set) can carry a non-zero diff.
  for (size_t i = 0; i < touched_edges.size(); ++i) {
    EdgeId e = touched_edges[i];
    bool old_in = present_[e] != 0;
    bool new_in = ebm.Get(e, boundary_view);  // alive-gated by the maintainer
    const WeightedEdge& old_record = old_records[i];
    if (old_in && new_in && old_record == resolved_[e]) {
      continue;  // carried over unchanged
    }
    if (old_in) {
      // Retract the exact record originally fed (pre-update weight).
      engine_->Send(old_record, -1);
      epoch_input_diffs_ += 1;
    }
    if (new_in) Send(e, 1);
    present_[e] = new_in ? 1 : 0;
  }
  GS_RETURN_IF_ERROR(engine_->Step());

  // --- Remaining versions: replay the maintained stream -----------------
  // Ascending replays δC_t as-is (position t−1 → t); descending replays it
  // negated (position t → t−1).
  if (!descending) {
    for (size_t t = 1; t < num_views_; ++t) {
      for (const EdgeDiff& d : collection_->diffs.ViewDiffs(t)) {
        present_[d.edge] = d.diff > 0 ? 1 : 0;
        Send(d.edge, d.diff);
      }
      GS_RETURN_IF_ERROR(engine_->Step());
    }
  } else {
    for (size_t t = num_views_ - 1; t >= 1; --t) {
      for (const EdgeDiff& d : collection_->diffs.ViewDiffs(t)) {
        present_[d.edge] = d.diff > 0 ? 0 : 1;
        Send(d.edge, -d.diff);
      }
      GS_RETURN_IF_ERROR(engine_->Step());
    }
  }

  if (options_.full_compaction_period != 0 &&
      epoch % options_.full_compaction_period == 0) {
    engine_->SealEpoch();
  }
  ++epochs_fed_;
  last_epoch_input_diffs_ = epoch_input_diffs_;
  epoch_input_diffs_ = 0;
  last_epoch_attr_ = AttributionDelta(
      attr_before, SumAttribution(engine_->dataflow.profile()));

  static auto* epochs_fed =
      metrics::Registry::Global().GetCounter("gs_live_epochs_fed");
  static auto* input_diffs = metrics::Registry::Global().GetHistogram(
      "gs_live_epoch_input_diffs");
  epochs_fed->Increment();
  input_diffs->Observe(last_epoch_input_diffs_);
  // Where this epoch's engine time went, as cumulative /varz counters: a
  // scraper can diff two samples to see whether live maintenance is
  // operator-bound or stalled on barriers/exchange.
  struct StateCounter {
    const char* state;
    uint64_t sched::WorkerAttribution::* field;
  };
  static const StateCounter kStates[] = {
      {"busy", &sched::WorkerAttribution::busy_ns},
      {"exchange", &sched::WorkerAttribution::exchange_ns},
      {"barrier", &sched::WorkerAttribution::barrier_ns},
      {"seal", &sched::WorkerAttribution::seal_ns},
      {"idle", &sched::WorkerAttribution::idle_ns},
  };
  for (const StateCounter& sc : kStates) {
    metrics::Registry::Global()
        .GetCounter("gs_live_epoch_state_nanos", {{"state", sc.state}})
        ->Increment(last_epoch_attr_.*(sc.field));
  }
  return Status::Ok();
}

StatusOr<analytics::ResultMap> LiveRun::ResultsAt(uint32_t epoch,
                                                  size_t view) const {
  if (epoch >= epochs_fed_ || view >= num_views_) {
    return Status::OutOfRange(
        "no results at epoch " + std::to_string(epoch) + ", view " +
        std::to_string(view) + " (fed " + std::to_string(epochs_fed_) +
        " epochs × " + std::to_string(num_views_) + " views)");
  }
  // Odd epochs fed positions in descending order (see header): reverse the
  // position to find where this view's input landed.
  const size_t position =
      (epoch % 2) == 0 ? view : num_views_ - 1 - view;
  uint32_t version = differential::EpochVersion::Flatten(
      epoch, static_cast<uint32_t>(position),
      static_cast<uint32_t>(num_views_));
  analytics::ResultMap m;
  for (const auto& u : engine_->AccumulatedAt(version)) {
    if (u.diff != 1) {
      return Status::Internal("non-unit multiplicity in live output");
    }
    m[u.data.first] = u.data.second;
  }
  return m;
}

}  // namespace gs::views
