// View collection materialization (paper §3.2): EBM computation →
// collection ordering → edge difference stream, bundled with the metadata
// the executors and optimizers need (per-view sizes, per-view diff sizes,
// creation timings).
#ifndef GRAPHSURGE_VIEWS_COLLECTION_H_
#define GRAPHSURGE_VIEWS_COLLECTION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "graph/graph.h"
#include "gvdl/ast.h"
#include "gvdl/batch_eval.h"
#include "views/diff_stream.h"
#include "views/ebm.h"

namespace gs::views {

struct MaterializeOptions {
  /// Run the collection ordering optimizer (paper §4). When false, the
  /// user-given (definition) order is kept — appropriate when predicates
  /// have a known inclusion structure, per the paper.
  bool use_ordering = false;
  /// Explicit order override (e.g. a random baseline order in benches).
  /// Takes precedence over use_ordering when non-empty.
  std::vector<size_t> explicit_order;
  ThreadPool* pool = nullptr;
};

/// A fully materialized view collection.
struct MaterializedCollection {
  std::string name;
  std::string base_graph;
  /// Views in execution order; view_names[t] is the definition name of the
  /// view at position t, order[t] its index in the definition.
  std::vector<std::string> view_names;
  std::vector<size_t> order;
  EdgeDifferenceStream diffs;
  /// |GV_t| per position and |δC_t| per position.
  std::vector<uint64_t> view_sizes;
  std::vector<uint64_t> diff_sizes;
  uint64_t total_diffs = 0;
  /// How the execution order was chosen ("ordered", "explicit", "identity")
  /// and the optimizer's estimated difference-set sizes: ds under the
  /// chosen order (== total_diffs) and under the user-given identity order.
  /// EXPLAIN reports both; identity_ds == total_diffs when no reordering
  /// happened.
  std::string order_source = "identity";
  uint64_t identity_ds = 0;
  /// Collection creation time (the paper's CCT) and the ordering share.
  double creation_seconds = 0;
  double ordering_seconds = 0;

  // --- Incremental maintenance state (streaming mutations) ---------------
  /// Per-view membership predicates in *definition* order (the predicate of
  /// the view at execution position t is predicates[order[t]]), retained so
  /// touched edges can be re-evaluated after a mutation batch. Programmatic
  /// collections retain their closures here; the compiled state holds
  /// column references into the base graph's property tables, which are
  /// append-stable — so it stays valid across mutation epochs.
  std::vector<std::function<bool(EdgeId)>> predicates;
  /// For GVDL-defined collections, the compiled batch mask programs
  /// (definition order). When non-empty the maintainer re-evaluates touched
  /// edges word-at-a-time through these instead of per-edge closures.
  std::vector<gvdl::BatchPredicateProgram> programs;
  /// The EBM the collection was materialized from, kept alive for in-place
  /// row updates. Null for diff-batch collections (not maintainable).
  std::shared_ptr<EdgeBooleanMatrix> ebm;
  /// The graph mutation epoch this materialization reflects.
  uint64_t graph_epoch = 0;

  /// True when the collection can be incrementally maintained through
  /// UpdateCollectionForMutations (predicate-defined; EBM retained).
  bool maintainable() const { return ebm != nullptr; }

  size_t num_views() const { return view_names.size(); }
};

/// Incrementally refreshes a maintainable collection after a mutation batch
/// on its base graph: re-evaluates every view predicate on the touched
/// edges only, patches the retained EBM in place (growing it for appended
/// edges), rewrites exactly those edges' difference-stream entries, and
/// refreshes the per-view size/diff metadata. The resulting collection is
/// bit-identical to a from-scratch rematerialization over the mutated graph
/// under the same execution order, at O(|touched| × views) predicate cost.
/// `touched_edges` must be sorted and deduplicated (MutationEffects
/// provides this). Fails on non-maintainable collections.
Status UpdateCollectionForMutations(MaterializedCollection* mc,
                                    const PropertyGraph& graph,
                                    const std::vector<EdgeId>& touched_edges);

/// Materializes a GVDL-defined collection over `graph`.
StatusOr<MaterializedCollection> MaterializeCollection(
    const PropertyGraph& graph, const gvdl::ViewCollectionDef& def,
    const MaterializeOptions& options);

/// Materializes a programmatically defined collection (arbitrary C++ edge
/// predicates, e.g. community-removal perturbations).
StatusOr<MaterializedCollection> MaterializeCollectionWith(
    const PropertyGraph& graph, const std::string& name,
    const std::vector<std::string>& view_names,
    const std::vector<std::function<bool(EdgeId)>>& predicates,
    const MaterializeOptions& options);

/// Materializes a collection directly from explicit per-view difference
/// batches (used by Table 2's controlled random-perturbation workloads
/// where views are not predicate-defined).
MaterializedCollection CollectionFromDiffBatches(
    const std::string& name, const std::string& base_graph,
    std::vector<std::vector<EdgeDiff>> batches);

/// Materializes a single filtered view as a standalone subgraph: same
/// nodes, filtered edges with their properties. Enables views-over-views.
StatusOr<PropertyGraph> MaterializeFilteredView(
    const PropertyGraph& graph, const gvdl::ExprPtr& predicate,
    ThreadPool* pool);

}  // namespace gs::views

#endif  // GRAPHSURGE_VIEWS_COLLECTION_H_
