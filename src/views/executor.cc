#include "views/executor.h"

#include <iomanip>
#include <memory>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace_event.h"
#include "differential/arrcache.h"
#include "views/engine.h"

namespace gs::views {

namespace {

namespace dd = ::gs::differential;
using analytics::VertexValue;
using detail::Engine;

// Per-key difference of two monotone op_nanos snapshots (after − before).
std::map<std::string, uint64_t> OpNanosDelta(
    const std::map<std::string, uint64_t>& after,
    const std::map<std::string, uint64_t>& before) {
  std::map<std::string, uint64_t> delta;
  for (const auto& [name, nanos] : after) {
    auto it = before.find(name);
    const uint64_t prev = it == before.end() ? 0 : it->second;
    if (nanos > prev) delta[name] = nanos - prev;
  }
  return delta;
}

}  // namespace

std::string ExecutionResult::Profile() const {
  std::set<std::string> op_set;
  for (const ViewRunStats& v : per_view) {
    for (const auto& [name, _] : v.op_nanos) op_set.insert(name);
  }
  std::vector<std::string> ops(op_set.begin(), op_set.end());

  std::ostringstream out;
  out << std::fixed;
  auto ms = [](uint64_t nanos) { return static_cast<double>(nanos) / 1e6; };

  out << std::left << std::setw(6) << "view" << std::setw(9) << "mode"
      << std::right << std::setw(11) << "ms";
  for (const std::string& op : ops) {
    out << std::setw(std::max<int>(11, static_cast<int>(op.size()) + 2)) << op;
  }
  out << "\n";

  std::map<std::string, uint64_t> totals;
  double total_view_seconds = 0;
  for (size_t i = 0; i < per_view.size(); ++i) {
    const ViewRunStats& v = per_view[i];
    total_view_seconds += v.seconds;
    out << std::left << std::setw(6) << i << std::setw(9)
        << (v.ran_scratch ? "scratch" : "diff") << std::right
        << std::setprecision(3) << std::setw(11) << v.seconds * 1e3;
    for (const std::string& op : ops) {
      auto it = v.op_nanos.find(op);
      const uint64_t nanos = it == v.op_nanos.end() ? 0 : it->second;
      totals[op] += nanos;
      out << std::setw(std::max<int>(11, static_cast<int>(op.size()) + 2))
          << ms(nanos);
    }
    out << "\n";
  }

  out << std::left << std::setw(6) << "TOTAL" << std::setw(9) << ""
      << std::right << std::setw(11) << total_view_seconds * 1e3;
  uint64_t op_total_nanos = 0;
  for (const std::string& op : ops) {
    op_total_nanos += totals[op];
    out << std::setw(std::max<int>(11, static_cast<int>(op.size()) + 2))
        << ms(totals[op]);
  }
  out << "\n";

  out << std::setprecision(3) << "end_to_end_ms=" << total_seconds * 1e3
      << " operator_ms=" << ms(op_total_nanos)
      << " views=" << per_view.size() << " splits=" << num_splits
      << " updates=" << engine_stats.updates_published
      << " exchanged_bytes=" << engine_stats.exchanged_bytes
      << " arrangement_probes=" << engine_stats.arrangement_probes
      << " spine_merges=" << engine_stats.trace_spine_merges << "\n";
  return out.str();
}

StatusOr<ExecutionResult> RunOnCollection(
    const analytics::Computation& computation, const PropertyGraph& graph,
    const MaterializedCollection& collection,
    const ExecutionOptions& options) {
  ExecutionResult result;
  result.strategy = options.strategy;
  result.chunk_size = options.chunk_size;
  const size_t k = collection.num_views();
  if (k == 0) return result;

  // Resolve every edge once; views reference edges by id.
  std::vector<WeightedEdge> resolved(graph.num_edges());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    resolved[e] = graph.ResolveWeighted(e, options.weight_column);
  }

  // Current view contents, maintained by applying the difference stream —
  // needed to seed scratch runs.
  std::vector<bool> present(graph.num_edges(), false);

  splitting::AdaptiveSplitter splitter(options.chunk_size);
  std::unique_ptr<Engine> engine;

  // Per-chunk decisions (strategy). For fixed strategies every chunk is
  // the same; adaptive consults the cost models. Each decision is recorded
  // (with the predictions it compared) for EXPLAIN.
  auto chunk_scratch_decision = [&](size_t chunk_begin,
                                    size_t chunk_end) -> bool {
    ChunkDecision decision;
    decision.begin = chunk_begin;
    decision.end = chunk_end;
    switch (options.strategy) {
      case splitting::Strategy::kDiffOnly:
        break;
      case splitting::Strategy::kScratch:
        decision.scratch = true;
        break;
      case splitting::Strategy::kAdaptive: {
        std::vector<uint64_t> view_sizes(
            collection.view_sizes.begin() + chunk_begin,
            collection.view_sizes.begin() + chunk_end);
        std::vector<uint64_t> diff_sizes(
            collection.diff_sizes.begin() + chunk_begin,
            collection.diff_sizes.begin() + chunk_end);
        splitting::ChunkPrediction prediction;
        decision.scratch = splitter.ChunkShouldRunScratch(
            view_sizes, diff_sizes, &prediction);
        decision.from_model = prediction.models_ready;
        decision.predicted_scratch_seconds = prediction.scratch_seconds;
        decision.predicted_diff_seconds = prediction.diff_seconds;
        break;
      }
    }
    result.chunk_decisions.push_back(decision);
    return decision.scratch;
  };

  // Folds a finished engine's work counters into the result (called before
  // a split discards the instance and once at the end).
  auto harvest = [&result](Engine* e) {
    if (e == nullptr) return;
    result.engine_stats.Merge(e->dataflow.AggregatedStats());
    std::vector<uint64_t> events = e->dataflow.PerWorkerEvents();
    if (result.per_worker_events.size() < events.size()) {
      result.per_worker_events.resize(events.size(), 0);
    }
    for (size_t i = 0; i < events.size(); ++i) {
      result.per_worker_events[i] += events[i];
    }
  };

  Timer total_timer;
  size_t t = 0;
  while (t < k) {
    // Determine the extent of this decision chunk and its strategy.
    size_t chunk_end;
    bool scratch;
    if (options.strategy == splitting::Strategy::kAdaptive && t == 0) {
      chunk_end = 1;
      scratch = true;  // bootstrap: GV1 from scratch
      result.chunk_decisions.push_back({t, chunk_end, scratch, false, 0, 0});
    } else if (options.strategy == splitting::Strategy::kAdaptive && t == 1) {
      chunk_end = 2;
      scratch = false;  // bootstrap: GV2 differentially
      result.chunk_decisions.push_back({t, chunk_end, scratch, false, 0, 0});
    } else {
      chunk_end = std::min(k, t + options.chunk_size);
      scratch = chunk_scratch_decision(t, chunk_end);
    }

    for (; t < chunk_end; ++t) {
      const std::vector<EdgeDiff>& view_diffs = collection.diffs.ViewDiffs(t);
      for (const EdgeDiff& d : view_diffs) {
        present[d.edge] = d.diff > 0;
      }

      // The very first view on a fresh engine is always a full feed; treat
      // a diff-strategy first view as a (free) scratch run of its diffs.
      bool need_new_engine = scratch || engine == nullptr;

      GS_TRACE_SPAN_V("executor", need_new_engine ? "view_scratch" : "view_diff",
                      static_cast<uint32_t>(t));
      Timer view_timer;
      ViewRunStats stats;
      // The engine's op_nanos grow monotonically across Steps; the delta
      // over this view's Step is the view's per-operator attribution.
      std::map<std::string, uint64_t> ops_before;
      if (need_new_engine) {
        harvest(engine.get());
        engine = std::make_unique<Engine>(computation, options.dataflow);
        uint64_t fed = 0;
        for (EdgeId e = 0; e < graph.num_edges(); ++e) {
          if (present[e]) {
            engine->Send(resolved[e], 1);
            ++fed;
          }
        }
        GS_RETURN_IF_ERROR(engine->Step());
        stats.ran_scratch = true;
        stats.input_size = fed;
      } else {
        ops_before = engine->dataflow.AggregatedStats().AggregatedOpNanos();
        for (const EdgeDiff& d : view_diffs) {
          engine->Send(resolved[d.edge], d.diff);
        }
        GS_RETURN_IF_ERROR(engine->Step());
        stats.ran_scratch = false;
        stats.input_size = view_diffs.size();
      }
      stats.op_nanos = OpNanosDelta(
          engine->dataflow.AggregatedStats().AggregatedOpNanos(), ops_before);
      stats.seconds = view_timer.Seconds();
      stats.view_size = collection.view_sizes[t];
      stats.estimated_diffs = collection.diff_sizes[t];
      uint32_t engine_version = engine->dataflow.current_version() - 1;
      stats.output_diffs =
          dd::UpdateMagnitude(engine->VersionDiffs(engine_version));

      // The cost models learn from the *measured* input sizes in stats —
      // the same numbers EXPLAIN later shows next to the estimates.
      if (stats.ran_scratch) {
        if (t > 0) ++result.num_splits;
        splitter.RecordScratch(stats.input_size, stats.seconds);
      } else {
        splitter.RecordDifferential(stats.input_size, stats.seconds);
      }

      if (options.capture_results) {
        analytics::ResultMap m;
        for (const auto& u : engine->AccumulatedAt(engine_version)) {
          if (u.diff != 1) {
            return Status::Internal(
                "non-unit multiplicity in computation output");
          }
          m[u.data.first] = u.data.second;
        }
        result.results.push_back(std::move(m));
      }
      // Registry writes once per view, after the measured region.
      static metrics::Counter* views_run =
          metrics::Registry::Global().GetCounter("gs_executor_views_run");
      static metrics::Counter* scratch_runs =
          metrics::Registry::Global().GetCounter("gs_executor_scratch_runs");
      static metrics::Histogram* view_nanos =
          metrics::Registry::Global().GetHistogram("gs_executor_view_nanos");
      static metrics::Histogram* input_diffs =
          metrics::Registry::Global().GetHistogram(
              "gs_executor_view_input_diffs");
      static metrics::Histogram* output_diffs =
          metrics::Registry::Global().GetHistogram(
              "gs_executor_view_output_diffs");
      views_run->Increment();
      if (stats.ran_scratch) scratch_runs->Increment();
      view_nanos->Observe(static_cast<uint64_t>(stats.seconds * 1e9));
      // Actual per-view |δC| telemetry: input magnitude fed to the engine
      // (full |GV| for a scratch run) and output difference-set magnitude.
      input_diffs->Observe(stats.input_size);
      output_diffs->Observe(stats.output_diffs);
      result.per_view.push_back(stats);
    }
  }
  harvest(engine.get());
  result.total_seconds = total_timer.Seconds();
  return result;
}

StatusOr<analytics::ResultMap> RunOnGraph(
    const analytics::Computation& computation, const PropertyGraph& graph,
    const ExecutionOptions& options) {
  // Single-version runs qualify for the process-level arrangement cache:
  // one transaction per run, builder or reader role decided by Begin. The
  // tag captures everything that shapes the dataflow and its arrangement
  // contents beyond the graph itself (the scope covers the graph).
  dd::DataflowOptions dopts = options.dataflow;
  std::shared_ptr<dd::ArrCacheTxn> txn;
  if (!options.arrangement_cache_scope.empty()) {
    const std::string tag = computation.cache_tag() + "/w" +
                            std::to_string(dopts.num_workers) + "/c" +
                            std::to_string(options.weight_column) + "/a" +
                            (dopts.use_arrangements ? "1" : "0");
    txn = dd::ArrangementCache::Global().Begin(
        options.arrangement_cache_scope, tag);
    dopts.arrcache = txn;
  }
  Engine engine(computation, dopts);
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (!graph.edge_alive(e)) continue;
    engine.Send(graph.ResolveWeighted(e, options.weight_column), 1);
  }
  GS_RETURN_IF_ERROR(engine.Step());
  if (txn != nullptr) txn->Commit();
  analytics::ResultMap m;
  for (const auto& u : engine.AccumulatedAt(0)) {
    if (u.diff != 1) {
      return Status::Internal("non-unit multiplicity in computation output");
    }
    m[u.data.first] = u.data.second;
  }
  return m;
}

}  // namespace gs::views
