// The differential computation instance shared by the batch executor
// (executor.cc) and the live view-collection runner (live.h): a
// ShardedDataflow with the computation's dataflow built once per worker
// shard, hash-partitioned edge inputs, and consolidated cross-shard result
// captures.
#ifndef GRAPHSURGE_VIEWS_ENGINE_H_
#define GRAPHSURGE_VIEWS_ENGINE_H_

#include <vector>

#include "algorithms/computation.h"
#include "common/hash.h"
#include "differential/differential.h"
#include "graph/types.h"

namespace gs::views::detail {

/// One differential computation instance. A "split" (scratch run) discards
/// the previous instance and seeds a new one with the full view.
///
/// The instance is a ShardedDataflow of options.num_workers worker shards;
/// the computation's dataflow is built once per shard (Computations are pure
/// builders) and input edges are hash-partitioned across the shards'
/// inputs. Results live wherever the final keyed operator placed them, so
/// per-version output is the consolidated union of all shards' captures —
/// byte-identical to a single-worker run (DESIGN.md §3.1; the consolidated
/// per-version difference set is execution-order independent).
struct Engine {
  differential::ShardedDataflow dataflow;
  std::vector<differential::Input<WeightedEdge>> edges;
  std::vector<differential::CaptureOp<analytics::VertexValue>*> captures;

  Engine(const analytics::Computation& computation,
         const differential::DataflowOptions& options)
      : dataflow(options) {
    edges.reserve(dataflow.num_workers());
    captures.reserve(dataflow.num_workers());
    for (size_t w = 0; w < dataflow.num_workers(); ++w) {
      edges.emplace_back(dataflow.worker(w));
      captures.push_back(differential::Capture(
          computation.GraphAnalytics(dataflow.worker(w),
                                     edges[w].stream())));
    }
  }

  void Send(const WeightedEdge& edge, differential::Diff diff) {
    edges[dataflow.OwnerOfHash(HashValue(edge))].Send(edge, diff);
  }

  Status Step() { return dataflow.Step(); }

  /// Seals a graph-update epoch on every shard (full trace compaction; see
  /// Dataflow::SealEpoch). Live runs call this after the last view of each
  /// epoch was stepped.
  void SealEpoch() { dataflow.SealEpoch(); }

  differential::Batch<analytics::VertexValue> VersionDiffs(
      uint32_t version) const {
    differential::Batch<analytics::VertexValue> all;
    for (const auto* capture : captures) {
      differential::Batch<analytics::VertexValue> b =
          capture->VersionDiffs(version);
      all.insert(all.end(), b.begin(), b.end());
    }
    differential::Consolidate(&all);
    return all;
  }

  differential::Batch<analytics::VertexValue> AccumulatedAt(
      uint32_t version) const {
    differential::Batch<analytics::VertexValue> all;
    for (const auto* capture : captures) {
      differential::Batch<analytics::VertexValue> b =
          capture->AccumulatedAt(version);
      all.insert(all.end(), b.begin(), b.end());
    }
    differential::Consolidate(&all);
    return all;
  }
};

}  // namespace gs::views::detail

#endif  // GRAPHSURGE_VIEWS_ENGINE_H_
