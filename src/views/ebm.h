// The Edge Boolean Matrix (EBM, paper §3.2 step 1): for each edge of the
// base graph and each view of a collection, whether the edge satisfies the
// view's predicate. Stored column-major as word-backed bitsets so that
// collection ordering's Hamming distances are XOR+popcount scans and the
// batch evaluator (gvdl/batch_eval.h) can write 64-edge selection-mask
// words directly into the columns.
#ifndef GRAPHSURGE_VIEWS_EBM_H_
#define GRAPHSURGE_VIEWS_EBM_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bitset.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "graph/graph.h"
#include "gvdl/ast.h"
#include "gvdl/batch_eval.h"

namespace gs::views {

/// Column-major edge × view bit matrix.
class EdgeBooleanMatrix {
 public:
  EdgeBooleanMatrix(size_t num_edges, size_t num_views)
      : num_edges_(num_edges),
        num_views_(num_views),
        words_per_column_((num_edges + 63) / 64),
        columns_(num_views, Bitset(num_edges)) {}

  /// Evaluates GVDL predicates over every edge in parallel (this is the
  /// embarrassingly parallel TD dataflow of the paper). Predicates are
  /// lowered to batch mask programs; there is no per-edge dispatch.
  static StatusOr<EdgeBooleanMatrix> Compute(
      const PropertyGraph& graph,
      const std::vector<gvdl::ExprPtr>& predicates, ThreadPool* pool);

  /// Same, from already-compiled (and Prepared) batch programs — lets
  /// callers that retain the programs for incremental maintenance avoid a
  /// second compilation.
  static EdgeBooleanMatrix ComputeFromPrograms(
      const PropertyGraph& graph,
      const std::vector<gvdl::BatchPredicateProgram>& programs,
      ThreadPool* pool);

  /// Same, with arbitrary programmatic predicates (used by applications
  /// whose view definitions are not expressible in GVDL, e.g. community
  /// bitmask combinations). Work is chunked by 64-edge words: each column
  /// word is assembled in a register and stored once.
  static EdgeBooleanMatrix ComputeWith(
      const PropertyGraph& graph,
      const std::vector<std::function<bool(EdgeId)>>& predicates,
      ThreadPool* pool);

  size_t num_edges() const { return num_edges_; }
  size_t num_views() const { return num_views_; }
  size_t words_per_column() const { return words_per_column_; }

  bool Get(EdgeId edge, size_t view) const {
    return columns_[view].Test(edge);
  }
  void Set(EdgeId edge, size_t view, bool value) {
    columns_[view].SetTo(edge, value);
  }

  /// Whole-word access (bit j of word w is edge 64w + j). SetColumnWord
  /// requires bits at or beyond num_edges() to be zero — the batch
  /// evaluator's mask ABI guarantees this.
  uint64_t ColumnWord(size_t view, size_t w) const {
    return columns_[view].word(w);
  }
  void SetColumnWord(size_t view, size_t w, uint64_t value) {
    columns_[view].set_word(w, value);
  }

  /// Grows the matrix to `num_edges` rows (new rows all-zero). Used by the
  /// incremental maintainer when a mutation batch appends edges; shrinking
  /// is not supported (removed edges are tombstoned, their rows cleared).
  void Resize(size_t num_edges);

  /// Number of edges in view `view` (|GV|).
  uint64_t ColumnOnes(size_t view) const { return columns_[view].CountOnes(); }

  /// Hamming distance between two view columns (or against the implicit
  /// zero column when an argument is kZeroColumn).
  static constexpr size_t kZeroColumn = SIZE_MAX;
  uint64_t HammingDistance(size_t view_a, size_t view_b) const;

  /// Total difference-set size ds(B, σ) for the given column order: for
  /// each edge row, one difference per 0→1 or 1→0 alternation reading the
  /// row left-to-right starting from an implicit 0 (paper §4).
  uint64_t DifferenceCount(const std::vector<size_t>& order) const;

 private:
  size_t num_edges_;
  size_t num_views_;
  size_t words_per_column_;
  std::vector<Bitset> columns_;
};

}  // namespace gs::views

#endif  // GRAPHSURGE_VIEWS_EBM_H_
