// The Edge Boolean Matrix (EBM, paper §3.2 step 1): for each edge of the
// base graph and each view of a collection, whether the edge satisfies the
// view's predicate. Stored column-major as bitsets so that collection
// ordering's Hamming distances are XOR+popcount scans.
#ifndef GRAPHSURGE_VIEWS_EBM_H_
#define GRAPHSURGE_VIEWS_EBM_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "graph/graph.h"
#include "gvdl/ast.h"

namespace gs::views {

/// Column-major edge × view bit matrix.
class EdgeBooleanMatrix {
 public:
  EdgeBooleanMatrix(size_t num_edges, size_t num_views)
      : num_edges_(num_edges),
        num_views_(num_views),
        words_per_column_((num_edges + 63) / 64),
        columns_(num_views,
                 std::vector<uint64_t>(words_per_column_, 0)) {}

  /// Evaluates GVDL predicates over every edge in parallel (this is the
  /// embarrassingly parallel TD dataflow of the paper).
  static StatusOr<EdgeBooleanMatrix> Compute(
      const PropertyGraph& graph,
      const std::vector<gvdl::ExprPtr>& predicates, ThreadPool* pool);

  /// Same, with arbitrary programmatic predicates (used by applications
  /// whose view definitions are not expressible in GVDL, e.g. community
  /// bitmask combinations).
  static EdgeBooleanMatrix ComputeWith(
      const PropertyGraph& graph,
      const std::vector<std::function<bool(EdgeId)>>& predicates,
      ThreadPool* pool);

  size_t num_edges() const { return num_edges_; }
  size_t num_views() const { return num_views_; }

  bool Get(EdgeId edge, size_t view) const {
    return (columns_[view][edge >> 6] >> (edge & 63)) & 1;
  }
  void Set(EdgeId edge, size_t view, bool value) {
    uint64_t mask = 1ULL << (edge & 63);
    if (value) {
      columns_[view][edge >> 6] |= mask;
    } else {
      columns_[view][edge >> 6] &= ~mask;
    }
  }

  /// Grows the matrix to `num_edges` rows (new rows all-zero). Used by the
  /// incremental maintainer when a mutation batch appends edges; shrinking
  /// is not supported (removed edges are tombstoned, their rows cleared).
  void Resize(size_t num_edges);

  /// Number of edges in view `view` (|GV|).
  uint64_t ColumnOnes(size_t view) const;

  /// Hamming distance between two view columns (or against the implicit
  /// zero column when an argument is kZeroColumn).
  static constexpr size_t kZeroColumn = SIZE_MAX;
  uint64_t HammingDistance(size_t view_a, size_t view_b) const;

  /// Total difference-set size ds(B, σ) for the given column order: for
  /// each edge row, one difference per 0→1 or 1→0 alternation reading the
  /// row left-to-right starting from an implicit 0 (paper §4).
  uint64_t DifferenceCount(const std::vector<size_t>& order) const;

 private:
  size_t num_edges_;
  size_t num_views_;
  size_t words_per_column_;
  std::vector<std::vector<uint64_t>> columns_;
};

}  // namespace gs::views

#endif  // GRAPHSURGE_VIEWS_EBM_H_
