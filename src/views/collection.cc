#include "views/collection.h"

#include <unordered_map>

#include "common/logging.h"
#include "common/timer.h"
#include "gvdl/predicate.h"
#include "ordering/optimizer.h"

namespace gs::views {

namespace {

// Shared tail of materialization: order → diff stream → metadata. Takes the
// EBM by value and retains it (with `predicates`, definition order) on the
// result so the collection stays incrementally maintainable.
MaterializedCollection Finalize(const PropertyGraph& graph,
                                std::string name,
                                std::vector<std::string> def_names,
                                EdgeBooleanMatrix ebm_in,
                                std::vector<std::function<bool(EdgeId)>>
                                    predicates,
                                const MaterializeOptions& options,
                                Timer* timer) {
  MaterializedCollection mc;
  mc.name = std::move(name);
  mc.ebm = std::make_shared<EdgeBooleanMatrix>(std::move(ebm_in));
  mc.predicates = std::move(predicates);
  mc.graph_epoch = graph.mutation_epoch();
  const EdgeBooleanMatrix& ebm = *mc.ebm;

  double ordering_seconds = 0;
  std::vector<size_t> order;
  uint64_t identity_ds = 0;
  bool identity_ds_known = false;
  if (!options.explicit_order.empty()) {
    order = options.explicit_order;
    GS_CHECK(order.size() == ebm.num_views());
    mc.order_source = "explicit";
    identity_ds = ebm.DifferenceCount(ordering::IdentityOrder(ebm.num_views()));
    identity_ds_known = true;
  } else if (options.use_ordering) {
    ordering::OrderingResult ores =
        ordering::OrderCollection(ebm, options.pool);
    order = std::move(ores.order);
    ordering_seconds = ores.seconds;
    mc.order_source = "ordered";
    identity_ds = ores.identity_difference_count;
    identity_ds_known = true;
  } else {
    order = ordering::IdentityOrder(ebm.num_views());
  }

  mc.order = order;
  mc.view_names.reserve(order.size());
  for (size_t idx : order) mc.view_names.push_back(def_names[idx]);

  mc.diffs = EdgeDifferenceStream::FromMatrix(ebm, order, options.pool);
  mc.view_sizes.reserve(order.size());
  mc.diff_sizes.reserve(order.size());
  for (size_t t = 0; t < order.size(); ++t) {
    mc.view_sizes.push_back(ebm.ColumnOnes(order[t]));
    mc.diff_sizes.push_back(mc.diffs.DiffSize(t));
  }
  mc.total_diffs = mc.diffs.TotalDiffs();
  mc.identity_ds = identity_ds_known ? identity_ds : mc.total_diffs;
  mc.ordering_seconds = ordering_seconds;
  mc.creation_seconds = timer->Seconds();
  return mc;
}

}  // namespace

StatusOr<MaterializedCollection> MaterializeCollection(
    const PropertyGraph& graph, const gvdl::ViewCollectionDef& def,
    const MaterializeOptions& options) {
  Timer timer;
  std::vector<std::string> names;
  std::vector<gvdl::BatchPredicateProgram> programs;
  programs.reserve(def.views.size());
  for (const auto& member : def.views) {
    GS_ASSIGN_OR_RETURN(
        gvdl::BatchPredicateProgram prog,
        gvdl::BatchPredicateProgram::Compile(member.predicate, graph));
    programs.push_back(std::move(prog));
    names.push_back(member.name);
  }
  EdgeBooleanMatrix ebm =
      EdgeBooleanMatrix::ComputeFromPrograms(graph, programs, options.pool);
  // The compiled programs are retained on the collection so incremental
  // maintenance re-evaluates touched edges word-at-a-time.
  MaterializedCollection mc =
      Finalize(graph, def.name, std::move(names), std::move(ebm), {}, options,
               &timer);
  mc.programs = std::move(programs);
  mc.base_graph = def.on;
  return mc;
}

StatusOr<MaterializedCollection> MaterializeCollectionWith(
    const PropertyGraph& graph, const std::string& name,
    const std::vector<std::string>& view_names,
    const std::vector<std::function<bool(EdgeId)>>& predicates,
    const MaterializeOptions& options) {
  if (view_names.size() != predicates.size()) {
    return Status::InvalidArgument("view_names/predicates size mismatch");
  }
  if (predicates.empty()) {
    return Status::InvalidArgument("collection must have at least one view");
  }
  Timer timer;
  EdgeBooleanMatrix ebm =
      EdgeBooleanMatrix::ComputeWith(graph, predicates, options.pool);
  return Finalize(graph, name, view_names, std::move(ebm), predicates,
                  options, &timer);
}

MaterializedCollection CollectionFromDiffBatches(
    const std::string& name, const std::string& base_graph,
    std::vector<std::vector<EdgeDiff>> batches) {
  MaterializedCollection mc;
  mc.name = name;
  mc.base_graph = base_graph;

  uint64_t current_size = 0;
  for (size_t t = 0; t < batches.size(); ++t) {
    int64_t delta = 0;
    for (const EdgeDiff& d : batches[t]) delta += d.diff;
    current_size = static_cast<uint64_t>(
        static_cast<int64_t>(current_size) + delta);
    mc.view_sizes.push_back(current_size);
    mc.diff_sizes.push_back(batches[t].size());
    mc.total_diffs += batches[t].size();
    mc.view_names.push_back("v" + std::to_string(t));
    mc.order.push_back(t);
  }
  mc.diffs = EdgeDifferenceStream::FromBatches(std::move(batches));
  mc.identity_ds = mc.total_diffs;
  return mc;
}

Status UpdateCollectionForMutations(MaterializedCollection* mc,
                                    const PropertyGraph& graph,
                                    const std::vector<EdgeId>& touched_edges) {
  if (!mc->maintainable()) {
    return Status::FailedPrecondition(
        "collection '" + mc->name +
        "' is not maintainable (no retained predicates/EBM)");
  }
  size_t num_views =
      mc->programs.empty() ? mc->predicates.size() : mc->programs.size();
  if (num_views != mc->ebm->num_views()) {
    return Status::Internal("collection '" + mc->name +
                            "': predicate/EBM view count mismatch");
  }
  EdgeBooleanMatrix& ebm = *mc->ebm;
  if (graph.num_edges() > ebm.num_edges()) ebm.Resize(graph.num_edges());

  if (!mc->programs.empty()) {
    // Word path: coalesce the (sorted) touched edges into runs of adjacent
    // 64-edge words and re-evaluate whole words through the batch programs.
    // Untouched lanes recompute to their current values (predicates are
    // deterministic and their inputs unchanged), so whole-word stores are
    // equivalent to per-bit updates.
    for (gvdl::BatchPredicateProgram& prog : mc->programs) {
      prog.Prepare(graph);
    }
    gvdl::BatchEvalScratch scratch;
    std::vector<uint64_t> buf;
    size_t i = 0;
    while (i < touched_edges.size()) {
      size_t w0 = touched_edges[i] >> 6;
      size_t w1 = w0 + 1;
      size_t j = i + 1;
      for (; j < touched_edges.size(); ++j) {
        size_t w = touched_edges[j] >> 6;
        if (w >= w1 + 1) break;  // gap: start a new run
        w1 = std::max(w1, w + 1);
      }
      size_t begin = w0 * 64;
      size_t end = std::min(graph.num_edges(), w1 * 64);
      buf.resize(w1 - w0);
      for (size_t v = 0; v < mc->programs.size(); ++v) {
        mc->programs[v].EvalEdges(graph, begin, end, buf.data(), scratch);
        for (size_t w = w0; w < w1; ++w) {
          // Tombstoned edges leave every view.
          ebm.SetColumnWord(v, w, buf[w - w0] & graph.edge_alive_word(w));
        }
      }
      i = j;
    }
  } else {
    // Per-edge fallback for programmatic (closure-defined) collections.
    for (EdgeId e : touched_edges) {
      bool alive = graph.edge_alive(e);
      for (size_t v = 0; v < mc->predicates.size(); ++v) {
        ebm.Set(e, v, alive && mc->predicates[v](e));
      }
    }
  }

  mc->diffs.UpdateEdges(touched_edges, ebm, mc->order);

  // Refresh metadata: sizes change with membership, the order does not.
  for (size_t t = 0; t < mc->order.size(); ++t) {
    mc->view_sizes[t] = ebm.ColumnOnes(mc->order[t]);
    mc->diff_sizes[t] = mc->diffs.DiffSize(t);
  }
  mc->total_diffs = mc->diffs.TotalDiffs();
  mc->graph_epoch = graph.mutation_epoch();
  return Status::Ok();
}

StatusOr<PropertyGraph> MaterializeFilteredView(
    const PropertyGraph& graph, const gvdl::ExprPtr& predicate,
    ThreadPool* pool) {
  GS_ASSIGN_OR_RETURN(gvdl::CompiledEdgePredicate compiled,
                      gvdl::CompiledEdgePredicate::Compile(predicate, graph));
  PropertyGraph view;
  view.AddNodes(graph.num_nodes());
  // Copy node property schema + rows.
  const PropertyTable& nt = graph.node_properties();
  for (size_t c = 0; c < nt.num_columns(); ++c) {
    GS_RETURN_IF_ERROR(view.node_properties().AddColumn(
        nt.column_name(c), nt.column(c).type()));
  }
  for (size_t r = 0; r < graph.num_nodes(); ++r) {
    std::vector<PropertyValue> row;
    row.reserve(nt.num_columns());
    for (size_t c = 0; c < nt.num_columns(); ++c) row.push_back(nt.Get(r, c));
    if (nt.num_columns() > 0) {
      GS_RETURN_IF_ERROR(view.node_properties().AppendRow(row));
    }
  }
  const PropertyTable& et = graph.edge_properties();
  for (size_t c = 0; c < et.num_columns(); ++c) {
    GS_RETURN_IF_ERROR(view.edge_properties().AddColumn(
        et.column_name(c), et.column(c).type()));
  }
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    if (!graph.edge_alive(e) || !compiled.Evaluate(e)) continue;
    GS_RETURN_IF_ERROR(view.AddEdge(graph.edge(e).src, graph.edge(e).dst)
                           .status());
    if (et.num_columns() > 0) {
      std::vector<PropertyValue> row;
      row.reserve(et.num_columns());
      for (size_t c = 0; c < et.num_columns(); ++c) row.push_back(et.Get(e, c));
      GS_RETURN_IF_ERROR(view.edge_properties().AppendRow(row));
    }
  }
  return view;
}

}  // namespace gs::views
