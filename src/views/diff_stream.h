// Edge difference streams (paper §3.2 step 3): the materialized form of a
// view collection. View t's difference set δC_t holds +1 for edges that
// enter at t and -1 for edges that leave, so that the accumulated stream at
// t is exactly view GV_t.
#ifndef GRAPHSURGE_VIEWS_DIFF_STREAM_H_
#define GRAPHSURGE_VIEWS_DIFF_STREAM_H_

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "graph/types.h"
#include "views/ebm.h"

namespace gs::views {

/// One edge difference: edge id and ±1.
struct EdgeDiff {
  EdgeId edge;
  int8_t diff;

  friend bool operator==(const EdgeDiff&, const EdgeDiff&) = default;
};

/// The per-view difference sets of a materialized collection.
class EdgeDifferenceStream {
 public:
  /// Materializes the stream from an EBM under a column ordering. Each
  /// edge's contribution is independent (embarrassingly parallel).
  static EdgeDifferenceStream FromMatrix(const EdgeBooleanMatrix& ebm,
                                         const std::vector<size_t>& order,
                                         ThreadPool* pool);

  /// Wraps pre-computed per-view difference batches (controlled-workload
  /// collections that are not predicate-defined, e.g. Table 2's random
  /// perturbations).
  static EdgeDifferenceStream FromBatches(
      std::vector<std::vector<EdgeDiff>> batches);

  size_t num_views() const { return diffs_.size(); }
  const std::vector<EdgeDiff>& ViewDiffs(size_t view) const {
    return diffs_[view];
  }

  /// Incrementally re-derives the rows of `touched_edges` (sorted,
  /// deduplicated EdgeIds) from the *current* contents of `ebm` under
  /// `order`, replacing those edges' entries in every view's difference set.
  /// The result is bit-identical to a fresh FromMatrix over the updated EBM
  /// (entries stay in ascending edge order per view), but costs
  /// O(|touched| × views + Σ|δC_t|) instead of O(edges × views). Only valid
  /// on streams produced by FromMatrix/UpdateEdges (ascending-order
  /// invariant); FromBatches streams are not maintainable.
  void UpdateEdges(const std::vector<EdgeId>& touched_edges,
                   const EdgeBooleanMatrix& ebm,
                   const std::vector<size_t>& order);

  /// |δC_t| of one view / total over the collection (paper's "# Diffs").
  uint64_t DiffSize(size_t view) const { return diffs_[view].size(); }
  uint64_t TotalDiffs() const;

  /// Reconstructs the edge set of view `view` by accumulation (testing and
  /// scratch-execution seeding).
  std::vector<EdgeId> Reconstruct(size_t view) const;

 private:
  std::vector<std::vector<EdgeDiff>> diffs_;
};

}  // namespace gs::views

#endif  // GRAPHSURGE_VIEWS_DIFF_STREAM_H_
