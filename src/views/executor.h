// The Analytics Computation Executor (paper §3.2.2 + §5): runs a
// Computation over every view of a materialized collection, sharing work
// across views differentially, from scratch, or adaptively per the
// collection splitting optimizer.
#ifndef GRAPHSURGE_VIEWS_EXECUTOR_H_
#define GRAPHSURGE_VIEWS_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "algorithms/computation.h"
#include "algorithms/reference.h"
#include "differential/differential.h"
#include "splitting/adaptive.h"
#include "views/collection.h"

namespace gs::views {

struct ExecutionOptions {
  splitting::Strategy strategy = splitting::Strategy::kDiffOnly;
  /// ℓ: adaptive decisions cover this many views at a time (paper §5).
  size_t chunk_size = 10;
  /// Edge property column used as Bellman-Ford/MPSP weight; -1 → weight 1.
  int weight_column = -1;
  /// Engine parameters; dataflow.num_workers > 1 runs every view of the
  /// collection on a sharded multi-worker engine (differential/sharded.h)
  /// with results identical to serial execution.
  differential::DataflowOptions dataflow;
  /// Keep each view's full result (tests and examples; memory-heavy).
  bool capture_results = false;
  /// Non-empty → RunOnGraph shares arrangements through the process-level
  /// arrangement cache (differential/arrcache.h) under this scope. The
  /// scope must identify the graph *content* uniquely process-wide —
  /// api::Graphsurge uses "gs<instance>/<graph>@<epoch>" so mutations and
  /// same-named graphs in other instances never alias. Collection runs
  /// (multi-version) never use the cache regardless of this field.
  std::string arrangement_cache_scope;
};

struct ViewRunStats {
  double seconds = 0;
  bool ran_scratch = false;
  /// Size of the input fed for this view (|GV| for scratch, |δC| for
  /// differential) and of the output difference set produced. These are the
  /// *actual* measured counts; the splitting cost models and EXPLAIN both
  /// consume them (never re-derived from the collection metadata).
  uint64_t input_size = 0;
  uint64_t output_diffs = 0;
  /// The collection's ordering-time estimates for the same view: |GV_t|
  /// from the EBM column and |δC_t| from the difference stream. EXPLAIN
  /// shows estimated_diffs next to the actual input_size.
  uint64_t view_size = 0;
  uint64_t estimated_diffs = 0;
  /// Wall time per operator spent computing this view: the delta of the
  /// engine's op_nanos over this view's Step(), rolled up across worker
  /// shards (DataflowStats::AggregatedOpNanos). Keys are normalized
  /// operator names ("join", "reduce", ...).
  std::map<std::string, uint64_t> op_nanos;
};

/// One splitting decision: the chunk of views it covered, what was chosen,
/// and the cost-model predictions that drove it (meaningful for the
/// adaptive strategy; fixed strategies record predictions of 0 with
/// from_model = false).
struct ChunkDecision {
  size_t begin = 0;
  size_t end = 0;  // exclusive
  bool scratch = false;
  bool from_model = false;
  double predicted_scratch_seconds = 0;
  double predicted_diff_seconds = 0;
};

struct ExecutionResult {
  double total_seconds = 0;
  std::vector<ViewRunStats> per_view;
  /// The strategy and chunking this run used, plus every per-chunk
  /// decision in order — EXPLAIN renders these verbatim.
  splitting::Strategy strategy = splitting::Strategy::kDiffOnly;
  size_t chunk_size = 0;
  std::vector<ChunkDecision> chunk_decisions;
  /// Number of scratch runs after the first view (the paper's "splits").
  size_t num_splits = 0;
  /// Engine work counters summed over all engines used by the run.
  differential::DataflowStats engine_stats;
  /// Scheduler events executed by each worker shard, summed over all
  /// engines — the measured work distribution of a sharded run
  /// (max/mean bounds the achievable multi-worker speedup).
  std::vector<uint64_t> per_worker_events;
  /// Per-view results (only when ExecutionOptions::capture_results).
  std::vector<analytics::ResultMap> results;

  /// Human-readable profiling report: a per-view × per-operator wall-time
  /// table (milliseconds), one row per view plus a TOTAL row, followed by
  /// the run's headline engine counters. The per-operator columns cover the
  /// union of operators seen across views.
  std::string Profile() const;
};

/// Runs `computation` over all views of `collection` (defined over
/// `graph`) with the chosen strategy.
StatusOr<ExecutionResult> RunOnCollection(
    const analytics::Computation& computation, const PropertyGraph& graph,
    const MaterializedCollection& collection,
    const ExecutionOptions& options);

/// Runs `computation` once over a full graph (a single view). Iterative
/// computations still share work across their own iterations.
StatusOr<analytics::ResultMap> RunOnGraph(
    const analytics::Computation& computation, const PropertyGraph& graph,
    const ExecutionOptions& options = ExecutionOptions());

}  // namespace gs::views

#endif  // GRAPHSURGE_VIEWS_EXECUTOR_H_
