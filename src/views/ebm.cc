#include "views/ebm.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/metrics.h"

namespace gs::views {

namespace {

void RecordBuildNanos(std::chrono::steady_clock::time_point start) {
  static auto* build_nanos =
      metrics::Registry::Global().GetCounter("gs_ebm_build_nanos");
  build_nanos->Increment(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
}

}  // namespace

StatusOr<EdgeBooleanMatrix> EdgeBooleanMatrix::Compute(
    const PropertyGraph& graph, const std::vector<gvdl::ExprPtr>& predicates,
    ThreadPool* pool) {
  std::vector<gvdl::BatchPredicateProgram> programs;
  programs.reserve(predicates.size());
  for (const gvdl::ExprPtr& p : predicates) {
    GS_ASSIGN_OR_RETURN(gvdl::BatchPredicateProgram prog,
                        gvdl::BatchPredicateProgram::Compile(p, graph));
    programs.push_back(std::move(prog));
  }
  return ComputeFromPrograms(graph, programs, pool);
}

EdgeBooleanMatrix EdgeBooleanMatrix::ComputeFromPrograms(
    const PropertyGraph& graph,
    const std::vector<gvdl::BatchPredicateProgram>& programs,
    ThreadPool* pool) {
  auto start = std::chrono::steady_clock::now();
  EdgeBooleanMatrix ebm(graph.num_edges(), programs.size());
  bool has_tombstones = graph.num_live_edges() != graph.num_edges();
  auto eval_words = [&](size_t wb, size_t we) {
    size_t begin = wb * 64;
    size_t end = std::min(graph.num_edges(), we * 64);
    if (begin >= end) return;
    gvdl::BatchEvalScratch scratch;
    for (size_t v = 0; v < programs.size(); ++v) {
      programs[v].EvalEdges(graph, begin, end,
                            ebm.columns_[v].word_data() + wb, scratch);
    }
    if (has_tombstones) {
      // Tombstoned edges belong to no view.
      for (size_t w = wb; w < we; ++w) {
        uint64_t alive = graph.edge_alive_word(w);
        if (alive == ~uint64_t{0}) continue;
        for (size_t v = 0; v < programs.size(); ++v) {
          ebm.columns_[v].set_word(w, ebm.columns_[v].word(w) & alive);
        }
      }
    }
  };
  // Shard on 64-edge word boundaries so column words are not shared
  // between threads.
  size_t words = ebm.words_per_column_;
  if (pool != nullptr && pool->num_threads() > 1 && words > 1) {
    pool->ParallelForShards(
        words, [&](size_t, size_t wb, size_t we) { eval_words(wb, we); });
  } else {
    eval_words(0, words);
  }
  RecordBuildNanos(start);
  return ebm;
}

EdgeBooleanMatrix EdgeBooleanMatrix::ComputeWith(
    const PropertyGraph& graph,
    const std::vector<std::function<bool(EdgeId)>>& predicates,
    ThreadPool* pool) {
  auto start = std::chrono::steady_clock::now();
  EdgeBooleanMatrix ebm(graph.num_edges(), predicates.size());
  // Chunked by 64-edge words: each column word is assembled in a register
  // and stored once (no per-edge read-modify-write of the bitset).
  auto eval_words = [&](size_t wb, size_t we) {
    for (size_t v = 0; v < predicates.size(); ++v) {
      Bitset& column = ebm.columns_[v];
      for (size_t w = wb; w < we; ++w) {
        size_t base = w * 64;
        size_t lim = std::min<size_t>(64, graph.num_edges() - base);
        uint64_t alive = graph.edge_alive_word(w);
        uint64_t m = 0;
        for (size_t j = 0; j < lim; ++j) {
          if (((alive >> j) & 1) != 0 && predicates[v](base + j)) {
            m |= uint64_t{1} << j;
          }
        }
        column.set_word(w, m);
      }
    }
  };
  size_t words = ebm.words_per_column_;
  if (pool != nullptr && pool->num_threads() > 1 && words > 1) {
    pool->ParallelForShards(
        words, [&](size_t, size_t wb, size_t we) { eval_words(wb, we); });
  } else {
    eval_words(0, words);
  }
  RecordBuildNanos(start);
  return ebm;
}

void EdgeBooleanMatrix::Resize(size_t num_edges) {
  GS_CHECK(num_edges >= num_edges_);
  num_edges_ = num_edges;
  words_per_column_ = (num_edges + 63) / 64;
  for (Bitset& column : columns_) column.Resize(num_edges);
}

uint64_t EdgeBooleanMatrix::HammingDistance(size_t view_a,
                                            size_t view_b) const {
  if (view_a == kZeroColumn) return ColumnOnes(view_b);
  if (view_b == kZeroColumn) return ColumnOnes(view_a);
  return columns_[view_a].HammingDistance(columns_[view_b]);
}

uint64_t EdgeBooleanMatrix::DifferenceCount(
    const std::vector<size_t>& order) const {
  GS_CHECK(order.size() == num_views_);
  // ds(B, σ) = H(0, c_{σ1}) + Σ H(c_{σi}, c_{σi+1}) — exactly the paper's
  // per-row alternation count, computed column-pairwise.
  if (order.empty()) return 0;
  uint64_t total = ColumnOnes(order[0]);
  for (size_t i = 1; i < order.size(); ++i) {
    total += HammingDistance(order[i - 1], order[i]);
  }
  return total;
}

}  // namespace gs::views
