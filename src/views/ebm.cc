#include "views/ebm.h"

#include <bit>

#include "common/logging.h"
#include "gvdl/predicate.h"

namespace gs::views {

StatusOr<EdgeBooleanMatrix> EdgeBooleanMatrix::Compute(
    const PropertyGraph& graph, const std::vector<gvdl::ExprPtr>& predicates,
    ThreadPool* pool) {
  std::vector<gvdl::CompiledEdgePredicate> compiled;
  compiled.reserve(predicates.size());
  for (const gvdl::ExprPtr& p : predicates) {
    GS_ASSIGN_OR_RETURN(gvdl::CompiledEdgePredicate c,
                        gvdl::CompiledEdgePredicate::Compile(p, graph));
    compiled.push_back(std::move(c));
  }
  EdgeBooleanMatrix ebm(graph.num_edges(), predicates.size());
  auto eval_range = [&](size_t, size_t begin, size_t end) {
    for (size_t v = 0; v < compiled.size(); ++v) {
      std::vector<uint64_t>& column = ebm.columns_[v];
      for (size_t e = begin; e < end; ++e) {
        // Tombstoned edges belong to no view.
        if (graph.edge_alive(e) && compiled[v].Evaluate(e)) {
          column[e >> 6] |= 1ULL << (e & 63);
        }
      }
    }
  };
  // Shard on 64-edge word boundaries so column words are not shared
  // between threads.
  size_t words = ebm.words_per_column_;
  if (pool != nullptr && pool->num_threads() > 1 && words > 1) {
    pool->ParallelForShards(words, [&](size_t s, size_t wb, size_t we) {
      eval_range(s, wb * 64, std::min(graph.num_edges(), we * 64));
    });
  } else {
    eval_range(0, 0, graph.num_edges());
  }
  return ebm;
}

EdgeBooleanMatrix EdgeBooleanMatrix::ComputeWith(
    const PropertyGraph& graph,
    const std::vector<std::function<bool(EdgeId)>>& predicates,
    ThreadPool* pool) {
  EdgeBooleanMatrix ebm(graph.num_edges(), predicates.size());
  auto eval_range = [&](size_t, size_t begin, size_t end) {
    for (size_t v = 0; v < predicates.size(); ++v) {
      std::vector<uint64_t>& column = ebm.columns_[v];
      for (size_t e = begin; e < end; ++e) {
        if (graph.edge_alive(e) && predicates[v](e)) {
          column[e >> 6] |= 1ULL << (e & 63);
        }
      }
    }
  };
  size_t words = ebm.words_per_column_;
  if (pool != nullptr && pool->num_threads() > 1 && words > 1) {
    pool->ParallelForShards(words, [&](size_t s, size_t wb, size_t we) {
      eval_range(s, wb * 64, std::min(graph.num_edges(), we * 64));
    });
  } else {
    eval_range(0, 0, graph.num_edges());
  }
  return ebm;
}

void EdgeBooleanMatrix::Resize(size_t num_edges) {
  GS_CHECK(num_edges >= num_edges_);
  num_edges_ = num_edges;
  words_per_column_ = (num_edges + 63) / 64;
  for (std::vector<uint64_t>& column : columns_) {
    column.resize(words_per_column_, 0);
  }
}

uint64_t EdgeBooleanMatrix::ColumnOnes(size_t view) const {
  uint64_t total = 0;
  for (uint64_t word : columns_[view]) total += std::popcount(word);
  return total;
}

uint64_t EdgeBooleanMatrix::HammingDistance(size_t view_a,
                                            size_t view_b) const {
  if (view_a == kZeroColumn) return ColumnOnes(view_b);
  if (view_b == kZeroColumn) return ColumnOnes(view_a);
  const std::vector<uint64_t>& a = columns_[view_a];
  const std::vector<uint64_t>& b = columns_[view_b];
  uint64_t total = 0;
  for (size_t w = 0; w < a.size(); ++w) total += std::popcount(a[w] ^ b[w]);
  return total;
}

uint64_t EdgeBooleanMatrix::DifferenceCount(
    const std::vector<size_t>& order) const {
  GS_CHECK(order.size() == num_views_);
  // ds(B, σ) = H(0, c_{σ1}) + Σ H(c_{σi}, c_{σi+1}) — exactly the paper's
  // per-row alternation count, computed column-pairwise.
  if (order.empty()) return 0;
  uint64_t total = ColumnOnes(order[0]);
  for (size_t i = 1; i < order.size(); ++i) {
    total += HammingDistance(order[i - 1], order[i]);
  }
  return total;
}

}  // namespace gs::views
