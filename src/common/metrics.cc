#include "common/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <utility>
#include <vector>

#include "common/simd.h"

namespace gs::metrics {

namespace internal {

size_t ThreadShardSlot() {
  static std::atomic<size_t> next_slot{0};
  thread_local size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed) % kNumShards;
  return slot;
}

}  // namespace internal

namespace {

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

/// Splits a series key into (family, label body): "a{b=\"c\"}" → ("a",
/// "b=\"c\""); label body is empty for unlabeled series.
std::pair<std::string, std::string> SplitKey(const std::string& key) {
  size_t brace = key.find('{');
  if (brace == std::string::npos) return {key, ""};
  std::string labels = key.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.pop_back();
  return {key.substr(0, brace), labels};
}

/// Rendered series line name with an extra label appended (for histogram
/// `le` labels, which must merge into any existing label set).
std::string WithLabel(const std::string& family, const std::string& labels,
                      const std::string& extra) {
  std::string all = labels;
  if (!all.empty() && !extra.empty()) all += ",";
  all += extra;
  if (all.empty()) return family;
  return family + "{" + all + "}";
}

void AppendTypeLine(std::string* out, std::string* last_family,
                    const std::string& family, const char* type) {
  if (family == *last_family) return;
  *last_family = family;
  *out += "# TYPE " + family + " " + type + "\n";
}

std::string LeBound(size_t bucket) {
  if (Histogram::BucketUpperBound(bucket) == UINT64_MAX) return "+Inf";
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64,
                Histogram::BucketUpperBound(bucket));
  return buf;
}

}  // namespace

Registry& Registry::Global() {
  static Registry* global = new Registry();  // leaked: alive during atexit
  // Build attribution rides on every scrape of the global registry (and
  // only the global one — tests construct label-free local registries).
  // Registered through the local pointer, not Global(), so the magic-static
  // guard is not re-entered.
  static const bool build_info_registered = [] {
    global->GetGauge("gs_build_info", BuildInfoLabels())->Set(1);
    return true;
  }();
  (void)build_info_registered;
  return *global;
}

std::string Registry::MakeKey(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string key = name + "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) key += ",";
    first = false;
    key += k + "=\"" + v + "\"";
  }
  key += "}";
  return key;
}

Counter* Registry::GetCounter(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[MakeKey(name, labels)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[MakeKey(name, labels)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const Labels& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[MakeKey(name, labels)];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string Registry::ExpositionText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  std::string last_family;
  char buf[48];
  for (const auto& [key, counter] : counters_) {
    auto [family, labels] = SplitKey(key);
    AppendTypeLine(&out, &last_family, family, "counter");
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", counter->Value());
    out += key + buf;
  }
  for (const auto& [key, gauge] : gauges_) {
    auto [family, labels] = SplitKey(key);
    AppendTypeLine(&out, &last_family, family, "gauge");
    std::snprintf(buf, sizeof(buf), " %" PRId64 "\n", gauge->Value());
    out += key + buf;
  }
  for (const auto& [key, histogram] : histograms_) {
    auto [family, labels] = SplitKey(key);
    AppendTypeLine(&out, &last_family, family, "histogram");
    // Cumulative bucket counts, per Prometheus histogram convention.
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      uint64_t count = histogram->BucketCount(i);
      // Zero-count interior buckets are skipped to keep the exposition
      // readable; the +Inf bucket is always present.
      if (count == 0 && i + 1 < Histogram::kNumBuckets) continue;
      cumulative += count;
      std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", cumulative);
      out += WithLabel(family + "_bucket", labels,
                       "le=\"" + LeBound(i) + "\"") +
             buf;
    }
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", histogram->Sum());
    out += WithLabel(family + "_sum", labels, "") + buf;
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", histogram->Count());
    out += WithLabel(family + "_count", labels, "") + buf;
  }
  return out;
}

std::string Registry::JsonSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\": {";
  char buf[48];
  bool first = true;
  for (const auto& [key, counter] : counters_) {
    if (!first) out += ", ";
    first = false;
    std::snprintf(buf, sizeof(buf), "%" PRIu64, counter->Value());
    out += JsonQuote(key) + ": " + buf;
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [key, gauge] : gauges_) {
    if (!first) out += ", ";
    first = false;
    std::snprintf(buf, sizeof(buf), "%" PRId64, gauge->Value());
    out += JsonQuote(key) + ": " + buf;
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [key, histogram] : histograms_) {
    if (!first) out += ", ";
    first = false;
    // 33 fixed chars + two uint64s (20 digits each) overflows buf[48].
    char hbuf[96];
    std::snprintf(hbuf, sizeof(hbuf), "{\"count\": %" PRIu64
                                      ", \"sum\": %" PRIu64 ", \"buckets\": {",
                  histogram->Count(), histogram->Sum());
    out += JsonQuote(key) + ": " + hbuf;
    bool first_bucket = true;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      uint64_t count = histogram->BucketCount(i);
      if (count == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      std::snprintf(buf, sizeof(buf), "%" PRIu64, count);
      out += JsonQuote(LeBound(i)) + ": " + buf;
    }
    out += "}}";
  }
  out += "}}";
  return out;
}

void Registry::VisitScalars(
    const std::function<void(const std::string& key, double value,
                             bool is_counter)>& fn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, counter] : counters_) {
    fn(key, static_cast<double>(counter->Value()), true);
  }
  for (const auto& [key, gauge] : gauges_) {
    fn(key, static_cast<double>(gauge->Value()), false);
  }
}

std::array<uint64_t, Histogram::kNumBuckets> BucketSnapshot(
    const Histogram& histogram) {
  std::array<uint64_t, Histogram::kNumBuckets> buckets{};
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    buckets[i] = histogram.BucketCount(i);
  }
  return buckets;
}

double QuantileFromBuckets(
    const std::array<uint64_t, Histogram::kNumBuckets>& buckets, double q) {
  uint64_t total = 0;
  for (uint64_t count : buckets) total += count;
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < Histogram::kNumBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const uint64_t previous = cumulative;
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) < target) continue;
    const double lower =
        b == 0 ? 0.0
               : static_cast<double>(Histogram::BucketUpperBound(b - 1));
    // +Inf bucket: no finite upper bound to interpolate toward.
    if (b + 1 == Histogram::kNumBuckets) return lower;
    const double upper = static_cast<double>(Histogram::BucketUpperBound(b));
    double fraction =
        (target - static_cast<double>(previous)) /
        static_cast<double>(buckets[b]);
    if (fraction < 0.0) fraction = 0.0;
    if (fraction > 1.0) fraction = 1.0;
    return lower + fraction * (upper - lower);
  }
  return 0.0;  // unreachable: total > 0 means some bucket crossed target
}

double HistogramQuantile(const Histogram& histogram, double q) {
  return QuantileFromBuckets(BucketSnapshot(histogram), q);
}

const Registry::Labels& BuildInfoLabels() {
  static const Registry::Labels* labels = [] {
    auto* l = new Registry::Labels();
#ifdef GS_BUILD_GIT_SHA
    (*l)["git_sha"] = GS_BUILD_GIT_SHA;
#else
    (*l)["git_sha"] = "unknown";
#endif
#if defined(__clang_version__)
    (*l)["compiler"] = std::string("clang ") + __clang_version__;
#elif defined(__VERSION__)
    (*l)["compiler"] = std::string("gcc ") + __VERSION__;
#else
    (*l)["compiler"] = "unknown";
#endif
    (*l)["simd"] = simd::DispatchStateName();
    return l;
  }();
  return *labels;
}

}  // namespace gs::metrics
