#include "common/watchdog.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/crash_dump.h"
#include "common/introspect.h"
#include "common/logging.h"
#include "common/timeseries.h"

namespace gs::watchdog {

namespace {

/// Streaming SLO histograms whose percentiles the health JSON reports.
const char* const kSloHistograms[] = {
    "gs_wal_append_nanos",       "gs_wal_fsync_nanos",
    "gs_ingest_apply_nanos",     "gs_live_epoch_advance_nanos",
    "gs_executor_view_nanos",    "gs_spine_merge_nanos",
    "gs_spine_compaction_nanos",
};

/// Wall-clock milliseconds since the Unix epoch, for dump file names (the
/// in-process time base, timeseries::NowMillis, is process-relative).
uint64_t UnixMillis() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

metrics::Counter* FrontierRounds() {
  static auto* counter =
      metrics::Registry::Global().GetCounter("gs_engine_frontier_rounds");
  return counter;
}

metrics::Gauge* RecordsOutstanding() {
  static auto* gauge =
      metrics::Registry::Global().GetGauge("gs_engine_records_outstanding");
  return gauge;
}

metrics::Gauge* AdvanceStartedMs() {
  static auto* gauge = metrics::Registry::Global().GetGauge(
      "gs_live_epoch_advance_started_ms");
  return gauge;
}

metrics::Histogram* WalFsyncNanos() {
  static auto* histogram =
      metrics::Registry::Global().GetHistogram("gs_wal_fsync_nanos");
  return histogram;
}

metrics::Gauge* LastSealedEpoch() {
  static auto* gauge =
      metrics::Registry::Global().GetGauge("gs_engine_last_sealed_epoch");
  return gauge;
}

/// Max gs_graph_epoch over all graphs (the ingest side of the lag rule).
int64_t MaxGraphEpoch() {
  int64_t max_epoch = 0;
  metrics::Registry::Global().VisitScalars(
      [&](const std::string& key, double value, bool is_counter) {
        if (is_counter) return;
        if (key.compare(0, 15, "gs_graph_epoch{") != 0 &&
            key != "gs_graph_epoch") {
          return;
        }
        max_epoch = std::max(max_epoch, static_cast<int64_t>(value));
      });
  return max_epoch;
}

}  // namespace

Watchdog& Watchdog::Global() {
  static Watchdog* watchdog = new Watchdog();  // leaked: alive during atexit
  static auto* source = new introspect::ScopedSource(
      "health", [] { return Watchdog::Global().RenderHealthJson(); });
  (void)source;
  return *watchdog;
}

void Watchdog::SyncBaselines() {
  state_.last_rounds = FrontierRounds()->Value();
  state_.last_progress_ms = timeseries::NowMillis();
  state_.fsync_baseline = metrics::BucketSnapshot(*WalFsyncNanos());
  state_.last_lag = MaxGraphEpoch() - LastSealedEpoch()->Value();
  state_.consecutive_lag_increases = 0;
}

Status Watchdog::Start(const WatchdogOptions& options) {
  {
    std::lock_guard<std::mutex> thread_lock(thread_mutex_);
    if (running_) return Status::InvalidArgument("watchdog already running");
    std::lock_guard<std::mutex> eval_lock(eval_mutex_);
    options_ = options;
    if (options_.cadence_ms == 0) options_.cadence_ms = 1;
    currently_violated_.clear();
    SyncBaselines();
    stop_requested_ = false;
    running_ = true;
    thread_ = std::thread([this] { Loop(); });
  }
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_.running = true;
    snapshot_.healthy = true;
    snapshot_.violated_rules.clear();
  }
  // Sanitizer-clean shutdown even when no one calls Stop().
  static const bool atexit_registered = [] {
    std::atexit([] { Watchdog::Global().Stop(); });
    return true;
  }();
  (void)atexit_registered;
  return Status::Ok();
}

void Watchdog::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    if (!running_) return;
    stop_requested_ = true;
    to_join = std::move(thread_);
  }
  cv_.notify_all();
  if (to_join.joinable()) to_join.join();
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    running_ = false;
  }
  {
    std::lock_guard<std::mutex> eval_lock(eval_mutex_);
    currently_violated_.clear();
  }
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snapshot_.running = false;
  snapshot_.healthy = true;
  snapshot_.violated_rules.clear();
}

bool Watchdog::running() const {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  return running_;
}

HealthSnapshot Watchdog::Health() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

void Watchdog::Loop() {
  for (;;) {
    EvaluateNow();
    std::unique_lock<std::mutex> lock(thread_mutex_);
    uint64_t cadence;
    {
      std::lock_guard<std::mutex> eval_lock(eval_mutex_);
      cadence = options_.cadence_ms;
    }
    cv_.wait_for(lock, std::chrono::milliseconds(cadence),
                 [this] { return stop_requested_; });
    if (stop_requested_) return;
  }
}

std::vector<std::string> Watchdog::EvaluateNow() {
  static auto* evaluations =
      metrics::Registry::Global().GetCounter("gs_watchdog_evaluations");
  static auto* healthy_gauge =
      metrics::Registry::Global().GetGauge("gs_watchdog_healthy");

  std::lock_guard<std::mutex> eval_lock(eval_mutex_);
  const uint64_t now = timeseries::NowMillis();
  std::vector<std::string> violated;

  // frontier_stall: outstanding records with a static round counter. Any
  // round advance — or an idle engine — resets the progress clock.
  const uint64_t rounds = FrontierRounds()->Value();
  const int64_t outstanding = RecordsOutstanding()->Value();
  if (outstanding <= 0 || rounds != state_.last_rounds) {
    state_.last_rounds = rounds;
    state_.last_progress_ms = now;
  } else if (now - state_.last_progress_ms >= options_.frontier_stall_ms) {
    violated.push_back("frontier_stall");
  }

  // epoch_advance_deadline: an in-progress AdvanceEpoch carries its start
  // time in the gauge; 0 means none in flight.
  const int64_t advance_started = AdvanceStartedMs()->Value();
  if (advance_started > 0 &&
      now >= static_cast<uint64_t>(advance_started) +
                 options_.epoch_advance_deadline_ms) {
    violated.push_back("epoch_advance_deadline");
  }

  // wal_fsync_latency: p99 over the fsyncs since the previous evaluation.
  const auto fsync_now = metrics::BucketSnapshot(*WalFsyncNanos());
  std::array<uint64_t, metrics::Histogram::kNumBuckets> window{};
  uint64_t window_count = 0;
  for (size_t i = 0; i < window.size(); ++i) {
    window[i] = fsync_now[i] - state_.fsync_baseline[i];
    window_count += window[i];
  }
  state_.fsync_baseline = fsync_now;
  if (window_count > 0 &&
      metrics::QuantileFromBuckets(window, 0.99) >
          static_cast<double>(options_.wal_fsync_p99_ns)) {
    violated.push_back("wal_fsync_latency");
  }

  // ingest_lag: monotone growth of (graph epoch − sealed engine epoch).
  const int64_t lag = MaxGraphEpoch() - LastSealedEpoch()->Value();
  if (lag > state_.last_lag &&
      lag >= static_cast<int64_t>(options_.ingest_lag_min)) {
    ++state_.consecutive_lag_increases;
  } else {
    state_.consecutive_lag_increases = 0;
  }
  state_.last_lag = lag;
  if (state_.consecutive_lag_increases >= options_.ingest_lag_increases) {
    violated.push_back("ingest_lag");
  }

  // Derived series the registry does not carry directly.
  timeseries::Store::Global().Record("gs_watchdog_ingest_lag", now,
                                     static_cast<double>(lag));

  evaluations->Increment();
  healthy_gauge->Set(violated.empty() ? 1 : 0);

  // Edge-triggered firing: only rules that flipped failing this evaluation.
  std::vector<std::string> new_rules;
  for (const std::string& rule : violated) {
    if (currently_violated_.count(rule) == 0) new_rules.push_back(rule);
  }
  currently_violated_ =
      std::set<std::string>(violated.begin(), violated.end());
  if (!new_rules.empty()) Fire(new_rules, violated);

  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_.healthy = violated.empty();
    snapshot_.evaluations += 1;
    snapshot_.last_eval_ms = now;
    snapshot_.violated_rules = violated;
  }
  return violated;
}

void Watchdog::Fire(const std::vector<std::string>& new_rules,
                    const std::vector<std::string>& all_violated) {
  // Called with eval_mutex_ held.
  static auto* firings =
      metrics::Registry::Global().GetCounter("gs_watchdog_firings");
  firings->Increment();
  for (const std::string& rule : new_rules) {
    metrics::Registry::Global()
        .GetCounter("gs_watchdog_rule_firings", {{"rule", rule}})
        ->Increment();
    GS_LOG(Warning) << "watchdog rule violated: " << rule;
  }
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_.firings += new_rules.empty() ? 0 : 1;
  }
  if (!options_.write_flight_dumps) return;
  const std::string path = options_.flight_dir + "/flight_" +
                           std::to_string(UnixMillis()) + "_" +
                           new_rules.front() + ".json";
  const std::string reason = "watchdog:" + new_rules.front();
  Status status = WriteFlightRecorderFile(path, reason.c_str(), all_violated);
  if (status.ok()) {
    GS_LOG(Warning) << "watchdog flight recorder dumped to " << path;
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_.last_dump_path = path;
  } else {
    GS_LOG(Warning) << "watchdog flight dump failed: " << status.ToString();
  }
}

std::string Watchdog::RenderHealthJson() const {
  HealthSnapshot health = Health();
  std::string out = "{\"healthy\": ";
  out += health.healthy ? "true" : "false";
  out += ", \"running\": ";
  out += health.running ? "true" : "false";
  out += ", \"evaluations\": " + std::to_string(health.evaluations);
  out += ", \"firings\": " + std::to_string(health.firings);
  out += ", \"last_eval_ms\": " + std::to_string(health.last_eval_ms);
  out += ", \"violated_rules\": [";
  for (size_t i = 0; i < health.violated_rules.size(); ++i) {
    if (i) out += ", ";
    out += "\"" + introspect::JsonEscape(health.violated_rules[i]) + "\"";
  }
  out += "]";
  if (!health.last_dump_path.empty()) {
    out += ", \"last_dump\": \"" +
           introspect::JsonEscape(health.last_dump_path) + "\"";
  }
  out += ", \"slo_nanos\": {";
  bool first = true;
  char buf[96];
  for (const char* name : kSloHistograms) {
    metrics::Histogram* h = metrics::Registry::Global().GetHistogram(name);
    if (!first) out += ", ";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"count\": %llu, \"p50\": %.0f, \"p95\": %.0f, "
                  "\"p99\": %.0f}",
                  static_cast<unsigned long long>(h->Count()),
                  metrics::HistogramQuantile(*h, 0.5),
                  metrics::HistogramQuantile(*h, 0.95),
                  metrics::HistogramQuantile(*h, 0.99));
    out += "\"" + std::string(name) + "\": " + buf;
  }
  out += "}}";
  return out;
}

namespace {

/// Parses `env_name` as a non-negative decimal integer into `*out`.
/// Unparsable values keep `*out` and warn once per variable per process —
/// a misconfigured deployment should not spam a log line per evaluation.
void ApplyEnvThreshold(const char* env_name, uint64_t* out) {
  const char* value = std::getenv(env_name);
  if (value == nullptr || *value == '\0') return;
  char* end = nullptr;
  errno = 0;
  unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE || value[0] == '-') {
    static std::mutex warned_mutex;
    static std::set<std::string>* warned = new std::set<std::string>();
    std::lock_guard<std::mutex> lock(warned_mutex);
    if (warned->insert(env_name).second) {
      GS_LOG(Warning) << "ignoring invalid " << env_name << "=\"" << value
                      << "\" (want a non-negative integer); keeping default "
                      << *out;
    }
    return;
  }
  *out = static_cast<uint64_t>(parsed);
}

}  // namespace

void Watchdog::ApplyEnvOverrides(WatchdogOptions* options) {
  ApplyEnvThreshold("GRAPHSURGE_WATCHDOG_FRONTIER_STALL_MS",
                    &options->frontier_stall_ms);
  ApplyEnvThreshold("GRAPHSURGE_WATCHDOG_EPOCH_ADVANCE_DEADLINE_MS",
                    &options->epoch_advance_deadline_ms);
  ApplyEnvThreshold("GRAPHSURGE_WATCHDOG_WAL_FSYNC_P99_NS",
                    &options->wal_fsync_p99_ns);
  ApplyEnvThreshold("GRAPHSURGE_WATCHDOG_INGEST_LAG_MIN",
                    &options->ingest_lag_min);
  uint64_t increases = static_cast<uint64_t>(options->ingest_lag_increases);
  ApplyEnvThreshold("GRAPHSURGE_WATCHDOG_INGEST_LAG_INCREASES", &increases);
  options->ingest_lag_increases = static_cast<int>(increases);
}

bool Watchdog::MaybeStartFromEnv() {
  Watchdog& watchdog = Global();
  if (watchdog.running()) return true;
  const char* env = std::getenv("GRAPHSURGE_WATCHDOG");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "0") == 0) {
    return false;
  }
  WatchdogOptions options;
  const char* dir = std::getenv("GRAPHSURGE_FLIGHT_DIR");
  if (dir != nullptr && *dir != '\0') options.flight_dir = dir;
  ApplyEnvOverrides(&options);
  Status status = watchdog.Start(options);
  if (!status.ok()) {
    GS_LOG(Warning) << "watchdog failed to start: " << status.ToString();
    return false;
  }
  return true;
}

}  // namespace gs::watchdog
