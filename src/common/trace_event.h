// Low-overhead span/event recorder serializing to the Chrome trace-event
// JSON format (loadable in chrome://tracing and ui.perfetto.dev).
//
// Design: each thread records into its own fixed-capacity ring buffer under
// a per-buffer mutex (no allocation on the hot path, no cross-thread
// contention — the lock is only ever contended by a live scrape; the newest
// events win when a buffer wraps). When recording is disabled — the default
// — every entry point is a single relaxed atomic load, and the GS_TRACE_*
// macros compile to nothing at all when GRAPHSURGE_ENABLE_TRACE_EVENTS is
// defined to 0. Timestamps come from the monotonic clock, measured from a
// process-wide epoch.
//
// Events carry the worker id set via gs::SetThreadWorkerId (logging.h) as
// their Chrome `tid`, so per-worker-shard tracks line up in the UI; threads
// without a worker id get a stable synthetic tid (1000 + thread index).
//
// Setting the environment variable GRAPHSURGE_TRACE=<path> in any binary
// that links the engine enables recording at startup and dumps the trace to
// <path> at process exit.
#ifndef GRAPHSURGE_COMMON_TRACE_EVENT_H_
#define GRAPHSURGE_COMMON_TRACE_EVENT_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

#ifndef GRAPHSURGE_ENABLE_TRACE_EVENTS
#define GRAPHSURGE_ENABLE_TRACE_EVENTS 1
#endif

namespace gs::trace {

/// Sentinel for events without a version argument.
inline constexpr uint32_t kNoVersion = 0xFFFFFFFFu;

/// Event name capacity; longer names are truncated at record time.
inline constexpr size_t kNameCapacity = 48;

namespace internal {
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// Whether events are currently recorded. The hot-path gate: one relaxed
/// atomic load.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Turns recording on/off. Existing buffered events are kept.
void SetEnabled(bool enabled);

/// Nanoseconds since the process trace epoch (monotonic clock).
uint64_t NowNanos();

/// Records a completed span ('X' phase). `category` must be a string with
/// static storage duration; `name` is copied (truncated to kNameCapacity-1).
void AddCompleteEvent(const char* category, const char* name,
                      uint64_t start_ns, uint64_t duration_ns,
                      uint32_t version = kNoVersion);

/// Records an instant event ('i' phase).
void AddInstantEvent(const char* category, const char* name,
                     uint32_t version = kNoVersion);

/// Records a counter sample ('C' phase) graphed as a track by the UI.
void AddCounterEvent(const char* category, const char* name, int64_t value);

/// Serializes all buffered events (across all threads) to Chrome trace JSON:
/// `{"traceEvents": [...], "displayTimeUnit": "ms"}`. Safe to call while
/// recording continues (each buffer is copied under its mutex), though a
/// snapshot taken mid-run is naturally a point-in-time view.
std::string ToJson();

/// Like ToJson(), but keeps only the newest `max_events_per_thread` events
/// of each thread's ring buffer — the /tracez "last-N spans" view, cheap
/// enough to serve while a run is recording.
std::string ToJsonTail(size_t max_events_per_thread);

/// Writes ToJson() to `path`.
Status WriteJson(const std::string& path);

/// One buffered event in structured form, for in-process analysis (the
/// critical-path extractor in critical_path.h, tests). Exactly the data
/// ToJson renders; strings are copied out of the ring buffers.
struct CollectedEvent {
  uint64_t ts_ns = 0;
  uint64_t dur_ns = 0;   // 'X' spans only
  int64_t value = 0;     // 'C' counters only
  int32_t tid = 0;       // worker id, or 1000+index for non-worker threads
  char phase = 'X';      // 'X' span, 'i' instant, 'C' counter
  uint32_t version = kNoVersion;
  std::string category;
  std::string name;
};

/// Snapshot of every buffered event across all threads, oldest-first per
/// thread. Safe while recording continues (same locking as ToJson).
std::vector<CollectedEvent> CollectStructured();

/// Drops all buffered events (tests).
void ClearForTest();

/// RAII span: captures the start time at construction, records one complete
/// event at destruction. No-op (two relaxed loads) while disabled; a span
/// that starts disabled stays disabled even if recording is enabled
/// mid-span.
class Span {
 public:
  Span(const char* category, const char* name, uint32_t version = kNoVersion)
      : category_(category), version_(version) {
    if (!Enabled()) {
      start_ns_ = kDisabled;
      return;
    }
    CopyName(name);
    start_ns_ = NowNanos();
  }

  Span(const char* category, const std::string& name,
       uint32_t version = kNoVersion)
      : Span(category, name.c_str(), version) {}

  ~Span() {
    if (start_ns_ == kDisabled) return;
    AddCompleteEvent(category_, name_, start_ns_, NowNanos() - start_ns_,
                     version_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  static constexpr uint64_t kDisabled = UINT64_MAX;

  void CopyName(const char* name) {
    std::strncpy(name_, name, kNameCapacity - 1);
    name_[kNameCapacity - 1] = '\0';
  }

  const char* category_;
  char name_[kNameCapacity];
  uint64_t start_ns_;
  uint32_t version_;
};

}  // namespace gs::trace

#if GRAPHSURGE_ENABLE_TRACE_EVENTS
#define GS_TRACE_CONCAT_IMPL(a, b) a##b
#define GS_TRACE_CONCAT(a, b) GS_TRACE_CONCAT_IMPL(a, b)
/// Scoped span covering the rest of the enclosing block.
#define GS_TRACE_SPAN(category, name) \
  ::gs::trace::Span GS_TRACE_CONCAT(gs_trace_span_, __LINE__)(category, name)
/// Scoped span tagged with a version argument (shown under "args" in the UI).
#define GS_TRACE_SPAN_V(category, name, version)                            \
  ::gs::trace::Span GS_TRACE_CONCAT(gs_trace_span_, __LINE__)(category, name, \
                                                              version)
#define GS_TRACE_INSTANT(category, name) \
  ::gs::trace::AddInstantEvent(category, name)
#define GS_TRACE_COUNTER(category, name, value) \
  ::gs::trace::AddCounterEvent(category, name, value)
#else
#define GS_TRACE_SPAN(category, name) \
  do {                                \
  } while (0)
#define GS_TRACE_SPAN_V(category, name, version) \
  do {                                           \
  } while (0)
#define GS_TRACE_INSTANT(category, name) \
  do {                                   \
  } while (0)
#define GS_TRACE_COUNTER(category, name, value) \
  do {                                          \
  } while (0)
#endif  // GRAPHSURGE_ENABLE_TRACE_EVENTS

#endif  // GRAPHSURGE_COMMON_TRACE_EVENT_H_
