// Post-run critical-path extraction over the trace-event recorder: per
// engine version, the longest chain of non-overlapping operator activations
// — the dependent work that bounds the version's wall clock no matter how
// many workers run. Reported as "% of wall clock on the critical path" plus
// the top-k stall gaps between consecutive chain activations (the places
// where the critical path sat waiting on a barrier, an exchange, or the
// coordinator).
//
// Inputs are the spans the engine already records: per-operator "op" spans
// (OperatorBase::RequestRun), the per-shard "flush" and "seal" engine spans
// (Dataflow::BeginStepPhase / SealPhase), and the enclosing "step" span
// (ShardedDataflow::Step), which supplies each version's measured wall
// clock but is excluded from the chain itself. The chain is computed by
// weighted interval scheduling (maximum total duration over mutually
// non-overlapping spans, O(n log n)) — at W == 1 activations are strictly
// sequential, so the chain covers essentially the whole step and the
// fraction is a sanity bound (≥80% on the micro workloads); at W > 1 the
// chain singles out the dependent spine across workers.
//
// Requires tracing (trace::SetEnabled or GRAPHSURGE_TRACE); with tracing
// off the report is empty and the /statusz source renders
// {"enabled": false}.
#ifndef GRAPHSURGE_COMMON_CRITICAL_PATH_H_
#define GRAPHSURGE_COMMON_CRITICAL_PATH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/trace_event.h"

namespace gs::critical_path {

/// One activation on a version's critical path.
struct Activation {
  std::string name;
  int32_t tid = 0;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
};

/// A gap between consecutive chain activations: time the critical path
/// spent not executing anything — the stall contributors worth chasing.
struct Stall {
  uint64_t gap_ns = 0;
  uint64_t at_ns = 0;     // gap start (trace timebase)
  std::string before;     // the activation that ran after the gap
};

struct VersionReport {
  uint32_t version = 0;
  uint64_t wall_ns = 0;        // "step" span duration (or span extent)
  uint64_t path_ns = 0;        // summed chain activation time
  double path_fraction = 0.0;  // path_ns / wall_ns
  size_t num_spans = 0;        // candidate spans considered
  size_t path_length = 0;      // activations on the chain
  std::vector<Activation> path;    // chain order, capped at kMaxPathNodes
  std::vector<Stall> top_stalls;   // largest gaps first, ≤ kTopStalls
};

struct Report {
  bool enabled = false;  // was tracing on (any candidate span seen)?
  std::vector<VersionReport> versions;  // ascending version
  uint64_t total_wall_ns = 0;
  uint64_t total_path_ns = 0;
  double path_fraction = 0.0;  // total_path / total_wall
};

inline constexpr size_t kTopStalls = 5;
inline constexpr size_t kMaxPathNodes = 64;

/// Extracts per-version critical paths from structured trace events.
Report Extract(const std::vector<trace::CollectedEvent>& events);

/// Extract() over the live ring buffers — empty report while tracing has
/// never been enabled.
Report ExtractFromLiveTrace();

std::string ToJson(const Report& report);

/// Registers the "critical_path" /statusz source (idempotent): renders
/// ToJson(ExtractFromLiveTrace()) on every scrape.
void RegisterStatuszSource();

}  // namespace gs::critical_path

#endif  // GRAPHSURGE_COMMON_CRITICAL_PATH_H_
