// Thread-safe metrics registry: counters, gauges, and histograms with fixed
// log-scale (power-of-two) buckets. Hot-path writes land in cheap per-worker
// shards (cache-line-padded relaxed atomics, one slot per thread) and are
// only merged on scrape, so incrementing a counter from a worker shard costs
// one uncontended fetch_add. Scrape surfaces are a Prometheus-style text
// exposition (ExpositionText) and a JSON snapshot (JsonSnapshot) that bench
// binaries embed in their BENCH_*.json reports.
//
// Usage: callers look a metric up once (the returned pointer is stable for
// the registry's lifetime) and cache it, typically in a function-local
// static:
//
//   static auto* sealed =
//       metrics::Registry::Global().GetCounter("gs_engine_versions_sealed");
//   sealed->Increment();
//
// Metric names follow Prometheus conventions (snake_case, unit-suffixed).
// Labels are passed as a (sorted) map and become part of the metric key;
// series with the same family name share one `# TYPE` line on exposition.
#ifndef GRAPHSURGE_COMMON_METRICS_H_
#define GRAPHSURGE_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace gs::metrics {

namespace internal {

/// Number of write shards per metric. More shards cost memory (one cache
/// line each); fewer cost contention. 16 covers the worker counts the
/// sharded engine targets.
inline constexpr size_t kNumShards = 16;

/// Stable per-thread shard slot in [0, kNumShards): assigned round-robin on
/// a thread's first write and cached thread-locally, so distinct engine
/// workers land on distinct shards (until there are more threads than
/// shards, where correctness is unaffected — only contention grows).
size_t ThreadShardSlot();

}  // namespace internal

/// Monotonically increasing sum. Increment is wait-free on the caller's
/// shard; Value() folds all shards.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    shards_[internal::ThreadShardSlot()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, internal::kNumShards> shards_;
};

/// Last-writer-wins instantaneous value (trace sizes, queue depths).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Histogram over non-negative integer observations with fixed log-scale
/// buckets: bucket i has upper bound 2^i (inclusive), i ∈ [0, 62], plus a
/// +Inf overflow bucket at index 63. Observe is wait-free on the caller's
/// shard.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 64;

  /// Index of the bucket an observation lands in: the smallest i with
  /// value ≤ 2^i (0 and 1 share bucket 0), 63 for values above 2^62.
  static size_t BucketIndex(uint64_t value) {
    if (value <= 1) return 0;
    size_t bits = 64 - static_cast<size_t>(__builtin_clzll(value - 1));
    return bits < kNumBuckets ? bits : kNumBuckets - 1;
  }

  /// Inclusive upper bound of bucket i (UINT64_MAX denotes +Inf).
  static uint64_t BucketUpperBound(size_t i) {
    return i + 1 < kNumBuckets ? (uint64_t{1} << i) : UINT64_MAX;
  }

  void Observe(uint64_t value) {
    Shard& shard = shards_[internal::ThreadShardSlot() % kHistogramShards];
    shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t BucketCount(size_t i) const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.buckets[i].load(std::memory_order_relaxed);
    }
    return total;
  }

  uint64_t Count() const {
    uint64_t total = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) total += BucketCount(i);
    return total;
  }

  uint64_t Sum() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.sum.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  // Histograms carry 64 counters per shard; fewer shards than Counter keeps
  // the footprint reasonable while staying per-thread-mostly uncontended.
  static constexpr size_t kHistogramShards = 8;

  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
  };
  std::array<Shard, kHistogramShards> shards_;
};

/// Name → metric registry. Get* finds or creates; returned pointers are
/// stable until the registry is destroyed (Global() is never destroyed).
/// Lookups take a mutex — cache the pointer at the call site; writes through
/// the returned handles are lock-free.
class Registry {
 public:
  using Labels = std::map<std::string, std::string>;

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry (leaked singleton: usable from atexit hooks).
  static Registry& Global();

  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {});

  /// Prometheus text exposition format, series sorted by key, one `# TYPE`
  /// line per family. Histograms expand to `_bucket{le=...}`, `_sum`,
  /// `_count` per convention.
  std::string ExpositionText() const;

  /// JSON object `{"counters": {...}, "gauges": {...}, "histograms": {...}}`
  /// with histogram entries `{"count": n, "sum": s, "buckets": {"<le>": c}}`
  /// (zero buckets omitted). Embedded verbatim in BENCH_*.json reports.
  std::string JsonSnapshot() const;

  /// Series key as used in exposition: `name` or `name{k="v",...}`.
  static std::string MakeKey(const std::string& name, const Labels& labels);

  /// Invokes `fn(key, value, is_counter)` for every counter and gauge
  /// series (counters first). Runs under the registry mutex — keep `fn`
  /// cheap, and never call back into Get* from it. This is the sampler's
  /// enumeration surface (timeseries.h).
  void VisitScalars(
      const std::function<void(const std::string& key, double value,
                               bool is_counter)>& fn) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Cross-shard-merged bucket counts of `histogram` — one consistent-enough
/// snapshot for quantile estimation or delta windows between two scrapes.
std::array<uint64_t, Histogram::kNumBuckets> BucketSnapshot(
    const Histogram& histogram);

/// Estimated quantile (q ∈ [0, 1]) over explicit log2-bucket counts,
/// Prometheus histogram_quantile semantics: the rank q·count is located in
/// its bucket and linearly interpolated between the bucket's bounds
/// (bucket 0 interpolates up from 0). Consequences worth knowing:
///   - empty buckets → 0;
///   - an observation exactly on a bucket's upper bound is returned exactly
///     at q = its cumulative rank (fraction 1.0 lands on the bound);
///   - q = 0 returns the lower bound of the first non-empty bucket;
///   - ranks in the +Inf bucket clamp to its lower bound (2^62).
double QuantileFromBuckets(
    const std::array<uint64_t, Histogram::kNumBuckets>& buckets, double q);

/// QuantileFromBuckets over a live histogram's current counts — the p50/
/// p95/p99 rendering used by the health plane's SLO surfaces.
double HistogramQuantile(const Histogram& histogram, double q);

/// Labels identifying this build — git_sha (configure-time), compiler, and
/// simd dispatch state (avx2/scalar/killed) — attached to the gs_build_info
/// gauge that Registry::Global() registers with value 1.
const Registry::Labels& BuildInfoLabels();

}  // namespace gs::metrics

#endif  // GRAPHSURGE_COMMON_METRICS_H_
