#include "common/timeseries.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/introspect.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace gs::timeseries {

namespace {

/// Families the sampler always follows: the streaming ingest path, engine
/// progress, and the watchdog's own activity. Chosen for bounded
/// cardinality — per-operator and per-arrangement gauges stay out.
const char* const kDefaultWatchList[] = {
    "gs_ingest_batches",
    "gs_ingest_mutations",
    "gs_graph_epoch",
    "gs_wal_records",
    "gs_wal_bytes",
    "gs_live_epochs_fed",
    "gs_engine_frontier_rounds",
    "gs_engine_versions_sealed",
    "gs_engine_epochs_sealed",
    "gs_engine_records_outstanding",
    "gs_engine_last_sealed_epoch",
    "gs_executor_views_run",
    "gs_status_server_requests",
    "gs_watchdog_firings",
};

/// JSON-safe number rendering: finite shortest-ish form, non-finite → 0
/// (JSON has no NaN/Inf literals).
std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

void AppendStats(std::string* out, const SeriesStats& stats) {
  *out += "\"count\": " + std::to_string(stats.count) +
          ", \"min\": " + JsonNumber(stats.min) +
          ", \"max\": " + JsonNumber(stats.max) +
          ", \"last\": " + JsonNumber(stats.last) +
          ", \"rate_per_s\": " + JsonNumber(stats.rate_per_s);
}

}  // namespace

uint64_t NowMillis() {
  using Clock = std::chrono::steady_clock;
  // Origin = first call (the earliest metrics/health-plane activity in the
  // process). Only differences between NowMillis values are meaningful.
  static const Clock::time_point origin = Clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            origin)
          .count());
}

Series::Series(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void Series::Record(uint64_t t_ms, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(Sample{t_ms, value});
    return;
  }
  ring_[next_] = Sample{t_ms, value};
  next_ = (next_ + 1) % capacity_;
}

std::vector<Sample> Series::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Sample> out;
  out.reserve(ring_.size());
  // Oldest first: ring_[next_..) then ring_[0..next_) once the ring wrapped
  // (before wrapping next_ is 0, so this is simply front-to-back order).
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

SeriesStats Series::Stats() const {
  std::vector<Sample> samples = Snapshot();
  SeriesStats stats;
  stats.count = samples.size();
  if (samples.empty()) return stats;
  stats.min = stats.max = samples[0].value;
  for (const Sample& s : samples) {
    stats.min = std::min(stats.min, s.value);
    stats.max = std::max(stats.max, s.value);
  }
  stats.last = samples.back().value;
  uint64_t span_ms = samples.back().t_ms - samples.front().t_ms;
  if (samples.size() >= 2 && span_ms > 0) {
    stats.rate_per_s = (samples.back().value - samples.front().value) /
                       (static_cast<double>(span_ms) / 1000.0);
  }
  return stats;
}

std::string Sparkline(const std::vector<Sample>& samples, size_t width) {
  static const char* const kBlocks[8] = {"▁", "▂", "▃",
                                         "▄", "▅", "▆",
                                         "▇", "█"};
  if (samples.empty() || width == 0) return "";
  size_t start = samples.size() > width ? samples.size() - width : 0;
  double lo = samples[start].value, hi = samples[start].value;
  for (size_t i = start; i < samples.size(); ++i) {
    lo = std::min(lo, samples[i].value);
    hi = std::max(hi, samples[i].value);
  }
  std::string out;
  for (size_t i = start; i < samples.size(); ++i) {
    size_t level = 0;
    if (hi > lo) {
      level = static_cast<size_t>((samples[i].value - lo) / (hi - lo) * 7.0);
      if (level > 7) level = 7;
    }
    out += kBlocks[level];
  }
  return out;
}

Store& Store::Global() {
  static Store* store = new Store();  // leaked: alive during atexit dumps
  // Registered once, never unregistered (the store outlives everything):
  // /statusz shows the rollup + sparkline summary, not full sample arrays.
  static auto* source = new introspect::ScopedSource(
      "timeseries", [] { return Store::Global().ToSummaryJson(); });
  (void)source;
  return *store;
}

Series* Store::GetSeries(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = series_.find(name);
  if (it != series_.end()) return it->second.get();
  if (series_.size() >= kMaxSeries) {
    ++dropped_series_;
    // Mirror the drop count into a /varz gauge so scrapers notice a store
    // at capacity without reading /timeseriez (and /statusz can banner it).
    static metrics::Gauge* dropped_gauge =
        metrics::Registry::Global().GetGauge("gs_timeseries_dropped_series");
    dropped_gauge->Set(static_cast<int64_t>(dropped_series_));
    return nullptr;
  }
  auto& slot = series_[name];
  slot = std::make_unique<Series>();
  return slot.get();
}

void Store::Record(const std::string& name, uint64_t t_ms, double value) {
  Series* series = GetSeries(name);
  if (series != nullptr) series->Record(t_ms, value);
}

std::vector<std::string> Store::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, series] : series_) names.push_back(name);
  return names;
}

std::string Store::ToJson() const {
  // Series pointers are stable and internally synchronized; copy the map
  // under the store mutex, render outside it.
  std::vector<std::pair<std::string, const Series*>> entries;
  uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entries.reserve(series_.size());
    for (const auto& [name, series] : series_) {
      entries.emplace_back(name, series.get());
    }
    dropped = dropped_series_;
  }
  std::string out = "{\"now_ms\": " + std::to_string(NowMillis());
  out += ", \"sampler\": {\"running\": ";
  out += Sampler::Global().running() ? "true" : "false";
  out += ", \"cadence_ms\": " + std::to_string(Sampler::Global().cadence_ms());
  out += "}, \"dropped_series\": " + std::to_string(dropped);
  out += ", \"series\": {";
  bool first = true;
  for (const auto& [name, series] : entries) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + introspect::JsonEscape(name) + "\": {";
    AppendStats(&out, series->Stats());
    out += ", \"samples\": [";
    std::vector<Sample> samples = series->Snapshot();
    for (size_t i = 0; i < samples.size(); ++i) {
      if (i) out += ", ";
      out += "[" + std::to_string(samples[i].t_ms) + ", " +
             JsonNumber(samples[i].value) + "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string Store::ToSummaryJson() const {
  std::vector<std::pair<std::string, const Series*>> entries;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    entries.reserve(series_.size());
    for (const auto& [name, series] : series_) {
      entries.emplace_back(name, series.get());
    }
  }
  std::string out = "{\"now_ms\": " + std::to_string(NowMillis());
  out += ", \"series\": {";
  bool first = true;
  for (const auto& [name, series] : entries) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + introspect::JsonEscape(name) + "\": {";
    AppendStats(&out, series->Stats());
    out += ", \"spark\": \"" +
           introspect::JsonEscape(Sparkline(series->Snapshot(), 32)) + "\"}";
  }
  out += "}}";
  return out;
}

Sampler& Sampler::Global() {
  static Sampler* sampler = new Sampler();  // leaked; atexit stops it
  return *sampler;
}

Status Sampler::Start(uint64_t cadence_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return Status::InvalidArgument("sampler already running");
  cadence_ms_ = cadence_ms == 0 ? 1 : cadence_ms;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
  // Sanitizer-clean shutdown even when no one calls Stop(): join before
  // static destruction. Registered once per process.
  static bool atexit_registered = [] {
    std::atexit([] { Sampler::Global().Stop(); });
    return true;
  }();
  (void)atexit_registered;
  return Status::Ok();
}

void Sampler::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
    to_join = std::move(thread_);
  }
  cv_.notify_all();
  if (to_join.joinable()) to_join.join();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

bool Sampler::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

uint64_t Sampler::cadence_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cadence_ms_;
}

void Sampler::AddWatch(const std::string& family) {
  std::lock_guard<std::mutex> lock(mutex_);
  extra_watches_.push_back(family);
}

bool Sampler::Watched(const std::string& family) const {
  for (const char* name : kDefaultWatchList) {
    if (family == name) return true;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (const std::string& name : extra_watches_) {
    if (family == name) return true;
  }
  return false;
}

void Sampler::SampleOnce() {
  const uint64_t now = NowMillis();
  Store& store = Store::Global();
  metrics::Registry::Global().VisitScalars(
      [&](const std::string& key, double value, bool /*is_counter*/) {
        size_t brace = key.find('{');
        const std::string family =
            brace == std::string::npos ? key : key.substr(0, brace);
        if (!Watched(family)) return;
        store.Record(key, now, value);
      });
}

void Sampler::Loop() {
  for (;;) {
    SampleOnce();
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, std::chrono::milliseconds(cadence_ms_),
                 [this] { return stop_requested_; });
    if (stop_requested_) return;
  }
}

bool Sampler::MaybeStartFromEnv() {
  Sampler& sampler = Global();
  if (sampler.running()) return true;
  const char* env = std::getenv("GRAPHSURGE_SAMPLE_MS");
  if (env == nullptr || *env == '\0') return false;
  char* end = nullptr;
  long cadence = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || cadence <= 0) {
    if (cadence != 0 || end == env || *end != '\0') {
      GS_LOG(Warning) << "ignoring invalid GRAPHSURGE_SAMPLE_MS: " << env;
    }
    return false;
  }
  Status status = sampler.Start(static_cast<uint64_t>(cadence));
  if (!status.ok()) {
    GS_LOG(Warning) << "sampler failed to start: " << status.ToString();
    return false;
  }
  return true;
}

}  // namespace gs::timeseries
