// A small fixed-size thread pool with a ParallelFor helper. Used by the
// embarrassingly parallel view-materialization steps (EBM, difference
// streams, Hamming distances) and by the engine's sharded operators.
#ifndef GRAPHSURGE_COMMON_THREAD_POOL_H_
#define GRAPHSURGE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace gs {

/// Fixed-size worker pool. With num_threads == 1 (or 0) all work runs inline
/// on the calling thread, which keeps single-core runs overhead-free.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.empty() ? 1 : threads_.size(); }

  /// Enqueues a task; returns immediately. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  /// Runs fn(i) for i in [0, n), partitioned into num_threads() contiguous
  /// chunks. Blocks until done. fn must be safe to call concurrently for
  /// distinct i.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Runs fn(shard, begin, end) over num_threads() contiguous index ranges
  /// covering [0, n). Blocks until done.
  void ParallelForShards(
      size_t n, const std::function<void(size_t, size_t, size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_cv_;
  std::condition_variable done_cv_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace gs

#endif  // GRAPHSURGE_COMMON_THREAD_POOL_H_
