#include "common/simd.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && !defined(GRAPHSURGE_NO_SIMD)
#define GS_SIMD_HAVE_AVX2_BUILD 1
#include <immintrin.h>
#else
#define GS_SIMD_HAVE_AVX2_BUILD 0
#endif

namespace gs::simd {

uint64_t StringPrefix(const std::string& s) {
  // Big-endian packing: the first byte lands in the most significant
  // position, so unsigned word order equals lexicographic byte order.
  uint64_t p = 0;
  size_t n = s.size() < 8 ? s.size() : 8;
  for (size_t i = 0; i < n; ++i) {
    p |= static_cast<uint64_t>(static_cast<unsigned char>(s[i]))
         << (56 - 8 * i);
  }
  return p;
}

bool Avx2Active() {
#if GS_SIMD_HAVE_AVX2_BUILD
  static const bool active = [] {
    if (!__builtin_cpu_supports("avx2")) return false;
    const char* env = std::getenv("GRAPHSURGE_NO_SIMD");
    if (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0) {
      return false;
    }
    return true;
  }();
  return active;
#else
  return false;
#endif
}

const char* DispatchStateName() {
#if GS_SIMD_HAVE_AVX2_BUILD
  return Avx2Active() ? "avx2" : "scalar";
#else
  return "killed";
#endif
}

// ---------------------------------------------------------------------------
// Scalar reference kernels. The three-way-then-apply structure is the
// semantic contract (NaN doubles take the "equal" branch, exactly like
// PropertyValue::Compare); the AVX2 kernels reproduce it lane-wise.

namespace scalar {

namespace {

template <typename T, typename ThreeWay>
void CmpRows(const T* v, size_t n, Cmp op, ThreeWay&& three_way,
             uint64_t* out) {
  size_t words = MaskWords(n);
  for (size_t w = 0; w < words; ++w) {
    uint64_t m = 0;
    size_t end = n - 64 * w < 64 ? n - 64 * w : 64;
    for (size_t j = 0; j < end; ++j) {
      if (ApplyCmp(op, three_way(v[64 * w + j]))) m |= uint64_t{1} << j;
    }
    out[w] = m;
  }
}

int ThreeWayF64(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;  // includes NaN on either side
}

template <typename T>
int ThreeWayInt(T a, T b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

}  // namespace

void CmpF64Const(const double* v, size_t n, Cmp op, double c, uint64_t* out) {
  CmpRows(v, n, op, [c](double a) { return ThreeWayF64(a, c); }, out);
}

void CmpF64Pairs(const double* a, const double* b, size_t n, Cmp op,
                 uint64_t* out) {
  size_t i = 0;
  CmpRows(a, n, op,
          [b, &i](double x) { return ThreeWayF64(x, b[i++]); }, out);
}

void CmpI64Const(const int64_t* v, size_t n, Cmp op, int64_t c,
                 uint64_t* out) {
  CmpRows(v, n, op, [c](int64_t a) { return ThreeWayInt(a, c); }, out);
}

void CmpI64Pairs(const int64_t* a, const int64_t* b, size_t n, Cmp op,
                 uint64_t* out) {
  size_t i = 0;
  CmpRows(a, n, op,
          [b, &i](int64_t x) { return ThreeWayInt(x, b[i++]); }, out);
}

void CmpU64Const(const uint64_t* v, size_t n, Cmp op, uint64_t c,
                 uint64_t* out) {
  CmpRows(v, n, op, [c](uint64_t a) { return ThreeWayInt(a, c); }, out);
}

void CmpU64Pairs(const uint64_t* a, const uint64_t* b, size_t n, Cmp op,
                 uint64_t* out) {
  size_t i = 0;
  CmpRows(a, n, op,
          [b, &i](uint64_t x) { return ThreeWayInt(x, b[i++]); }, out);
}

void BytesNonZero(const uint8_t* v, size_t n, uint64_t* out) {
  size_t words = MaskWords(n);
  for (size_t w = 0; w < words; ++w) {
    uint64_t m = 0;
    size_t end = n - 64 * w < 64 ? n - 64 * w : 64;
    for (size_t j = 0; j < end; ++j) {
      if (v[64 * w + j] != 0) m |= uint64_t{1} << j;
    }
    out[w] = m;
  }
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// AVX2 kernels. Full 64-row words are vectorized (16 × 4 lanes for 64-bit
// element types, 2 × 32 lanes for bytes); the ragged tail word falls back to
// the scalar kernel, which also guarantees trailing bits stay zero.

#if GS_SIMD_HAVE_AVX2_BUILD

namespace avx2 {

namespace {

// Derives the 4-lane result bits for `op` from lane masks lt/gt (each lane
// all-ones or all-zero). `lanes` = movemask bits. The ~ cases mask to the
// low 4 bits.
template <Cmp OP>
inline uint32_t BitsFrom(uint32_t lt, uint32_t gt) {
  if constexpr (OP == Cmp::kEq) return ~(lt | gt) & 0xF;
  if constexpr (OP == Cmp::kNe) return (lt | gt) & 0xF;
  if constexpr (OP == Cmp::kLt) return lt;
  if constexpr (OP == Cmp::kLe) return ~gt & 0xF;
  if constexpr (OP == Cmp::kGt) return gt;
  if constexpr (OP == Cmp::kGe) return ~lt & 0xF;
  return 0;
}

template <Cmp OP>
__attribute__((target("avx2"))) void CmpF64ConstWords(const double* v,
                                                      size_t full_words,
                                                      double c,
                                                      uint64_t* out) {
  const __m256d cv = _mm256_set1_pd(c);
  for (size_t w = 0; w < full_words; ++w) {
    uint64_t m = 0;
    for (size_t g = 0; g < 16; ++g) {
      __m256d x = _mm256_loadu_pd(v + 64 * w + 4 * g);
      // Ordered-quiet predicates: NaN lanes report neither lt nor gt, which
      // lands them in the "equal" branch of the three-way contract.
      uint32_t lt = static_cast<uint32_t>(
          _mm256_movemask_pd(_mm256_cmp_pd(x, cv, _CMP_LT_OQ)));
      uint32_t gt = static_cast<uint32_t>(
          _mm256_movemask_pd(_mm256_cmp_pd(x, cv, _CMP_GT_OQ)));
      m |= static_cast<uint64_t>(BitsFrom<OP>(lt, gt)) << (4 * g);
    }
    out[w] = m;
  }
}

template <Cmp OP>
__attribute__((target("avx2"))) void CmpF64PairsWords(const double* a,
                                                       const double* b,
                                                       size_t full_words,
                                                       uint64_t* out) {
  for (size_t w = 0; w < full_words; ++w) {
    uint64_t m = 0;
    for (size_t g = 0; g < 16; ++g) {
      __m256d x = _mm256_loadu_pd(a + 64 * w + 4 * g);
      __m256d y = _mm256_loadu_pd(b + 64 * w + 4 * g);
      uint32_t lt = static_cast<uint32_t>(
          _mm256_movemask_pd(_mm256_cmp_pd(x, y, _CMP_LT_OQ)));
      uint32_t gt = static_cast<uint32_t>(
          _mm256_movemask_pd(_mm256_cmp_pd(x, y, _CMP_GT_OQ)));
      m |= static_cast<uint64_t>(BitsFrom<OP>(lt, gt)) << (4 * g);
    }
    out[w] = m;
  }
}

// Signed 64-bit lane masks; unsigned compares bias the sign bit first
// (x ^ 2^63 maps unsigned order onto signed order).
template <Cmp OP, bool KUnsigned>
__attribute__((target("avx2"))) void CmpI64ConstWords(const int64_t* v,
                                                       size_t full_words,
                                                       int64_t c,
                                                       uint64_t* out) {
  const __m256i bias = _mm256_set1_epi64x(
      static_cast<int64_t>(uint64_t{1} << 63));
  __m256i cv = _mm256_set1_epi64x(c);
  if (KUnsigned) cv = _mm256_xor_si256(cv, bias);
  for (size_t w = 0; w < full_words; ++w) {
    uint64_t m = 0;
    for (size_t g = 0; g < 16; ++g) {
      __m256i x = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(v + 64 * w + 4 * g));
      if (KUnsigned) x = _mm256_xor_si256(x, bias);
      uint32_t lt = static_cast<uint32_t>(_mm256_movemask_pd(
          _mm256_castsi256_pd(_mm256_cmpgt_epi64(cv, x))));
      uint32_t gt = static_cast<uint32_t>(_mm256_movemask_pd(
          _mm256_castsi256_pd(_mm256_cmpgt_epi64(x, cv))));
      m |= static_cast<uint64_t>(BitsFrom<OP>(lt, gt)) << (4 * g);
    }
    out[w] = m;
  }
}

template <Cmp OP, bool KUnsigned>
__attribute__((target("avx2"))) void CmpI64PairsWords(const int64_t* a,
                                                       const int64_t* b,
                                                       size_t full_words,
                                                       uint64_t* out) {
  const __m256i bias = _mm256_set1_epi64x(
      static_cast<int64_t>(uint64_t{1} << 63));
  for (size_t w = 0; w < full_words; ++w) {
    uint64_t m = 0;
    for (size_t g = 0; g < 16; ++g) {
      __m256i x = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(a + 64 * w + 4 * g));
      __m256i y = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(b + 64 * w + 4 * g));
      if (KUnsigned) {
        x = _mm256_xor_si256(x, bias);
        y = _mm256_xor_si256(y, bias);
      }
      uint32_t lt = static_cast<uint32_t>(_mm256_movemask_pd(
          _mm256_castsi256_pd(_mm256_cmpgt_epi64(y, x))));
      uint32_t gt = static_cast<uint32_t>(_mm256_movemask_pd(
          _mm256_castsi256_pd(_mm256_cmpgt_epi64(x, y))));
      m |= static_cast<uint64_t>(BitsFrom<OP>(lt, gt)) << (4 * g);
    }
    out[w] = m;
  }
}

__attribute__((target("avx2"))) void BytesNonZeroWords(const uint8_t* v,
                                                        size_t full_words,
                                                        uint64_t* out) {
  const __m256i zero = _mm256_setzero_si256();
  for (size_t w = 0; w < full_words; ++w) {
    __m256i lo = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(v + 64 * w));
    __m256i hi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(v + 64 * w + 32));
    uint32_t zlo = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(lo, zero)));
    uint32_t zhi = static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(hi, zero)));
    out[w] = ~(static_cast<uint64_t>(zhi) << 32 | zlo);
  }
}

// Op dispatch: one switch per call, template bodies per op.
template <template <Cmp> class Fn>
struct OpTable;

}  // namespace

}  // namespace avx2

#endif  // GS_SIMD_HAVE_AVX2_BUILD

// ---------------------------------------------------------------------------
// Dispatchers.

namespace {

// Splits `n` rows into SIMD full words plus a scalar tail. `simd_fn` is
// invoked with the number of full 64-row words; `tail_fn` handles the rest
// through the scalar reference kernel.
template <typename SimdFn, typename TailFn>
inline void SplitDispatch(size_t n, SimdFn&& simd_fn, TailFn&& tail_fn) {
  size_t full_words = n / 64;
  if (full_words > 0) simd_fn(full_words);
  if (n % 64 != 0) tail_fn(full_words);
}

}  // namespace

void CmpF64Const(const double* v, size_t n, Cmp op, double c, uint64_t* out) {
#if GS_SIMD_HAVE_AVX2_BUILD
  if (Avx2Active()) {
    SplitDispatch(
        n,
        [&](size_t fw) {
          switch (op) {
            case Cmp::kEq: avx2::CmpF64ConstWords<Cmp::kEq>(v, fw, c, out); break;
            case Cmp::kNe: avx2::CmpF64ConstWords<Cmp::kNe>(v, fw, c, out); break;
            case Cmp::kLt: avx2::CmpF64ConstWords<Cmp::kLt>(v, fw, c, out); break;
            case Cmp::kLe: avx2::CmpF64ConstWords<Cmp::kLe>(v, fw, c, out); break;
            case Cmp::kGt: avx2::CmpF64ConstWords<Cmp::kGt>(v, fw, c, out); break;
            case Cmp::kGe: avx2::CmpF64ConstWords<Cmp::kGe>(v, fw, c, out); break;
          }
        },
        [&](size_t fw) {
          scalar::CmpF64Const(v + 64 * fw, n - 64 * fw, op, c, out + fw);
        });
    return;
  }
#endif
  scalar::CmpF64Const(v, n, op, c, out);
}

void CmpF64Pairs(const double* a, const double* b, size_t n, Cmp op,
                 uint64_t* out) {
#if GS_SIMD_HAVE_AVX2_BUILD
  if (Avx2Active()) {
    SplitDispatch(
        n,
        [&](size_t fw) {
          switch (op) {
            case Cmp::kEq: avx2::CmpF64PairsWords<Cmp::kEq>(a, b, fw, out); break;
            case Cmp::kNe: avx2::CmpF64PairsWords<Cmp::kNe>(a, b, fw, out); break;
            case Cmp::kLt: avx2::CmpF64PairsWords<Cmp::kLt>(a, b, fw, out); break;
            case Cmp::kLe: avx2::CmpF64PairsWords<Cmp::kLe>(a, b, fw, out); break;
            case Cmp::kGt: avx2::CmpF64PairsWords<Cmp::kGt>(a, b, fw, out); break;
            case Cmp::kGe: avx2::CmpF64PairsWords<Cmp::kGe>(a, b, fw, out); break;
          }
        },
        [&](size_t fw) {
          scalar::CmpF64Pairs(a + 64 * fw, b + 64 * fw, n - 64 * fw, op,
                              out + fw);
        });
    return;
  }
#endif
  scalar::CmpF64Pairs(a, b, n, op, out);
}

void CmpI64Const(const int64_t* v, size_t n, Cmp op, int64_t c,
                 uint64_t* out) {
#if GS_SIMD_HAVE_AVX2_BUILD
  if (Avx2Active()) {
    SplitDispatch(
        n,
        [&](size_t fw) {
          switch (op) {
            case Cmp::kEq: avx2::CmpI64ConstWords<Cmp::kEq, false>(v, fw, c, out); break;
            case Cmp::kNe: avx2::CmpI64ConstWords<Cmp::kNe, false>(v, fw, c, out); break;
            case Cmp::kLt: avx2::CmpI64ConstWords<Cmp::kLt, false>(v, fw, c, out); break;
            case Cmp::kLe: avx2::CmpI64ConstWords<Cmp::kLe, false>(v, fw, c, out); break;
            case Cmp::kGt: avx2::CmpI64ConstWords<Cmp::kGt, false>(v, fw, c, out); break;
            case Cmp::kGe: avx2::CmpI64ConstWords<Cmp::kGe, false>(v, fw, c, out); break;
          }
        },
        [&](size_t fw) {
          scalar::CmpI64Const(v + 64 * fw, n - 64 * fw, op, c, out + fw);
        });
    return;
  }
#endif
  scalar::CmpI64Const(v, n, op, c, out);
}

void CmpI64Pairs(const int64_t* a, const int64_t* b, size_t n, Cmp op,
                 uint64_t* out) {
#if GS_SIMD_HAVE_AVX2_BUILD
  if (Avx2Active()) {
    SplitDispatch(
        n,
        [&](size_t fw) {
          switch (op) {
            case Cmp::kEq: avx2::CmpI64PairsWords<Cmp::kEq, false>(a, b, fw, out); break;
            case Cmp::kNe: avx2::CmpI64PairsWords<Cmp::kNe, false>(a, b, fw, out); break;
            case Cmp::kLt: avx2::CmpI64PairsWords<Cmp::kLt, false>(a, b, fw, out); break;
            case Cmp::kLe: avx2::CmpI64PairsWords<Cmp::kLe, false>(a, b, fw, out); break;
            case Cmp::kGt: avx2::CmpI64PairsWords<Cmp::kGt, false>(a, b, fw, out); break;
            case Cmp::kGe: avx2::CmpI64PairsWords<Cmp::kGe, false>(a, b, fw, out); break;
          }
        },
        [&](size_t fw) {
          scalar::CmpI64Pairs(a + 64 * fw, b + 64 * fw, n - 64 * fw, op,
                              out + fw);
        });
    return;
  }
#endif
  scalar::CmpI64Pairs(a, b, n, op, out);
}

void CmpU64Const(const uint64_t* v, size_t n, Cmp op, uint64_t c,
                 uint64_t* out) {
#if GS_SIMD_HAVE_AVX2_BUILD
  if (Avx2Active()) {
    const int64_t* vi = reinterpret_cast<const int64_t*>(v);
    int64_t ci = static_cast<int64_t>(c);
    SplitDispatch(
        n,
        [&](size_t fw) {
          switch (op) {
            case Cmp::kEq: avx2::CmpI64ConstWords<Cmp::kEq, true>(vi, fw, ci, out); break;
            case Cmp::kNe: avx2::CmpI64ConstWords<Cmp::kNe, true>(vi, fw, ci, out); break;
            case Cmp::kLt: avx2::CmpI64ConstWords<Cmp::kLt, true>(vi, fw, ci, out); break;
            case Cmp::kLe: avx2::CmpI64ConstWords<Cmp::kLe, true>(vi, fw, ci, out); break;
            case Cmp::kGt: avx2::CmpI64ConstWords<Cmp::kGt, true>(vi, fw, ci, out); break;
            case Cmp::kGe: avx2::CmpI64ConstWords<Cmp::kGe, true>(vi, fw, ci, out); break;
          }
        },
        [&](size_t fw) {
          scalar::CmpU64Const(v + 64 * fw, n - 64 * fw, op, c, out + fw);
        });
    return;
  }
#endif
  scalar::CmpU64Const(v, n, op, c, out);
}

void CmpU64Pairs(const uint64_t* a, const uint64_t* b, size_t n, Cmp op,
                 uint64_t* out) {
#if GS_SIMD_HAVE_AVX2_BUILD
  if (Avx2Active()) {
    const int64_t* ai = reinterpret_cast<const int64_t*>(a);
    const int64_t* bi = reinterpret_cast<const int64_t*>(b);
    SplitDispatch(
        n,
        [&](size_t fw) {
          switch (op) {
            case Cmp::kEq: avx2::CmpI64PairsWords<Cmp::kEq, true>(ai, bi, fw, out); break;
            case Cmp::kNe: avx2::CmpI64PairsWords<Cmp::kNe, true>(ai, bi, fw, out); break;
            case Cmp::kLt: avx2::CmpI64PairsWords<Cmp::kLt, true>(ai, bi, fw, out); break;
            case Cmp::kLe: avx2::CmpI64PairsWords<Cmp::kLe, true>(ai, bi, fw, out); break;
            case Cmp::kGt: avx2::CmpI64PairsWords<Cmp::kGt, true>(ai, bi, fw, out); break;
            case Cmp::kGe: avx2::CmpI64PairsWords<Cmp::kGe, true>(ai, bi, fw, out); break;
          }
        },
        [&](size_t fw) {
          scalar::CmpU64Pairs(a + 64 * fw, b + 64 * fw, n - 64 * fw, op,
                              out + fw);
        });
    return;
  }
#endif
  scalar::CmpU64Pairs(a, b, n, op, out);
}

void BytesNonZero(const uint8_t* v, size_t n, uint64_t* out) {
#if GS_SIMD_HAVE_AVX2_BUILD
  if (Avx2Active()) {
    SplitDispatch(
        n, [&](size_t fw) { avx2::BytesNonZeroWords(v, fw, out); },
        [&](size_t fw) {
          scalar::BytesNonZero(v + 64 * fw, n - 64 * fw, out + fw);
        });
    return;
  }
#endif
  scalar::BytesNonZero(v, n, out);
}

}  // namespace gs::simd
