// Status and StatusOr: exception-free error handling, following the Google
// style used across this codebase (see DESIGN.md §12).
#ifndef GRAPHSURGE_COMMON_STATUS_H_
#define GRAPHSURGE_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace gs {

/// Canonical error space, deliberately small.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kIoError,
  kParseError,
};

/// Returns a short human-readable name for `code` ("OK", "InvalidArgument"...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error result carrying a code and message. Cheap to move;
/// OK status carries no allocation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status IoError(std::string m) {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value or an error. Access to the value when holding an error aborts in
/// debug builds (assert); callers must check ok() first.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT implicit
    assert(!status_.ok() && "OK StatusOr must carry a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT implicit

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagate errors up the stack: `GS_RETURN_IF_ERROR(DoThing());`
#define GS_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::gs::Status _gs_status = (expr);             \
    if (!_gs_status.ok()) return _gs_status;      \
  } while (0)

// Assign-or-return for StatusOr: `GS_ASSIGN_OR_RETURN(auto v, Make());`
#define GS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value();
#define GS_ASSIGN_OR_RETURN_CAT(a, b) a##b
#define GS_ASSIGN_OR_RETURN_NAME(a, b) GS_ASSIGN_OR_RETURN_CAT(a, b)
#define GS_ASSIGN_OR_RETURN(lhs, expr) \
  GS_ASSIGN_OR_RETURN_IMPL(GS_ASSIGN_OR_RETURN_NAME(_gs_or, __LINE__), lhs, expr)

}  // namespace gs

#endif  // GRAPHSURGE_COMMON_STATUS_H_
