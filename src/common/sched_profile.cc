#include "common/sched_profile.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>

#include "common/introspect.h"
#include "common/metrics.h"
#include "common/timeseries.h"

namespace gs::sched {

namespace {

// Process-lifetime totals behind GlobalSummaryJson: they survive profile
// teardown, so a bench that builds and destroys many dataflows still
// reports the full run. Indexed by State.
std::atomic<uint64_t> g_state_nanos[kNumStates];
std::atomic<uint64_t> g_steps{0};
std::atomic<uint64_t> g_wall_nanos{0};

std::string FormatFraction(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", value);
  return buf;
}

void AppendAttribution(std::string* out, size_t worker,
                       const WorkerAttribution& a) {
  char buf[320];
  const uint64_t total = a.total_ns();
  const double denom = total > 0 ? static_cast<double>(total) : 1.0;
  std::snprintf(
      buf, sizeof(buf),
      "{\"worker\": %zu, \"busy_ns\": %llu, \"exchange_ns\": %llu, "
      "\"barrier_ns\": %llu, \"seal_ns\": %llu, \"idle_ns\": %llu, "
      "\"total_ns\": %llu, \"busy_pct\": %.1f, \"exchange_pct\": %.1f, "
      "\"barrier_pct\": %.1f, \"seal_pct\": %.1f, \"idle_pct\": %.1f, "
      "\"events\": %llu, \"peak_pending\": %llu}",
      worker, static_cast<unsigned long long>(a.busy_ns),
      static_cast<unsigned long long>(a.exchange_ns),
      static_cast<unsigned long long>(a.barrier_ns),
      static_cast<unsigned long long>(a.seal_ns),
      static_cast<unsigned long long>(a.idle_ns),
      static_cast<unsigned long long>(total),
      100.0 * static_cast<double>(a.busy_ns) / denom,
      100.0 * static_cast<double>(a.exchange_ns) / denom,
      100.0 * static_cast<double>(a.barrier_ns) / denom,
      100.0 * static_cast<double>(a.seal_ns) / denom,
      100.0 * static_cast<double>(a.idle_ns) / denom,
      static_cast<unsigned long long>(a.events),
      static_cast<unsigned long long>(a.peak_pending));
  *out += buf;
}

}  // namespace

uint64_t ProfileNow() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char* StateName(State state) {
  switch (state) {
    case State::kBusy: return "busy";
    case State::kExchange: return "exchange";
    case State::kBarrier: return "barrier";
    case State::kSeal: return "seal";
    case State::kIdle: return "idle";
  }
  return "unknown";
}

Skew ComputeSkew(const std::vector<uint64_t>& per_shard) {
  Skew skew;
  if (per_shard.empty()) return skew;
  uint64_t sum = 0;
  uint64_t max = 0;
  for (uint64_t v : per_shard) {
    sum += v;
    if (v > max) max = v;
  }
  if (sum == 0) return skew;
  const double n = static_cast<double>(per_shard.size());
  const double mean = static_cast<double>(sum) / n;
  skew.max_mean_ratio = static_cast<double>(max) / mean;
  // Gini via mean absolute difference: G = Σ_ij |x_i − x_j| / (2 n² mean).
  // Shard counts are small (n == num_workers), so O(n²) is fine.
  double abs_diff = 0.0;
  for (size_t i = 0; i < per_shard.size(); ++i) {
    for (size_t j = 0; j < per_shard.size(); ++j) {
      const double d = static_cast<double>(per_shard[i]) -
                       static_cast<double>(per_shard[j]);
      abs_diff += d < 0 ? -d : d;
    }
  }
  skew.gini = abs_diff / (2.0 * n * n * mean);
  return skew;
}

StepProfile::StepProfile(std::string name, size_t num_workers)
    : name_(std::move(name)),
      num_workers_(num_workers > 0 ? num_workers : 1),
      current_(num_workers_),
      block_active_ns_(num_workers_, 0),
      last_events_(num_workers_, 0),
      totals_(num_workers_) {
  // Cache the per-(state, worker) registry counters once — StepEnd then
  // only does atomic adds, never a registry lookup.
  state_counters_.reserve(kNumStates * num_workers_);
  metrics::Registry& registry = metrics::Registry::Global();
  for (size_t s = 0; s < kNumStates; ++s) {
    for (size_t w = 0; w < num_workers_; ++w) {
      state_counters_.push_back(registry.GetCounter(
          "gs_sched_state_nanos",
          {{"state", StateName(static_cast<State>(s))},
           {"worker", std::to_string(w)}}));
    }
  }
  ProfileRegistry::Global().Register(this);
}

StepProfile::~StepProfile() { ProfileRegistry::Global().Unregister(this); }

void StepProfile::StepBegin(uint32_t version) {
  in_step_ = true;
  in_block_ = false;
  step_version_ = version;
  step_start_ns_ = ProfileNow();
  boundary_ns_ = step_start_ns_;
  for (WorkerAttribution& w : current_) w = WorkerAttribution();
}

void StepProfile::BlockBegin() {
  if (!in_step_) return;
  const uint64_t now = ProfileNow();
  const uint64_t gap = now - boundary_ns_;
  for (WorkerAttribution& w : current_) w.idle_ns += gap;
  std::fill(block_active_ns_.begin(), block_active_ns_.end(), uint64_t{0});
  boundary_ns_ = now;
  in_block_ = true;
}

void StepProfile::BlockEnd() {
  if (!in_step_ || !in_block_) return;
  const uint64_t now = ProfileNow();
  const uint64_t block_wall = now - boundary_ns_;
  for (size_t w = 0; w < num_workers_; ++w) {
    // A worker's active time can marginally exceed the coordinator-measured
    // block wall only through clock-read interleaving; clamp to keep the
    // tiling exact.
    const uint64_t active = std::min(block_active_ns_[w], block_wall);
    const uint64_t wait = block_wall - active;
    if (num_workers_ > 1) {
      current_[w].barrier_ns += wait;
    } else {
      // Inline pool: the "block remainder" is ParallelFor bookkeeping on
      // the one thread, not waiting on peers.
      current_[w].idle_ns += wait;
    }
  }
  boundary_ns_ = now;
  in_block_ = false;
}

void StepProfile::AddBusy(size_t w, uint64_t nanos) {
  current_[w].busy_ns += nanos;
  block_active_ns_[w] += nanos;
}

void StepProfile::AddExchange(size_t w, uint64_t nanos) {
  current_[w].exchange_ns += nanos;
  block_active_ns_[w] += nanos;
}

void StepProfile::AddSeal(size_t w, uint64_t nanos) {
  current_[w].seal_ns += nanos;
  block_active_ns_[w] += nanos;
}

void StepProfile::StepEnd(const StepInputs& inputs) {
  if (!in_step_) return;
  const uint64_t now = ProfileNow();
  const uint64_t gap = now - boundary_ns_;
  for (WorkerAttribution& w : current_) w.idle_ns += gap;
  const uint64_t wall = now - step_start_ns_;
  in_step_ = false;

  for (size_t w = 0; w < num_workers_; ++w) {
    if (w < inputs.per_worker_events.size()) {
      const uint64_t cumulative = inputs.per_worker_events[w];
      current_[w].events = cumulative - std::min(last_events_[w], cumulative);
      last_events_[w] = cumulative;
    }
    if (w < inputs.per_worker_peak_pending.size()) {
      current_[w].peak_pending = inputs.per_worker_peak_pending[w];
    }
  }

  uint64_t state_sums[kNumStates] = {0, 0, 0, 0, 0};
  for (size_t w = 0; w < num_workers_; ++w) {
    const WorkerAttribution& a = current_[w];
    state_counters_[static_cast<size_t>(State::kBusy) * num_workers_ + w]
        ->Increment(a.busy_ns);
    state_counters_[static_cast<size_t>(State::kExchange) * num_workers_ + w]
        ->Increment(a.exchange_ns);
    state_counters_[static_cast<size_t>(State::kBarrier) * num_workers_ + w]
        ->Increment(a.barrier_ns);
    state_counters_[static_cast<size_t>(State::kSeal) * num_workers_ + w]
        ->Increment(a.seal_ns);
    state_counters_[static_cast<size_t>(State::kIdle) * num_workers_ + w]
        ->Increment(a.idle_ns);
    state_sums[static_cast<size_t>(State::kBusy)] += a.busy_ns;
    state_sums[static_cast<size_t>(State::kExchange)] += a.exchange_ns;
    state_sums[static_cast<size_t>(State::kBarrier)] += a.barrier_ns;
    state_sums[static_cast<size_t>(State::kSeal)] += a.seal_ns;
    state_sums[static_cast<size_t>(State::kIdle)] += a.idle_ns;
  }
  for (size_t s = 0; s < kNumStates; ++s) {
    g_state_nanos[s].fetch_add(state_sums[s], std::memory_order_relaxed);
  }
  g_steps.fetch_add(1, std::memory_order_relaxed);
  g_wall_nanos.fetch_add(wall, std::memory_order_relaxed);

  Skew record_skew = ComputeSkew(inputs.per_shard_records);
  std::vector<uint64_t> cumulative_events(num_workers_, 0);
  for (size_t w = 0; w < num_workers_; ++w) {
    cumulative_events[w] = last_events_[w];
  }
  Skew event_skew = ComputeSkew(cumulative_events);

  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    steps_ += 1;
    wall_ns_ += wall;
    exchange_batches_ = inputs.exchange_batches;
    for (size_t w = 0; w < num_workers_; ++w) totals_[w].Add(current_[w]);
    // totals_[w].events accumulated deltas; keep it equal to the cumulative
    // figure (Add() summed the per-step deltas, which is the same thing).
    if (!inputs.per_shard_records.empty()) {
      per_shard_records_ = inputs.per_shard_records;
      record_skew_ = record_skew;
    }
    event_skew_ = event_skew;
    VersionRecord record;
    record.version = step_version_;
    record.wall_ns = wall;
    record.workers = current_;
    recent_.push_back(std::move(record));
    while (recent_.size() > kRecentVersions) recent_.pop_front();
  }

  // Gauges are last-writer-wins across dataflows — the freshest run is the
  // one being debugged. Milli-units: Gauge holds integers.
  metrics::Registry& registry = metrics::Registry::Global();
  static metrics::Gauge* ratio_gauge =
      registry.GetGauge("gs_sched_skew_ratio_milli");
  static metrics::Gauge* gini_gauge =
      registry.GetGauge("gs_sched_skew_gini_milli");
  static metrics::Gauge* event_ratio_gauge =
      registry.GetGauge("gs_sched_event_skew_ratio_milli");
  if (record_skew.max_mean_ratio > 0.0) {
    ratio_gauge->Set(static_cast<int64_t>(record_skew.max_mean_ratio * 1000));
    gini_gauge->Set(static_cast<int64_t>(record_skew.gini * 1000));
  }
  if (event_skew.max_mean_ratio > 0.0) {
    event_ratio_gauge->Set(
        static_cast<int64_t>(event_skew.max_mean_ratio * 1000));
  }
  // Time-series for the /workersz sparklines. Busy fraction is the
  // cross-worker mean for this step.
  const uint64_t denom = wall * num_workers_;
  const double busy_frac =
      denom > 0 ? static_cast<double>(
                      state_sums[static_cast<size_t>(State::kBusy)]) /
                      static_cast<double>(denom)
                : 0.0;
  const uint64_t t_ms = timeseries::NowMillis();
  if (record_skew.max_mean_ratio > 0.0) {
    timeseries::Store::Global().Record("gs_sched_skew_ratio", t_ms,
                                       record_skew.max_mean_ratio);
  }
  timeseries::Store::Global().Record("gs_sched_busy_frac", t_ms, busy_frac);
}

StepProfile::Snapshot StepProfile::GetSnapshot() const {
  Snapshot snap;
  snap.name = name_;
  snap.num_workers = num_workers_;
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snap.steps = steps_;
  snap.wall_ns = wall_ns_;
  snap.exchange_batches = exchange_batches_;
  snap.totals = totals_;
  snap.per_shard_records = per_shard_records_;
  snap.record_skew = record_skew_;
  snap.event_skew = event_skew_;
  snap.recent.assign(recent_.begin(), recent_.end());
  return snap;
}

std::string StepProfile::RenderJson() const {
  Snapshot snap = GetSnapshot();
  std::string out = "{\"name\": \"" + introspect::JsonEscape(snap.name) +
                    "\", \"workers\": " + std::to_string(snap.num_workers) +
                    ", \"steps\": " + std::to_string(snap.steps) +
                    ", \"wall_ns\": " + std::to_string(snap.wall_ns) +
                    ", \"exchange_batches\": " +
                    std::to_string(snap.exchange_batches);
  out += ", \"attribution\": [";
  for (size_t w = 0; w < snap.totals.size(); ++w) {
    if (w) out += ", ";
    AppendAttribution(&out, w, snap.totals[w]);
  }
  out += "], \"skew\": {\"records_ratio\": " +
         FormatFraction(snap.record_skew.max_mean_ratio) +
         ", \"records_gini\": " + FormatFraction(snap.record_skew.gini) +
         ", \"events_ratio\": " +
         FormatFraction(snap.event_skew.max_mean_ratio) +
         ", \"events_gini\": " + FormatFraction(snap.event_skew.gini) +
         ", \"per_shard_records\": [";
  for (size_t i = 0; i < snap.per_shard_records.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(snap.per_shard_records[i]);
  }
  out += "]}, \"recent\": [";
  for (size_t i = 0; i < snap.recent.size(); ++i) {
    const VersionRecord& r = snap.recent[i];
    if (i) out += ", ";
    out += "{\"version\": " + std::to_string(r.version) +
           ", \"wall_ns\": " + std::to_string(r.wall_ns) + ", \"workers\": [";
    // Compact per-worker rows for the ring: [busy, exchange, barrier,
    // seal, idle] nanos, in StateName order.
    for (size_t w = 0; w < r.workers.size(); ++w) {
      const WorkerAttribution& a = r.workers[w];
      if (w) out += ", ";
      out += "[" + std::to_string(a.busy_ns) + ", " +
             std::to_string(a.exchange_ns) + ", " +
             std::to_string(a.barrier_ns) + ", " +
             std::to_string(a.seal_ns) + ", " + std::to_string(a.idle_ns) +
             "]";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

ProfileRegistry& ProfileRegistry::Global() {
  static ProfileRegistry* registry = new ProfileRegistry();
  return *registry;
}

void ProfileRegistry::Register(StepProfile* profile) {
  std::lock_guard<std::mutex> lock(mutex_);
  profiles_.push_back(profile);
}

void ProfileRegistry::Unregister(StepProfile* profile) {
  std::lock_guard<std::mutex> lock(mutex_);
  profiles_.erase(std::remove(profiles_.begin(), profiles_.end(), profile),
                  profiles_.end());
}

std::string ProfileRegistry::RenderAllJson() const {
  std::string out = "{\"dataflows\": [";
  {
    // Profiles unregister in their destructor under this mutex, so every
    // pointer rendered here is alive for the duration of the render.
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t i = 0; i < profiles_.size(); ++i) {
      if (i) out += ", ";
      out += profiles_[i]->RenderJson();
    }
  }
  out += "], \"skew_sparklines\": {";
  bool first = true;
  for (const char* name : {"gs_sched_skew_ratio", "gs_sched_busy_frac"}) {
    timeseries::Series* series = timeseries::Store::Global().GetSeries(name);
    if (series == nullptr) continue;
    if (!first) out += ", ";
    first = false;
    out += "\"" + std::string(name) + "\": \"" +
           introspect::JsonEscape(timeseries::Sparkline(series->Snapshot(),
                                                        40)) +
           "\"";
  }
  out += "}, \"summary\": " + GlobalSummaryJson() + "}";
  return out;
}

std::string GlobalSummaryJson() {
  uint64_t state[kNumStates];
  uint64_t active_total = 0;
  for (size_t s = 0; s < kNumStates; ++s) {
    state[s] = g_state_nanos[s].load(std::memory_order_relaxed);
    active_total += state[s];
  }
  const uint64_t steps = g_steps.load(std::memory_order_relaxed);
  const uint64_t wall = g_wall_nanos.load(std::memory_order_relaxed);
  metrics::Registry& registry = metrics::Registry::Global();
  const int64_t ratio_milli =
      registry.GetGauge("gs_sched_skew_ratio_milli")->Value();
  const int64_t gini_milli =
      registry.GetGauge("gs_sched_skew_gini_milli")->Value();
  std::string out = "{\"steps\": " + std::to_string(steps) +
                    ", \"wall_ns\": " + std::to_string(wall) +
                    ", \"state_nanos\": {";
  for (size_t s = 0; s < kNumStates; ++s) {
    if (s) out += ", ";
    out += "\"" + std::string(StateName(static_cast<State>(s))) +
           "\": " + std::to_string(state[s]);
  }
  const double busy_frac =
      active_total > 0
          ? static_cast<double>(state[static_cast<size_t>(State::kBusy)]) /
                static_cast<double>(active_total)
          : 0.0;
  out += "}, \"busy_frac\": " + FormatFraction(busy_frac) +
         ", \"skew\": {\"records_ratio_milli\": " +
         std::to_string(ratio_milli) +
         ", \"records_gini_milli\": " + std::to_string(gini_milli) + "}}";
  return out;
}

}  // namespace gs::sched
