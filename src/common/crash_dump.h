// Crash-time flight recorder: flushes the trace_event ring buffers and a
// metrics snapshot when the process dies abnormally (GS_CHECK failure or a
// fatal signal), so the atexit trace dump installed by GRAPHSURGE_TRACE is
// not lost to the crash.
//
// The dump is best-effort, not async-signal-safe in the strict sense: it
// allocates while rendering JSON. That is the standard flight-recorder
// trade-off — the process is dying anyway, and the alternative is losing
// the data every time. A one-shot guard prevents recursion (a crash inside
// the dump falls through to the default handler).
#ifndef GRAPHSURGE_COMMON_CRASH_DUMP_H_
#define GRAPHSURGE_COMMON_CRASH_DUMP_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace gs {

/// Flushes the flight recorder: writes the trace buffers to the path named
/// by GRAPHSURGE_TRACE (if set; skipped otherwise) and the metrics registry
/// JSON snapshot to stderr, prefixed with `reason`. Idempotent — only the
/// first caller dumps; later (possibly recursive) calls return immediately.
void DumpFlightRecorder(const char* reason);

/// Installs SIGSEGV/SIGABRT handlers that dump the flight recorder and then
/// re-raise with the default disposition (so exit codes and core dumps are
/// unchanged). Idempotent; never overwrites handlers installed by sanitizer
/// runtimes (it chains by resetting to SIG_DFL only for its own signals).
void InstallCrashHandlers();

/// Renders one flight-recorder document as JSON: the reason and violated
/// rules (the watchdog's, empty for crashes), wall-clock and process-uptime
/// timestamps, build attribution, the newest trace events per thread, the
/// full metrics snapshot, and the time-series history. This is the payload
/// of watchdog flight dumps; unlike DumpFlightRecorder it has no one-shot
/// guard and does not kill or alter tracing state — the process keeps
/// running.
std::string RenderFlightRecorderJson(const char* reason,
                                     const std::vector<std::string>& rules);

/// RenderFlightRecorderJson written atomically-enough to `path` (single
/// open/write/close; dumps are diagnostic artifacts, torn only if the
/// process dies mid-dump).
Status WriteFlightRecorderFile(const std::string& path, const char* reason,
                               const std::vector<std::string>& rules);

}  // namespace gs

#endif  // GRAPHSURGE_COMMON_CRASH_DUMP_H_
