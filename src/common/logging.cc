#include "common/logging.h"

#include <atomic>

#include "common/crash_dump.h"

namespace gs {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<gs::internal::LogSink> g_log_sink{nullptr};
thread_local int g_worker_id = -1;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetThreadWorkerId(int id) { g_worker_id = id; }

int GetThreadWorkerId() { return g_worker_id; }

namespace internal {

void SetLogSinkForTest(LogSink sink) {
  g_log_sink.store(sink, std::memory_order_release);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  enabled_ = fatal || static_cast<int>(level) >=
                          g_log_level.load(std::memory_order_relaxed);
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_);
    if (g_worker_id >= 0) stream_ << " W" << g_worker_id;
    stream_ << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    // One fwrite per message: concurrent worker shards emit whole lines,
    // never interleaved fragments (stderr is unbuffered, so the single
    // fwrite maps to a single write).
    stream_ << '\n';
    std::string line = stream_.str();
    if (LogSink sink = g_log_sink.load(std::memory_order_acquire)) {
      sink(line.data(), line.size());
    } else {
      std::fwrite(line.data(), 1, line.size(), stderr);
      std::fflush(stderr);
    }
  }
  if (fatal_) {
    // Keep the flight recorder: a failed GS_CHECK loses the atexit trace
    // dump otherwise. The guard inside makes the SIGABRT handler's second
    // attempt a no-op.
    DumpFlightRecorder("GS_CHECK failure");
    std::abort();
  }
}

}  // namespace internal
}  // namespace gs
