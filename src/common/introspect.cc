#include "common/introspect.h"

#include <cstdio>

namespace gs::introspect {

Registry& Registry::Global() {
  // Leaked: sources may be collected from the status server thread until
  // process exit.
  static Registry* registry = new Registry();
  return *registry;
}

uint64_t Registry::Register(std::string name, Producer producer) {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t id = next_id_++;
  sources_.push_back(Source{id, std::move(name), std::move(producer)});
  return id;
}

void Registry::Unregister(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < sources_.size(); ++i) {
    if (sources_[i].id == id) {
      sources_.erase(sources_.begin() + i);
      return;
    }
  }
}

std::vector<Rendered> Registry::Collect() const {
  // Rendered under the registry lock: an object unregistering from its
  // destructor then blocks until any in-flight render of its producer has
  // finished, so producers can never observe freed state. Producers must
  // not call back into Register/Unregister (none in-tree do) and should be
  // cheap snapshot copies.
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Rendered> rendered;
  rendered.reserve(sources_.size());
  for (const Source& source : sources_) {
    rendered.push_back(Rendered{source.name, source.producer()});
  }
  return rendered;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace gs::introspect
