// Word-backed bitset shared by the bit-twiddling hot paths: EBM columns,
// graph tombstone bitmaps, the ordering optimizer's scratch sets, and the
// mutation validator's removed-id maps. One uint64_t word covers 64 bits;
// all multi-bit operations (population counts, XOR distances) are
// word-at-a-time, and callers that produce or consume 64-bit selection
// masks (common/simd.h, gvdl/batch_eval.h) read and write whole words.
#ifndef GRAPHSURGE_COMMON_BITSET_H_
#define GRAPHSURGE_COMMON_BITSET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace gs {

class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(size_t n, bool value = false) { Resize(n, value); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t num_words() const { return words_.size(); }

  static size_t WordsFor(size_t n) { return (n + 63) / 64; }

  /// Grows or shrinks to `n` bits; new bits take `value`.
  void Resize(size_t n, bool value = false) {
    size_t old_size = size_;
    words_.resize(WordsFor(n), value ? ~uint64_t{0} : 0);
    size_ = n;
    if (n > old_size && value && (old_size & 63) != 0) {
      // The partial old tail word was zero-padded; fill the reused bits.
      words_[old_size >> 6] |= ~uint64_t{0} << (old_size & 63);
    }
    ClearTailSlack();
  }

  /// Resets to `n` bits all equal to `value` (vector::assign analogue).
  void Assign(size_t n, bool value) {
    words_.assign(WordsFor(n), value ? ~uint64_t{0} : 0);
    size_ = n;
    ClearTailSlack();
  }

  void PushBack(bool value) {
    if ((size_ & 63) == 0) words_.push_back(0);
    if (value) words_[size_ >> 6] |= uint64_t{1} << (size_ & 63);
    ++size_;
  }

  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Reset(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  void SetTo(size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Reset(i);
    }
  }

  /// Whole-word access (bit j of word w is bit 64w+j). Bits at or beyond
  /// size() are guaranteed zero in every word.
  uint64_t word(size_t w) const { return words_[w]; }
  void set_word(size_t w, uint64_t value) { words_[w] = value; }
  uint64_t* word_data() { return words_.data(); }
  const uint64_t* word_data() const { return words_.data(); }

  uint64_t CountOnes() const {
    uint64_t total = 0;
    for (uint64_t w : words_) total += std::popcount(w);
    return total;
  }

  /// popcount(this XOR other); both bitsets must be the same size.
  uint64_t HammingDistance(const Bitset& other) const {
    uint64_t total = 0;
    for (size_t w = 0; w < words_.size(); ++w) {
      total += std::popcount(words_[w] ^ other.words_[w]);
    }
    return total;
  }

  friend bool operator==(const Bitset&, const Bitset&) = default;

 private:
  // Keeps bits past size() zero so word-level counts need no tail masking.
  void ClearTailSlack() {
    if ((size_ & 63) != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << (size_ & 63)) - 1;
    }
  }

  std::vector<uint64_t> words_;
  size_t size_ = 0;
};

}  // namespace gs

#endif  // GRAPHSURGE_COMMON_BITSET_H_
