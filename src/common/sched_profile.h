// Scheduler-level time attribution for sharded execution. A StepProfile
// accounts every nanosecond of a ShardedDataflow::Step() round into five
// mutually exclusive per-worker states:
//
//   busy      operator execution (scheduler events, input flushes)
//   exchange  draining cross-worker exchange inboxes
//   barrier   waiting at a phase barrier for slower peers
//   seal      version/epoch seal work (trace compaction, snapshots)
//   idle      coordinator-side time between phases (frontier computation,
//             snapshot refresh) — charged to every worker, since none runs
//
// Accounting is exact by construction, not sampled: the coordinator thread
// measures the wall time of each ParallelFor block and of the gaps between
// blocks; workers measure their own active time inside a block; the
// remainder of a block is barrier wait (or idle at W == 1, where the pool
// runs inline and there is nobody to wait for). The five states therefore
// tile each step's wall clock exactly — busy+exchange+barrier+seal+idle ==
// step wall for every worker — which is what makes the numbers trustworthy
// for scheduling decisions: "worker 3 spends 40% of wall in barrier-wait"
// is a measurement, not an estimate.
//
// Per-shard record counts (DataflowStats::shard_work, maintained by keyed
// operators at join/reduce boundaries) and per-worker scheduler event
// counts feed two skew figures: max/mean ratio (1.0 = perfectly balanced;
// the ratio bounds achievable speedup) and the Gini coefficient over
// shards. Both are published as registry gauges and a time-series, so a
// slow sharded run and a skewed one are finally distinguishable.
//
// Thread model: the coordinator (the thread driving Step) calls StepBegin /
// BlockBegin / BlockEnd / StepEnd; worker w calls AddBusy/AddExchange/
// AddSeal(w, ...) only inside a block, and only for its own slot. All
// cross-thread reads are ordered by the pool's barrier. Scrape threads
// (/workersz) only ever read the mutex-protected snapshot folded at
// StepEnd, never the live accumulators.
#ifndef GRAPHSURGE_COMMON_SCHED_PROFILE_H_
#define GRAPHSURGE_COMMON_SCHED_PROFILE_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace gs::metrics {
class Counter;
}  // namespace gs::metrics

namespace gs::sched {

/// Monotonic nanoseconds for attribution arithmetic (same clock for the
/// coordinator and every worker, so block walls and worker active times are
/// directly comparable).
uint64_t ProfileNow();

/// The exclusive worker states, in rendering order.
enum class State { kBusy = 0, kExchange, kBarrier, kSeal, kIdle };
inline constexpr size_t kNumStates = 5;
const char* StateName(State state);

/// One worker's accumulated state times plus its work counters.
struct WorkerAttribution {
  uint64_t busy_ns = 0;
  uint64_t exchange_ns = 0;
  uint64_t barrier_ns = 0;
  uint64_t seal_ns = 0;
  uint64_t idle_ns = 0;
  uint64_t events = 0;        // scheduler events processed
  uint64_t peak_pending = 0;  // high-water scheduler backlog

  uint64_t total_ns() const {
    return busy_ns + exchange_ns + barrier_ns + seal_ns + idle_ns;
  }
  void Add(const WorkerAttribution& other) {
    busy_ns += other.busy_ns;
    exchange_ns += other.exchange_ns;
    barrier_ns += other.barrier_ns;
    seal_ns += other.seal_ns;
    idle_ns += other.idle_ns;
    events += other.events;
    if (other.peak_pending > peak_pending) peak_pending = other.peak_pending;
  }
};

/// Imbalance summary over a per-shard work distribution.
struct Skew {
  /// max(shard) / mean(shard); 1.0 = perfectly balanced, W = one hot shard.
  /// The modeled speedup ceiling of a W-worker run is W / ratio. 0 when the
  /// distribution is empty or all-zero.
  double max_mean_ratio = 0.0;
  /// Gini coefficient over shards in [0, 1): 0 = balanced, → 1 = all work
  /// on one shard. Unlike the ratio it sees mid-distribution imbalance.
  double gini = 0.0;
};

Skew ComputeSkew(const std::vector<uint64_t>& per_shard);

/// Per-step counters the driver hands to StepEnd. Event/record figures are
/// cumulative (the profile differences them internally).
struct StepInputs {
  std::vector<uint64_t> per_worker_events;        // cumulative per worker
  std::vector<uint64_t> per_worker_peak_pending;  // high-water this step
  std::vector<uint64_t> per_shard_records;        // cumulative shard_work
  uint64_t exchange_batches = 0;                  // cumulative hub pushes
};

/// Time attribution for one sharded dataflow. Registered with the global
/// ProfileRegistry for its lifetime, so /workersz renders every live
/// dataflow. All methods are cheap (a clock read and a few adds); the only
/// lock taken on the driver path is snapshot_mutex_, once per step.
class StepProfile {
 public:
  /// `name` labels this dataflow in /workersz (match the introspect source
  /// name, e.g. "dataflow-3").
  StepProfile(std::string name, size_t num_workers);
  ~StepProfile();

  StepProfile(const StepProfile&) = delete;
  StepProfile& operator=(const StepProfile&) = delete;

  const std::string& name() const { return name_; }
  size_t num_workers() const { return num_workers_; }

  // --- Coordinator protocol (one thread) --------------------------------

  /// Opens a step window at `version`. Time before the first BlockBegin is
  /// idle.
  void StepBegin(uint32_t version);
  /// Marks the start of a ParallelFor block; the gap since the previous
  /// boundary is charged to idle on every worker.
  void BlockBegin();
  /// Marks the end of a ParallelFor block; each worker's unaccounted share
  /// of the block wall is barrier wait (idle at W == 1 — the inline pool
  /// has no peers to wait for).
  void BlockEnd();
  /// Closes the step window: charges the final gap to idle, folds the
  /// step's attribution into the lifetime totals and the recent-version
  /// ring, refreshes skew gauges, and bumps the registry counters.
  void StepEnd(const StepInputs& inputs);

  // --- Worker-side, only inside a block, only slot `w`'s thread ----------

  void AddBusy(size_t w, uint64_t nanos);
  void AddExchange(size_t w, uint64_t nanos);
  void AddSeal(size_t w, uint64_t nanos);

  // --- Scrape surface ----------------------------------------------------

  /// Attribution for one completed step (the recent-version ring entry).
  struct VersionRecord {
    uint32_t version = 0;
    uint64_t wall_ns = 0;
    std::vector<WorkerAttribution> workers;
  };

  struct Snapshot {
    std::string name;
    size_t num_workers = 0;
    uint64_t steps = 0;
    uint64_t wall_ns = 0;  // total across completed steps
    uint64_t exchange_batches = 0;
    std::vector<WorkerAttribution> totals;  // per worker, lifetime
    std::vector<uint64_t> per_shard_records;
    Skew record_skew;
    Skew event_skew;
    std::vector<VersionRecord> recent;  // newest last, ≤ kRecentVersions
  };

  /// Copies the snapshot folded at the last StepEnd. Safe from any thread.
  Snapshot GetSnapshot() const;

  /// This profile's /workersz JSON object.
  std::string RenderJson() const;

  static constexpr size_t kRecentVersions = 32;

 private:
  const std::string name_;
  const size_t num_workers_;

  // Live step state — coordinator-owned except the worker-slot adds, which
  // are ordered against coordinator reads by the pool barrier.
  bool in_step_ = false;
  bool in_block_ = false;
  uint32_t step_version_ = 0;
  uint64_t step_start_ns_ = 0;
  uint64_t boundary_ns_ = 0;  // last block edge (or step start)
  std::vector<WorkerAttribution> current_;
  std::vector<uint64_t> block_active_ns_;  // per worker, reset per block
  std::vector<uint64_t> last_events_;      // cumulative, for deltas

  // Registry counters cached at construction: [state * num_workers + w].
  std::vector<metrics::Counter*> state_counters_;

  mutable std::mutex snapshot_mutex_;
  uint64_t steps_ = 0;
  uint64_t wall_ns_ = 0;
  uint64_t exchange_batches_ = 0;
  std::vector<WorkerAttribution> totals_;
  std::vector<uint64_t> per_shard_records_;
  Skew record_skew_;
  Skew event_skew_;
  std::deque<VersionRecord> recent_;
};

/// All live StepProfiles — the /workersz data source.
class ProfileRegistry {
 public:
  static ProfileRegistry& Global();

  void Register(StepProfile* profile);
  void Unregister(StepProfile* profile);

  /// `{"dataflows": [...], "skew_sparklines": {...}, "summary": {...}}` —
  /// the /workersz body.
  std::string RenderAllJson() const;

 private:
  mutable std::mutex mutex_;
  std::vector<StepProfile*> profiles_;
};

/// Process-lifetime rollup across all profiles (including torn-down ones):
/// the BENCH json `sched` block. `{"steps", "wall_ns", "state_nanos",
/// "busy_frac", "skew"}`.
std::string GlobalSummaryJson();

}  // namespace gs::sched

#endif  // GRAPHSURGE_COMMON_SCHED_PROFILE_H_
