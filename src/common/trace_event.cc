#include "common/trace_event.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "common/crash_dump.h"
#include "common/logging.h"

namespace gs::trace {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point ProcessEpoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

struct Event {
  uint64_t ts_ns = 0;
  uint64_t dur_ns = 0;
  int64_t value = 0;  // counter events
  const char* category = "";
  char name[kNameCapacity] = {0};
  int32_t tid = 0;
  char phase = 'X';
  uint32_t version = kNoVersion;
};

/// Per-thread ring buffer. Only the owning thread writes, but readers (the
/// status server's /tracez, the crash-time flight recorder) may collect at
/// any moment, so both sides take the buffer's own mutex — uncontended in
/// steady state, and only held for a copy during a scrape.
class ThreadBuffer {
 public:
  static constexpr size_t kCapacity = 16384;

  ThreadBuffer() { events_.resize(kCapacity); }

  void Add(const Event& event) {
    std::lock_guard<std::mutex> lock(mutex_);
    events_[next_] = event;
    next_ = (next_ + 1) % kCapacity;
    if (next_ == 0) wrapped_ = true;
  }

  /// Appends the buffered events, oldest first. `max_events` == 0 keeps
  /// everything; otherwise only the newest `max_events` are appended.
  void CollectInto(std::vector<Event>* out, size_t max_events = 0) const {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t begin = out->size();
    if (wrapped_) {
      out->insert(out->end(), events_.begin() + next_, events_.end());
    }
    out->insert(out->end(), events_.begin(), events_.begin() + next_);
    size_t collected = out->size() - begin;
    if (max_events != 0 && collected > max_events) {
      auto first = out->begin() + static_cast<std::ptrdiff_t>(begin);
      out->erase(first,
                 first + static_cast<std::ptrdiff_t>(collected - max_events));
    }
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    next_ = 0;
    wrapped_ = false;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  size_t next_ = 0;
  bool wrapped_ = false;
};

/// Global list of all thread buffers ever created. Leaked so the atexit
/// dump installed by GRAPHSURGE_TRACE can still read it; buffers outlive
/// their threads (the recorded events remain dumpable).
struct BufferRegistry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  int32_t next_thread_index = 0;
};

BufferRegistry& Buffers() {
  static BufferRegistry* registry = new BufferRegistry();
  return *registry;
}

struct ThreadState {
  ThreadBuffer* buffer = nullptr;
  int32_t fallback_tid = 0;
};

ThreadState& LocalState() {
  thread_local ThreadState state = [] {
    ThreadState s;
    auto owned = std::make_unique<ThreadBuffer>();
    s.buffer = owned.get();
    BufferRegistry& registry = Buffers();
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.buffers.push_back(std::move(owned));
    // Synthetic tids start at 1000 so they never collide with worker ids.
    s.fallback_tid = 1000 + registry.next_thread_index++;
    return s;
  }();
  return state;
}

int32_t EffectiveTid() {
  int worker = GetThreadWorkerId();
  return worker >= 0 ? worker : LocalState().fallback_tid;
}

void Record(char phase, const char* category, const char* name,
            uint64_t ts_ns, uint64_t dur_ns, int64_t value,
            uint32_t version) {
  Event event;
  event.ts_ns = ts_ns;
  event.dur_ns = dur_ns;
  event.value = value;
  event.category = category;
  std::strncpy(event.name, name, kNameCapacity - 1);
  event.phase = phase;
  event.version = version;
  event.tid = EffectiveTid();
  LocalState().buffer->Add(event);
}

std::string JsonQuote(const char* s) {
  std::string out = "\"";
  for (; *s; ++s) {
    char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

/// Installs the GRAPHSURGE_TRACE env-var hook: enable recording at startup,
/// dump at exit. Lives in this TU so any binary referencing the recorder
/// (every engine binary: operator spans live in dataflow.h) gets it.
struct EnvTraceDump {
  EnvTraceDump() {
    const char* env = std::getenv("GRAPHSURGE_TRACE");
    if (env == nullptr || *env == '\0') return;
    Path() = env;
    SetEnabled(true);
    // A crash must not lose the recording the user asked for.
    InstallCrashHandlers();
    std::atexit(+[] {
      SetEnabled(false);
      Status status = WriteJson(Path());
      if (status.ok()) {
        std::fprintf(stderr, "[trace] wrote %s\n", Path().c_str());
      } else {
        std::fprintf(stderr, "[trace] dump failed: %s\n",
                     status.ToString().c_str());
      }
    });
  }

  static std::string& Path() {
    static std::string* path = new std::string();
    return *path;
  }
};

EnvTraceDump g_env_trace_dump;

}  // namespace

void SetEnabled(bool enabled) {
  // Make sure the epoch exists before the first event is recorded.
  ProcessEpoch();
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           ProcessEpoch())
          .count());
}

void AddCompleteEvent(const char* category, const char* name,
                      uint64_t start_ns, uint64_t duration_ns,
                      uint32_t version) {
  if (!Enabled()) return;
  Record('X', category, name, start_ns, duration_ns, 0, version);
}

void AddInstantEvent(const char* category, const char* name,
                     uint32_t version) {
  if (!Enabled()) return;
  Record('i', category, name, NowNanos(), 0, 0, version);
}

void AddCounterEvent(const char* category, const char* name, int64_t value) {
  if (!Enabled()) return;
  Record('C', category, name, NowNanos(), 0, value, kNoVersion);
}

namespace {

std::vector<Event> CollectEvents(size_t max_events_per_thread) {
  std::vector<Event> events;
  BufferRegistry& registry = Buffers();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (const auto& buffer : registry.buffers) {
    buffer->CollectInto(&events, max_events_per_thread);
  }
  return events;
}

std::string RenderJson(const std::vector<Event>& events) {
  std::string out = "{\"traceEvents\": [";
  char buf[160];
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (i) out += ",";
    out += "\n  {\"name\": " + JsonQuote(e.name) +
           ", \"cat\": " + JsonQuote(e.category);
    std::snprintf(buf, sizeof(buf),
                  ", \"ph\": \"%c\", \"ts\": %.3f, \"pid\": 1, \"tid\": %d",
                  e.phase, static_cast<double>(e.ts_ns) / 1e3, e.tid);
    out += buf;
    if (e.phase == 'X') {
      std::snprintf(buf, sizeof(buf), ", \"dur\": %.3f",
                    static_cast<double>(e.dur_ns) / 1e3);
      out += buf;
    }
    if (e.phase == 'C') {
      std::snprintf(buf, sizeof(buf),
                    ", \"args\": {\"value\": %lld}",
                    static_cast<long long>(e.value));
      out += buf;
    } else if (e.version != kNoVersion) {
      std::snprintf(buf, sizeof(buf), ", \"args\": {\"version\": %u}",
                    e.version);
      out += buf;
    }
    out += "}";
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

}  // namespace

std::string ToJson() { return RenderJson(CollectEvents(0)); }

std::vector<CollectedEvent> CollectStructured() {
  std::vector<Event> events = CollectEvents(0);
  std::vector<CollectedEvent> out;
  out.reserve(events.size());
  for (const Event& e : events) {
    CollectedEvent c;
    c.ts_ns = e.ts_ns;
    c.dur_ns = e.dur_ns;
    c.value = e.value;
    c.tid = e.tid;
    c.phase = e.phase;
    c.version = e.version;
    c.category = e.category;
    c.name = e.name;
    out.push_back(std::move(c));
  }
  return out;
}

std::string ToJsonTail(size_t max_events_per_thread) {
  return RenderJson(CollectEvents(max_events_per_thread));
}

Status WriteJson(const std::string& path) {
  std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace output file: " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal("short write to trace output file: " + path);
  }
  return Status::Ok();
}

void ClearForTest() {
  BufferRegistry& registry = Buffers();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (auto& buffer : registry.buffers) buffer->Clear();
}

}  // namespace gs::trace
