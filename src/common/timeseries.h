// In-process metrics time-series: the historical half of the health plane.
//
// The metrics registry (metrics.h) answers "what is the value now"; this
// store answers "how did it move" — each selected metric series gets a
// fixed-size ring buffer of (timestamp, value) samples, populated by a
// low-overhead sampler thread that snapshots the registry's counters and
// gauges at a configurable cadence. Consumers are the /timeseriez endpoint
// (full sample history as JSON), /statusz (sparkline summaries), the
// watchdog (rule evaluation over recent movement), and flight-recorder
// dumps (history at the moment a rule fired).
//
// Memory is strictly bounded: kMaxSeries rings of Series::kDefaultCapacity
// samples each (16 bytes per sample); series beyond the cap are counted as
// dropped, never silently resized. Writers take one per-series mutex for a
// ring-slot store — the sampler is the only steady writer, so there is no
// contention to speak of, and scrapes copy the ring under the same mutex.
//
// Timestamps are milliseconds since process start on the steady clock
// (NowMillis) — the shared time origin for every sample, the watchdog's
// deadlines, and the in-progress markers instrumented code publishes
// (e.g. gs_live_epoch_advance_started_ms).
#ifndef GRAPHSURGE_COMMON_TIMESERIES_H_
#define GRAPHSURGE_COMMON_TIMESERIES_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace gs::timeseries {

/// Milliseconds elapsed since process start, on the steady clock. The time
/// origin shared by samples, watchdog deadlines, and in-progress markers.
uint64_t NowMillis();

/// One observation: value of a series at `t_ms` (NowMillis time).
struct Sample {
  uint64_t t_ms = 0;
  double value = 0.0;
};

/// Rollups over a series' retained window.
struct SeriesStats {
  size_t count = 0;      // samples retained (≤ capacity)
  double min = 0.0;
  double max = 0.0;
  double last = 0.0;
  /// (last − first) / elapsed seconds over the retained window: the delta
  /// rate for counters, the average slope for gauges. 0 with < 2 samples.
  double rate_per_s = 0.0;
};

/// Fixed-capacity ring of samples. Thread-safe; Record overwrites the
/// oldest sample once full.
class Series {
 public:
  static constexpr size_t kDefaultCapacity = 512;

  explicit Series(size_t capacity = kDefaultCapacity);

  void Record(uint64_t t_ms, double value);

  /// The retained samples, oldest first.
  std::vector<Sample> Snapshot() const;

  SeriesStats Stats() const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Sample> ring_;  // size ≤ capacity_, ring_[next_] is oldest
  size_t next_ = 0;           // overwrite position once full
};

/// Unicode sparkline (▁▂▃▄▅▆▇█) of the last `width` samples, min-max
/// normalized over that window. Empty string for an empty series; a flat
/// series renders as all-minimum.
std::string Sparkline(const std::vector<Sample>& samples, size_t width);

/// Name → Series map with a hard series cap. Series pointers are stable for
/// the store's lifetime (Global() is never destroyed).
class Store {
 public:
  /// Series retained per store; families with per-label series (e.g.
  /// gs_graph_epoch{graph=...}) stay bounded by this, not by label count.
  static constexpr size_t kMaxSeries = 128;

  Store() = default;
  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;

  /// The process-wide store (leaked singleton; registers the "timeseries"
  /// /statusz source on first use).
  static Store& Global();

  /// Finds or creates the series; nullptr once kMaxSeries distinct names
  /// exist (the drop is counted, see ToJson).
  Series* GetSeries(const std::string& name);

  /// Convenience: GetSeries + Record, ignoring the over-cap case.
  void Record(const std::string& name, uint64_t t_ms, double value);

  std::vector<std::string> Names() const;

  /// Full store as one JSON object: per-series rollups and the sample
  /// history, plus sampler state and the dropped-series count. The payload
  /// behind /timeseriez, and embedded in flight-recorder dumps and
  /// BENCH_*.json reports.
  std::string ToJson() const;

  /// Compact JSON (rollups + sparklines, no sample arrays) for /statusz.
  std::string ToSummaryJson() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Series>> series_;
  uint64_t dropped_series_ = 0;
};

/// The sampler thread: every cadence_ms, snapshots all watched counter and
/// gauge series from metrics::Registry::Global() into Store::Global().
/// Watching is by family name (the key up to '{'), so one watch covers
/// every label combination of a family.
class Sampler {
 public:
  Sampler() = default;
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// The process-wide sampler (leaked singleton).
  static Sampler& Global();

  /// Starts the thread at `cadence_ms` (clamped to ≥ 1). Fails if already
  /// running. The thread is joined by Stop(), which an atexit hook also
  /// runs, so sanitizer builds see a clean shutdown.
  Status Start(uint64_t cadence_ms = kDefaultCadenceMs);

  /// Stops and joins the thread. Idempotent.
  void Stop();

  bool running() const;
  uint64_t cadence_ms() const;

  /// Adds `family` to the watch list (on top of the built-in defaults).
  void AddWatch(const std::string& family);

  /// Takes one sample pass on the caller's thread (also what the thread
  /// does each tick; exposed for tests and for pre-dump freshness).
  void SampleOnce();

  /// Starts Global() per GRAPHSURGE_SAMPLE_MS (unset/empty/0 = off).
  /// Returns true if the sampler is running on return.
  static bool MaybeStartFromEnv();

  static constexpr uint64_t kDefaultCadenceMs = 250;

 private:
  void Loop();
  bool Watched(const std::string& family) const;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool running_ = false;
  bool stop_requested_ = false;
  uint64_t cadence_ms_ = kDefaultCadenceMs;
  std::vector<std::string> extra_watches_;
  std::thread thread_;
};

}  // namespace gs::timeseries

#endif  // GRAPHSURGE_COMMON_TIMESERIES_H_
