// Deterministic seeded randomness for generators, perturbations, and tests.
#ifndef GRAPHSURGE_COMMON_RANDOM_H_
#define GRAPHSURGE_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace gs {

/// A seeded RNG wrapper. All synthetic data in this repository flows through
/// Rng so experiments are reproducible bit-for-bit given the same seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform in [0, n); n must be > 0.
  uint64_t Index(uint64_t n) {
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
  }

  double UniformReal(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  bool Bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Zipf-like power-law sample in [0, n): P(i) ∝ (i+1)^-alpha.
  /// Uses inverse-CDF over a cached prefix table for small n, rejection
  /// sampling otherwise.
  uint64_t PowerLaw(uint64_t n, double alpha) {
    // Inverse transform on the continuous approximation.
    double u = UniformReal(1e-12, 1.0);
    double x;
    if (alpha == 1.0) {
      x = std::pow(static_cast<double>(n), u) - 1.0;
    } else {
      double a1 = 1.0 - alpha;
      x = std::pow(u * (std::pow(static_cast<double>(n), a1) - 1.0) + 1.0,
                   1.0 / a1) -
          1.0;
    }
    uint64_t i = static_cast<uint64_t>(x);
    return i >= n ? n - 1 : i;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Index(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), order unspecified.
  std::vector<uint64_t> SampleDistinct(uint64_t n, uint64_t k) {
    std::vector<uint64_t> out;
    out.reserve(k);
    // Floyd's algorithm.
    std::vector<bool> seen;  // only used for small n
    if (n <= 1u << 22) {
      seen.assign(n, false);
      for (uint64_t j = n - k; j < n; ++j) {
        uint64_t t = Index(j + 1);
        if (seen[t]) t = j;
        seen[t] = true;
        out.push_back(t);
      }
    } else {
      for (uint64_t i = 0; i < k; ++i) out.push_back(Index(n));
    }
    return out;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace gs

#endif  // GRAPHSURGE_COMMON_RANDOM_H_
