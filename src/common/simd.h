// Vectorized compare kernels for the batch data plane: each kernel
// evaluates a comparison over `n` contiguous rows and writes one selection
// bit per row into an array of 64-bit mask words (bit j of out[w] is row
// 64w + j; trailing bits of the last word are zero).
//
// Two implementations exist for every kernel:
//   scalar:: — portable, compiled unconditionally, and the semantic
//              reference (the cross-check target for tests and the fuzz
//              oracle).
//   AVX2     — runtime-dispatched (function `target` attributes, no global
//              -mavx2) and bit-identical to scalar:: by construction.
// Dispatch picks AVX2 only when (a) the build did not set
// GRAPHSURGE_NO_SIMD, (b) the CPU reports AVX2, and (c) the environment
// variable GRAPHSURGE_NO_SIMD is unset/0 — (c) lets one binary exercise
// both paths, which the equivalence tests use.
//
// Comparison semantics match PropertyValue::Compare exactly:
//   - doubles use the ordered three-way (a<b, a>b, else "equal") rule, so
//     NaN compares "equal" to everything — kernels replicate this rather
//     than IEEE unordered semantics;
//   - int64 comparisons are exact (used for bool columns widened to 0/1 and
//     by callers that know both sides are integral);
//   - uint64 comparisons order big-endian-packed 8-byte string prefixes:
//     lexicographic byte order == unsigned order of the packed word.
#ifndef GRAPHSURGE_COMMON_SIMD_H_
#define GRAPHSURGE_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace gs::simd {

/// Comparison operator, mirroring gvdl::CompareOp (kept separate so the
/// kernels do not depend on the GVDL AST).
enum class Cmp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

/// Applies `op` to a three-way comparison result (<0, 0, >0).
inline bool ApplyCmp(Cmp op, int c) {
  switch (op) {
    case Cmp::kEq:
      return c == 0;
    case Cmp::kNe:
      return c != 0;
    case Cmp::kLt:
      return c < 0;
    case Cmp::kLe:
      return c <= 0;
    case Cmp::kGt:
      return c > 0;
    case Cmp::kGe:
      return c >= 0;
  }
  return false;
}

/// Number of mask words a kernel writes for `n` rows.
inline size_t MaskWords(size_t n) { return (n + 63) / 64; }

/// True when the AVX2 kernels are compiled in, the CPU supports them, and
/// the GRAPHSURGE_NO_SIMD environment variable does not disable them.
/// Cached after the first call.
bool Avx2Active();

/// Human-readable dispatch state for build attribution (the gs_build_info
/// metric): "avx2" (kernels active), "scalar" (compiled in but disabled by
/// CPU or environment), or "killed" (compiled out by GRAPHSURGE_NO_SIMD).
const char* DispatchStateName();

/// Big-endian 8-byte prefix of a string: lexicographic comparison of two
/// strings' first 8 bytes equals unsigned comparison of their prefixes.
/// Strings shorter than 8 bytes are zero-padded; a prefix tie therefore
/// requires a full scalar comparison (zero padding is indistinguishable
/// from embedded NUL bytes).
uint64_t StringPrefix(const std::string& s);

// ---------------------------------------------------------------------------
// Dispatched kernels. `v` (and `a`/`b` for the Pairs forms) hold `n` rows;
// `out` receives MaskWords(n) words.

void CmpF64Const(const double* v, size_t n, Cmp op, double c, uint64_t* out);
void CmpF64Pairs(const double* a, const double* b, size_t n, Cmp op,
                 uint64_t* out);
void CmpI64Const(const int64_t* v, size_t n, Cmp op, int64_t c,
                 uint64_t* out);
void CmpI64Pairs(const int64_t* a, const int64_t* b, size_t n, Cmp op,
                 uint64_t* out);
void CmpU64Const(const uint64_t* v, size_t n, Cmp op, uint64_t c,
                 uint64_t* out);
void CmpU64Pairs(const uint64_t* a, const uint64_t* b, size_t n, Cmp op,
                 uint64_t* out);

/// Validity/bool bytes → mask: bit j set iff v[64w + j] != 0.
void BytesNonZero(const uint8_t* v, size_t n, uint64_t* out);

// ---------------------------------------------------------------------------
// Portable reference implementations (always compiled; the dispatched
// kernels above fall back to these when AVX2 is unavailable or disabled).

namespace scalar {
void CmpF64Const(const double* v, size_t n, Cmp op, double c, uint64_t* out);
void CmpF64Pairs(const double* a, const double* b, size_t n, Cmp op,
                 uint64_t* out);
void CmpI64Const(const int64_t* v, size_t n, Cmp op, int64_t c,
                 uint64_t* out);
void CmpI64Pairs(const int64_t* a, const int64_t* b, size_t n, Cmp op,
                 uint64_t* out);
void CmpU64Const(const uint64_t* v, size_t n, Cmp op, uint64_t c,
                 uint64_t* out);
void CmpU64Pairs(const uint64_t* a, const uint64_t* b, size_t n, Cmp op,
                 uint64_t* out);
void BytesNonZero(const uint8_t* v, size_t n, uint64_t* out);
}  // namespace scalar

}  // namespace gs::simd

#endif  // GRAPHSURGE_COMMON_SIMD_H_
