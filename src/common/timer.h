// Wall-clock timing utilities used by the adaptive optimizer and benches.
#ifndef GRAPHSURGE_COMMON_TIMER_H_
#define GRAPHSURGE_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace gs {

/// Monotonic stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }
  int64_t Micros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }
  int64_t Nanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gs

#endif  // GRAPHSURGE_COMMON_TIMER_H_
