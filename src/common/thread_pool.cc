#include "common/thread_pool.h"

#include <algorithm>

namespace gs {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads <= 1) return;  // inline mode
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  if (threads_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (threads_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  if (threads_.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  ParallelForShards(n, [&fn](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::ParallelForShards(
    size_t n, const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t shards = std::min(num_threads(), n);
  if (shards <= 1) {
    fn(0, 0, n);
    return;
  }
  size_t chunk = (n + shards - 1) / shards;
  for (size_t s = 0; s < shards; ++s) {
    size_t begin = s * chunk;
    size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    Submit([&fn, s, begin, end] { fn(s, begin, end); });
  }
  Wait();
}

}  // namespace gs
