#include "common/crash_dump.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/metrics.h"
#include "common/status.h"
#include "common/trace_event.h"

namespace gs {

namespace {

std::atomic<bool> g_dumped{false};
std::atomic<bool> g_handlers_installed{false};

void CrashSignalHandler(int sig) {
  // Restore the default disposition first: a crash inside the dump (or the
  // re-raise below) then terminates instead of recursing.
  std::signal(sig, SIG_DFL);
  const char* reason = sig == SIGSEGV   ? "SIGSEGV"
                       : sig == SIGABRT ? "SIGABRT"
                                        : "fatal signal";
  DumpFlightRecorder(reason);
  std::raise(sig);
}

/// Installs `handler` for `sig` unless something other than the default
/// handler is already installed (a sanitizer runtime, a test harness) —
/// their crash reporting is more valuable than ours.
void MaybeInstall(int sig) {
  struct sigaction current;
  if (sigaction(sig, nullptr, &current) != 0) return;
  if ((current.sa_flags & SA_SIGINFO) != 0 ||
      (current.sa_handler != SIG_DFL && current.sa_handler != SIG_IGN)) {
    return;
  }
  struct sigaction action = {};
  action.sa_handler = CrashSignalHandler;
  sigemptyset(&action.sa_mask);
  sigaction(sig, &action, nullptr);
}

}  // namespace

void DumpFlightRecorder(const char* reason) {
  if (g_dumped.exchange(true)) return;
  std::fprintf(stderr, "[crash] %s: dumping flight recorder\n", reason);
  const char* trace_path = std::getenv("GRAPHSURGE_TRACE");
  if (trace_path != nullptr && *trace_path != '\0') {
    trace::SetEnabled(false);
    Status status = trace::WriteJson(trace_path);
    if (status.ok()) {
      std::fprintf(stderr, "[crash] trace written to %s\n", trace_path);
    } else {
      std::fprintf(stderr, "[crash] trace dump failed: %s\n",
                   status.ToString().c_str());
    }
  }
  std::string snapshot = metrics::Registry::Global().JsonSnapshot();
  std::fprintf(stderr, "[crash] metrics snapshot: %s\n", snapshot.c_str());
  std::fflush(stderr);
}

void InstallCrashHandlers() {
  if (g_handlers_installed.exchange(true)) return;
  MaybeInstall(SIGSEGV);
  MaybeInstall(SIGABRT);
}

}  // namespace gs
