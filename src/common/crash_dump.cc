#include "common/crash_dump.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/introspect.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/timeseries.h"
#include "common/trace_event.h"

namespace gs {

namespace {

std::atomic<bool> g_dumped{false};
std::atomic<bool> g_handlers_installed{false};

void CrashSignalHandler(int sig) {
  // Restore the default disposition first: a crash inside the dump (or the
  // re-raise below) then terminates instead of recursing.
  std::signal(sig, SIG_DFL);
  const char* reason = sig == SIGSEGV   ? "SIGSEGV"
                       : sig == SIGABRT ? "SIGABRT"
                                        : "fatal signal";
  DumpFlightRecorder(reason);
  std::raise(sig);
}

/// Installs `handler` for `sig` unless something other than the default
/// handler is already installed (a sanitizer runtime, a test harness) —
/// their crash reporting is more valuable than ours.
void MaybeInstall(int sig) {
  struct sigaction current;
  if (sigaction(sig, nullptr, &current) != 0) return;
  if ((current.sa_flags & SA_SIGINFO) != 0 ||
      (current.sa_handler != SIG_DFL && current.sa_handler != SIG_IGN)) {
    return;
  }
  struct sigaction action = {};
  action.sa_handler = CrashSignalHandler;
  sigemptyset(&action.sa_mask);
  sigaction(sig, &action, nullptr);
}

}  // namespace

void DumpFlightRecorder(const char* reason) {
  if (g_dumped.exchange(true)) return;
  std::fprintf(stderr, "[crash] %s: dumping flight recorder\n", reason);
  const char* trace_path = std::getenv("GRAPHSURGE_TRACE");
  if (trace_path != nullptr && *trace_path != '\0') {
    trace::SetEnabled(false);
    Status status = trace::WriteJson(trace_path);
    if (status.ok()) {
      std::fprintf(stderr, "[crash] trace written to %s\n", trace_path);
    } else {
      std::fprintf(stderr, "[crash] trace dump failed: %s\n",
                   status.ToString().c_str());
    }
  }
  std::string snapshot = metrics::Registry::Global().JsonSnapshot();
  std::fprintf(stderr, "[crash] metrics snapshot: %s\n", snapshot.c_str());
  std::fflush(stderr);
}

void InstallCrashHandlers() {
  if (g_handlers_installed.exchange(true)) return;
  MaybeInstall(SIGSEGV);
  MaybeInstall(SIGABRT);
}

std::string RenderFlightRecorderJson(const char* reason,
                                     const std::vector<std::string>& rules) {
  // Take one final sample pass so the time-series history includes the
  // instant of the dump even at a slow sampler cadence.
  timeseries::Sampler::Global().SampleOnce();
  const uint64_t unix_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  std::string out = "{\"reason\": \"";
  out += introspect::JsonEscape(reason == nullptr ? "" : reason);
  out += "\", \"violated_rules\": [";
  for (size_t i = 0; i < rules.size(); ++i) {
    if (i) out += ", ";
    out += "\"" + introspect::JsonEscape(rules[i]) + "\"";
  }
  out += "], \"timestamp_ms\": " + std::to_string(unix_ms);
  out += ", \"uptime_ms\": " + std::to_string(timeseries::NowMillis());
  out += ", \"build\": {";
  bool first = true;
  for (const auto& [key, value] : metrics::BuildInfoLabels()) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + introspect::JsonEscape(key) + "\": \"" +
           introspect::JsonEscape(value) + "\"";
  }
  out += "}, \"trace_events\": " + trace::ToJsonTail(256);
  out += ", \"metrics\": " + metrics::Registry::Global().JsonSnapshot();
  out += ", \"timeseries\": " + timeseries::Store::Global().ToJson();
  out += "}\n";
  return out;
}

Status WriteFlightRecorderFile(const std::string& path, const char* reason,
                               const std::vector<std::string>& rules) {
  std::string doc = RenderFlightRecorderJson(reason, rules);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open flight dump file: " + path);
  }
  size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  int close_rc = std::fclose(f);
  if (written != doc.size() || close_rc != 0) {
    return Status::Internal("short write to flight dump file: " + path);
  }
  return Status::Ok();
}

}  // namespace gs
