// Global registry of live introspection sources for the status server.
//
// Long-lived engine objects (ShardedDataflow, views::Executor runs) register
// a producer callback that renders a point-in-time JSON fragment of their
// state; the status server's /statusz handler concatenates every registered
// source into one document. Producers must be safe to invoke from an
// arbitrary scrape thread at any moment — the convention used in-tree is
// that the owning object keeps a mutex-protected snapshot it refreshes at
// safe points (phase barriers) and the producer only copies that snapshot.
#ifndef GRAPHSURGE_COMMON_INTROSPECT_H_
#define GRAPHSURGE_COMMON_INTROSPECT_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace gs::introspect {

/// A rendered source: `name` identifies the object, `json` is one JSON
/// value (object) describing its current state.
struct Rendered {
  std::string name;
  std::string json;
};

/// Thread-safe registry of introspection sources. Register returns an id to
/// pass to Unregister (or use ScopedSource). Collect() invokes every
/// producer and returns the rendered fragments.
class Registry {
 public:
  using Producer = std::function<std::string()>;

  static Registry& Global();

  uint64_t Register(std::string name, Producer producer);
  void Unregister(uint64_t id);

  std::vector<Rendered> Collect() const;

 private:
  struct Source {
    uint64_t id;
    std::string name;
    Producer producer;
  };

  mutable std::mutex mutex_;
  std::vector<Source> sources_;
  uint64_t next_id_ = 1;
};

/// RAII registration handle.
class ScopedSource {
 public:
  ScopedSource(std::string name, Registry::Producer producer)
      : id_(Registry::Global().Register(std::move(name),
                                       std::move(producer))) {}
  ~ScopedSource() { Registry::Global().Unregister(id_); }

  ScopedSource(const ScopedSource&) = delete;
  ScopedSource& operator=(const ScopedSource&) = delete;

 private:
  uint64_t id_;
};

/// Minimal JSON string escaper shared by introspection renderers.
std::string JsonEscape(const std::string& s);

}  // namespace gs::introspect

#endif  // GRAPHSURGE_COMMON_INTROSPECT_H_
