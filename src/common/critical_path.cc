#include "common/critical_path.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/introspect.h"

namespace gs::critical_path {

namespace {

struct SpanRec {
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  uint64_t dur_ns = 0;
  int32_t tid = 0;
  const std::string* name = nullptr;
};

bool IsChainCandidate(const trace::CollectedEvent& e) {
  if (e.phase != 'X' || e.version == trace::kNoVersion) return false;
  if (e.category == "op") return true;
  // Engine-phase work that is not operator activations but is still
  // dependent computation: input flush and version/epoch seal. The "step"
  // span is the wall-clock envelope and must NOT be a chain candidate — it
  // would trivially be the whole path.
  return e.category == "engine" &&
         (e.name == "flush" || e.name == "seal" || e.name == "seal_epoch");
}

/// Weighted interval scheduling over `spans` (max total duration over
/// mutually non-overlapping spans), with chain reconstruction. Sorts
/// `spans` by end time in place.
uint64_t LongestChain(std::vector<SpanRec>* spans,
                      std::vector<size_t>* chain) {
  std::vector<SpanRec>& s = *spans;
  std::sort(s.begin(), s.end(), [](const SpanRec& a, const SpanRec& b) {
    if (a.end_ns != b.end_ns) return a.end_ns < b.end_ns;
    return a.start_ns < b.start_ns;
  });
  const size_t n = s.size();
  std::vector<uint64_t> ends(n);
  for (size_t i = 0; i < n; ++i) ends[i] = s[i].end_ns;
  // q[i]: number of spans ending at or before s[i].start_ns — the DP state
  // reachable after taking span i.
  std::vector<size_t> q(n);
  for (size_t i = 0; i < n; ++i) {
    q[i] = static_cast<size_t>(
        std::upper_bound(ends.begin(), ends.end(), s[i].start_ns) -
        ends.begin());
    if (q[i] > i) q[i] = i;  // a span never chains onto itself
  }
  std::vector<uint64_t> opt(n + 1, 0);
  std::vector<char> take(n + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    const uint64_t with = s[i - 1].dur_ns + opt[q[i - 1]];
    if (with > opt[i - 1]) {
      opt[i] = with;
      take[i] = 1;
    } else {
      opt[i] = opt[i - 1];
    }
  }
  chain->clear();
  for (size_t i = n; i > 0;) {
    if (take[i]) {
      chain->push_back(i - 1);
      i = q[i - 1];
    } else {
      --i;
    }
  }
  std::reverse(chain->begin(), chain->end());  // ascending time
  return opt[n];
}

}  // namespace

Report Extract(const std::vector<trace::CollectedEvent>& events) {
  Report report;
  std::map<uint32_t, std::vector<SpanRec>> per_version;
  // Wall clock per version from the enclosing "step" spans. Summed: a
  // version is stepped once per dataflow, and if several dataflows ran in
  // the same trace window their steps are all wall the path must cover.
  std::map<uint32_t, uint64_t> wall;
  std::map<uint32_t, uint64_t> step_start;
  for (const trace::CollectedEvent& e : events) {
    if (e.phase == 'X' && e.category == "engine" && e.name == "step" &&
        e.version != trace::kNoVersion) {
      wall[e.version] += e.dur_ns;
      auto it = step_start.find(e.version);
      if (it == step_start.end() || e.ts_ns < it->second) {
        step_start[e.version] = e.ts_ns;
      }
    }
    if (!IsChainCandidate(e)) continue;
    SpanRec rec;
    rec.start_ns = e.ts_ns;
    rec.end_ns = e.ts_ns + e.dur_ns;
    rec.dur_ns = e.dur_ns;
    rec.tid = e.tid;
    rec.name = &e.name;
    per_version[e.version].push_back(rec);
  }
  report.enabled = !per_version.empty() || !wall.empty();

  for (auto& [version, spans] : per_version) {
    VersionReport vr;
    vr.version = version;
    vr.num_spans = spans.size();
    std::vector<size_t> chain;
    vr.path_ns = LongestChain(&spans, &chain);
    vr.path_length = chain.size();
    auto wall_it = wall.find(version);
    if (wall_it != wall.end()) {
      vr.wall_ns = wall_it->second;
    } else {
      // No step span in the buffer (wrapped, or a standalone Dataflow):
      // fall back to the candidate spans' time extent.
      uint64_t lo = UINT64_MAX, hi = 0;
      for (const SpanRec& s : spans) {
        lo = std::min(lo, s.start_ns);
        hi = std::max(hi, s.end_ns);
      }
      vr.wall_ns = hi > lo ? hi - lo : 0;
    }
    if (vr.wall_ns > 0) {
      vr.path_fraction = static_cast<double>(vr.path_ns) /
                         static_cast<double>(vr.wall_ns);
    }
    // Stalls: the leading gap from step start to the first activation plus
    // every gap between consecutive chain activations.
    std::vector<Stall> stalls;
    uint64_t prev_end = 0;
    bool have_prev = false;
    auto start_it = step_start.find(version);
    if (start_it != step_start.end()) {
      prev_end = start_it->second;
      have_prev = true;
    }
    for (size_t idx : chain) {
      const SpanRec& s = spans[idx];
      if (have_prev && s.start_ns > prev_end) {
        Stall stall;
        stall.gap_ns = s.start_ns - prev_end;
        stall.at_ns = prev_end;
        stall.before = *s.name;
        stalls.push_back(std::move(stall));
      }
      prev_end = std::max(prev_end, s.end_ns);
      have_prev = true;
      if (vr.path.size() < kMaxPathNodes) {
        Activation act;
        act.name = *s.name;
        act.tid = s.tid;
        act.start_ns = s.start_ns;
        act.dur_ns = s.dur_ns;
        vr.path.push_back(std::move(act));
      }
    }
    std::sort(stalls.begin(), stalls.end(),
              [](const Stall& a, const Stall& b) { return a.gap_ns > b.gap_ns; });
    if (stalls.size() > kTopStalls) stalls.resize(kTopStalls);
    vr.top_stalls = std::move(stalls);

    report.total_wall_ns += vr.wall_ns;
    report.total_path_ns += vr.path_ns;
    report.versions.push_back(std::move(vr));
  }
  if (report.total_wall_ns > 0) {
    report.path_fraction = static_cast<double>(report.total_path_ns) /
                           static_cast<double>(report.total_wall_ns);
  }
  return report;
}

Report ExtractFromLiveTrace() { return Extract(trace::CollectStructured()); }

std::string ToJson(const Report& report) {
  if (!report.enabled) return "{\"enabled\": false}";
  char buf[96];
  std::string out = "{\"enabled\": true, \"total_wall_ns\": " +
                    std::to_string(report.total_wall_ns) +
                    ", \"total_path_ns\": " +
                    std::to_string(report.total_path_ns);
  std::snprintf(buf, sizeof(buf), ", \"path_fraction\": %.4f",
                report.path_fraction);
  out += buf;
  out += ", \"versions\": [";
  for (size_t i = 0; i < report.versions.size(); ++i) {
    const VersionReport& vr = report.versions[i];
    if (i) out += ", ";
    std::snprintf(buf, sizeof(buf),
                  "{\"version\": %u, \"wall_ns\": %llu, \"path_ns\": %llu, "
                  "\"path_fraction\": %.4f",
                  vr.version, static_cast<unsigned long long>(vr.wall_ns),
                  static_cast<unsigned long long>(vr.path_ns),
                  vr.path_fraction);
    out += buf;
    out += ", \"num_spans\": " + std::to_string(vr.num_spans) +
           ", \"path_length\": " + std::to_string(vr.path_length) +
           ", \"path\": [";
    for (size_t j = 0; j < vr.path.size(); ++j) {
      const Activation& a = vr.path[j];
      if (j) out += ", ";
      out += "{\"name\": \"" + introspect::JsonEscape(a.name) +
             "\", \"tid\": " + std::to_string(a.tid) +
             ", \"start_ns\": " + std::to_string(a.start_ns) +
             ", \"dur_ns\": " + std::to_string(a.dur_ns) + "}";
    }
    out += "], \"top_stalls\": [";
    for (size_t j = 0; j < vr.top_stalls.size(); ++j) {
      const Stall& s = vr.top_stalls[j];
      if (j) out += ", ";
      out += "{\"gap_ns\": " + std::to_string(s.gap_ns) +
             ", \"at_ns\": " + std::to_string(s.at_ns) + ", \"before\": \"" +
             introspect::JsonEscape(s.before) + "\"}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

void RegisterStatuszSource() {
  // Leaked like every other process-lifetime source: /statusz may scrape
  // during static destruction of the embedding binary.
  static introspect::ScopedSource* source = new introspect::ScopedSource(
      "critical_path", [] { return ToJson(ExtractFromLiveTrace()); });
  (void)source;
}

}  // namespace gs::critical_path
