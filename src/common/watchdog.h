// Stall watchdog: a background thread that evaluates health rules over the
// live metrics and time-series, flips the process's health state, and emits
// a flight-recorder dump (crash_dump.h) when a rule starts failing —
// without killing the process. The /healthz endpoint serves the verdict
// (200 healthy / 503 naming the violated rules), so an external supervisor
// can restart a wedged process that is still technically alive.
//
// Rules (names are the contract — they appear in /healthz bodies, dump
// files, and per-rule firing counters):
//   frontier_stall          the engine reports records outstanding but the
//                           frontier-round counter has not moved for longer
//                           than the deadline: a wedged or livelocked step.
//   epoch_advance_deadline  a LiveRun epoch advance has been in progress
//                           (gs_live_epoch_advance_started_ms != 0) past
//                           its deadline.
//   wal_fsync_latency       p99 WAL fsync latency over the window since the
//                           previous evaluation exceeds the threshold: the
//                           durability path is the ingest bottleneck.
//   ingest_lag              gs_graph_epoch (max over graphs) minus the last
//                           sealed engine epoch has grown on N consecutive
//                           evaluations while at/above a floor: the engine
//                           is falling monotonically behind ingest.
//
// Firing is edge-triggered: one dump + one firing count when a rule flips
// from passing to failing; the rule must pass again before it can fire
// again. Dumps are JSON files flight_<unix_ms>_<rule>.json in flight_dir,
// containing trace events, a metrics snapshot, and the time-series history
// (see crash_dump.h WriteFlightRecorderFile).
//
// Determinism for tests: EvaluateNow() runs one evaluation on the caller's
// thread, and differential/fuzz_hooks.h can inject a frontier stall or a
// delayed epoch seal to force specific rules.
#ifndef GRAPHSURGE_COMMON_WATCHDOG_H_
#define GRAPHSURGE_COMMON_WATCHDOG_H_

#include <array>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"

namespace gs::watchdog {

struct WatchdogOptions {
  /// Evaluation cadence. Rules are deadline-based, so the effective
  /// detection latency is deadline + one cadence.
  uint64_t cadence_ms = 100;

  /// frontier_stall: how long the round counter may sit still with records
  /// outstanding.
  uint64_t frontier_stall_ms = 5000;

  /// epoch_advance_deadline: how long one LiveRun::AdvanceEpoch may run.
  uint64_t epoch_advance_deadline_ms = 10000;

  /// wal_fsync_latency: p99 threshold (nanoseconds) over the delta window
  /// between evaluations. Default 1s — an fsync that slow means the
  /// durability device is in serious trouble.
  uint64_t wal_fsync_p99_ns = 1000000000;

  /// ingest_lag: floor below which lag growth is ignored, and how many
  /// consecutive strictly-increasing evaluations at/above the floor fire.
  uint64_t ingest_lag_min = 4;
  int ingest_lag_increases = 3;

  /// Directory for flight_<unix_ms>_<rule>.json dumps.
  std::string flight_dir = ".";

  /// Master switch for writing dump files (health state and counters still
  /// update when false).
  bool write_flight_dumps = true;
};

/// Point-in-time health verdict (copied out under the watchdog's lock).
struct HealthSnapshot {
  bool healthy = true;
  bool running = false;
  uint64_t evaluations = 0;
  uint64_t firings = 0;
  uint64_t last_eval_ms = 0;            // NowMillis of the last evaluation
  std::vector<std::string> violated_rules;  // currently failing, sorted
  std::string last_dump_path;           // most recent dump file ("" if none)
};

class Watchdog {
 public:
  Watchdog() = default;
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// The process-wide watchdog (leaked singleton; registers the "health"
  /// /statusz source on construction). Healthy while not running.
  static Watchdog& Global();

  /// Starts the evaluation thread. Baselines (round counter, fsync bucket
  /// window, lag) are synced to current values first, so pre-existing
  /// metric state cannot fire spuriously. Fails if already running.
  Status Start(const WatchdogOptions& options = WatchdogOptions());

  /// Stops and joins the thread, and clears the violated-rule set (the
  /// process is no longer being judged). Idempotent.
  void Stop();

  bool running() const;

  HealthSnapshot Health() const;

  /// Runs one rule evaluation on the caller's thread (exactly what the
  /// thread does each tick) and returns the rules currently violated.
  /// Usable without Start() — tests drive detection deterministically.
  std::vector<std::string> EvaluateNow();

  /// Health verdict as JSON: {"healthy": ..., "violated_rules": [...], ...}
  /// plus p50/p95/p99 of the streaming SLO histograms. The /healthz 503
  /// body and the "health" /statusz source.
  std::string RenderHealthJson() const;

  /// Starts Global() when GRAPHSURGE_WATCHDOG is set to anything but "0",
  /// with flight_dir from GRAPHSURGE_FLIGHT_DIR (default ".") and rule
  /// thresholds from the GRAPHSURGE_WATCHDOG_* overrides below. Returns
  /// true if the watchdog is running on return.
  static bool MaybeStartFromEnv();

  /// Applies per-rule threshold overrides from the environment to
  /// `options`:
  ///   GRAPHSURGE_WATCHDOG_FRONTIER_STALL_MS
  ///   GRAPHSURGE_WATCHDOG_EPOCH_ADVANCE_DEADLINE_MS
  ///   GRAPHSURGE_WATCHDOG_WAL_FSYNC_P99_NS
  ///   GRAPHSURGE_WATCHDOG_INGEST_LAG_MIN
  ///   GRAPHSURGE_WATCHDOG_INGEST_LAG_INCREASES
  /// Each must be a non-negative decimal integer; an unparsable value keeps
  /// the default and logs one warning per variable per process (not one per
  /// evaluation). Called by MaybeStartFromEnv; exposed so embedders that
  /// Start() with explicit options can opt in too.
  static void ApplyEnvOverrides(WatchdogOptions* options);

 private:
  void Loop();
  void Fire(const std::vector<std::string>& new_rules,
            const std::vector<std::string>& all_violated);

  // Rule state carried between evaluations (guarded by eval_mutex_).
  struct RuleState {
    uint64_t last_rounds = 0;
    uint64_t last_progress_ms = 0;
    std::array<uint64_t, metrics::Histogram::kNumBuckets> fsync_baseline{};
    int64_t last_lag = 0;
    int consecutive_lag_increases = 0;
  };

  void SyncBaselines();

  // One evaluation (or baseline sync) at a time; also guards state_ and
  // options_.
  mutable std::mutex eval_mutex_;
  WatchdogOptions options_;
  RuleState state_;
  std::set<std::string> currently_violated_;

  // Published snapshot, refreshed at the end of every evaluation.
  mutable std::mutex snapshot_mutex_;
  HealthSnapshot snapshot_;

  // Thread lifecycle.
  mutable std::mutex thread_mutex_;
  std::condition_variable cv_;
  bool running_ = false;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace gs::watchdog

#endif  // GRAPHSURGE_COMMON_WATCHDOG_H_
