// Minimal leveled logging with compile-out-able debug level.
#ifndef GRAPHSURGE_COMMON_LOGGING_H_
#define GRAPHSURGE_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace gs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Thread-local worker-shard id tag: when set (>= 0), log lines from this
/// thread carry a `W<id>` prefix and trace events use it as their Chrome
/// `tid`. ShardedDataflow sets it around each worker phase. -1 clears.
void SetThreadWorkerId(int id);
int GetThreadWorkerId();

/// RAII worker-id tag restoring the previous id on scope exit (pool threads
/// run phases for several shards in sequence).
class ScopedWorkerId {
 public:
  explicit ScopedWorkerId(int id) : previous_(GetThreadWorkerId()) {
    SetThreadWorkerId(id);
  }
  ~ScopedWorkerId() { SetThreadWorkerId(previous_); }

  ScopedWorkerId(const ScopedWorkerId&) = delete;
  ScopedWorkerId& operator=(const ScopedWorkerId&) = delete;

 private:
  int previous_;
};

namespace internal {

/// Test hook: when set, fully formatted log lines (newline included) are
/// handed to the sink instead of being written to stderr.
using LogSink = void (*)(const char* data, size_t size);
void SetLogSinkForTest(LogSink sink);

/// Stream-style log sink; emits on destruction. `fatal` aborts the process
/// after emitting (used by GS_CHECK).
///
/// Emission is atomic with respect to concurrent shards: the whole line is
/// formatted into a buffer and written with one fwrite, so worker threads
/// never interleave partial lines.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace gs

#define GS_LOG(level)                                             \
  ::gs::internal::LogMessage(::gs::LogLevel::k##level, __FILE__, \
                             __LINE__)

// Invariant check that is active in all build types. Prefer this over assert
// for engine invariants whose violation would silently corrupt results.
//
// The `switch (0) case 0: default:` wrapper makes the macro safe to use as
// the sole statement of an if branch: a following `else` binds to the
// *enclosing* if, not to the macro's internal one (the classic dangling-else
// hazard of a bare `if (!(cond)) ...` expansion).
#define GS_CHECK(cond)                                                       \
  switch (0)                                                                 \
  case 0:                                                                    \
  default:                                                                   \
    if (cond)                                                                \
      ;                                                                      \
    else                                                                     \
      ::gs::internal::LogMessage(::gs::LogLevel::kError, __FILE__, __LINE__, \
                                 /*fatal=*/true)                             \
          << "Check failed: " #cond " "

#endif  // GRAPHSURGE_COMMON_LOGGING_H_
