// Minimal leveled logging with compile-out-able debug level.
#ifndef GRAPHSURGE_COMMON_LOGGING_H_
#define GRAPHSURGE_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace gs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction. `fatal` aborts the process
/// after emitting (used by GS_CHECK).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace gs

#define GS_LOG(level)                                             \
  ::gs::internal::LogMessage(::gs::LogLevel::k##level, __FILE__, \
                             __LINE__)

// Invariant check that is active in all build types. Prefer this over assert
// for engine invariants whose violation would silently corrupt results.
#define GS_CHECK(cond)                                                        \
  if (!(cond))                                                                \
  ::gs::internal::LogMessage(::gs::LogLevel::kError, __FILE__, __LINE__,      \
                             /*fatal=*/true)                                  \
      << "Check failed: " #cond " "

#endif  // GRAPHSURGE_COMMON_LOGGING_H_
