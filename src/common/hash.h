// Hashing helpers: a strong 64-bit mixer and std::hash adapters for the
// composite record types that flow through the differential engine.
#ifndef GRAPHSURGE_COMMON_HASH_H_
#define GRAPHSURGE_COMMON_HASH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <tuple>
#include <utility>

namespace gs {

/// SplitMix64 finalizer: cheap and well-distributed; used to decorrelate
/// std::hash's identity hashing of integers before sharding by key.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines a hash value into a running seed (boost::hash_combine style,
/// with a 64-bit constant).
inline void HashCombine(uint64_t* seed, uint64_t v) {
  *seed ^= Mix64(v) + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

template <typename T>
uint64_t HashValue(const T& v) {
  return Mix64(std::hash<T>{}(v));
}

template <typename A, typename B>
uint64_t HashValue(const std::pair<A, B>& p) {
  uint64_t seed = HashValue(p.first);
  HashCombine(&seed, HashValue(p.second));
  return seed;
}

template <typename... Ts>
uint64_t HashValue(const std::tuple<Ts...>& t) {
  uint64_t seed = 0x8c0e2f1a5b3d9e77ULL;
  std::apply(
      [&seed](const auto&... elems) {
        (HashCombine(&seed, HashValue(elems)), ...);
      },
      t);
  return seed;
}

/// Hash functor usable as the Hash template parameter of unordered
/// containers for any type supported by HashValue above.
struct Hasher {
  template <typename T>
  size_t operator()(const T& v) const {
    return static_cast<size_t>(HashValue(v));
  }
};

}  // namespace gs

#endif  // GRAPHSURGE_COMMON_HASH_H_
