// Synthetic dataset generators. These substitute for the paper's external
// datasets (Stack Overflow, Semantic Scholar citations, LiveJournal,
// Wiki-topcats, Twitter, Orkut) which are not available offline; each
// generator preserves the structural property the corresponding experiment
// depends on (see DESIGN.md §5 for the substitution table).
#ifndef GRAPHSURGE_GRAPH_GENERATORS_H_
#define GRAPHSURGE_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace gs {

/// --- Temporal graph (Stack Overflow substitute) -------------------------
/// Preferential-attachment digraph whose edges carry a monotonically
/// increasing `timestamp:int` property in [start_time, end_time]. Edge
/// volume grows over time (controlled by growth), matching the growth of
/// real interaction networks so that expanding / sliding window views have
/// realistic sizes.
struct TemporalGraphOptions {
  size_t num_nodes = 10000;
  size_t num_edges = 100000;
  int64_t start_time = 0;
  int64_t end_time = 1000000;
  /// >1 skews edge timestamps toward the end of the range (network growth).
  double growth = 2.0;
  /// Preferential attachment strength for edge endpoints (0 = uniform).
  double preferential = 0.75;
  uint64_t seed = 42;
};
PropertyGraph GenerateTemporalGraph(const TemporalGraphOptions& options);

/// --- Citation graph (Semantic Scholar / PC substitute) ------------------
/// Papers carry `year:int` and `coauthors:int` node properties; citation
/// edges point from newer papers to strictly older (or same-year) papers
/// with power-law popularity, so year-window views slide realistically.
struct CitationGraphOptions {
  int first_year = 1936;
  int last_year = 2020;
  size_t papers_first_year = 200;
  /// Per-year multiplicative growth of the publication count.
  double yearly_growth = 1.04;
  int max_coauthors = 30;
  double coauthor_alpha = 1.4;   // power-law skew of co-author counts
  double citation_alpha = 1.2;   // popularity skew of cited papers
  size_t avg_citations = 8;
  uint64_t seed = 42;
};
PropertyGraph GenerateCitationGraph(const CitationGraphOptions& options);

/// --- Community graph (LiveJournal / Wiki-topcats substitute) ------------
/// Planted-partition graph with overlapping ground-truth communities of
/// power-law sizes. Membership in the largest 64 communities is also
/// encoded in a `communities:int` bitmask node property (bit c = member of
/// community c), which perturbation-analysis view predicates test.
struct CommunityGraphOptions {
  size_t num_nodes = 20000;
  size_t num_communities = 40;
  double community_size_alpha = 1.1;  // skew of community sizes
  double avg_memberships = 1.4;       // mean #communities per member node
  /// Fraction of nodes that belong to no community.
  double background_fraction = 0.2;
  /// Average intra-community out-degree of a member node.
  double intra_degree = 6.0;
  /// Average background (random) out-degree of every node.
  double background_degree = 1.0;
  uint64_t seed = 42;
};
struct CommunityGraph {
  PropertyGraph graph;
  /// Ground-truth member lists, sorted by descending size.
  std::vector<std::vector<VertexId>> communities;
};
CommunityGraph GenerateCommunityGraph(const CommunityGraphOptions& options);

/// --- Social network with location attributes (Twitter substitute) -------
/// Vertices carry `city:int`, `state:int`, `country:int` (hierarchical:
/// city determines state determines country); edges carry `affinity:int`
/// in {0=low, 1=medium, 2=high}. Used by the Figure 10 scalability bench.
struct SocialNetworkOptions {
  size_t num_nodes = 50000;
  size_t num_edges = 500000;
  int num_countries = 4;
  int states_per_country = 5;
  int cities_per_state = 10;
  /// Probability an edge stays within the same city / state / country.
  double city_locality = 0.5;
  double state_locality = 0.3;
  double country_locality = 0.15;
  uint64_t seed = 42;
};
PropertyGraph GenerateSocialNetwork(const SocialNetworkOptions& options);

/// --- Plain random graphs (Orkut substitute, tests) ----------------------
/// Power-law (Zipf endpoint popularity) digraph with a `weight:int` edge
/// property uniform in [1, max_weight].
PropertyGraph GeneratePowerLawGraph(size_t num_nodes, size_t num_edges,
                                    double alpha, uint64_t seed,
                                    int64_t max_weight = 100);

/// Erdős–Rényi-style uniform digraph (no properties beyond weight).
PropertyGraph GenerateUniformGraph(size_t num_nodes, size_t num_edges,
                                   uint64_t seed, int64_t max_weight = 100);

/// --- The paper's running example -----------------------------------------
/// The 8-node phone call graph of Figure 1: nodes have `city:string` and
/// `profession:string`; edges have `duration:int` and `year:int`.
PropertyGraph MakeCallGraphExample();

}  // namespace gs

#endif  // GRAPHSURGE_GRAPH_GENERATORS_H_
