#include "graph/csv.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace gs {
namespace csv_internal {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

}  // namespace csv_internal

namespace {

using csv_internal::SplitCsvLine;

struct HeaderSpec {
  std::vector<std::string> names;
  std::vector<PropertyType> types;
};

// Parses "name:type" columns after `skip` leading id columns.
StatusOr<HeaderSpec> ParseHeader(const std::string& line, size_t skip,
                                 const char* file_kind) {
  HeaderSpec spec;
  std::vector<std::string> fields = SplitCsvLine(line);
  if (fields.size() < skip) {
    return Status::ParseError(std::string(file_kind) +
                              " header has too few columns");
  }
  for (size_t i = skip; i < fields.size(); ++i) {
    const std::string& f = fields[i];
    size_t colon = f.find(':');
    if (colon == std::string::npos) {
      return Status::ParseError("property column '" + f +
                                "' missing ':type' suffix");
    }
    spec.names.push_back(f.substr(0, colon));
    GS_ASSIGN_OR_RETURN(PropertyType t, ParsePropertyType(f.substr(colon + 1)));
    spec.types.push_back(t);
  }
  return spec;
}

StatusOr<uint64_t> ParseU64(const std::string& text) {
  uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::ParseError("bad id: '" + text + "'");
  }
  return v;
}

}  // namespace

StatusOr<PropertyGraph> LoadGraphFromCsv(const std::string& nodes_path,
                                         const std::string& edges_path) {
  PropertyGraph graph;
  std::unordered_map<uint64_t, VertexId> id_map;

  {
    std::ifstream in(nodes_path);
    if (!in) return Status::IoError("cannot open " + nodes_path);
    std::string line;
    if (!std::getline(in, line)) {
      return Status::ParseError(nodes_path + " is empty");
    }
    GS_ASSIGN_OR_RETURN(HeaderSpec spec, ParseHeader(line, 1, "nodes"));
    for (size_t i = 0; i < spec.names.size(); ++i) {
      GS_RETURN_IF_ERROR(
          graph.node_properties().AddColumn(spec.names[i], spec.types[i]));
    }
    size_t lineno = 1;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty()) continue;
      std::vector<std::string> fields = SplitCsvLine(line);
      if (fields.size() != spec.names.size() + 1) {
        return Status::ParseError(nodes_path + ":" + std::to_string(lineno) +
                                  ": wrong field count");
      }
      GS_ASSIGN_OR_RETURN(uint64_t ext_id, ParseU64(fields[0]));
      if (id_map.count(ext_id)) {
        return Status::ParseError(nodes_path + ":" + std::to_string(lineno) +
                                  ": duplicate node id");
      }
      id_map[ext_id] = graph.AddNodes(1);
      std::vector<PropertyValue> row;
      row.reserve(spec.names.size());
      for (size_t i = 0; i < spec.names.size(); ++i) {
        GS_ASSIGN_OR_RETURN(PropertyValue v,
                            PropertyValue::Parse(fields[i + 1], spec.types[i]));
        row.push_back(std::move(v));
      }
      GS_RETURN_IF_ERROR(graph.node_properties().AppendRow(row));
    }
  }

  {
    std::ifstream in(edges_path);
    if (!in) return Status::IoError("cannot open " + edges_path);
    std::string line;
    if (!std::getline(in, line)) {
      return Status::ParseError(edges_path + " is empty");
    }
    GS_ASSIGN_OR_RETURN(HeaderSpec spec, ParseHeader(line, 2, "edges"));
    for (size_t i = 0; i < spec.names.size(); ++i) {
      GS_RETURN_IF_ERROR(
          graph.edge_properties().AddColumn(spec.names[i], spec.types[i]));
    }
    size_t lineno = 1;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty()) continue;
      std::vector<std::string> fields = SplitCsvLine(line);
      if (fields.size() != spec.names.size() + 2) {
        return Status::ParseError(edges_path + ":" + std::to_string(lineno) +
                                  ": wrong field count");
      }
      GS_ASSIGN_OR_RETURN(uint64_t src_ext, ParseU64(fields[0]));
      GS_ASSIGN_OR_RETURN(uint64_t dst_ext, ParseU64(fields[1]));
      auto src_it = id_map.find(src_ext);
      auto dst_it = id_map.find(dst_ext);
      if (src_it == id_map.end() || dst_it == id_map.end()) {
        return Status::ParseError(edges_path + ":" + std::to_string(lineno) +
                                  ": edge references unknown node");
      }
      auto edge_id = graph.AddEdge(src_it->second, dst_it->second);
      GS_RETURN_IF_ERROR(edge_id.status());
      std::vector<PropertyValue> row;
      row.reserve(spec.names.size());
      for (size_t i = 0; i < spec.names.size(); ++i) {
        GS_ASSIGN_OR_RETURN(PropertyValue v,
                            PropertyValue::Parse(fields[i + 2], spec.types[i]));
        row.push_back(std::move(v));
      }
      GS_RETURN_IF_ERROR(graph.edge_properties().AppendRow(row));
    }
  }

  GS_RETURN_IF_ERROR(graph.Validate());
  return graph;
}

namespace {
std::string EscapeCsv(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}
}  // namespace

Status WriteGraphToCsv(const PropertyGraph& graph,
                       const std::string& nodes_path,
                       const std::string& edges_path) {
  {
    std::ofstream out(nodes_path);
    if (!out) return Status::IoError("cannot write " + nodes_path);
    const PropertyTable& t = graph.node_properties();
    out << "id";
    for (size_t c = 0; c < t.num_columns(); ++c) {
      out << "," << t.column_name(c) << ":"
          << PropertyTypeName(t.column(c).type());
    }
    out << "\n";
    for (size_t r = 0; r < graph.num_nodes(); ++r) {
      out << r;
      for (size_t c = 0; c < t.num_columns(); ++c) {
        PropertyValue v = t.Get(r, c);
        out << "," << (v.is_null() ? "" : EscapeCsv(v.ToString()));
      }
      out << "\n";
    }
  }
  {
    std::ofstream out(edges_path);
    if (!out) return Status::IoError("cannot write " + edges_path);
    const PropertyTable& t = graph.edge_properties();
    out << "src,dst";
    for (size_t c = 0; c < t.num_columns(); ++c) {
      out << "," << t.column_name(c) << ":"
          << PropertyTypeName(t.column(c).type());
    }
    out << "\n";
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      out << graph.edge(e).src << "," << graph.edge(e).dst;
      for (size_t c = 0; c < t.num_columns(); ++c) {
        PropertyValue v = t.Get(e, c);
        out << "," << (v.is_null() ? "" : EscapeCsv(v.ToString()));
      }
      out << "\n";
    }
  }
  return Status::Ok();
}

}  // namespace gs
