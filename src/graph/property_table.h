// Columnar property storage: one PropertyTable for nodes and one for edges
// per graph (the paper's Node Property Store / edge stream properties).
#ifndef GRAPHSURGE_GRAPH_PROPERTY_TABLE_H_
#define GRAPHSURGE_GRAPH_PROPERTY_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "graph/property.h"

namespace gs {

/// A single typed, null-able column.
class Column {
 public:
  explicit Column(PropertyType type) : type_(type) {}

  PropertyType type() const { return type_; }
  size_t size() const { return valid_.size(); }

  void Append(const PropertyValue& v);
  PropertyValue Get(size_t row) const;
  bool IsNull(size_t row) const { return !valid_[row]; }

  /// Overwrites an existing row in place (streaming property-update
  /// mutations). The value must match the column type or be null.
  void Set(size_t row, const PropertyValue& v);

  /// Typed fast paths; undefined if type mismatches or value is null —
  /// callers (the compiled predicate evaluator) check the schema first.
  int64_t GetInt(size_t row) const { return ints_[row]; }
  double GetDouble(size_t row) const { return doubles_[row]; }
  bool GetBool(size_t row) const { return bools_[row] != 0; }
  const std::string& GetString(size_t row) const { return strings_[row]; }

  /// Raw columnar access for the batch evaluator (gvdl/batch_eval.h). The
  /// typed arrays are dense — null rows hold zero placeholders — so raw
  /// pointers index by row directly; callers mask nulls via raw_valid().
  const int64_t* raw_ints() const { return ints_.data(); }
  const double* raw_doubles() const { return doubles_.data(); }
  const uint8_t* raw_bools() const { return bools_.data(); }
  const uint8_t* raw_valid() const { return valid_.data(); }
  const std::string* raw_strings() const { return strings_.data(); }

 private:
  PropertyType type_;
  std::vector<uint8_t> valid_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint8_t> bools_;
  std::vector<std::string> strings_;
};

/// A named collection of equal-length columns.
class PropertyTable {
 public:
  /// Declares a column. Must be called before any rows are appended.
  Status AddColumn(const std::string& name, PropertyType type);

  /// Appends one row; `values` must match the declared column count and
  /// types (nulls always allowed).
  Status AppendRow(const std::vector<PropertyValue>& values);

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  bool HasColumn(const std::string& name) const {
    return index_.count(name) > 0;
  }
  /// Returns the column index for `name`, or an error if absent.
  StatusOr<size_t> ColumnIndex(const std::string& name) const;

  const Column& column(size_t i) const { return columns_[i]; }
  const std::string& column_name(size_t i) const { return names_[i]; }

  PropertyValue Get(size_t row, size_t col) const {
    return columns_[col].Get(row);
  }
  StatusOr<PropertyValue> GetByName(size_t row, const std::string& name) const;

  /// Overwrites one cell (streaming property-update mutations). Fails on an
  /// unknown column, an out-of-range row, or a type mismatch; int literals
  /// are widened into double columns like AppendRow.
  Status SetCell(size_t row, const std::string& column,
                 const PropertyValue& value);

 private:
  std::vector<std::string> names_;
  std::vector<Column> columns_;
  std::unordered_map<std::string, size_t> index_;
  size_t num_rows_ = 0;
};

}  // namespace gs

#endif  // GRAPHSURGE_GRAPH_PROPERTY_TABLE_H_
