// CSV import/export. Users import base graphs into Graphsurge through CSV
// files containing nodes and edges with their properties (paper §3).
//
// Format:
//   nodes.csv:  header `id,<name>:<type>,...`; one row per node.
//   edges.csv:  header `src,dst,<name>:<type>,...`; one row per edge.
// Types: int, double, string, bool. External ids may be arbitrary u64; they
// are densely renumbered on load (the paper assigns unique 64-bit ids).
#ifndef GRAPHSURGE_GRAPH_CSV_H_
#define GRAPHSURGE_GRAPH_CSV_H_

#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace gs {

/// Loads a property graph from node and edge CSV files.
StatusOr<PropertyGraph> LoadGraphFromCsv(const std::string& nodes_path,
                                         const std::string& edges_path);

/// Writes a property graph to node and edge CSV files (round-trip format).
Status WriteGraphToCsv(const PropertyGraph& graph,
                       const std::string& nodes_path,
                       const std::string& edges_path);

namespace csv_internal {
/// Splits one CSV line on commas, honoring double-quoted fields with
/// embedded commas and doubled quotes. Exposed for unit tests.
std::vector<std::string> SplitCsvLine(const std::string& line);
}  // namespace csv_internal

}  // namespace gs

#endif  // GRAPHSURGE_GRAPH_CSV_H_
