// PropertyValue: the dynamically typed value attached to nodes and edges.
// The paper supports string, integer, and boolean properties; we add double
// (DESIGN.md §13).
#ifndef GRAPHSURGE_GRAPH_PROPERTY_H_
#define GRAPHSURGE_GRAPH_PROPERTY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "common/status.h"

namespace gs {

enum class PropertyType : uint8_t {
  kNull = 0,
  kBool,
  kInt,
  kDouble,
  kString,
};

/// Human-readable type name ("int", "string", ...), matching the names used
/// in CSV headers.
const char* PropertyTypeName(PropertyType type);

/// Parses a type name as used in CSV headers ("int", "i64", "double",
/// "float", "str", "string", "bool").
StatusOr<PropertyType> ParsePropertyType(const std::string& name);

/// A null-able dynamically typed scalar.
class PropertyValue {
 public:
  PropertyValue() : value_(std::monostate{}) {}
  explicit PropertyValue(bool b) : value_(b) {}
  explicit PropertyValue(int64_t i) : value_(i) {}
  explicit PropertyValue(double d) : value_(d) {}
  explicit PropertyValue(std::string s) : value_(std::move(s)) {}
  explicit PropertyValue(const char* s) : value_(std::string(s)) {}

  static PropertyValue Null() { return PropertyValue(); }

  PropertyType type() const {
    return static_cast<PropertyType>(value_.index());
  }
  bool is_null() const { return type() == PropertyType::kNull; }

  bool AsBool() const { return std::get<bool>(value_); }
  int64_t AsInt() const { return std::get<int64_t>(value_); }
  double AsDouble() const { return std::get<double>(value_); }
  const std::string& AsString() const { return std::get<std::string>(value_); }

  /// Numeric view: int and double both convert; others are nullopt.
  std::optional<double> AsNumeric() const {
    if (type() == PropertyType::kInt) return static_cast<double>(AsInt());
    if (type() == PropertyType::kDouble) return AsDouble();
    return std::nullopt;
  }

  /// Three-way comparison for predicate evaluation. Numeric types compare
  /// across int/double. Returns nullopt for incomparable type pairs (e.g.
  /// string vs int, or either side null) — GVDL predicates treat those
  /// comparisons as false.
  std::optional<int> Compare(const PropertyValue& other) const;

  /// Strict equality: same type (modulo int/double numeric equality) and
  /// same value.
  bool operator==(const PropertyValue& other) const {
    auto c = Compare(other);
    return c.has_value() && *c == 0;
  }

  std::string ToString() const;

  /// Parses a CSV cell according to the declared column type. Empty cells
  /// become null.
  static StatusOr<PropertyValue> Parse(const std::string& text,
                                       PropertyType type);

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> value_;
};

}  // namespace gs

#endif  // GRAPHSURGE_GRAPH_PROPERTY_H_
