#include "graph/graph.h"

namespace gs {

VertexId PropertyGraph::AddNodes(size_t n) {
  VertexId first = num_nodes_;
  num_nodes_ += n;
  return first;
}

StatusOr<EdgeId> PropertyGraph::AddEdge(VertexId src, VertexId dst) {
  if (src >= num_nodes_ || dst >= num_nodes_) {
    return Status::OutOfRange("edge endpoint out of range: " +
                              std::to_string(src) + "->" +
                              std::to_string(dst));
  }
  edges_.push_back(Edge{src, dst});
  return static_cast<EdgeId>(edges_.size() - 1);
}

WeightedEdge PropertyGraph::ResolveWeighted(EdgeId id,
                                            int weight_column) const {
  const Edge& e = edges_[id];
  int64_t w = 1;
  if (weight_column >= 0) {
    const Column& col = edge_props_.column(static_cast<size_t>(weight_column));
    if (!col.IsNull(id)) {
      if (col.type() == PropertyType::kInt) {
        w = col.GetInt(id);
      } else if (col.type() == PropertyType::kDouble) {
        w = static_cast<int64_t>(col.GetDouble(id));
      }
    }
  }
  return WeightedEdge{e.src, e.dst, w};
}

int PropertyGraph::FindWeightColumn(const std::string& name) const {
  auto idx = edge_props_.ColumnIndex(name);
  if (!idx.ok()) return -1;
  PropertyType t = edge_props_.column(*idx).type();
  if (t != PropertyType::kInt && t != PropertyType::kDouble) return -1;
  return static_cast<int>(*idx);
}

Status PropertyGraph::Validate() const {
  if (node_props_.num_columns() > 0 && node_props_.num_rows() != num_nodes_) {
    return Status::Internal("node property rows != node count");
  }
  if (edge_props_.num_columns() > 0 &&
      edge_props_.num_rows() != edges_.size()) {
    return Status::Internal("edge property rows != edge count");
  }
  for (const Edge& e : edges_) {
    if (e.src >= num_nodes_ || e.dst >= num_nodes_) {
      return Status::Internal("edge endpoint out of range");
    }
  }
  return Status::Ok();
}

}  // namespace gs
