#include "graph/graph.h"

namespace gs {

VertexId PropertyGraph::AddNodes(size_t n) {
  VertexId first = num_nodes_;
  num_nodes_ += n;
  if (!node_alive_.empty()) node_alive_.Resize(num_nodes_, true);
  return first;
}

StatusOr<EdgeId> PropertyGraph::AddEdge(VertexId src, VertexId dst) {
  if (src >= num_nodes_ || dst >= num_nodes_) {
    return Status::OutOfRange("edge endpoint out of range: " +
                              std::to_string(src) + "->" +
                              std::to_string(dst));
  }
  if (!node_alive(src) || !node_alive(dst)) {
    return Status::FailedPrecondition("edge endpoint is a removed node: " +
                                      std::to_string(src) + "->" +
                                      std::to_string(dst));
  }
  edges_.push_back(Edge{src, dst});
  if (!edge_alive_.empty()) edge_alive_.PushBack(true);
  return static_cast<EdgeId>(edges_.size() - 1);
}

Status PropertyGraph::RemoveEdge(EdgeId id) {
  if (id >= edges_.size()) {
    return Status::OutOfRange("edge id out of range: " + std::to_string(id));
  }
  if (edge_alive_.empty()) edge_alive_.Assign(edges_.size(), true);
  if (!edge_alive_.Test(id)) {
    return Status::FailedPrecondition("edge " + std::to_string(id) +
                                      " already removed");
  }
  edge_alive_.Reset(id);
  ++dead_edges_;
  return Status::Ok();
}

Status PropertyGraph::RemoveNode(VertexId id) {
  if (id >= num_nodes_) {
    return Status::OutOfRange("node id out of range: " + std::to_string(id));
  }
  if (node_alive_.empty()) node_alive_.Assign(num_nodes_, true);
  if (!node_alive_.Test(id)) {
    return Status::FailedPrecondition("node " + std::to_string(id) +
                                      " already removed");
  }
  node_alive_.Reset(id);
  ++dead_nodes_;
  return Status::Ok();
}

WeightedEdge PropertyGraph::ResolveWeighted(EdgeId id,
                                            int weight_column) const {
  const Edge& e = edges_[id];
  int64_t w = 1;
  if (weight_column >= 0) {
    const Column& col = edge_props_.column(static_cast<size_t>(weight_column));
    if (!col.IsNull(id)) {
      if (col.type() == PropertyType::kInt) {
        w = col.GetInt(id);
      } else if (col.type() == PropertyType::kDouble) {
        w = static_cast<int64_t>(col.GetDouble(id));
      }
    }
  }
  return WeightedEdge{e.src, e.dst, w};
}

int PropertyGraph::FindWeightColumn(const std::string& name) const {
  auto idx = edge_props_.ColumnIndex(name);
  if (!idx.ok()) return -1;
  PropertyType t = edge_props_.column(*idx).type();
  if (t != PropertyType::kInt && t != PropertyType::kDouble) return -1;
  return static_cast<int>(*idx);
}

Status PropertyGraph::Validate() const {
  if (node_props_.num_columns() > 0 && node_props_.num_rows() != num_nodes_) {
    return Status::Internal("node property rows != node count");
  }
  if (edge_props_.num_columns() > 0 &&
      edge_props_.num_rows() != edges_.size()) {
    return Status::Internal("edge property rows != edge count");
  }
  for (const Edge& e : edges_) {
    if (e.src >= num_nodes_ || e.dst >= num_nodes_) {
      return Status::Internal("edge endpoint out of range");
    }
  }
  return Status::Ok();
}

}  // namespace gs
