// The property graph: an edge stream plus columnar node/edge property
// stores (the paper's Graph Store + Node Property Store).
#ifndef GRAPHSURGE_GRAPH_GRAPH_H_
#define GRAPHSURGE_GRAPH_GRAPH_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/property_table.h"
#include "graph/types.h"

namespace gs {

/// A directed property graph with dense internal vertex IDs [0, num_nodes).
/// Edges are stored as a stream (insertion order preserved) and referenced
/// by dense EdgeId; views and difference streams are defined over EdgeIds.
class PropertyGraph {
 public:
  PropertyGraph() = default;

  /// Creates `n` nodes with no properties; returns the first new id.
  VertexId AddNodes(size_t n);

  /// Appends an edge and returns its EdgeId. Endpoints must exist.
  StatusOr<EdgeId> AddEdge(VertexId src, VertexId dst);

  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return edges_.size(); }

  const Edge& edge(EdgeId id) const { return edges_[id]; }
  const std::vector<Edge>& edges() const { return edges_; }

  PropertyTable& node_properties() { return node_props_; }
  const PropertyTable& node_properties() const { return node_props_; }
  PropertyTable& edge_properties() { return edge_props_; }
  const PropertyTable& edge_properties() const { return edge_props_; }

  /// Resolves an edge to a weighted edge using `weight_column` if present
  /// (int or double, rounded), otherwise weight 1.
  WeightedEdge ResolveWeighted(EdgeId id, int weight_column) const;

  /// Returns the edge-property column index to use as weight, or -1.
  int FindWeightColumn(const std::string& name) const;

  /// Verifies internal consistency (property table row counts match node
  /// and edge counts, endpoints in range).
  Status Validate() const;

 private:
  size_t num_nodes_ = 0;
  std::vector<Edge> edges_;
  PropertyTable node_props_;
  PropertyTable edge_props_;
};

}  // namespace gs

#endif  // GRAPHSURGE_GRAPH_GRAPH_H_
