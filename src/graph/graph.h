// The property graph: an edge stream plus columnar node/edge property
// stores (the paper's Graph Store + Node Property Store).
#ifndef GRAPHSURGE_GRAPH_GRAPH_H_
#define GRAPHSURGE_GRAPH_GRAPH_H_

#include <string>
#include <vector>

#include "common/bitset.h"
#include "common/status.h"
#include "graph/property_table.h"
#include "graph/types.h"

namespace gs {

/// A directed property graph with dense internal vertex IDs [0, num_nodes).
/// Edges are stored as a stream (insertion order preserved) and referenced
/// by dense EdgeId; views and difference streams are defined over EdgeIds.
///
/// Streaming mutations (graph/mutation.h) never renumber: removed nodes and
/// edges are tombstoned in place so every EdgeId/VertexId stays valid for
/// the lifetime of the graph, and view collections keyed by EdgeId survive
/// graph-update epochs unchanged. A graph with no removals carries no
/// tombstone storage at all.
class PropertyGraph {
 public:
  PropertyGraph() = default;

  /// Creates `n` nodes with no properties; returns the first new id.
  VertexId AddNodes(size_t n);

  /// Appends an edge and returns its EdgeId. Endpoints must exist.
  StatusOr<EdgeId> AddEdge(VertexId src, VertexId dst);

  /// Tombstones an edge (the id stays valid; edge_alive turns false).
  Status RemoveEdge(EdgeId id);
  /// Tombstones a node. Incident edges are NOT removed here — the mutation
  /// applier (graph/mutation.h) removes them so the effects are observable.
  Status RemoveNode(VertexId id);

  bool edge_alive(EdgeId id) const {
    return edge_alive_.empty() || edge_alive_.Test(id);
  }
  bool node_alive(VertexId id) const {
    return node_alive_.empty() || node_alive_.Test(id);
  }
  /// One 64-edge word of the alive bitmap (bit j = edge 64w+j alive); the
  /// batch data plane ANDs these into selection masks. All-ones when no
  /// edge was ever removed.
  uint64_t edge_alive_word(size_t w) const {
    return edge_alive_.empty() ? ~uint64_t{0} : edge_alive_.word(w);
  }
  /// Edges minus tombstones (num_edges() counts all ids ever allocated).
  size_t num_live_edges() const { return edges_.size() - dead_edges_; }
  size_t num_live_nodes() const { return num_nodes_ - dead_nodes_; }

  /// Graph-update epoch: the number of mutation batches applied so far
  /// (bumped by graph/mutation.h's ApplyMutationBatch). Epoch 0 is the
  /// as-loaded snapshot.
  uint64_t mutation_epoch() const { return mutation_epoch_; }
  void BumpMutationEpoch() { ++mutation_epoch_; }

  size_t num_nodes() const { return num_nodes_; }
  size_t num_edges() const { return edges_.size(); }

  const Edge& edge(EdgeId id) const { return edges_[id]; }
  const std::vector<Edge>& edges() const { return edges_; }

  PropertyTable& node_properties() { return node_props_; }
  const PropertyTable& node_properties() const { return node_props_; }
  PropertyTable& edge_properties() { return edge_props_; }
  const PropertyTable& edge_properties() const { return edge_props_; }

  /// Resolves an edge to a weighted edge using `weight_column` if present
  /// (int or double, rounded), otherwise weight 1.
  WeightedEdge ResolveWeighted(EdgeId id, int weight_column) const;

  /// Returns the edge-property column index to use as weight, or -1.
  int FindWeightColumn(const std::string& name) const;

  /// Verifies internal consistency (property table row counts match node
  /// and edge counts, endpoints in range).
  Status Validate() const;

 private:
  size_t num_nodes_ = 0;
  std::vector<Edge> edges_;
  PropertyTable node_props_;
  PropertyTable edge_props_;
  /// Tombstone bitmaps; empty means "all alive" (the common static case).
  Bitset edge_alive_;
  Bitset node_alive_;
  size_t dead_edges_ = 0;
  size_t dead_nodes_ = 0;
  uint64_t mutation_epoch_ = 0;
};

}  // namespace gs

#endif  // GRAPHSURGE_GRAPH_GRAPH_H_
