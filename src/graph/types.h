// Fundamental graph value types shared across the system.
#ifndef GRAPHSURGE_GRAPH_TYPES_H_
#define GRAPHSURGE_GRAPH_TYPES_H_

#include <cstdint>
#include <functional>
#include <tuple>

#include "common/hash.h"

namespace gs {

/// Node identifier. The paper assigns 64-bit IDs on load; we do the same.
using VertexId = uint64_t;

/// Index of an edge within a base graph's edge stream. Views and difference
/// streams reference edges by EdgeId and resolve endpoints through the graph.
using EdgeId = uint64_t;

/// A directed edge endpoint pair, the record type most analytics consume.
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// A directed weighted edge (Bellman-Ford / MPSP workloads).
struct WeightedEdge {
  VertexId src = 0;
  VertexId dst = 0;
  int64_t weight = 1;

  friend bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
  friend auto operator<=>(const WeightedEdge&, const WeightedEdge&) = default;
};

}  // namespace gs

namespace std {
template <>
struct hash<gs::Edge> {
  size_t operator()(const gs::Edge& e) const {
    uint64_t seed = gs::Mix64(e.src);
    gs::HashCombine(&seed, e.dst);
    return seed;
  }
};
template <>
struct hash<gs::WeightedEdge> {
  size_t operator()(const gs::WeightedEdge& e) const {
    uint64_t seed = gs::Mix64(e.src);
    gs::HashCombine(&seed, e.dst);
    gs::HashCombine(&seed, static_cast<uint64_t>(e.weight));
    return seed;
  }
};
}  // namespace std

#endif  // GRAPHSURGE_GRAPH_TYPES_H_
