#include "graph/property_table.h"

namespace gs {

void Column::Append(const PropertyValue& v) {
  bool is_valid = !v.is_null();
  valid_.push_back(is_valid ? 1 : 0);
  switch (type_) {
    case PropertyType::kInt:
      ints_.push_back(is_valid ? v.AsInt() : 0);
      break;
    case PropertyType::kDouble:
      doubles_.push_back(is_valid ? v.AsDouble() : 0.0);
      break;
    case PropertyType::kBool:
      bools_.push_back(is_valid && v.AsBool() ? 1 : 0);
      break;
    case PropertyType::kString:
      strings_.push_back(is_valid ? v.AsString() : std::string());
      break;
    case PropertyType::kNull:
      break;
  }
}

void Column::Set(size_t row, const PropertyValue& v) {
  bool is_valid = !v.is_null();
  valid_[row] = is_valid ? 1 : 0;
  switch (type_) {
    case PropertyType::kInt:
      ints_[row] = is_valid ? v.AsInt() : 0;
      break;
    case PropertyType::kDouble:
      doubles_[row] = is_valid ? v.AsDouble() : 0.0;
      break;
    case PropertyType::kBool:
      bools_[row] = is_valid && v.AsBool() ? 1 : 0;
      break;
    case PropertyType::kString:
      strings_[row] = is_valid ? v.AsString() : std::string();
      break;
    case PropertyType::kNull:
      break;
  }
}

PropertyValue Column::Get(size_t row) const {
  if (!valid_[row]) return PropertyValue::Null();
  switch (type_) {
    case PropertyType::kInt:
      return PropertyValue(ints_[row]);
    case PropertyType::kDouble:
      return PropertyValue(doubles_[row]);
    case PropertyType::kBool:
      return PropertyValue(bools_[row] != 0);
    case PropertyType::kString:
      return PropertyValue(strings_[row]);
    case PropertyType::kNull:
      return PropertyValue::Null();
  }
  return PropertyValue::Null();
}

Status PropertyTable::AddColumn(const std::string& name, PropertyType type) {
  if (num_rows_ != 0) {
    return Status::FailedPrecondition(
        "cannot add column '" + name + "' after rows were appended");
  }
  if (index_.count(name)) {
    return Status::AlreadyExists("duplicate column '" + name + "'");
  }
  index_[name] = columns_.size();
  names_.push_back(name);
  columns_.emplace_back(type);
  return Status::Ok();
}

Status PropertyTable::AppendRow(const std::vector<PropertyValue>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(values.size()) + " values, table has " +
        std::to_string(columns_.size()) + " columns");
  }
  for (size_t i = 0; i < values.size(); ++i) {
    const PropertyValue& v = values[i];
    if (!v.is_null() && v.type() != columns_[i].type()) {
      // Allow int literals into double columns.
      if (columns_[i].type() == PropertyType::kDouble &&
          v.type() == PropertyType::kInt) {
        columns_[i].Append(PropertyValue(static_cast<double>(v.AsInt())));
        continue;
      }
      return Status::InvalidArgument(
          "type mismatch in column '" + names_[i] + "': expected " +
          PropertyTypeName(columns_[i].type()) + ", got " +
          PropertyTypeName(v.type()));
    }
    columns_[i].Append(v);
  }
  ++num_rows_;
  return Status::Ok();
}

StatusOr<size_t> PropertyTable::ColumnIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no column named '" + name + "'");
  }
  return it->second;
}

Status PropertyTable::SetCell(size_t row, const std::string& column,
                              const PropertyValue& value) {
  GS_ASSIGN_OR_RETURN(size_t col, ColumnIndex(column));
  if (row >= num_rows_) {
    return Status::OutOfRange("row " + std::to_string(row) +
                              " out of range for column '" + column + "'");
  }
  Column& c = columns_[col];
  if (!value.is_null() && value.type() != c.type()) {
    if (c.type() == PropertyType::kDouble &&
        value.type() == PropertyType::kInt) {
      c.Set(row, PropertyValue(static_cast<double>(value.AsInt())));
      return Status::Ok();
    }
    return Status::InvalidArgument(
        "type mismatch in column '" + column + "': expected " +
        PropertyTypeName(c.type()) + ", got " + PropertyTypeName(value.type()));
  }
  c.Set(row, value);
  return Status::Ok();
}

StatusOr<PropertyValue> PropertyTable::GetByName(
    size_t row, const std::string& name) const {
  GS_ASSIGN_OR_RETURN(size_t col, ColumnIndex(name));
  return Get(row, col);
}

}  // namespace gs
