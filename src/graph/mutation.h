// Typed streaming mutations over a PropertyGraph and their batch applier.
//
// A MutationBatch is the unit of graph-update time: applying one batch
// advances the graph by exactly one mutation epoch (PropertyGraph::
// mutation_epoch), and the WAL (graph/wal/) logs one record per batch.
// Mutations never renumber ids — removals tombstone in place — so the
// EdgeId-keyed view-collection machinery survives epochs unchanged.
#ifndef GRAPHSURGE_GRAPH_MUTATION_H_
#define GRAPHSURGE_GRAPH_MUTATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "graph/property.h"
#include "graph/types.h"

namespace gs {

enum class MutationKind : uint8_t {
  kAddNode = 0,
  kRemoveNode = 1,
  kAddEdge = 2,
  kRemoveEdge = 3,
  kSetNodeProperty = 4,
  kSetEdgeProperty = 5,
};

/// One typed mutation. Fields beyond `kind` are meaningful per kind:
///   kAddNode          row (node property row; may be empty → all nulls)
///   kRemoveNode       node
///   kAddEdge          src, dst, row (edge property row; may be empty)
///   kRemoveEdge       edge
///   kSetNodeProperty  node, column, value
///   kSetEdgeProperty  edge, column, value
struct Mutation {
  MutationKind kind = MutationKind::kAddNode;
  VertexId node = 0;
  VertexId src = 0;
  VertexId dst = 0;
  EdgeId edge = 0;
  std::string column;
  PropertyValue value;
  std::vector<PropertyValue> row;

  // Named constructors (the API surface applications use).
  static Mutation AddNode(std::vector<PropertyValue> row = {});
  static Mutation RemoveNode(VertexId node);
  static Mutation AddEdge(VertexId src, VertexId dst,
                          std::vector<PropertyValue> row = {});
  static Mutation RemoveEdge(EdgeId edge);
  static Mutation SetNodeProperty(VertexId node, std::string column,
                                  PropertyValue value);
  static Mutation SetEdgeProperty(EdgeId edge, std::string column,
                                  PropertyValue value);
};

/// One graph-update epoch's worth of mutations, applied atomically.
using MutationBatch = std::vector<Mutation>;

/// What a batch actually did, in terms the incremental view-collection
/// maintainer consumes. `touched_edges` is the sorted, deduplicated set of
/// edge ids whose view membership or resolved record may have changed:
/// added edges, removed edges (incident-to-removed-node removals included),
/// edges with updated properties, and — because GVDL edge predicates may
/// reference src./dst. node columns — every live edge incident to a node
/// whose properties changed.
struct MutationEffects {
  std::vector<EdgeId> touched_edges;
  size_t nodes_added = 0;
  size_t nodes_removed = 0;
  size_t edges_added = 0;
  size_t edges_removed = 0;
  size_t properties_updated = 0;
};

/// Validates `batch` against the current graph state without mutating it:
/// endpoints exist and are alive, removal targets are alive, property rows
/// match the schema, property columns exist with compatible types. A batch
/// that passes cannot fail mid-apply, which is what lets the WAL append
/// strictly before application (write-ahead).
Status CheckMutationBatch(const PropertyGraph& graph,
                          const MutationBatch& batch);

/// Applies `batch` atomically (validates first, then applies — an invalid
/// batch leaves the graph untouched) and bumps the graph's mutation epoch.
/// Removing a node removes its incident live edges. `effects` (optional)
/// receives the applied diff summary.
Status ApplyMutationBatch(PropertyGraph* graph, const MutationBatch& batch,
                          MutationEffects* effects = nullptr);

}  // namespace gs

#endif  // GRAPHSURGE_GRAPH_MUTATION_H_
