#include "graph/property.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace gs {

const char* PropertyTypeName(PropertyType type) {
  switch (type) {
    case PropertyType::kNull:
      return "null";
    case PropertyType::kBool:
      return "bool";
    case PropertyType::kInt:
      return "int";
    case PropertyType::kDouble:
      return "double";
    case PropertyType::kString:
      return "string";
  }
  return "?";
}

StatusOr<PropertyType> ParsePropertyType(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "int" || lower == "i64" || lower == "integer")
    return PropertyType::kInt;
  if (lower == "double" || lower == "float" || lower == "f64")
    return PropertyType::kDouble;
  if (lower == "str" || lower == "string") return PropertyType::kString;
  if (lower == "bool" || lower == "boolean") return PropertyType::kBool;
  return Status::ParseError("unknown property type: " + name);
}

std::optional<int> PropertyValue::Compare(const PropertyValue& other) const {
  if (is_null() || other.is_null()) return std::nullopt;
  // Numeric cross-type comparison.
  auto a_num = AsNumeric();
  auto b_num = other.AsNumeric();
  if (a_num && b_num) {
    if (*a_num < *b_num) return -1;
    if (*a_num > *b_num) return 1;
    return 0;
  }
  if (type() != other.type()) return std::nullopt;
  switch (type()) {
    case PropertyType::kBool: {
      int a = AsBool() ? 1 : 0, b = other.AsBool() ? 1 : 0;
      return a - b;
    }
    case PropertyType::kString: {
      int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return std::nullopt;
  }
}

std::string PropertyValue::ToString() const {
  switch (type()) {
    case PropertyType::kNull:
      return "null";
    case PropertyType::kBool:
      return AsBool() ? "true" : "false";
    case PropertyType::kInt:
      return std::to_string(AsInt());
    case PropertyType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case PropertyType::kString:
      return AsString();
  }
  return "?";
}

StatusOr<PropertyValue> PropertyValue::Parse(const std::string& text,
                                             PropertyType type) {
  if (text.empty()) return PropertyValue::Null();
  switch (type) {
    case PropertyType::kInt: {
      int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(text.data(), text.data() + text.size(), v);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        return Status::ParseError("bad int literal: '" + text + "'");
      }
      return PropertyValue(v);
    }
    case PropertyType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (end != text.c_str() + text.size()) {
        return Status::ParseError("bad double literal: '" + text + "'");
      }
      return PropertyValue(v);
    }
    case PropertyType::kBool: {
      if (text == "true" || text == "1") return PropertyValue(true);
      if (text == "false" || text == "0") return PropertyValue(false);
      return Status::ParseError("bad bool literal: '" + text + "'");
    }
    case PropertyType::kString:
      return PropertyValue(text);
    case PropertyType::kNull:
      return PropertyValue::Null();
  }
  return Status::Internal("unreachable property type");
}

}  // namespace gs
