#include "graph/mutation.h"

#include <algorithm>

#include "common/bitset.h"

namespace gs {

Mutation Mutation::AddNode(std::vector<PropertyValue> row) {
  Mutation m;
  m.kind = MutationKind::kAddNode;
  m.row = std::move(row);
  return m;
}

Mutation Mutation::RemoveNode(VertexId node) {
  Mutation m;
  m.kind = MutationKind::kRemoveNode;
  m.node = node;
  return m;
}

Mutation Mutation::AddEdge(VertexId src, VertexId dst,
                           std::vector<PropertyValue> row) {
  Mutation m;
  m.kind = MutationKind::kAddEdge;
  m.src = src;
  m.dst = dst;
  m.row = std::move(row);
  return m;
}

Mutation Mutation::RemoveEdge(EdgeId edge) {
  Mutation m;
  m.kind = MutationKind::kRemoveEdge;
  m.edge = edge;
  return m;
}

Mutation Mutation::SetNodeProperty(VertexId node, std::string column,
                                   PropertyValue value) {
  Mutation m;
  m.kind = MutationKind::kSetNodeProperty;
  m.node = node;
  m.column = std::move(column);
  m.value = std::move(value);
  return m;
}

Mutation Mutation::SetEdgeProperty(EdgeId edge, std::string column,
                                   PropertyValue value) {
  Mutation m;
  m.kind = MutationKind::kSetEdgeProperty;
  m.edge = edge;
  m.column = std::move(column);
  m.value = std::move(value);
  return m;
}

namespace {

// Validation walks the batch against a simulated view of the graph state:
// ids allocated by earlier kAddNode/kAddEdge mutations in the same batch are
// legal targets for later mutations, and double-removes within the batch are
// caught. Tracks only the delta, never copies the graph.
struct SimulatedState {
  const PropertyGraph& graph;
  size_t num_nodes;
  size_t num_edges;
  Bitset node_removed;  // indexed from 0; sparse in practice
  Bitset edge_removed;

  explicit SimulatedState(const PropertyGraph& g)
      : graph(g), num_nodes(g.num_nodes()), num_edges(g.num_edges()) {}

  bool NodeAlive(VertexId id) const {
    if (id >= num_nodes) return false;
    if (id < node_removed.size() && node_removed.Test(id)) return false;
    // Nodes created by this batch (id >= graph.num_nodes()) are alive unless
    // removed above; pre-existing nodes defer to the graph's bitmap.
    return id >= graph.num_nodes() || graph.node_alive(id);
  }
  bool EdgeAlive(EdgeId id) const {
    if (id >= num_edges) return false;
    if (id < edge_removed.size() && edge_removed.Test(id)) return false;
    return id >= graph.num_edges() || graph.edge_alive(id);
  }
  void MarkNodeRemoved(VertexId id) {
    if (node_removed.size() <= id) node_removed.Resize(id + 1);
    node_removed.Set(id);
    // Incident edges die with the node; mirror that so a later kRemoveEdge
    // on one of them is rejected as a double-remove.
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      const Edge& edge = graph.edge(e);
      if ((edge.src == id || edge.dst == id) && EdgeAlive(e)) {
        MarkEdgeRemoved(e);
      }
    }
  }
  void MarkEdgeRemoved(EdgeId id) {
    if (edge_removed.size() <= id) edge_removed.Resize(id + 1);
    edge_removed.Set(id);
  }
};

Status CheckRow(const PropertyTable& table, const std::vector<PropertyValue>& row,
                const char* what) {
  if (row.empty()) return Status::Ok();  // Applied as an all-null row.
  if (row.size() != table.num_columns()) {
    return Status::InvalidArgument(
        std::string(what) + " row has " + std::to_string(row.size()) +
        " values, table has " + std::to_string(table.num_columns()) +
        " columns");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const PropertyValue& v = row[i];
    if (v.is_null() || v.type() == table.column(i).type()) continue;
    if (table.column(i).type() == PropertyType::kDouble &&
        v.type() == PropertyType::kInt) {
      continue;
    }
    return Status::InvalidArgument(
        std::string(what) + " row type mismatch in column '" +
        table.column_name(i) + "'");
  }
  return Status::Ok();
}

Status CheckCell(const PropertyTable& table, const std::string& column,
                 const PropertyValue& value, const char* what) {
  GS_ASSIGN_OR_RETURN(size_t col, table.ColumnIndex(column));
  if (value.is_null() || value.type() == table.column(col).type()) {
    return Status::Ok();
  }
  if (table.column(col).type() == PropertyType::kDouble &&
      value.type() == PropertyType::kInt) {
    return Status::Ok();
  }
  return Status::InvalidArgument(std::string(what) +
                                 " type mismatch in column '" + column + "'");
}

Status CheckOne(const SimulatedState& sim, const Mutation& m) {
  const PropertyGraph& g = sim.graph;
  switch (m.kind) {
    case MutationKind::kAddNode:
      return CheckRow(g.node_properties(), m.row, "node");
    case MutationKind::kRemoveNode:
      if (!sim.NodeAlive(m.node)) {
        return Status::FailedPrecondition("remove of missing node " +
                                          std::to_string(m.node));
      }
      return Status::Ok();
    case MutationKind::kAddEdge:
      if (!sim.NodeAlive(m.src) || !sim.NodeAlive(m.dst)) {
        return Status::FailedPrecondition(
            "edge endpoint missing or removed: " + std::to_string(m.src) +
            "->" + std::to_string(m.dst));
      }
      return CheckRow(g.edge_properties(), m.row, "edge");
    case MutationKind::kRemoveEdge:
      if (!sim.EdgeAlive(m.edge)) {
        return Status::FailedPrecondition("remove of missing edge " +
                                          std::to_string(m.edge));
      }
      return Status::Ok();
    case MutationKind::kSetNodeProperty:
      if (!sim.NodeAlive(m.node)) {
        return Status::FailedPrecondition("property update on missing node " +
                                          std::to_string(m.node));
      }
      // Property tables for batch-added rows exist by apply time; the column
      // check below is state-independent.
      return CheckCell(g.node_properties(), m.column, m.value, "node property");
    case MutationKind::kSetEdgeProperty:
      if (!sim.EdgeAlive(m.edge)) {
        return Status::FailedPrecondition("property update on missing edge " +
                                          std::to_string(m.edge));
      }
      return CheckCell(g.edge_properties(), m.column, m.value, "edge property");
  }
  return Status::InvalidArgument("unknown mutation kind");
}

std::vector<PropertyValue> NullRow(const PropertyTable& table) {
  return std::vector<PropertyValue>(table.num_columns(), PropertyValue::Null());
}

}  // namespace

Status CheckMutationBatch(const PropertyGraph& graph,
                          const MutationBatch& batch) {
  SimulatedState sim(graph);
  for (size_t i = 0; i < batch.size(); ++i) {
    Status s = CheckOne(sim, batch[i]);
    if (!s.ok()) {
      return Status(s.code(), "mutation " + std::to_string(i) + ": " +
                                  std::string(s.message()));
    }
    // Advance the simulated state.
    const Mutation& m = batch[i];
    switch (m.kind) {
      case MutationKind::kAddNode:
        ++sim.num_nodes;
        break;
      case MutationKind::kRemoveNode:
        sim.MarkNodeRemoved(m.node);
        break;
      case MutationKind::kAddEdge:
        ++sim.num_edges;
        break;
      case MutationKind::kRemoveEdge:
        sim.MarkEdgeRemoved(m.edge);
        break;
      default:
        break;
    }
  }
  return Status::Ok();
}

Status ApplyMutationBatch(PropertyGraph* graph, const MutationBatch& batch,
                          MutationEffects* effects) {
  GS_RETURN_IF_ERROR(CheckMutationBatch(*graph, batch));

  MutationEffects local;
  MutationEffects& fx = effects ? *effects : local;
  fx = MutationEffects{};
  bool node_props_changed = false;

  for (const Mutation& m : batch) {
    switch (m.kind) {
      case MutationKind::kAddNode: {
        graph->AddNodes(1);
        PropertyTable& props = graph->node_properties();
        if (props.num_columns() > 0) {
          Status s = props.AppendRow(m.row.empty() ? NullRow(props) : m.row);
          if (!s.ok()) return Status::Internal("validated node row failed: " +
                                               std::string(s.message()));
        }
        ++fx.nodes_added;
        break;
      }
      case MutationKind::kRemoveNode: {
        GS_RETURN_IF_ERROR(graph->RemoveNode(m.node));
        ++fx.nodes_removed;
        // Incident live edges die with the node.
        for (EdgeId e = 0; e < graph->num_edges(); ++e) {
          const Edge& edge = graph->edge(e);
          if ((edge.src == m.node || edge.dst == m.node) &&
              graph->edge_alive(e)) {
            GS_RETURN_IF_ERROR(graph->RemoveEdge(e));
            ++fx.edges_removed;
            fx.touched_edges.push_back(e);
          }
        }
        break;
      }
      case MutationKind::kAddEdge: {
        GS_ASSIGN_OR_RETURN(EdgeId id, graph->AddEdge(m.src, m.dst));
        PropertyTable& props = graph->edge_properties();
        if (props.num_columns() > 0) {
          Status s = props.AppendRow(m.row.empty() ? NullRow(props) : m.row);
          if (!s.ok()) return Status::Internal("validated edge row failed: " +
                                               std::string(s.message()));
        }
        ++fx.edges_added;
        fx.touched_edges.push_back(id);
        break;
      }
      case MutationKind::kRemoveEdge:
        GS_RETURN_IF_ERROR(graph->RemoveEdge(m.edge));
        ++fx.edges_removed;
        fx.touched_edges.push_back(m.edge);
        break;
      case MutationKind::kSetNodeProperty:
        GS_RETURN_IF_ERROR(
            graph->node_properties().SetCell(m.node, m.column, m.value));
        ++fx.properties_updated;
        node_props_changed = true;
        break;
      case MutationKind::kSetEdgeProperty:
        GS_RETURN_IF_ERROR(
            graph->edge_properties().SetCell(m.edge, m.column, m.value));
        ++fx.properties_updated;
        fx.touched_edges.push_back(m.edge);
        break;
    }
  }

  // GVDL edge predicates may read src./dst. node columns, so a node property
  // change touches every live incident edge. One O(E) scan per batch, only
  // when some node-level change happened.
  if (node_props_changed) {
    Bitset changed(graph->num_nodes());
    for (const Mutation& m : batch) {
      if (m.kind == MutationKind::kSetNodeProperty) changed.Set(m.node);
    }
    for (EdgeId e = 0; e < graph->num_edges(); ++e) {
      if (!graph->edge_alive(e)) continue;
      const Edge& edge = graph->edge(e);
      if (changed.Test(edge.src) || changed.Test(edge.dst)) {
        fx.touched_edges.push_back(e);
      }
    }
  }

  std::sort(fx.touched_edges.begin(), fx.touched_edges.end());
  fx.touched_edges.erase(
      std::unique(fx.touched_edges.begin(), fx.touched_edges.end()),
      fx.touched_edges.end());

  graph->BumpMutationEpoch();
  return Status::Ok();
}

}  // namespace gs
