#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "common/random.h"

namespace gs {

namespace {

// Appends an edge and its property row; endpoints are assumed valid.
void PushEdge(PropertyGraph* g, VertexId src, VertexId dst,
              std::vector<PropertyValue> props) {
  auto id = g->AddEdge(src, dst);
  GS_CHECK(id.ok()) << id.status().ToString();
  if (g->edge_properties().num_columns() > 0) {
    Status s = g->edge_properties().AppendRow(props);
    GS_CHECK(s.ok()) << s.ToString();
  }
}

}  // namespace

PropertyGraph GenerateTemporalGraph(const TemporalGraphOptions& options) {
  PropertyGraph g;
  g.AddNodes(options.num_nodes);
  GS_CHECK(g.edge_properties()
               .AddColumn("timestamp", PropertyType::kInt)
               .ok());
  GS_CHECK(g.edge_properties().AddColumn("weight", PropertyType::kInt).ok());
  Rng rng(options.seed);
  const double span =
      static_cast<double>(options.end_time - options.start_time);
  for (size_t i = 0; i < options.num_edges; ++i) {
    // Edge i gets a timestamp skewed toward the end of the range: with
    // fraction f = (i+1)/m, t = start + span * f^(1/growth). Timestamps are
    // monotone in i, matching an append-only interaction log.
    double f = static_cast<double>(i + 1) /
               static_cast<double>(options.num_edges);
    int64_t ts = options.start_time +
                 static_cast<int64_t>(span * std::pow(f, 1.0 / options.growth));
    VertexId src, dst;
    if (rng.Bernoulli(options.preferential)) {
      src = rng.PowerLaw(options.num_nodes, 1.1);
      dst = rng.PowerLaw(options.num_nodes, 1.1);
    } else {
      src = rng.Index(options.num_nodes);
      dst = rng.Index(options.num_nodes);
    }
    if (src == dst) dst = (dst + 1) % options.num_nodes;
    PushEdge(&g, src, dst,
             {PropertyValue(ts), PropertyValue(rng.Uniform(1, 100))});
  }
  return g;
}

PropertyGraph GenerateCitationGraph(const CitationGraphOptions& options) {
  PropertyGraph g;
  GS_CHECK(g.node_properties().AddColumn("year", PropertyType::kInt).ok());
  GS_CHECK(
      g.node_properties().AddColumn("coauthors", PropertyType::kInt).ok());
  GS_CHECK(g.edge_properties().AddColumn("weight", PropertyType::kInt).ok());
  Rng rng(options.seed);

  // Create per-year cohorts of papers.
  std::vector<std::pair<size_t, size_t>> year_range;  // [first, last) ids
  double count = static_cast<double>(options.papers_first_year);
  for (int year = options.first_year; year <= options.last_year; ++year) {
    size_t n = static_cast<size_t>(count);
    VertexId first = g.AddNodes(n);
    year_range.emplace_back(first, first + n);
    for (size_t i = 0; i < n; ++i) {
      int64_t coauthors =
          1 + static_cast<int64_t>(rng.PowerLaw(
                  static_cast<uint64_t>(options.max_coauthors),
                  options.coauthor_alpha));
      Status s = g.node_properties().AppendRow(
          {PropertyValue(static_cast<int64_t>(year)),
           PropertyValue(coauthors)});
      GS_CHECK(s.ok());
    }
    count *= options.yearly_growth;
  }

  // Citations: each paper cites avg_citations earlier (or same-year) papers,
  // preferring recent years and popular (low-id within cohort) papers.
  size_t num_years = year_range.size();
  for (size_t yi = 0; yi < num_years; ++yi) {
    for (VertexId p = year_range[yi].first; p < year_range[yi].second; ++p) {
      size_t cites = 1 + rng.Index(2 * options.avg_citations);
      for (size_t c = 0; c < cites; ++c) {
        // Sample a cited year: recent years more likely (geometric-ish).
        size_t back = rng.PowerLaw(yi + 1, 1.5);
        size_t cited_year = yi - back;
        auto [lo, hi] = year_range[cited_year];
        if (hi <= lo) continue;
        VertexId q = lo + rng.PowerLaw(hi - lo, options.citation_alpha);
        if (q == p) continue;
        PushEdge(&g, p, q, {PropertyValue(rng.Uniform(1, 10))});
      }
    }
  }
  return g;
}

CommunityGraph GenerateCommunityGraph(const CommunityGraphOptions& options) {
  CommunityGraph result;
  PropertyGraph& g = result.graph;
  g.AddNodes(options.num_nodes);
  GS_CHECK(
      g.node_properties().AddColumn("communities", PropertyType::kInt).ok());
  GS_CHECK(g.edge_properties().AddColumn("weight", PropertyType::kInt).ok());
  Rng rng(options.seed);

  size_t k = options.num_communities;
  GS_CHECK(k <= 64) << "community bitmask limited to 64 communities";

  // Power-law community sizes over the member population.
  size_t member_nodes = static_cast<size_t>(
      static_cast<double>(options.num_nodes) *
      (1.0 - options.background_fraction));
  std::vector<double> raw(k);
  double total = 0;
  for (size_t c = 0; c < k; ++c) {
    raw[c] = std::pow(static_cast<double>(c + 1), -options.community_size_alpha);
    total += raw[c];
  }
  double slots = static_cast<double>(member_nodes) * options.avg_memberships;

  std::vector<uint64_t> membership(options.num_nodes, 0);
  result.communities.resize(k);
  for (size_t c = 0; c < k; ++c) {
    size_t size = std::max<size_t>(
        4, static_cast<size_t>(slots * raw[c] / total));
    size = std::min(size, member_nodes);
    // Sample members from the member population [0, member_nodes).
    std::vector<uint64_t> members = rng.SampleDistinct(member_nodes, size);
    for (uint64_t m : members) {
      membership[m] |= (1ULL << c);
      result.communities[c].push_back(m);
    }
  }
  // Communities sorted by descending size (generation already skews this
  // way, but overlap sampling can perturb it).
  std::stable_sort(result.communities.begin(), result.communities.end(),
                   [](const auto& a, const auto& b) {
                     return a.size() > b.size();
                   });
  // Rebuild the bitmask to match the sorted community indices.
  std::fill(membership.begin(), membership.end(), 0);
  for (size_t c = 0; c < k; ++c) {
    for (VertexId m : result.communities[c]) membership[m] |= (1ULL << c);
  }
  for (size_t v = 0; v < options.num_nodes; ++v) {
    Status s = g.node_properties().AppendRow(
        {PropertyValue(static_cast<int64_t>(membership[v]))});
    GS_CHECK(s.ok());
  }

  // Intra-community edges.
  for (size_t c = 0; c < k; ++c) {
    const auto& members = result.communities[c];
    if (members.size() < 2) continue;
    size_t edges = static_cast<size_t>(
        static_cast<double>(members.size()) * options.intra_degree);
    for (size_t e = 0; e < edges; ++e) {
      VertexId a = members[rng.Index(members.size())];
      VertexId b = members[rng.Index(members.size())];
      if (a == b) continue;
      PushEdge(&g, a, b, {PropertyValue(rng.Uniform(1, 10))});
    }
  }
  // Background random edges over all nodes.
  size_t bg_edges = static_cast<size_t>(
      static_cast<double>(options.num_nodes) * options.background_degree);
  for (size_t e = 0; e < bg_edges; ++e) {
    VertexId a = rng.Index(options.num_nodes);
    VertexId b = rng.Index(options.num_nodes);
    if (a == b) continue;
    PushEdge(&g, a, b, {PropertyValue(rng.Uniform(1, 10))});
  }
  return result;
}

PropertyGraph GenerateSocialNetwork(const SocialNetworkOptions& options) {
  PropertyGraph g;
  g.AddNodes(options.num_nodes);
  GS_CHECK(g.node_properties().AddColumn("city", PropertyType::kInt).ok());
  GS_CHECK(g.node_properties().AddColumn("state", PropertyType::kInt).ok());
  GS_CHECK(g.node_properties().AddColumn("country", PropertyType::kInt).ok());
  GS_CHECK(g.edge_properties().AddColumn("affinity", PropertyType::kInt).ok());
  GS_CHECK(g.edge_properties().AddColumn("weight", PropertyType::kInt).ok());
  Rng rng(options.seed);

  int num_states = options.num_countries * options.states_per_country;
  int num_cities = num_states * options.cities_per_state;
  std::vector<int> node_city(options.num_nodes);
  // City index determines state = city / cities_per_state and country =
  // state / states_per_country.
  for (size_t v = 0; v < options.num_nodes; ++v) {
    int city = static_cast<int>(
        rng.PowerLaw(static_cast<uint64_t>(num_cities), 1.05));
    node_city[v] = city;
    int state = city / options.cities_per_state;
    int country = state / options.states_per_country;
    Status s = g.node_properties().AppendRow(
        {PropertyValue(static_cast<int64_t>(city)),
         PropertyValue(static_cast<int64_t>(state)),
         PropertyValue(static_cast<int64_t>(country))});
    GS_CHECK(s.ok());
  }

  // Group nodes by city for locality sampling.
  std::vector<std::vector<VertexId>> by_city(num_cities);
  for (size_t v = 0; v < options.num_nodes; ++v) {
    by_city[node_city[v]].push_back(v);
  }
  std::vector<std::vector<VertexId>> by_state(num_states);
  for (size_t v = 0; v < options.num_nodes; ++v) {
    by_state[node_city[v] / options.cities_per_state].push_back(v);
  }

  for (size_t e = 0; e < options.num_edges; ++e) {
    VertexId src = rng.Index(options.num_nodes);
    VertexId dst;
    double roll = rng.UniformReal();
    if (roll < options.city_locality &&
        by_city[node_city[src]].size() > 1) {
      const auto& pool = by_city[node_city[src]];
      dst = pool[rng.Index(pool.size())];
    } else if (roll < options.city_locality + options.state_locality &&
               by_state[node_city[src] / options.cities_per_state].size() >
                   1) {
      const auto& pool = by_state[node_city[src] / options.cities_per_state];
      dst = pool[rng.Index(pool.size())];
    } else {
      dst = rng.Index(options.num_nodes);
    }
    if (src == dst) dst = (dst + 1) % options.num_nodes;
    // Affinity skews high for local edges.
    int64_t affinity;
    if (node_city[src] == node_city[dst]) {
      affinity = rng.Bernoulli(0.6) ? 2 : 1;
    } else {
      affinity = rng.Bernoulli(0.6) ? 0 : rng.Uniform(0, 2);
    }
    PushEdge(&g, src, dst,
             {PropertyValue(affinity), PropertyValue(rng.Uniform(1, 100))});
  }
  return g;
}

PropertyGraph GeneratePowerLawGraph(size_t num_nodes, size_t num_edges,
                                    double alpha, uint64_t seed,
                                    int64_t max_weight) {
  PropertyGraph g;
  g.AddNodes(num_nodes);
  GS_CHECK(g.edge_properties().AddColumn("weight", PropertyType::kInt).ok());
  Rng rng(seed);
  for (size_t e = 0; e < num_edges; ++e) {
    VertexId src = rng.PowerLaw(num_nodes, alpha);
    VertexId dst = rng.PowerLaw(num_nodes, alpha);
    if (src == dst) dst = (dst + 1) % num_nodes;
    PushEdge(&g, src, dst, {PropertyValue(rng.Uniform(1, max_weight))});
  }
  return g;
}

PropertyGraph GenerateUniformGraph(size_t num_nodes, size_t num_edges,
                                   uint64_t seed, int64_t max_weight) {
  PropertyGraph g;
  g.AddNodes(num_nodes);
  GS_CHECK(g.edge_properties().AddColumn("weight", PropertyType::kInt).ok());
  Rng rng(seed);
  for (size_t e = 0; e < num_edges; ++e) {
    VertexId src = rng.Index(num_nodes);
    VertexId dst = rng.Index(num_nodes);
    if (src == dst) dst = (dst + 1) % num_nodes;
    PushEdge(&g, src, dst, {PropertyValue(rng.Uniform(1, max_weight))});
  }
  return g;
}

PropertyGraph MakeCallGraphExample() {
  // Figure 1 of the paper: 8 customers with (city, profession), 15 calls
  // with {duration, year}. The figure's edge endpoints are not fully legible
  // in the text; this is a faithful reconstruction using the printed
  // property pairs over a plausible topology.
  PropertyGraph g;
  GS_CHECK(g.node_properties().AddColumn("city", PropertyType::kString).ok());
  GS_CHECK(g.node_properties()
               .AddColumn("profession", PropertyType::kString)
               .ok());
  GS_CHECK(g.edge_properties().AddColumn("duration", PropertyType::kInt).ok());
  GS_CHECK(g.edge_properties().AddColumn("year", PropertyType::kInt).ok());

  struct NodeSpec {
    const char* city;
    const char* profession;
  };
  // Index i = paper node id (i + 1).
  const NodeSpec nodes[8] = {
      {"LA", "Engineer"}, {"LA", "Doctor"},  {"LA", "Engineer"},
      {"NY", "Lawyer"},   {"NY", "Doctor"},  {"LA", "Engineer"},
      {"NY", "Lawyer"},   {"LA", "Lawyer"},
  };
  g.AddNodes(8);
  for (const NodeSpec& n : nodes) {
    GS_CHECK(g.node_properties()
                 .AppendRow({PropertyValue(n.city), PropertyValue(n.profession)})
                 .ok());
  }
  struct EdgeSpec {
    int src, dst, duration, year;
  };
  const EdgeSpec edges[15] = {
      {1, 2, 7, 2015},  {2, 5, 19, 2019}, {5, 4, 13, 2019}, {4, 7, 18, 2019},
      {7, 8, 6, 2019},  {8, 2, 18, 2019}, {1, 3, 32, 2017}, {3, 6, 1, 2010},
      {6, 1, 10, 2018}, {2, 6, 3, 2019},  {3, 1, 12, 2017}, {5, 7, 7, 2018},
      {4, 5, 2, 2013},  {8, 4, 4, 2019},  {6, 3, 34, 2019},
  };
  for (const EdgeSpec& e : edges) {
    PushEdge(&g, static_cast<VertexId>(e.src - 1),
             static_cast<VertexId>(e.dst - 1),
             {PropertyValue(static_cast<int64_t>(e.duration)),
              PropertyValue(static_cast<int64_t>(e.year))});
  }
  return g;
}

}  // namespace gs
