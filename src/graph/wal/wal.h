// Append-only write-ahead log for streaming graph mutations.
//
// File layout:
//   [8-byte magic "GSWAL\x01\0\0"]
//   repeated records: [u32 payload_len LE][u32 crc32(payload) LE][payload]
// where each payload is one EncodeMutationBatch (graph/wal/record.h) — one
// record per graph-update epoch.
//
// Durability contract: WalWriter::Append writes length + CRC + payload with
// a single write(2) and fsyncs every `sync_every_n_appends` records (default
// every record). Replay distinguishes two failure shapes:
//   - torn tail: the file ends mid-record (a crash between write and the
//     next append). The tail is silently ignored and `recovered_torn_tail`
//     is set — this is the expected crash artifact, not corruption.
//   - checksum mismatch on a complete record: real corruption; replay stops
//     with an IoError rather than guessing.
#ifndef GRAPHSURGE_GRAPH_WAL_WAL_H_
#define GRAPHSURGE_GRAPH_WAL_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/mutation.h"

namespace gs::wal {

/// The 8-byte file header. Version byte after the name lets the format
/// evolve; the trailing NULs keep records 4-byte aligned after the header.
inline constexpr char kWalMagic[8] = {'G', 'S', 'W', 'A', 'L', 1, 0, 0};

struct WalWriterOptions {
  /// fsync after every Nth Append (1 = every append, the durable default;
  /// larger values batch fsyncs for ingest throughput at the cost of the
  /// last N-1 batches on power loss). Close() always syncs.
  uint32_t sync_every_n_appends = 1;
};

/// Appender for one WAL file. Not thread-safe; the API layer serializes
/// mutations per graph already.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens `path` for appending, creating it (with header) if absent. An
  /// existing file must start with the magic. Call ReplayWal first when
  /// recovering: Open truncates a torn tail so appends land on a record
  /// boundary.
  Status Open(const std::string& path, WalWriterOptions options = {});

  /// Appends one framed, checksummed record. Returns after the write (and
  /// the fsync, when this append hits the sync cadence) completes.
  Status Append(const MutationBatch& batch);

  /// Forces an fsync now regardless of cadence.
  Status Sync();

  /// Syncs and closes. Safe to call twice.
  Status Close();

  bool is_open() const { return fd_ >= 0; }
  uint64_t bytes_written() const { return bytes_written_; }
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  std::string path_;
  WalWriterOptions options_;
  uint32_t appends_since_sync_ = 0;
  uint64_t bytes_written_ = 0;  // total file size, including header
};

struct WalReplayResult {
  /// The logged batches, in append (= epoch) order.
  std::vector<MutationBatch> batches;
  /// True if the file ended mid-record and the tail was dropped.
  bool recovered_torn_tail = false;
  /// Bytes of valid log consumed (header + complete records).
  uint64_t valid_bytes = 0;
};

/// Reads every complete record from `path`. A missing file yields zero
/// batches (a fresh log). Torn tails recover silently (see file comment);
/// checksum mismatches and header corruption are errors.
StatusOr<WalReplayResult> ReplayWal(const std::string& path);

}  // namespace gs::wal

#endif  // GRAPHSURGE_GRAPH_WAL_WAL_H_
