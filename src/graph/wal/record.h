// Binary (little-endian) serialization of mutation batches for WAL records.
//
// The encoding is self-contained per record: a batch round-trips through
// EncodeMutationBatch/DecodeMutationBatch independently of graph state. The
// framing (length prefix + CRC) lives in wal.h; this file only encodes the
// payload.
#ifndef GRAPHSURGE_GRAPH_WAL_RECORD_H_
#define GRAPHSURGE_GRAPH_WAL_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/mutation.h"
#include "graph/property.h"

namespace gs::wal {

/// Append-only encoder over a byte buffer. All integers little-endian.
class RecordWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutString(const std::string& s);       // u32 length + bytes
  void PutValue(const PropertyValue& v);      // tag byte + typed payload
  void PutMutation(const Mutation& m);

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Cursor-based decoder; every Get checks remaining length and returns
/// ParseError on truncation or a malformed tag.
class RecordReader {
 public:
  RecordReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  StatusOr<uint8_t> GetU8();
  StatusOr<uint32_t> GetU32();
  StatusOr<uint64_t> GetU64();
  StatusOr<std::string> GetString();
  StatusOr<PropertyValue> GetValue();
  StatusOr<Mutation> GetMutation();

  size_t remaining() const { return len_ - pos_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

/// Encodes a whole batch: u32 mutation count, then each mutation.
std::vector<uint8_t> EncodeMutationBatch(const MutationBatch& batch);

/// Inverse of EncodeMutationBatch; rejects trailing garbage.
StatusOr<MutationBatch> DecodeMutationBatch(const uint8_t* data, size_t len);

}  // namespace gs::wal

#endif  // GRAPHSURGE_GRAPH_WAL_RECORD_H_
